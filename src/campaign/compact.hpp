// Read-only mmap'd view of a compacted campaign (`campaign.compact`).
//
// write_compact() lays records out column-major so aggregate queries touch
// only the columns they need; CompactReader maps the file read-only and
// serves records without slurping it into memory — the out-of-core path
// for wafer-scale aggregates (ROADMAP item 4 mop-up).
//
// Integrity: open() verifies the magic, the exact structural size
// (prologue + columns + trailing CRC), the header's self-CRC, and the
// whole-file trailing CRC before exposing a single byte — a truncated or
// bit-flipped compact fails loudly at open, never as a silent bad
// aggregate (the journal's quarantine discipline, applied to the columnar
// image).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "campaign/format.hpp"
#include "campaign/record.hpp"

namespace ecms::campaign {

class CompactReader {
 public:
  /// Maps `path` read-only and verifies it end to end. Throws ecms::Error
  /// on I/O failure, wrong magic, structural size mismatch, or CRC
  /// mismatch (header or whole-file).
  static CompactReader open(const std::string& path);

  CompactReader(CompactReader&& other) noexcept;
  CompactReader& operator=(CompactReader&& other) noexcept;
  CompactReader(const CompactReader&) = delete;
  CompactReader& operator=(const CompactReader&) = delete;
  ~CompactReader();

  std::uint64_t count() const { return count_; }
  const UnitSpace& space() const { return space_; }
  std::uint64_t config_hash() const { return config_hash_; }
  std::uint64_t campaign_seed() const { return campaign_seed_; }

  /// Record `i` (unit order), reassembled from the columns. `attempts` is
  /// always 0 — the compact format deliberately omits scheduling history.
  UnitRecord record(std::uint64_t i) const;

  /// All records, materialized (convenience for the report path; the
  /// per-record accessor is the out-of-core interface).
  std::vector<UnitRecord> records() const;

 private:
  CompactReader() = default;

  const char* map_ = nullptr;
  std::size_t map_len_ = 0;
  std::uint64_t count_ = 0;
  UnitSpace space_;
  std::uint64_t config_hash_ = 0;
  std::uint64_t campaign_seed_ = 0;
};

}  // namespace ecms::campaign
