#include "campaign/campaign.hpp"

#include <cmath>
#include <cstdio>

#include "bitmap/extraction.hpp"
#include "edram/macrocell.hpp"
#include "msu/fastmodel.hpp"
#include "tech/capmodel.hpp"
#include "tech/corners.hpp"
#include "tech/tech.hpp"
#include "util/crc32.hpp"
#include "util/error.hpp"
#include "util/table.hpp"

namespace ecms::campaign {
namespace {

void hash_bytes(std::uint64_t& h, const void* data, std::size_t n) {
  h = util::fnv1a64(data, n, h);
}
template <typename T>
void hash_value(std::uint64_t& h, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  hash_bytes(h, &v, sizeof v);
}

}  // namespace

std::uint64_t CampaignConfig::config_hash() const {
  std::uint64_t h = util::fnv1a64("ecms.campaign.v1", 16);
  hash_value(h, space.dies);
  hash_value(h, space.corners);
  hash_value(h, space.seeds);
  hash_value(h, seed);
  hash_value(h, static_cast<std::uint64_t>(rows));
  hash_value(h, static_cast<std::uint64_t>(cols));
  hash_value(h, noise_sigma_rel);
  hash_value(h, local_sigma_rel);
  hash_value(h, gradient);
  hash_value(h, drift);
  hash_value(h, defect_rates.short_rate);
  hash_value(h, defect_rates.open_rate);
  hash_value(h, defect_rates.partial_rate);
  hash_value(h, defect_rates.bridge_rate);
  return h;
}

bool crash_planned(const CampaignConfig& cfg, std::uint64_t unit,
                   int attempt) {
  if (cfg.crash_rate <= 0.0) return false;
  // splitmix64-style remix of (seed, unit, attempt): a pure function, so
  // the same attempt crashes (or not) on every worker and every resume.
  std::uint64_t z = cfg.crash_seed ^ (unit * 0x9E3779B97F4A7C15ull) ^
                    (static_cast<std::uint64_t>(attempt + 1) *
                     0xBF58476D1CE4E5B9ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  z ^= z >> 31;
  const double u = static_cast<double>(z >> 11) * 0x1.0p-53;
  return u < cfg.crash_rate;
}

UnitRecord measure_unit(const CampaignConfig& cfg, std::uint64_t unit) {
  ECMS_REQUIRE(unit < cfg.space.total(), "unit outside the campaign space");
  const std::uint32_t die = cfg.space.die_of(unit);
  const std::uint32_t corner = cfg.space.corner_of(unit);
  const std::uint32_t noise_seed = cfg.space.seed_of(unit);

  // Die identity: the same die has the same capacitance field and defect
  // map at every corner and noise seed — that is what makes the
  // cross-corner drift report a statement about measurement, not about
  // sampling different silicon. The draw order below is part of the
  // on-disk determinism contract; never reorder it.
  Rng die_rng = Rng(cfg.seed).fork(die);
  const std::uint64_t field_seed = die_rng.next_u64();
  tech::CapProcessParams cp;
  cp.local_sigma_rel = cfg.local_sigma_rel;
  cp.gradient_x_rel = cfg.gradient;
  cp.lot_offset_rel = cfg.drift;
  tech::CapField field(cp, cfg.rows, cfg.cols, field_seed);
  tech::DefectMap defects =
      tech::DefectMap::random(cfg.rows, cfg.cols, cfg.defect_rates, die_rng);

  const tech::Technology tech =
      tech::apply_corner(tech::tech018(), tech::kAllCorners[corner]);
  edram::MacroCell mc({.rows = cfg.rows, .cols = cfg.cols}, tech,
                      std::move(field), std::move(defects));

  extraction::ExtractRequest req;  // fast-model engine, 4x4 tiles
  req.robust = true;
  req.contain = true;
  Rng noise_rng = Rng(cfg.seed).fork(die).fork(corner).fork(noise_seed);
  msu::MeasureNoise noise;
  if (cfg.noise_sigma_rel > 0.0) {
    const msu::FastModel model(mc, req.params);
    noise.enabled = true;
    noise.comparator_sigma_i = cfg.noise_sigma_rel * model.delta_i();
    req.noise = &noise;
    req.rng = &noise_rng;
  }
  const extraction::ExtractReport rep = extraction::extract(mc, req);

  UnitRecord rec;
  rec.die = die;
  rec.corner = static_cast<std::uint16_t>(corner);
  rec.seed = static_cast<std::uint16_t>(noise_seed);
  rec.cells = static_cast<std::uint32_t>(rep.report.cells_total);
  rec.recovered = static_cast<std::uint32_t>(rep.report.recovered);
  rec.unmeasurable = static_cast<std::uint32_t>(rep.report.unmeasurable());
  rec.status = static_cast<std::uint16_t>(
      rep.complete() ? UnitStatus::kOk : UnitStatus::kDegraded);

  double sum = 0.0, sum_sq = 0.0;
  std::uint64_t hash = util::fnv1a64("codes", 5);
  for (std::size_t r = 0; r < mc.rows(); ++r) {
    for (std::size_t c = 0; c < mc.cols(); ++c) {
      const std::int32_t code = rep.bitmap.at(r, c);
      hash = util::fnv1a64(&code, sizeof code, hash);
      const std::size_t bin =
          code < 0 ? 0
                   : std::min<std::size_t>(static_cast<std::size_t>(code),
                                           kCodeBins - 1);
      rec.code_hist[bin] += 1;
      sum += code;
      sum_sq += static_cast<double>(code) * code;
    }
  }
  rec.code_hash = hash;
  const double n = static_cast<double>(mc.rows() * mc.cols());
  rec.mean_code = sum / n;
  const double var = sum_sq / n - rec.mean_code * rec.mean_code;
  rec.code_stddev = var > 0.0 ? std::sqrt(var) : 0.0;
  return rec;
}

std::vector<CornerAggregate> aggregate_by_corner(
    const std::vector<UnitRecord>& records, const UnitSpace& space) {
  std::vector<CornerAggregate> out(space.corners);
  for (std::uint32_t c = 0; c < space.corners; ++c) out[c].corner = c;

  for (const UnitRecord& rec : records) {
    if (rec.corner >= space.corners ||
        rec.unit_status() == UnitStatus::kError) {
      continue;
    }
    CornerAggregate& agg = out[rec.corner];
    agg.units += 1;
    for (std::size_t b = 0; b < kCodeBins; ++b) {
      agg.hist[b] += rec.code_hist[b];
      agg.cells += rec.code_hist[b];
    }
  }
  for (CornerAggregate& agg : out) {
    if (agg.cells == 0) continue;
    double sum = 0.0, sum_sq = 0.0;
    for (std::size_t b = 0; b < kCodeBins; ++b) {
      sum += static_cast<double>(agg.hist[b]) * static_cast<double>(b);
      sum_sq += static_cast<double>(agg.hist[b]) * static_cast<double>(b) *
                static_cast<double>(b);
    }
    const double n = static_cast<double>(agg.cells);
    agg.mean_code = sum / n;
    const double var = sum_sq / n - agg.mean_code * agg.mean_code;
    agg.code_stddev = var > 0.0 ? std::sqrt(var) : 0.0;
  }

  // Drift vs the TT corner (index 0 in tech::kAllCorners).
  const double tt_mean = out.empty() ? 0.0 : out[0].mean_code;
  for (CornerAggregate& agg : out) agg.drift_vs_tt = agg.mean_code - tt_mean;

  // Histogram stability: mean L1 distance between each unit's normalized
  // histogram and its corner's pooled histogram.
  std::vector<double> l1_sum(space.corners, 0.0);
  std::vector<std::uint64_t> l1_units(space.corners, 0);
  for (const UnitRecord& rec : records) {
    if (rec.corner >= space.corners ||
        rec.unit_status() == UnitStatus::kError || rec.cells == 0) {
      continue;
    }
    const CornerAggregate& agg = out[rec.corner];
    if (agg.cells == 0) continue;
    double l1 = 0.0;
    for (std::size_t b = 0; b < kCodeBins; ++b) {
      const double unit_p =
          static_cast<double>(rec.code_hist[b]) / static_cast<double>(rec.cells);
      const double pool_p =
          static_cast<double>(agg.hist[b]) / static_cast<double>(agg.cells);
      l1 += std::abs(unit_p - pool_p);
    }
    l1_sum[rec.corner] += l1;
    l1_units[rec.corner] += 1;
  }
  for (std::uint32_t c = 0; c < space.corners; ++c) {
    if (l1_units[c] > 0) out[c].hist_instability = l1_sum[c] / l1_units[c];
  }
  return out;
}

void print_campaign_report(const std::vector<UnitRecord>& records,
                           const UnitSpace& space) {
  const auto aggs = aggregate_by_corner(records, space);
  std::printf("\n-- abacus-code drift across corners --\n");
  Table t({"corner", "units", "cells", "mean code", "stddev", "drift vs TT",
           "hist instability (L1)"});
  for (const CornerAggregate& agg : aggs) {
    t.add_row({tech::corner_name(tech::kAllCorners[agg.corner]),
               Table::num(static_cast<long long>(agg.units)),
               Table::num(static_cast<long long>(agg.cells)),
               Table::num(agg.mean_code, 3), Table::num(agg.code_stddev, 3),
               Table::num(agg.drift_vs_tt, 3),
               Table::num(agg.hist_instability, 4)});
  }
  std::printf("%s\n", t.to_text().c_str());
}

}  // namespace ecms::campaign
