// Campaign work units and the fixed-width result record.
//
// A wafer-scale campaign measures the (die × corner × seed) cross product:
// `die` selects the as-fabricated array (capacitance field + defect map),
// `corner` the global process corner the die is measured at, and `seed` the
// measurement-noise stream of that trial. Each unit is identified by one
// linear index, and its result is a fixed-width, trivially-copyable record
// so the on-disk store can page them with nothing but a memcpy and a CRC.
//
// Determinism contract: a unit's record is a pure function of the campaign
// config and the unit key — its RNG streams derive from
// Rng(seed).fork(die).fork(corner).fork(seed) and never from scheduling
// state — so any interleaving of workers, any retry, and any kill/resume
// split produces bit-identical records (CampaignResumeT, EXT-A11).
#pragma once

#include <cstddef>
#include <cstdint>
#include <type_traits>

namespace ecms::campaign {

/// Sentinel for "no unit" (idle worker, unset test knobs).
inline constexpr std::uint64_t kNoUnit = ~std::uint64_t{0};

/// Code histogram width in the record: codes are clamped into
/// [0, kCodeBins-1]. The default 20-step ramp emits codes 0..20, so the
/// last bins double as an overflow guard for larger ramps.
inline constexpr std::size_t kCodeBins = 32;

/// The (die × corner × seed) cross product and its linearization. Units are
/// numbered die-major so ascending dispatch walks one die across all
/// corners and noise seeds before moving on.
struct UnitSpace {
  std::uint32_t dies = 16;
  std::uint32_t corners = 5;  ///< indexes tech::kAllCorners, so at most 5
  std::uint32_t seeds = 2;

  std::uint64_t total() const {
    return std::uint64_t{dies} * corners * seeds;
  }
  std::uint64_t index_of(std::uint32_t die, std::uint32_t corner,
                         std::uint32_t seed) const {
    return (std::uint64_t{die} * corners + corner) * seeds + seed;
  }
  std::uint32_t die_of(std::uint64_t unit) const {
    return static_cast<std::uint32_t>(unit / (std::uint64_t{corners} * seeds));
  }
  std::uint32_t corner_of(std::uint64_t unit) const {
    return static_cast<std::uint32_t>((unit / seeds) % corners);
  }
  std::uint32_t seed_of(std::uint64_t unit) const {
    return static_cast<std::uint32_t>(unit % seeds);
  }
  bool operator==(const UnitSpace&) const = default;
};

/// How a unit's measurement ended, as stored in the record.
enum class UnitStatus : std::uint16_t {
  kOk = 0,        ///< complete, every cell measured
  kDegraded = 1,  ///< complete, but some cells are unmeasurable
  kError = 2,     ///< the measurement threw; only the key fields are valid
};

/// One unit's result. Fixed width, trivially copyable, no pointers: the
/// store appends these raw. `code_hash` is the FNV-1a digest of the full
/// row-major per-cell code sequence — the strong witness the kill-resume
/// determinism gate compares, so "bit-identical" covers every cell, not
/// just the summary stats.
struct UnitRecord {
  std::uint32_t die = 0;
  std::uint16_t corner = 0;
  std::uint16_t seed = 0;
  std::uint16_t status = 0;    ///< UnitStatus
  std::uint16_t attempts = 0;  ///< dispatch attempts consumed (1 = first try)
  std::uint32_t cells = 0;
  std::uint32_t recovered = 0;     ///< cells measured only via in-unit retry
  std::uint32_t unmeasurable = 0;  ///< cells the unit could not measure
  std::uint64_t code_hash = 0;     ///< FNV-1a over row-major cell codes
  double mean_code = 0.0;
  double code_stddev = 0.0;
  std::uint32_t code_hist[kCodeBins] = {};  ///< clamped per-code cell counts

  UnitStatus unit_status() const { return static_cast<UnitStatus>(status); }
};

static_assert(std::is_trivially_copyable_v<UnitRecord>,
              "records are paged to disk raw");
static_assert(sizeof(UnitRecord) == 48 + kCodeBins * sizeof(std::uint32_t),
              "record layout is part of the on-disk format; bump the store "
              "magic when changing it");

}  // namespace ecms::campaign
