// Wafer-scale Monte Carlo campaign engine (ROADMAP item 4, DESIGN.md §12).
//
// The paper measures one macro-cell; a production characterization campaign
// measures thousands of (die × corner × seed) units. This module holds the
// pieces shared by the supervisor and its worker processes:
//
//   * CampaignConfig — the full parameterization, hashed into the store
//     header so a resume can never silently continue with different
//     physics;
//   * measure_unit() — one unit's measurement, a pure function of
//     (config, unit index): die identity (capacitance field + defects)
//     derives from Rng(seed).fork(die), the measurement-noise stream from
//     Rng(seed).fork(die).fork(corner).fork(seed), so records are
//     bit-identical whatever worker measured them, in whatever order,
//     across any kill/resume split;
//   * the aggregate reports the paper never had — abacus-code drift across
//     process corners and code-histogram stability — computed from the
//     result store.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "campaign/record.hpp"
#include "tech/defects.hpp"

namespace ecms::campaign {

/// Everything a campaign run needs. Fields above the chaos/supervision
/// break determine unit *results* and feed config_hash(); fields below it
/// only shape scheduling, retries and fault injection, and may differ
/// between the original run and a resume.
struct CampaignConfig {
  // --- result-determining (hashed into the store header) ---
  UnitSpace space;                 ///< dies × corners × noise seeds
  std::uint64_t seed = 1;          ///< campaign master seed
  std::size_t rows = 8, cols = 8;  ///< per-die array (multiples of the 4x4 tile)
  double noise_sigma_rel = 0.02;   ///< comparator noise / ramp LSB; 0 = off
  double local_sigma_rel = 0.02;   ///< per-cell capacitance mismatch
  double gradient = 0.0;           ///< die-level gradient (col 0 -> last col)
  double drift = 0.0;              ///< lot-level offset
  tech::DefectRates defect_rates = {.short_rate = 0.002,
                                    .open_rate = 0.002,
                                    .partial_rate = 0.005};

  // --- supervision / chaos (not hashed; free to differ on resume) ---
  int workers = 1;            ///< worker subprocesses
  int retries = 2;            ///< dispatch attempts per unit (RetryPolicy)
  int unit_timeout_ms = 30000;  ///< watchdog deadline per dispatched unit
  int unit_delay_ms = 0;      ///< artificial per-unit delay (chaos/test aid)
  std::uint64_t hang_unit = kNoUnit;  ///< test aid: first attempt hangs
  double crash_rate = 0.0;    ///< per-attempt worker crash injection in [0,1]
  std::uint64_t crash_seed = 1;
  bool exec_self = false;     ///< fork+exec `campaign-worker` vs plain fork
  std::string self_path;      ///< executable for exec_self
  std::string dir;            ///< campaign directory (store, manifest, logs)
  bool resume = false;        ///< continue an existing store

  /// FNV-1a over the result-determining fields only.
  std::uint64_t config_hash() const;

  std::string store_path() const { return dir + "/campaign.store"; }
  std::string compact_path() const { return dir + "/campaign.compact"; }
  std::string manifest_path() const { return dir + "/manifest.json"; }
  std::string worker_log_path(int slot) const {
    return dir + "/worker-" + std::to_string(slot) + ".log";
  }
};

/// Measures one unit. Pure function of (cfg result-determining fields,
/// unit); throws on measurement failure (the caller converts that into a
/// failed attempt). `attempts` in the returned record is left 0 — the
/// supervisor owns dispatch accounting.
UnitRecord measure_unit(const CampaignConfig& cfg, std::uint64_t unit);

/// Deterministic crash-injection draw for (unit, attempt): pure hash of
/// (crash_seed, unit, attempt) in [0, 1), compared against crash_rate by
/// the worker before it measures. Exposed so tests can predict which
/// attempts die.
bool crash_planned(const CampaignConfig& cfg, std::uint64_t unit,
                   int attempt);

/// Per-corner aggregate over the result store: the corner-drift /
/// histogram-stability report.
struct CornerAggregate {
  std::uint32_t corner = 0;
  std::uint64_t units = 0;
  std::uint64_t cells = 0;
  double mean_code = 0.0;     ///< cell-weighted mean code
  double code_stddev = 0.0;   ///< cell-weighted stddev around mean_code
  double drift_vs_tt = 0.0;   ///< mean_code - mean_code(TT corner)
  /// Mean L1 distance between each unit's normalized code histogram and
  /// the corner's pooled histogram — 0 means every die produces the same
  /// code distribution at this corner (histogram stability).
  double hist_instability = 0.0;
  std::uint64_t hist[kCodeBins] = {};
};

std::vector<CornerAggregate> aggregate_by_corner(
    const std::vector<UnitRecord>& records, const UnitSpace& space);

/// Renders the corner-drift and stability tables to stdout.
void print_campaign_report(const std::vector<UnitRecord>& records,
                           const UnitSpace& space);

}  // namespace ecms::campaign
