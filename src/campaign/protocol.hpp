// Supervisor ⇄ worker wire protocol.
//
// Commands flow supervisor → worker as ASCII lines on the worker's stdin
// ("u <unit> <attempt>\n" to measure, "q\n" to quit); results flow back on
// a dedicated pipe as fixed-width binary frames. The result channel is NOT
// stdout — worker stdout/stderr are redirected to per-worker log files so
// a crashing worker's sanitizer/diagnostic output survives (DESIGN.md §12).
//
// A ResultFrame is 200 bytes < PIPE_BUF, so a single write(2) lands
// atomically on the pipe; the supervisor still reassembles from a
// per-worker buffer and CRC-checks every frame, treating a garbled frame
// exactly like a worker crash (kill + failed attempt) rather than trusting
// it.
#pragma once

#include <cstdint>

#include "campaign/record.hpp"

namespace ecms::campaign {

inline constexpr std::uint32_t kResultMagic = 0x524D4345;  // "ECMR"

/// Result of one dispatched attempt.
enum class AttemptStatus : std::uint32_t {
  kOk = 0,     ///< record is valid
  kError = 1,  ///< the measurement threw; details in the worker log
};

struct ResultFrame {
  std::uint32_t magic = kResultMagic;
  std::uint32_t status = 0;  ///< AttemptStatus
  std::uint64_t unit = 0;
  UnitRecord record;
  std::uint32_t crc = 0;  ///< CRC-32 over `record`
  std::uint32_t pad = 0;
};

static_assert(std::is_trivially_copyable_v<ResultFrame>);
static_assert(sizeof(ResultFrame) <= 512,
              "frame must stay well under PIPE_BUF for atomic pipe writes");

}  // namespace ecms::campaign
