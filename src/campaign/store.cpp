#include "campaign/store.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "campaign/format.hpp"
#include "obs/metrics.hpp"
#include "util/crc32.hpp"
#include "util/error.hpp"
#include "util/fileio.hpp"
#include "util/log.hpp"

namespace ecms::campaign {
namespace {

// Layouts, magics and CRC rules live in campaign/format.hpp, shared with
// the mmap'd CompactReader so writer and readers can never drift.
using format::FileHeader;
using format::FrameHeader;
using format::kCommitMagic;
using format::kHeaderSize;
using format::kMaxPayload;
using format::kPageMagic;
constexpr auto& kMagic = format::kJournalMagic;

bool write_all(int fd, const void* data, std::size_t n) {
  return util::detail::write_all(fd, data, n);
}

/// read(2) until `n` bytes or EOF; returns bytes read (< n only at EOF).
std::size_t read_full(int fd, void* data, std::size_t n) {
  char* p = static_cast<char*>(data);
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, p + got, n - got);
    if (r < 0) {
      if (errno == EINTR) continue;
      throw Error(std::string("store read failed: ") + std::strerror(errno));
    }
    if (r == 0) break;
    got += static_cast<std::size_t>(r);
  }
  return got;
}

FileHeader make_header(const ResultStore::Meta& meta) {
  FileHeader h{};
  std::memcpy(h.magic, kMagic, sizeof kMagic);
  h.record_size = meta.record_size;
  h.dies = meta.space.dies;
  h.corners = meta.space.corners;
  h.seeds = meta.space.seeds;
  h.config_hash = meta.config_hash;
  h.campaign_seed = meta.campaign_seed;
  h.crc = format::header_body_crc(h);
  return h;
}

void append_raw(std::string& out, const void* data, std::size_t n) {
  out.append(static_cast<const char*>(data), n);
}

}  // namespace

ResultStore::ResultStore(ResultStore&& other) noexcept { *this = std::move(other); }

ResultStore& ResultStore::operator=(ResultStore&& other) noexcept {
  if (this != &other) {
    close_fd();
    path_ = std::move(other.path_);
    meta_ = other.meta_;
    fd_ = other.fd_;
    records_ = std::move(other.records_);
    present_ = std::move(other.present_);
    pending_count_ = other.pending_count_;
    next_seq_ = other.next_seq_;
    other.fd_ = -1;
  }
  return *this;
}

ResultStore::~ResultStore() { close_fd(); }

void ResultStore::close_fd() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::uint64_t ResultStore::unit_of(const UnitRecord& rec) const {
  return meta_.space.index_of(rec.die, rec.corner, rec.seed);
}

ResultStore ResultStore::create(const std::string& path, const Meta& meta) {
  ECMS_REQUIRE(meta.record_size == sizeof(UnitRecord),
               "store record size must match UnitRecord");
  ECMS_REQUIRE(meta.space.total() > 0, "empty unit space");
  ResultStore s;
  s.path_ = path;
  s.meta_ = meta;
  s.present_.assign(meta.space.total(), false);
  s.fd_ = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (s.fd_ < 0) {
    throw Error("cannot create campaign store " + path + ": " +
                std::strerror(errno));
  }
  const FileHeader h = make_header(meta);
  if (!write_all(s.fd_, &h, sizeof h) || ::fsync(s.fd_) != 0) {
    throw Error("cannot write campaign store header to " + path);
  }
  ECMS_METRIC_COUNT("campaign.store.bytes", sizeof h);
  ECMS_METRIC_COUNT("campaign.store.fsyncs", 1);
  return s;
}

ResultStore ResultStore::open_for_resume(const std::string& path,
                                         const Meta& expect,
                                         ReplayReport* report) {
  ResultStore s;
  s.path_ = path;
  s.fd_ = ::open(path.c_str(), O_RDWR);
  if (s.fd_ < 0) {
    throw Error("cannot open campaign store " + path + ": " +
                std::strerror(errno));
  }

  FileHeader h{};
  if (read_full(s.fd_, &h, sizeof h) != sizeof h ||
      std::memcmp(h.magic, kMagic, sizeof kMagic) != 0) {
    throw Error(path + " is not a campaign store (bad header)");
  }
  if (h.crc != format::header_body_crc(h)) {
    throw Error(path + ": store header checksum mismatch");
  }
  s.meta_ = Meta{h.record_size,
                 UnitSpace{h.dies, h.corners, h.seeds},
                 h.config_hash,
                 h.campaign_seed};
  if (s.meta_.record_size != expect.record_size ||
      !(s.meta_.space == expect.space) ||
      s.meta_.config_hash != expect.config_hash ||
      s.meta_.campaign_seed != expect.campaign_seed) {
    throw Error(path +
                ": campaign configuration does not match the existing "
                "store — resume with the original flags or use a fresh "
                "--dir");
  }
  s.present_.assign(s.meta_.space.total(), false);

  // Replay. `pending` holds records seen since the last commit frame; a
  // commit frame promotes them and advances the watermark.
  ReplayReport rep;
  std::vector<UnitRecord> pending;
  std::uint64_t offset = kHeaderSize;    // current read position
  std::uint64_t watermark = kHeaderSize; // end of last durable commit
  std::uint32_t seq = 0;
  std::uint32_t watermark_seq = 0;  // next frame seq at the watermark
  std::uint64_t committed_count = 0;
  bool stop = false;
  while (!stop) {
    FrameHeader fh{};
    const std::size_t got = read_full(s.fd_, &fh, sizeof fh);
    if (got == 0) break;  // clean end of journal
    if (got < sizeof fh) {
      rep.dropped_tail_bytes += got;
      break;
    }
    if ((fh.magic != kPageMagic && fh.magic != kCommitMagic) ||
        fh.seq != seq || fh.payload_len > kMaxPayload) {
      // Garbled frame header: everything from here on is untrusted.
      rep.dropped_tail_bytes += sizeof fh;
      break;
    }
    std::vector<char> payload(fh.payload_len);
    const std::size_t pgot = read_full(s.fd_, payload.data(), payload.size());
    if (pgot < payload.size()) {
      rep.dropped_tail_bytes += sizeof fh + pgot;
      break;
    }
    if (util::crc32(payload.data(), payload.size()) != fh.crc) {
      // Quarantine: the frame was fully present but its bytes rotted.
      // Conservatively stop trusting the journal here; the units covered
      // by this and later frames will simply be re-measured.
      rep.quarantined_frames += 1;
      rep.dropped_tail_bytes += sizeof fh + payload.size();
      ECMS_METRIC_COUNT("campaign.store.quarantined", 1);
      break;
    }
    offset += sizeof fh + payload.size();
    ++seq;
    if (fh.magic == kPageMagic) {
      if (payload.size() % s.meta_.record_size != 0) {
        rep.quarantined_frames += 1;
        stop = true;
        break;
      }
      const std::size_t n = payload.size() / s.meta_.record_size;
      for (std::size_t i = 0; i < n; ++i) {
        UnitRecord rec;
        std::memcpy(&rec, payload.data() + i * sizeof rec, sizeof rec);
        pending.push_back(rec);
      }
    } else {
      std::uint64_t count = 0;
      if (payload.size() != sizeof count) {
        rep.quarantined_frames += 1;
        break;
      }
      std::memcpy(&count, payload.data(), sizeof count);
      if (count != committed_count + pending.size()) {
        // A commit frame that disagrees with the records it covers is
        // corruption, not a torn write (torn writes truncate).
        rep.quarantined_frames += 1;
        break;
      }
      // Validate the whole batch before adopting any of it, so a bad
      // record can never leave half a commit in memory while the file
      // truncates the whole commit away.
      for (const UnitRecord& rec : pending) {
        if (rec.die >= s.meta_.space.dies ||
            rec.corner >= s.meta_.space.corners ||
            rec.seed >= s.meta_.space.seeds) {
          rep.quarantined_frames += 1;
          stop = true;
          break;
        }
      }
      if (stop) break;
      for (const UnitRecord& rec : pending) {
        const std::uint64_t unit = s.unit_of(rec);
        if (s.present_[unit]) {
          rep.duplicate_records += 1;
          continue;
        }
        s.present_[unit] = true;
        s.records_.push_back(rec);
      }
      pending.clear();
      committed_count = count;
      watermark = offset;
      watermark_seq = seq;
    }
  }
  rep.dropped_records = pending.size();
  rep.committed_records = s.records_.size();

  // Truncate to the watermark so the torn tail can never be replayed
  // again and appends continue from the last durable byte.
  if (::ftruncate(s.fd_, static_cast<off_t>(watermark)) != 0 ||
      ::lseek(s.fd_, static_cast<off_t>(watermark), SEEK_SET) < 0 ||
      ::fsync(s.fd_) != 0) {
    throw Error(path + ": cannot truncate journal to commit watermark");
  }
  s.next_seq_ = watermark_seq;
  ECMS_METRIC_COUNT("campaign.store.replayed_records", rep.committed_records);
  if (rep.dropped_tail_bytes > 0) {
    ECMS_LOG(LogLevel::kWarn)
        << "campaign store " << path << ": dropped " << rep.dropped_tail_bytes
        << " torn tail byte(s), " << rep.dropped_records
        << " uncommitted record(s), " << rep.quarantined_frames
        << " quarantined frame(s)";
  }
  if (report != nullptr) *report = rep;
  return s;
}

void ResultStore::append(const UnitRecord& rec) {
  const std::uint64_t unit = unit_of(rec);
  ECMS_REQUIRE(rec.die < meta_.space.dies && rec.corner < meta_.space.corners &&
                   rec.seed < meta_.space.seeds,
               "record outside the campaign unit space");
  ECMS_REQUIRE(!present_[unit], "unit already recorded");
  present_[unit] = true;
  records_.push_back(rec);
  ++pending_count_;
}

void ResultStore::commit() {
  if (pending_count_ == 0) return;
  ECMS_REQUIRE(fd_ >= 0, "store not open");

  // One buffered write for page + commit keeps the frame pair adjacent;
  // durability still comes from the fsync, not the single write.
  std::string out;
  const std::size_t n = pending_count_;
  const char* page =
      reinterpret_cast<const char*>(records_.data() + (records_.size() - n));
  const std::size_t page_bytes = n * sizeof(UnitRecord);
  FrameHeader ph{kPageMagic, static_cast<std::uint32_t>(page_bytes),
                 next_seq_, util::crc32(page, page_bytes)};
  append_raw(out, &ph, sizeof ph);
  append_raw(out, page, page_bytes);
  ++next_seq_;

  const std::uint64_t committed = records_.size();
  FrameHeader ch{kCommitMagic, sizeof committed, next_seq_,
                 util::crc32(&committed, sizeof committed)};
  append_raw(out, &ch, sizeof ch);
  append_raw(out, &committed, sizeof committed);
  ++next_seq_;

  if (!write_all(fd_, out.data(), out.size())) {
    throw Error("campaign store append failed: " +
                std::string(std::strerror(errno)));
  }
  if (::fsync(fd_) != 0) {
    throw Error("campaign store fsync failed: " +
                std::string(std::strerror(errno)));
  }
  pending_count_ = 0;
  ECMS_METRIC_COUNT("campaign.store.pages", 1);
  ECMS_METRIC_COUNT("campaign.store.commits", 1);
  ECMS_METRIC_COUNT("campaign.store.bytes", out.size());
  ECMS_METRIC_COUNT("campaign.store.fsyncs", 1);
}

bool ResultStore::contains(std::uint64_t unit) const {
  return unit < present_.size() && present_[unit];
}

void ResultStore::write_compact(const std::string& path) const {
  std::vector<UnitRecord> sorted = records_;
  std::sort(sorted.begin(), sorted.end(),
            [this](const UnitRecord& a, const UnitRecord& b) {
              return unit_of(a) < unit_of(b);
            });

  std::string out;
  out.reserve(kHeaderSize + sorted.size() * sizeof(UnitRecord));
  append_raw(out, format::kCompactMagic, sizeof format::kCompactMagic);
  const std::uint64_t count = sorted.size();
  append_raw(out, &count, sizeof count);
  const FileHeader h = make_header(meta_);
  append_raw(out, &h, sizeof h);

  // Column-major: each field contiguous over all records, in unit order.
  // `attempts` is deliberately absent: it records scheduling history (how
  // many dispatches a unit cost), not measurement results, and the compact
  // file is the canonical image the kill-resume determinism gate compares
  // byte for byte.
  for (const auto& r : sorted) append_raw(out, &r.die, sizeof r.die);
  for (const auto& r : sorted) append_raw(out, &r.corner, sizeof r.corner);
  for (const auto& r : sorted) append_raw(out, &r.seed, sizeof r.seed);
  for (const auto& r : sorted) append_raw(out, &r.status, sizeof r.status);
  for (const auto& r : sorted) append_raw(out, &r.cells, sizeof r.cells);
  for (const auto& r : sorted) append_raw(out, &r.recovered, sizeof r.recovered);
  for (const auto& r : sorted) {
    append_raw(out, &r.unmeasurable, sizeof r.unmeasurable);
  }
  for (const auto& r : sorted) append_raw(out, &r.code_hash, sizeof r.code_hash);
  for (const auto& r : sorted) append_raw(out, &r.mean_code, sizeof r.mean_code);
  for (const auto& r : sorted) {
    append_raw(out, &r.code_stddev, sizeof r.code_stddev);
  }
  for (const auto& r : sorted) append_raw(out, r.code_hist, sizeof r.code_hist);

  const std::uint32_t crc = util::crc32(out.data(), out.size());
  append_raw(out, &crc, sizeof crc);
  util::atomic_write_file(path, out);
}

}  // namespace ecms::campaign
