// Campaign worker loop: the body of the `campaign-worker` subprocess.
#pragma once

#include "campaign/campaign.hpp"

namespace ecms::campaign {

/// Serves measurement commands until "q" or EOF (EOF means the supervisor
/// died; the orphan exits quietly instead of spinning). Reads commands
/// from `cmd_fd`, writes ResultFrames to `result_fd`. Returns the process
/// exit code. Honors the config's chaos knobs (crash_rate, hang_unit,
/// unit_delay_ms) — those simulate the OOM-kills and hangs the supervisor
/// must survive.
int run_worker_loop(const CampaignConfig& cfg, int cmd_fd, int result_fd);

}  // namespace ecms::campaign
