// Campaign supervisor: sharded worker supervision with kill-resume
// recovery (DESIGN.md §12).
//
// The supervisor owns the result store and the worker fleet. Workers are
// subprocesses (fork, or fork+exec of `ecms_tool campaign-worker`), so a
// worker crash, OOM-kill or sanitizer abort is isolated: the supervisor
// records a failed attempt for the in-flight unit, re-dispatches it up to
// the retry budget, respawns the worker, and the campaign degrades instead
// of dying. A per-unit wall-clock watchdog SIGKILLs hung workers the same
// way. SIGINT/SIGTERM drain gracefully: in-flight units finish, the store
// commits, the manifest marks the campaign resumable.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "campaign/campaign.hpp"
#include "campaign/store.hpp"

namespace ecms::campaign {

/// One terminally failed unit (every attempt exhausted).
struct UnitFailure {
  std::uint64_t unit = 0;
  int attempts = 0;
  std::string reason;      ///< last failure kind (crash / timeout / error)
  std::string worker_log;  ///< log file of the last worker that tried it
};

/// What one run_campaign() invocation did and how the campaign stands.
struct CampaignSummary {
  std::uint64_t units_total = 0;
  std::uint64_t units_done = 0;     ///< records in the store (incl. resumed)
  std::uint64_t units_ok = 0;       ///< measured this invocation, 1st attempt
  std::uint64_t units_retried = 0;  ///< measured this invocation, >1 attempt
  std::uint64_t units_failed = 0;   ///< exhausted this invocation
  std::uint64_t workers_spawned = 0;
  std::uint64_t worker_crashes = 0;
  std::uint64_t worker_timeouts = 0;
  bool drained = false;  ///< interrupted by SIGINT/SIGTERM; resumable
  std::vector<UnitFailure> failures;
  ReplayReport replay;  ///< what resume recovered (zeros on a fresh run)

  /// Every unit has a record (possibly from an earlier invocation).
  bool complete() const { return units_done == units_total; }
  /// Anything non-pristine happened: failed units, crashes, timeouts,
  /// retries, or an interrupted (drained) run. Maps to CLI exit 3.
  bool degraded() const {
    return units_failed > 0 || worker_crashes > 0 || worker_timeouts > 0 ||
           units_retried > 0 || drained || !complete();
  }
};

/// Result of a supervisor run: summary plus the full record set (for the
/// aggregate reports) and where the artifacts live.
struct CampaignResult {
  CampaignSummary summary;
  std::vector<UnitRecord> records;
  std::string store_path;
  std::string compact_path;    ///< written only when the campaign completed
  std::string manifest_path;
};

/// Runs (or resumes, per cfg.resume) a campaign to completion or drain.
/// Creates cfg.dir if needed. Throws ecms::Error on hard failures only —
/// store corruption at the header level, config mismatch, inability to
/// spawn any worker; per-unit and per-worker trouble degrades instead.
CampaignResult run_campaign(const CampaignConfig& cfg);

/// Serializes the chaos/model flags a worker subprocess needs; used to
/// build the `campaign-worker` argv in exec_self mode (the CLI parses them
/// back with the same parser the `campaign` subcommand uses).
std::vector<std::string> worker_args(const CampaignConfig& cfg);

/// Writes the campaign manifest JSON atomically: config, progress,
/// failures (with worker-log references), state
/// (complete|degraded|resumable).
void write_manifest(const CampaignConfig& cfg, const CampaignSummary& s);

}  // namespace ecms::campaign
