#include "campaign/worker.hpp"

#include <signal.h>
#include <time.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>

#include "campaign/protocol.hpp"
#include "util/crc32.hpp"
#include "util/fileio.hpp"

namespace ecms::campaign {
namespace {

/// Reads one '\n'-terminated line (without the newline). Returns false on
/// EOF or error. Byte-at-a-time is plenty: one command per unit.
bool read_line(int fd, std::string& line) {
  line.clear();
  char ch;
  for (;;) {
    const ssize_t r = ::read(fd, &ch, 1);
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (r == 0) return !line.empty();
    if (ch == '\n') return true;
    line += ch;
  }
}

void sleep_ms(long ms) {
  struct timespec ts;
  ts.tv_sec = ms / 1000;
  ts.tv_nsec = (ms % 1000) * 1000000L;
  while (::nanosleep(&ts, &ts) != 0 && errno == EINTR) {
  }
}

}  // namespace

int run_worker_loop(const CampaignConfig& cfg, int cmd_fd, int result_fd) {
  // The supervisor may die (or be SIGKILL'd by the chaos tests) while we
  // hold a result; a write to the closed pipe must fail with EPIPE, not
  // kill us with an unlogged SIGPIPE.
  ::signal(SIGPIPE, SIG_IGN);

  std::string line;
  while (read_line(cmd_fd, line)) {
    if (line == "q") return 0;
    unsigned long long parsed = 0;
    int attempt = 0;
    if (std::sscanf(line.c_str(), "u %llu %d", &parsed, &attempt) != 2) {
      std::fprintf(stderr, "worker: unparseable command '%s'\n", line.c_str());
      return 2;
    }
    const std::uint64_t unit = parsed;

    // Chaos knobs (deterministic, keyed by unit+attempt): a planned crash
    // models an OOM-kill / sanitizer abort, a planned hang models a stuck
    // solve the watchdog must reap.
    if (crash_planned(cfg, unit, attempt)) {
      std::fprintf(stderr,
                   "worker: injected crash on unit %llu attempt %d\n",
                   static_cast<unsigned long long>(unit), attempt);
      std::fflush(stderr);
      _exit(97);
    }
    if (unit == cfg.hang_unit && attempt == 0) {
      std::fprintf(stderr, "worker: injected hang on unit %llu\n",
                   static_cast<unsigned long long>(unit));
      std::fflush(stderr);
      for (;;) sleep_ms(3600 * 1000L);
    }
    if (cfg.unit_delay_ms > 0) sleep_ms(cfg.unit_delay_ms);

    ResultFrame frame;
    frame.unit = unit;
    try {
      frame.record = measure_unit(cfg, unit);
      frame.status = static_cast<std::uint32_t>(AttemptStatus::kOk);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "worker: unit %llu attempt %d failed: %s\n",
                   static_cast<unsigned long long>(unit), attempt, e.what());
      std::fflush(stderr);
      frame.record = UnitRecord{};
      frame.record.die = cfg.space.die_of(unit);
      frame.record.corner = static_cast<std::uint16_t>(cfg.space.corner_of(unit));
      frame.record.seed = static_cast<std::uint16_t>(cfg.space.seed_of(unit));
      frame.record.status = static_cast<std::uint16_t>(UnitStatus::kError);
      frame.status = static_cast<std::uint32_t>(AttemptStatus::kError);
    }
    frame.crc = util::crc32(&frame.record, sizeof frame.record);
    if (!util::detail::write_all(result_fd, &frame, sizeof frame)) {
      // Supervisor is gone; nothing useful left to do.
      return 0;
    }
  }
  return 0;  // EOF: supervisor exited or was killed
}

}  // namespace ecms::campaign
