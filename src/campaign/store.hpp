// Journaled on-disk result store for campaign unit records.
//
// The store is a single append-only file that doubles as its own
// write-ahead journal (DESIGN.md §12):
//
//   header | frame | frame | frame | ...
//
// where each frame is a 16-byte header {magic, payload_len, seq, crc32}
// followed by its payload. Two frame kinds exist: PAGE frames carry
// fixed-width UnitRecords (a page per commit batch), COMMIT frames carry
// the cumulative committed-record count — the commit watermark. commit()
// appends the pending page, appends a commit frame, and fsyncs, so a
// record is durable exactly when the commit frame that covers it is on
// disk. That is the per-unit durability boundary the supervisor relies on.
//
// Recovery (open_for_resume) replays the journal front to back:
//   * records after the last valid COMMIT frame are dropped (they were
//     never promised durable — the watermark is what makes replay
//     idempotent);
//   * a short/garbled trailing frame is a torn tail: truncated away;
//   * a frame whose CRC fails mid-file is quarantined: replay stops there,
//     conservatively dropping it and everything after it (those units are
//     simply re-measured — cheaper than trusting a corrupt page);
//   * duplicate unit records keep the first occurrence (a unit's record is
//     a pure function of its key, so any duplicate is byte-identical
//     anyway; the count is surfaced for diagnostics).
// After replay the file is truncated to the watermark so new appends
// continue from the last durable byte.
//
// The journal is append-ordered (whatever order workers finished in);
// write_compact() exports the canonical image — records sorted by unit
// index, serialized column-major — whose bytes are identical for any
// scheduling history. The kill-resume determinism gate (EXT-A11) compares
// these compacted files.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "campaign/record.hpp"

namespace ecms::campaign {

/// What a journal replay found (surfaced in logs and asserted by
/// CampaignStoreT).
struct ReplayReport {
  std::size_t committed_records = 0;   ///< records adopted from the journal
  std::size_t dropped_records = 0;     ///< valid but past the last commit
  std::size_t dropped_tail_bytes = 0;  ///< torn/garbled bytes truncated
  std::size_t quarantined_frames = 0;  ///< CRC-failed frames (replay stops)
  std::size_t duplicate_records = 0;   ///< later duplicates ignored
};

class ResultStore {
 public:
  /// Identity of the store; persisted in the header and verified on
  /// resume, so a campaign can never continue into a store produced by
  /// different parameters.
  struct Meta {
    std::uint32_t record_size = sizeof(UnitRecord);
    UnitSpace space;
    std::uint64_t config_hash = 0;
    std::uint64_t campaign_seed = 0;
  };

  ResultStore(ResultStore&& other) noexcept;
  ResultStore& operator=(ResultStore&&) noexcept;
  ResultStore(const ResultStore&) = delete;
  ResultStore& operator=(const ResultStore&) = delete;
  ~ResultStore();

  /// Creates a fresh store (truncating any existing file), writes and
  /// fsyncs the header. Throws ecms::Error on I/O failure.
  static ResultStore create(const std::string& path, const Meta& meta);

  /// Opens an existing store, verifies the header against `expect`
  /// (space + config hash + record size), replays the journal per the
  /// recovery rules above, truncates to the commit watermark and positions
  /// for append. Throws ecms::Error on I/O failure, a bad header, or a
  /// meta mismatch.
  static ResultStore open_for_resume(const std::string& path,
                                     const Meta& expect,
                                     ReplayReport* report = nullptr);

  /// Buffers one record into the pending page. Records for units already
  /// present are rejected (ecms::Error) — the supervisor never re-runs a
  /// committed unit.
  void append(const UnitRecord& rec);

  /// Flushes the pending page + a commit frame and fsyncs. No-op when
  /// nothing is pending. This is the unit-boundary durability point.
  void commit();

  const Meta& meta() const { return meta_; }
  const std::string& path() const { return path_; }
  /// All durable records plus any pending (uncommitted) appends, in
  /// append order.
  const std::vector<UnitRecord>& records() const { return records_; }
  /// True when the unit already has a (durable or pending) record.
  bool contains(std::uint64_t unit) const;
  std::size_t pending() const { return pending_count_; }

  /// Writes the canonical compacted image atomically: header, then each
  /// record field as a column, records sorted by unit index. Bytes are a
  /// pure function of the record set (scheduling-independent).
  void write_compact(const std::string& path) const;

 private:
  ResultStore() = default;
  void close_fd() noexcept;
  std::uint64_t unit_of(const UnitRecord& rec) const;

  std::string path_;
  Meta meta_;
  int fd_ = -1;
  std::vector<UnitRecord> records_;  ///< committed + pending, append order
  std::vector<bool> present_;        ///< by unit index, sized space.total()
  std::size_t pending_count_ = 0;    ///< trailing records_ not yet committed
  std::uint32_t next_seq_ = 0;       ///< next frame sequence number
};

}  // namespace ecms::campaign
