// On-disk formats of the campaign result store (DESIGN.md §12).
//
// Shared between the journal writer/replayer (store.cpp) and the mmap'd
// compact reader (compact.cpp) so the two sides can never drift: one
// FileHeader layout, one CRC rule, one set of magics.
//
// Journal (`campaign.store`): FileHeader, then PAGE/CMIT frames, each a
// 16-byte FrameHeader + payload (CRC over payload, strictly increasing
// seq). Compact (`campaign.compact`): 8-byte magic + u64 record count +
// FileHeader, then the column-major record fields in unit order, then one
// trailing u32 CRC over every preceding byte of the file.
#pragma once

#include <cstddef>
#include <cstdint>
#include <type_traits>

#include "campaign/record.hpp"
#include "util/crc32.hpp"

namespace ecms::campaign::format {

constexpr char kJournalMagic[8] = {'E', 'C', 'M', 'S', 'C', 'M', 'P', '1'};
constexpr char kCompactMagic[8] = {'E', 'C', 'M', 'S', 'C', 'O', 'L', '1'};
constexpr std::uint32_t kPageMagic = 0x45474150;    // "PAGE"
constexpr std::uint32_t kCommitMagic = 0x54494D43;  // "CMIT"
constexpr std::size_t kHeaderSize = 64;
/// A page frame larger than this is structurally impossible (the supervisor
/// commits per unit); treat it as corruption instead of allocating wild.
constexpr std::uint32_t kMaxPayload = 64u << 20;

/// On-disk file header, padded to kHeaderSize. `crc` covers every byte
/// after itself.
struct FileHeader {
  char magic[8];
  std::uint32_t crc;
  std::uint32_t record_size;
  std::uint32_t dies, corners, seeds;
  std::uint32_t pad;  ///< explicit, so no alignment padding is CRC'd
  std::uint64_t config_hash;
  std::uint64_t campaign_seed;
  std::uint8_t reserved[kHeaderSize - 48];
};
static_assert(sizeof(FileHeader) == kHeaderSize);
static_assert(std::is_trivially_copyable_v<FileHeader>);

/// The header's self-check CRC: everything after the crc field itself.
inline std::uint32_t header_body_crc(const FileHeader& h) {
  const char* body = reinterpret_cast<const char*>(&h) + 12;
  return util::crc32(body, sizeof h - 12);
}

/// 16-byte frame header (journal only). `crc` covers the payload; `seq`
/// must be the previous frame's seq + 1, which catches a frame spliced
/// from another store generation.
struct FrameHeader {
  std::uint32_t magic;
  std::uint32_t payload_len;
  std::uint32_t seq;
  std::uint32_t crc;
};
static_assert(sizeof(FrameHeader) == 16);

/// Bytes per record across the compact file's columns (attempts is
/// deliberately absent — scheduling history, not measurement result).
/// die(4) + corner(2) + seed(2) + status(2) + cells(4) + recovered(4) +
/// unmeasurable(4) + code_hash(8) + mean_code(8) + code_stddev(8) +
/// code_hist(4*kCodeBins).
constexpr std::size_t kCompactBytesPerRecord =
    4 + 2 + 2 + 2 + 4 + 4 + 4 + 8 + 8 + 8 + 4 * kCodeBins;
/// magic + count + FileHeader prologue, before the columns.
constexpr std::size_t kCompactPrologue = 8 + 8 + kHeaderSize;

/// Total compact-file size for `count` records (incl. trailing CRC).
constexpr std::size_t compact_file_size(std::uint64_t count) {
  return kCompactPrologue +
         static_cast<std::size_t>(count) * kCompactBytesPerRecord +
         sizeof(std::uint32_t);
}

}  // namespace ecms::campaign::format
