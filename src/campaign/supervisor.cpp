#include "campaign/supervisor.hpp"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>
#include <string>
#include <vector>

#include "campaign/protocol.hpp"
#include "campaign/worker.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "util/crc32.hpp"
#include "util/error.hpp"
#include "util/fileio.hpp"
#include "util/log.hpp"
#include "util/retry.hpp"

namespace ecms::campaign {
namespace {

using Clock = std::chrono::steady_clock;

volatile sig_atomic_t g_drain = 0;
void drain_handler(int) { g_drain = 1; }

/// One worker subprocess and its in-flight state.
struct Worker {
  pid_t pid = -1;
  int cmd_fd = -1;  ///< write end: command lines to the worker's stdin
  int res_fd = -1;  ///< read end: ResultFrames back
  int slot = 0;     ///< stable log-file slot
  std::uint64_t unit = kNoUnit;  ///< in-flight unit (kNoUnit = idle)
  int attempt = 0;
  Clock::time_point deadline;
  std::string buf;       ///< partial-frame reassembly
  bool quitting = false;  ///< "q" sent; EOF is a clean exit, not a crash
  bool alive() const { return pid > 0; }
  bool busy() const { return unit != kNoUnit; }
};

void close_quiet(int fd) {
  if (fd >= 0) ::close(fd);
}

void mkdir_p(const std::string& dir) {
  // Two levels are enough for `<parent>/<campaign>`; deeper paths must
  // already exist.
  const std::size_t slash = dir.find_last_of('/');
  if (slash != std::string::npos && slash > 0) {
    ::mkdir(dir.substr(0, slash).c_str(), 0755);
  }
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    throw Error("cannot create campaign directory " + dir + ": " +
                std::strerror(errno));
  }
}

std::string format_flag_number(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

/// Spawns one worker: pipes + log redirection + fork (+ optional exec of
/// `<self> campaign-worker`). Throws on fork/pipe failure.
Worker spawn_worker(const CampaignConfig& cfg, int slot) {
  int cmd_pipe[2];  // supervisor writes, worker stdin reads
  int res_pipe[2];  // worker writes, supervisor reads
  if (::pipe(cmd_pipe) != 0 || ::pipe(res_pipe) != 0) {
    throw Error("cannot create worker pipes: " +
                std::string(std::strerror(errno)));
  }
  const std::string log_path = cfg.worker_log_path(slot);
  const int log_fd =
      ::open(log_path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (log_fd < 0) {
    throw Error("cannot open worker log " + log_path + ": " +
                std::strerror(errno));
  }

  const pid_t pid = ::fork();
  if (pid < 0) {
    throw Error("cannot fork worker: " + std::string(std::strerror(errno)));
  }
  if (pid == 0) {
    // Child. Redirect stdio: stdin = command pipe, stdout/stderr = the log
    // file (so a crash's diagnostics are never lost to an inherited tty).
    ::dup2(cmd_pipe[0], STDIN_FILENO);
    ::dup2(log_fd, STDOUT_FILENO);
    ::dup2(log_fd, STDERR_FILENO);
    close_quiet(cmd_pipe[0]);
    close_quiet(cmd_pipe[1]);
    close_quiet(res_pipe[0]);
    close_quiet(log_fd);
    if (cfg.exec_self && !cfg.self_path.empty()) {
      std::vector<std::string> args;
      args.push_back(cfg.self_path);
      args.push_back("campaign-worker");
      args.push_back("--result-fd");
      args.push_back(std::to_string(res_pipe[1]));
      for (const std::string& a : worker_args(cfg)) args.push_back(a);
      std::vector<char*> argv;
      for (std::string& a : args) argv.push_back(a.data());
      argv.push_back(nullptr);
      ::execv(cfg.self_path.c_str(), argv.data());
      std::fprintf(stderr, "worker: exec %s failed: %s\n",
                   cfg.self_path.c_str(), std::strerror(errno));
      _exit(127);
    }
    const int rc = run_worker_loop(cfg, STDIN_FILENO, res_pipe[1]);
    _exit(rc);
  }

  // Parent.
  close_quiet(cmd_pipe[0]);
  close_quiet(res_pipe[1]);
  close_quiet(log_fd);
  ::fcntl(res_pipe[0], F_SETFL, O_NONBLOCK);
  Worker w;
  w.pid = pid;
  w.cmd_fd = cmd_pipe[1];
  w.res_fd = res_pipe[0];
  w.slot = slot;
  ECMS_METRIC_COUNT("campaign.workers.spawned", 1);
  return w;
}

bool send_line(Worker& w, const std::string& line) {
  return util::detail::write_all(w.cmd_fd, line.data(), line.size());
}

void reap_worker(Worker& w) {
  close_quiet(w.cmd_fd);
  close_quiet(w.res_fd);
  w.cmd_fd = w.res_fd = -1;
  if (w.pid > 0) {
    int st = 0;
    ::waitpid(w.pid, &st, 0);
  }
  w.pid = -1;
}

}  // namespace

std::vector<std::string> worker_args(const CampaignConfig& cfg) {
  std::vector<std::string> a;
  auto flag = [&a](const char* name, const std::string& v) {
    a.push_back(name);
    a.push_back(v);
  };
  flag("--dies", std::to_string(cfg.space.dies));
  flag("--corners", std::to_string(cfg.space.corners));
  flag("--seeds", std::to_string(cfg.space.seeds));
  flag("--seed", std::to_string(cfg.seed));
  flag("--rows", std::to_string(cfg.rows));
  flag("--cols", std::to_string(cfg.cols));
  flag("--noise", format_flag_number(cfg.noise_sigma_rel));
  flag("--sigma", format_flag_number(cfg.local_sigma_rel));
  flag("--gradient", format_flag_number(cfg.gradient));
  flag("--drift", format_flag_number(cfg.drift));
  flag("--shorts", format_flag_number(cfg.defect_rates.short_rate));
  flag("--opens", format_flag_number(cfg.defect_rates.open_rate));
  flag("--partials", format_flag_number(cfg.defect_rates.partial_rate));
  flag("--bridges", format_flag_number(cfg.defect_rates.bridge_rate));
  flag("--unit-delay-ms", std::to_string(cfg.unit_delay_ms));
  flag("--fault-rate", format_flag_number(cfg.crash_rate));
  flag("--fault-seed", std::to_string(cfg.crash_seed));
  if (cfg.hang_unit != kNoUnit) {
    flag("--hang-unit", std::to_string(cfg.hang_unit));
  }
  return a;
}

void write_manifest(const CampaignConfig& cfg, const CampaignSummary& s) {
  std::string j = "{\n";
  auto field = [&j](const char* k, const std::string& v, bool quote,
                    bool last = false) {
    j += "  \"";
    j += k;
    j += "\": ";
    if (quote) j += '"';
    j += v;
    if (quote) j += '"';
    j += last ? "\n" : ",\n";
  };
  const char* state = s.drained                ? "resumable"
                      : !s.complete()          ? "resumable"
                      : s.units_failed > 0     ? "degraded"
                      : s.degraded()           ? "degraded"
                                               : "complete";
  field("state", state, true);
  field("dies", std::to_string(cfg.space.dies), false);
  field("corners", std::to_string(cfg.space.corners), false);
  field("seeds", std::to_string(cfg.space.seeds), false);
  field("seed", std::to_string(cfg.seed), false);
  field("rows", std::to_string(cfg.rows), false);
  field("cols", std::to_string(cfg.cols), false);
  field("config_hash", std::to_string(cfg.config_hash()), true);
  field("store", obs::json_escape(cfg.store_path()), true);
  field("units_total", std::to_string(s.units_total), false);
  field("units_done", std::to_string(s.units_done), false);
  field("units_ok", std::to_string(s.units_ok), false);
  field("units_retried", std::to_string(s.units_retried), false);
  field("units_failed", std::to_string(s.units_failed), false);
  field("workers_spawned", std::to_string(s.workers_spawned), false);
  field("worker_crashes", std::to_string(s.worker_crashes), false);
  field("worker_timeouts", std::to_string(s.worker_timeouts), false);
  j += "  \"failures\": [";
  for (std::size_t i = 0; i < s.failures.size(); ++i) {
    const UnitFailure& f = s.failures[i];
    j += i == 0 ? "\n" : ",\n";
    j += "    {\"unit\": " + std::to_string(f.unit) +
         ", \"attempts\": " + std::to_string(f.attempts) + ", \"reason\": \"" +
         obs::json_escape(f.reason) + "\", \"worker_log\": \"" +
         obs::json_escape(f.worker_log) + "\"}";
  }
  j += s.failures.empty() ? "]\n" : "\n  ]\n";
  j += "}\n";
  util::atomic_write_file(cfg.manifest_path(), j);
}

CampaignResult run_campaign(const CampaignConfig& cfg) {
  ECMS_REQUIRE(!cfg.dir.empty(), "campaign directory not set");
  ECMS_REQUIRE(cfg.space.corners >= 1 && cfg.space.corners <= 5,
               "corners must be in [1, 5] (tech::kAllCorners)");
  ECMS_REQUIRE(cfg.space.total() > 0, "empty campaign space");
  ECMS_REQUIRE(cfg.rows > 0 && cfg.cols > 0 && cfg.rows % 4 == 0 &&
                   cfg.cols % 4 == 0,
               "campaign arrays must be multiples of the 4x4 tile");
  ECMS_REQUIRE(cfg.workers >= 1, "need at least one worker");
  mkdir_p(cfg.dir);

  const ResultStore::Meta meta{sizeof(UnitRecord), cfg.space,
                               cfg.config_hash(), cfg.seed};
  CampaignResult out;
  out.store_path = cfg.store_path();
  out.manifest_path = cfg.manifest_path();
  CampaignSummary& sum = out.summary;
  sum.units_total = cfg.space.total();

  ResultStore store = [&] {
    if (cfg.resume) {
      return ResultStore::open_for_resume(out.store_path, meta, &sum.replay);
    }
    if (::access(out.store_path.c_str(), F_OK) == 0) {
      throw Error(out.store_path +
                  " already exists — pass --resume to continue it or use a "
                  "fresh --dir");
    }
    return ResultStore::create(out.store_path, meta);
  }();

  // Work list: every unit without a committed record, ascending. A resumed
  // campaign continues from exactly the first unfinished unit.
  std::deque<std::uint64_t> pending;
  for (std::uint64_t u = 0; u < cfg.space.total(); ++u) {
    if (!store.contains(u)) pending.push_back(u);
  }
  sum.units_done = sum.units_total - pending.size();

  // Per-unit failed-attempt budget, util::RetryPolicy semantics: the
  // budget counts total attempts, clamped to >= 1.
  const int budget = util::RetryPolicy{cfg.retries}.attempts();
  std::vector<int> attempts(cfg.space.total(), 0);

  struct sigaction sa{}, old_int{}, old_term{};
  sa.sa_handler = drain_handler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // no SA_RESTART: poll() must wake on the signal
  g_drain = 0;
  ::sigaction(SIGINT, &sa, &old_int);
  ::sigaction(SIGTERM, &sa, &old_term);
  // A worker can die between our poll and our write to its command pipe;
  // that write must fail with EPIPE, not kill the supervisor.
  struct sigaction ign{}, old_pipe{};
  ign.sa_handler = SIG_IGN;
  sigemptyset(&ign.sa_mask);
  ::sigaction(SIGPIPE, &ign, &old_pipe);

  std::vector<Worker> workers;
  int next_slot = 0;

  auto fail_attempt = [&](Worker& w, const char* why) {
    const std::uint64_t unit = w.unit;
    w.unit = kNoUnit;
    attempts[unit] += 1;
    ECMS_LOG(LogLevel::kWarn)
        << "campaign: unit " << unit << " attempt " << attempts[unit] << "/"
        << budget << " failed (" << why << "), worker log "
        << cfg.worker_log_path(w.slot);
    if (attempts[unit] < budget) {
      pending.push_front(unit);  // retry soon, while the die is warm
    } else {
      sum.units_failed += 1;
      sum.failures.push_back(UnitFailure{unit, attempts[unit], why,
                                         cfg.worker_log_path(w.slot)});
      ECMS_METRIC_COUNT("campaign.units.failed", 1);
    }
  };

  auto dispatch = [&](Worker& w) -> bool {
    if (pending.empty() || g_drain) return false;
    const std::uint64_t unit = pending.front();
    pending.pop_front();
    const std::string cmd = "u " + std::to_string(unit) + " " +
                            std::to_string(attempts[unit]) + "\n";
    if (!send_line(w, cmd)) {
      // The worker died between frames; put the unit back — the death is
      // handled when poll reports the hangup.
      pending.push_front(unit);
      return false;
    }
    w.unit = unit;
    w.attempt = attempts[unit];
    w.deadline = Clock::now() + std::chrono::milliseconds(cfg.unit_timeout_ms);
    return true;
  };

  auto live_workers = [&] {
    std::size_t n = 0;
    for (const Worker& w : workers) n += w.alive() ? 1 : 0;
    return n;
  };

  // Spawn the initial fleet. Spawning zero workers is a hard failure;
  // partial fleets are fine (the campaign just runs narrower).
  const std::size_t want = std::min<std::size_t>(
      static_cast<std::size_t>(cfg.workers), std::max<std::size_t>(pending.size(), 1));
  for (std::size_t i = 0; i < want && !pending.empty(); ++i) {
    workers.push_back(spawn_worker(cfg, next_slot++));
    sum.workers_spawned += 1;
    dispatch(workers.back());
  }

  auto handle_death = [&](Worker& w, bool timed_out) {
    if (timed_out) {
      ::kill(w.pid, SIGKILL);
      sum.worker_timeouts += 1;
      ECMS_METRIC_COUNT("campaign.workers.timed_out", 1);
    } else {
      sum.worker_crashes += 1;
      ECMS_METRIC_COUNT("campaign.workers.crashed", 1);
    }
    reap_worker(w);
    if (w.busy()) fail_attempt(w, timed_out ? "hung-unit timeout" : "worker crash");
    // Respawn while there is still work the dead worker should share.
    if (!g_drain && !pending.empty()) {
      try {
        Worker fresh = spawn_worker(cfg, next_slot++);
        sum.workers_spawned += 1;
        dispatch(fresh);
        w = std::move(fresh);
      } catch (const Error& e) {
        ECMS_LOG(LogLevel::kError) << "campaign: respawn failed: " << e.what();
      }
    }
  };

  auto handle_frame = [&](Worker& w, const ResultFrame& frame) {
    if (frame.magic != kResultMagic || frame.unit != w.unit ||
        frame.crc != util::crc32(&frame.record, sizeof frame.record)) {
      // A garbled or out-of-protocol frame means the worker cannot be
      // trusted; treat it like a crash.
      ::kill(w.pid, SIGKILL);
      handle_death(w, /*timed_out=*/false);
      return;
    }
    if (frame.status == static_cast<std::uint32_t>(AttemptStatus::kError)) {
      fail_attempt(w, "measurement error");
    } else {
      UnitRecord rec = frame.record;
      rec.attempts = static_cast<std::uint16_t>(w.attempt + 1);
      store.append(rec);
      store.commit();  // fsync on the unit boundary: the durability point
      sum.units_done += 1;
      if (w.attempt > 0) {
        sum.units_retried += 1;
        ECMS_METRIC_COUNT("campaign.units.retried", 1);
      } else {
        sum.units_ok += 1;
      }
      ECMS_METRIC_COUNT("campaign.units.ok", 1);
      w.unit = kNoUnit;
    }
    if (w.alive() && !dispatch(w) && (pending.empty() || g_drain) &&
        !w.busy()) {
      send_line(w, "q\n");
      w.quitting = true;
    }
  };

  // Main loop: wait for frames, enforce deadlines, keep the fleet fed.
  for (;;) {
    bool any_busy = false;
    for (const Worker& w : workers) any_busy |= w.alive() && w.busy();
    if (!any_busy && (pending.empty() || g_drain || live_workers() == 0)) {
      break;
    }
    if (!pending.empty() && !g_drain && live_workers() == 0) {
      // Every worker is gone but work remains (e.g. crash storm): try to
      // rebuild a single worker; if even that fails, give up hard.
      workers.push_back(spawn_worker(cfg, next_slot++));
      sum.workers_spawned += 1;
      dispatch(workers.back());
    }

    // Poll over live result fds, capped at the nearest watchdog deadline.
    std::vector<pollfd> fds;
    std::vector<std::size_t> fd_owner;
    const Clock::time_point now = Clock::now();
    int timeout_ms = 500;
    for (std::size_t i = 0; i < workers.size(); ++i) {
      Worker& w = workers[i];
      if (!w.alive()) continue;
      fds.push_back(pollfd{w.res_fd, POLLIN, 0});
      fd_owner.push_back(i);
      if (w.busy()) {
        const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                              w.deadline - now)
                              .count();
        timeout_ms = std::min<int>(timeout_ms,
                                   static_cast<int>(std::max<long long>(left, 0)));
      }
    }
    if (fds.empty()) continue;
    const int rv = ::poll(fds.data(), fds.size(), std::max(timeout_ms, 10));
    if (rv < 0 && errno != EINTR) {
      throw Error("campaign poll failed: " + std::string(std::strerror(errno)));
    }

    // Deadlines first: a hung worker never gets to block the fleet.
    for (Worker& w : workers) {
      if (w.alive() && w.busy() && Clock::now() >= w.deadline) {
        handle_death(w, /*timed_out=*/true);
      }
    }

    for (std::size_t k = 0; k < fds.size(); ++k) {
      Worker& w = workers[fd_owner[k]];
      if (!w.alive()) continue;  // reaped by the deadline pass
      if ((fds[k].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      char chunk[4096];
      for (;;) {
        const ssize_t r = ::read(w.res_fd, chunk, sizeof chunk);
        if (r > 0) {
          w.buf.append(chunk, static_cast<std::size_t>(r));
          continue;
        }
        if (r < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
        if (r < 0 && errno == EINTR) continue;
        // EOF or error: the worker is gone once its frames are drained.
        if (w.buf.size() < sizeof(ResultFrame)) {
          if (w.quitting && !w.busy()) {
            reap_worker(w);  // clean exit after "q" — not a crash
          } else {
            handle_death(w, /*timed_out=*/false);
          }
        }
        break;
      }
      while (w.alive() && w.buf.size() >= sizeof(ResultFrame)) {
        ResultFrame frame;
        std::memcpy(&frame, w.buf.data(), sizeof frame);
        w.buf.erase(0, sizeof frame);
        handle_frame(w, frame);
      }
    }
  }

  // Shut the fleet down: polite quit, then a hard reap.
  for (Worker& w : workers) {
    if (!w.alive()) continue;
    send_line(w, "q\n");
  }
  for (Worker& w : workers) {
    if (!w.alive()) continue;
    close_quiet(w.cmd_fd);
    w.cmd_fd = -1;
    int st = 0;
    // Workers exit on "q"/EOF promptly; a short grace then SIGKILL keeps a
    // wedged worker from hanging the supervisor's own exit.
    for (int spins = 0; spins < 200; ++spins) {
      const pid_t got = ::waitpid(w.pid, &st, WNOHANG);
      if (got == w.pid || got < 0) {
        w.pid = -1;
        break;
      }
      struct timespec ts{0, 10 * 1000 * 1000};
      ::nanosleep(&ts, nullptr);
    }
    if (w.pid > 0) {
      ::kill(w.pid, SIGKILL);
      ::waitpid(w.pid, &st, 0);
      w.pid = -1;
    }
    close_quiet(w.res_fd);
    w.res_fd = -1;
  }

  ::sigaction(SIGINT, &old_int, nullptr);
  ::sigaction(SIGTERM, &old_term, nullptr);
  ::sigaction(SIGPIPE, &old_pipe, nullptr);
  sum.drained = g_drain != 0 && !sum.complete();

  store.commit();
  out.records = store.records();
  if (sum.complete() || sum.units_done + sum.units_failed == sum.units_total) {
    // The campaign reached its end state (possibly degraded): write the
    // canonical compacted image the determinism gates compare.
    out.compact_path = cfg.compact_path();
    store.write_compact(out.compact_path);
  }
  write_manifest(cfg, sum);
  return out;
}

}  // namespace ecms::campaign
