#include "campaign/compact.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "util/crc32.hpp"
#include "util/error.hpp"

namespace ecms::campaign {

namespace {
namespace fmt = format;

/// Byte offset of each column's start within the column block, for a file
/// holding `n` records.
struct ColumnOffsets {
  std::size_t die, corner, seed, status, cells, recovered, unmeasurable;
  std::size_t code_hash, mean_code, code_stddev, code_hist;

  explicit ColumnOffsets(std::uint64_t n) {
    const auto sz = static_cast<std::size_t>(n);
    std::size_t at = 0;
    const auto next = [&](std::size_t field_bytes) {
      const std::size_t here = at;
      at += field_bytes * sz;
      return here;
    };
    die = next(4);
    corner = next(2);
    seed = next(2);
    status = next(2);
    cells = next(4);
    recovered = next(4);
    unmeasurable = next(4);
    code_hash = next(8);
    mean_code = next(8);
    code_stddev = next(8);
    code_hist = next(4 * kCodeBins);
  }
};

template <typename T>
T load(const char* base, std::size_t column, std::uint64_t i) {
  T v;
  std::memcpy(&v, base + column + i * sizeof(T), sizeof v);
  return v;
}
}  // namespace

CompactReader CompactReader::open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    throw Error("compact: cannot open " + path + ": " + std::strerror(errno));
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    const std::string why = std::strerror(errno);
    ::close(fd);
    throw Error("compact: stat " + path + ": " + why);
  }
  const auto len = static_cast<std::size_t>(st.st_size);
  if (len < fmt::compact_file_size(0)) {
    ::close(fd);
    throw Error("compact: " + path + " is truncated (" +
                std::to_string(len) + " bytes)");
  }

  void* map = ::mmap(nullptr, len, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps the file alive
  if (map == MAP_FAILED) {
    throw Error("compact: mmap " + path + ": " + std::strerror(errno));
  }
  const char* p = static_cast<const char*>(map);

  const auto fail = [&](const std::string& why) {
    ::munmap(map, len);
    throw Error("compact: " + path + ": " + why);
  };

  if (std::memcmp(p, fmt::kCompactMagic, sizeof fmt::kCompactMagic) != 0) {
    fail("bad magic");
  }
  std::uint64_t count = 0;
  std::memcpy(&count, p + 8, sizeof count);
  if (len != fmt::compact_file_size(count)) {
    fail("structural size mismatch: " + std::to_string(len) + " bytes for " +
         std::to_string(count) + " records");
  }

  // Whole-file CRC: every byte before the trailing u32 must digest to it.
  // This is the strong check — any flipped bit anywhere in the columns
  // fails here, before a single record is served.
  std::uint32_t want_crc = 0;
  std::memcpy(&want_crc, p + len - sizeof want_crc, sizeof want_crc);
  if (util::crc32(p, len - sizeof want_crc) != want_crc) {
    fail("whole-file CRC mismatch");
  }

  fmt::FileHeader h{};
  std::memcpy(&h, p + 16, sizeof h);
  if (std::memcmp(h.magic, fmt::kJournalMagic, sizeof h.magic) != 0) {
    fail("bad inner header magic");
  }
  if (h.crc != fmt::header_body_crc(h)) fail("inner header CRC mismatch");
  if (h.record_size != sizeof(UnitRecord)) {
    fail("record size mismatch: file has " + std::to_string(h.record_size));
  }

  CompactReader r;
  r.map_ = p;
  r.map_len_ = len;
  r.count_ = count;
  r.space_ = UnitSpace{h.dies, h.corners, h.seeds};
  r.config_hash_ = h.config_hash;
  r.campaign_seed_ = h.campaign_seed;
  return r;
}

CompactReader::CompactReader(CompactReader&& other) noexcept {
  *this = std::move(other);
}

CompactReader& CompactReader::operator=(CompactReader&& other) noexcept {
  if (this != &other) {
    if (map_ != nullptr) {
      ::munmap(const_cast<char*>(map_), map_len_);
    }
    map_ = std::exchange(other.map_, nullptr);
    map_len_ = std::exchange(other.map_len_, 0);
    count_ = other.count_;
    space_ = other.space_;
    config_hash_ = other.config_hash_;
    campaign_seed_ = other.campaign_seed_;
  }
  return *this;
}

CompactReader::~CompactReader() {
  if (map_ != nullptr) {
    ::munmap(const_cast<char*>(map_), map_len_);
  }
}

UnitRecord CompactReader::record(std::uint64_t i) const {
  if (i >= count_) {
    throw Error("compact: record index " + std::to_string(i) +
                " out of range (count " + std::to_string(count_) + ")");
  }
  const char* cols = map_ + fmt::kCompactPrologue;
  const ColumnOffsets at(count_);

  UnitRecord r{};
  r.die = load<std::uint32_t>(cols, at.die, i);
  r.corner = load<std::uint16_t>(cols, at.corner, i);
  r.seed = load<std::uint16_t>(cols, at.seed, i);
  r.status = load<std::uint16_t>(cols, at.status, i);
  r.cells = load<std::uint32_t>(cols, at.cells, i);
  r.recovered = load<std::uint32_t>(cols, at.recovered, i);
  r.unmeasurable = load<std::uint32_t>(cols, at.unmeasurable, i);
  r.code_hash = load<std::uint64_t>(cols, at.code_hash, i);
  r.mean_code = load<double>(cols, at.mean_code, i);
  r.code_stddev = load<double>(cols, at.code_stddev, i);
  std::memcpy(r.code_hist, cols + at.code_hist + i * 4 * kCodeBins,
              4 * kCodeBins);
  return r;
}

std::vector<UnitRecord> CompactReader::records() const {
  std::vector<UnitRecord> out;
  out.reserve(static_cast<std::size_t>(count_));
  for (std::uint64_t i = 0; i < count_; ++i) out.push_back(record(i));
  return out;
}

}  // namespace ecms::campaign
