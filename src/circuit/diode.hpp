// Junction diode (Shockley model with a series-free, voltage-limited Newton
// companion). Used for cell-junction leakage studies in the retention model.
#pragma once

#include "circuit/device.hpp"

namespace ecms::circuit {

class Diode : public Device {
 public:
  struct Params {
    double i_sat = 1e-15;  ///< saturation current (A)
    double n_ideality = 1.0;
    double temp_k = 300.0;
    double v_crit = 0.8;  ///< internal bias limiting knee (V)
  };

  Diode(std::string name, NodeId anode, NodeId cathode, Params p);

  void stamp(const StampContext& ctx, MnaView& a_mat,
             std::span<double> b_vec) const override;
  bool nonlinear() const override { return true; }
  double probe_current(const StampContext& ctx) const override;

  /// Shockley current at forward voltage v (exposed for tests).
  double current(double v) const;
  /// dI/dV at forward voltage v.
  double conductance(double v) const;

  const Params& params() const { return p_; }
  NodeId anode() const { return a_; }
  NodeId cathode() const { return c_; }

 private:
  double limited(double v) const;
  NodeId a_, c_;
  Params p_;
};

}  // namespace ecms::circuit
