// AVX2 backend of the batched SoA kernels. This translation unit is the
// only one compiled with -mavx2 (see src/circuit/CMakeLists.txt); nothing
// here runs unless the dispatcher checked __builtin_cpu_supports("avx2").
//
// Bit-identity: only lanewise vaddpd/vsubpd/vmulpd/vdivpd — each IEEE-754
// correctly rounded, so every lane computes exactly what the scalar backend
// computes. No FMA (vfmadd would contract mul+sub into one rounding) and no
// vector max/compare (NaN semantics differ from std::max); pivot health is
// judged by the scalar first_degraded_row() scan.
#include "circuit/kernels.hpp"

#if defined(__x86_64__) || defined(_M_X64)

#include <immintrin.h>

namespace ecms::circuit::kernels {

namespace {

void refactor_avx2(const LuSymbolic& sy, const double* a, double* l,
                   double* u, double* work, std::size_t w) {
  const std::size_t n = sy.n;
  const std::size_t wv = w & ~std::size_t{3};
  for (std::size_t i = 0; i < n; ++i) {
    const __m256d zero = _mm256_setzero_pd();
    for (std::uint32_t s = sy.l_ptr[i]; s < sy.l_ptr[i + 1]; ++s) {
      double* row = work + static_cast<std::size_t>(sy.l_cols[s]) * w;
      for (std::size_t k = 0; k < wv; k += 4) _mm256_storeu_pd(row + k, zero);
      for (std::size_t k = wv; k < w; ++k) row[k] = 0.0;
    }
    for (std::uint32_t s = sy.u_ptr[i]; s < sy.u_ptr[i + 1]; ++s) {
      double* row = work + static_cast<std::size_t>(sy.u_cols[s]) * w;
      for (std::size_t k = 0; k < wv; k += 4) _mm256_storeu_pd(row + k, zero);
      for (std::size_t k = wv; k < w; ++k) row[k] = 0.0;
    }
    for (std::uint32_t s = sy.a_ptr[i]; s < sy.a_ptr[i + 1]; ++s) {
      double* row = work + static_cast<std::size_t>(sy.a_pcol[s]) * w;
      const double* av = a + static_cast<std::size_t>(sy.a_slot[s]) * w;
      for (std::size_t k = 0; k < wv; k += 4) {
        _mm256_storeu_pd(row + k, _mm256_add_pd(_mm256_loadu_pd(row + k),
                                                _mm256_loadu_pd(av + k)));
      }
      for (std::size_t k = wv; k < w; ++k) row[k] += av[k];
    }
    for (std::uint32_t s = sy.l_ptr[i]; s < sy.l_ptr[i + 1]; ++s) {
      const std::uint32_t j = sy.l_cols[s];
      const double* wj = work + static_cast<std::size_t>(j) * w;
      const double* upiv = u + static_cast<std::size_t>(sy.u_ptr[j]) * w;
      double* ls = l + static_cast<std::size_t>(s) * w;
      for (std::size_t k = 0; k < wv; k += 4) {
        _mm256_storeu_pd(ls + k, _mm256_div_pd(_mm256_loadu_pd(wj + k),
                                               _mm256_loadu_pd(upiv + k)));
      }
      for (std::size_t k = wv; k < w; ++k) ls[k] = wj[k] / upiv[k];
      for (std::uint32_t t = sy.u_ptr[j] + 1; t < sy.u_ptr[j + 1]; ++t) {
        double* row = work + static_cast<std::size_t>(sy.u_cols[t]) * w;
        const double* ut = u + static_cast<std::size_t>(t) * w;
        for (std::size_t k = 0; k < wv; k += 4) {
          _mm256_storeu_pd(
              row + k,
              _mm256_sub_pd(_mm256_loadu_pd(row + k),
                            _mm256_mul_pd(_mm256_loadu_pd(ls + k),
                                          _mm256_loadu_pd(ut + k))));
        }
        for (std::size_t k = wv; k < w; ++k) row[k] -= ls[k] * ut[k];
      }
    }
    for (std::uint32_t s = sy.u_ptr[i]; s < sy.u_ptr[i + 1]; ++s) {
      const double* row = work + static_cast<std::size_t>(sy.u_cols[s]) * w;
      double* us = u + static_cast<std::size_t>(s) * w;
      for (std::size_t k = 0; k < wv; k += 4)
        _mm256_storeu_pd(us + k, _mm256_loadu_pd(row + k));
      for (std::size_t k = wv; k < w; ++k) us[k] = row[k];
    }
  }
}

void solve_avx2(const LuSymbolic& sy, const double* l, const double* u,
                double* pb, std::size_t w) {
  const std::size_t n = sy.n;
  const std::size_t wv = w & ~std::size_t{3};
  for (std::size_t i = 0; i < n; ++i) {
    double* acc = pb + i * w;
    for (std::uint32_t s = sy.l_ptr[i]; s < sy.l_ptr[i + 1]; ++s) {
      const double* ls = l + static_cast<std::size_t>(s) * w;
      const double* pj = pb + static_cast<std::size_t>(sy.l_cols[s]) * w;
      for (std::size_t k = 0; k < wv; k += 4) {
        _mm256_storeu_pd(
            acc + k,
            _mm256_sub_pd(_mm256_loadu_pd(acc + k),
                          _mm256_mul_pd(_mm256_loadu_pd(ls + k),
                                        _mm256_loadu_pd(pj + k))));
      }
      for (std::size_t k = wv; k < w; ++k) acc[k] -= ls[k] * pj[k];
    }
  }
  for (std::size_t ii = n; ii > 0; --ii) {
    const std::size_t i = ii - 1;
    double* acc = pb + i * w;
    for (std::uint32_t s = sy.u_ptr[i] + 1; s < sy.u_ptr[i + 1]; ++s) {
      const double* us = u + static_cast<std::size_t>(s) * w;
      const double* pj = pb + static_cast<std::size_t>(sy.u_cols[s]) * w;
      for (std::size_t k = 0; k < wv; k += 4) {
        _mm256_storeu_pd(
            acc + k,
            _mm256_sub_pd(_mm256_loadu_pd(acc + k),
                          _mm256_mul_pd(_mm256_loadu_pd(us + k),
                                        _mm256_loadu_pd(pj + k))));
      }
      for (std::size_t k = wv; k < w; ++k) acc[k] -= us[k] * pj[k];
    }
    const double* upiv = u + static_cast<std::size_t>(sy.u_ptr[i]) * w;
    for (std::size_t k = 0; k < wv; k += 4) {
      _mm256_storeu_pd(acc + k, _mm256_div_pd(_mm256_loadu_pd(acc + k),
                                              _mm256_loadu_pd(upiv + k)));
    }
    for (std::size_t k = wv; k < w; ++k) acc[k] /= upiv[k];
  }
}

void copy_avx2(double* dst, const double* src, std::size_t count) {
  std::size_t k = 0;
  for (; k + 4 <= count; k += 4)
    _mm256_storeu_pd(dst + k, _mm256_loadu_pd(src + k));
  for (; k < count; ++k) dst[k] = src[k];
}

void diag_add_avx2(double* values, const std::uint32_t* slots,
                   std::size_t n_slots, double g, std::size_t w) {
  const std::size_t wv = w & ~std::size_t{3};
  const __m256d gv = _mm256_set1_pd(g);
  for (std::size_t i = 0; i < n_slots; ++i) {
    double* row = values + static_cast<std::size_t>(slots[i]) * w;
    for (std::size_t k = 0; k < wv; k += 4)
      _mm256_storeu_pd(row + k, _mm256_add_pd(_mm256_loadu_pd(row + k), gv));
    for (std::size_t k = wv; k < w; ++k) row[k] += g;
  }
}

constexpr Kernels kAvx2 = {"avx2", refactor_avx2, solve_avx2, copy_avx2,
                           diag_add_avx2};

}  // namespace

const Kernels* avx2_kernels() { return &kAvx2; }

}  // namespace ecms::circuit::kernels

#else  // !x86-64

namespace ecms::circuit::kernels {
const Kernels* avx2_kernels() { return nullptr; }
}  // namespace ecms::circuit::kernels

#endif
