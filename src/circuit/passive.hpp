// Linear passive devices: resistor, capacitor, and a smooth
// voltage-controlled switch (used for idealized control experiments; the
// measurement structure itself uses real MOSFET switches).
#pragma once

#include "circuit/device.hpp"

namespace ecms::circuit {

/// Two-terminal linear resistor.
class Resistor : public Device {
 public:
  Resistor(std::string name, NodeId a, NodeId b, double ohms);

  void stamp(const StampContext& ctx, MnaView& a_mat,
             std::span<double> b_vec) const override;
  double probe_current(const StampContext& ctx) const override;

  double resistance() const { return ohms_; }
  void set_resistance(double ohms);
  NodeId a() const { return a_; }
  NodeId b() const { return b_; }

 private:
  NodeId a_, b_;
  double ohms_;
};

/// Two-terminal linear capacitor.
class Capacitor : public Device {
 public:
  Capacitor(std::string name, NodeId a, NodeId b, double farads);

  void stamp(const StampContext& ctx, MnaView& a_mat,
             std::span<double> b_vec) const override;
  void init_state(const StampContext& ctx) override;
  void accept_step(const StampContext& ctx) override;
  double probe_current(const StampContext& ctx) const override;
  void save_state(std::vector<double>& out) const override {
    comp_.save_state(out);
  }
  std::size_t restore_state(std::span<const double> in) override {
    return comp_.restore_state(in);
  }

  double capacitance() const { return comp_.capacitance(); }
  void set_capacitance(double farads);
  NodeId a() const { return a_; }
  NodeId b() const { return b_; }

 private:
  NodeId a_, b_;
  CapCompanion comp_;
};

/// Voltage-controlled switch with a smooth (logistic) conductance transition
/// between `r_off` and `r_on` as v(ctrl_p) - v(ctrl_n) crosses `v_threshold`.
/// The smoothness (`v_slope`) keeps Newton iterations well-behaved.
class VcSwitch : public Device {
 public:
  struct Params {
    double r_on = 100.0;
    double r_off = 1e9;
    double v_threshold = 0.9;
    double v_slope = 0.05;  ///< logistic transition width (volts)
  };

  VcSwitch(std::string name, NodeId a, NodeId b, NodeId ctrl_p, NodeId ctrl_n,
           Params p);

  void stamp(const StampContext& ctx, MnaView& a_mat,
             std::span<double> b_vec) const override;
  bool nonlinear() const override { return true; }
  double probe_current(const StampContext& ctx) const override;

  /// Conductance at a given control voltage (exposed for tests).
  double conductance(double v_ctrl) const;

 private:
  NodeId a_, b_, cp_, cn_;
  Params p_;
};

}  // namespace ecms::circuit
