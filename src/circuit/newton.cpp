#include "circuit/newton.hpp"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace ecms::circuit {

void assemble(const Circuit& ckt, const StampContext& ctx, double gmin_ground,
              Matrix& a_mat, std::vector<double>& b_vec) {
  const std::size_t n = ckt.unknown_count();
  if (a_mat.rows() != n) a_mat.resize(n, n);
  a_mat.clear();
  b_vec.assign(n, 0.0);
  std::span<double> b(b_vec);
  for (const auto& d : ckt.devices()) d->stamp(ctx, a_mat, b);
  // Floating-node safety net: every node leaks to ground through gmin_ground.
  const std::size_t nv = ckt.node_count() - 1;
  for (std::size_t i = 0; i < nv; ++i) a_mat.at(i, i) += gmin_ground;
}

namespace {

// Per-solve outcome accounting, shared by every return path of
// newton_solve_impl. One LU factorization is attempted per iteration, so
// the factorization count equals the iteration count.
void count_solve(const NewtonResult& res) {
  if (!obs::metrics_enabled()) return;
  ECMS_METRIC_COUNT("circuit.newton.solves", 1);
  ECMS_METRIC_COUNT("circuit.newton.iterations", res.iterations);
  ECMS_METRIC_COUNT("circuit.newton.factorizations", res.iterations);
  ECMS_METRIC_OBSERVE("circuit.newton.iterations_per_solve", res.iterations);
  if (res.singular) ECMS_METRIC_COUNT("circuit.newton.singular", 1);
  if (res.stalled) ECMS_METRIC_COUNT("circuit.newton.stalled", 1);
  if (!res.converged) ECMS_METRIC_COUNT("circuit.newton.nonconverged", 1);
}

NewtonResult newton_solve_impl(const Circuit& ckt,
                               const StampContext& ctx_proto,
                               std::vector<double>& x,
                               const NewtonOptions& opts) {
  const std::size_t n = ckt.unknown_count();
  ECMS_REQUIRE(x.size() == n, "newton_solve: x has wrong size");
  const std::size_t nv = ckt.node_count() - 1;

  Matrix a_mat;
  std::vector<double> b_vec;
  NewtonResult res;

  if (opts.hooks != nullptr && opts.hooks->force_stall &&
      opts.hooks->force_stall(ctx_proto, opts)) {
    res.stalled = true;
    return res;
  }

  for (int iter = 0; iter < opts.max_iterations; ++iter) {
    StampContext ctx = ctx_proto;
    ctx.x = x;
    assemble(ckt, ctx, opts.gmin_ground, a_mat, b_vec);
    if (opts.hooks != nullptr && opts.hooks->make_singular &&
        opts.hooks->make_singular(ctx, opts)) {
      for (std::size_t j = 0; j < n; ++j) a_mat.at(0, j) = 0.0;
    }

    std::vector<double> x_new;
    try {
      x_new = LuFactorization(a_mat).solve(b_vec);
    } catch (const SolverError&) {
      res.converged = false;
      res.singular = true;
      res.iterations = iter + 1;
      return res;
    }

    // Voltage-part damping: clamp the update so no node moves more than
    // max_delta_v per iteration (branch currents are left free).
    double max_dv = 0.0;
    for (std::size_t i = 0; i < nv; ++i) {
      const double dv = std::abs(x_new[i] - x[i]);
      if (dv > max_dv) {
        max_dv = dv;
        res.worst_unknown = i;
      }
    }
    double scale = 1.0;
    if (max_dv > opts.max_delta_v) scale = opts.max_delta_v / max_dv;

    double max_x = 0.0;
    for (std::size_t i = 0; i < nv; ++i) max_x = std::max(max_x, std::abs(x[i]));
    for (std::size_t i = 0; i < n; ++i) x[i] += scale * (x_new[i] - x[i]);

    res.iterations = iter + 1;
    res.final_delta = max_dv * scale;
    if (!std::isfinite(res.final_delta)) {
      res.converged = false;
      return res;
    }
    if (scale == 1.0 &&
        max_dv < opts.tol_abs_v + opts.tol_rel * std::max(max_x, 1.0)) {
      res.converged = true;
      return res;
    }
  }
  res.converged = false;
  ECMS_LOG(LogLevel::kDebug) << "newton: no convergence after "
                             << res.iterations
                             << " iters, last dv=" << res.final_delta;
  return res;
}

}  // namespace

NewtonResult newton_solve(const Circuit& ckt, const StampContext& ctx_proto,
                          std::vector<double>& x, const NewtonOptions& opts) {
  const NewtonResult res = newton_solve_impl(ckt, ctx_proto, x, opts);
  count_solve(res);
  return res;
}

}  // namespace ecms::circuit
