#include "circuit/newton.hpp"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace ecms::circuit {

void assemble(const Circuit& ckt, const StampContext& ctx, double gmin_ground,
              Matrix& a_mat, std::span<double> b) {
  const std::size_t n = ckt.unknown_count();
  ECMS_REQUIRE(b.size() == n, "assemble: rhs has wrong size");
  if (a_mat.rows() != n) a_mat.resize(n, n);
  a_mat.clear();
  std::fill(b.begin(), b.end(), 0.0);
  MnaView view(a_mat);
  for (const auto& d : ckt.devices()) {
    d->stamp_static(ctx, view, b);
    d->stamp(ctx, view, b);
  }
  // Floating-node safety net: every node leaks to ground through gmin_ground.
  const std::size_t nv = ckt.node_count() - 1;
  for (std::size_t i = 0; i < nv; ++i) a_mat.at(i, i) += gmin_ground;
}

void assemble(const Circuit& ckt, const StampContext& ctx, double gmin_ground,
              Matrix& a_mat, std::vector<double>& b_vec) {
  b_vec.resize(ckt.unknown_count());
  assemble(ckt, ctx, gmin_ground, a_mat, std::span<double>(b_vec));
}

namespace {

// Per-solve outcome accounting, shared by every return path of
// newton_solve_impl. With symbolic/numeric factorization reuse on the
// sparse backend, factorizations no longer equal iterations: the legacy
// factorizations counter reports the sum of the real symbolic and numeric
// counts (which on the dense backend still equals the iteration count —
// one numeric factorization per iteration).
void count_solve(const NewtonResult& res) {
  if (!obs::metrics_enabled()) return;
  ECMS_METRIC_COUNT("circuit.newton.solves", 1);
  ECMS_METRIC_COUNT("circuit.newton.iterations", res.iterations);
  ECMS_METRIC_COUNT("circuit.newton.factorizations",
                    res.symbolic_factorizations + res.numeric_factorizations);
  ECMS_METRIC_COUNT("circuit.lu.symbolic", res.symbolic_factorizations);
  ECMS_METRIC_COUNT("circuit.lu.numeric", res.numeric_factorizations);
  ECMS_METRIC_COUNT("circuit.assemble.static_hits", res.assemble_static_hits);
  ECMS_METRIC_COUNT("circuit.assemble.restamps", res.assemble_restamps);
  ECMS_METRIC_OBSERVE("circuit.newton.iterations_per_solve", res.iterations);
  if (res.singular) ECMS_METRIC_COUNT("circuit.newton.singular", 1);
  if (res.stalled) ECMS_METRIC_COUNT("circuit.newton.stalled", 1);
  if (!res.converged) ECMS_METRIC_COUNT("circuit.newton.nonconverged", 1);
}

NewtonResult newton_solve_impl(const Circuit& ckt,
                               const StampContext& ctx_proto,
                               std::vector<double>& x,
                               const NewtonOptions& opts,
                               NewtonWorkspace& ws) {
  const std::size_t n = ckt.unknown_count();
  ECMS_REQUIRE(x.size() == n, "newton_solve: x has wrong size");
  const std::size_t nv = ckt.node_count() - 1;

  ws.prepare(ckt, opts.solver);
  SparseEngine* eng = ws.sparse();
  NewtonResult res;
  // Engine counters are cumulative across the workspace lifetime; snapshot
  // them so the result reports this solve's share.
  const std::uint64_t sym0 = eng ? eng->symbolic_factorizations() : 0;
  const std::uint64_t num0 = eng ? eng->numeric_factorizations() : 0;
  const std::uint64_t hit0 = eng ? eng->static_hits() : 0;
  const std::uint64_t rst0 = eng ? eng->static_restamps() : 0;
  auto finalize = [&]() {
    if (eng != nullptr) {
      res.symbolic_factorizations +=
          static_cast<int>(eng->symbolic_factorizations() - sym0);
      res.numeric_factorizations +=
          static_cast<int>(eng->numeric_factorizations() - num0);
      res.assemble_static_hits =
          static_cast<std::size_t>(eng->static_hits() - hit0);
      res.assemble_restamps =
          static_cast<std::size_t>(eng->static_restamps() - rst0);
    }
    return res;
  };

  if (opts.hooks != nullptr && opts.hooks->force_stall &&
      opts.hooks->force_stall(ctx_proto, opts)) {
    res.stalled = true;
    return finalize();
  }

  if (eng != nullptr) eng->begin_point();

  for (int iter = 0; iter < opts.max_iterations; ++iter) {
    StampContext ctx = ctx_proto;
    ctx.x = x;
    bool singular = false;
    if (eng == nullptr) {
      assemble(ckt, ctx, opts.gmin_ground, ws.a_dense, ws.b.span());
      if (opts.hooks != nullptr && opts.hooks->make_singular &&
          opts.hooks->make_singular(ctx, opts)) {
        for (std::size_t j = 0; j < n; ++j) ws.a_dense.at(0, j) = 0.0;
      }
      ++res.numeric_factorizations;  // dense: one per iteration, by design
      try {
        ws.lu_dense.refactor(ws.a_dense);
      } catch (const SolverError&) {
        singular = true;
      }
      if (!singular) {
        ws.x_new.copy_from(ws.b.span());
        ws.lu_dense.solve_in_place(ws.x_new.span(), ws.scratch);
      }
    } else {
      eng->assemble(ckt, ctx, opts.gmin_ground);
      if (opts.hooks != nullptr && opts.hooks->make_singular &&
          opts.hooks->make_singular(ctx, opts)) {
        eng->zero_row(0);
      }
      try {
        eng->factor();
      } catch (const SolverError&) {
        singular = true;
      }
      if (!singular) eng->solve(ws.x_new.span());
    }
    if (singular) {
      res.converged = false;
      res.singular = true;
      res.iterations = iter + 1;
      return finalize();
    }
    const std::span<const double> x_new(ws.x_new.span());

    // Voltage-part damping: clamp the update so no node moves more than
    // max_delta_v per iteration (branch currents are left free).
    double max_dv = 0.0;
    for (std::size_t i = 0; i < nv; ++i) {
      const double dv = std::abs(x_new[i] - x[i]);
      if (dv > max_dv) {
        max_dv = dv;
        res.worst_unknown = i;
      }
    }
    double scale = 1.0;
    if (max_dv > opts.max_delta_v) scale = opts.max_delta_v / max_dv;

    double max_x = 0.0;
    for (std::size_t i = 0; i < nv; ++i) max_x = std::max(max_x, std::abs(x[i]));
    for (std::size_t i = 0; i < n; ++i) x[i] += scale * (x_new[i] - x[i]);

    res.iterations = iter + 1;
    res.final_delta = max_dv * scale;
    if (!std::isfinite(res.final_delta)) {
      res.converged = false;
      return finalize();
    }
    if (scale == 1.0 &&
        max_dv < opts.tol_abs_v + opts.tol_rel * std::max(max_x, 1.0)) {
      res.converged = true;
      return finalize();
    }
  }
  res.converged = false;
  ECMS_LOG(LogLevel::kDebug) << "newton: no convergence after "
                             << res.iterations
                             << " iters, last dv=" << res.final_delta;
  return finalize();
}

}  // namespace

NewtonResult newton_solve(const Circuit& ckt, const StampContext& ctx_proto,
                          std::vector<double>& x, const NewtonOptions& opts,
                          NewtonWorkspace& ws) {
  const NewtonResult res = newton_solve_impl(ckt, ctx_proto, x, opts, ws);
  count_solve(res);
  return res;
}

NewtonResult newton_solve(const Circuit& ckt, const StampContext& ctx_proto,
                          std::vector<double>& x, const NewtonOptions& opts) {
  NewtonWorkspace ws;
  return newton_solve(ckt, ctx_proto, x, opts, ws);
}

}  // namespace ecms::circuit
