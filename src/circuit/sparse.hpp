// Sparse linear algebra for MNA systems.
//
// MNA matrices are structurally sparse (a handful of entries per device)
// and their pattern is fixed for the life of a netlist, so the classic
// SPICE optimizations apply: a CSR matrix with a frozen pattern, and an LU
// factorization whose expensive part — choosing a pivot order and computing
// the fill-in pattern — runs once (threshold-Markowitz), after which every
// Newton iteration only re-runs the cheap numeric elimination on the frozen
// pattern. The dense backend in matrix.hpp remains the default for small
// systems; solver.hpp picks between the two.
//
// The structural halves are split out as immutable, shareable objects:
// SparsePattern (the CSR skeleton) and LuSymbolic (pivot order + fill
// closure + A-scatter map). Both are topology-only — no values — so a
// NetlistProgram (program.hpp) can hand one read-only copy to every engine
// solving the same netlist shape, across threads. Values (CSR entries,
// L/U factors, scratch) always stay per-owner.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <span>
#include <vector>

#include "util/arena.hpp"

namespace ecms::circuit {

/// Packs a (row, col) coordinate into one sortable 64-bit key.
inline std::uint64_t pack_coord(std::size_t row, std::size_t col) {
  return (static_cast<std::uint64_t>(row) << 32) |
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(col));
}

/// Sentinel for "coordinate not in the pattern".
inline constexpr std::uint32_t kNoSlot =
    std::numeric_limits<std::uint32_t>::max();

/// The CSR skeleton of an n x n matrix: row extents plus sorted column ids.
/// Purely structural, hence immutable-after-build and shareable read-only
/// between matrices (and threads) holding their own value arrays.
struct SparsePattern {
  std::size_t n = 0;
  std::vector<std::uint32_t> row_ptr;  // n + 1 entries
  std::vector<std::uint32_t> cols;     // sorted ascending within each row
};

/// Compressed-sparse-row matrix with a frozen pattern. Values are addressed
/// by slot index (a position in the CSR value array), which is what makes
/// the stamp-slot cache possible: resolve (row, col) -> slot once, then
/// every later assembly is a direct array write.
class SparseMatrix {
 public:
  SparseMatrix() = default;

  /// Builds the pattern of an n x n matrix from packed pack_coord() keys
  /// (duplicates allowed). All values start at zero.
  void build_pattern(std::size_t n, std::span<const std::uint64_t> coords);

  /// Shares an already-built pattern (zeroing this matrix's values). The
  /// pattern is read-only from here on; other matrices may hold it too.
  void adopt_pattern(std::shared_ptr<const SparsePattern> pattern);

  /// The shared structural skeleton (null before any build/adopt).
  const std::shared_ptr<const SparsePattern>& pattern() const { return pat_; }

  std::size_t dim() const { return pat_ ? pat_->n : 0; }
  std::size_t nnz() const { return pat_ ? pat_->cols.size() : 0; }

  /// Value-slot index of (r, c), or kNoSlot when outside the pattern.
  std::uint32_t slot(std::size_t r, std::size_t c) const;

  void clear_values();
  std::span<double> values() { return values_; }
  std::span<const double> values() const { return values_; }

  /// Value at (r, c); 0 outside the pattern.
  double at(std::size_t r, std::size_t c) const;

  std::uint32_t row_begin(std::size_t r) const { return pat_->row_ptr[r]; }
  std::uint32_t row_end(std::size_t r) const { return pat_->row_ptr[r + 1]; }
  std::uint32_t col_of(std::uint32_t s) const { return pat_->cols[s]; }

  /// y = A * x (sizes must match).
  void multiply(std::span<const double> x, std::span<double> y) const;

 private:
  std::shared_ptr<const SparsePattern> pat_;
  std::vector<double> values_;
};

/// The structural output of one full threshold-Markowitz factorization:
/// permutations, the L/U fill closure (CSR over permuted indices, columns
/// ascending, each U row led by its diagonal), and the A-scatter map that
/// routes matrix value slots into permuted rows. Value-free and immutable
/// once built, so many SparseLu instances — on different threads — can
/// refactor numerically against one shared LuSymbolic.
struct LuSymbolic {
  std::size_t n = 0;
  // Permutations: permuted index -> original index, plus inverses.
  std::vector<std::uint32_t> perm_row, perm_col;
  std::vector<std::uint32_t> pinv_row, pinv_col;
  std::vector<std::uint32_t> l_ptr, l_cols;
  std::vector<std::uint32_t> u_ptr, u_cols;
  // Scatter map grouped by permuted row: A value slot -> permuted column.
  std::vector<std::uint32_t> a_ptr, a_slot, a_pcol;

  /// Nonzeros in L + U, fill-in included.
  std::size_t factor_nnz() const { return l_cols.size() + u_cols.size(); }
};

/// Sparse LU with a symbolic/numeric split, SPICE-style:
///
///   factor()   — full factorization: threshold-Markowitz pivot order
///                ((rows-1)*(cols-1) fill cost, pivots accepted at
///                >= rel_pivot_threshold of their row max), fill-in pattern,
///                and numeric values. Run once per matrix pattern.
///   refactor() — numeric-only elimination reusing the frozen pivot order
///                and fill pattern. Run every Newton iteration; reports
///                pivot degradation instead of silently producing garbage,
///                so the caller can re-pivot with factor().
///
/// The full factorization performs structural updates even where a
/// multiplier is numerically zero, so the frozen pattern stays valid for
/// any later value set. A factorization's structural half can also be
/// adopted from a shared LuSymbolic (adopt_symbolic), in which case the
/// first refactor() supplies the numeric values and no Markowitz analysis
/// runs in this instance at all.
class SparseLu {
 public:
  /// Markowitz pivot acceptance: |candidate| >= threshold * row max. Small
  /// enough to favor sparsity, large enough to keep growth bounded.
  double rel_pivot_threshold = 1e-3;

  /// Backs the scratch vectors with `arena` (may be null to unbind). Call
  /// before the first factor/solve; rebinding drops factorization state.
  void bind_arena(util::Arena* arena);

  /// Full (symbolic + numeric) factorization. Throws ecms::SolverError when
  /// the matrix is numerically singular.
  void factor(const SparseMatrix& a);

  /// Numeric-only refactorization on the frozen pivot order / fill pattern
  /// (from the last successful factor(), or adopted). Returns false when a
  /// pivot degraded (zero, non-finite, or vanishing against its row) and
  /// the caller must re-pivot via factor().
  bool refactor(const SparseMatrix& a);

  /// Adopts a shared symbolic factorization: this instance's values become
  /// undefined until the next successful refactor()/factor().
  void adopt_symbolic(std::shared_ptr<const LuSymbolic> symbolic);

  /// Whether a pivot order is available for refactor() — either computed
  /// here or adopted.
  bool has_symbolic() const { return sym_ != nullptr; }

  /// The shared structural factorization (null until factor()/adopt).
  const std::shared_ptr<const LuSymbolic>& symbolic() const { return sym_; }

  /// Drops all factorization state; keeps the arena binding and threshold.
  void reset();

  bool factored() const { return factored_; }
  std::size_t dim() const { return n_; }

  /// Nonzeros in L + U, fill-in included (diagnostic).
  std::size_t factor_nnz() const { return sym_ ? sym_->factor_nnz() : 0; }

  /// Solves A x = b in place. Requires a successful factor()/refactor().
  void solve_in_place(std::span<double> b) const;

  /// |smallest| / |largest| U-diagonal magnitude — the same cheap
  /// conditioning heuristic the dense backend reports. 0 means singular-ish.
  double pivot_ratio() const { return pivot_ratio_; }

 private:
  std::size_t n_ = 0;
  bool factored_ = false;
  std::shared_ptr<const LuSymbolic> sym_;  // shared, immutable structure
  // Numeric halves, strictly per-instance (l_vals_ has L's entries in
  // sym_->l_cols order, u_vals_ in sym_->u_cols order).
  std::vector<double> l_vals_;
  std::vector<double> u_vals_;
  double pivot_ratio_ = 0.0;
  util::ArenaBuf<double> work_;                  // refactor scatter vector
  mutable util::ArenaBuf<double> solve_scratch_; // permuted rhs
};

}  // namespace ecms::circuit
