// Sparse linear algebra for MNA systems.
//
// MNA matrices are structurally sparse (a handful of entries per device)
// and their pattern is fixed for the life of a netlist, so the classic
// SPICE optimizations apply: a CSR matrix with a frozen pattern, and an LU
// factorization whose expensive part — choosing a pivot order and computing
// the fill-in pattern — runs once (threshold-Markowitz), after which every
// Newton iteration only re-runs the cheap numeric elimination on the frozen
// pattern. The dense backend in matrix.hpp remains the default for small
// systems; solver.hpp picks between the two.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

namespace ecms::circuit {

/// Packs a (row, col) coordinate into one sortable 64-bit key.
inline std::uint64_t pack_coord(std::size_t row, std::size_t col) {
  return (static_cast<std::uint64_t>(row) << 32) |
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(col));
}

/// Sentinel for "coordinate not in the pattern".
inline constexpr std::uint32_t kNoSlot =
    std::numeric_limits<std::uint32_t>::max();

/// Compressed-sparse-row matrix with a frozen pattern. Values are addressed
/// by slot index (a position in the CSR value array), which is what makes
/// the stamp-slot cache possible: resolve (row, col) -> slot once, then
/// every later assembly is a direct array write.
class SparseMatrix {
 public:
  SparseMatrix() = default;

  /// Builds the pattern of an n x n matrix from packed pack_coord() keys
  /// (duplicates allowed). All values start at zero.
  void build_pattern(std::size_t n, std::span<const std::uint64_t> coords);

  std::size_t dim() const { return n_; }
  std::size_t nnz() const { return cols_.size(); }

  /// Value-slot index of (r, c), or kNoSlot when outside the pattern.
  std::uint32_t slot(std::size_t r, std::size_t c) const;

  void clear_values();
  std::span<double> values() { return values_; }
  std::span<const double> values() const { return values_; }

  /// Value at (r, c); 0 outside the pattern.
  double at(std::size_t r, std::size_t c) const;

  std::uint32_t row_begin(std::size_t r) const { return row_ptr_[r]; }
  std::uint32_t row_end(std::size_t r) const { return row_ptr_[r + 1]; }
  std::uint32_t col_of(std::uint32_t s) const { return cols_[s]; }

  /// y = A * x (sizes must match).
  void multiply(std::span<const double> x, std::span<double> y) const;

 private:
  std::size_t n_ = 0;
  std::vector<std::uint32_t> row_ptr_;  // n_ + 1 entries
  std::vector<std::uint32_t> cols_;     // sorted ascending within each row
  std::vector<double> values_;
};

/// Sparse LU with a symbolic/numeric split, SPICE-style:
///
///   factor()   — full factorization: threshold-Markowitz pivot order
///                ((rows-1)*(cols-1) fill cost, pivots accepted at
///                >= rel_pivot_threshold of their row max), fill-in pattern,
///                and numeric values. Run once per matrix pattern.
///   refactor() — numeric-only elimination reusing the frozen pivot order
///                and fill pattern. Run every Newton iteration; reports
///                pivot degradation instead of silently producing garbage,
///                so the caller can re-pivot with factor().
///
/// The full factorization performs structural updates even where a
/// multiplier is numerically zero, so the frozen pattern stays valid for
/// any later value set.
class SparseLu {
 public:
  /// Markowitz pivot acceptance: |candidate| >= threshold * row max. Small
  /// enough to favor sparsity, large enough to keep growth bounded.
  double rel_pivot_threshold = 1e-3;

  /// Full (symbolic + numeric) factorization. Throws ecms::SolverError when
  /// the matrix is numerically singular.
  void factor(const SparseMatrix& a);

  /// Numeric-only refactorization on the frozen pattern/pivot order from
  /// the last successful factor(). Returns false when a pivot degraded
  /// (zero, non-finite, or vanishing against its row) and the caller must
  /// re-pivot via factor().
  bool refactor(const SparseMatrix& a);

  bool factored() const { return factored_; }
  std::size_t dim() const { return n_; }

  /// Nonzeros in L + U, fill-in included (diagnostic).
  std::size_t factor_nnz() const { return l_cols_.size() + u_cols_.size(); }

  /// Solves A x = b in place. Requires a successful factor()/refactor().
  void solve_in_place(std::span<double> b) const;

  /// |smallest| / |largest| U-diagonal magnitude — the same cheap
  /// conditioning heuristic the dense backend reports. 0 means singular-ish.
  double pivot_ratio() const { return pivot_ratio_; }

 private:
  std::size_t n_ = 0;
  bool factored_ = false;
  // Permutations: permuted index -> original index, plus inverses.
  std::vector<std::uint32_t> perm_row_, perm_col_;
  std::vector<std::uint32_t> pinv_row_, pinv_col_;
  // L (implicit unit diagonal) and U in CSR over permuted indices, columns
  // ascending; each U row starts with its diagonal.
  std::vector<std::uint32_t> l_ptr_, l_cols_;
  std::vector<double> l_vals_;
  std::vector<std::uint32_t> u_ptr_, u_cols_;
  std::vector<double> u_vals_;
  // Scatter map grouped by permuted row: A value slot -> permuted column.
  std::vector<std::uint32_t> a_ptr_, a_slot_, a_pcol_;
  double pivot_ratio_ = 0.0;
  std::vector<double> work_;                  // refactor scatter vector
  mutable std::vector<double> solve_scratch_; // permuted rhs
};

}  // namespace ecms::circuit
