// Independent voltage and current sources driven by SourceWave stimuli.
#pragma once

#include "circuit/device.hpp"
#include "circuit/wave.hpp"

namespace ecms::circuit {

/// Independent voltage source v(p) - v(n) = wave(t). Introduces one branch
/// current unknown (MNA group 2). probe_current() returns the current flowing
/// from p through the source to n (i.e. the current the source *sinks* at p).
class VSource : public Device {
 public:
  VSource(std::string name, NodeId p, NodeId n, SourceWave wave);

  void stamp(const StampContext& ctx, MnaView& a_mat,
             std::span<double> b_vec) const override;
  int branch_count() const override { return 1; }
  void set_branch_base(std::size_t base) override { branch_ = base; }
  void collect_breakpoints(std::vector<double>& out) const override;
  double probe_current(const StampContext& ctx) const override;

  const SourceWave& wave() const { return wave_; }
  void set_wave(SourceWave w) { wave_ = std::move(w); }
  double value_at(double t) const { return wave_.value(t); }
  NodeId p() const { return p_; }
  NodeId n() const { return n_; }
  /// MNA unknown index of this source's branch current (valid after the
  /// circuit is finalized). Used by AC analysis to excite / probe.
  std::size_t branch_index() const { return branch_; }

 private:
  NodeId p_, n_;
  SourceWave wave_;
  std::size_t branch_ = static_cast<std::size_t>(-1);
};

/// Independent current source pushing wave(t) amps from p to n through the
/// source (conventional SPICE direction: positive value pulls current out of
/// p and into n).
class ISource : public Device {
 public:
  ISource(std::string name, NodeId p, NodeId n, SourceWave wave);

  void stamp(const StampContext& ctx, MnaView& a_mat,
             std::span<double> b_vec) const override;
  void collect_breakpoints(std::vector<double>& out) const override;
  double probe_current(const StampContext& ctx) const override;

  const SourceWave& wave() const { return wave_; }
  void set_wave(SourceWave w) { wave_ = std::move(w); }
  NodeId p() const { return p_; }
  NodeId n() const { return n_; }

 private:
  NodeId p_, n_;
  SourceWave wave_;
};

}  // namespace ecms::circuit
