#include "circuit/solver.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace ecms::circuit {

const char* solver_kind_name(SolverKind k) {
  switch (k) {
    case SolverKind::kDense:
      return "dense";
    case SolverKind::kSparse:
      return "sparse";
    case SolverKind::kAuto:
      return "auto";
  }
  return "?";
}

bool parse_solver_kind(std::string_view s, SolverKind& out) {
  if (s == "dense") {
    out = SolverKind::kDense;
  } else if (s == "sparse") {
    out = SolverKind::kSparse;
  } else if (s == "auto") {
    out = SolverKind::kAuto;
  } else {
    return false;
  }
  return true;
}

SolverKind resolve_solver_kind(const SolverConfig& cfg, std::size_t n) {
  if (cfg.kind != SolverKind::kAuto) return cfg.kind;
  return n >= cfg.sparse_crossover ? SolverKind::kSparse : SolverKind::kDense;
}

void SparseEngine::add(std::size_t row, std::size_t col, double v) {
  // Record pass only: replayed assemblies go through the inline ReplayTape
  // view (device.hpp), never this virtual sink.
  ECMS_REQUIRE(phase_ == Phase::kRecord, "sparse stamp outside assembly");
  Tape& t = *active_tape_;
  t.coords.push_back(pack_coord(row, col));
  t.rec_vals.push_back(v);
}

void SparseEngine::resolve_slots(Tape& tape) {
  tape.slots.resize(tape.coords.size());
  for (std::size_t i = 0; i < tape.coords.size(); ++i) {
    const auto r = static_cast<std::size_t>(tape.coords[i] >> 32);
    const auto c = static_cast<std::size_t>(tape.coords[i] & 0xffffffffu);
    tape.slots[i] = mat_.slot(r, c);
  }
}

void SparseEngine::discover(const Circuit& ckt, const StampContext& ctx,
                            double gmin_ground) {
  MnaView view(static_cast<StampSink&>(*this));

  // Record pass: linear devices feed the static tape, nonlinear devices the
  // dynamic one. The RHS needs no tape — devices write the span directly.
  static_tape_ = Tape{};
  dynamic_tape_ = Tape{};
  b_static_.assign(n_, 0.0);
  phase_ = Phase::kRecord;
  active_tape_ = &static_tape_;
  for (const auto& d : ckt.devices()) {
    if (d->nonlinear()) {
      d->stamp_static(ctx, view, b_static_);
    } else {
      d->stamp(ctx, view, b_static_);
    }
  }
  b_work_.copy_from(b_static_.span());
  active_tape_ = &dynamic_tape_;
  for (const auto& d : ckt.devices()) {
    if (d->nonlinear()) d->stamp(ctx, view, b_work_);
  }
  phase_ = Phase::kIdle;

  // The recorded coordinate streams are the topology: hash them and try to
  // adopt a published program before deriving anything ourselves.
  program_.reset();
  publish_pending_ = false;
  if (cache_ != nullptr) {
    program_key_ =
        program_key(n_, nv_, static_tape_.coords, dynamic_tape_.coords);
    auto prog = cache_->lookup(program_key_);
    if (prog != nullptr && prog->symbolic != nullptr &&
        prog->matches(n_, nv_, static_tape_.coords, dynamic_tape_.coords)) {
      program_ = std::move(prog);
      ECMS_METRIC_COUNT("circuit.program.hits", 1);
    } else {
      // Absent — or a 64-bit collision that matches() rejected, which
      // degrades to a private compilation.
      publish_pending_ = true;
      ECMS_METRIC_COUNT("circuit.program.misses", 1);
    }
  }

  if (program_ != nullptr) {
    // Adopt the shared compilation: pattern, resolved tapes, diagonal
    // slots, and the LU pivot order all come from the program; this engine
    // only ever writes its own value arrays.
    mat_.adopt_pattern(program_->pattern);
    static_tape_.slots = program_->static_slots;
    dynamic_tape_.slots = program_->dynamic_slots;
    diag_slots_ = program_->diag_slots;
    lu_.adopt_symbolic(program_->symbolic);
  } else {
    // Freeze the pattern: every recorded coordinate plus the gmin ground
    // diagonal, then resolve the tapes to value slots.
    std::vector<std::uint64_t> coords;
    coords.reserve(static_tape_.coords.size() + dynamic_tape_.coords.size() +
                   nv_);
    coords.insert(coords.end(), static_tape_.coords.begin(),
                  static_tape_.coords.end());
    coords.insert(coords.end(), dynamic_tape_.coords.begin(),
                  dynamic_tape_.coords.end());
    for (std::size_t i = 0; i < nv_; ++i) coords.push_back(pack_coord(i, i));
    mat_.build_pattern(n_, coords);
    resolve_slots(static_tape_);
    resolve_slots(dynamic_tape_);
    diag_slots_.resize(nv_);
    for (std::size_t i = 0; i < nv_; ++i) diag_slots_[i] = mat_.slot(i, i);
  }

  // Build the static image and this iterate's working values from the
  // recorded stamps (same accumulation order as the replay path).
  static_values_.assign(mat_.nnz(), 0.0);
  for (std::size_t i = 0; i < static_tape_.slots.size(); ++i) {
    static_values_[static_tape_.slots[i]] += static_tape_.rec_vals[i];
  }
  for (const std::uint32_t s : diag_slots_) static_values_[s] += gmin_ground;
  std::span<double> vals = mat_.values();
  std::copy(static_values_.begin(), static_values_.end(), vals.begin());
  for (std::size_t i = 0; i < dynamic_tape_.slots.size(); ++i) {
    vals[dynamic_tape_.slots[i]] += dynamic_tape_.rec_vals[i];
  }
  static_tape_.rec_vals.clear();
  dynamic_tape_.rec_vals.clear();

  pattern_built_ = true;
  static_dirty_ = false;
  diverged_ = false;
  ++static_restamps_;
}

void SparseEngine::assemble(const Circuit& ckt, const StampContext& ctx,
                            double gmin_ground) {
  ECMS_REQUIRE(ckt.unknown_count() == n_,
               "sparse engine bound to a different circuit size");
  nv_ = ckt.node_count() - 1;
  force_full_factor_ = false;  // a pristine assembly supersedes zero_row()
  if (!pattern_built_) {
    discover(ckt, ctx, gmin_ground);
    return;
  }

  diverged_ = false;

  if (static_dirty_) {
    std::fill(static_values_.begin(), static_values_.end(), 0.0);
    b_static_.assign(n_, 0.0);
    ReplayTape rt;
    rt.coords = static_tape_.coords.data();
    rt.slots = static_tape_.slots.data();
    rt.size = static_tape_.coords.size();
    rt.values = static_values_.data();
    MnaView view(rt);
    for (const auto& d : ckt.devices()) {
      if (d->nonlinear()) {
        d->stamp_static(ctx, view, b_static_);
      } else {
        d->stamp(ctx, view, b_static_);
      }
    }
    if (rt.diverged || rt.cursor != rt.size) diverged_ = true;
    if (!diverged_) {
      for (const std::uint32_t s : diag_slots_) {
        static_values_[s] += gmin_ground;
      }
      static_dirty_ = false;
      ++static_restamps_;
    }
  } else {
    ++static_hits_;
  }

  if (!diverged_) {
    std::span<double> vals = mat_.values();
    std::copy(static_values_.begin(), static_values_.end(), vals.begin());
    b_work_.copy_from(b_static_.span());
    ReplayTape rt;
    rt.coords = dynamic_tape_.coords.data();
    rt.slots = dynamic_tape_.slots.data();
    rt.size = dynamic_tape_.coords.size();
    rt.values = vals.data();
    MnaView view(rt);
    for (const auto& d : ckt.devices()) {
      if (d->nonlinear()) d->stamp(ctx, view, b_work_);
    }
    if (rt.diverged || rt.cursor != rt.size) diverged_ = true;
  }

  if (diverged_) {
    // A device emitted a different stamp sequence than the recorded tape
    // (reconfigured netlist between solves): drop every cache — including
    // the factorization and any adopted program, whose pattern may no
    // longer match — and rediscover (which re-keys against the cache).
    pattern_built_ = false;
    static_dirty_ = true;
    lu_.reset();
    program_.reset();
    publish_pending_ = false;
    discover(ckt, ctx, gmin_ground);
  }
}

void SparseEngine::maybe_publish() {
  if (!publish_pending_ || cache_ == nullptr) return;
  publish_pending_ = false;
  auto prog = std::make_shared<NetlistProgram>();
  prog->key = program_key_;
  prog->n = n_;
  prog->nv = nv_;
  prog->static_coords = static_tape_.coords;
  prog->dynamic_coords = dynamic_tape_.coords;
  prog->static_slots = static_tape_.slots;
  prog->dynamic_slots = dynamic_tape_.slots;
  prog->diag_slots = diag_slots_;
  prog->pattern = mat_.pattern();
  prog->symbolic = lu_.symbolic();
  // First insert wins: if a racing builder published first, keep using the
  // private compilation this engine already runs on (identical topology).
  program_ = cache_->insert(program_key_, std::move(prog));
  ECMS_METRIC_COUNT("circuit.program.builds", 1);
}

void SparseEngine::factor() {
  if (force_full_factor_) {
    force_full_factor_ = false;
    // A zeroed-row matrix must never contribute a published pivot order.
    publish_pending_ = false;
    lu_.factor(mat_);  // throws SolverError when singular
    ++symbolic_;
    return;
  }
  if (lu_.has_symbolic() && lu_.refactor(mat_)) {
    ++numeric_;
    return;
  }
  // First use without an adopted program, or pivot degradation: full
  // Markowitz (re-)pivot. A genuinely singular system throws here,
  // matching the dense backend's behavior.
  lu_.factor(mat_);
  ++symbolic_;
  maybe_publish();
}

void SparseEngine::solve(std::span<double> x) {
  ECMS_REQUIRE(x.size() == n_, "sparse solve: x has wrong size");
  std::copy(b_work_.begin(), b_work_.end(), x.begin());
  lu_.solve_in_place(x);
}

void SparseEngine::zero_row(std::size_t r) {
  std::span<double> vals = mat_.values();
  for (std::uint32_t s = mat_.row_begin(r); s < mat_.row_end(r); ++s) {
    vals[s] = 0.0;
  }
  // A numeric refactor could smear the exact zeros into small residuals;
  // force the full factorization so singularity is detected deterministically.
  force_full_factor_ = true;
}

void NewtonWorkspace::prepare(const Circuit& ckt, const SolverConfig& cfg) {
  const std::size_t n = ckt.unknown_count();
  const SolverKind want = resolve_solver_kind(cfg, n);
  if (bound_ && n == bound_n_ && want == active_ &&
      cfg.program_cache == bound_cache_) {
    return;
  }
  bound_ = true;
  bound_n_ = n;
  active_ = want;
  bound_cache_ = cfg.program_cache;
  // Recycle all arena-backed scratch before re-carving: the engine must go
  // first (its buffers point into the arena being reset).
  sparse_.reset();
  arena_.reset();
  b.bind(&arena_);
  x_new.bind(&arena_);
  b.resize(n);
  x_new.resize(n);
  if (want == SolverKind::kSparse) {
    sparse_ = std::make_unique<SparseEngine>(n, cfg.program_cache, &arena_);
  } else {
    lu_dense = LuFactorization{};
  }
}

}  // namespace ecms::circuit
