#include "circuit/kernels.hpp"

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>

#if defined(__aarch64__) && defined(__ARM_NEON)
#include <arm_neon.h>
#define ECMS_HAVE_NEON 1
#endif

namespace ecms::circuit::kernels {

namespace {

// ---------------------------------------------------------------------------
// Scalar backend: the reference implementation. Per lane this is literally
// SparseLu::refactor()/solve_in_place() with an extra inner lane loop; the
// vector backends below replicate the identical op order 4 (AVX2) or 2
// (NEON) lanes at a time.
// ---------------------------------------------------------------------------

void refactor_scalar(const LuSymbolic& sy, const double* a, double* l,
                     double* u, double* work, std::size_t w) {
  const std::size_t n = sy.n;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::uint32_t s = sy.l_ptr[i]; s < sy.l_ptr[i + 1]; ++s) {
      double* row = work + static_cast<std::size_t>(sy.l_cols[s]) * w;
      for (std::size_t k = 0; k < w; ++k) row[k] = 0.0;
    }
    for (std::uint32_t s = sy.u_ptr[i]; s < sy.u_ptr[i + 1]; ++s) {
      double* row = work + static_cast<std::size_t>(sy.u_cols[s]) * w;
      for (std::size_t k = 0; k < w; ++k) row[k] = 0.0;
    }
    for (std::uint32_t s = sy.a_ptr[i]; s < sy.a_ptr[i + 1]; ++s) {
      double* row = work + static_cast<std::size_t>(sy.a_pcol[s]) * w;
      const double* av = a + static_cast<std::size_t>(sy.a_slot[s]) * w;
      for (std::size_t k = 0; k < w; ++k) row[k] += av[k];
    }
    for (std::uint32_t s = sy.l_ptr[i]; s < sy.l_ptr[i + 1]; ++s) {
      const std::uint32_t j = sy.l_cols[s];
      const double* wj = work + static_cast<std::size_t>(j) * w;
      const double* upiv = u + static_cast<std::size_t>(sy.u_ptr[j]) * w;
      double* ls = l + static_cast<std::size_t>(s) * w;
      for (std::size_t k = 0; k < w; ++k) ls[k] = wj[k] / upiv[k];
      for (std::uint32_t t = sy.u_ptr[j] + 1; t < sy.u_ptr[j + 1]; ++t) {
        double* row = work + static_cast<std::size_t>(sy.u_cols[t]) * w;
        const double* ut = u + static_cast<std::size_t>(t) * w;
        for (std::size_t k = 0; k < w; ++k) row[k] -= ls[k] * ut[k];
      }
    }
    for (std::uint32_t s = sy.u_ptr[i]; s < sy.u_ptr[i + 1]; ++s) {
      const double* row = work + static_cast<std::size_t>(sy.u_cols[s]) * w;
      double* us = u + static_cast<std::size_t>(s) * w;
      for (std::size_t k = 0; k < w; ++k) us[k] = row[k];
    }
  }
}

void solve_scalar(const LuSymbolic& sy, const double* l, const double* u,
                  double* pb, std::size_t w) {
  const std::size_t n = sy.n;
  for (std::size_t i = 0; i < n; ++i) {
    double* acc = pb + i * w;
    for (std::uint32_t s = sy.l_ptr[i]; s < sy.l_ptr[i + 1]; ++s) {
      const double* ls = l + static_cast<std::size_t>(s) * w;
      const double* pj = pb + static_cast<std::size_t>(sy.l_cols[s]) * w;
      for (std::size_t k = 0; k < w; ++k) acc[k] -= ls[k] * pj[k];
    }
  }
  for (std::size_t ii = n; ii > 0; --ii) {
    const std::size_t i = ii - 1;
    double* acc = pb + i * w;
    for (std::uint32_t s = sy.u_ptr[i] + 1; s < sy.u_ptr[i + 1]; ++s) {
      const double* us = u + static_cast<std::size_t>(s) * w;
      const double* pj = pb + static_cast<std::size_t>(sy.u_cols[s]) * w;
      for (std::size_t k = 0; k < w; ++k) acc[k] -= us[k] * pj[k];
    }
    const double* upiv = u + static_cast<std::size_t>(sy.u_ptr[i]) * w;
    for (std::size_t k = 0; k < w; ++k) acc[k] /= upiv[k];
  }
}

void copy_scalar(double* dst, const double* src, std::size_t count) {
  std::memcpy(dst, src, count * sizeof(double));
}

void diag_add_scalar(double* values, const std::uint32_t* slots,
                     std::size_t n_slots, double g, std::size_t w) {
  for (std::size_t i = 0; i < n_slots; ++i) {
    double* row = values + static_cast<std::size_t>(slots[i]) * w;
    for (std::size_t k = 0; k < w; ++k) row[k] += g;
  }
}

constexpr Kernels kScalar = {"scalar", refactor_scalar, solve_scalar,
                             copy_scalar, diag_add_scalar};

#ifdef ECMS_HAVE_NEON

// NEON backend: 2 lanes per op, scalar remainder for odd widths. Same op
// order as the scalar loops above; vdivq_f64/vsubq_f64/vmulq_f64 are
// lanewise IEEE-754 (no fused multiply here — bit-parity with scalar).

void refactor_neon(const LuSymbolic& sy, const double* a, double* l,
                   double* u, double* work, std::size_t w) {
  const std::size_t n = sy.n;
  const std::size_t wv = w & ~std::size_t{1};
  for (std::size_t i = 0; i < n; ++i) {
    for (std::uint32_t s = sy.l_ptr[i]; s < sy.l_ptr[i + 1]; ++s) {
      double* row = work + static_cast<std::size_t>(sy.l_cols[s]) * w;
      for (std::size_t k = 0; k < w; ++k) row[k] = 0.0;
    }
    for (std::uint32_t s = sy.u_ptr[i]; s < sy.u_ptr[i + 1]; ++s) {
      double* row = work + static_cast<std::size_t>(sy.u_cols[s]) * w;
      for (std::size_t k = 0; k < w; ++k) row[k] = 0.0;
    }
    for (std::uint32_t s = sy.a_ptr[i]; s < sy.a_ptr[i + 1]; ++s) {
      double* row = work + static_cast<std::size_t>(sy.a_pcol[s]) * w;
      const double* av = a + static_cast<std::size_t>(sy.a_slot[s]) * w;
      for (std::size_t k = 0; k < wv; k += 2)
        vst1q_f64(row + k, vaddq_f64(vld1q_f64(row + k), vld1q_f64(av + k)));
      for (std::size_t k = wv; k < w; ++k) row[k] += av[k];
    }
    for (std::uint32_t s = sy.l_ptr[i]; s < sy.l_ptr[i + 1]; ++s) {
      const std::uint32_t j = sy.l_cols[s];
      const double* wj = work + static_cast<std::size_t>(j) * w;
      const double* upiv = u + static_cast<std::size_t>(sy.u_ptr[j]) * w;
      double* ls = l + static_cast<std::size_t>(s) * w;
      for (std::size_t k = 0; k < wv; k += 2)
        vst1q_f64(ls + k, vdivq_f64(vld1q_f64(wj + k), vld1q_f64(upiv + k)));
      for (std::size_t k = wv; k < w; ++k) ls[k] = wj[k] / upiv[k];
      for (std::uint32_t t = sy.u_ptr[j] + 1; t < sy.u_ptr[j + 1]; ++t) {
        double* row = work + static_cast<std::size_t>(sy.u_cols[t]) * w;
        const double* ut = u + static_cast<std::size_t>(t) * w;
        for (std::size_t k = 0; k < wv; k += 2)
          vst1q_f64(row + k,
                    vsubq_f64(vld1q_f64(row + k),
                              vmulq_f64(vld1q_f64(ls + k), vld1q_f64(ut + k))));
        for (std::size_t k = wv; k < w; ++k) row[k] -= ls[k] * ut[k];
      }
    }
    for (std::uint32_t s = sy.u_ptr[i]; s < sy.u_ptr[i + 1]; ++s) {
      const double* row = work + static_cast<std::size_t>(sy.u_cols[s]) * w;
      double* us = u + static_cast<std::size_t>(s) * w;
      for (std::size_t k = 0; k < w; ++k) us[k] = row[k];
    }
  }
}

void solve_neon(const LuSymbolic& sy, const double* l, const double* u,
                double* pb, std::size_t w) {
  const std::size_t n = sy.n;
  const std::size_t wv = w & ~std::size_t{1};
  for (std::size_t i = 0; i < n; ++i) {
    double* acc = pb + i * w;
    for (std::uint32_t s = sy.l_ptr[i]; s < sy.l_ptr[i + 1]; ++s) {
      const double* ls = l + static_cast<std::size_t>(s) * w;
      const double* pj = pb + static_cast<std::size_t>(sy.l_cols[s]) * w;
      for (std::size_t k = 0; k < wv; k += 2)
        vst1q_f64(acc + k,
                  vsubq_f64(vld1q_f64(acc + k),
                            vmulq_f64(vld1q_f64(ls + k), vld1q_f64(pj + k))));
      for (std::size_t k = wv; k < w; ++k) acc[k] -= ls[k] * pj[k];
    }
  }
  for (std::size_t ii = n; ii > 0; --ii) {
    const std::size_t i = ii - 1;
    double* acc = pb + i * w;
    for (std::uint32_t s = sy.u_ptr[i] + 1; s < sy.u_ptr[i + 1]; ++s) {
      const double* us = u + static_cast<std::size_t>(s) * w;
      const double* pj = pb + static_cast<std::size_t>(sy.u_cols[s]) * w;
      for (std::size_t k = 0; k < wv; k += 2)
        vst1q_f64(acc + k,
                  vsubq_f64(vld1q_f64(acc + k),
                            vmulq_f64(vld1q_f64(us + k), vld1q_f64(pj + k))));
      for (std::size_t k = wv; k < w; ++k) acc[k] -= us[k] * pj[k];
    }
    const double* upiv = u + static_cast<std::size_t>(sy.u_ptr[i]) * w;
    for (std::size_t k = 0; k < wv; k += 2)
      vst1q_f64(acc + k, vdivq_f64(vld1q_f64(acc + k), vld1q_f64(upiv + k)));
    for (std::size_t k = wv; k < w; ++k) acc[k] /= upiv[k];
  }
}

constexpr Kernels kNeon = {"neon", refactor_neon, solve_neon, copy_scalar,
                           diag_add_scalar};

#endif  // ECMS_HAVE_NEON

bool env_forces_scalar() {
  const char* v = std::getenv("ECMS_FORCE_SCALAR_KERNELS");
  return v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
}

const Kernels* detect_vector() {
#if defined(ECMS_FORCE_SCALAR_KERNELS_BUILD)
  return nullptr;
#else
#if defined(__x86_64__) || defined(_M_X64)
  if (avx2_kernels() != nullptr && __builtin_cpu_supports("avx2")) {
    return avx2_kernels();
  }
#endif
#ifdef ECMS_HAVE_NEON
  return &kNeon;
#else
  return nullptr;
#endif
#endif
}

// -1 = undecided (consult env at first use), 0 = dispatch, 1 = scalar.
std::atomic<int> g_force_scalar{-1};

}  // namespace

const Kernels& scalar() { return kScalar; }

bool vector_available() { return detect_vector() != nullptr; }

void set_force_scalar(bool force) {
  g_force_scalar.store(force ? 1 : 0, std::memory_order_relaxed);
}

bool force_scalar() {
  int v = g_force_scalar.load(std::memory_order_relaxed);
  if (v < 0) {
    v = env_forces_scalar() ? 1 : 0;
    g_force_scalar.store(v, std::memory_order_relaxed);
  }
  return v == 1;
}

const Kernels& active() {
  if (force_scalar()) return kScalar;
  const Kernels* vec = detect_vector();
  return vec != nullptr ? *vec : kScalar;
}

const char* isa_summary() {
  if (force_scalar()) {
    return vector_available() ? "scalar (forced; vector backend available)"
                              : "scalar (forced)";
  }
  const Kernels* vec = detect_vector();
  if (vec == nullptr) return "scalar (no vector backend on this host)";
  return vec->name;
}

std::size_t preferred_width() {
  // Measured on the 16x16 array extraction: width 16 amortizes the per-chunk
  // bootstrap best on AVX2 (6.96 s vs 7.11 s at 8); 32+ regresses because
  // the SoA working set (a/l/u/work at nnz * W doubles) falls out of L2.
  const Kernels& k = active();
  if (std::strcmp(k.name, "avx2") == 0) return 16;
  return 4;
}

long first_degraded_row(const LuSymbolic& sy, const double* u,
                        std::size_t width, std::size_t lane) {
  for (std::size_t i = 0; i < sy.n; ++i) {
    double rmax = 0.0;
    for (std::uint32_t s = sy.u_ptr[i]; s < sy.u_ptr[i + 1]; ++s) {
      const double v = u[static_cast<std::size_t>(s) * width + lane];
      rmax = std::max(rmax, std::abs(v));
    }
    const double piv =
        u[static_cast<std::size_t>(sy.u_ptr[i]) * width + lane];
    const double mag = std::abs(piv);
    if (!std::isfinite(piv) || mag == 0.0 || mag < kRepivotThreshold * rmax) {
      return static_cast<long>(i);
    }
  }
  return -1;
}

}  // namespace ecms::circuit::kernels
