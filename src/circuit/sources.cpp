#include "circuit/sources.hpp"

#include "util/error.hpp"

namespace ecms::circuit {

VSource::VSource(std::string name, NodeId p, NodeId n, SourceWave wave)
    : Device(std::move(name)), p_(p), n_(n), wave_(std::move(wave)) {
  ECMS_REQUIRE(p != n, "voltage source terminals must differ");
}

void VSource::stamp(const StampContext& ctx, MnaView& a_mat,
                    std::span<double> b_vec) const {
  const std::size_t k = branch_;
  if (p_ != kGround) {
    a_mat.add(unknown_of(p_), k, 1.0);
    a_mat.add(k, unknown_of(p_), 1.0);
  }
  if (n_ != kGround) {
    a_mat.add(unknown_of(n_), k, -1.0);
    a_mat.add(k, unknown_of(n_), -1.0);
  }
  b_vec[k] += ctx.source_scale * wave_.value(ctx.time);
}

void VSource::collect_breakpoints(std::vector<double>& out) const {
  const auto& bp = wave_.breakpoints();
  out.insert(out.end(), bp.begin(), bp.end());
}

double VSource::probe_current(const StampContext& ctx) const {
  return ctx.x[branch_];
}

ISource::ISource(std::string name, NodeId p, NodeId n, SourceWave wave)
    : Device(std::move(name)), p_(p), n_(n), wave_(std::move(wave)) {
  ECMS_REQUIRE(p != n, "current source terminals must differ");
}

void ISource::stamp(const StampContext& ctx, MnaView&,
                    std::span<double> b_vec) const {
  stamp_current(b_vec, p_, n_, ctx.source_scale * wave_.value(ctx.time));
}

void ISource::collect_breakpoints(std::vector<double>& out) const {
  const auto& bp = wave_.breakpoints();
  out.insert(out.end(), bp.begin(), bp.end());
}

double ISource::probe_current(const StampContext& ctx) const {
  return wave_.value(ctx.time);
}

}  // namespace ecms::circuit
