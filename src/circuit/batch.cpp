#include "circuit/batch.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"

namespace ecms::circuit {

namespace {
constexpr double kTimeEps = 1e-18;  // matches transient.cpp
}

BatchEngine::BatchEngine(std::span<Circuit* const> lanes, const Options& opts)
    : opts_(opts) {
  ECMS_REQUIRE(!lanes.empty(), "batch engine needs at least one lane");
  ECMS_REQUIRE(opts_.newton.hooks == nullptr,
               "batch engine does not support solve hooks (fault-injected "
               "cells run the scalar path)");
  ECMS_REQUIRE(opts_.newton.solver.program_cache != nullptr,
               "batch engine needs a program cache: without one, resumed "
               "scalar segments re-pivot per segment and the lockstep run "
               "could not be bit-identical to them");
  ECMS_REQUIRE(opts_.dt > 0.0, "batch engine needs a positive base step");

  // One reset up front so a reused arena starts a fresh generation before
  // any engine carves from it (and so util.arena.resets reflects the batch).
  arena_.reset();
  a_soa_.bind(&arena_);
  l_soa_.bind(&arena_);
  u_soa_.bind(&arena_);
  work_soa_.bind(&arena_);
  pb_soa_.bind(&arena_);

  lanes[0]->finalize();
  n_ = lanes[0]->unknown_count();
  nv_ = lanes[0]->node_count() - 1;

  lanes_.resize(lanes.size());
  for (std::size_t li = 0; li < lanes.size(); ++li) {
    Lane& lane = lanes_[li];
    lane.ckt = lanes[li];
    lane.ckt->finalize();
    if (lane.ckt->unknown_count() != n_ ||
        lane.ckt->node_count() - 1 != nv_) {
      // A structurally different lane can never share the program; its
      // measurement runs scalar from scratch.
      retire(li, "lane topology differs from lane 0", /*divergence=*/false);
      continue;
    }
    lane.eng = std::make_unique<SparseEngine>(
        n_, opts_.newton.solver.program_cache, &arena_);
    // UIC start: x = 0 at t = 0, device history initialized from it — the
    // same initial condition every measurement flow uses (uic-only is an
    // engagement precondition enforced by the caller).
    lane.x.assign(n_, 0.0);
    lane.x_try.assign(n_, 0.0);
    lane.x_new.assign(n_, 0.0);
    StampContext ctx;
    ctx.x = lane.x;
    ctx.time = 0.0;
    ctx.dt = 0.0;
    for (const auto& d : lane.ckt->devices()) d->init_state(ctx);
  }
  force_be_ = opts_.be_after_breakpoint;  // first step from t = 0 uses BE
  ECMS_METRIC_COUNT("circuit.batch.lanes", lanes.size());
}

BatchEngine::~BatchEngine() = default;

std::size_t BatchEngine::active_lanes() const {
  std::size_t n = 0;
  for (const Lane& lane : lanes_) {
    if (lane.state == LaneState::kActive) ++n;
  }
  return n;
}

void BatchEngine::retire(std::size_t lane, std::string reason,
                         bool divergence) {
  Lane& L = lanes_[lane];
  if (L.state != LaneState::kActive) return;
  L.state = LaneState::kRetired;
  L.reason = std::move(reason);
  // Pending counters are dropped, not flushed: the scalar re-measurement of
  // this cell counts its own work, so flushing here would double-count.
  ECMS_METRIC_COUNT("circuit.batch.retired", 1);
  if (divergence) ECMS_METRIC_COUNT("circuit.batch.divergences", 1);
}

void BatchEngine::finish(std::size_t lane) {
  Lane& L = lanes_[lane];
  if (L.state != LaneState::kActive) return;
  flush_counters(L);
  L.state = LaneState::kFinished;
}

void BatchEngine::flush_counters(Lane& lane) {
  if (!obs::metrics_enabled()) return;
  const SparseEngine* eng = lane.eng.get();
  const std::uint64_t sym = eng ? eng->symbolic_factorizations() : 0;
  const std::uint64_t num =
      (eng ? eng->numeric_factorizations() : 0) + lane.vector_refactors;
  ECMS_METRIC_COUNT("circuit.newton.solves", lane.points);
  ECMS_METRIC_COUNT("circuit.newton.iterations", lane.iters);
  ECMS_METRIC_COUNT("circuit.newton.factorizations", sym + num);
  ECMS_METRIC_COUNT("circuit.lu.symbolic", sym);
  ECMS_METRIC_COUNT("circuit.lu.numeric", num);
  ECMS_METRIC_COUNT("circuit.assemble.static_hits",
                    eng ? eng->static_hits() : 0);
  ECMS_METRIC_COUNT("circuit.assemble.restamps",
                    eng ? eng->static_restamps() : 0);
  // Each advance() this lane stepped in is the batched equivalent of one
  // scalar transient segment (all segments past the first are resumes).
  ECMS_METRIC_COUNT("circuit.transient.solves", lane.stats.segments);
  ECMS_METRIC_COUNT("circuit.transient.accepted_steps",
                    lane.stats.accepted_steps);
  if (lane.stats.segments > 1) {
    ECMS_METRIC_COUNT("circuit.transient.resumes", lane.stats.segments - 1);
  }
}

void BatchEngine::advance(
    double t_stop,
    const std::function<void(std::size_t, double, std::span<const double>)>&
        on_sample) {
  obs::ScopedSpan span("batch_advance");
  ECMS_REQUIRE(t_stop > t_ + kTimeEps,
               "batch advance t_stop must lie after the current time");
  span.arg("t_stop_s", t_stop);
  span.arg("lanes", static_cast<double>(active_lanes()));

  std::size_t ref = lanes_.size();
  for (std::size_t li = 0; li < lanes_.size(); ++li) {
    Lane& L = lanes_[li];
    if (L.state != LaneState::kActive) continue;
    if (ref == lanes_.size()) ref = li;
    ++L.stats.segments;
    // Boundary sample: the first trace row a scalar segment records.
    on_sample(li, t_, L.x);
  }
  if (ref == lanes_.size()) {  // nothing left to step
    t_ = t_stop;
    first_advance_ = false;
    return;
  }

  // The lockstep schedule is a pure function of (dt, breakpoints): lanes
  // are the same netlist with the same stimulus timing, so their breakpoint
  // sets agree. A lane that disagrees (a reprogrammed wave, an exotic
  // defect model) cannot share the time grid and is retired.
  const std::vector<double> bps = lanes_[ref].ckt->breakpoints(t_stop);
  for (std::size_t li = ref + 1; li < lanes_.size(); ++li) {
    Lane& L = lanes_[li];
    if (L.state != LaneState::kActive) continue;
    if (L.ckt->breakpoints(t_stop) != bps) {
      retire(li, "breakpoint schedule differs from the batch",
             /*divergence=*/false);
    }
  }

  std::size_t next_bp = 0;
  bool start_on_bp = false;
  while (next_bp < bps.size() && bps[next_bp] <= t_ + kTimeEps) {
    if (bps[next_bp] >= t_ - kTimeEps) start_on_bp = true;
    ++next_bp;
  }
  if (!first_advance_ && start_on_bp) {
    // transient_resume applies breakpoint handling when it starts on a
    // corner (the uninterrupted run saw it when landing here).
    force_be_ = opts_.be_after_breakpoint;
  }

  double t = t_;
  const double dt = opts_.dt;  // fixed: any lane needing a halving retires

  while (t < t_stop - kTimeEps) {
    double step = std::min(dt, t_stop - t);
    bool hits_bp = false;
    if (next_bp < bps.size() && t + step >= bps[next_bp] - kTimeEps) {
      step = bps[next_bp] - t;
      hits_bp = true;
      if (step <= kTimeEps) {  // already on the breakpoint
        ++next_bp;
        continue;
      }
    }

    StampContext proto;
    proto.time = t + step;
    proto.dt = step;
    proto.method =
        force_be_ ? Integrator::kBackwardEuler : opts_.method;
    proto.gmin = opts_.newton.gmin_ground;

    bool any = false;
    for (Lane& L : lanes_) {
      if (L.state != LaneState::kActive) continue;
      L.x_try = L.x;
      any = true;
    }
    if (!any) break;

    if (!solve_point(proto)) break;

    for (std::size_t li = 0; li < lanes_.size(); ++li) {
      Lane& L = lanes_[li];
      if (L.state != LaneState::kActive) continue;
      std::swap(L.x, L.x_try);
      StampContext actx = proto;
      actx.x = L.x;
      for (const auto& d : L.ckt->devices()) d->accept_step(actx);
      ++L.stats.accepted_steps;
      L.stats.newton_iterations += static_cast<std::size_t>(L.point_iters);
      ++L.points;
      L.iters += static_cast<std::size_t>(L.point_iters);
      on_sample(li, t + step, L.x);
    }
    t += step;

    if (hits_bp) {
      ++next_bp;
      force_be_ = opts_.be_after_breakpoint;
    } else {
      force_be_ = false;
    }
  }

  // Keep the loop's actual final time, not the requested target: a
  // breakpoint one ulp short of t_stop ends the segment *on* the breakpoint
  // (exactly as run_transient leaves its checkpoint there), and the next
  // segment must resume from that grid point or the lockstep grid drifts
  // off the uninterrupted run's by a whole step.
  t_ = t;
  first_advance_ = false;
}

bool BatchEngine::solve_point(const StampContext& ctx_proto) {
  const std::size_t W = lanes_.size();
  ++point_epoch_;
  for (Lane& L : lanes_) {
    if (L.state != LaneState::kActive) continue;
    L.unfinished = true;
    L.point_iters = 0;
    L.eng->begin_point();
  }

  // Scalar factor + solve through the lane's own engine — bit-identical to
  // the scalar Newton iteration by construction. Used to bootstrap the
  // shared symbolic (the publishing lane), for lanes whose private pivot
  // order diverged from it, and to re-pivot after degradation.
  auto scalar_factor_solve = [&](std::size_t li) -> bool {
    Lane& L = lanes_[li];
    try {
      L.eng->factor();
    } catch (const SolverError&) {
      // The scalar transient rejects and halves on a singular system; a
      // halved step leaves the lockstep grid.
      retire(li, "singular system", /*divergence=*/true);
      return false;
    }
    L.eng->solve(std::span<double>(L.x_new));
    ECMS_METRIC_COUNT("circuit.batch.scalar_fallbacks", 1);
    return true;
  };

  // Replica of newton_solve_impl's damped update + convergence test, per
  // lane over its own x_new (from the vector scatter or the scalar solve).
  auto newton_update = [&](std::size_t li, int iter) {
    Lane& L = lanes_[li];
    const NewtonOptions& no = opts_.newton;
    double max_dv = 0.0;
    for (std::size_t i = 0; i < nv_; ++i) {
      const double dv = std::abs(L.x_new[i] - L.x_try[i]);
      if (dv > max_dv) max_dv = dv;
    }
    double scale = 1.0;
    if (max_dv > no.max_delta_v) scale = no.max_delta_v / max_dv;
    double max_x = 0.0;
    for (std::size_t i = 0; i < nv_; ++i) {
      max_x = std::max(max_x, std::abs(L.x_try[i]));
    }
    for (std::size_t i = 0; i < n_; ++i) {
      L.x_try[i] += scale * (L.x_new[i] - L.x_try[i]);
    }
    L.point_iters = iter + 1;
    const double final_delta = max_dv * scale;
    if (!std::isfinite(final_delta)) {
      retire(li, "non-finite newton update", /*divergence=*/true);
      return;
    }
    if (scale == 1.0 &&
        max_dv < no.tol_abs_v + no.tol_rel * std::max(max_x, 1.0)) {
      L.unfinished = false;  // converged
    }
  };

  // Adopts lane li's pivot order as the batch's shared symbolic and sizes
  // the SoA kernel operands for it.
  auto adopt_shared = [&](std::size_t li) {
    shared_sym_ = lanes_[li].eng->lu_symbolic();
    shared_pat_ = lanes_[li].eng->matrix().pattern();
    const LuSymbolic& sy = *shared_sym_;
    a_soa_.resize(shared_pat_->cols.size() * W);
    l_soa_.resize(sy.l_cols.size() * W);
    u_soa_.resize(sy.u_cols.size() * W);
    work_soa_.resize(sy.n * W);
    pb_soa_.resize(sy.n * W);
    // Only the dynamic tape's slots change between iterations of one point
    // (the static image is frozen per point), so after a lane's first
    // gather of a point the per-iteration gather touches these alone.
    shared_dyn_slots_.clear();
    const auto& prog = lanes_[li].eng->program();
    if (prog != nullptr && prog->symbolic.get() == shared_sym_.get()) {
      shared_dyn_slots_.assign(prog->dynamic_slots.begin(),
                               prog->dynamic_slots.end());
      std::sort(shared_dyn_slots_.begin(), shared_dyn_slots_.end());
      shared_dyn_slots_.erase(
          std::unique(shared_dyn_slots_.begin(), shared_dyn_slots_.end()),
          shared_dyn_slots_.end());
    }
    for (Lane& L : lanes_) L.soa_epoch = 0;  // a_soa_ was re-carved
  };

  std::vector<std::size_t> vec_lanes;
  for (int iter = 0; iter < opts_.newton.max_iterations; ++iter) {
    bool pending = false;
    for (const Lane& L : lanes_) {
      pending |= (L.state == LaneState::kActive && L.unfinished);
    }
    if (!pending) break;

    vec_lanes.clear();
    for (std::size_t li = 0; li < lanes_.size(); ++li) {
      Lane& L = lanes_[li];
      if (L.state != LaneState::kActive || !L.unfinished) continue;
      StampContext ctx = ctx_proto;
      ctx.x = L.x_try;
      L.eng->assemble(*L.ckt, ctx, opts_.newton.gmin_ground);
      if (shared_sym_ == nullptr) {
        if (L.eng->lu_symbolic() == nullptr) {
          // Cache miss: this lane compiles and publishes exactly as the
          // first scalar cell would, before any later lane assembles — so
          // the later lanes adopt it during their own discovery.
          if (!scalar_factor_solve(li)) continue;
          if (L.eng->lu_symbolic() != nullptr) adopt_shared(li);
          newton_update(li, iter);
          continue;
        }
        adopt_shared(li);
      }
      if (L.eng->lu_symbolic().get() == shared_sym_.get()) {
        vec_lanes.push_back(li);
      } else {
        // Private pivot order (publication race or an earlier re-pivot):
        // the lane stays in lockstep but solves through its own engine.
        if (scalar_factor_solve(li)) newton_update(li, iter);
      }
    }

    if (vec_lanes.empty()) continue;
    const LuSymbolic& sy = *shared_sym_;
    const std::size_t nnz = shared_pat_->cols.size();

    // Gather lane values and right-hand sides into SoA form. The kernels
    // compute every one of the W columns; columns of retired / scalar /
    // finished lanes hold stale data whose results are never read.
    for (std::size_t li : vec_lanes) {
      Lane& L = lanes_[li];
      const std::span<const double> av = L.eng->matrix().values();
      double* a = a_soa_.data();
      if (L.soa_epoch != point_epoch_ || shared_dyn_slots_.empty()) {
        for (std::size_t s = 0; s < nnz; ++s) a[s * W + li] = av[s];
        L.soa_epoch = point_epoch_;
      } else {
        for (const std::uint32_t s : shared_dyn_slots_) a[s * W + li] = av[s];
      }
      const std::span<const double> b = L.eng->rhs();
      double* pb = pb_soa_.data();
      for (std::size_t i = 0; i < sy.n; ++i) {
        pb[i * W + li] = b[sy.perm_row[i]];
      }
    }

    const kernels::Kernels& kk = kernels::active();
    kk.refactor(sy, a_soa_.data(), l_soa_.data(), u_soa_.data(),
                work_soa_.data(), W);

    // Pivot health per lane (scalar replica of refactor()'s early return).
    // A degraded lane re-pivots through its engine, exactly as the scalar
    // path's refactor-failure -> full-factor sequence does; its new private
    // order routes it to the scalar solve from the next iteration on.
    std::size_t kept = 0;
    for (std::size_t li : vec_lanes) {
      if (kernels::first_degraded_row(sy, u_soa_.data(), W, li) >= 0) {
        ECMS_METRIC_COUNT("circuit.batch.divergences", 1);
        if (scalar_factor_solve(li)) newton_update(li, iter);
        continue;
      }
      ++lanes_[li].vector_refactors;
      vec_lanes[kept++] = li;
    }
    vec_lanes.resize(kept);
    if (vec_lanes.empty()) continue;

    kk.solve(sy, l_soa_.data(), u_soa_.data(), pb_soa_.data(), W);

    for (std::size_t li : vec_lanes) {
      Lane& L = lanes_[li];
      const double* pb = pb_soa_.data();
      for (std::size_t j = 0; j < sy.n; ++j) {
        L.x_new[sy.perm_col[j]] = pb[j * W + li];
      }
      newton_update(li, iter);
    }
  }

  bool any = false;
  for (std::size_t li = 0; li < lanes_.size(); ++li) {
    Lane& L = lanes_[li];
    if (L.state != LaneState::kActive) continue;
    if (L.unfinished) {
      // The scalar transient would reject this step and halve — off-grid.
      retire(li, "newton did not converge on the lockstep grid",
             /*divergence=*/true);
      continue;
    }
    any = true;
  }
  return any;
}

}  // namespace ecms::circuit
