// Circuit: the netlist container.
//
// Owns devices, maps node names to ids, and assigns MNA unknown indices.
// Construction is additive; finalize() freezes branch indices (called lazily
// by the solvers, idempotent).
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "circuit/device.hpp"
#include "circuit/diode.hpp"
#include "circuit/mosfet.hpp"
#include "circuit/passive.hpp"
#include "circuit/sources.hpp"

namespace ecms::circuit {

class Circuit {
 public:
  Circuit();

  /// Returns the id for `name`, creating the node if needed. "0" and "gnd"
  /// both name ground.
  NodeId node(const std::string& name);
  bool has_node(const std::string& name) const;
  /// Id lookup that throws if the node does not exist.
  NodeId find_node(const std::string& name) const;
  const std::string& node_name(NodeId id) const;
  /// Number of nodes including ground.
  std::size_t node_count() const { return names_.size(); }

  // --- device factories (names must be unique) ---
  Resistor& add_resistor(const std::string& name, NodeId a, NodeId b,
                         double ohms);
  Capacitor& add_capacitor(const std::string& name, NodeId a, NodeId b,
                           double farads);
  VSource& add_vsource(const std::string& name, NodeId p, NodeId n,
                       SourceWave wave);
  ISource& add_isource(const std::string& name, NodeId p, NodeId n,
                       SourceWave wave);
  Mosfet& add_mosfet(const std::string& name, NodeId d, NodeId g, NodeId s,
                     NodeId b, MosParams params);
  Diode& add_diode(const std::string& name, NodeId anode, NodeId cathode,
                   Diode::Params params);
  VcSwitch& add_switch(const std::string& name, NodeId a, NodeId b,
                       NodeId ctrl_p, NodeId ctrl_n, VcSwitch::Params params);

  /// Assigns branch unknowns. Safe to call repeatedly; devices added after a
  /// finalize trigger re-finalization on the next call.
  void finalize();

  /// Total MNA unknowns: (nodes - 1) + branch currents. Requires finalize().
  std::size_t unknown_count() const;

  const std::vector<std::unique_ptr<Device>>& devices() const {
    return devices_;
  }

  /// Device lookup by unique name; nullptr if absent.
  Device* find(const std::string& name);
  const Device* find(const std::string& name) const;
  /// Typed lookup; throws NetlistError on missing name or wrong type.
  template <typename T>
  T& get(const std::string& name) {
    Device* d = find(name);
    if (d == nullptr) throw_missing(name);
    T* t = dynamic_cast<T*>(d);
    if (t == nullptr) throw_wrong_type(name);
    return *t;
  }

  /// True if any device is nonlinear (needs Newton iterations).
  bool has_nonlinear() const;

  /// All stimulus breakpoints in [0, t_stop], sorted and deduplicated.
  std::vector<double> breakpoints(double t_stop) const;

 private:
  template <typename T, typename... Args>
  T& emplace_device(Args&&... args);
  [[noreturn]] static void throw_missing(const std::string& name);
  [[noreturn]] static void throw_wrong_type(const std::string& name);

  std::vector<std::string> names_;  // node id -> name
  std::unordered_map<std::string, NodeId> ids_;
  std::vector<std::unique_ptr<Device>> devices_;
  std::unordered_map<std::string, Device*> by_name_;
  std::size_t branch_unknowns_ = 0;
  bool finalized_ = false;
};

}  // namespace ecms::circuit
