#include "circuit/transient.hpp"

#include <algorithm>
#include <cmath>

#include "circuit/dc.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace ecms::circuit {

namespace {
constexpr double kTimeEps = 1e-18;
}

namespace {
// Counts one finished transient (successful or not) into the registry.
void count_transient(const TranStats& stats, bool failed) {
  if (!obs::metrics_enabled()) return;
  ECMS_METRIC_COUNT("circuit.transient.solves", 1);
  ECMS_METRIC_COUNT("circuit.transient.accepted_steps", stats.accepted_steps);
  ECMS_METRIC_COUNT("circuit.transient.rejected_steps", stats.rejected_steps);
  if (failed) ECMS_METRIC_COUNT("circuit.transient.failures", 1);
}
}  // namespace

TranResult transient(Circuit& ckt, const TranParams& params,
                     const ProbeSet& probes) {
  obs::ScopedSpan span("transient");
  ECMS_REQUIRE(params.t_stop > 0.0, "transient needs t_stop > 0");
  ECMS_REQUIRE(params.dt > 0.0 && params.dt_min > 0.0,
               "transient needs positive steps");
  ckt.finalize();

  // Resolve probes up front.
  std::vector<NodeId> probe_nodes;
  std::vector<std::string> channel_names;
  for (const auto& n : probes.nodes) {
    probe_nodes.push_back(ckt.find_node(n));
    channel_names.push_back(n);
  }
  std::vector<const Device*> probe_devs;
  for (const auto& dn : probes.device_currents) {
    const Device* d = ckt.find(dn);
    if (d == nullptr) throw NetlistError("no device named " + dn);
    probe_devs.push_back(d);
    channel_names.push_back("I(" + dn + ")");
  }

  TranResult res;
  res.trace = Trace(channel_names);

  // Initial condition: DC operating point at t = 0, or all-zero under UIC.
  std::vector<double> x;
  if (params.uic) {
    x.assign(ckt.unknown_count(), 0.0);
  } else {
    DcOptions dc_opts;
    dc_opts.newton = params.newton;
    dc_opts.time = 0.0;
    DcResult dc = dc_operating_point(ckt, dc_opts);
    x = std::move(dc.x);
  }

  {
    StampContext ctx;
    ctx.x = x;
    ctx.time = 0.0;
    ctx.dt = 0.0;
    for (const auto& d : ckt.devices()) d->init_state(ctx);
  }

  auto record = [&](double t, std::span<const double> xs) {
    StampContext ctx;
    ctx.x = xs;
    ctx.time = t;
    std::vector<double> row;
    row.reserve(channel_names.size());
    for (NodeId n : probe_nodes) row.push_back(ctx.v(n));
    for (const Device* d : probe_devs) row.push_back(d->probe_current(ctx));
    res.trace.append(t, row);
  };
  record(0.0, x);

  std::vector<double> bps = ckt.breakpoints(params.t_stop);
  std::size_t next_bp = 0;

  double t = 0.0;
  double dt = params.dt;
  bool force_be = params.be_after_breakpoint;  // first step from DC uses BE

  while (t < params.t_stop - kTimeEps) {
    double step = std::min(dt, params.t_stop - t);
    // Land exactly on the next breakpoint.
    bool hits_bp = false;
    if (next_bp < bps.size() && t + step >= bps[next_bp] - kTimeEps) {
      step = bps[next_bp] - t;
      hits_bp = true;
      if (step <= kTimeEps) {  // already on the breakpoint
        ++next_bp;
        continue;
      }
    }

    StampContext ctx;
    ctx.time = t + step;
    ctx.dt = step;
    ctx.method =
        force_be ? Integrator::kBackwardEuler : params.method;
    ctx.gmin = params.newton.gmin_ground;

    std::vector<double> x_try = x;
    const NewtonResult nr = newton_solve(ckt, ctx, x_try, params.newton);
    res.stats.newton_iterations += static_cast<std::size_t>(nr.iterations);

    if (!nr.converged) {
      ++res.stats.rejected_steps;
      dt *= 0.5;
      if (dt < params.dt_min) {
        SolverDiagnostics diag;
        diag.time = t;
        diag.dt = step;
        diag.last_delta = nr.final_delta;
        diag.accepted_steps = res.stats.accepted_steps;
        diag.rejected_steps = res.stats.rejected_steps;
        diag.newton_iterations = res.stats.newton_iterations;
        const std::size_t nv = ckt.node_count() - 1;
        if (nr.worst_unknown < nv) {
          diag.worst_node =
              ckt.node_name(static_cast<NodeId>(nr.worst_unknown + 1));
        }
        std::string what = "transient step at t=" + std::to_string(t) +
                           " failed to converge above dt_min (last dt=" +
                           std::to_string(step) +
                           ", accepted=" + std::to_string(diag.accepted_steps) +
                           ", rejected=" + std::to_string(diag.rejected_steps) +
                           ", newton iters=" +
                           std::to_string(diag.newton_iterations);
        if (nr.singular) what += ", singular system";
        if (nr.stalled) what += ", stalled by fault injection";
        if (!diag.worst_node.empty()) {
          what += ", worst node '" + diag.worst_node +
                  "' last dv=" + std::to_string(diag.last_delta);
        }
        what += ")";
        count_transient(res.stats, /*failed=*/true);
        span.arg("failed_at_s", t);
        throw SolverError(what, std::move(diag));
      }
      continue;
    }

    // Accept.
    x = std::move(x_try);
    ctx.x = x;
    for (const auto& d : ckt.devices()) d->accept_step(ctx);
    t += step;
    ++res.stats.accepted_steps;
    record(t, x);

    if (hits_bp) {
      ++next_bp;
      force_be = params.be_after_breakpoint;
      if (params.adaptive) dt = params.dt;  // restart cautiously after edges
    } else {
      force_be = false;
    }
    // Geometric recovery toward the base step after halvings; with adaptive
    // stepping, easy regions (few Newton iterations) may grow past it.
    const double dt_cap =
        params.adaptive
            ? (params.dt_max > 0.0 ? params.dt_max : 8.0 * params.dt)
            : params.dt;
    if (params.adaptive && nr.iterations <= 3) {
      dt = std::min(dt_cap, dt * 1.5);
    } else if (dt < dt_cap) {
      dt = std::min(dt_cap, dt * 2.0);
    }
    if (!params.adaptive) dt = std::min(dt, params.dt);
  }

  res.final_x = std::move(x);
  count_transient(res.stats, /*failed=*/false);
  span.arg("accepted_steps", static_cast<double>(res.stats.accepted_steps));
  span.arg("newton_iters", static_cast<double>(res.stats.newton_iterations));
  ECMS_LOG(LogLevel::kDebug) << "transient: " << res.stats.accepted_steps
                             << " steps, " << res.stats.newton_iterations
                             << " newton iters";
  return res;
}

}  // namespace ecms::circuit
