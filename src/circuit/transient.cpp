#include "circuit/transient.hpp"

#include <algorithm>
#include <cmath>

#include "circuit/dc.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace ecms::circuit {

namespace {
constexpr double kTimeEps = 1e-18;
}

namespace {
// Counts one finished transient (successful or not) into the registry.
void count_transient(const TranStats& stats, bool failed) {
  if (!obs::metrics_enabled()) return;
  ECMS_METRIC_COUNT("circuit.transient.solves", 1);
  ECMS_METRIC_COUNT("circuit.transient.accepted_steps", stats.accepted_steps);
  ECMS_METRIC_COUNT("circuit.transient.rejected_steps", stats.rejected_steps);
  if (failed) ECMS_METRIC_COUNT("circuit.transient.failures", 1);
}

void capture_checkpoint(const Circuit& ckt, double t, double dt, bool force_be,
                        const std::vector<double>& x, SolverCheckpoint& out) {
  out.time = t;
  out.dt = dt;
  out.force_be = force_be;
  out.x = x;
  out.device_state.clear();
  for (const auto& d : ckt.devices()) d->save_state(out.device_state);
  out.device_count = ckt.devices().size();
}

// Shared integration core. A fresh run (`resume == nullptr`) initializes
// device history from the DC operating point (or UIC zeros); a resumed run
// restores the unknown vector, step-control state and per-device history
// from the checkpoint and continues as if never interrupted.
TranResult run_transient(Circuit& ckt, const TranParams& params,
                         const ProbeSet& probes,
                         const SolverCheckpoint* resume) {
  obs::ScopedSpan span(resume ? "transient_resume" : "transient");
  ECMS_REQUIRE(params.t_stop > 0.0, "transient needs t_stop > 0");
  ECMS_REQUIRE(params.dt > 0.0 && params.dt_min > 0.0,
               "transient needs positive steps");
  const double t_start = resume ? resume->time : 0.0;
  if (resume) {
    ECMS_REQUIRE(resume->valid(), "transient_resume needs a valid checkpoint");
    ECMS_REQUIRE(params.t_stop > t_start + kTimeEps,
                 "transient_resume t_stop must lie after the checkpoint");
  }
  ckt.finalize();

  // Resolve probes up front.
  std::vector<NodeId> probe_nodes;
  std::vector<std::string> channel_names;
  for (const auto& n : probes.nodes) {
    probe_nodes.push_back(ckt.find_node(n));
    channel_names.push_back(n);
  }
  std::vector<const Device*> probe_devs;
  for (const auto& dn : probes.device_currents) {
    const Device* d = ckt.find(dn);
    if (d == nullptr) throw NetlistError("no device named " + dn);
    probe_devs.push_back(d);
    channel_names.push_back("I(" + dn + ")");
  }

  TranResult res;
  res.trace = Trace(channel_names);

  std::vector<double> x;
  double dt = params.dt;
  bool force_be = params.be_after_breakpoint;  // first step from DC uses BE
  if (resume) {
    ECMS_REQUIRE(resume->x.size() == ckt.unknown_count(),
                 "checkpoint does not match this circuit (unknown count)");
    ECMS_REQUIRE(resume->device_count == ckt.devices().size(),
                 "checkpoint does not match this circuit (device count)");
    x = resume->x;
    std::size_t off = 0;
    const std::span<const double> blob(resume->device_state);
    for (const auto& d : ckt.devices()) {
      ECMS_REQUIRE(off <= blob.size(), "checkpoint device state truncated");
      off += d->restore_state(blob.subspan(off));
    }
    ECMS_REQUIRE(off == blob.size(), "checkpoint device state size mismatch");
    if (resume->dt > 0.0) dt = resume->dt;
    if (!params.adaptive) dt = std::min(dt, params.dt);
    force_be = resume->force_be;
    ECMS_METRIC_COUNT("circuit.transient.resumes", 1);
  } else {
    // Initial condition: DC operating point at t = 0, or all-zero under UIC.
    if (params.uic) {
      x.assign(ckt.unknown_count(), 0.0);
    } else {
      DcOptions dc_opts;
      dc_opts.newton = params.newton;
      dc_opts.time = 0.0;
      DcResult dc = dc_operating_point(ckt, dc_opts);
      x = std::move(dc.x);
    }
    StampContext ctx;
    ctx.x = x;
    ctx.time = 0.0;
    ctx.dt = 0.0;
    for (const auto& d : ckt.devices()) d->init_state(ctx);
  }

  auto record = [&](double t, std::span<const double> xs) {
    StampContext ctx;
    ctx.x = xs;
    ctx.time = t;
    std::vector<double> row;
    row.reserve(channel_names.size());
    for (NodeId n : probe_nodes) row.push_back(ctx.v(n));
    for (const Device* d : probe_devs) row.push_back(d->probe_current(ctx));
    res.trace.append(t, row);
  };
  record(t_start, x);

  std::vector<double> bps = ckt.breakpoints(params.t_stop);
  std::size_t next_bp = 0;
  bool start_on_bp = false;
  while (next_bp < bps.size() && bps[next_bp] <= t_start + kTimeEps) {
    if (bps[next_bp] >= t_start - kTimeEps) start_on_bp = true;
    ++next_bp;
  }
  if (resume && start_on_bp) {
    // The uninterrupted run applies breakpoint handling when it lands here —
    // a prefix stopping exactly on a corner never saw it (breakpoints at
    // t >= t_stop are filtered), and reprogrammed waves may have introduced
    // a new corner at the checkpoint time. Apply it now so the first resumed
    // step matches the uninterrupted one.
    force_be = params.be_after_breakpoint;
    if (params.adaptive) dt = params.dt;
  }

  // Arm the checkpoint capture: a mid-run capture time becomes a breakpoint
  // so an accepted step lands exactly on it.
  double ckpt_at = params.checkpoint_at;
  const bool want_ckpt = ckpt_at >= 0.0;
  bool captured = false;
  if (want_ckpt) {
    ckpt_at = std::min(ckpt_at, params.t_stop);
    ECMS_REQUIRE(ckpt_at > t_start - kTimeEps,
                 "checkpoint_at lies before the start of this run");
    if (ckpt_at <= t_start + kTimeEps) {
      capture_checkpoint(ckt, t_start, dt, force_be, x, res.checkpoint);
      captured = true;
    } else if (ckpt_at < params.t_stop - kTimeEps) {
      const auto it =
          std::lower_bound(bps.begin() + static_cast<std::ptrdiff_t>(next_bp),
                           bps.end(), ckpt_at);
      const bool present =
          (it != bps.end() && *it - ckpt_at <= kTimeEps) ||
          (it != bps.begin() + static_cast<std::ptrdiff_t>(next_bp) &&
           ckpt_at - *(it - 1) <= kTimeEps);
      if (!present) bps.insert(it, ckpt_at);
    }
  }

  double t = t_start;

  // One workspace for the whole run: buffers and (on the sparse backend)
  // the frozen pattern / stamp-slot caches persist across every step and
  // Newton iteration of this transient. Owned here, not shared — parallel
  // extraction runs one transient per worker, so workspaces stay
  // per-thread.
  NewtonWorkspace ws;
  // Trial iterate, hoisted out of the step loop: the copy below reuses its
  // capacity (the accept path swaps rather than moves), so steady-state
  // stepping does no per-step allocation.
  std::vector<double> x_try;

  while (t < params.t_stop - kTimeEps) {
    double step = std::min(dt, params.t_stop - t);
    // Land exactly on the next breakpoint.
    bool hits_bp = false;
    if (next_bp < bps.size() && t + step >= bps[next_bp] - kTimeEps) {
      step = bps[next_bp] - t;
      hits_bp = true;
      if (step <= kTimeEps) {  // already on the breakpoint
        ++next_bp;
        continue;
      }
    }

    StampContext ctx;
    ctx.time = t + step;
    ctx.dt = step;
    ctx.method =
        force_be ? Integrator::kBackwardEuler : params.method;
    ctx.gmin = params.newton.gmin_ground;

    x_try = x;
    const NewtonResult nr = newton_solve(ckt, ctx, x_try, params.newton, ws);
    res.stats.newton_iterations += static_cast<std::size_t>(nr.iterations);

    if (!nr.converged) {
      ++res.stats.rejected_steps;
      dt *= 0.5;
      if (dt < params.dt_min) {
        SolverDiagnostics diag;
        diag.time = t;
        diag.dt = step;
        diag.last_delta = nr.final_delta;
        diag.accepted_steps = res.stats.accepted_steps;
        diag.rejected_steps = res.stats.rejected_steps;
        diag.newton_iterations = res.stats.newton_iterations;
        const std::size_t nv = ckt.node_count() - 1;
        if (nr.worst_unknown < nv) {
          diag.worst_node =
              ckt.node_name(static_cast<NodeId>(nr.worst_unknown + 1));
        }
        std::string what = "transient step at t=" + std::to_string(t) +
                           " failed to converge above dt_min (last dt=" +
                           std::to_string(step) +
                           ", accepted=" + std::to_string(diag.accepted_steps) +
                           ", rejected=" + std::to_string(diag.rejected_steps) +
                           ", newton iters=" +
                           std::to_string(diag.newton_iterations);
        if (nr.singular) what += ", singular system";
        if (nr.stalled) what += ", stalled by fault injection";
        if (!diag.worst_node.empty()) {
          what += ", worst node '" + diag.worst_node +
                  "' last dv=" + std::to_string(diag.last_delta);
        }
        what += ")";
        count_transient(res.stats, /*failed=*/true);
        span.arg("failed_at_s", t);
        throw SolverError(what, std::move(diag));
      }
      continue;
    }

    // Accept. Swap keeps x_try's storage alive for the next step's copy.
    std::swap(x, x_try);
    ctx.x = x;
    for (const auto& d : ckt.devices()) d->accept_step(ctx);
    t += step;
    ++res.stats.accepted_steps;
    record(t, x);

    if (hits_bp) {
      ++next_bp;
      force_be = params.be_after_breakpoint;
      if (params.adaptive) dt = params.dt;  // restart cautiously after edges
    } else {
      force_be = false;
    }
    // Geometric recovery toward the base step after halvings; with adaptive
    // stepping, easy regions (few Newton iterations) may grow past it.
    const double dt_cap =
        params.adaptive
            ? (params.dt_max > 0.0 ? params.dt_max : 8.0 * params.dt)
            : params.dt;
    if (params.adaptive && nr.iterations <= 3) {
      dt = std::min(dt_cap, dt * 1.5);
    } else if (dt < dt_cap) {
      dt = std::min(dt_cap, dt * 2.0);
    }
    if (!params.adaptive) dt = std::min(dt, params.dt);

    // Capture after step control settles, so the checkpoint holds exactly
    // the state the next loop iteration of an uninterrupted run would see.
    if (want_ckpt && !captured && t >= ckpt_at - kTimeEps) {
      capture_checkpoint(ckt, t, dt, force_be, x, res.checkpoint);
      captured = true;
    }
  }

  if (want_ckpt && !captured) {
    capture_checkpoint(ckt, t, dt, force_be, x, res.checkpoint);
  }

  res.final_x = std::move(x);
  count_transient(res.stats, /*failed=*/false);
  span.arg("accepted_steps", static_cast<double>(res.stats.accepted_steps));
  span.arg("newton_iters", static_cast<double>(res.stats.newton_iterations));
  ECMS_LOG(LogLevel::kDebug) << "transient: " << res.stats.accepted_steps
                             << " steps, " << res.stats.newton_iterations
                             << " newton iters";
  return res;
}
}  // namespace

TranResult transient(Circuit& ckt, const TranParams& params,
                     const ProbeSet& probes) {
  return run_transient(ckt, params, probes, nullptr);
}

TranResult transient_resume(Circuit& ckt, const SolverCheckpoint& from,
                            const TranParams& params, const ProbeSet& probes) {
  return run_transient(ckt, params, probes, &from);
}

}  // namespace ecms::circuit
