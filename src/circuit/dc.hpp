// DC operating-point solver with gmin and source stepping fallbacks.
#pragma once

#include <vector>

#include "circuit/netlist.hpp"
#include "circuit/newton.hpp"

namespace ecms::circuit {

struct DcOptions {
  NewtonOptions newton;
  double time = 0.0;  ///< sources are evaluated at this time
  /// gmin stepping ladder: starts here and divides by 10 until newton.gmin_
  /// ground level is reached.
  double gmin_start = 1e-3;
  int source_steps = 10;  ///< source-stepping resolution for the last resort
};

/// Result: the full unknown vector (node voltages then branch currents).
struct DcResult {
  std::vector<double> x;
  int total_newton_iterations = 0;
  bool used_gmin_stepping = false;
  bool used_source_stepping = false;
};

/// Solves the operating point. Throws ecms::SolverError if every strategy
/// fails.
DcResult dc_operating_point(Circuit& ckt, const DcOptions& opts = {});

/// Convenience: node voltage from a DC result.
double dc_voltage(const Circuit& ckt, const DcResult& r,
                  const std::string& node_name);

}  // namespace ecms::circuit
