// Time-domain stimulus descriptions for independent sources.
//
// A SourceWave is a pure function of time plus the list of its corner times
// ("breakpoints") so the transient solver can land a timestep exactly on
// every edge. StepRamp models the paper's shift-register-driven programmable
// current source I_REFP: a staircase of `steps` equal increments.
#pragma once

#include <vector>

namespace ecms::circuit {

/// Piecewise-linear waveform point.
struct PwlPoint {
  double t;
  double v;
};

/// Time-domain source description. Value before the first point / after the
/// last point is clamped (SPICE PWL semantics).
class SourceWave {
 public:
  /// Constant value for all time.
  static SourceWave dc(double value);

  /// Piecewise-linear; points must be strictly increasing in t.
  static SourceWave pwl(std::vector<PwlPoint> points);

  /// Staircase ramp: 0 before `t_start`, then `steps` increments of
  /// `delta` every `step_duration`, holding the final value. Each riser has
  /// a finite `rise` time so the waveform is continuous.
  static SourceWave step_ramp(double t_start, double step_duration,
                              double delta, int steps, double rise);

  /// Single pulse: `low` outside [t_rise_start, t_fall_end], `high` inside,
  /// with linear edges of duration `edge`.
  static SourceWave pulse(double low, double high, double t_on, double t_off,
                          double edge);

  /// Instantaneous value at time t.
  double value(double t) const;

  /// Times at which the derivative is discontinuous (transient solver
  /// breakpoints), strictly increasing.
  const std::vector<double>& breakpoints() const { return breakpoints_; }

  /// The internal PWL representation (every wave kind lowers to one).
  /// A single point means a DC source.
  const std::vector<PwlPoint>& points() const { return points_; }

  /// For a step_ramp, the index of the step active at time t (0 before the
  /// first riser completes, `steps` at the top). For other kinds, 0.
  int ramp_step_at(double t) const;

 private:
  SourceWave() = default;
  std::vector<PwlPoint> points_;  // always represented as PWL internally
  std::vector<double> breakpoints_;
  // Ramp metadata (valid when is_ramp_)
  bool is_ramp_ = false;
  double ramp_t0_ = 0.0, ramp_dt_ = 0.0, ramp_rise_ = 0.0;
  int ramp_steps_ = 0;
};

}  // namespace ecms::circuit
