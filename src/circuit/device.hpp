// Device base class and MNA stamping primitives.
//
// The MNA unknown vector is x = [v(node 1..N-1), i(branch 0..B-1)]: node 0 is
// ground and is eliminated. Devices contribute a linearized companion model
// each Newton iteration: A x = b where A holds conductances/incidences and b
// holds equivalent source currents. Dynamic devices (capacitors, MOSFET
// intrinsic caps) carry per-step history which the solver latches through
// init_state()/accept_step().
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "circuit/matrix.hpp"

namespace ecms::circuit {

/// Node handle. 0 is always ground.
using NodeId = int;
inline constexpr NodeId kGround = 0;

/// Transient integration method.
enum class Integrator { kBackwardEuler, kTrapezoidal };

/// Everything a device needs to stamp itself at one Newton iteration.
struct StampContext {
  std::span<const double> x;  ///< current iterate (unknown vector)
  double time = 0.0;          ///< time at the end of the step being solved
  double dt = 0.0;            ///< step size; 0 means DC operating point
  Integrator method = Integrator::kTrapezoidal;
  double gmin = 1e-12;  ///< conductance to ground added across nonlinear
                        ///< junctions (raised during gmin stepping)
  double source_scale = 1.0;  ///< independent-source scaling (source stepping)

  bool is_dc() const { return dt == 0.0; }

  /// Voltage of a node in the current iterate (ground reads as 0).
  double v(NodeId n) const {
    return n == kGround ? 0.0 : x[static_cast<std::size_t>(n) - 1];
  }
};

/// Index of a node's unknown in the MNA system; must not be ground.
inline std::size_t unknown_of(NodeId n) {
  return static_cast<std::size_t>(n) - 1;
}

/// Destination for matrix stamps when the active backend is not the dense
/// Matrix. Implemented by the sparse engine (solver.hpp), which resolves
/// (row, col) coordinates to cached value slots on first assembly and
/// replays them as direct writes afterwards.
class StampSink {
 public:
  virtual ~StampSink() = default;
  /// Adds `v` at (row, col) of the MNA matrix.
  virtual void add(std::size_t row, std::size_t col, double v) = 0;
};

/// Inline replay cursor over a sparse engine's recorded stamp tape. On
/// replayed assemblies the (row, col) sequence each device emits is verified
/// against the recording — the netlist-reconfiguration guard — and values
/// accumulate into pre-resolved slots of the target array, all inlined into
/// the device stamp code with no virtual dispatch. Owned by
/// SparseEngine::assemble; devices never see the difference.
struct ReplayTape {
  const std::uint64_t* coords = nullptr;  ///< recorded (row << 32 | col)
  const std::uint32_t* slots = nullptr;   ///< coords resolved to value slots
  std::size_t size = 0;
  std::size_t cursor = 0;
  double* values = nullptr;  ///< accumulation target (matrix value array)
  bool diverged = false;
};

/// Backend-neutral handle to the MNA matrix passed to Device::stamp: the
/// dense Matrix (one predictable branch of overhead), a StampSink recording
/// a tape on the sparse backend's first assembly, or a ReplayTape on every
/// replayed sparse assembly — the per-iteration hot path. The right-hand
/// side stays a plain span in all cases.
class MnaView {
 public:
  explicit MnaView(Matrix& dense) : dense_(&dense) {}
  explicit MnaView(StampSink& sink) : sink_(&sink) {}
  explicit MnaView(ReplayTape& tape) : tape_(&tape) {}

  void add(std::size_t row, std::size_t col, double v) {
    if (tape_ != nullptr) {
      ReplayTape& t = *tape_;
      if (t.diverged) return;
      const std::uint64_t key =
          (static_cast<std::uint64_t>(row) << 32) | col;
      if (t.cursor >= t.size || t.coords[t.cursor] != key) {
        t.diverged = true;  // reconfigured netlist: caller rediscovers
        return;
      }
      t.values[t.slots[t.cursor]] += v;
      ++t.cursor;
      return;
    }
    if (dense_ != nullptr) {
      dense_->at(row, col) += v;
    } else {
      sink_->add(row, col, v);
    }
  }

  bool is_dense() const { return dense_ != nullptr; }

 private:
  Matrix* dense_ = nullptr;
  StampSink* sink_ = nullptr;
  ReplayTape* tape_ = nullptr;
};

/// Stamps conductance g between nodes a and b.
void stamp_conductance(MnaView& a_mat, NodeId a, NodeId b, double g);

/// Stamps an asymmetric transconductance: current into `out_p` / out of
/// `out_n` proportional to (v(in_p) - v(in_n)) * g.
void stamp_transconductance(MnaView& a_mat, NodeId out_p, NodeId out_n,
                            NodeId in_p, NodeId in_n, double g);

/// Stamps a constant current `i` flowing from node a to node b (leaving a,
/// entering b).
void stamp_current(std::span<double> b_vec, NodeId a, NodeId b, double i);

/// Shared companion model for a linear capacitor (used by the Capacitor
/// device and by MOSFET intrinsic capacitances). Charge-conserving under both
/// integrators.
class CapCompanion {
 public:
  CapCompanion() = default;
  explicit CapCompanion(double farads) : c_(farads) {}

  double capacitance() const { return c_; }
  void set_capacitance(double farads) { c_ = farads; }

  /// Stamps the companion between nodes a, b. No-op in DC (capacitor open).
  void stamp(const StampContext& ctx, NodeId a, NodeId b, MnaView& a_mat,
             std::span<double> b_vec) const;

  /// Latches v across (a - b) as history; zeroes the current history.
  void init_state(const StampContext& ctx, NodeId a, NodeId b);

  /// Latches history after an accepted transient step.
  void accept_step(const StampContext& ctx, NodeId a, NodeId b);

  double history_voltage() const { return v_prev_; }
  double history_current() const { return i_prev_; }

  /// Appends the integration history (v_prev, i_prev) for checkpointing.
  void save_state(std::vector<double>& out) const {
    out.push_back(v_prev_);
    out.push_back(i_prev_);
  }
  /// Restores history appended by save_state(); returns values consumed.
  std::size_t restore_state(std::span<const double> in) {
    v_prev_ = in[0];
    i_prev_ = in[1];
    return 2;
  }

 private:
  double geq(const StampContext& ctx) const;
  double c_ = 0.0;
  double v_prev_ = 0.0;
  double i_prev_ = 0.0;
};

/// Abstract circuit element.
class Device {
 public:
  explicit Device(std::string name) : name_(std::move(name)) {}
  virtual ~Device() = default;
  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  const std::string& name() const { return name_; }

  /// Adds this device's contribution for the given iterate. Implementations
  /// must emit an iterate-independent *sequence* of matrix coordinates
  /// (values may change freely): the sparse backend records the sequence
  /// once and replays it as direct slot writes on later assemblies.
  virtual void stamp(const StampContext& ctx, MnaView& a_mat,
                     std::span<double> b_vec) const = 0;

  /// The iterate-independent portion of a *nonlinear* device's stamp
  /// (companion capacitors, gmin ties): contributions that depend on dt,
  /// the integration method, and latched state, but never on ctx.x. The
  /// sparse backend stamps these once per solve point into the static
  /// image instead of on every Newton iteration; the dense backend calls
  /// it back-to-back with stamp(). Linear devices keep everything in
  /// stamp() and leave this empty. The coordinate-sequence rule above
  /// applies here too.
  virtual void stamp_static(const StampContext& /*ctx*/, MnaView& /*a_mat*/,
                            std::span<double> /*b_vec*/) const {}

  /// Number of extra branch-current unknowns this device introduces.
  virtual int branch_count() const { return 0; }

  /// Called by Circuit::finalize() with the first branch unknown index.
  virtual void set_branch_base(std::size_t /*base*/) {}

  /// True if the device's stamp depends on the iterate x.
  virtual bool nonlinear() const { return false; }

  /// Latches initial history from a consistent DC solution.
  virtual void init_state(const StampContext& /*ctx*/) {}

  /// Latches history after an accepted transient step.
  virtual void accept_step(const StampContext& /*ctx*/) {}

  /// Appends times where this device's stimulus has corners.
  virtual void collect_breakpoints(std::vector<double>& /*out*/) const {}

  /// Branch or terminal current for probing, where meaningful (positive from
  /// the first terminal into the device). Default: unknown → 0.
  virtual double probe_current(const StampContext& /*ctx*/) const { return 0.0; }

  /// Serializes the device's integration history (companion-model charge
  /// state) so a transient can be checkpointed and resumed bit-identically.
  /// save_state appends to `out`; restore_state consumes the same number of
  /// values from the front of `in` and returns how many it consumed.
  /// Stateless devices keep the no-op defaults.
  virtual void save_state(std::vector<double>& /*out*/) const {}
  virtual std::size_t restore_state(std::span<const double> /*in*/) {
    return 0;
  }

 private:
  std::string name_;
};

}  // namespace ecms::circuit
