#include "circuit/wave.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace ecms::circuit {

SourceWave SourceWave::dc(double value) {
  SourceWave w;
  w.points_ = {{0.0, value}};
  return w;
}

SourceWave SourceWave::pwl(std::vector<PwlPoint> points) {
  ECMS_REQUIRE(!points.empty(), "PWL needs at least one point");
  for (std::size_t i = 1; i < points.size(); ++i)
    ECMS_REQUIRE(points[i].t > points[i - 1].t,
                 "PWL times must be strictly increasing");
  SourceWave w;
  w.points_ = std::move(points);
  for (const auto& p : w.points_) w.breakpoints_.push_back(p.t);
  return w;
}

SourceWave SourceWave::step_ramp(double t_start, double step_duration,
                                 double delta, int steps, double rise) {
  ECMS_REQUIRE(steps > 0, "ramp needs at least one step");
  ECMS_REQUIRE(step_duration > 0 && rise > 0 && rise < step_duration,
               "ramp rise must be positive and shorter than a step");
  std::vector<PwlPoint> pts;
  pts.push_back({0.0, 0.0});
  if (t_start > 0.0) pts.push_back({t_start, 0.0});
  double level = 0.0;
  for (int k = 0; k < steps; ++k) {
    const double t_edge = t_start + static_cast<double>(k) * step_duration;
    level += delta;
    pts.push_back({t_edge + rise, level});
    pts.push_back({t_edge + step_duration, level});
  }
  // Deduplicate any coincident times produced when t_start == 0.
  std::vector<PwlPoint> clean;
  for (const auto& p : pts) {
    if (!clean.empty() && p.t <= clean.back().t) continue;
    clean.push_back(p);
  }
  SourceWave w = pwl(std::move(clean));
  w.is_ramp_ = true;
  w.ramp_t0_ = t_start;
  w.ramp_dt_ = step_duration;
  w.ramp_rise_ = rise;
  w.ramp_steps_ = steps;
  return w;
}

SourceWave SourceWave::pulse(double low, double high, double t_on, double t_off,
                             double edge) {
  ECMS_REQUIRE(edge > 0, "pulse edge must be positive");
  ECMS_REQUIRE(t_off > t_on + edge, "pulse must stay high for a while");
  std::vector<PwlPoint> pts;
  if (t_on > 0.0) pts.push_back({0.0, low});
  pts.push_back({t_on, low});
  pts.push_back({t_on + edge, high});
  pts.push_back({t_off, high});
  pts.push_back({t_off + edge, low});
  // Drop a leading duplicate if t_on == 0.
  std::vector<PwlPoint> clean;
  for (const auto& p : pts) {
    if (!clean.empty() && p.t <= clean.back().t) continue;
    clean.push_back(p);
  }
  return pwl(std::move(clean));
}

double SourceWave::value(double t) const {
  const auto& pts = points_;
  if (t <= pts.front().t) return pts.front().v;
  if (t >= pts.back().t) return pts.back().v;
  // Binary search for the segment containing t.
  const auto it = std::upper_bound(
      pts.begin(), pts.end(), t,
      [](double tv, const PwlPoint& p) { return tv < p.t; });
  const auto& hi = *it;
  const auto& lo = *(it - 1);
  const double f = (t - lo.t) / (hi.t - lo.t);
  return lo.v + f * (hi.v - lo.v);
}

int SourceWave::ramp_step_at(double t) const {
  if (!is_ramp_) return 0;
  if (t < ramp_t0_ + ramp_rise_) return 0;
  const int k =
      static_cast<int>(std::floor((t - ramp_t0_ - ramp_rise_) / ramp_dt_)) + 1;
  return std::clamp(k, 0, ramp_steps_);
}

}  // namespace ecms::circuit
