#include "circuit/dc.hpp"

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace ecms::circuit {

DcResult dc_operating_point(Circuit& ckt, const DcOptions& opts) {
  obs::ScopedSpan span("dc_operating_point");
  ECMS_METRIC_COUNT("circuit.dc.solves", 1);
  ckt.finalize();
  DcResult res;
  res.x.assign(ckt.unknown_count(), 0.0);

  StampContext ctx;
  ctx.time = opts.time;
  ctx.dt = 0.0;

  // One workspace for the whole ladder: every attempt (plain Newton, gmin
  // stepping, source stepping) solves the same circuit in DC mode, so the
  // assembled system, stamp-slot caches and factorization storage carry
  // over between rungs. On the sparse backend the topology-dependent half
  // of that state (pattern, tapes, pivot order) additionally comes from
  // the shared ProgramCache, so even the *first* rung of a repeated DC
  // solve skips the Markowitz analysis.
  NewtonWorkspace ws;
  auto attempt = [&](double gmin, double source_scale,
                     std::vector<double>& x) {
    StampContext c = ctx;
    c.gmin = gmin;
    c.source_scale = source_scale;
    const NewtonResult nr = newton_solve(ckt, c, x, opts.newton, ws);
    res.total_newton_iterations += nr.iterations;
    return nr.converged;
  };

  // Plain Newton first.
  {
    std::vector<double> x = res.x;
    if (attempt(opts.newton.gmin_ground, 1.0, x)) {
      res.x = std::move(x);
      return res;
    }
  }

  // gmin stepping: relax the circuit with large junction gmin, then tighten.
  {
    std::vector<double> x(ckt.unknown_count(), 0.0);
    bool ok = true;
    for (double g = opts.gmin_start; g >= opts.newton.gmin_ground / 10.0;
         g /= 10.0) {
      ECMS_METRIC_COUNT("circuit.dc.gmin_steps", 1);
      if (!attempt(g, 1.0, x)) {
        ok = false;
        break;
      }
    }
    if (ok && attempt(opts.newton.gmin_ground, 1.0, x)) {
      res.used_gmin_stepping = true;
      res.x = std::move(x);
      ECMS_LOG(LogLevel::kDebug) << "dc: converged via gmin stepping";
      return res;
    }
  }

  // Source stepping: ramp all independent sources from 0 to full value.
  {
    std::vector<double> x(ckt.unknown_count(), 0.0);
    bool ok = true;
    for (int s = 1; s <= opts.source_steps; ++s) {
      ECMS_METRIC_COUNT("circuit.dc.source_steps", 1);
      const double scale =
          static_cast<double>(s) / static_cast<double>(opts.source_steps);
      if (!attempt(opts.newton.gmin_ground, scale, x)) {
        ok = false;
        break;
      }
    }
    if (ok) {
      res.used_source_stepping = true;
      res.x = std::move(x);
      ECMS_LOG(LogLevel::kDebug) << "dc: converged via source stepping";
      return res;
    }
  }

  SolverDiagnostics diag;
  diag.newton_iterations = static_cast<std::size_t>(res.total_newton_iterations);
  throw SolverError(
      "DC operating point failed to converge (plain Newton, gmin stepping "
      "and source stepping all exhausted after " +
          std::to_string(res.total_newton_iterations) + " Newton iterations)",
      std::move(diag));
}

double dc_voltage(const Circuit& ckt, const DcResult& r,
                  const std::string& node_name) {
  const NodeId id = ckt.find_node(node_name);
  if (id == kGround) return 0.0;
  return r.x[unknown_of(id)];
}

}  // namespace ecms::circuit
