#include "circuit/sparse.hpp"

#include <algorithm>
#include <cmath>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "util/error.hpp"

namespace ecms::circuit {

void SparseMatrix::build_pattern(std::size_t n,
                                 std::span<const std::uint64_t> coords) {
  auto pat = std::make_shared<SparsePattern>();
  pat->n = n;
  std::vector<std::uint64_t> keys(coords.begin(), coords.end());
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());

  pat->row_ptr.assign(n + 1, 0);
  pat->cols.resize(keys.size());
  for (std::size_t s = 0; s < keys.size(); ++s) {
    const auto r = static_cast<std::size_t>(keys[s] >> 32);
    const auto c = static_cast<std::uint32_t>(keys[s] & 0xffffffffu);
    ECMS_REQUIRE(r < n && c < n, "sparse pattern coordinate out of range");
    ++pat->row_ptr[r + 1];
    pat->cols[s] = c;
  }
  for (std::size_t r = 0; r < n; ++r) pat->row_ptr[r + 1] += pat->row_ptr[r];
  adopt_pattern(std::move(pat));
}

void SparseMatrix::adopt_pattern(std::shared_ptr<const SparsePattern> pattern) {
  ECMS_REQUIRE(pattern != nullptr, "cannot adopt a null sparse pattern");
  pat_ = std::move(pattern);
  values_.assign(pat_->cols.size(), 0.0);
}

std::uint32_t SparseMatrix::slot(std::size_t r, std::size_t c) const {
  const auto* first = pat_->cols.data() + pat_->row_ptr[r];
  const auto* last = pat_->cols.data() + pat_->row_ptr[r + 1];
  const auto* it = std::lower_bound(first, last, static_cast<std::uint32_t>(c));
  if (it == last || *it != c) return kNoSlot;
  return static_cast<std::uint32_t>(it - pat_->cols.data());
}

void SparseMatrix::clear_values() {
  std::fill(values_.begin(), values_.end(), 0.0);
}

double SparseMatrix::at(std::size_t r, std::size_t c) const {
  const std::uint32_t s = slot(r, c);
  return s == kNoSlot ? 0.0 : values_[s];
}

void SparseMatrix::multiply(std::span<const double> x,
                            std::span<double> y) const {
  const std::size_t n = dim();
  ECMS_REQUIRE(x.size() == n && y.size() == n,
               "sparse multiply size mismatch");
  for (std::size_t r = 0; r < n; ++r) {
    double acc = 0.0;
    for (std::uint32_t s = pat_->row_ptr[r]; s < pat_->row_ptr[r + 1]; ++s)
      acc += values_[s] * x[pat_->cols[s]];
    y[r] = acc;
  }
}

namespace {

// Refactor-time pivot health check: looser than the factor-time Markowitz
// threshold (which already admits pivots rel_pivot_threshold below their
// row max), so healthy value drift between Newton iterations does not
// trigger spurious re-pivots, but a genuinely collapsed pivot does.
constexpr double kRepivotThreshold = 1e-10;

}  // namespace

void SparseLu::bind_arena(util::Arena* arena) {
  work_.bind(arena);
  solve_scratch_.bind(arena);
  reset();
}

void SparseLu::reset() {
  factored_ = false;
  sym_.reset();
  l_vals_.clear();
  u_vals_.clear();
  pivot_ratio_ = 0.0;
  n_ = 0;
}

void SparseLu::adopt_symbolic(std::shared_ptr<const LuSymbolic> symbolic) {
  ECMS_REQUIRE(symbolic != nullptr, "cannot adopt a null symbolic");
  sym_ = std::move(symbolic);
  n_ = sym_->n;
  factored_ = false;  // values undefined until the first refactor()
  l_vals_.assign(sym_->l_cols.size(), 0.0);
  u_vals_.assign(sym_->u_cols.size(), 0.0);
  work_.assign(n_, 0.0);
  pivot_ratio_ = 0.0;
}

void SparseLu::factor(const SparseMatrix& a) {
  // A throw below must leave the object unusable for refactor()/solve():
  // partial results never escape, matching the pre-split behavior where a
  // failed analysis poisoned the whole factorization.
  factored_ = false;
  sym_.reset();
  n_ = a.dim();
  const std::size_t n = n_;
  auto sym = std::make_shared<LuSymbolic>();
  sym->n = n;

  // Working form: one hash map per active row (col -> value) plus, per
  // column, the set of active rows containing it (for Markowitz counts and
  // for finding the rows to eliminate).
  std::vector<std::unordered_map<std::uint32_t, double>> rows(n);
  std::vector<std::unordered_set<std::uint32_t>> col_rows(n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::uint32_t s = a.row_begin(r); s < a.row_end(r); ++s) {
      const std::uint32_t c = a.col_of(s);
      rows[r].emplace(c, a.values()[s]);
      col_rows[c].insert(static_cast<std::uint32_t>(r));
    }
  }

  sym->perm_row.assign(n, 0);
  sym->perm_col.assign(n, 0);
  sym->pinv_row.assign(n, 0);
  sym->pinv_col.assign(n, 0);

  // Per-step outputs in original indices; compressed after the pivot order
  // is complete (a column's permuted index is unknown until it is chosen).
  std::vector<std::vector<std::pair<std::uint32_t, double>>> u_rows(n);
  std::vector<std::vector<std::pair<std::uint32_t, double>>> l_by_row(n);

  std::vector<std::uint32_t> active;  // original row ids still active
  active.reserve(n);
  for (std::size_t r = 0; r < n; ++r) active.push_back(static_cast<std::uint32_t>(r));

  for (std::size_t k = 0; k < n; ++k) {
    // Threshold-Markowitz pivot search. Scanning every active entry each
    // step is O(n * nnz); restricting candidates to the sparsest rows
    // (where the minimum Markowitz cost lives) keeps the search cheap
    // without giving up the fill bound. Ties break deterministically.
    std::size_t min_sz = std::numeric_limits<std::size_t>::max();
    for (const std::uint32_t r : active) min_sz = std::min(min_sz, rows[r].size());

    std::uint32_t best_r = 0, best_c = 0;
    double best_val = 0.0;
    std::uint64_t best_cost = std::numeric_limits<std::uint64_t>::max();
    bool found = false;
    auto scan = [&](std::size_t max_sz) {
      for (const std::uint32_t r : active) {
        const auto& row = rows[r];
        if (row.size() > max_sz) continue;
        double rmax = 0.0;
        for (const auto& cv : row) rmax = std::max(rmax, std::abs(cv.second));
        if (rmax == 0.0 || !std::isfinite(rmax)) continue;
        const std::uint64_t rc = row.size() - 1;
        for (const auto& [c, v] : row) {
          const double mag = std::abs(v);
          if (mag < rel_pivot_threshold * rmax || mag == 0.0) continue;
          const std::uint64_t cost = rc * (col_rows[c].size() - 1);
          const bool better =
              !found || cost < best_cost ||
              (cost == best_cost &&
               (mag > std::abs(best_val) ||
                (mag == std::abs(best_val) &&
                 (r < best_r || (r == best_r && c < best_c)))));
          if (better) {
            found = true;
            best_cost = cost;
            best_r = r;
            best_c = c;
            best_val = v;
          }
        }
      }
    };
    scan(min_sz + 2);
    if (!found) scan(std::numeric_limits<std::size_t>::max());
    if (!found) {
      throw SolverError("singular MNA matrix (sparse) at elimination step " +
                        std::to_string(k));
    }

    const std::uint32_t pr = best_r, pc = best_c;
    const double piv = best_val;
    sym->perm_row[k] = pr;
    sym->perm_col[k] = pc;
    sym->pinv_row[pr] = static_cast<std::uint32_t>(k);
    sym->pinv_col[pc] = static_cast<std::uint32_t>(k);

    // Snapshot the pivot row as U row k (original column ids for now) and
    // retire it from the active structure.
    auto& urow = u_rows[k];
    urow.assign(rows[pr].begin(), rows[pr].end());
    for (const auto& cv : urow) col_rows[cv.first].erase(pr);
    rows[pr].clear();

    // Eliminate the pivot column from every remaining row containing it.
    // Updates are structural — fill is inserted even when the multiplier or
    // the pivot-row value is numerically zero — so the frozen pattern is
    // closed under elimination for any later value set.
    for (const std::uint32_t i : col_rows[pc]) {
      auto& tgt = rows[i];
      const auto it = tgt.find(pc);
      const double f = it->second / piv;
      tgt.erase(it);
      l_by_row[i].push_back({static_cast<std::uint32_t>(k), f});
      for (const auto& [c, v] : urow) {
        if (c == pc) continue;
        auto [slot_it, inserted] = tgt.try_emplace(c, 0.0);
        if (inserted) col_rows[c].insert(i);
        slot_it->second -= f * v;
      }
    }
    col_rows[pc].clear();

    active.erase(std::remove(active.begin(), active.end(), pr), active.end());
  }

  // Compress into CSR over permuted indices.
  sym->l_ptr.assign(n + 1, 0);
  l_vals_.clear();
  sym->u_ptr.assign(n + 1, 0);
  u_vals_.clear();
  sym->a_ptr.assign(n + 1, 0);
  std::vector<std::pair<std::uint32_t, double>> tmp;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t orig = sym->perm_row[i];
    // L entries were appended in ascending elimination step, already sorted.
    for (const auto& [k, f] : l_by_row[orig]) {
      sym->l_cols.push_back(k);
      l_vals_.push_back(f);
    }
    sym->l_ptr[i + 1] = static_cast<std::uint32_t>(sym->l_cols.size());
    // U row i: map original columns to permuted ones and sort ascending;
    // every column was active at step i, so the pivot (== i) sorts first.
    tmp.clear();
    for (const auto& [c, v] : u_rows[i]) tmp.push_back({sym->pinv_col[c], v});
    std::sort(tmp.begin(), tmp.end(),
              [](const auto& x, const auto& y) { return x.first < y.first; });
    for (const auto& [c, v] : tmp) {
      sym->u_cols.push_back(c);
      u_vals_.push_back(v);
    }
    sym->u_ptr[i + 1] = static_cast<std::uint32_t>(sym->u_cols.size());
    // A scatter map for refactor: slots of original row `orig`.
    for (std::uint32_t s = a.row_begin(orig); s < a.row_end(orig); ++s) {
      sym->a_slot.push_back(s);
      sym->a_pcol.push_back(sym->pinv_col[a.col_of(s)]);
    }
    sym->a_ptr[i + 1] = static_cast<std::uint32_t>(sym->a_slot.size());
  }

  double min_piv = 0.0, max_piv = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double mag = std::abs(u_vals_[sym->u_ptr[i]]);
    if (i == 0) {
      min_piv = max_piv = mag;
    } else {
      min_piv = std::min(min_piv, mag);
      max_piv = std::max(max_piv, mag);
    }
  }
  pivot_ratio_ = max_piv > 0.0 ? min_piv / max_piv : 0.0;
  work_.assign(n, 0.0);
  sym_ = std::move(sym);
  factored_ = true;
}

bool SparseLu::refactor(const SparseMatrix& a) {
  ECMS_REQUIRE(sym_ != nullptr && a.dim() == n_,
               "refactor needs a factored/adopted symbolic of this pattern");
  const LuSymbolic& sy = *sym_;
  const std::size_t n = n_;
  std::span<const double> av = a.values();
  double min_piv = 0.0, max_piv = 0.0;

  for (std::size_t i = 0; i < n; ++i) {
    // Scatter row i of PAQ into the dense work vector, restricted to the
    // frozen L+U pattern of this row (fill positions start at zero).
    for (std::uint32_t s = sy.l_ptr[i]; s < sy.l_ptr[i + 1]; ++s)
      work_[sy.l_cols[s]] = 0.0;
    for (std::uint32_t s = sy.u_ptr[i]; s < sy.u_ptr[i + 1]; ++s)
      work_[sy.u_cols[s]] = 0.0;
    for (std::uint32_t s = sy.a_ptr[i]; s < sy.a_ptr[i + 1]; ++s)
      work_[sy.a_pcol[s]] += av[sy.a_slot[s]];

    // Eliminate with the already-refactored rows, in ascending column
    // order (l_cols is sorted, which the update order requires).
    for (std::uint32_t s = sy.l_ptr[i]; s < sy.l_ptr[i + 1]; ++s) {
      const std::uint32_t j = sy.l_cols[s];
      const double f = work_[j] / u_vals_[sy.u_ptr[j]];
      l_vals_[s] = f;
      for (std::uint32_t t = sy.u_ptr[j] + 1; t < sy.u_ptr[j + 1]; ++t)
        work_[sy.u_cols[t]] -= f * u_vals_[t];
    }

    // Gather U row i and check the pivot.
    double rmax = 0.0;
    for (std::uint32_t s = sy.u_ptr[i]; s < sy.u_ptr[i + 1]; ++s) {
      const double v = work_[sy.u_cols[s]];
      u_vals_[s] = v;
      rmax = std::max(rmax, std::abs(v));
    }
    const double piv = u_vals_[sy.u_ptr[i]];
    const double mag = std::abs(piv);
    if (!std::isfinite(piv) || mag == 0.0 || mag < kRepivotThreshold * rmax) {
      return false;  // degraded: caller must re-pivot via factor()
    }
    if (i == 0) {
      min_piv = max_piv = mag;
    } else {
      min_piv = std::min(min_piv, mag);
      max_piv = std::max(max_piv, mag);
    }
  }
  pivot_ratio_ = max_piv > 0.0 ? min_piv / max_piv : 0.0;
  factored_ = true;
  return true;
}

void SparseLu::solve_in_place(std::span<double> b) const {
  ECMS_REQUIRE(factored_, "solve before factor");
  const LuSymbolic& sy = *sym_;
  const std::size_t n = n_;
  ECMS_REQUIRE(b.size() == n, "rhs size mismatch");
  solve_scratch_.resize(n);
  std::span<double> pb(solve_scratch_.span());
  for (std::size_t i = 0; i < n; ++i) pb[i] = b[sy.perm_row[i]];
  // Forward substitution (unit lower-triangular L).
  for (std::size_t i = 0; i < n; ++i) {
    double acc = pb[i];
    for (std::uint32_t s = sy.l_ptr[i]; s < sy.l_ptr[i + 1]; ++s)
      acc -= l_vals_[s] * pb[sy.l_cols[s]];
    pb[i] = acc;
  }
  // Back substitution (U; diagonal first in each row).
  for (std::size_t ii = n; ii > 0; --ii) {
    const std::size_t i = ii - 1;
    double acc = pb[i];
    for (std::uint32_t s = sy.u_ptr[i] + 1; s < sy.u_ptr[i + 1]; ++s)
      acc -= u_vals_[s] * pb[sy.u_cols[s]];
    pb[i] = acc / u_vals_[sy.u_ptr[i]];
  }
  for (std::size_t j = 0; j < n; ++j) b[sy.perm_col[j]] = pb[j];
}

}  // namespace ecms::circuit
