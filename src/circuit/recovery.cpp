#include "circuit/recovery.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace ecms::circuit {

std::string recovery_rung_name(RecoveryRung r) {
  switch (r) {
    case RecoveryRung::kBaseline: return "baseline";
    case RecoveryRung::kShrinkStep: return "shrink-step";
    case RecoveryRung::kHardenNewton: return "harden-newton";
    case RecoveryRung::kGminStepping: return "gmin-stepping";
    case RecoveryRung::kBackwardEuler: return "backward-euler";
  }
  return "?";
}

TranParams apply_recovery_rung(const TranParams& base, RecoveryRung r) {
  const int rung = static_cast<int>(r);
  TranParams p = base;
  if (rung >= static_cast<int>(RecoveryRung::kShrinkStep)) {
    p.dt = base.dt / 4.0;
    p.dt_min = base.dt_min / 16.0;
  }
  if (rung >= static_cast<int>(RecoveryRung::kHardenNewton)) {
    p.newton.max_iterations = base.newton.max_iterations * 4;
    p.newton.max_delta_v = base.newton.max_delta_v / 4.0;
  }
  if (rung >= static_cast<int>(RecoveryRung::kGminStepping)) {
    p.newton.gmin_ground = base.newton.gmin_ground * 100.0;
  }
  if (rung >= static_cast<int>(RecoveryRung::kBackwardEuler)) {
    p.method = Integrator::kBackwardEuler;
    p.be_after_breakpoint = true;
  }
  return p;
}

TranResult transient_with_recovery(Circuit& ckt, const TranParams& params,
                                   const ProbeSet& probes,
                                   const RecoveryOptions& opts,
                                   RecoveryReport* report) {
  if (!opts.enabled) return transient(ckt, params, probes);

  const int top = std::clamp(opts.max_rung, 0, kLastRecoveryRung);
  SolverDiagnostics last_diag;
  std::string trail;
  for (int rung = 0; rung <= top; ++rung) {
    const auto r = static_cast<RecoveryRung>(rung);
    // Per-rung counters use dynamic names, so they bypass the static-handle
    // macros; this is the failure path (or one lookup per solve at rung 0),
    // never a hot loop.
    if (obs::metrics_enabled()) {
      obs::Registry::global()
          .counter("circuit.recovery.entered." + recovery_rung_name(r))
          .add(1);
    }
    obs::ScopedSpan span("recovery_rung");
    span.arg("rung", rung);
    try {
      TranResult out = transient(ckt, apply_recovery_rung(params, r), probes);
      if (report != nullptr) {
        report->succeeded_at = r;
        report->attempts = rung + 1;
      }
      if (obs::metrics_enabled()) {
        obs::Registry::global()
            .counter("circuit.recovery.won." + recovery_rung_name(r))
            .add(1);
        if (rung > 0) ECMS_METRIC_COUNT("circuit.recovery.recovered", 1);
      }
      if (rung > 0) {
        ECMS_LOG(LogLevel::kDebug)
            << "transient recovered at rung " << recovery_rung_name(r);
      }
      return out;
    } catch (const SolverError& e) {
      if (report != nullptr) {
        report->attempts = rung + 1;
        report->failures.push_back(recovery_rung_name(r) + ": " + e.what());
      }
      if (e.diagnostics().has_value()) last_diag = *e.diagnostics();
      if (!trail.empty()) trail += "; ";
      trail += recovery_rung_name(r);
    }
  }
  ECMS_METRIC_COUNT("circuit.recovery.exhausted", 1);
  throw SolverError("transient failed after exhausting the recovery ladder (" +
                        trail + ")",
                    std::move(last_diag));
}

}  // namespace ecms::circuit
