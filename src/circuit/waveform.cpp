#include "circuit/waveform.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace ecms::circuit {

Trace::Trace(std::vector<std::string> channel_names)
    : names_(std::move(channel_names)), data_(names_.size()) {}

const std::vector<double>& Trace::channel(std::size_t i) const {
  ECMS_REQUIRE(i < data_.size(), "channel index out of range");
  return data_[i];
}

std::size_t Trace::channel_index(const std::string& name) const {
  for (std::size_t i = 0; i < names_.size(); ++i)
    if (names_[i] == name) return i;
  throw MeasureError("no trace channel named " + name);
}

const std::vector<double>& Trace::channel(const std::string& name) const {
  return data_[channel_index(name)];
}

void Trace::append(double t, const std::vector<double>& values) {
  ECMS_REQUIRE(values.size() == names_.size(), "trace sample arity mismatch");
  ECMS_REQUIRE(times_.empty() || t >= times_.back(),
               "trace times must be non-decreasing");
  times_.push_back(t);
  for (std::size_t i = 0; i < values.size(); ++i) data_[i].push_back(values[i]);
}

double Trace::value_at(std::size_t chan, double t) const {
  const auto& ys = channel(chan);
  ECMS_REQUIRE(!ys.empty(), "empty trace");
  if (t <= times_.front()) return ys.front();
  if (t >= times_.back()) return ys.back();
  const auto it = std::upper_bound(times_.begin(), times_.end(), t);
  const auto hi = static_cast<std::size_t>(it - times_.begin());
  const std::size_t lo = hi - 1;
  const double span = times_[hi] - times_[lo];
  if (span <= 0.0) return ys[hi];
  const double f = (t - times_[lo]) / span;
  return ys[lo] + f * (ys[hi] - ys[lo]);
}

double Trace::value_at(const std::string& chan, double t) const {
  return value_at(channel_index(chan), t);
}

double Trace::final_value(std::size_t chan) const {
  const auto& ys = channel(chan);
  ECMS_REQUIRE(!ys.empty(), "empty trace");
  return ys.back();
}

double Trace::final_value(const std::string& chan) const {
  return final_value(channel_index(chan));
}

std::optional<double> first_crossing(const Trace& trace, std::size_t chan,
                                     double level, Edge edge, double t_from) {
  const auto& t = trace.times();
  const auto& y = trace.channel(chan);
  for (std::size_t i = 1; i < y.size(); ++i) {
    if (t[i] < t_from) continue;
    const double a = y[i - 1], b = y[i];
    const bool rising = a < level && b >= level;
    const bool falling = a > level && b <= level;
    const bool hit = (edge == Edge::kRising && rising) ||
                     (edge == Edge::kFalling && falling) ||
                     (edge == Edge::kEither && (rising || falling));
    if (!hit) continue;
    const double denom = b - a;
    const double f = denom == 0.0 ? 0.0 : (level - a) / denom;
    const double tc = t[i - 1] + f * (t[i] - t[i - 1]);
    if (tc >= t_from) return tc;
  }
  return std::nullopt;
}

std::optional<double> first_crossing(const Trace& trace,
                                     const std::string& chan, double level,
                                     Edge edge, double t_from) {
  return first_crossing(trace, trace.channel_index(chan), level, edge, t_from);
}

namespace {
template <typename Cmp>
double extremum(const Trace& trace, std::size_t chan, double t_from,
                double t_to, Cmp cmp) {
  const auto& t = trace.times();
  const auto& y = trace.channel(chan);
  ECMS_REQUIRE(!y.empty(), "empty trace");
  bool found = false;
  double best = 0.0;
  for (std::size_t i = 0; i < y.size(); ++i) {
    if (t[i] < t_from || t[i] > t_to) continue;
    if (!found || cmp(y[i], best)) {
      best = y[i];
      found = true;
    }
  }
  ECMS_REQUIRE(found, "no samples in the requested window");
  return best;
}
}  // namespace

double channel_min(const Trace& trace, std::size_t chan, double t_from,
                   double t_to) {
  return extremum(trace, chan, t_from, t_to, std::less<>());
}

double channel_max(const Trace& trace, std::size_t chan, double t_from,
                   double t_to) {
  return extremum(trace, chan, t_from, t_to, std::greater<>());
}

}  // namespace ecms::circuit
