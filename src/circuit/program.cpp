#include "circuit/program.hpp"

#include <algorithm>
#include <iterator>

#include "obs/metrics.hpp"

namespace ecms::circuit {

bool NetlistProgram::matches(std::size_t n_in, std::size_t nv_in,
                             std::span<const std::uint64_t> s_coords,
                             std::span<const std::uint64_t> d_coords) const {
  return n == n_in && nv == nv_in &&
         std::equal(static_coords.begin(), static_coords.end(),
                    s_coords.begin(), s_coords.end()) &&
         std::equal(dynamic_coords.begin(), dynamic_coords.end(),
                    d_coords.begin(), d_coords.end());
}

std::uint64_t program_key(std::size_t n, std::size_t nv,
                          std::span<const std::uint64_t> s_coords,
                          std::span<const std::uint64_t> d_coords) {
  std::uint64_t h = 14695981039346656037ull;  // FNV-1a offset basis
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xffu;
      h *= 1099511628211ull;  // FNV prime
    }
  };
  mix(n);
  mix(nv);
  // Stream lengths separate the tapes, so moving a coordinate between the
  // static and dynamic streams changes the key even though the multiset of
  // coordinates is identical.
  mix(s_coords.size());
  mix(d_coords.size());
  for (const std::uint64_t c : s_coords) mix(c);
  for (const std::uint64_t c : d_coords) mix(c);
  return h;
}

ProgramCache& ProgramCache::global() {
  static ProgramCache cache;
  return cache;
}

void ProgramCache::evict_to_fit(Map& m, std::size_t headroom) {
  const std::size_t cap = capacity_.load(std::memory_order_relaxed);
  const std::size_t limit = headroom >= cap ? 0 : cap - headroom;
  std::size_t evicted = 0;
  while (m.size() > limit) {
    auto victim = m.begin();
    for (auto it = std::next(m.begin()); it != m.end(); ++it) {
      if (it->second.last_used->load(std::memory_order_relaxed) <
          victim->second.last_used->load(std::memory_order_relaxed)) {
        victim = it;
      }
    }
    m.erase(victim);
    ++evicted;
  }
  if (evicted > 0) {
    evictions_.fetch_add(evicted, std::memory_order_relaxed);
    ECMS_METRIC_COUNT("circuit.program.evictions", evicted);
  }
}

std::shared_ptr<const NetlistProgram> ProgramCache::insert(
    std::uint64_t key, std::shared_ptr<const NetlistProgram> program) {
  const std::lock_guard<std::mutex> lock(insert_mutex_);
  const auto snap = map_.load(std::memory_order_acquire);
  if (const auto it = snap->find(key); it != snap->end()) {
    return it->second.program;  // lost the build race: first insert wins
  }
  auto next = std::make_shared<Map>(*snap);
  evict_to_fit(*next, 1);
  auto& slot = (*next)[key];
  slot.program = std::move(program);
  slot.last_used = std::make_shared<std::atomic<std::uint64_t>>(
      tick_.fetch_add(1, std::memory_order_relaxed) + 1);
  auto kept = slot.program;
  map_.store(std::shared_ptr<const Map>(std::move(next)),
             std::memory_order_release);
  inserts_.fetch_add(1, std::memory_order_relaxed);
  return kept;
}

void ProgramCache::set_capacity(std::size_t capacity) {
  const std::lock_guard<std::mutex> lock(insert_mutex_);
  capacity_.store(capacity == 0 ? 1 : capacity, std::memory_order_relaxed);
  const auto snap = map_.load(std::memory_order_acquire);
  if (snap->size() <= capacity_.load(std::memory_order_relaxed)) return;
  auto next = std::make_shared<Map>(*snap);
  evict_to_fit(*next, 0);
  map_.store(std::shared_ptr<const Map>(std::move(next)),
             std::memory_order_release);
}

std::vector<std::pair<std::uint64_t, std::shared_ptr<const NetlistProgram>>>
ProgramCache::entries() const {
  const auto snap = map_.load(std::memory_order_acquire);
  std::vector<std::pair<std::uint64_t, std::shared_ptr<const NetlistProgram>>>
      out;
  out.reserve(snap->size());
  for (const auto& [key, entry] : *snap) out.emplace_back(key, entry.program);
  return out;
}

void ProgramCache::clear() {
  const std::lock_guard<std::mutex> lock(insert_mutex_);
  map_.store(std::make_shared<const Map>(), std::memory_order_release);
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  inserts_.store(0, std::memory_order_relaxed);
  evictions_.store(0, std::memory_order_relaxed);
}

}  // namespace ecms::circuit
