#include "circuit/program.hpp"

#include <algorithm>

namespace ecms::circuit {

bool NetlistProgram::matches(std::size_t n_in, std::size_t nv_in,
                             std::span<const std::uint64_t> s_coords,
                             std::span<const std::uint64_t> d_coords) const {
  return n == n_in && nv == nv_in &&
         std::equal(static_coords.begin(), static_coords.end(),
                    s_coords.begin(), s_coords.end()) &&
         std::equal(dynamic_coords.begin(), dynamic_coords.end(),
                    d_coords.begin(), d_coords.end());
}

std::uint64_t program_key(std::size_t n, std::size_t nv,
                          std::span<const std::uint64_t> s_coords,
                          std::span<const std::uint64_t> d_coords) {
  std::uint64_t h = 14695981039346656037ull;  // FNV-1a offset basis
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xffu;
      h *= 1099511628211ull;  // FNV prime
    }
  };
  mix(n);
  mix(nv);
  // Stream lengths separate the tapes, so moving a coordinate between the
  // static and dynamic streams changes the key even though the multiset of
  // coordinates is identical.
  mix(s_coords.size());
  mix(d_coords.size());
  for (const std::uint64_t c : s_coords) mix(c);
  for (const std::uint64_t c : d_coords) mix(c);
  return h;
}

ProgramCache& ProgramCache::global() {
  static ProgramCache cache;
  return cache;
}

std::shared_ptr<const NetlistProgram> ProgramCache::insert(
    std::uint64_t key, std::shared_ptr<const NetlistProgram> program) {
  const std::lock_guard<std::mutex> lock(insert_mutex_);
  const auto snap = map_.load(std::memory_order_acquire);
  if (const auto it = snap->find(key); it != snap->end()) {
    return it->second;  // lost the build race: first insert wins
  }
  auto next = std::make_shared<Map>(*snap);
  auto& slot = (*next)[key];
  slot = std::move(program);
  map_.store(std::shared_ptr<const Map>(std::move(next)),
             std::memory_order_release);
  inserts_.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

std::vector<std::pair<std::uint64_t, std::shared_ptr<const NetlistProgram>>>
ProgramCache::entries() const {
  const auto snap = map_.load(std::memory_order_acquire);
  return {snap->begin(), snap->end()};
}

void ProgramCache::clear() {
  const std::lock_guard<std::mutex> lock(insert_mutex_);
  map_.store(std::make_shared<const Map>(), std::memory_order_release);
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  inserts_.store(0, std::memory_order_relaxed);
}

}  // namespace ecms::circuit
