// BatchEngine: lockstep Newton/transient driver for K cells sharing one
// NetlistProgram (DESIGN.md §14).
//
// Every cell of an array tile is the same netlist with different element
// values, so after the first cell publishes its compiled program (pattern,
// stamp tapes, pivot order) all K cells can be advanced through the same
// time grid together: per-lane node voltages and per-lane CSR value arrays
// in structure-of-arrays form, one shared stamp-slot tape, and the numeric
// refactorization / triangular solves vectorized across lanes
// (circuit/kernels.hpp). Device evaluation and stamping stay scalar per
// lane through each lane's own SparseEngine — exactly the scalar assembly
// path, so tape divergence detection, static-image reuse and program-cache
// accounting are inherited rather than re-implemented.
//
// Identity: with a fixed base step (no adaptive growth) and no rejected
// steps, run_transient's schedule is value-independent — time points are a
// pure function of (dt, breakpoints) — so lanes genuinely share one (t,
// step, force_be) sequence. Per-lane Newton damping and convergence
// decisions are scalar replicas of newton_solve_impl over the SoA results.
// Anything that would make a lane's scalar trajectory diverge from the
// lockstep grid (a rejected step, pivot degradation, a non-finite update,
// tape divergence, a private pivot order that later disagrees) retires the
// lane: the caller re-measures it on the scalar path from scratch, which by
// construction reproduces what an all-scalar run would have produced. Lanes
// that complete here are bit-identical to the scalar sparse path.
//
// Counters: circuit.batch.{lanes,retired,divergences,scalar_fallbacks} plus
// per-lane equivalents of the scalar solver counters (newton/lu/assemble/
// transient), flushed only for lanes that complete — a retired lane's
// partial work is dropped so its scalar re-measurement counts once.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "circuit/kernels.hpp"
#include "circuit/netlist.hpp"
#include "circuit/newton.hpp"
#include "circuit/transient.hpp"
#include "util/arena.hpp"

namespace ecms::circuit {

class BatchEngine {
 public:
  struct Options {
    double dt = 20e-12;                  ///< fixed base step (never halved)
    Integrator method = Integrator::kTrapezoidal;
    NewtonOptions newton;                ///< solver.program_cache required
    bool be_after_breakpoint = true;
  };

  enum class LaneState {
    kActive,    ///< stepping in lockstep
    kFinished,  ///< trajectory decided by the caller; state frozen
    kRetired,   ///< left the batch; re-measure on the scalar path
  };

  struct LaneStats {
    std::size_t accepted_steps = 0;
    std::size_t newton_iterations = 0;
    std::size_t segments = 0;  ///< advance() calls this lane stepped in
  };

  /// Binds K lanes starting from the UIC initial condition (x = 0 at t = 0,
  /// device history initialized), the start every measurement flow uses.
  /// All lanes must have identical unknown/node counts; a mismatched lane
  /// is retired immediately. Requires a program cache in
  /// opts.newton.solver (the shared-compilation precondition) and no solve
  /// hooks (fault injection runs scalar).
  BatchEngine(std::span<Circuit* const> lanes, const Options& opts);
  ~BatchEngine();
  BatchEngine(const BatchEngine&) = delete;
  BatchEngine& operator=(const BatchEngine&) = delete;

  std::size_t width() const { return lanes_.size(); }
  LaneState state(std::size_t lane) const { return lanes_[lane].state; }
  /// Why a retired lane left the batch (empty for other states).
  const std::string& retire_reason(std::size_t lane) const {
    return lanes_[lane].reason;
  }
  const LaneStats& stats(std::size_t lane) const {
    return lanes_[lane].stats;
  }
  std::span<const double> x(std::size_t lane) const {
    return lanes_[lane].x;
  }
  /// Shared lockstep time (active lanes sit exactly here).
  double time() const { return t_; }
  std::size_t active_lanes() const;

  /// Marks a lane's trajectory decided: it stops stepping (and its pending
  /// solver counters are flushed), but keeps its accepted state.
  void finish(std::size_t lane);

  /// Retires a lane from the batch: its pending counters are dropped and
  /// the caller must re-measure the cell on the scalar path. The engine
  /// calls this itself on any lockstep deviation; callers use it when a
  /// higher-level policy (e.g. an adaptive-scheduler fallback) would send
  /// the scalar path down a different flow. `divergence` marks numerical
  /// causes (counted as circuit.batch.divergences).
  void retire(std::size_t lane, std::string reason, bool divergence = false);

  /// Advances every active lane in lockstep to t_stop, replicating
  /// run_transient's stepping (breakpoint landing, post-breakpoint backward
  /// Euler, fixed base step). `on_sample(lane, t, x)` fires per active lane
  /// once at entry — the boundary sample a resumed scalar segment records —
  /// and once per accepted step. Lanes that cannot keep lockstep are
  /// retired, never stalled.
  void advance(double t_stop,
               const std::function<void(std::size_t, double,
                                        std::span<const double>)>& on_sample);

 private:
  struct Lane {
    Circuit* ckt = nullptr;
    std::unique_ptr<SparseEngine> eng;
    std::vector<double> x, x_try, x_new;
    LaneState state = LaneState::kActive;
    std::string reason;
    LaneStats stats;
    // Point-solve scratch.
    bool unfinished = false;  ///< still iterating this point
    int point_iters = 0;
    // Pending per-lane obs counters, flushed on completion only.
    std::size_t points = 0;
    std::size_t iters = 0;
    std::size_t vector_refactors = 0;
    // Last point epoch whose static image was gathered into a_soa_; the
    // per-iteration gather then touches dynamic slots only.
    std::uint64_t soa_epoch = 0;
  };

  void flush_counters(Lane& lane);
  /// One lockstep Newton point over all unfinished lanes; retires lanes
  /// that fail. Returns false when no lane is left active.
  bool solve_point(const StampContext& ctx_proto);

  Options opts_;
  std::size_t n_ = 0;   ///< unknowns per lane
  std::size_t nv_ = 0;  ///< voltage unknowns per lane
  std::vector<Lane> lanes_;
  util::Arena arena_;
  std::shared_ptr<const LuSymbolic> shared_sym_;
  std::shared_ptr<const SparsePattern> shared_pat_;
  // Deduplicated value slots the dynamic tape touches (empty = gather the
  // full image every iteration) and the current point epoch.
  std::vector<std::uint32_t> shared_dyn_slots_;
  std::uint64_t point_epoch_ = 0;
  // SoA kernel operands, [slot * width + lane].
  util::ArenaBuf<double> a_soa_, l_soa_, u_soa_, work_soa_, pb_soa_;
  double t_ = 0.0;
  bool force_be_ = true;
  bool first_advance_ = true;
};

}  // namespace ecms::circuit
