// Linear-solver backend selection and per-solve workspaces.
//
// newton_solve reduces every (time) point to repeated solves of the stamped
// MNA system. Two backends implement that step:
//
//   dense  — matrix.hpp's Matrix + LuFactorization, byte-for-byte the seed
//            arithmetic. Best below the crossover (small cells).
//   sparse — sparse.hpp's CSR matrix + Markowitz LU with symbolic reuse,
//            fed by a stamp-slot cache and a static/dynamic assembly split
//            (SparseEngine below). Wins from array-scale netlists up.
//
// A NewtonWorkspace owns whichever backend is active plus the iteration
// buffers, and lives for one transient()/dc_operating_point() call: one
// workspace per solve means one per thread under parallel extraction. The
// topology-dependent halves of the sparse caches are shared across
// workspaces through a ProgramCache (program.hpp): the per-engine state
// shrinks to values and cursors, and per-solve scratch is carved from the
// workspace's bump arena instead of the heap.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "circuit/matrix.hpp"
#include "circuit/netlist.hpp"
#include "circuit/program.hpp"
#include "circuit/sparse.hpp"
#include "util/arena.hpp"

namespace ecms::circuit {

enum class SolverKind { kDense, kSparse, kAuto };

const char* solver_kind_name(SolverKind k);

/// Parses "dense" | "sparse" | "auto"; returns false on anything else.
bool parse_solver_kind(std::string_view s, SolverKind& out);

struct SolverConfig {
  SolverKind kind = SolverKind::kAuto;
  /// kAuto switches to the sparse backend at or above this many unknowns.
  /// EXT-A9 (bench_array_scale) shows the stamp-slot tapes and the
  /// static/dynamic split win from ~28 unknowns up, but the crossover is
  /// deliberately higher: the sparse pivot order is frozen from the values
  /// the engine factors first, so a transient split at a checkpoint can
  /// differ from the uninterrupted run in the last ulp — and the
  /// checkpoint / adaptive-ramp flows, whose tile circuits all sit below
  /// 64 unknowns, contractually require bit-exact resume. Dense re-pivots
  /// every iteration and is immune. Above macro-cell scale nothing relies
  /// on bit-exact splits and the sparse backend wins outright. (Program
  /// sharing narrows the checkpoint hazard — a resumed run adopts the same
  /// pivot order the uninterrupted run used — but the dense guarantee is
  /// unconditional, so the crossover stays.)
  std::size_t sparse_crossover = 64;
  /// Shared topology-program registry for the sparse backend; the default
  /// is the process-wide cache, so repeated and parallel solves of the
  /// same netlist shape reuse one symbolic factorization. Set to nullptr
  /// to force every engine to compile privately (A/B accounting, tests).
  ProgramCache* program_cache = &ProgramCache::global();
};

/// The backend kAuto resolves to for an n-unknown system (never kAuto).
SolverKind resolve_solver_kind(const SolverConfig& cfg, std::size_t n);

/// Sparse assembly + factorization engine for one circuit and one solve
/// mode. Holds three caches, all established on the first assembly:
///
///   * the frozen CSR pattern of the MNA matrix,
///   * stamp-slot tapes: the (row, col) sequence every device emits,
///     resolved to value-slot indices, so replayed assemblies are direct
///     array writes with no coordinate search, and
///   * a static image: linear devices (nonlinear() == false) and the
///     stamp_static() portion of nonlinear ones (companion caps, gmin
///     ties) cannot change between Newton iterations of one point, so
///     those stamps are frozen once per point and memcpy-restored each
///     iteration; only the iterate-dependent stamp() bodies re-run.
///
/// With a ProgramCache attached, the first assembly hashes the recorded
/// coordinate streams and either adopts a published NetlistProgram
/// (pattern + slots + LU symbolic, skipping the Markowitz analysis
/// entirely) or compiles privately and publishes after the first clean
/// full factorization. Reported as circuit.program.{hits,misses,builds}.
///
/// If a device ever emits a different stamp sequence (e.g. the netlist was
/// reconfigured between solves), the replay detects the divergence via the
/// recorded coordinates and rebuilds every cache from scratch — the same
/// guard that neutralizes a (verified-against anyway) hash collision. Not
/// thread-safe: workspaces are per-solve and therefore per-thread; the
/// shared program is only ever read.
class SparseEngine final : public StampSink {
 public:
  explicit SparseEngine(std::size_t unknowns, ProgramCache* cache = nullptr,
                        util::Arena* arena = nullptr)
      : n_(unknowns), cache_(cache) {
    b_static_.bind(arena);
    b_work_.bind(arena);
    static_values_.bind(arena);
    lu_.bind_arena(arena);
  }

  /// Marks the start of a new solve point (new time / step / gmin / source
  /// scale): the static image is rebuilt on the next assemble().
  void begin_point() { static_dirty_ = true; }

  /// Assembles A and b for the given iterate (discovery or tape replay).
  void assemble(const Circuit& ckt, const StampContext& ctx,
                double gmin_ground);

  /// Factors the assembled matrix: numeric refactorization on the frozen
  /// pattern, with a full Markowitz (re-)factorization on first use (when
  /// no program was adopted) and on pivot degradation. Throws
  /// ecms::SolverError when singular.
  void factor();

  /// Solves into x (overwritten with A^{-1} b; x.size() must equal the
  /// unknown count).
  void solve(std::span<double> x);

  /// Zeroes row r of the assembled matrix (fault-injection hook support);
  /// forces a full factorization so the singular system is detected
  /// deterministically, as on the dense path. The result of that forced
  /// factorization is never published to the program cache.
  void zero_row(std::size_t r);

  std::span<const double> rhs() const { return b_work_.span(); }
  const SparseMatrix& matrix() const { return mat_; }
  double pivot_ratio() const { return lu_.pivot_ratio(); }
  /// The pivot order this engine actually factors with (adopted or locally
  /// computed; null before the first assemble/factor). The batch engine
  /// compares this against its shared symbolic to decide whether a lane may
  /// ride the vector kernels or must solve through this engine directly.
  const std::shared_ptr<const LuSymbolic>& lu_symbolic() const {
    return lu_.symbolic();
  }

  /// The shared program this engine adopted or published (null when the
  /// cache is disabled or nothing has been compiled yet).
  const std::shared_ptr<const NetlistProgram>& program() const {
    return program_;
  }

  // Cumulative counters, reported per solve as circuit.lu.{symbolic,
  // numeric} and circuit.assemble.{static_hits,restamps}.
  std::uint64_t symbolic_factorizations() const { return symbolic_; }
  std::uint64_t numeric_factorizations() const { return numeric_; }
  std::uint64_t static_hits() const { return static_hits_; }
  std::uint64_t static_restamps() const { return static_restamps_; }

  // StampSink: records a coordinate during discovery, or replays one
  // cached slot write.
  void add(std::size_t row, std::size_t col, double v) override;

 private:
  // Replayed assemblies bypass the virtual sink entirely (ReplayTape in
  // device.hpp); the phase machinery below only guards the record pass.
  enum class Phase { kIdle, kRecord };

  struct Tape {
    std::vector<std::uint64_t> coords;  // packed (row, col), in stamp order
    std::vector<std::uint32_t> slots;   // resolved value slots, same order
    std::vector<double> rec_vals;       // values seen during discovery
  };

  void discover(const Circuit& ckt, const StampContext& ctx,
                double gmin_ground);
  void resolve_slots(Tape& tape);
  /// Publishes the locally compiled program after the first clean full
  /// factorization (no-op on the adopted path or with the cache disabled).
  void maybe_publish();

  std::size_t n_ = 0;
  std::size_t nv_ = 0;  // voltage unknowns (gmin ground diagonal span)
  bool pattern_built_ = false;
  bool static_dirty_ = true;
  bool diverged_ = false;
  bool force_full_factor_ = false;
  Phase phase_ = Phase::kIdle;
  Tape static_tape_, dynamic_tape_;
  Tape* active_tape_ = nullptr;
  std::vector<std::uint32_t> diag_slots_;
  SparseMatrix mat_;
  util::ArenaBuf<double> static_values_;  // frozen matrix image (nnz values)
  util::ArenaBuf<double> b_static_;       // frozen static rhs
  util::ArenaBuf<double> b_work_;         // working rhs
  SparseLu lu_;
  ProgramCache* cache_ = nullptr;
  std::shared_ptr<const NetlistProgram> program_;
  std::uint64_t program_key_ = 0;
  bool publish_pending_ = false;
  std::uint64_t symbolic_ = 0, numeric_ = 0;
  std::uint64_t static_hits_ = 0, static_restamps_ = 0;
};

/// Per-solve scratch owned by the caller of newton_solve: the assembled
/// system, the factorization and the iteration buffers are allocated once
/// per transient/DC solve instead of once per Newton iteration, and the
/// flat double buffers are carved from a bump arena that prepare() recycles
/// on every rebind (util.arena.{bytes,resets}). The members are working
/// storage for the solver implementation (and tests); treat them as opaque
/// elsewhere. Single-threaded by design — parallel extraction gives each
/// worker its own workspace.
class NewtonWorkspace {
 public:
  NewtonWorkspace() = default;

  /// Binds to a circuit + backend choice; re-binding to a different unknown
  /// count, resolved backend, or program cache resets the cached state and
  /// recycles the arena. newton_solve calls this itself — explicit calls
  /// are allowed but not required.
  void prepare(const Circuit& ckt, const SolverConfig& cfg);

  /// Resolved backend of the last prepare() (never kAuto).
  SolverKind active() const { return active_; }
  SparseEngine* sparse() { return sparse_.get(); }
  util::Arena& arena() { return arena_; }

  // Dense-backend state and shared iteration buffers.
  Matrix a_dense;
  LuFactorization lu_dense;
  util::ArenaBuf<double> b;
  util::ArenaBuf<double> x_new;
  std::vector<double> scratch;

 private:
  util::Arena arena_;
  SolverKind active_ = SolverKind::kDense;
  std::size_t bound_n_ = std::numeric_limits<std::size_t>::max();
  ProgramCache* bound_cache_ = nullptr;
  bool bound_ = false;
  std::unique_ptr<SparseEngine> sparse_;
};

}  // namespace ecms::circuit
