#include "circuit/matrix.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace ecms::circuit {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

void Matrix::clear() { std::fill(data_.begin(), data_.end(), 0.0); }

void Matrix::resize(std::size_t rows, std::size_t cols) {
  rows_ = rows;
  cols_ = cols;
  data_.assign(rows * cols, 0.0);
}

void Matrix::multiply(std::span<const double> x, std::span<double> y) const {
  ECMS_REQUIRE(x.size() == cols_ && y.size() == rows_,
               "matrix multiply size mismatch");
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    const double* row = data_.data() + r * cols_;
    for (std::size_t c = 0; c < cols_; ++c) acc += row[c] * x[c];
    y[r] = acc;
  }
}

LuFactorization::LuFactorization(const Matrix& a) { refactor(a); }

void LuFactorization::refactor(const Matrix& a) {
  ECMS_REQUIRE(a.rows() == a.cols(), "LU requires a square matrix");
  lu_ = a;  // vector copy-assignment reuses the existing allocation
  const std::size_t n = lu_.rows();
  perm_.resize(n);
  for (std::size_t i = 0; i < n; ++i) perm_[i] = i;

  double min_piv = 0.0, max_piv = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivot: largest magnitude in column k at/below the diagonal.
    std::size_t piv = k;
    double piv_mag = std::abs(lu_.at(k, k));
    for (std::size_t r = k + 1; r < n; ++r) {
      const double mag = std::abs(lu_.at(r, k));
      if (mag > piv_mag) {
        piv_mag = mag;
        piv = r;
      }
    }
    if (piv_mag == 0.0 || !std::isfinite(piv_mag)) {
      throw SolverError("singular MNA matrix at pivot " + std::to_string(k));
    }
    if (piv != k) {
      for (std::size_t c = 0; c < n; ++c)
        std::swap(lu_.at(k, c), lu_.at(piv, c));
      std::swap(perm_[k], perm_[piv]);
    }
    if (k == 0) {
      min_piv = max_piv = piv_mag;
    } else {
      min_piv = std::min(min_piv, piv_mag);
      max_piv = std::max(max_piv, piv_mag);
    }
    const double inv_piv = 1.0 / lu_.at(k, k);
    for (std::size_t r = k + 1; r < n; ++r) {
      const double factor = lu_.at(r, k) * inv_piv;
      if (factor == 0.0) continue;
      lu_.at(r, k) = factor;
      for (std::size_t c = k + 1; c < n; ++c)
        lu_.at(r, c) -= factor * lu_.at(k, c);
    }
  }
  pivot_ratio_ = max_piv > 0.0 ? min_piv / max_piv : 0.0;
}

void LuFactorization::solve_in_place(std::span<double> b) const {
  std::vector<double> scratch;
  solve_in_place(b, scratch);
}

void LuFactorization::solve_in_place(std::span<double> b,
                                     std::vector<double>& scratch) const {
  const std::size_t n = lu_.rows();
  ECMS_REQUIRE(b.size() == n, "rhs size mismatch");
  // Apply permutation.
  scratch.resize(n);
  std::span<double> pb(scratch);
  for (std::size_t i = 0; i < n; ++i) pb[i] = b[perm_[i]];
  // Forward substitution (unit lower-triangular L).
  for (std::size_t i = 0; i < n; ++i) {
    double acc = pb[i];
    for (std::size_t j = 0; j < i; ++j) acc -= lu_.at(i, j) * pb[j];
    pb[i] = acc;
  }
  // Back substitution (U).
  for (std::size_t ii = n; ii > 0; --ii) {
    const std::size_t i = ii - 1;
    double acc = pb[i];
    for (std::size_t j = i + 1; j < n; ++j) acc -= lu_.at(i, j) * pb[j];
    pb[i] = acc / lu_.at(i, i);
  }
  std::copy(pb.begin(), pb.end(), b.begin());
}

std::vector<double> LuFactorization::solve(std::span<const double> b) const {
  std::vector<double> x(b.begin(), b.end());
  solve_in_place(x);
  return x;
}

std::vector<double> solve_dense(const Matrix& a, std::span<const double> b) {
  return LuFactorization(a).solve(b);
}

double max_norm(std::span<const double> v) {
  double m = 0.0;
  for (double x : v) m = std::max(m, std::abs(x));
  return m;
}

}  // namespace ecms::circuit
