// Batched SoA kernels for the lockstep cell simulator (DESIGN.md §14).
//
// The batch engine advances K cells that share one NetlistProgram; its hot
// loops — the numeric refactorization over the frozen pivot order, the
// forward/backward triangular solves, and the static-image restamp copy —
// operate on structure-of-arrays value storage, element (slot, lane) at
// `a[slot * width + lane]`, so one instruction stream serves every lane.
//
// Bit-identity contract: a vector kernel performs, per lane, exactly the
// floating-point operations of the scalar SparseLu path in exactly the same
// order. Only lanewise IEEE-754 arithmetic (+, -, *, /) is vectorized —
// never comparisons, max-reductions or anything with NaN-sensitive
// semantics; pivot-health and convergence decisions stay in scalar replica
// code that reads the SoA arrays. No FMA contraction on either side (the
// build forces -ffp-contract=off), so scalar and vector lanes agree to the
// last ulp on every host, and the scalar fallback is not a degraded mode
// but the same function computed 1 lane at a time.
//
// Dispatch: resolved once at first use from the host CPU (AVX2 on x86-64,
// NEON on aarch64, scalar otherwise), overridable for tests and benches via
// set_force_scalar() or the ECMS_FORCE_SCALAR_KERNELS environment variable
// (any non-empty value other than "0").
#pragma once

#include <cstddef>
#include <cstdint>

#include "circuit/sparse.hpp"

namespace ecms::circuit::kernels {

/// One kernel backend. All array arguments are SoA unless noted.
struct Kernels {
  const char* name;  ///< "scalar", "avx2", "neon"

  /// Numeric refactorization of all `width` lanes over the frozen pivot
  /// order: per permuted row, scatter A, eliminate against finished rows in
  /// ascending column order, gather L and U — the exact op sequence of
  /// SparseLu::refactor(), for every row of every lane unconditionally.
  /// Degraded or singular lanes produce garbage in later rows (confined to
  /// that lane); callers must run first_degraded_row() per lane and discard
  /// accordingly. `work` is the dense scatter scratch, sy.n * width wide.
  void (*refactor)(const LuSymbolic& sy, const double* a, double* l,
                   double* u, double* work, std::size_t width);

  /// Forward/backward triangular solves of all lanes in place on `pb`, the
  /// row-permuted RHS (sy.n * width). Mirrors SparseLu::solve_in_place()
  /// between its permutation steps; callers gather/scatter per lane.
  void (*solve)(const LuSymbolic& sy, const double* l, const double* u,
                double* pb, std::size_t width);

  /// dst[i] = src[i] for `count` doubles — the static-image -> working-
  /// values broadcast restamp, all lanes at once.
  void (*copy)(double* dst, const double* src, std::size_t count);

  /// values[slot * width + lane] += g for every slot in `slots` — the gmin
  /// ground-diagonal term of the static image.
  void (*diag_add)(double* values, const std::uint32_t* slots,
                   std::size_t n_slots, double g, std::size_t width);
};

/// The runtime-dispatched backend (never null).
const Kernels& active();
/// The portable scalar backend (always available).
const Kernels& scalar();

/// True when a vector backend is compiled in and the CPU supports it
/// (regardless of any forced-scalar override).
bool vector_available();

/// Test/bench hook: force the scalar backend on (true) or return to CPU
/// dispatch (false). Overrides ECMS_FORCE_SCALAR_KERNELS. Thread-safe.
void set_force_scalar(bool force);
bool force_scalar();

/// Human-readable ISA report for `ecms_tool version`, e.g.
/// "avx2 (active), scalar fallback available".
const char* isa_summary();

/// Default lane count for batch_width = auto on this host.
std::size_t preferred_width();

/// Scalar replica of SparseLu::refactor()'s pivot-health early return for
/// one lane of a vector-refactored U: the first permuted row whose pivot is
/// non-finite, exactly zero, or below kRepivotThreshold times the row max,
/// or -1 when every row is healthy. A lane with a degraded row must be
/// retired (its L/U rows past that point are garbage).
long first_degraded_row(const LuSymbolic& sy, const double* u,
                        std::size_t width, std::size_t lane);

/// The refactor-time pivot-health threshold; mirrors the scalar engine's
/// (sparse.cpp) so batch retirement decisions match scalar re-pivots.
inline constexpr double kRepivotThreshold = 1e-10;

/// Internal: the AVX2 backend (kernels_avx2.cpp; null on non-x86-64 hosts).
/// Callers use active() — this exists only for the dispatch layer.
const Kernels* avx2_kernels();

}  // namespace ecms::circuit::kernels
