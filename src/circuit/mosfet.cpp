#include "circuit/mosfet.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/units.hpp"

namespace ecms::circuit {

namespace {

// EKV interpolation function F(u) = ln^2(1 + e^{u/2}) and its derivative
// F'(u) = ln(1 + e^{u/2}) * sigmoid(u/2). One exp() serves both factors:
// with e = e^x, ln(1 + e^x) = log1p(e) and sigmoid(x) = e / (1 + e). This
// evaluation sits on the per-iteration assembly path of every MOSFET in the
// netlist, so the transcendental count matters; the saturated tails keep
// the usual numerically stable forms.
struct Interp {
  double f;
  double df;
};
Interp ekv_f(double u) {
  const double x = 0.5 * u;
  if (x > 37.0) {
    // e^x >> 1: ln(1 + e^x) = x and sigmoid(x) = 1 to double precision.
    return {x * x, x};
  }
  const double e = std::exp(x);
  if (x < -37.0) {
    // e^x < eps/2: ln(1 + e^x) = e^x and sigmoid(x) = e^x to double
    // precision (1 + e rounds to 1).
    return {e * e, e * e};
  }
  const double l = std::log1p(e);
  return {l * l, l * (e / (1.0 + e))};
}

// n-type core evaluation (both models); voltages are absolute.
MosEval eval_ncore(const MosParams& p, double vg, double vd, double vs,
                   double vb) {
  MosEval e;
  const double vt = phys::thermal_voltage(p.temp_k);
  const double beta = p.kp * p.w / p.l;

  if (p.model == MosModel::kEkv) {
    const double n = p.n_slope;
    const double is = 2.0 * n * beta * vt * vt;
    const double vp = (vg - vb - p.vth0) / n;
    const double uf = (vp - (vs - vb)) / vt;
    const double ur = (vp - (vd - vb)) / vt;
    const auto [ff, dff] = ekv_f(uf);
    const auto [fr, dfr] = ekv_f(ur);
    const double vds = vd - vs;
    const double clm = 1.0 + p.lambda * vds;
    const double ids0 = is * (ff - fr);
    e.ids = ids0 * clm;
    const double a = is * clm;
    e.d_vg = a * (dff - dfr) / (n * vt);
    e.d_vd = a * dfr / vt + ids0 * p.lambda;
    e.d_vs = -a * dff / vt - ids0 * p.lambda;
    e.d_vb = a * (dff - dfr) * (n - 1.0) / (n * vt);
    return e;
  }

  // Level-1 (Shichman–Hodges) with linearized body effect and no
  // subthreshold conduction. Source/drain are swapped so vds >= 0.
  double d = vd, s = vs;
  double sign = 1.0;
  if (d < s) {
    std::swap(d, s);
    sign = -1.0;
  }
  const double vsb = s - vb;
  const double vth = p.vth0 + (p.n_slope - 1.0) * std::max(vsb, 0.0);
  const double vgs = vg - s;
  const double vds = d - s;
  const double vgst = vgs - vth;
  if (vgst <= 0.0) {
    e.ids = 0.0;
    return e;  // cutoff: all derivatives zero
  }
  const double clm = 1.0 + p.lambda * vds;
  double ids, gm, gds;
  if (vds < vgst) {
    // Triode.
    ids = beta * (vgst * vds - 0.5 * vds * vds) * clm;
    gm = beta * vds * clm;
    gds = beta * (vgst - vds) * clm +
          beta * (vgst * vds - 0.5 * vds * vds) * p.lambda;
  } else {
    // Saturation.
    ids = 0.5 * beta * vgst * vgst * clm;
    gm = beta * vgst * clm;
    gds = 0.5 * beta * vgst * vgst * p.lambda;
  }
  const double gmb = gm * (p.n_slope - 1.0) * (vsb > 0.0 ? 1.0 : 0.0);
  // Map swapped-terminal derivatives back to the original orientation.
  // In the swapped frame: dI/dg = gm, dI/dd = gds, dI/ds = -(gm+gds+gmb),
  // dI/db = gmb. Sign flips the current and each derivative.
  e.ids = sign * ids;
  const double dg = sign * gm;
  const double dd_sw = sign * gds;
  const double db = sign * gmb;
  const double ds_sw = -(dg + dd_sw + db);
  e.d_vg = dg;
  if (sign > 0) {
    e.d_vd = dd_sw;
    e.d_vs = ds_sw;
  } else {
    e.d_vd = ds_sw;
    e.d_vs = dd_sw;
  }
  e.d_vb = db;
  return e;
}

}  // namespace

MosEval mos_eval(const MosParams& p, double vg, double vd, double vs,
                 double vb) {
  if (p.type == MosType::kNmos) return eval_ncore(p, vg, vd, vs, vb);
  // PMOS: mirror all voltages, evaluate the n-core, negate the current.
  // d(-I(-v))/dv = +dI/dv' so derivatives carry over unchanged.
  MosEval m = eval_ncore(p, -vg, -vd, -vs, -vb);
  MosEval e;
  e.ids = -m.ids;
  e.d_vg = m.d_vg;
  e.d_vd = m.d_vd;
  e.d_vs = m.d_vs;
  e.d_vb = m.d_vb;
  return e;
}

double mos_ids(const MosParams& p, double vgs, double vds) {
  return mos_eval(p, vgs, vds, 0.0, 0.0).ids;
}

Mosfet::Mosfet(std::string name, NodeId d, NodeId g, NodeId s, NodeId b,
               MosParams params)
    : Device(std::move(name)), d_(d), g_(g), s_(s), b_(b), p_(params) {
  ECMS_REQUIRE(p_.w > 0 && p_.l > 0, "MOSFET geometry must be positive");
  ECMS_REQUIRE(p_.kp > 0, "MOSFET kp must be positive");
  // Intrinsic capacitance split: overlap caps to S/D, the full channel
  // capacitance to bulk, junction caps at the diffusions. See header.
  cgs_.set_capacitance(p_.c_overlap());
  cgd_.set_capacitance(p_.c_overlap());
  cgb_.set_capacitance(p_.c_gate_channel());
  cdb_.set_capacitance(p_.c_junction());
  csb_.set_capacitance(p_.c_junction());
}

void Mosfet::stamp(const StampContext& ctx, MnaView& a_mat,
                   std::span<double> b_vec) const {
  const double vg = ctx.v(g_), vd = ctx.v(d_), vs = ctx.v(s_), vb = ctx.v(b_);
  const MosEval e = mos_eval(p_, vg, vd, vs, vb);

  // Newton companion for the channel current I(d->s):
  // I ~ I0 + sum_k dI/dvk (vk - vk0).
  auto stamp_pair = [&](NodeId col, double g) {
    if (col == kGround) return;
    if (d_ != kGround) a_mat.add(unknown_of(d_), unknown_of(col), g);
    if (s_ != kGround) a_mat.add(unknown_of(s_), unknown_of(col), -g);
  };
  stamp_pair(g_, e.d_vg);
  stamp_pair(d_, e.d_vd);
  stamp_pair(s_, e.d_vs);
  stamp_pair(b_, e.d_vb);
  const double ieq =
      e.ids - e.d_vg * vg - e.d_vd * vd - e.d_vs * vs - e.d_vb * vb;
  stamp_current(b_vec, d_, s_, ieq);
}

void Mosfet::stamp_static(const StampContext& ctx, MnaView& a_mat,
                          std::span<double> b_vec) const {
  // Convergence aid across the channel (negligible at 1e-12 S).
  stamp_conductance(a_mat, d_, s_, ctx.gmin);

  // Intrinsic capacitances. Their companions read dt and latched state but
  // never the Newton iterate, so they belong to the per-point static image:
  // on the sparse backend this cuts ~3/4 of the MOSFET's per-iteration
  // matrix stamps.
  cgs_.stamp(ctx, g_, s_, a_mat, b_vec);
  cgd_.stamp(ctx, g_, d_, a_mat, b_vec);
  cgb_.stamp(ctx, g_, b_, a_mat, b_vec);
  cdb_.stamp(ctx, d_, b_, a_mat, b_vec);
  csb_.stamp(ctx, s_, b_, a_mat, b_vec);
}

void Mosfet::init_state(const StampContext& ctx) {
  cgs_.init_state(ctx, g_, s_);
  cgd_.init_state(ctx, g_, d_);
  cgb_.init_state(ctx, g_, b_);
  cdb_.init_state(ctx, d_, b_);
  csb_.init_state(ctx, s_, b_);
}

void Mosfet::accept_step(const StampContext& ctx) {
  cgs_.accept_step(ctx, g_, s_);
  cgd_.accept_step(ctx, g_, d_);
  cgb_.accept_step(ctx, g_, b_);
  cdb_.accept_step(ctx, d_, b_);
  csb_.accept_step(ctx, s_, b_);
}

double Mosfet::probe_current(const StampContext& ctx) const {
  return mos_eval(p_, ctx.v(g_), ctx.v(d_), ctx.v(s_), ctx.v(b_)).ids;
}

void Mosfet::save_state(std::vector<double>& out) const {
  cgs_.save_state(out);
  cgd_.save_state(out);
  cgb_.save_state(out);
  cdb_.save_state(out);
  csb_.save_state(out);
}

std::size_t Mosfet::restore_state(std::span<const double> in) {
  std::size_t off = 0;
  off += cgs_.restore_state(in.subspan(off));
  off += cgd_.restore_state(in.subspan(off));
  off += cgb_.restore_state(in.subspan(off));
  off += cdb_.restore_state(in.subspan(off));
  off += csb_.restore_state(in.subspan(off));
  return off;
}

}  // namespace ecms::circuit
