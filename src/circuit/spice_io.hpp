// SPICE-dialect netlist export / import.
//
// Export writes any Circuit as a SPICE-like deck so generated netlists (the
// macro-cell + measurement structure) can be inspected, diffed, or fed to an
// external simulator. Import parses the same dialect back, which gives the
// library a text-based construction path and lets tests round-trip.
//
// Dialect (one card per line, '*' comments, case-insensitive prefixes):
//   R<name> <a> <b> <ohms>
//   C<name> <a> <b> <farads>
//   V<name> <p> <n> DC <volts>
//   V<name> <p> <n> PWL(<t1> <v1> <t2> <v2> ...)
//   I<name> <p> <n> DC <amps>
//   D<name> <anode> <cathode> <model>
//   M<name> <d> <g> <s> <b> <model> W=<meters> L=<meters>
//   .model <name> NMOS|PMOS|D (<param>=<value> ...)
//   .end
// Engineering suffixes (f, p, n, u, m, k, meg, g) are accepted on values.
// VcSwitch instances are exported as comments (no portable SPICE form).
#pragma once

#include <iosfwd>
#include <string>

#include "circuit/netlist.hpp"

namespace ecms::circuit {

/// Writes the circuit as a SPICE deck. `title` becomes the first comment.
void write_spice(const Circuit& ckt, std::ostream& os,
                 const std::string& title = "ecms netlist");
std::string to_spice(const Circuit& ckt,
                     const std::string& title = "ecms netlist");

/// Parses a deck into a fresh Circuit. Throws ecms::NetlistError with a
/// line number on malformed input.
Circuit parse_spice(const std::string& deck);
Circuit parse_spice_stream(std::istream& is);

/// Parses an engineering-notation value ("30f", "1.8", "2.5k", "3meg").
double parse_spice_value(const std::string& token);

}  // namespace ecms::circuit
