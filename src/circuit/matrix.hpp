// Dense linear algebra for MNA systems.
//
// The circuits in this library (macro-cell slices plus the measurement
// structure) have tens to a few hundred unknowns, where a cache-friendly
// dense LU with partial pivoting beats sparse bookkeeping. The factorization
// is kept separate from the matrix so Newton iterations can reuse storage.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace ecms::circuit {

/// Row-major dense matrix.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double at(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  /// Sets every entry to zero without reallocating.
  void clear();

  /// Resizes (content undefined afterwards; call clear()).
  void resize(std::size_t rows, std::size_t cols);

  std::span<double> row(std::size_t r) {
    return {data_.data() + r * cols_, cols_};
  }
  std::span<const double> row(std::size_t r) const {
    return {data_.data() + r * cols_, cols_};
  }

  /// y = A * x (sizes must match).
  void multiply(std::span<const double> x, std::span<double> y) const;

 private:
  std::size_t rows_ = 0, cols_ = 0;
  std::vector<double> data_;
};

/// LU factorization with partial pivoting (Doolittle). Throws
/// ecms::SolverError if the matrix is numerically singular.
class LuFactorization {
 public:
  /// Empty factorization; call refactor() before solving.
  LuFactorization() = default;

  /// Factors a copy of `a` in place. `a` must be square.
  explicit LuFactorization(const Matrix& a);

  /// Re-factors `a`, reusing this object's storage: no allocation when the
  /// dimension matches the previous factorization. Same arithmetic as the
  /// constructor, so results are bit-identical to a fresh factorization.
  void refactor(const Matrix& a);

  /// Solves A x = b; returns x. b.size() must equal the dimension.
  std::vector<double> solve(std::span<const double> b) const;

  /// In-place variant reusing the caller's buffer.
  void solve_in_place(std::span<double> b) const;

  /// In-place solve with a caller-owned permutation scratch buffer (resized
  /// as needed): allocation-free when reused across Newton iterations.
  void solve_in_place(std::span<double> b, std::vector<double>& scratch) const;

  std::size_t dim() const { return lu_.rows(); }

  /// Reciprocal condition estimate from the pivot ratio (cheap heuristic:
  /// |smallest pivot| / |largest pivot|). 0 means singular-ish.
  double pivot_ratio() const { return pivot_ratio_; }

 private:
  Matrix lu_;
  std::vector<std::size_t> perm_;
  double pivot_ratio_ = 0.0;
};

/// Convenience one-shot dense solve.
std::vector<double> solve_dense(const Matrix& a, std::span<const double> b);

/// Max-norm of a vector.
double max_norm(std::span<const double> v);

}  // namespace ecms::circuit
