// Self-recovering transient solve ladder.
//
// A single Newton divergence used to abort an entire extraction: transient()
// throws as soon as step halving runs below dt_min. The recovery ladder
// wraps that terminal failure in a deterministic escalation — each rung
// re-runs the transient with one more concession stacked on top of the
// previous ones:
//
//   rung 0  kBaseline       the caller's parameters, unmodified
//   rung 1  kShrinkStep     base step / 4 and a 16x deeper halving budget
//                           (dt_min / 16): buys room under sharp edges
//   rung 2  kHardenNewton   4x Newton iteration budget + 4x tighter damping
//                           clamp: walks stiff nonlinearities slowly
//   rung 3  kGminStepping   100x gmin to ground: relaxes near-floating nodes
//                           that make the Jacobian ill-conditioned
//   rung 4  kBackwardEuler  forced BE integration: drops trapezoidal
//                           ringing entirely (L-stable last resort)
//
// Because rung 0 is the unmodified solve, enabling recovery never changes
// the result of a run that would have succeeded anyway — concessions are
// paid only by solves that would otherwise have thrown. The ladder is pure
// configuration (no hidden state), so a given circuit always escalates the
// same way: diagnoses are reproducible.
#pragma once

#include <string>
#include <vector>

#include "circuit/transient.hpp"

namespace ecms::circuit {

/// One escalation step of the ladder; rungs are cumulative.
enum class RecoveryRung {
  kBaseline = 0,
  kShrinkStep,
  kHardenNewton,
  kGminStepping,
  kBackwardEuler,
};

inline constexpr int kLastRecoveryRung =
    static_cast<int>(RecoveryRung::kBackwardEuler);

std::string recovery_rung_name(RecoveryRung r);

struct RecoveryOptions {
  bool enabled = true;
  /// Highest rung to climb to (inclusive); 0 behaves like plain transient().
  int max_rung = kLastRecoveryRung;
};

/// What the ladder did for one solve.
struct RecoveryReport {
  RecoveryRung succeeded_at = RecoveryRung::kBaseline;
  int attempts = 0;                   ///< transient attempts actually run
  std::vector<std::string> failures;  ///< one "<rung>: <what()>" per failure

  /// True when the solve needed at least one escalation to finish.
  bool recovered() const {
    return attempts > 0 && succeeded_at != RecoveryRung::kBaseline;
  }
};

/// Returns `base` with every concession up to and including `r` applied.
TranParams apply_recovery_rung(const TranParams& base, RecoveryRung r);

/// Runs the transient, escalating through the ladder on SolverError. Fills
/// `report` (if non-null) whether or not the solve succeeds. If every rung
/// fails, rethrows a SolverError carrying the last rung's diagnostics plus
/// the per-rung failure trail in the message.
TranResult transient_with_recovery(Circuit& ckt, const TranParams& params,
                                   const ProbeSet& probes,
                                   const RecoveryOptions& opts = {},
                                   RecoveryReport* report = nullptr);

}  // namespace ecms::circuit
