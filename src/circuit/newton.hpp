// Damped Newton–Raphson solve of the stamped MNA system.
//
// Shared by the DC operating-point and transient solvers: both reduce each
// (time) point to "find x such that the companion-model system is
// self-consistent".
#pragma once

#include <cstddef>
#include <functional>
#include <limits>
#include <span>
#include <vector>

#include "circuit/netlist.hpp"
#include "circuit/solver.hpp"

namespace ecms::circuit {

struct NewtonOptions;

/// Optional instrumentation points consulted by newton_solve. Production
/// code leaves them unset; the fault-injection harness (ecms::fault) uses
/// them to deterministically provoke the failure modes the recovery ladder
/// exists to survive. Both hooks may be called from worker threads
/// concurrently and must be thread-safe.
struct SolveHooks {
  /// Returning true makes the solve report non-convergence immediately
  /// (simulates a Newton stall at this time point / configuration).
  std::function<bool(const StampContext&, const NewtonOptions&)> force_stall;
  /// Returning true zeroes a matrix row after assembly, so the LU
  /// factorization hits a genuinely singular system (simulates a defective
  /// stamp); exercised once per Newton iteration.
  std::function<bool(const StampContext&, const NewtonOptions&)> make_singular;
};

struct NewtonOptions {
  int max_iterations = 100;
  double tol_abs_v = 1e-6;    ///< absolute voltage tolerance (V)
  double tol_rel = 1e-9;      ///< relative tolerance on the update
  double max_delta_v = 0.5;   ///< per-iteration voltage damping clamp (V)
  double gmin_ground = 1e-12; ///< always-on conductance from every node to
                              ///< ground (keeps floating nodes nonsingular)
  /// Fault-injection / instrumentation hooks; nullptr in production. The
  /// pointee must outlive every solve that sees this options object.
  const SolveHooks* hooks = nullptr;
  /// Linear-solver backend choice (dense / sparse / auto-by-size). Rides
  /// inside NewtonOptions so it threads through TranParams / ExtractOptions
  /// to every solve without further plumbing.
  SolverConfig solver;
};

inline constexpr std::size_t kNoUnknown = std::numeric_limits<std::size_t>::max();

struct NewtonResult {
  bool converged = false;
  int iterations = 0;
  double final_delta = 0.0;  ///< max-norm of the last update's voltage part
  /// Voltage unknown with the largest last update (kNoUnknown if none) —
  /// the "worst node" reported in terminal solver diagnostics.
  std::size_t worst_unknown = kNoUnknown;
  bool singular = false;  ///< the LU factorization found a singular system
  bool stalled = false;   ///< non-convergence was forced by a hook
  /// Real factorization work done by this solve. On the dense backend every
  /// iteration is one numeric factorization; on the sparse backend symbolic
  /// (full Markowitz, pattern + pivot order) factorizations happen once per
  /// pattern (plus re-pivots) and numeric ones cover the rest, so the sum
  /// is typically far below `iterations`.
  int symbolic_factorizations = 0;
  int numeric_factorizations = 0;
  /// Sparse-backend assembly accounting: iterations served by restoring the
  /// frozen static image vs. rebuilds of that image (0 on the dense path).
  std::size_t assemble_static_hits = 0;
  std::size_t assemble_restamps = 0;
};

/// Assembles the MNA system for the given context into (a_mat, b). The
/// matrix is resized/cleared as needed; b must already have unknown_count()
/// elements (it is zero-filled here) — callers with arena-backed buffers
/// pass their carved span and pay no allocation.
void assemble(const Circuit& ckt, const StampContext& ctx, double gmin_ground,
              Matrix& a_mat, std::span<double> b);

/// Convenience overload that sizes a heap vector first.
void assemble(const Circuit& ckt, const StampContext& ctx, double gmin_ground,
              Matrix& a_mat, std::vector<double>& b_vec);

/// Runs damped NR starting from x (updated in place). `ctx_proto` supplies
/// time/dt/method/gmin/source_scale; its x span is ignored.
NewtonResult newton_solve(const Circuit& ckt, const StampContext& ctx_proto,
                          std::vector<double>& x, const NewtonOptions& opts);

/// Workspace-reusing variant: the caller owns the buffers / backend caches
/// across many solves of the same circuit (one workspace per transient or
/// DC call). The plain overload above wraps this with a throwaway
/// workspace.
NewtonResult newton_solve(const Circuit& ckt, const StampContext& ctx_proto,
                          std::vector<double>& x, const NewtonOptions& opts,
                          NewtonWorkspace& ws);

}  // namespace ecms::circuit
