// Damped Newton–Raphson solve of the stamped MNA system.
//
// Shared by the DC operating-point and transient solvers: both reduce each
// (time) point to "find x such that the companion-model system is
// self-consistent".
#pragma once

#include <vector>

#include "circuit/netlist.hpp"

namespace ecms::circuit {

struct NewtonOptions {
  int max_iterations = 100;
  double tol_abs_v = 1e-6;    ///< absolute voltage tolerance (V)
  double tol_rel = 1e-9;      ///< relative tolerance on the update
  double max_delta_v = 0.5;   ///< per-iteration voltage damping clamp (V)
  double gmin_ground = 1e-12; ///< always-on conductance from every node to
                              ///< ground (keeps floating nodes nonsingular)
};

struct NewtonResult {
  bool converged = false;
  int iterations = 0;
  double final_delta = 0.0;  ///< max-norm of the last update's voltage part
};

/// Assembles the MNA system for the given context into (a_mat, b_vec).
/// Both are resized/cleared as needed.
void assemble(const Circuit& ckt, const StampContext& ctx, double gmin_ground,
              Matrix& a_mat, std::vector<double>& b_vec);

/// Runs damped NR starting from x (updated in place). `ctx_proto` supplies
/// time/dt/method/gmin/source_scale; its x span is ignored.
NewtonResult newton_solve(const Circuit& ckt, const StampContext& ctx_proto,
                          std::vector<double>& x, const NewtonOptions& opts);

}  // namespace ecms::circuit
