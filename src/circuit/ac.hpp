// Small-signal AC analysis.
//
// Linearizes the circuit at its DC operating point and solves the complex
// system (G + jwC) x = b over a frequency sweep. G is the Jacobian the
// Newton solver already assembles; C is recovered exactly from the
// backward-Euler companion stamps (whose conductance is C/dt) by assembling
// at two time steps and differencing — so every device's capacitances are
// included without a second stamping interface.
//
// The headline use here is measuring capacitance from a netlist: excite a
// voltage source with a 1 V AC magnitude and read C = Im(I)/w. That is how
// the tests validate C_REF (the REF gate input capacitance) and the plate
// offset against the closed-form model.
#pragma once

#include <complex>
#include <string>
#include <vector>

#include "circuit/dc.hpp"
#include "circuit/netlist.hpp"

namespace ecms::circuit {

/// One AC solution: complex node voltages / branch currents per frequency.
class AcResult {
 public:
  AcResult(std::vector<std::string> probe_names, std::vector<double> freqs);

  const std::vector<double>& freqs() const { return freqs_; }
  const std::vector<std::string>& probe_names() const { return names_; }

  std::complex<double> at(const std::string& probe, std::size_t freq_idx) const;
  double magnitude(const std::string& probe, std::size_t freq_idx) const;
  double phase_deg(const std::string& probe, std::size_t freq_idx) const;

  void set(std::size_t probe_idx, std::size_t freq_idx,
           std::complex<double> v);

 private:
  std::size_t probe_index(const std::string& name) const;
  std::vector<std::string> names_;
  std::vector<double> freqs_;
  std::vector<std::vector<std::complex<double>>> data_;  // [probe][freq]
};

struct AcOptions {
  DcOptions dc;  ///< operating-point options
};

/// Runs an AC sweep. `excited_vsource` gets a 1 V AC magnitude (all other
/// independent sources are AC-quiet); probes may name nodes (complex
/// voltage) or "I(<vsource>)" (complex branch current).
AcResult ac_analysis(Circuit& ckt, const std::string& excited_vsource,
                     const std::vector<double>& freqs_hz,
                     const std::vector<std::string>& probes,
                     const AcOptions& options = {});

/// Small-signal capacitance seen by a voltage source at its DC bias:
/// C = Im(I_source) / (2 pi f). Frequency should be low enough that series
/// resistances are negligible (default 1 MHz: 1/(wC) ~ 1.6 MOhm at 100 fF).
double measure_capacitance(Circuit& ckt, const std::string& vsource,
                           double freq_hz = 1e6,
                           const AcOptions& options = {});

}  // namespace ecms::circuit
