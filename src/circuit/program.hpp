// NetlistProgram: the immutable, hash-keyed compilation of one netlist
// topology, shared read-only across solves and threads.
//
// Everything a SparseEngine derives from a circuit's *shape* — the CSR
// sparsity pattern, the stamp-slot tapes (the static-image template and the
// dynamic replay layout), the gmin diagonal slots, and the LU symbolic
// factorization (threshold-Markowitz pivot order + fill closure) — depends
// only on the coordinate streams the devices emit, never on their values.
// The paper's measurement structure is one topology replayed across an
// entire array, so a ProgramCache keyed by a content hash of those streams
// turns O(cells x calls) Markowitz analyses into O(distinct topologies):
// the first engine to see a topology compiles and publishes the program,
// every later engine (any thread, any workspace) adopts it and goes
// straight to numeric refactorization.
//
// Ownership and immutability rules (DESIGN.md §11):
//   * A published NetlistProgram is frozen. Engines hold it via
//     shared_ptr<const ...> and never write through it; per-engine values
//     (CSR entries, L/U factors, rhs images) live in the engine.
//   * Lookup is lock-free (atomic snapshot of an immutable map); insert
//     copies the map under a mutex. First insert wins — a racing builder
//     keeps using its private compilation and adopts nothing.
//   * A hash hit is verified against the full coordinate streams
//     (matches()) before adoption, so a 64-bit collision degrades to a
//     cache miss, never to a wrong program.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <utility>
#include <vector>

#include "circuit/sparse.hpp"

namespace ecms::circuit {

struct NetlistProgram {
  std::uint64_t key = 0;
  std::size_t n = 0;   ///< unknowns
  std::size_t nv = 0;  ///< voltage unknowns (gmin ground diagonal span)
  // Stamp tapes: packed (row, col) coordinates in device emission order,
  // plus their resolution to CSR value slots. The static pair is the
  // layout template of the frozen static image; the dynamic pair drives
  // the per-iteration replay.
  std::vector<std::uint64_t> static_coords;
  std::vector<std::uint64_t> dynamic_coords;
  std::vector<std::uint32_t> static_slots;
  std::vector<std::uint32_t> dynamic_slots;
  std::vector<std::uint32_t> diag_slots;
  std::shared_ptr<const SparsePattern> pattern;
  /// Pivot order + fill closure from the builder's first clean full
  /// factorization. Null only if the builder never factored.
  std::shared_ptr<const LuSymbolic> symbolic;

  /// Exact structural equality with the given recording — the collision
  /// guard consulted on every hash hit before adoption.
  bool matches(std::size_t n_in, std::size_t nv_in,
               std::span<const std::uint64_t> s_coords,
               std::span<const std::uint64_t> d_coords) const;
};

/// Content hash of a topology: FNV-1a over the unknown counts and both
/// coordinate streams. Stable across runs (pure function of the netlist
/// shape), so accounting in tests and CI gates is deterministic.
std::uint64_t program_key(std::size_t n, std::size_t nv,
                          std::span<const std::uint64_t> s_coords,
                          std::span<const std::uint64_t> d_coords);

/// Hash-keyed registry of shared programs. Thread-safe: lookup() takes no
/// lock (one atomic load of the current map snapshot), insert() is
/// mutex-guarded copy-on-write with first-insert-wins semantics.
class ProgramCache {
 public:
  /// Default entry cap: generous — an array run sees a handful of distinct
  /// topologies, a long-lived server tens — but finite, so a server fed an
  /// adversarial stream of one-off topologies stays bounded.
  static constexpr std::size_t kDefaultCapacity = 256;

  explicit ProgramCache(std::size_t capacity = kDefaultCapacity)
      : capacity_(capacity == 0 ? 1 : capacity) {
    map_.store(std::make_shared<const Map>());
  }
  ProgramCache(const ProgramCache&) = delete;
  ProgramCache& operator=(const ProgramCache&) = delete;

  /// The process-wide cache SolverConfig points at by default.
  static ProgramCache& global();

  /// Lock-free: null when the key is absent. The caller must still verify
  /// the result with NetlistProgram::matches() before adopting it.
  /// A hit refreshes the entry's recency stamp (relaxed atomic — eviction
  /// order is approximate under contention, never correctness-bearing).
  std::shared_ptr<const NetlistProgram> lookup(std::uint64_t key) const {
    const auto snap = map_.load(std::memory_order_acquire);
    const auto it = snap->find(key);
    if (it == snap->end()) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      return nullptr;
    }
    hits_.fetch_add(1, std::memory_order_relaxed);
    it->second.last_used->store(
        tick_.fetch_add(1, std::memory_order_relaxed) + 1,
        std::memory_order_relaxed);
    return it->second.program;
  }

  /// Publishes a program. If the key is already present (a concurrent
  /// builder won the race), the existing program is returned instead and
  /// the argument is discarded. When the cache is at capacity, the
  /// least-recently-used entries are evicted first (counted in
  /// circuit.program.evictions); engines holding an evicted program keep
  /// it alive through their shared_ptr — eviction only forgets, it never
  /// invalidates.
  std::shared_ptr<const NetlistProgram> insert(
      std::uint64_t key, std::shared_ptr<const NetlistProgram> program);

  /// Rebounds the cache, evicting LRU entries immediately if the new cap
  /// is below the current size. A cap of 0 is clamped to 1.
  void set_capacity(std::size_t capacity);
  std::size_t capacity() const {
    return capacity_.load(std::memory_order_relaxed);
  }

  std::size_t size() const {
    return map_.load(std::memory_order_acquire)->size();
  }
  /// Raw lookup accounting (a hash hit later rejected by matches() still
  /// counts as a hit here; the circuit.program.* metrics count the
  /// engine's semantic view).
  std::uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  std::uint64_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }
  std::uint64_t inserts() const {
    return inserts_.load(std::memory_order_relaxed);
  }
  std::uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }

  /// Current contents, for diagnostics and tests.
  std::vector<std::pair<std::uint64_t, std::shared_ptr<const NetlistProgram>>>
  entries() const;

  /// Drops all programs and zeroes the counters (tests; engines holding a
  /// program keep it alive through their shared_ptr).
  void clear();

 private:
  /// The recency stamp lives behind its own shared_ptr so lookups can
  /// stamp it through an immutable map snapshot without copy-on-write.
  struct Entry {
    std::shared_ptr<const NetlistProgram> program;
    std::shared_ptr<std::atomic<std::uint64_t>> last_used;
  };
  using Map = std::map<std::uint64_t, Entry>;

  /// Evicts LRU entries from `m` until it has room for `headroom` more
  /// without exceeding capacity. Caller holds insert_mutex_.
  void evict_to_fit(Map& m, std::size_t headroom);

  std::atomic<std::size_t> capacity_;
  std::mutex insert_mutex_;
  std::atomic<std::shared_ptr<const Map>> map_;
  mutable std::atomic<std::uint64_t> tick_{0};
  mutable std::atomic<std::uint64_t> hits_{0};
  mutable std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> inserts_{0};
  std::atomic<std::uint64_t> evictions_{0};
};

}  // namespace ecms::circuit
