#include "circuit/ac.hpp"

#include <cmath>

#include "circuit/newton.hpp"
#include "util/error.hpp"

namespace ecms::circuit {

namespace {
using Cplx = std::complex<double>;

/// Dense complex LU with partial pivoting (mirror of the real one; kept
/// local because AC is the only complex consumer).
class ComplexLu {
 public:
  ComplexLu(std::vector<Cplx> a, std::size_t n) : a_(std::move(a)), n_(n) {
    perm_.resize(n_);
    for (std::size_t i = 0; i < n_; ++i) perm_[i] = i;
    for (std::size_t k = 0; k < n_; ++k) {
      std::size_t piv = k;
      double mag = std::abs(at(k, k));
      for (std::size_t r = k + 1; r < n_; ++r) {
        if (std::abs(at(r, k)) > mag) {
          mag = std::abs(at(r, k));
          piv = r;
        }
      }
      if (mag == 0.0 || !std::isfinite(mag))
        throw SolverError("singular AC matrix at pivot " + std::to_string(k));
      if (piv != k) {
        for (std::size_t c = 0; c < n_; ++c) std::swap(at(k, c), at(piv, c));
        std::swap(perm_[k], perm_[piv]);
      }
      const Cplx inv = 1.0 / at(k, k);
      for (std::size_t r = k + 1; r < n_; ++r) {
        const Cplx f = at(r, k) * inv;
        if (f == Cplx{}) continue;
        at(r, k) = f;
        for (std::size_t c = k + 1; c < n_; ++c) at(r, c) -= f * at(k, c);
      }
    }
  }

  std::vector<Cplx> solve(const std::vector<Cplx>& b) const {
    std::vector<Cplx> x(n_);
    for (std::size_t i = 0; i < n_; ++i) x[i] = b[perm_[i]];
    for (std::size_t i = 0; i < n_; ++i) {
      for (std::size_t j = 0; j < i; ++j) x[i] -= at(i, j) * x[j];
    }
    for (std::size_t ii = n_; ii > 0; --ii) {
      const std::size_t i = ii - 1;
      for (std::size_t j = i + 1; j < n_; ++j) x[i] -= at(i, j) * x[j];
      x[i] /= at(i, i);
    }
    return x;
  }

 private:
  Cplx& at(std::size_t r, std::size_t c) { return a_[r * n_ + c]; }
  const Cplx& at(std::size_t r, std::size_t c) const { return a_[r * n_ + c]; }
  std::vector<Cplx> a_;
  std::size_t n_;
  std::vector<std::size_t> perm_;
};
}  // namespace

AcResult::AcResult(std::vector<std::string> probe_names,
                   std::vector<double> freqs)
    : names_(std::move(probe_names)), freqs_(std::move(freqs)),
      data_(names_.size(), std::vector<Cplx>(freqs_.size())) {}

std::size_t AcResult::probe_index(const std::string& name) const {
  for (std::size_t i = 0; i < names_.size(); ++i)
    if (names_[i] == name) return i;
  throw MeasureError("no AC probe named " + name);
}

std::complex<double> AcResult::at(const std::string& probe,
                                  std::size_t freq_idx) const {
  ECMS_REQUIRE(freq_idx < freqs_.size(), "frequency index out of range");
  return data_[probe_index(probe)][freq_idx];
}

double AcResult::magnitude(const std::string& probe,
                           std::size_t freq_idx) const {
  return std::abs(at(probe, freq_idx));
}

double AcResult::phase_deg(const std::string& probe,
                           std::size_t freq_idx) const {
  return std::arg(at(probe, freq_idx)) * 180.0 / M_PI;
}

void AcResult::set(std::size_t probe_idx, std::size_t freq_idx,
                   std::complex<double> v) {
  data_[probe_idx][freq_idx] = v;
}

AcResult ac_analysis(Circuit& ckt, const std::string& excited_vsource,
                     const std::vector<double>& freqs_hz,
                     const std::vector<std::string>& probes,
                     const AcOptions& options) {
  ECMS_REQUIRE(!freqs_hz.empty(), "AC sweep needs at least one frequency");
  ckt.finalize();
  auto& src = ckt.get<VSource>(excited_vsource);

  // Operating point.
  const DcResult op = dc_operating_point(ckt, options.dc);
  const std::size_t n = ckt.unknown_count();

  // Resolve probes: node voltage or "I(<source>)" branch current.
  struct Probe {
    std::size_t unknown;
    bool is_ground = false;
  };
  std::vector<Probe> resolved;
  for (const auto& name : probes) {
    if (name.size() > 3 && name.substr(0, 2) == "I(" && name.back() == ')') {
      const std::string dev = name.substr(2, name.size() - 3);
      resolved.push_back({ckt.get<VSource>(dev).branch_index(), false});
    } else {
      const NodeId id = ckt.find_node(name);
      if (id == kGround) {
        resolved.push_back({0, true});
      } else {
        resolved.push_back({unknown_of(id), false});
      }
    }
  }

  // G: the linearized (Jacobian) system at the operating point, DC context
  // (capacitors open).
  const double gmin_ground = options.dc.newton.gmin_ground;
  StampContext ctx;
  ctx.x = op.x;
  ctx.dt = 0.0;
  Matrix g_mat;
  std::vector<double> rhs_unused;
  assemble(ckt, ctx, gmin_ground, g_mat, rhs_unused);

  // C: recovered from two backward-Euler assemblies. BE companion stamps
  // conductance C/dt, so A(dt) = G' + C/dt with G' identical across dt.
  const double dt1 = 1e-9, dt2 = 2e-9;
  Matrix a1, a2;
  ctx.method = Integrator::kBackwardEuler;
  ctx.dt = dt1;
  assemble(ckt, ctx, gmin_ground, a1, rhs_unused);
  ctx.dt = dt2;
  assemble(ckt, ctx, gmin_ground, a2, rhs_unused);
  const double inv_span = 1.0 / (1.0 / dt1 - 1.0 / dt2);
  Matrix c_mat(n, n);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c)
      c_mat.at(r, c) = (a1.at(r, c) - a2.at(r, c)) * inv_span;

  AcResult result(probes, freqs_hz);
  std::vector<Cplx> b(n, Cplx{});
  b[src.branch_index()] = Cplx{1.0, 0.0};  // 1 V AC excitation

  for (std::size_t fi = 0; fi < freqs_hz.size(); ++fi) {
    ECMS_REQUIRE(freqs_hz[fi] > 0.0, "AC frequency must be positive");
    const double w = 2.0 * M_PI * freqs_hz[fi];
    std::vector<Cplx> a(n * n);
    for (std::size_t r = 0; r < n; ++r)
      for (std::size_t c = 0; c < n; ++c)
        a[r * n + c] = Cplx{g_mat.at(r, c), w * c_mat.at(r, c)};
    const ComplexLu lu(std::move(a), n);
    const std::vector<Cplx> x = lu.solve(b);
    for (std::size_t pi = 0; pi < resolved.size(); ++pi) {
      result.set(pi, fi,
                 resolved[pi].is_ground ? Cplx{} : x[resolved[pi].unknown]);
    }
  }
  return result;
}

double measure_capacitance(Circuit& ckt, const std::string& vsource,
                           double freq_hz, const AcOptions& options) {
  const std::string probe = "I(" + vsource + ")";
  const AcResult res =
      ac_analysis(ckt, vsource, {freq_hz}, {probe}, options);
  // The source senses current flowing p -> n through itself; the current
  // *into* the network is the negative of that. For v = 1 V, a capacitive
  // load draws i = jwC, so C = Im(i_into)/w.
  const Cplx i_into = -res.at(probe, 0);
  return i_into.imag() / (2.0 * M_PI * freq_hz);
}

}  // namespace ecms::circuit
