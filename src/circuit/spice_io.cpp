#include "circuit/spice_io.hpp"

#include <algorithm>
#include <cctype>
#include <map>
#include <ostream>
#include <sstream>

#include "util/error.hpp"

namespace ecms::circuit {

namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char ch) { return std::tolower(ch); });
  return s;
}

// Card name: prepend the type letter only when the device name does not
// already start with it, so export/import round-trips names stably.
std::string card_name(char prefix, const std::string& name) {
  if (!name.empty() &&
      std::tolower(static_cast<unsigned char>(name[0])) == prefix) {
    return name;
  }
  return std::string(1, static_cast<char>(std::toupper(prefix))) + name;
}

std::string fmt(double v) {
  std::ostringstream os;
  os.precision(12);
  os << v;
  return os.str();
}

// Key for deduplicating MOSFET .model cards: everything but geometry.
std::string mos_model_key(const MosParams& p) {
  std::ostringstream os;
  os << (p.type == MosType::kNmos ? "n" : "p") << '|' << p.kp << '|' << p.vth0
     << '|' << p.lambda << '|' << p.n_slope << '|' << p.temp_k << '|'
     << p.cox_per_area << '|' << p.cov_per_w << '|' << p.cj_per_area << '|'
     << p.diff_len;
  return os.str();
}

std::string diode_model_key(const Diode::Params& p) {
  std::ostringstream os;
  os << p.i_sat << '|' << p.n_ideality << '|' << p.temp_k << '|' << p.v_crit;
  return os.str();
}

void write_wave(std::ostream& os, const SourceWave& w) {
  const auto& pts = w.points();
  if (pts.size() == 1) {
    os << "DC " << fmt(pts[0].v);
    return;
  }
  os << "PWL(";
  for (std::size_t i = 0; i < pts.size(); ++i) {
    if (i) os << ' ';
    os << fmt(pts[i].t) << ' ' << fmt(pts[i].v);
  }
  os << ')';
}

}  // namespace

void write_spice(const Circuit& ckt, std::ostream& os,
                 const std::string& title) {
  os << "* " << title << "\n";

  // Collect models first so the deck is self-contained when read top-down.
  std::map<std::string, std::pair<std::string, const MosParams*>> mos_models;
  std::map<std::string, std::pair<std::string, const Diode::Params*>>
      d_models;
  for (const auto& dev : ckt.devices()) {
    if (const auto* m = dynamic_cast<const Mosfet*>(dev.get())) {
      const std::string key = mos_model_key(m->params());
      if (!mos_models.count(key)) {
        const std::string name =
            (m->params().type == MosType::kNmos ? "nmod" : "pmod") +
            std::to_string(mos_models.size());
        mos_models.emplace(key, std::make_pair(name, &m->params()));
      }
    } else if (const auto* d = dynamic_cast<const Diode*>(dev.get())) {
      const std::string key = diode_model_key(d->params());
      if (!d_models.count(key)) {
        d_models.emplace(key, std::make_pair(
                                  "dmod" + std::to_string(d_models.size()),
                                  &d->params()));
      }
    }
  }
  for (const auto& [key, entry] : mos_models) {
    const MosParams& p = *entry.second;
    os << ".model " << entry.first << ' '
       << (p.type == MosType::kNmos ? "NMOS" : "PMOS") << " (kp=" << fmt(p.kp)
       << " vto=" << fmt(p.vth0) << " lambda=" << fmt(p.lambda)
       << " n=" << fmt(p.n_slope) << " temp=" << fmt(p.temp_k)
       << " cox=" << fmt(p.cox_per_area) << " cov=" << fmt(p.cov_per_w)
       << " cj=" << fmt(p.cj_per_area) << " difflen=" << fmt(p.diff_len)
       << ")\n";
  }
  for (const auto& [key, entry] : d_models) {
    const Diode::Params& p = *entry.second;
    os << ".model " << entry.first << " D (is=" << fmt(p.i_sat)
       << " n=" << fmt(p.n_ideality) << " temp=" << fmt(p.temp_k)
       << " vcrit=" << fmt(p.v_crit) << ")\n";
  }

  const auto node = [&](NodeId id) { return ckt.node_name(id); };
  for (const auto& dev : ckt.devices()) {
    if (const auto* r = dynamic_cast<const Resistor*>(dev.get())) {
      os << card_name('r', r->name()) << ' ' << node(r->a()) << ' ' << node(r->b())
         << ' ' << fmt(r->resistance()) << '\n';
    } else if (const auto* c = dynamic_cast<const Capacitor*>(dev.get())) {
      os << card_name('c', c->name()) << ' ' << node(c->a()) << ' ' << node(c->b())
         << ' ' << fmt(c->capacitance()) << '\n';
    } else if (const auto* v = dynamic_cast<const VSource*>(dev.get())) {
      os << card_name('v', v->name()) << ' ' << node(v->p()) << ' ' << node(v->n())
         << ' ';
      write_wave(os, v->wave());
      os << '\n';
    } else if (const auto* i = dynamic_cast<const ISource*>(dev.get())) {
      os << card_name('i', i->name()) << ' ' << node(i->p()) << ' ' << node(i->n())
         << ' ';
      write_wave(os, i->wave());
      os << '\n';
    } else if (const auto* m = dynamic_cast<const Mosfet*>(dev.get())) {
      os << card_name('m', m->name()) << ' ' << node(m->drain()) << ' '
         << node(m->gate()) << ' ' << node(m->source()) << ' '
         << node(m->bulk()) << ' '
         << mos_models.at(mos_model_key(m->params())).first
         << " W=" << fmt(m->params().w) << " L=" << fmt(m->params().l)
         << '\n';
    } else if (const auto* d = dynamic_cast<const Diode*>(dev.get())) {
      os << card_name('d', d->name()) << ' ' << node(d->anode()) << ' '
         << node(d->cathode()) << ' '
         << d_models.at(diode_model_key(d->params())).first << '\n';
    } else {
      os << "* (unexported device: " << dev->name() << ")\n";
    }
  }
  os << ".end\n";
}

std::string to_spice(const Circuit& ckt, const std::string& title) {
  std::ostringstream os;
  write_spice(ckt, os, title);
  return os.str();
}

double parse_spice_value(const std::string& token) {
  ECMS_REQUIRE(!token.empty(), "empty numeric token");
  std::size_t consumed = 0;
  double value = 0.0;
  try {
    value = std::stod(token, &consumed);
  } catch (const std::exception&) {
    throw NetlistError("bad numeric value: '" + token + "'");
  }
  const std::string suffix = lower(token.substr(consumed));
  if (suffix.empty()) return value;
  if (suffix.rfind("meg", 0) == 0) return value * 1e6;
  switch (suffix[0]) {
    case 'f':
      return value * 1e-15;
    case 'p':
      return value * 1e-12;
    case 'n':
      return value * 1e-9;
    case 'u':
      return value * 1e-6;
    case 'm':
      return value * 1e-3;
    case 'k':
      return value * 1e3;
    case 'g':
      return value * 1e9;
    default:
      throw NetlistError("unknown value suffix: '" + token + "'");
  }
}

namespace {

struct ModelDef {
  std::string kind;  // "nmos", "pmos", "d"
  std::map<std::string, double> params;
};

std::vector<std::string> tokenize(const std::string& line) {
  // Split on whitespace; '(' and ')' and '=' become separators too, so
  // "PWL(0 1)" and "W=1u" tokenize cleanly.
  std::string prepared;
  for (char ch : line) {
    if (ch == '(' || ch == ')' || ch == '=' || ch == ',') {
      prepared += ' ';
    } else {
      prepared += ch;
    }
  }
  std::vector<std::string> out;
  std::istringstream is(prepared);
  std::string tok;
  while (is >> tok) out.push_back(tok);
  return out;
}

[[noreturn]] void fail(std::size_t line_no, const std::string& msg) {
  throw NetlistError("spice parse error (line " + std::to_string(line_no) +
                     "): " + msg);
}

SourceWave parse_wave(const std::vector<std::string>& toks, std::size_t from,
                      std::size_t line_no) {
  if (from >= toks.size()) fail(line_no, "source without a waveform");
  const std::string kind = lower(toks[from]);
  if (kind == "dc") {
    if (from + 1 >= toks.size()) fail(line_no, "DC without a value");
    return SourceWave::dc(parse_spice_value(toks[from + 1]));
  }
  if (kind == "pwl") {
    std::vector<PwlPoint> pts;
    for (std::size_t i = from + 1; i + 1 < toks.size(); i += 2) {
      pts.push_back(
          {parse_spice_value(toks[i]), parse_spice_value(toks[i + 1])});
    }
    if (pts.empty()) fail(line_no, "PWL without points");
    return SourceWave::pwl(std::move(pts));
  }
  // Bare value = DC.
  return SourceWave::dc(parse_spice_value(toks[from]));
}

MosParams mos_from_model(const ModelDef& model, double w, double l,
                         std::size_t line_no) {
  MosParams p;
  if (model.kind == "nmos") {
    p.type = MosType::kNmos;
  } else if (model.kind == "pmos") {
    p.type = MosType::kPmos;
  } else {
    fail(line_no, "MOSFET references a non-MOS model");
  }
  p.w = w;
  p.l = l;
  const auto get = [&](const char* key, double fallback) {
    const auto it = model.params.find(key);
    return it == model.params.end() ? fallback : it->second;
  };
  p.kp = get("kp", p.kp);
  p.vth0 = get("vto", p.vth0);
  p.lambda = get("lambda", p.lambda);
  p.n_slope = get("n", p.n_slope);
  p.temp_k = get("temp", p.temp_k);
  p.cox_per_area = get("cox", p.cox_per_area);
  p.cov_per_w = get("cov", p.cov_per_w);
  p.cj_per_area = get("cj", p.cj_per_area);
  p.diff_len = get("difflen", p.diff_len);
  return p;
}

}  // namespace

Circuit parse_spice(const std::string& deck) {
  std::istringstream is(deck);
  return parse_spice_stream(is);
}

Circuit parse_spice_stream(std::istream& is) {
  Circuit ckt;
  std::map<std::string, ModelDef> models;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    // Strip comments and blank lines.
    const auto star = line.find('*');
    if (star != std::string::npos) line = line.substr(0, star);
    const auto toks = tokenize(line);
    if (toks.empty()) continue;
    const std::string head = lower(toks[0]);

    if (head == ".end") break;
    if (head == ".model") {
      if (toks.size() < 3) fail(line_no, ".model needs a name and a kind");
      ModelDef def;
      def.kind = lower(toks[2]);
      for (std::size_t i = 3; i + 1 < toks.size(); i += 2) {
        def.params[lower(toks[i])] = parse_spice_value(toks[i + 1]);
      }
      models[lower(toks[1])] = std::move(def);
      continue;
    }
    if (head[0] == '.') fail(line_no, "unsupported directive: " + toks[0]);

    const char prefix = static_cast<char>(std::tolower(head[0]));
    const std::string& name = toks[0];  // full card name, prefix included
    if (name.size() < 2) fail(line_no, "device without a name");
    switch (prefix) {
      case 'r': {
        if (toks.size() < 4) fail(line_no, "R needs 2 nodes and a value");
        ckt.add_resistor(name, ckt.node(toks[1]), ckt.node(toks[2]),
                         parse_spice_value(toks[3]));
        break;
      }
      case 'c': {
        if (toks.size() < 4) fail(line_no, "C needs 2 nodes and a value");
        ckt.add_capacitor(name, ckt.node(toks[1]), ckt.node(toks[2]),
                          parse_spice_value(toks[3]));
        break;
      }
      case 'v': {
        if (toks.size() < 4) fail(line_no, "V needs 2 nodes and a waveform");
        ckt.add_vsource(name, ckt.node(toks[1]), ckt.node(toks[2]),
                        parse_wave(toks, 3, line_no));
        break;
      }
      case 'i': {
        if (toks.size() < 4) fail(line_no, "I needs 2 nodes and a waveform");
        ckt.add_isource(name, ckt.node(toks[1]), ckt.node(toks[2]),
                        parse_wave(toks, 3, line_no));
        break;
      }
      case 'd': {
        if (toks.size() < 4) fail(line_no, "D needs 2 nodes and a model");
        const auto it = models.find(lower(toks[3]));
        if (it == models.end()) fail(line_no, "unknown model " + toks[3]);
        Diode::Params p;
        const auto& mp = it->second.params;
        if (mp.count("is")) p.i_sat = mp.at("is");
        if (mp.count("n")) p.n_ideality = mp.at("n");
        if (mp.count("temp")) p.temp_k = mp.at("temp");
        if (mp.count("vcrit")) p.v_crit = mp.at("vcrit");
        ckt.add_diode(name, ckt.node(toks[1]), ckt.node(toks[2]), p);
        break;
      }
      case 'm': {
        if (toks.size() < 10)
          fail(line_no, "M needs 4 nodes, a model, W= and L=");
        const auto it = models.find(lower(toks[5]));
        if (it == models.end()) fail(line_no, "unknown model " + toks[5]);
        double w = 0.0, l = 0.0;
        for (std::size_t i = 6; i + 1 < toks.size(); i += 2) {
          const std::string key = lower(toks[i]);
          if (key == "w") w = parse_spice_value(toks[i + 1]);
          if (key == "l") l = parse_spice_value(toks[i + 1]);
        }
        if (w <= 0 || l <= 0) fail(line_no, "MOSFET without W/L");
        ckt.add_mosfet(name, ckt.node(toks[1]), ckt.node(toks[2]),
                       ckt.node(toks[3]), ckt.node(toks[4]),
                       mos_from_model(it->second, w, l, line_no));
        break;
      }
      default:
        fail(line_no, std::string("unsupported device prefix '") + prefix +
                          "'");
    }
  }
  return ckt;
}

}  // namespace ecms::circuit
