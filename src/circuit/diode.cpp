#include "circuit/diode.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/units.hpp"

namespace ecms::circuit {

Diode::Diode(std::string name, NodeId anode, NodeId cathode, Params p)
    : Device(std::move(name)), a_(anode), c_(cathode), p_(p) {
  ECMS_REQUIRE(p.i_sat > 0 && p.n_ideality > 0, "diode parameters invalid");
  ECMS_REQUIRE(anode != cathode, "diode terminals must differ");
}

double Diode::limited(double v) const {
  // Soft exponential limiting: above v_crit the junction voltage used in the
  // exponential grows only logarithmically, which is the classic SPICE trick
  // to keep exp() finite during Newton excursions.
  if (v <= p_.v_crit) return v;
  const double vt = p_.n_ideality * phys::thermal_voltage(p_.temp_k);
  return p_.v_crit + vt * std::log1p((v - p_.v_crit) / vt);
}

double Diode::current(double v) const {
  const double vt = p_.n_ideality * phys::thermal_voltage(p_.temp_k);
  return p_.i_sat * std::expm1(limited(v) / vt);
}

double Diode::conductance(double v) const {
  const double vt = p_.n_ideality * phys::thermal_voltage(p_.temp_k);
  double g = p_.i_sat / vt * std::exp(limited(v) / vt);
  if (v > p_.v_crit) {
    // Chain rule through the limiter.
    g *= vt / (vt + (v - p_.v_crit));
  }
  return g;
}

void Diode::stamp(const StampContext& ctx, MnaView& a_mat,
                  std::span<double> b_vec) const {
  const double v = ctx.v(a_) - ctx.v(c_);
  const double i = current(v);
  const double g = conductance(v) + ctx.gmin;
  stamp_conductance(a_mat, a_, c_, g);
  stamp_current(b_vec, a_, c_, i - g * v);
}

double Diode::probe_current(const StampContext& ctx) const {
  return current(ctx.v(a_) - ctx.v(c_));
}

}  // namespace ecms::circuit
