#include "circuit/device.hpp"

namespace ecms::circuit {

void stamp_conductance(MnaView& a_mat, NodeId a, NodeId b, double g) {
  if (a != kGround) {
    a_mat.add(unknown_of(a), unknown_of(a), g);
    if (b != kGround) a_mat.add(unknown_of(a), unknown_of(b), -g);
  }
  if (b != kGround) {
    a_mat.add(unknown_of(b), unknown_of(b), g);
    if (a != kGround) a_mat.add(unknown_of(b), unknown_of(a), -g);
  }
}

void stamp_transconductance(MnaView& a_mat, NodeId out_p, NodeId out_n,
                            NodeId in_p, NodeId in_n, double g) {
  auto stamp = [&](NodeId row, NodeId col, double val) {
    if (row == kGround || col == kGround) return;
    a_mat.add(unknown_of(row), unknown_of(col), val);
  };
  stamp(out_p, in_p, g);
  stamp(out_p, in_n, -g);
  stamp(out_n, in_p, -g);
  stamp(out_n, in_n, g);
}

void stamp_current(std::span<double> b_vec, NodeId a, NodeId b, double i) {
  if (a != kGround) b_vec[unknown_of(a)] -= i;
  if (b != kGround) b_vec[unknown_of(b)] += i;
}

double CapCompanion::geq(const StampContext& ctx) const {
  return ctx.method == Integrator::kBackwardEuler ? c_ / ctx.dt
                                                  : 2.0 * c_ / ctx.dt;
}

void CapCompanion::stamp(const StampContext& ctx, NodeId a, NodeId b,
                         MnaView& a_mat, std::span<double> b_vec) const {
  if (ctx.is_dc() || c_ == 0.0) return;  // open in DC
  const double g = geq(ctx);
  // Companion: i(a->b) = g * v - j, with
  //   BE:   j = g * v_prev
  //   trap: j = g * v_prev + i_prev
  double j = g * v_prev_;
  if (ctx.method == Integrator::kTrapezoidal) j += i_prev_;
  stamp_conductance(a_mat, a, b, g);
  // The equivalent source j flows b->a (it opposes the conductance term).
  stamp_current(b_vec, b, a, j);
}

void CapCompanion::init_state(const StampContext& ctx, NodeId a, NodeId b) {
  v_prev_ = ctx.v(a) - ctx.v(b);
  i_prev_ = 0.0;
}

void CapCompanion::accept_step(const StampContext& ctx, NodeId a, NodeId b) {
  if (ctx.is_dc() || c_ == 0.0) {
    init_state(ctx, a, b);
    return;
  }
  const double g = geq(ctx);
  const double v_new = ctx.v(a) - ctx.v(b);
  double i_new = g * (v_new - v_prev_);
  if (ctx.method == Integrator::kTrapezoidal) i_new -= i_prev_;
  v_prev_ = v_new;
  i_prev_ = i_new;
}

}  // namespace ecms::circuit
