// Recorded transient traces and measurements on them.
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace ecms::circuit {

/// A multi-channel time series produced by the transient solver.
class Trace {
 public:
  Trace() = default;
  explicit Trace(std::vector<std::string> channel_names);

  std::size_t channel_count() const { return names_.size(); }
  std::size_t sample_count() const { return times_.size(); }
  const std::vector<std::string>& channel_names() const { return names_; }
  const std::vector<double>& times() const { return times_; }
  const std::vector<double>& channel(std::size_t i) const;
  /// Channel lookup by name; throws ecms::MeasureError if absent.
  const std::vector<double>& channel(const std::string& name) const;
  std::size_t channel_index(const std::string& name) const;

  /// Appends one sample row; values arity must match channel_count().
  void append(double t, const std::vector<double>& values);

  /// Linear interpolation of a channel at time t (clamped at the ends).
  double value_at(std::size_t chan, double t) const;
  double value_at(const std::string& chan, double t) const;

  /// Last recorded value of a channel.
  double final_value(std::size_t chan) const;
  double final_value(const std::string& chan) const;

 private:
  std::vector<std::string> names_;
  std::vector<double> times_;
  std::vector<std::vector<double>> data_;  // per channel
};

/// Edge direction for crossing searches.
enum class Edge { kRising, kFalling, kEither };

/// First time a channel crosses `level` (with the requested edge) at or after
/// `t_from`; interpolated linearly within the straddling interval.
std::optional<double> first_crossing(const Trace& trace, std::size_t chan,
                                     double level, Edge edge,
                                     double t_from = 0.0);
std::optional<double> first_crossing(const Trace& trace,
                                     const std::string& chan, double level,
                                     Edge edge, double t_from = 0.0);

/// Min/max of a channel over [t_from, t_to].
double channel_min(const Trace& trace, std::size_t chan, double t_from,
                   double t_to);
double channel_max(const Trace& trace, std::size_t chan, double t_from,
                   double t_to);

}  // namespace ecms::circuit
