#include "circuit/passive.hpp"

#include <cmath>

#include "util/error.hpp"

namespace ecms::circuit {

Resistor::Resistor(std::string name, NodeId a, NodeId b, double ohms)
    : Device(std::move(name)), a_(a), b_(b), ohms_(ohms) {
  ECMS_REQUIRE(ohms > 0.0, "resistance must be positive");
  ECMS_REQUIRE(a != b, "resistor terminals must differ");
}

void Resistor::set_resistance(double ohms) {
  ECMS_REQUIRE(ohms > 0.0, "resistance must be positive");
  ohms_ = ohms;
}

void Resistor::stamp(const StampContext&, MnaView& a_mat,
                     std::span<double>) const {
  stamp_conductance(a_mat, a_, b_, 1.0 / ohms_);
}

double Resistor::probe_current(const StampContext& ctx) const {
  return (ctx.v(a_) - ctx.v(b_)) / ohms_;
}

Capacitor::Capacitor(std::string name, NodeId a, NodeId b, double farads)
    : Device(std::move(name)), a_(a), b_(b), comp_(farads) {
  ECMS_REQUIRE(farads >= 0.0, "capacitance must be non-negative");
  ECMS_REQUIRE(a != b, "capacitor terminals must differ");
}

void Capacitor::set_capacitance(double farads) {
  ECMS_REQUIRE(farads >= 0.0, "capacitance must be non-negative");
  comp_.set_capacitance(farads);
}

void Capacitor::stamp(const StampContext& ctx, MnaView& a_mat,
                      std::span<double> b_vec) const {
  comp_.stamp(ctx, a_, b_, a_mat, b_vec);
}

void Capacitor::init_state(const StampContext& ctx) {
  comp_.init_state(ctx, a_, b_);
}

void Capacitor::accept_step(const StampContext& ctx) {
  comp_.accept_step(ctx, a_, b_);
}

double Capacitor::probe_current(const StampContext&) const {
  return comp_.history_current();
}

VcSwitch::VcSwitch(std::string name, NodeId a, NodeId b, NodeId ctrl_p,
                   NodeId ctrl_n, Params p)
    : Device(std::move(name)), a_(a), b_(b), cp_(ctrl_p), cn_(ctrl_n), p_(p) {
  ECMS_REQUIRE(p.r_on > 0 && p.r_off > p.r_on,
               "switch needs r_off > r_on > 0");
  ECMS_REQUIRE(p.v_slope > 0, "switch transition width must be positive");
}

double VcSwitch::conductance(double v_ctrl) const {
  const double g_on = 1.0 / p_.r_on;
  const double g_off = 1.0 / p_.r_off;
  const double u = (v_ctrl - p_.v_threshold) / p_.v_slope;
  const double sig = 1.0 / (1.0 + std::exp(-u));
  return g_off + (g_on - g_off) * sig;
}

void VcSwitch::stamp(const StampContext& ctx, MnaView& a_mat,
                     std::span<double> b_vec) const {
  const double vc = ctx.v(cp_) - ctx.v(cn_);
  const double vab = ctx.v(a_) - ctx.v(b_);
  const double g = conductance(vc);
  // dG/dvc for the Jacobian of i = G(vc) * vab with respect to the control.
  const double g_on = 1.0 / p_.r_on;
  const double g_off = 1.0 / p_.r_off;
  const double u = (vc - p_.v_threshold) / p_.v_slope;
  const double sig = 1.0 / (1.0 + std::exp(-u));
  const double dg_dvc = (g_on - g_off) * sig * (1.0 - sig) / p_.v_slope;

  stamp_conductance(a_mat, a_, b_, g);
  stamp_transconductance(a_mat, a_, b_, cp_, cn_, dg_dvc * vab);
  // Newton linearization constant term: i0 - (di/dv)·v0 for the control part.
  stamp_current(b_vec, b_, a_, dg_dvc * vab * vc);
}

double VcSwitch::probe_current(const StampContext& ctx) const {
  return conductance(ctx.v(cp_) - ctx.v(cn_)) * (ctx.v(a_) - ctx.v(b_));
}

}  // namespace ecms::circuit
