// MOSFET model.
//
// Two channel-current models are provided:
//  * kEkv (default): a long-channel EKV-style interpolation that is smooth
//    and monotonic across subthreshold / triode / saturation. Smoothness is
//    what makes Newton converge reliably on the measurement structure, where
//    the REF transistor's gate sits anywhere between 0 V and VDD after charge
//    sharing — including right at threshold.
//  * kLevel1: classic SPICE level-1 (Shichman–Hodges) piecewise square law,
//    kept as a cross-check so tests can validate the EKV curve against the
//    textbook regions.
//
// Intrinsic capacitances are modeled as constant (geometry-derived) linear
// capacitors Cgs/Cgd/Cgb plus junction capacitances Cdb/Csb. A constant gate
// capacitance is exactly what the paper's charge-sharing step relies on
// (C_REF is "the input capacitor of the n-MOSFET used for the analog to
// digital conversion"), and constant linear caps keep the transient solver
// charge-conserving.
#pragma once

#include "circuit/device.hpp"

namespace ecms::circuit {

enum class MosType { kNmos, kPmos };
enum class MosModel { kEkv, kLevel1 };

/// Electrical parameters of a MOSFET instance (already including geometry).
struct MosParams {
  MosType type = MosType::kNmos;
  MosModel model = MosModel::kEkv;
  double w = 1e-6;          ///< channel width (m)
  double l = 0.18e-6;       ///< drawn channel length (m)
  double kp = 170e-6;       ///< transconductance u0*Cox (A/V^2)
  double vth0 = 0.45;       ///< zero-bias threshold (V, positive for both types)
  double lambda = 0.06;     ///< channel-length modulation (1/V)
  double n_slope = 1.35;    ///< subthreshold slope factor (also linearized body
                            ///< effect: dVth/dVsb ~ (n-1))
  double temp_k = 300.0;    ///< device temperature
  double cox_per_area = 8.6e-3;  ///< gate oxide capacitance (F/m^2)
  double cov_per_w = 3.0e-10;    ///< G-D / G-S overlap capacitance (F/m)
  double cj_per_area = 1.0e-3;   ///< junction capacitance (F/m^2)
  double diff_len = 0.48e-6;     ///< source/drain diffusion length (m)

  /// Gate-channel oxide capacitance Cox*W*L.
  double c_gate_channel() const { return cox_per_area * w * l; }
  /// Overlap capacitance per side.
  double c_overlap() const { return cov_per_w * w; }
  /// Effective gate input capacitance seen from the gate with channel formed
  /// (used to size C_REF): channel + both overlaps.
  double c_gate_input() const { return c_gate_channel() + 2.0 * c_overlap(); }
  /// Junction (drain or source to bulk) capacitance.
  double c_junction() const { return cj_per_area * w * diff_len; }
};

/// Channel current and its partial derivatives at one bias point.
struct MosEval {
  double ids = 0.0;  ///< drain->source channel current (n-type convention)
  double d_vg = 0.0;
  double d_vd = 0.0;
  double d_vs = 0.0;
  double d_vb = 0.0;
};

/// Evaluates the channel current for terminal voltages (absolute, any
/// reference). Exposed as a free function so the behavioral fast model and
/// tests can share the exact same I-V surface as the transient simulator.
MosEval mos_eval(const MosParams& p, double vg, double vd, double vs,
                 double vb);

/// Convenience: drain saturation-ish current at a given Vgs with Vds = vds,
/// Vsb = 0 (used by the ramp-ADC fast model).
double mos_ids(const MosParams& p, double vgs, double vds);

/// Four-terminal MOSFET device.
class Mosfet : public Device {
 public:
  Mosfet(std::string name, NodeId d, NodeId g, NodeId s, NodeId b,
         MosParams params);

  void stamp(const StampContext& ctx, MnaView& a_mat,
             std::span<double> b_vec) const override;
  /// gmin tie and the five intrinsic capacitances (iterate-independent).
  void stamp_static(const StampContext& ctx, MnaView& a_mat,
                    std::span<double> b_vec) const override;
  bool nonlinear() const override { return true; }
  void init_state(const StampContext& ctx) override;
  void accept_step(const StampContext& ctx) override;
  /// Channel current (drain->source, n-type convention) at the iterate.
  double probe_current(const StampContext& ctx) const override;
  void save_state(std::vector<double>& out) const override;
  std::size_t restore_state(std::span<const double> in) override;

  const MosParams& params() const { return p_; }
  NodeId drain() const { return d_; }
  NodeId gate() const { return g_; }
  NodeId source() const { return s_; }
  NodeId bulk() const { return b_; }

 private:
  NodeId d_, g_, s_, b_;
  MosParams p_;
  CapCompanion cgs_, cgd_, cgb_, cdb_, csb_;
};

}  // namespace ecms::circuit
