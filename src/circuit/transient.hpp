// Transient analysis.
//
// Fixed base step with: breakpoint alignment (steps land exactly on every
// stimulus corner), step halving on Newton failure with geometric recovery,
// and a backward-Euler step immediately after each breakpoint to damp
// trapezoidal ringing at discontinuities.
#pragma once

#include <string>
#include <vector>

#include "circuit/netlist.hpp"
#include "circuit/newton.hpp"
#include "circuit/waveform.hpp"

namespace ecms::circuit {

struct TranParams {
  double t_stop = 0.0;
  double dt = 10e-12;          ///< base step
  double dt_min = 1e-15;       ///< refuse to halve below this
  Integrator method = Integrator::kTrapezoidal;
  NewtonOptions newton;
  bool be_after_breakpoint = true;
  /// Use initial conditions (SPICE .tran UIC): skip the DC operating point
  /// and start from x = 0 (all nodes grounded). This is the physically right
  /// start for measurement flows whose first step discharges everything, and
  /// it avoids the DC ambiguity of floating dynamic nodes (which otherwise
  /// settle in a leakage/gmin divider).
  bool uic = false;
  /// Opt-in step growth: when Newton converges in few iterations the step
  /// may grow up to dt_max (still clipped to every stimulus breakpoint).
  /// Off by default so result timing is bit-stable for calibration.
  bool adaptive = false;
  double dt_max = 0.0;  ///< cap for adaptive growth; 0 = 8x the base step
};

/// What to record. Node and device probes are looked up by name at start.
struct ProbeSet {
  std::vector<std::string> nodes;            ///< node voltages
  std::vector<std::string> device_currents;  ///< Device::probe_current()
};

struct TranStats {
  std::size_t accepted_steps = 0;
  std::size_t rejected_steps = 0;
  std::size_t newton_iterations = 0;
};

struct TranResult {
  Trace trace;       ///< channels: nodes first, then "I(<device>)" entries
  TranStats stats;
  std::vector<double> final_x;  ///< final unknown vector
};

/// Runs a transient from the DC operating point at t = 0. Throws
/// ecms::SolverError if a step cannot be made to converge above dt_min; the
/// exception carries SolverDiagnostics (failing time point, last step size,
/// accepted/rejected step and Newton iteration counts, worst node). For the
/// self-recovering entry point see circuit/recovery.hpp.
TranResult transient(Circuit& ckt, const TranParams& params,
                     const ProbeSet& probes);

}  // namespace ecms::circuit
