// Transient analysis.
//
// Fixed base step with: breakpoint alignment (steps land exactly on every
// stimulus corner), step halving on Newton failure with geometric recovery,
// and a backward-Euler step immediately after each breakpoint to damp
// trapezoidal ringing at discontinuities.
#pragma once

#include <string>
#include <vector>

#include "circuit/netlist.hpp"
#include "circuit/newton.hpp"
#include "circuit/waveform.hpp"

namespace ecms::circuit {

/// Complete solver state at one accepted time point: everything needed to
/// continue the integration bit-identically in a later transient_resume()
/// call — possibly after the circuit's source waves have been reprogrammed
/// (the intended use: simulate an expensive stimulus prefix once, then
/// branch many cheap continuations off the snapshot).
///
/// A checkpoint is tied to the Circuit it was captured from: the unknown
/// vector and the per-device history blob are validated against the
/// circuit's unknown/device counts on resume, but the caller is responsible
/// for not mutating the topology in between.
struct SolverCheckpoint {
  double time = -1.0;   ///< capture time (s); < 0 marks "not captured"
  double dt = 0.0;      ///< step size the next step would have used
  bool force_be = false;  ///< next step forced to backward Euler?
  std::vector<double> x;             ///< unknown vector at `time`
  std::vector<double> device_state;  ///< concatenated Device::save_state blobs
  std::size_t device_count = 0;

  bool valid() const { return time >= 0.0 && !x.empty(); }
};

struct TranParams {
  double t_stop = 0.0;
  double dt = 10e-12;          ///< base step
  double dt_min = 1e-15;       ///< refuse to halve below this
  Integrator method = Integrator::kTrapezoidal;
  NewtonOptions newton;
  bool be_after_breakpoint = true;
  /// Use initial conditions (SPICE .tran UIC): skip the DC operating point
  /// and start from x = 0 (all nodes grounded). This is the physically right
  /// start for measurement flows whose first step discharges everything, and
  /// it avoids the DC ambiguity of floating dynamic nodes (which otherwise
  /// settle in a leakage/gmin divider).
  bool uic = false;
  /// Opt-in step growth: when Newton converges in few iterations the step
  /// may grow up to dt_max (still clipped to every stimulus breakpoint).
  /// Off by default so result timing is bit-stable for calibration.
  bool adaptive = false;
  double dt_max = 0.0;  ///< cap for adaptive growth; 0 = 8x the base step
  /// When >= 0, capture a SolverCheckpoint into TranResult::checkpoint at
  /// this time (clamped to t_stop). A mid-run capture time is added to the
  /// breakpoint set so a step lands exactly on it; times that already sit on
  /// a stimulus corner (or on t_stop) therefore leave the trajectory
  /// untouched. Negative (the default) disables capture.
  double checkpoint_at = -1.0;
};

/// What to record. Node and device probes are looked up by name at start.
struct ProbeSet {
  std::vector<std::string> nodes;            ///< node voltages
  std::vector<std::string> device_currents;  ///< Device::probe_current()
};

struct TranStats {
  std::size_t accepted_steps = 0;
  std::size_t rejected_steps = 0;
  std::size_t newton_iterations = 0;
};

struct TranResult {
  Trace trace;       ///< channels: nodes first, then "I(<device>)" entries
  TranStats stats;
  std::vector<double> final_x;  ///< final unknown vector
  /// Captured when params.checkpoint_at >= 0 (see SolverCheckpoint::valid()).
  SolverCheckpoint checkpoint;
};

/// Runs a transient from the DC operating point at t = 0. Throws
/// ecms::SolverError if a step cannot be made to converge above dt_min; the
/// exception carries SolverDiagnostics (failing time point, last step size,
/// accepted/rejected step and Newton iteration counts, worst node). For the
/// self-recovering entry point see circuit/recovery.hpp.
TranResult transient(Circuit& ckt, const TranParams& params,
                     const ProbeSet& probes);

/// Continues a transient from a checkpoint previously captured on the same
/// circuit. `params.t_stop` is absolute and must lie after `from.time`; the
/// probe set may differ from the capturing run's. The trace starts with a
/// sample at the checkpoint time, stats count only the resumed segment, and
/// `params.checkpoint_at` may be set to capture again. Source waves may have
/// been reprogrammed since capture — stepping follows the circuit's current
/// breakpoints — but the topology (unknown and device counts) must be
/// unchanged, which is validated. An uninterrupted run and a
/// capture-at-breakpoint + resume pair take bit-identical steps.
TranResult transient_resume(Circuit& ckt, const SolverCheckpoint& from,
                            const TranParams& params, const ProbeSet& probes);

}  // namespace ecms::circuit
