#include "circuit/netlist.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace ecms::circuit {

Circuit::Circuit() {
  names_.push_back("0");
  ids_["0"] = kGround;
  ids_["gnd"] = kGround;
}

NodeId Circuit::node(const std::string& name) {
  const auto it = ids_.find(name);
  if (it != ids_.end()) return it->second;
  const NodeId id = static_cast<NodeId>(names_.size());
  names_.push_back(name);
  ids_.emplace(name, id);
  return id;
}

bool Circuit::has_node(const std::string& name) const {
  return ids_.count(name) > 0;
}

NodeId Circuit::find_node(const std::string& name) const {
  const auto it = ids_.find(name);
  if (it == ids_.end()) throw NetlistError("unknown node: " + name);
  return it->second;
}

const std::string& Circuit::node_name(NodeId id) const {
  ECMS_REQUIRE(id >= 0 && static_cast<std::size_t>(id) < names_.size(),
               "node id out of range");
  return names_[static_cast<std::size_t>(id)];
}

template <typename T, typename... Args>
T& Circuit::emplace_device(Args&&... args) {
  auto dev = std::make_unique<T>(std::forward<Args>(args)...);
  ECMS_REQUIRE(by_name_.count(dev->name()) == 0,
               "duplicate device name: " + dev->name());
  T& ref = *dev;
  by_name_.emplace(dev->name(), dev.get());
  devices_.push_back(std::move(dev));
  finalized_ = false;
  return ref;
}

Resistor& Circuit::add_resistor(const std::string& name, NodeId a, NodeId b,
                                double ohms) {
  return emplace_device<Resistor>(name, a, b, ohms);
}

Capacitor& Circuit::add_capacitor(const std::string& name, NodeId a, NodeId b,
                                  double farads) {
  return emplace_device<Capacitor>(name, a, b, farads);
}

VSource& Circuit::add_vsource(const std::string& name, NodeId p, NodeId n,
                              SourceWave wave) {
  return emplace_device<VSource>(name, p, n, std::move(wave));
}

ISource& Circuit::add_isource(const std::string& name, NodeId p, NodeId n,
                              SourceWave wave) {
  return emplace_device<ISource>(name, p, n, std::move(wave));
}

Mosfet& Circuit::add_mosfet(const std::string& name, NodeId d, NodeId g,
                            NodeId s, NodeId b, MosParams params) {
  return emplace_device<Mosfet>(name, d, g, s, b, params);
}

Diode& Circuit::add_diode(const std::string& name, NodeId anode,
                          NodeId cathode, Diode::Params params) {
  return emplace_device<Diode>(name, anode, cathode, params);
}

VcSwitch& Circuit::add_switch(const std::string& name, NodeId a, NodeId b,
                              NodeId ctrl_p, NodeId ctrl_n,
                              VcSwitch::Params params) {
  return emplace_device<VcSwitch>(name, a, b, ctrl_p, ctrl_n, params);
}

void Circuit::finalize() {
  if (finalized_) return;
  std::size_t next = node_count() - 1;  // branches follow node unknowns
  branch_unknowns_ = 0;
  for (auto& d : devices_) {
    const int nb = d->branch_count();
    if (nb > 0) {
      d->set_branch_base(next);
      next += static_cast<std::size_t>(nb);
      branch_unknowns_ += static_cast<std::size_t>(nb);
    }
  }
  finalized_ = true;
}

std::size_t Circuit::unknown_count() const {
  ECMS_REQUIRE(finalized_, "circuit not finalized");
  return node_count() - 1 + branch_unknowns_;
}

Device* Circuit::find(const std::string& name) {
  const auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : it->second;
}

const Device* Circuit::find(const std::string& name) const {
  const auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : it->second;
}

bool Circuit::has_nonlinear() const {
  return std::any_of(devices_.begin(), devices_.end(),
                     [](const auto& d) { return d->nonlinear(); });
}

std::vector<double> Circuit::breakpoints(double t_stop) const {
  std::vector<double> bp;
  for (const auto& d : devices_) d->collect_breakpoints(bp);
  std::sort(bp.begin(), bp.end());
  bp.erase(std::unique(bp.begin(), bp.end(),
                       [](double a, double b) { return std::abs(a - b) < 1e-15; }),
           bp.end());
  std::erase_if(bp, [&](double t) { return t <= 0.0 || t >= t_stop; });
  return bp;
}

void Circuit::throw_missing(const std::string& name) {
  throw NetlistError("no device named " + name);
}

void Circuit::throw_wrong_type(const std::string& name) {
  throw NetlistError("device " + name + " has unexpected type");
}

}  // namespace ecms::circuit
