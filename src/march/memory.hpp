// Memory-under-test abstraction for the march runner.
//
// Two implementations: the physical behavioral eDRAM array (the baseline the
// paper's digital bitmap comes from), and an idealized bit array with
// injected functional faults (stuck-at, transition, coupling) used to
// validate the march engine against textbook detection properties.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "edram/behavioral.hpp"

namespace ecms::march {

class MemoryUnderTest {
 public:
  virtual ~MemoryUnderTest() = default;
  virtual std::size_t rows() const = 0;
  virtual std::size_t cols() const = 0;
  virtual void write(std::size_t r, std::size_t c, bool bit) = 0;
  virtual bool read(std::size_t r, std::size_t c) = 0;
};

/// Adapter over the behavioral eDRAM array.
class EdramMemory : public MemoryUnderTest {
 public:
  explicit EdramMemory(edram::BehavioralArray& array) : array_(&array) {}
  std::size_t rows() const override { return array_->rows(); }
  std::size_t cols() const override { return array_->cols(); }
  void write(std::size_t r, std::size_t c, bool bit) override {
    array_->write(r, c, bit);
  }
  bool read(std::size_t r, std::size_t c) override { return array_->read(r, c); }

 private:
  edram::BehavioralArray* array_;
};

/// Classic functional fault models.
enum class FaultModel {
  kStuckAt0,
  kStuckAt1,
  kTransitionUp,    ///< cell cannot make the 0 -> 1 transition
  kTransitionDown,  ///< cell cannot make the 1 -> 0 transition
  kCouplingInv,     ///< a write transition on the aggressor inverts the victim
};

struct InjectedFault {
  FaultModel model;
  std::size_t row = 0, col = 0;                ///< victim cell
  std::size_t agg_row = 0, agg_col = 0;        ///< aggressor (coupling only)
};

/// Ideal SRAM-like bit array with injected functional faults.
class FaultInjectedMemory : public MemoryUnderTest {
 public:
  FaultInjectedMemory(std::size_t rows, std::size_t cols);

  void inject(InjectedFault fault);

  std::size_t rows() const override { return rows_; }
  std::size_t cols() const override { return cols_; }
  void write(std::size_t r, std::size_t c, bool bit) override;
  bool read(std::size_t r, std::size_t c) override;

 private:
  char& bit(std::size_t r, std::size_t c) { return bits_[r * cols_ + c]; }
  void apply_cell_faults(std::size_t r, std::size_t c, bool old_bit,
                         bool requested);

  std::size_t rows_, cols_;
  std::vector<char> bits_;
  std::vector<InjectedFault> faults_;
};

}  // namespace ecms::march
