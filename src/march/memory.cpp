#include "march/memory.hpp"

#include "util/error.hpp"

namespace ecms::march {

FaultInjectedMemory::FaultInjectedMemory(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), bits_(rows * cols, false) {
  ECMS_REQUIRE(rows > 0 && cols > 0, "memory must be non-empty");
}

void FaultInjectedMemory::inject(InjectedFault fault) {
  ECMS_REQUIRE(fault.row < rows_ && fault.col < cols_,
               "fault victim out of range");
  if (fault.model == FaultModel::kCouplingInv) {
    ECMS_REQUIRE(fault.agg_row < rows_ && fault.agg_col < cols_,
                 "fault aggressor out of range");
    ECMS_REQUIRE(fault.agg_row != fault.row || fault.agg_col != fault.col,
                 "aggressor must differ from victim");
  }
  faults_.push_back(fault);
}

void FaultInjectedMemory::write(std::size_t r, std::size_t c, bool requested) {
  ECMS_REQUIRE(r < rows_ && c < cols_, "cell index out of range");
  const bool old_bit = bit(r, c) != 0;
  bool value = requested;
  // Per-cell faults may override the stored value.
  for (const auto& f : faults_) {
    if (f.row != r || f.col != c) continue;
    switch (f.model) {
      case FaultModel::kStuckAt0:
        value = false;
        break;
      case FaultModel::kStuckAt1:
        value = true;
        break;
      case FaultModel::kTransitionUp:
        if (!old_bit && requested) value = old_bit;  // up-transition fails
        break;
      case FaultModel::kTransitionDown:
        if (old_bit && !requested) value = old_bit;  // down-transition fails
        break;
      case FaultModel::kCouplingInv:
        break;  // victim side handled from the aggressor's write
    }
  }
  bit(r, c) = value ? 1 : 0;
  // Coupling faults triggered by a *transition* write on the aggressor.
  if (old_bit != value) {
    for (const auto& f : faults_) {
      if (f.model != FaultModel::kCouplingInv) continue;
      if (f.agg_row == r && f.agg_col == c) {
        char& victim = bit(f.row, f.col);
        victim = victim != 0 ? 0 : 1;
      }
    }
  }
}

bool FaultInjectedMemory::read(std::size_t r, std::size_t c) {
  ECMS_REQUIRE(r < rows_ && c < cols_, "cell index out of range");
  bool value = bit(r, c) != 0;
  for (const auto& f : faults_) {
    if (f.row != r || f.col != c) continue;
    if (f.model == FaultModel::kStuckAt0) value = false;
    if (f.model == FaultModel::kStuckAt1) value = true;
  }
  return value;
}

}  // namespace ecms::march
