#include "march/runner.hpp"

#include "util/error.hpp"

namespace ecms::march {

MarchRunResult run_march(MemoryUnderTest& mem, const MarchTest& test,
                         const edram::AddressMap& map) {
  ECMS_REQUIRE(map.rows() == mem.rows() && map.cols() == mem.cols(),
               "address map does not match the memory");
  MarchRunResult res(mem.rows(), mem.cols());
  const std::size_t n = map.cell_count();

  for (const auto& element : test.elements) {
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t logical =
          element.order == AddressOrder::kDown ? n - 1 - i : i;
      const edram::CellAddr a = map.physical_of(logical);
      for (OpKind op : element.ops) {
        ++res.total_operations;
        if (op_is_read(op)) {
          const bool got = mem.read(a.row, a.col);
          if (got != op_value(op)) {
            ++res.total_read_mismatches;
            res.fail_bitmap.set_fail(a.row, a.col);
          }
        } else {
          mem.write(a.row, a.col, op_value(op));
        }
      }
    }
  }
  return res;
}

MarchRunResult run_march(MemoryUnderTest& mem, const MarchTest& test) {
  const edram::AddressMap map(mem.rows(), mem.cols(),
                              edram::Scramble::kLinear);
  return run_march(mem, test, map);
}

MarchRunResult run_retention_test(edram::BehavioralArray& array,
                                  bool background, double pause_s,
                                  const edram::AddressMap& map) {
  ECMS_REQUIRE(map.rows() == array.rows() && map.cols() == array.cols(),
               "address map does not match the array");
  MarchRunResult res(array.rows(), array.cols());
  const std::size_t n = map.cell_count();
  for (std::size_t i = 0; i < n; ++i) {
    const edram::CellAddr a = map.physical_of(i);
    array.write(a.row, a.col, background);
    ++res.total_operations;
  }
  array.idle(pause_s);
  for (std::size_t i = 0; i < n; ++i) {
    const edram::CellAddr a = map.physical_of(i);
    const bool got = array.read(a.row, a.col);
    ++res.total_operations;
    if (got != background) {
      ++res.total_read_mismatches;
      res.fail_bitmap.set_fail(a.row, a.col);
    }
  }
  return res;
}

}  // namespace ecms::march
