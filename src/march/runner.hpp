// March-test execution over a memory-under-test, producing the digital
// (pass/fail) bitmap the paper's analog bitmap is compared against.
#pragma once

#include "bitmap/analog_bitmap.hpp"
#include "edram/addressing.hpp"
#include "march/element.hpp"
#include "march/memory.hpp"

namespace ecms::march {

struct MarchRunResult {
  bitmap::DigitalBitmap fail_bitmap;
  std::size_t total_operations = 0;
  std::size_t total_read_mismatches = 0;

  explicit MarchRunResult(std::size_t rows, std::size_t cols)
      : fail_bitmap(rows, cols) {}
};

/// Runs `test` over `mem`, visiting logical addresses through `map`. A cell
/// is marked failing if any expected-value read mismatches at its physical
/// location.
MarchRunResult run_march(MemoryUnderTest& mem, const MarchTest& test,
                         const edram::AddressMap& map);

/// Convenience: linear addressing.
MarchRunResult run_march(MemoryUnderTest& mem, const MarchTest& test);

/// Retention (pause) test on the behavioral array: write `background` to
/// every cell, idle for `pause_s`, then read everything back. Catches cells
/// whose charge decays too fast (shorts, and small capacitors at long
/// pauses).
MarchRunResult run_retention_test(edram::BehavioralArray& array,
                                  bool background, double pause_s,
                                  const edram::AddressMap& map);

}  // namespace ecms::march
