// March-test description: the industry-standard notation for memory tests.
//
// A march test is a sequence of march elements; each element visits every
// address in a specified order and applies a fixed sequence of read/write
// operations at each address, e.g. March C- is
//     {any(w0); up(r0,w1); up(r1,w0); down(r0,w1); down(r1,w0); any(r0)}.
// This module provides the data model, a compact-string parser, and the
// standard algorithms used as the digital-bitmap baseline.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace ecms::march {

enum class OpKind { kWrite0, kWrite1, kRead0, kRead1 };

std::string op_name(OpKind op);  // "w0", "w1", "r0", "r1"
bool op_is_read(OpKind op);
/// The data value written, or the value a read expects.
bool op_value(OpKind op);

enum class AddressOrder { kUp, kDown, kAny };

std::string order_name(AddressOrder o);  // "up", "down", "any"

struct MarchElement {
  AddressOrder order = AddressOrder::kAny;
  std::vector<OpKind> ops;
};

struct MarchTest {
  std::string name;
  std::vector<MarchElement> elements;

  /// Operations per cell (test length in the march-test sense).
  std::size_t ops_per_cell() const;
  /// Compact notation, e.g. "{any(w0); up(r0,w1); down(r1,w0)}".
  std::string notation() const;
};

/// Parses compact notation: elements separated by ';' inside optional
/// braces, each "order(op,op,...)" with order in {up, down, any} and ops in
/// {r0, r1, w0, w1}. Throws ecms::Error on malformed input.
MarchTest parse_march(const std::string& name, const std::string& notation);

// --- standard algorithms ---
MarchTest mats_plus();   ///< MATS+: {any(w0); up(r0,w1); down(r1,w0)}
MarchTest march_x();     ///< {any(w0); up(r0,w1); down(r1,w0); any(r0)}
MarchTest march_y();     ///< {any(w0); up(r0,w1,r1); down(r1,w0,r0); any(r0)}
MarchTest march_c_minus();  ///< 10n March C-
/// All of the above (for parameterized sweeps).
std::vector<MarchTest> standard_tests();

}  // namespace ecms::march
