#include "march/element.hpp"

#include <sstream>

#include "util/error.hpp"

namespace ecms::march {

std::string op_name(OpKind op) {
  switch (op) {
    case OpKind::kWrite0:
      return "w0";
    case OpKind::kWrite1:
      return "w1";
    case OpKind::kRead0:
      return "r0";
    case OpKind::kRead1:
      return "r1";
  }
  return "?";
}

bool op_is_read(OpKind op) {
  return op == OpKind::kRead0 || op == OpKind::kRead1;
}

bool op_value(OpKind op) {
  return op == OpKind::kWrite1 || op == OpKind::kRead1;
}

std::string order_name(AddressOrder o) {
  switch (o) {
    case AddressOrder::kUp:
      return "up";
    case AddressOrder::kDown:
      return "down";
    case AddressOrder::kAny:
      return "any";
  }
  return "?";
}

std::size_t MarchTest::ops_per_cell() const {
  std::size_t n = 0;
  for (const auto& e : elements) n += e.ops.size();
  return n;
}

std::string MarchTest::notation() const {
  std::ostringstream os;
  os << '{';
  for (std::size_t i = 0; i < elements.size(); ++i) {
    if (i) os << "; ";
    os << order_name(elements[i].order) << '(';
    for (std::size_t j = 0; j < elements[i].ops.size(); ++j) {
      if (j) os << ',';
      os << op_name(elements[i].ops[j]);
    }
    os << ')';
  }
  os << '}';
  return os.str();
}

namespace {
std::string strip(const std::string& s) {
  const auto b = s.find_first_not_of(" \t\n{");
  const auto e = s.find_last_not_of(" \t\n}");
  if (b == std::string::npos) return "";
  return s.substr(b, e - b + 1);
}

OpKind parse_op(const std::string& tok) {
  if (tok == "w0") return OpKind::kWrite0;
  if (tok == "w1") return OpKind::kWrite1;
  if (tok == "r0") return OpKind::kRead0;
  if (tok == "r1") return OpKind::kRead1;
  throw Error("bad march op: '" + tok + "'");
}

AddressOrder parse_order(const std::string& tok) {
  if (tok == "up") return AddressOrder::kUp;
  if (tok == "down") return AddressOrder::kDown;
  if (tok == "any") return AddressOrder::kAny;
  throw Error("bad march address order: '" + tok + "'");
}
}  // namespace

MarchTest parse_march(const std::string& name, const std::string& notation) {
  MarchTest t;
  t.name = name;
  std::stringstream body(strip(notation));
  std::string part;
  while (std::getline(body, part, ';')) {
    part = strip(part);
    if (part.empty()) continue;
    const auto open = part.find('(');
    const auto close = part.rfind(')');
    ECMS_REQUIRE(open != std::string::npos && close != std::string::npos &&
                     close > open,
                 "march element missing parentheses: '" + part + "'");
    MarchElement el;
    el.order = parse_order(strip(part.substr(0, open)));
    std::stringstream ops(part.substr(open + 1, close - open - 1));
    std::string op;
    while (std::getline(ops, op, ',')) {
      op = strip(op);
      if (!op.empty()) el.ops.push_back(parse_op(op));
    }
    ECMS_REQUIRE(!el.ops.empty(), "march element with no operations");
    t.elements.push_back(std::move(el));
  }
  ECMS_REQUIRE(!t.elements.empty(), "march test with no elements");
  return t;
}

MarchTest mats_plus() {
  return parse_march("MATS+", "{any(w0); up(r0,w1); down(r1,w0)}");
}

MarchTest march_x() {
  return parse_march("March X", "{any(w0); up(r0,w1); down(r1,w0); any(r0)}");
}

MarchTest march_y() {
  return parse_march("March Y",
                     "{any(w0); up(r0,w1,r1); down(r1,w0,r0); any(r0)}");
}

MarchTest march_c_minus() {
  return parse_march(
      "March C-",
      "{any(w0); up(r0,w1); up(r1,w0); down(r0,w1); down(r1,w0); any(r0)}");
}

std::vector<MarchTest> standard_tests() {
  return {mats_plus(), march_x(), march_y(), march_c_minus()};
}

}  // namespace ecms::march
