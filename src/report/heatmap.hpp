// Rendering helpers that tie bitmap data structures to the ASCII plotting
// substrate (code heatmaps, signature maps, defect-truth maps).
#pragma once

#include <string>

#include "bitmap/analog_bitmap.hpp"
#include "bitmap/signature.hpp"
#include "tech/defects.hpp"

namespace ecms::report {

/// Shaded heatmap of the analog bitmap's codes (0..ramp_steps).
std::string render_code_heatmap(const bitmap::AnalogBitmap& bm);

/// Letter map of signature categories ('0','l','.','h','F').
std::string render_signature_map(const bitmap::SignatureMap& sig);

/// Letter map of ground-truth defects ('.','S','O','P','B').
std::string render_defect_truth(const tech::DefectMap& defects);

/// Letter map of a digital fail bitmap ('X' fail, '.' pass).
std::string render_fail_map(const bitmap::DigitalBitmap& fails);

}  // namespace ecms::report
