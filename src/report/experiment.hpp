// Experiment records: paper-expected vs measured, for EXPERIMENTS.md.
//
// Every bench registers what the paper claims and what this reproduction
// measured, then renders a uniform report block so paper-vs-measured is
// greppable in one format across all experiments.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace ecms::report {

struct Check {
  std::string claim;     ///< what the paper states
  std::string measured;  ///< what this run produced
  bool reproduced = false;
};

class Experiment {
 public:
  Experiment(std::string id, std::string title);

  /// Adds a paper-vs-measured check.
  void check(const std::string& claim, const std::string& measured,
             bool reproduced);
  /// Adds a free-form note (assumption, substitution, caveat).
  void note(const std::string& text);

  const std::string& id() const { return id_; }
  bool all_reproduced() const;
  std::size_t check_count() const { return checks_.size(); }
  const std::vector<Check>& checks() const { return checks_; }

  /// Renders the block:
  ///   == FIG3: Abacus ==
  ///   [ok] claim ... | measured ...
  ///   note: ...
  std::string render() const;

 private:
  std::string id_;
  std::string title_;
  std::vector<Check> checks_;
  std::vector<std::string> notes_;
};

std::ostream& operator<<(std::ostream& os, const Experiment& e);

}  // namespace ecms::report
