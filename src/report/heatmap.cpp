#include "report/heatmap.hpp"

#include "util/ascii_plot.hpp"

namespace ecms::report {

std::string render_code_heatmap(const bitmap::AnalogBitmap& bm) {
  std::vector<double> field;
  field.reserve(bm.codes().size());
  for (int code : bm.codes()) field.push_back(static_cast<double>(code));
  return render_heatmap(field, bm.rows(), bm.cols(), 0.0,
                        static_cast<double>(bm.ramp_steps()));
}

std::string render_signature_map(const bitmap::SignatureMap& sig) {
  return render_charmap(sig.letters(), sig.rows(), sig.cols());
}

std::string render_defect_truth(const tech::DefectMap& defects) {
  return render_charmap(defects.letters(), defects.rows(), defects.cols());
}

std::string render_fail_map(const bitmap::DigitalBitmap& fails) {
  std::vector<char> cells;
  cells.reserve(fails.rows() * fails.cols());
  for (std::size_t r = 0; r < fails.rows(); ++r)
    for (std::size_t c = 0; c < fails.cols(); ++c)
      cells.push_back(fails.fails(r, c) ? 'X' : '.');
  return render_charmap(cells, fails.rows(), fails.cols());
}

}  // namespace ecms::report
