#include "report/experiment.hpp"

#include <ostream>
#include <sstream>

#include "util/error.hpp"

namespace ecms::report {

Experiment::Experiment(std::string id, std::string title)
    : id_(std::move(id)), title_(std::move(title)) {
  ECMS_REQUIRE(!id_.empty(), "experiment id must be non-empty");
}

void Experiment::check(const std::string& claim, const std::string& measured,
                       bool reproduced) {
  checks_.push_back({claim, measured, reproduced});
}

void Experiment::note(const std::string& text) { notes_.push_back(text); }

bool Experiment::all_reproduced() const {
  for (const auto& c : checks_)
    if (!c.reproduced) return false;
  return true;
}

std::string Experiment::render() const {
  std::ostringstream os;
  os << "== " << id_ << ": " << title_ << " ==\n";
  for (const auto& c : checks_) {
    os << "  [" << (c.reproduced ? "ok" : "DIFF") << "] paper: " << c.claim
       << " | measured: " << c.measured << '\n';
  }
  for (const auto& n : notes_) os << "  note: " << n << '\n';
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Experiment& e) {
  return os << e.render();
}

}  // namespace ecms::report
