#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace ecms {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStats::mean() const {
  ECMS_REQUIRE(n_ > 0, "mean of empty sample");
  return mean_;
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const {
  ECMS_REQUIRE(n_ > 0, "min of empty sample");
  return min_;
}

double RunningStats::max() const {
  ECMS_REQUIRE(n_ > 0, "max of empty sample");
  return max_;
}

double percentile(std::span<const double> xs, double p) {
  ECMS_REQUIRE(!xs.empty(), "percentile of empty sample");
  ECMS_REQUIRE(p >= 0.0 && p <= 100.0, "percentile p out of [0,100]");
  std::vector<double> s(xs.begin(), xs.end());
  std::sort(s.begin(), s.end());
  if (s.size() == 1) return s[0];
  const double rank = p / 100.0 * static_cast<double>(s.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= s.size()) return s.back();
  return s[lo] * (1.0 - frac) + s[lo + 1] * frac;
}

double mad_sigma(std::span<const double> xs) {
  ECMS_REQUIRE(!xs.empty(), "mad of empty sample");
  const double med = percentile(xs, 50.0);
  std::vector<double> dev(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) dev[i] = std::abs(xs[i] - med);
  return 1.4826 * percentile(dev, 50.0);
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  ECMS_REQUIRE(xs.size() == ys.size() && xs.size() >= 2,
               "pearson needs two equal samples of size >= 2");
  RunningStats sx, sy;
  for (double x : xs) sx.add(x);
  for (double y : ys) sy.add(y);
  double cov = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i)
    cov += (xs[i] - sx.mean()) * (ys[i] - sy.mean());
  cov /= static_cast<double>(xs.size() - 1);
  const double denom = sx.stddev() * sy.stddev();
  if (denom == 0.0) return 0.0;
  return cov / denom;
}

LinearFit fit_line(std::span<const double> xs, std::span<const double> ys) {
  ECMS_REQUIRE(xs.size() == ys.size() && xs.size() >= 2,
               "fit_line needs two equal samples of size >= 2");
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  const auto n = static_cast<double>(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
  }
  const double denom = n * sxx - sx * sx;
  ECMS_REQUIRE(denom != 0.0, "fit_line: degenerate x sample");
  LinearFit f;
  f.slope = (n * sxy - sx * sy) / denom;
  f.intercept = (sy - f.slope * sx) / n;
  double ss_res = 0.0, ss_tot = 0.0;
  const double ymean = sy / n;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double pred = f.intercept + f.slope * xs[i];
    ss_res += (ys[i] - pred) * (ys[i] - pred);
    ss_tot += (ys[i] - ymean) * (ys[i] - ymean);
  }
  f.r2 = ss_tot == 0.0 ? 1.0 : 1.0 - ss_res / ss_tot;
  return f;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  ECMS_REQUIRE(hi > lo, "histogram needs hi > lo");
  ECMS_REQUIRE(bins > 0, "histogram needs at least one bin");
}

void Histogram::add(double x) {
  const double t = (x - lo_) / (hi_ - lo_);
  auto bin = static_cast<long>(t * static_cast<double>(counts_.size()));
  bin = std::clamp<long>(bin, 0, static_cast<long>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

double Histogram::bin_low(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(counts_.size());
}

double Histogram::bin_high(std::size_t i) const { return bin_low(i + 1); }

std::size_t Histogram::mode_bin() const {
  std::size_t best = 0;
  for (std::size_t i = 1; i < counts_.size(); ++i)
    if (counts_[i] > counts_[best]) best = i;
  return best;
}

std::string Histogram::ascii(std::size_t height) const {
  const std::size_t peak = counts_[mode_bin()];
  std::string out;
  if (peak == 0) return out;
  for (std::size_t row = height; row > 0; --row) {
    for (std::size_t b = 0; b < counts_.size(); ++b) {
      const double frac =
          static_cast<double>(counts_[b]) / static_cast<double>(peak);
      out += frac * static_cast<double>(height) >=
                     static_cast<double>(row) - 0.5
                 ? '#'
                 : ' ';
    }
    out += '\n';
  }
  return out;
}

double welch_t(const RunningStats& a, const RunningStats& b, double* df_out) {
  ECMS_REQUIRE(a.count() >= 2 && b.count() >= 2,
               "welch_t needs >= 2 samples per group");
  const double va = a.variance() / static_cast<double>(a.count());
  const double vb = b.variance() / static_cast<double>(b.count());
  const double se = std::sqrt(va + vb);
  if (df_out) {
    const double num = (va + vb) * (va + vb);
    const double den = va * va / static_cast<double>(a.count() - 1) +
                       vb * vb / static_cast<double>(b.count() - 1);
    *df_out = den > 0 ? num / den : 1.0;
  }
  if (se == 0.0) return 0.0;
  return (a.mean() - b.mean()) / se;
}

double two_sided_p_from_z(double z) {
  // Complementary error function gives the normal tail exactly.
  return std::erfc(std::abs(z) / std::sqrt(2.0));
}

}  // namespace ecms
