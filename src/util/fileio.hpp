// Crash-safe file output.
//
// Every JSON artifact the tools write (--metrics-out, --trace-out, the
// bench acceptance JSONs, the campaign manifest and compacted store) goes
// through atomic_write_file: the bytes land in `<path>.tmp`, are fsync'd,
// and only then rename()d over the destination. A crash at any point leaves
// either the old file or the new one — never a truncated half-write that a
// downstream json.tool round-trip would reject. Header-only so ecms_obs
// (the base library, which links nothing) can use it too (same rule as
// util/error.hpp).
#pragma once

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>
#include <string_view>

#include "util/error.hpp"

namespace ecms::util {

namespace detail {
/// write(2) until the whole buffer is out; returns false on error, with
/// errno intact. EINTR restarts the write rather than failing it. When
/// `written` is given, it receives the bytes that made it out — so a
/// partial write interrupted by a real error is reported precisely, not
/// rounded to all-or-nothing.
inline bool write_all(int fd, const void* data, std::size_t n,
                      std::size_t* written = nullptr) {
  const char* p = static_cast<const char*>(data);
  const std::size_t total = n;
  while (n > 0) {
    const ssize_t w = ::write(fd, p, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      if (written) *written = total - n;
      return false;
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
  if (written) *written = total;
  return true;
}

/// fsync the directory containing `path` so the rename itself is durable.
/// Best-effort: some filesystems refuse O_RDONLY directory fsync.
inline void fsync_parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int fd = ::open(dir.empty() ? "/" : dir.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
}
}  // namespace detail

/// Writes `contents` to `path` atomically: tmp file + fsync + rename.
/// Throws ecms::Error on any I/O failure (the tmp file is unlinked first,
/// so a failed export never leaves debris that a later retry would trip on).
inline void atomic_write_file(const std::string& path,
                              std::string_view contents) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    throw Error("cannot open " + tmp + " for writing: " +
                std::strerror(errno));
  }
  // Capture errno at each failure point BEFORE close()/unlink() can
  // clobber it — strerror after cleanup reports the cleanup's errno, not
  // the write's.
  std::size_t written = 0;
  const bool wrote =
      detail::write_all(fd, contents.data(), contents.size(), &written);
  const int write_errno = wrote ? 0 : errno;
  const bool synced = wrote && ::fsync(fd) == 0;
  const int sync_errno = wrote && !synced ? errno : 0;
  ::close(fd);
  if (!wrote || !synced) {
    std::string why = std::strerror(wrote ? sync_errno : write_errno);
    if (!wrote) {
      why += " (wrote " + std::to_string(written) + " of " +
             std::to_string(contents.size()) + " bytes)";
    }
    ::unlink(tmp.c_str());
    throw Error("failed writing " + tmp + ": " + why);
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const std::string why = std::strerror(errno);
    ::unlink(tmp.c_str());
    throw Error("cannot rename " + tmp + " to " + path + ": " + why);
  }
  detail::fsync_parent_dir(path);
}

}  // namespace ecms::util
