// Terminal rendering of waveforms (line plots) and bitmaps (heatmaps).
//
// Figure 2 of the paper is a set of transient waveforms and the analog bitmap
// is a 2-D field; examples render both as ASCII so the reproduction is
// inspectable without a plotting stack.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace ecms {

/// Options for LinePlot rendering.
struct PlotOptions {
  std::size_t width = 72;   ///< plot area width in characters
  std::size_t height = 16;  ///< plot area height in characters
  bool show_axes = true;
  std::string x_label;
  std::string y_label;
};

/// Multi-series scatter/line plot on a character canvas. Series are drawn in
/// order with the glyphs '*', '+', 'o', 'x', '#', cycling.
class LinePlot {
 public:
  explicit LinePlot(PlotOptions opts = {});

  /// Adds a named series; xs/ys must be equal length and non-empty.
  void add_series(const std::string& name, std::span<const double> xs,
                  std::span<const double> ys);

  /// Fixes the axis ranges (otherwise auto-scaled to the data).
  void set_x_range(double lo, double hi);
  void set_y_range(double lo, double hi);

  std::string render() const;

 private:
  struct Series {
    std::string name;
    std::vector<double> xs, ys;
  };
  PlotOptions opts_;
  std::vector<Series> series_;
  bool has_x_range_ = false, has_y_range_ = false;
  double x_lo_ = 0, x_hi_ = 1, y_lo_ = 0, y_hi_ = 1;
};

/// Renders a row-major numeric grid as a shaded heatmap using the ramp
/// " .:-=+*#%@" between [lo, hi]; NaN renders as '?'.
std::string render_heatmap(std::span<const double> values, std::size_t rows,
                           std::size_t cols, double lo, double hi);

/// Heatmap with per-cell single characters supplied by the caller (used for
/// signature maps where each category has a letter).
std::string render_charmap(std::span<const char> cells, std::size_t rows,
                           std::size_t cols);

}  // namespace ecms
