// Column-aligned text / markdown / CSV table emission.
//
// Benches and examples print the paper's tables and figure data as plain
// tables; this keeps the formatting logic in one place.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace ecms {

/// A simple row/column string table with alignment-aware renderers.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; must match the header arity.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 3);
  /// Formats integers.
  static std::string num(long long v);

  std::size_t rows() const { return rows_.size(); }
  std::size_t cols() const { return headers_.size(); }
  const std::string& cell(std::size_t r, std::size_t c) const;

  /// Space-padded, pipe-free rendering for terminals.
  std::string to_text() const;
  /// GitHub-flavoured markdown rendering.
  std::string to_markdown() const;
  /// RFC-4180-ish CSV (quotes cells containing comma/quote/newline).
  std::string to_csv() const;

  /// Writes to_csv() to a file, throwing ecms::Error on I/O failure.
  void write_csv(const std::string& path) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

std::ostream& operator<<(std::ostream& os, const Table& t);

}  // namespace ecms
