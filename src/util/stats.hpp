// Small statistics toolkit used by Monte-Carlo experiments, calibration and
// bitmap analysis: streaming moments, order statistics, histograms, and a
// couple of hypothesis-test helpers.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace ecms {

/// Streaming mean/variance/min/max (Welford's algorithm — numerically stable,
/// single pass).
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  std::size_t count() const { return n_; }
  double mean() const;
  /// Unbiased sample variance (n-1 denominator). 0 for n < 2.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Linear-interpolated percentile (p in [0,100]) of a sample. Sorts a copy.
double percentile(std::span<const double> xs, double p);

/// Median absolute deviation scaled to be consistent with sigma for normal
/// data (x1.4826). Robust spread estimator used for outlier screens.
double mad_sigma(std::span<const double> xs);

/// Pearson correlation of two equal-length samples.
double pearson(std::span<const double> xs, std::span<const double> ys);

/// Result of an ordinary least squares fit y = a + b*x.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r2 = 0.0;  ///< coefficient of determination
};

/// Least-squares line fit. Requires at least two points.
LinearFit fit_line(std::span<const double> xs, std::span<const double> ys);

/// Fixed-bin histogram over [lo, hi); values outside are clamped to the edge
/// bins so totals are preserved.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t bin_count(std::size_t i) const { return counts_.at(i); }
  std::size_t bins() const { return counts_.size(); }
  std::size_t total() const { return total_; }
  double bin_low(std::size_t i) const;
  double bin_high(std::size_t i) const;
  /// Index of the fullest bin.
  std::size_t mode_bin() const;
  /// Renders a vertical-bar ASCII sketch, `width` characters tall at the mode.
  std::string ascii(std::size_t height = 8) const;

 private:
  double lo_, hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Two-sample Welch t statistic (used to detect lot-mean drift in the
/// process-monitoring experiment). Returns the t value; degrees of freedom
/// via Welch–Satterthwaite in `df_out` if non-null.
double welch_t(const RunningStats& a, const RunningStats& b,
               double* df_out = nullptr);

/// Approximate two-sided normal-tail p-value for a z (or large-df t) score.
double two_sided_p_from_z(double z);

}  // namespace ecms
