// Per-item retry budget for self-recovering pipelines.
//
// The array-scale extraction paths treat every cell as an independent item:
// a cell whose measurement throws is retried up to the policy's budget
// before it is declared unmeasurable, so one pathological cell never costs
// the rest of the array. The helper deliberately retries on *any*
// std::exception — containment is the point; the caller decides what the
// exhausted state means.
#pragma once

#include <exception>
#include <string>
#include <utility>

#include "obs/metrics.hpp"

namespace ecms::util {

/// How many times an item-level operation may be attempted in total.
struct RetryPolicy {
  int max_attempts = 2;  ///< total tries per item; 1 = fail on first error

  /// Budget clamped to at least one attempt.
  int attempts() const { return max_attempts < 1 ? 1 : max_attempts; }
};

/// What happened across the attempts of one retried operation.
struct RetryResult {
  bool ok = false;
  int attempts_used = 0;
  std::string last_error;  ///< what() of the last failed attempt

  /// True when the operation needed more than one attempt to succeed.
  bool recovered() const { return ok && attempts_used > 1; }
};

/// Runs fn(attempt) for attempt = 0, 1, ... until it returns without
/// throwing or the policy's budget is exhausted. The attempt index lets the
/// callee decorrelate retries (e.g. fork a fresh noise stream per attempt).
template <typename Fn>
RetryResult run_with_retry(const RetryPolicy& policy, Fn&& fn) {
  RetryResult res;
  for (int attempt = 0; attempt < policy.attempts(); ++attempt) {
    ++res.attempts_used;
    ECMS_METRIC_COUNT("util.retry.attempts", 1);
    if (attempt > 0) ECMS_METRIC_COUNT("util.retry.retries", 1);
    try {
      std::forward<Fn>(fn)(attempt);
      res.ok = true;
      if (res.recovered()) ECMS_METRIC_COUNT("util.retry.recovered", 1);
      return res;
    } catch (const std::exception& e) {
      res.last_error = e.what();
    } catch (...) {
      res.last_error = "unknown exception";
    }
  }
  ECMS_METRIC_COUNT("util.retry.exhausted", 1);
  return res;
}

}  // namespace ecms::util
