#include "util/rng.hpp"

#include <cmath>

#include "util/error.hpp"

namespace ecms {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53-bit mantissa from the top bits.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  ECMS_REQUIRE(n > 0, "uniform_index needs n > 0");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = n * (UINT64_MAX / n);
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return v % n;
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double sigma) {
  return mean + sigma * normal();
}

bool Rng::bernoulli(double p) { return uniform() < p; }

Rng Rng::split() { return Rng(next_u64()); }

Rng Rng::fork(std::uint64_t stream) const {
  // Fold the four state words and the stream index through splitmix64.
  // Each absorption step xors in new material and re-mixes, so child seeds
  // differ for any change of parent state or stream index.
  std::uint64_t x = stream ^ 0xD1B54A32D192ED03ull;
  std::uint64_t seed = splitmix64(x);
  for (std::uint64_t s : s_) {
    x ^= s;
    seed ^= splitmix64(x);
  }
  return Rng(seed);
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  for (std::size_t i = n; i > 1; --i) {
    const std::size_t j = static_cast<std::size_t>(uniform_index(i));
    std::swap(idx[i - 1], idx[j]);
  }
  return idx;
}

}  // namespace ecms
