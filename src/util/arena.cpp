#include "util/arena.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace ecms::util {

namespace {
constexpr std::size_t kMinBlockBytes = 4096;
}  // namespace

std::byte* Arena::allocate(std::size_t bytes, std::size_t align) {
  ECMS_REQUIRE(align != 0 && (align & (align - 1)) == 0,
               "arena alignment must be a power of two");
  if (bytes == 0) bytes = 1;  // distinct non-null result, keeps spans simple
  if (blocks_.empty()) grow(std::max(bytes + align, kMinBlockBytes));

  std::size_t off = (cursor_ + align - 1) & ~(align - 1);
  if (off + bytes > blocks_.back().size) {
    grow(bytes + align);
    off = (cursor_ + align - 1) & ~(align - 1);
  }
  cursor_ = off + bytes;
  in_use_ += bytes;
  return blocks_.back().data.get() + off;
}

void Arena::grow(std::size_t min_bytes) {
  // Doubling keeps the number of chained blocks logarithmic; reset()
  // coalesces the chain so growth is transient, not a steady-state cost.
  const std::size_t last = blocks_.empty() ? 0 : blocks_.back().size;
  const std::size_t size = std::max({min_bytes, last * 2, kMinBlockBytes});
  blocks_.push_back({std::make_unique<std::byte[]>(size), size});
  cursor_ = 0;
}

void Arena::reset() {
  if (blocks_.size() > 1) {
    // Coalesce the growth chain into one block sized for the whole demand,
    // so the next generation carves from contiguous storage without growing.
    const std::size_t total = capacity();
    blocks_.clear();
    blocks_.push_back({std::make_unique<std::byte[]>(total), total});
  }
  cursor_ = 0;
  in_use_ = 0;
  ++resets_;
  ECMS_METRIC_COUNT("util.arena.resets", 1);
  ECMS_METRIC_GAUGE_SET("util.arena.bytes", capacity());
}

std::size_t Arena::capacity() const {
  std::size_t total = 0;
  for (const Block& b : blocks_) total += b.size;
  return total;
}

}  // namespace ecms::util
