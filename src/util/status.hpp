// Per-cell measurement status and the failure report of a degraded run.
//
// The paper's promise is that the MSU turns pathological cells into
// diagnosable codes. The resilience layer extends that to the measurement
// *process* itself: a cell whose solve/measurement fails — even after the
// recovery ladder and retries — is recorded as `kUnmeasurable` instead of
// aborting the whole array, so an extraction always returns a complete,
// possibly degraded bitmap plus this report. `kUnmeasurable` is therefore a
// fourth, structural outcome next to the paper's code-0 triple
// (under-range / short / open): "the measurement itself could not be made".
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace ecms {

/// Outcome of one cell's measurement in a resilient extraction.
enum class CellStatus : unsigned char {
  kOk = 0,        ///< measured on the first attempt, no concessions
  kRecovered,     ///< measured, but only after retries / ladder escalation
  kUnmeasurable,  ///< every attempt failed; the recorded code is a filler
};

inline const char* cell_status_name(CellStatus s) {
  switch (s) {
    case CellStatus::kOk: return "ok";
    case CellStatus::kRecovered: return "recovered";
    case CellStatus::kUnmeasurable: return "unmeasurable";
  }
  return "?";
}

/// One cell the extraction could not measure, with the terminal error.
struct CellFailure {
  std::size_t row = 0;
  std::size_t col = 0;
  std::string reason;  ///< what() of the last attempt's exception
};

/// Aggregate failure report of a (possibly degraded) array extraction.
struct FailureReport {
  std::size_t cells_total = 0;
  std::size_t recovered = 0;           ///< cells measured only via retry
  std::vector<CellFailure> failures;   ///< unmeasurable cells, row-major

  std::size_t unmeasurable() const { return failures.size(); }
  /// True when every cell was measured (possibly after recovery).
  bool complete() const { return failures.empty(); }

  std::string summary() const {
    const std::size_t bad = unmeasurable();
    return std::to_string(cells_total) + " cells: " +
           std::to_string(cells_total - recovered - bad) + " ok, " +
           std::to_string(recovered) + " recovered, " + std::to_string(bad) +
           " unmeasurable";
  }
};

}  // namespace ecms
