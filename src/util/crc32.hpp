// CRC-32 (IEEE 802.3, polynomial 0xEDB88320), table-driven.
//
// Used by the campaign result store (per-page payload checksums, commit
// frames) and the supervisor/worker result protocol. Header-only so the
// base layers can include it without a link dependency (same rule as
// util/error.hpp).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace ecms::util {

namespace detail {
inline const std::array<std::uint32_t, 256>& crc32_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}
}  // namespace detail

/// CRC-32 of `n` bytes at `data`. Chainable: pass a previous result as
/// `seed` to extend the checksum over a second buffer.
inline std::uint32_t crc32(const void* data, std::size_t n,
                           std::uint32_t seed = 0) {
  const auto& table = detail::crc32_table();
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < n; ++i) {
    c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

/// FNV-1a 64-bit hash. The campaign layer uses it for config hashes and the
/// per-unit code-sequence digest (the bit-identity witness a resumed run is
/// compared by); circuit/program.cpp carries its own copy for topology keys.
inline std::uint64_t fnv1a64(const void* data, std::size_t n,
                             std::uint64_t h = 1469598103934665603ull) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace ecms::util
