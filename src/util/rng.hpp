// Deterministic pseudo-random number generation.
//
// Monte-Carlo experiments must be reproducible bit-for-bit across runs and
// platforms, so the library carries its own xoshiro256** implementation and
// its own (Box–Muller) normal sampler instead of relying on
// implementation-defined std::normal_distribution behaviour.
#pragma once

#include <cstdint>
#include <vector>

namespace ecms {

/// xoshiro256** 1.0 by Blackman & Vigna (public domain algorithm),
/// re-implemented here. Passes BigCrush; 2^256-1 period.
class Rng {
 public:
  /// Seeds the state from a single 64-bit value via splitmix64, so any seed
  /// (including 0) yields a well-mixed state.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_index(std::uint64_t n);

  /// Standard normal deviate (Box–Muller, cached pair).
  double normal();

  /// Normal deviate with the given mean and standard deviation.
  double normal(double mean, double sigma);

  /// Bernoulli draw with probability p of true.
  bool bernoulli(double p);

  /// Creates an independent child generator (jump-free stream split via
  /// reseeding from this stream; adequate for our MC workloads). Advances
  /// this generator.
  Rng split();

  /// Derives an independent child stream from the current state and a
  /// stream index (splitmix-style remix), WITHOUT advancing this generator.
  /// fork(i) is a pure function of (state, i): the same parent state always
  /// yields the same child, and distinct indices yield decorrelated
  /// streams. This is what makes parallel per-tile / per-trial sampling
  /// bit-identical to the serial order regardless of thread count.
  Rng fork(std::uint64_t stream) const;

  /// Fisher–Yates shuffle of an index vector [0, n).
  std::vector<std::size_t> permutation(std::size_t n);

 private:
  std::uint64_t s_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace ecms
