// Minimal leveled logger.
//
// The solvers log convergence diagnostics at Debug; benches and examples run
// at Info by default. A global level keeps the hot paths cheap (a single
// comparison when disabled).
#pragma once

#include <sstream>
#include <string>

namespace ecms {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log level (defaults to kWarn so library users are quiet by default).
LogLevel log_level();
void set_log_level(LogLevel level);

namespace detail {
void log_emit(LogLevel level, const std::string& msg);
}

/// Streams a log line if `level` is enabled. Usage:
///   ECMS_LOG(LogLevel::kInfo) << "converged in " << iters << " iters";
#define ECMS_LOG(level)                            \
  if ((level) < ::ecms::log_level()) {             \
  } else                                           \
    ::ecms::detail::LogLine(level)

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_emit(level_, os_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace ecms
