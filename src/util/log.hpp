// Minimal leveled logger with a pluggable, obs-aware sink.
//
// The solvers log convergence diagnostics at Debug; benches and examples run
// at Info by default. A global level keeps the hot paths cheap (a single
// comparison when disabled). The default sink writes to std::clog and, when
// a trace is being collected, stamps each line with the innermost open span
// id (obs::current_span_id()) so log output can be correlated with the
// Chrome trace timeline.
#pragma once

#include <functional>
#include <sstream>
#include <string>

namespace ecms {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log level (defaults to kWarn so library users are quiet by default).
LogLevel log_level();
void set_log_level(LogLevel level);

/// Parses "debug" / "info" / "warn" / "error" / "off" (case-sensitive).
/// Returns false and leaves `out` untouched on an unknown name.
bool parse_log_level(const std::string& name, LogLevel& out);

const char* log_level_name(LogLevel level);

/// Receives every emitted line (level filtering already applied). The raw
/// message is passed; decoration (level tag, span id) is the sink's job.
using LogSink = std::function<void(LogLevel, const std::string&)>;

/// Installs a sink; an empty function restores the default clog sink.
/// Sinks may be called from worker threads concurrently and must be
/// thread-safe.
void set_log_sink(LogSink sink);

namespace detail {
void log_emit(LogLevel level, const std::string& msg);
}

/// Streams a log line if `level` is enabled. Usage:
///   ECMS_LOG(LogLevel::kInfo) << "converged in " << iters << " iters";
#define ECMS_LOG(level)                            \
  if ((level) < ::ecms::log_level()) {             \
  } else                                           \
    ::ecms::detail::LogLine(level)

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_emit(level_, os_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace ecms
