#include "util/table.hpp"

#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/error.hpp"
#include "util/fileio.hpp"

namespace ecms {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  ECMS_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  ECMS_REQUIRE(cells.size() == headers_.size(),
               "row arity does not match headers");
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::num(long long v) { return std::to_string(v); }

const std::string& Table::cell(std::size_t r, std::size_t c) const {
  ECMS_REQUIRE(r < rows_.size() && c < headers_.size(), "cell out of range");
  return rows_[r][c];
}

namespace {
std::vector<std::size_t> column_widths(
    const std::vector<std::string>& headers,
    const std::vector<std::vector<std::string>>& rows) {
  std::vector<std::size_t> w(headers.size());
  for (std::size_t c = 0; c < headers.size(); ++c) w[c] = headers[c].size();
  for (const auto& row : rows)
    for (std::size_t c = 0; c < row.size(); ++c)
      w[c] = std::max(w[c], row[c].size());
  return w;
}

std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char ch : s) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

std::string Table::to_text() const {
  const auto w = column_widths(headers_, rows_);
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(w[c]) + 2) << row[c];
    }
    os << '\n';
  };
  emit_row(headers_);
  std::string rule;
  for (std::size_t c = 0; c < headers_.size(); ++c)
    rule += std::string(w[c], '-') + "  ";
  os << rule << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string Table::to_markdown() const {
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (const auto& cell : row) os << ' ' << cell << " |";
    os << '\n';
  };
  emit_row(headers_);
  os << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) os << "---|";
  os << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string Table::to_csv() const {
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << csv_escape(row[c]);
    }
    os << '\n';
  };
  emit_row(headers_);
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

void Table::write_csv(const std::string& path) const {
  util::atomic_write_file(path, to_csv());
}

std::ostream& operator<<(std::ostream& os, const Table& t) {
  return os << t.to_text();
}

}  // namespace ecms
