// Fixed-size worker pool for the embarrassingly parallel array-scale paths
// (tiled bitmap extraction, Monte-Carlo lots, BISR yield trials).
//
// Design constraints:
//   * Determinism is the caller's contract: parallel_for hands out index
//     ranges, and every ecms workload derives its randomness from the item
//     index (Rng::fork), so results are bit-identical at any worker count.
//   * Exceptions thrown by the body are captured and rethrown on the calling
//     thread (first one wins; remaining chunks are abandoned).
//   * The calling thread participates in the work, so a pool is never
//     dead-locked by its own parallel_for and a 1-worker pool still makes
//     progress while the queue is busy.
//
// parallel_for must not be called from inside a pool task (no nesting).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ecms::util {

class ThreadPool {
 public:
  /// Spawns `workers` threads; 0 means std::thread::hardware_concurrency()
  /// (at least 1).
  explicit ThreadPool(std::size_t workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t worker_count() const { return threads_.size(); }

  /// Runs fn(i) for every i in [0, n), handing out `chunk`-sized index
  /// ranges to the workers (and to the calling thread). Blocks until all
  /// items are done; rethrows the first exception any item threw.
  void parallel_for(std::size_t n, std::size_t chunk,
                    const std::function<void(std::size_t)>& fn);

  /// Serial-by-default entry point used by library call sites: runs the
  /// loop inline (in index order) when pool is null, on the pool otherwise.
  static void run(ThreadPool* pool, std::size_t n, std::size_t chunk,
                  const std::function<void(std::size_t)>& fn);

 private:
  void submit(std::function<void()> job);
  void worker_loop();

  std::vector<std::thread> threads_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace ecms::util
