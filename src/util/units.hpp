// SI unit literals and physical constants used across the library.
//
// All internal quantities are plain `double` in base SI units (volts, amps,
// farads, seconds, meters). The literals below exist so that source code can
// say `30_fF` or `10_ns` instead of magic exponents.
#pragma once

namespace ecms {

/// Physical constants (SI).
namespace phys {
inline constexpr double kBoltzmann = 1.380649e-23;  ///< J/K
inline constexpr double kElectronCharge = 1.602176634e-19;  ///< C
inline constexpr double kEps0 = 8.8541878128e-12;  ///< F/m
inline constexpr double kEpsSiO2 = 3.9;  ///< relative permittivity of SiO2
inline constexpr double kRoomTempK = 300.0;  ///< default simulation temp (K)

/// Thermal voltage kT/q at temperature `temp_k`.
constexpr double thermal_voltage(double temp_k) {
  return kBoltzmann * temp_k / kElectronCharge;
}
}  // namespace phys

inline namespace literals {

// --- capacitance ---
constexpr double operator""_F(long double v) { return static_cast<double>(v); }
constexpr double operator""_pF(long double v) { return static_cast<double>(v) * 1e-12; }
constexpr double operator""_fF(long double v) { return static_cast<double>(v) * 1e-15; }
constexpr double operator""_pF(unsigned long long v) { return static_cast<double>(v) * 1e-12; }
constexpr double operator""_fF(unsigned long long v) { return static_cast<double>(v) * 1e-15; }

// --- time ---
constexpr double operator""_s(long double v) { return static_cast<double>(v); }
constexpr double operator""_ms(long double v) { return static_cast<double>(v) * 1e-3; }
constexpr double operator""_us(long double v) { return static_cast<double>(v) * 1e-6; }
constexpr double operator""_ns(long double v) { return static_cast<double>(v) * 1e-9; }
constexpr double operator""_ps(long double v) { return static_cast<double>(v) * 1e-12; }
constexpr double operator""_ms(unsigned long long v) { return static_cast<double>(v) * 1e-3; }
constexpr double operator""_us(unsigned long long v) { return static_cast<double>(v) * 1e-6; }
constexpr double operator""_ns(unsigned long long v) { return static_cast<double>(v) * 1e-9; }
constexpr double operator""_ps(unsigned long long v) { return static_cast<double>(v) * 1e-12; }

// --- voltage ---
constexpr double operator""_V(long double v) { return static_cast<double>(v); }
constexpr double operator""_mV(long double v) { return static_cast<double>(v) * 1e-3; }
constexpr double operator""_V(unsigned long long v) { return static_cast<double>(v); }
constexpr double operator""_mV(unsigned long long v) { return static_cast<double>(v) * 1e-3; }

// --- current ---
constexpr double operator""_A(long double v) { return static_cast<double>(v); }
constexpr double operator""_mA(long double v) { return static_cast<double>(v) * 1e-3; }
constexpr double operator""_uA(long double v) { return static_cast<double>(v) * 1e-6; }
constexpr double operator""_nA(long double v) { return static_cast<double>(v) * 1e-9; }
constexpr double operator""_pA(long double v) { return static_cast<double>(v) * 1e-12; }
constexpr double operator""_uA(unsigned long long v) { return static_cast<double>(v) * 1e-6; }
constexpr double operator""_nA(unsigned long long v) { return static_cast<double>(v) * 1e-9; }
constexpr double operator""_pA(unsigned long long v) { return static_cast<double>(v) * 1e-12; }

// --- resistance ---
constexpr double operator""_Ohm(long double v) { return static_cast<double>(v); }
constexpr double operator""_kOhm(long double v) { return static_cast<double>(v) * 1e3; }
constexpr double operator""_MOhm(long double v) { return static_cast<double>(v) * 1e6; }
constexpr double operator""_Ohm(unsigned long long v) { return static_cast<double>(v); }
constexpr double operator""_kOhm(unsigned long long v) { return static_cast<double>(v) * 1e3; }
constexpr double operator""_MOhm(unsigned long long v) { return static_cast<double>(v) * 1e6; }

// --- length ---
constexpr double operator""_m(long double v) { return static_cast<double>(v); }
constexpr double operator""_um(long double v) { return static_cast<double>(v) * 1e-6; }
constexpr double operator""_nm(long double v) { return static_cast<double>(v) * 1e-9; }
constexpr double operator""_um(unsigned long long v) { return static_cast<double>(v) * 1e-6; }
constexpr double operator""_nm(unsigned long long v) { return static_cast<double>(v) * 1e-9; }

}  // namespace literals

/// Convert to display units (used by reports; keeps magic numbers out of call
/// sites).
namespace to_unit {
constexpr double fF(double farads) { return farads * 1e15; }
constexpr double pF(double farads) { return farads * 1e12; }
constexpr double ns(double seconds) { return seconds * 1e9; }
constexpr double ps(double seconds) { return seconds * 1e12; }
constexpr double uA(double amps) { return amps * 1e6; }
constexpr double nA(double amps) { return amps * 1e9; }
constexpr double mV(double volts) { return volts * 1e3; }
constexpr double um(double meters) { return meters * 1e6; }
}  // namespace to_unit

}  // namespace ecms
