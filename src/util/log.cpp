#include "util/log.hpp"

#include <atomic>
#include <iostream>
#include <memory>
#include <mutex>

#include "obs/trace.hpp"

namespace ecms {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};

// The installed sink, shared_ptr-swapped under a mutex so a worker thread
// mid-emit keeps a valid callable even if another thread replaces the sink.
std::mutex g_sink_mutex;
std::shared_ptr<const LogSink> g_sink;

void default_sink(LogLevel level, const std::string& msg) {
  // Stamp the innermost open span so a log line can be located on the
  // Chrome trace timeline (0 = no span / tracing off).
  const std::uint64_t span = obs::current_span_id();
  std::ostringstream line;
  line << "[ecms " << log_level_name(level);
  if (span != 0) line << " span=" << span;
  line << "] " << msg << '\n';
  std::clog << line.str();
}
}  // namespace

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

bool parse_log_level(const std::string& name, LogLevel& out) {
  if (name == "debug") out = LogLevel::kDebug;
  else if (name == "info") out = LogLevel::kInfo;
  else if (name == "warn") out = LogLevel::kWarn;
  else if (name == "error") out = LogLevel::kError;
  else if (name == "off") out = LogLevel::kOff;
  else return false;
  return true;
}

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF  ";
  }
  return "?";
}

void set_log_sink(LogSink sink) {
  const std::lock_guard<std::mutex> lock(g_sink_mutex);
  if (sink) {
    g_sink = std::make_shared<const LogSink>(std::move(sink));
  } else {
    g_sink.reset();
  }
}

namespace detail {
void log_emit(LogLevel level, const std::string& msg) {
  std::shared_ptr<const LogSink> sink;
  {
    const std::lock_guard<std::mutex> lock(g_sink_mutex);
    sink = g_sink;
  }
  if (sink) {
    (*sink)(level, msg);
  } else {
    default_sink(level, msg);
  }
}
}  // namespace detail

}  // namespace ecms
