// Error handling for the ecms library.
//
// The library throws `ecms::Error` for precondition violations and solver
// failures. `ECMS_REQUIRE` is the standard precondition check used at public
// API boundaries (always on — these guard user input, not internal bugs).
#pragma once

#include <stdexcept>
#include <string>

namespace ecms {

/// Base exception for all ecms library failures.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a netlist is malformed (dangling node, duplicate name, ...).
class NetlistError : public Error {
 public:
  explicit NetlistError(const std::string& what) : Error(what) {}
};

/// Thrown when a numerical solve fails (singular matrix, Newton divergence).
class SolverError : public Error {
 public:
  explicit SolverError(const std::string& what) : Error(what) {}
};

/// Thrown when a measurement / extraction cannot be interpreted.
class MeasureError : public Error {
 public:
  explicit MeasureError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] inline void require_failed(const char* expr, const char* file,
                                        int line, const std::string& msg) {
  throw Error(std::string("requirement failed: ") + expr + " at " + file +
              ":" + std::to_string(line) + (msg.empty() ? "" : ": " + msg));
}
}  // namespace detail

}  // namespace ecms

/// Precondition check at API boundaries; throws ecms::Error on failure.
#define ECMS_REQUIRE(expr, msg)                                         \
  do {                                                                  \
    if (!(expr)) {                                                      \
      ::ecms::detail::require_failed(#expr, __FILE__, __LINE__, (msg)); \
    }                                                                   \
  } while (false)
