// Error handling for the ecms library.
//
// The library throws `ecms::Error` for precondition violations and solver
// failures. `ECMS_REQUIRE` is the standard precondition check used at public
// API boundaries (always on — these guard user input, not internal bugs).
#pragma once

#include <cstddef>
#include <optional>
#include <stdexcept>
#include <string>

namespace ecms {

/// Base exception for all ecms library failures.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a netlist is malformed (dangling node, duplicate name, ...).
class NetlistError : public Error {
 public:
  explicit NetlistError(const std::string& what) : Error(what) {}
};

/// Structured post-mortem of a failed numerical solve, carried by
/// SolverError so callers (the recovery ladder, per-cell degradation, the
/// CLI failure report) can act on *why* the solve died instead of parsing
/// the message. Fields default to "unknown" so partially filled diagnostics
/// from any solver stage stay meaningful.
struct SolverDiagnostics {
  double time = -1.0;          ///< failing time point (s); -1 = DC / unknown
  double dt = 0.0;             ///< last attempted step size (s)
  double last_delta = 0.0;     ///< max-norm of the last Newton voltage update
  std::string worst_node;      ///< node with the largest last update, if known
  std::size_t accepted_steps = 0;
  std::size_t rejected_steps = 0;
  std::size_t newton_iterations = 0;  ///< total Newton iterations spent
};

/// Thrown when a numerical solve fails (singular matrix, Newton divergence).
/// Terminal solver failures attach SolverDiagnostics describing the state at
/// the point of no return.
class SolverError : public Error {
 public:
  explicit SolverError(const std::string& what) : Error(what) {}
  SolverError(const std::string& what, SolverDiagnostics diag)
      : Error(what), diag_(std::move(diag)) {}

  const std::optional<SolverDiagnostics>& diagnostics() const { return diag_; }

 private:
  std::optional<SolverDiagnostics> diag_;
};

/// Thrown when a measurement / extraction cannot be interpreted.
class MeasureError : public Error {
 public:
  explicit MeasureError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] inline void require_failed(const char* expr, const char* file,
                                        int line, const std::string& msg) {
  throw Error(std::string("requirement failed: ") + expr + " at " + file +
              ":" + std::to_string(line) + (msg.empty() ? "" : ": " + msg));
}
}  // namespace detail

}  // namespace ecms

/// Precondition check at API boundaries; throws ecms::Error on failure.
#define ECMS_REQUIRE(expr, msg)                                         \
  do {                                                                  \
    if (!(expr)) {                                                      \
      ::ecms::detail::require_failed(#expr, __FILE__, __LINE__, (msg)); \
    }                                                                   \
  } while (false)
