#include "util/ascii_plot.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

#include "util/error.hpp"

namespace ecms {

LinePlot::LinePlot(PlotOptions opts) : opts_(opts) {
  ECMS_REQUIRE(opts_.width >= 16 && opts_.height >= 4,
               "plot area too small to be legible");
}

void LinePlot::add_series(const std::string& name, std::span<const double> xs,
                          std::span<const double> ys) {
  ECMS_REQUIRE(xs.size() == ys.size() && !xs.empty(),
               "series must be equal-length and non-empty");
  Series s;
  s.name = name;
  s.xs.assign(xs.begin(), xs.end());
  s.ys.assign(ys.begin(), ys.end());
  series_.push_back(std::move(s));
}

void LinePlot::set_x_range(double lo, double hi) {
  ECMS_REQUIRE(hi > lo, "x range must be non-degenerate");
  has_x_range_ = true;
  x_lo_ = lo;
  x_hi_ = hi;
}

void LinePlot::set_y_range(double lo, double hi) {
  ECMS_REQUIRE(hi > lo, "y range must be non-degenerate");
  has_y_range_ = true;
  y_lo_ = lo;
  y_hi_ = hi;
}

std::string LinePlot::render() const {
  if (series_.empty()) return "(empty plot)\n";
  double xlo = x_lo_, xhi = x_hi_, ylo = y_lo_, yhi = y_hi_;
  if (!has_x_range_ || !has_y_range_) {
    double axlo = series_[0].xs[0], axhi = axlo;
    double aylo = series_[0].ys[0], ayhi = aylo;
    for (const auto& s : series_) {
      for (double x : s.xs) {
        axlo = std::min(axlo, x);
        axhi = std::max(axhi, x);
      }
      for (double y : s.ys) {
        aylo = std::min(aylo, y);
        ayhi = std::max(ayhi, y);
      }
    }
    if (axhi == axlo) axhi = axlo + 1.0;
    if (ayhi == aylo) ayhi = aylo + 1.0;
    if (!has_x_range_) {
      xlo = axlo;
      xhi = axhi;
    }
    if (!has_y_range_) {
      // 5% headroom so extremes do not sit on the frame.
      const double pad = 0.05 * (ayhi - aylo);
      ylo = aylo - pad;
      yhi = ayhi + pad;
    }
  }

  const std::size_t W = opts_.width, H = opts_.height;
  std::vector<std::string> canvas(H, std::string(W, ' '));
  static constexpr char kGlyphs[] = {'*', '+', 'o', 'x', '#'};

  for (std::size_t si = 0; si < series_.size(); ++si) {
    const auto& s = series_[si];
    const char g = kGlyphs[si % sizeof(kGlyphs)];
    for (std::size_t i = 0; i < s.xs.size(); ++i) {
      const double fx = (s.xs[i] - xlo) / (xhi - xlo);
      const double fy = (s.ys[i] - ylo) / (yhi - ylo);
      if (fx < 0 || fx > 1 || fy < 0 || fy > 1) continue;
      auto cx = static_cast<std::size_t>(
          std::min(fx * static_cast<double>(W), static_cast<double>(W - 1)));
      auto cy = static_cast<std::size_t>(
          std::min(fy * static_cast<double>(H), static_cast<double>(H - 1)));
      canvas[H - 1 - cy][cx] = g;
    }
  }

  std::ostringstream os;
  os << std::setprecision(4);
  if (!opts_.y_label.empty()) os << opts_.y_label << '\n';
  for (std::size_t r = 0; r < H; ++r) {
    if (opts_.show_axes) {
      if (r == 0)
        os << std::setw(10) << yhi << " |";
      else if (r == H - 1)
        os << std::setw(10) << ylo << " |";
      else
        os << std::string(10, ' ') << " |";
    }
    os << canvas[r] << '\n';
  }
  if (opts_.show_axes) {
    os << std::string(11, ' ') << '+' << std::string(W, '-') << '\n';
    os << std::string(11, ' ') << ' ' << xlo << " ... " << xhi;
    if (!opts_.x_label.empty()) os << "  (" << opts_.x_label << ")";
    os << '\n';
  }
  // Legend.
  for (std::size_t si = 0; si < series_.size(); ++si)
    os << "  " << kGlyphs[si % sizeof(kGlyphs)] << " = " << series_[si].name
       << '\n';
  return os.str();
}

std::string render_heatmap(std::span<const double> values, std::size_t rows,
                           std::size_t cols, double lo, double hi) {
  ECMS_REQUIRE(values.size() == rows * cols, "heatmap size mismatch");
  ECMS_REQUIRE(hi > lo, "heatmap range must be non-degenerate");
  static constexpr const char* kRamp = " .:-=+*#%@";
  static constexpr std::size_t kLevels = 10;
  std::string out;
  out.reserve(rows * (cols + 1));
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      const double v = values[r * cols + c];
      if (std::isnan(v)) {
        out += '?';
        continue;
      }
      const double t = std::clamp((v - lo) / (hi - lo), 0.0, 1.0);
      auto idx = static_cast<std::size_t>(t * static_cast<double>(kLevels));
      idx = std::min(idx, kLevels - 1);
      out += kRamp[idx];
    }
    out += '\n';
  }
  return out;
}

std::string render_charmap(std::span<const char> cells, std::size_t rows,
                           std::size_t cols) {
  ECMS_REQUIRE(cells.size() == rows * cols, "charmap size mismatch");
  std::string out;
  out.reserve(rows * (cols + 1));
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) out += cells[r * cols + c];
    out += '\n';
  }
  return out;
}

}  // namespace ecms
