#include "util/threadpool.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <memory>

#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace ecms::util {

ThreadPool::ThreadPool(std::size_t workers) {
  if (workers == 0) {
    workers = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::submit(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lk(mutex_);
    queue_.push_back(std::move(job));
    // Queue depth sampled at enqueue time (the max is the interesting part:
    // a deep queue means the pool is saturated and tasks are waiting).
    ECMS_METRIC_GAUGE_SET("util.pool.queue_depth", queue_.size());
  }
  ECMS_METRIC_COUNT("util.pool.tasks_submitted", 1);
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lk(mutex_);
      cv_.wait(lk, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      job = std::move(queue_.front());
      queue_.pop_front();
      ECMS_METRIC_GAUGE_SET("util.pool.queue_depth", queue_.size());
    }
    // Clock reads are paid only when metrics are on (overhead contract).
    if (obs::metrics_enabled()) {
      const auto t0 = std::chrono::steady_clock::now();
      job();
      const double s = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
      ECMS_METRIC_OBSERVE("util.pool.task_seconds", s);
      ECMS_METRIC_COUNT("util.pool.tasks_executed", 1);
    } else {
      job();
    }
  }
}

namespace {

// Shared loop state: workers (and the caller) claim chunks from `next`
// until the range is exhausted or an item threw.
struct ForState {
  std::atomic<std::size_t> next{0};
  std::size_t n = 0;
  std::size_t chunk = 1;
  const std::function<void(std::size_t)>* fn = nullptr;
  std::mutex m;
  std::condition_variable done_cv;
  std::size_t pending = 0;
  std::exception_ptr error;

  void drain() {
    for (;;) {
      const std::size_t begin = next.fetch_add(chunk);
      if (begin >= n) return;
      const std::size_t end = std::min(begin + chunk, n);
      try {
        for (std::size_t i = begin; i < end; ++i) (*fn)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lk(m);
        if (!error) error = std::current_exception();
        next.store(n);  // abandon the remaining chunks
        return;
      }
    }
  }
};

}  // namespace

void ThreadPool::parallel_for(std::size_t n, std::size_t chunk,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  ECMS_REQUIRE(chunk > 0, "parallel_for needs a positive chunk size");
  ECMS_METRIC_COUNT("util.pool.parallel_for_calls", 1);
  ECMS_METRIC_COUNT("util.pool.items", n);
  ECMS_METRIC_GAUGE_SET("util.pool.workers", threads_.size());

  auto state = std::make_shared<ForState>();
  state->n = n;
  state->chunk = chunk;
  state->fn = &fn;

  const std::size_t total_chunks = (n + chunk - 1) / chunk;
  // The caller drains too, so at most total_chunks - 1 helpers are useful.
  const std::size_t helpers =
      std::min(threads_.size(), total_chunks > 0 ? total_chunks - 1 : 0);
  {
    std::lock_guard<std::mutex> lk(state->m);
    state->pending = helpers;
  }
  for (std::size_t i = 0; i < helpers; ++i) {
    submit([state] {
      state->drain();
      std::lock_guard<std::mutex> lk(state->m);
      if (--state->pending == 0) state->done_cv.notify_all();
    });
  }

  state->drain();

  std::unique_lock<std::mutex> lk(state->m);
  state->done_cv.wait(lk, [&] { return state->pending == 0; });
  if (state->error) std::rethrow_exception(state->error);
}

void ThreadPool::run(ThreadPool* pool, std::size_t n, std::size_t chunk,
                     const std::function<void(std::size_t)>& fn) {
  if (pool == nullptr || pool->worker_count() <= 1) {
    ECMS_REQUIRE(chunk > 0 || n == 0, "parallel_for needs a positive chunk size");
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  pool->parallel_for(n, chunk, fn);
}

}  // namespace ecms::util
