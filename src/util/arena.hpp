// Bump-arena allocator for per-solve scratch.
//
// A Newton solve allocates the same handful of buffers (rhs, iterate,
// refactor scatter vector, permuted-rhs scratch) thousands of times per
// array run when every transient call builds its own workspace. The Arena
// turns those into pointer bumps against one owned block: a workspace binds
// its buffers to its arena once per (re)bind, carves what it needs, and
// reset() recycles the whole block for the next binding instead of going
// back to the heap.
//
// Contracts:
//   * Trivial element types only (the arena never runs constructors or
//     destructors; ArenaBuf enforces this with a static_assert).
//   * reset() invalidates every span carved since the previous reset.
//     ArenaBuf owners must resize()/assign() again after a reset before
//     touching their data — NewtonWorkspace::prepare() is the only reset
//     site in the solver and re-carves all of its buffers right after.
//   * Not thread-safe. One arena per workspace, one workspace per thread —
//     the same ownership rule the solver caches already follow.
//
// Metrics (enabled-path only): util.arena.bytes (gauge, block bytes owned
// at reset; max tracks the process high-water) and util.arena.resets
// (counter).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

namespace ecms::util {

class Arena {
 public:
  Arena() = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Carves `bytes` aligned to `align` (power of two). Grows by chaining a
  /// new block when the current one is exhausted; reset() coalesces the
  /// chain so steady state is a single block and zero heap traffic.
  std::byte* allocate(std::size_t bytes,
                      std::size_t align = alignof(std::max_align_t));

  /// Typed carve; contents are uninitialized.
  template <typename T>
  std::span<T> allocate_span(std::size_t count) {
    static_assert(std::is_trivially_default_constructible_v<T> &&
                      std::is_trivially_destructible_v<T>,
                  "arena storage never runs ctors/dtors");
    return {reinterpret_cast<T*>(allocate(count * sizeof(T), alignof(T))),
            count};
  }

  /// Recycles all carved storage (O(1) unless coalescing a growth chain).
  /// Every span handed out since the last reset is invalidated.
  void reset();

  /// Bytes owned across all blocks.
  std::size_t capacity() const;
  /// Bytes carved since the last reset (alignment padding included).
  std::size_t bytes_in_use() const { return in_use_; }
  std::uint64_t resets() const { return resets_; }

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  void grow(std::size_t min_bytes);

  std::vector<Block> blocks_;
  std::size_t cursor_ = 0;  // offset into blocks_.back()
  std::size_t in_use_ = 0;
  std::uint64_t resets_ = 0;
};

/// A sized view into arena storage with a std::vector fallback when no
/// arena is bound. Grow-only capacity within one arena generation: shrink
/// and regrow inside the high-water mark never re-carves, so per-iteration
/// resize() calls in the solve loop are free.
template <typename T>
class ArenaBuf {
 public:
  /// Binds (or unbinds, with nullptr) the backing arena and drops the
  /// current contents. Call after every Arena::reset().
  void bind(Arena* arena) {
    arena_ = arena;
    base_ = nullptr;
    cap_ = 0;
    size_ = 0;
    fallback_.clear();
  }

  /// Resizes to `n` elements; newly exposed elements are unspecified.
  void resize(std::size_t n) {
    if (n > cap_) {
      if (arena_ != nullptr) {
        base_ = arena_->allocate_span<T>(n).data();
      } else {
        fallback_.resize(n);
        base_ = fallback_.data();
      }
      cap_ = n;
    }
    size_ = n;
  }

  void assign(std::size_t n, const T& value) {
    resize(n);
    for (std::size_t i = 0; i < size_; ++i) base_[i] = value;
  }

  void copy_from(std::span<const T> src) {
    resize(src.size());
    for (std::size_t i = 0; i < size_; ++i) base_[i] = src[i];
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  T* data() { return base_; }
  const T* data() const { return base_; }
  T& operator[](std::size_t i) { return base_[i]; }
  const T& operator[](std::size_t i) const { return base_[i]; }
  T* begin() { return base_; }
  T* end() { return base_ + size_; }
  const T* begin() const { return base_; }
  const T* end() const { return base_ + size_; }

  std::span<T> span() { return {base_, size_}; }
  std::span<const T> span() const { return {base_, size_}; }
  operator std::span<T>() { return span(); }
  operator std::span<const T>() const { return span(); }

 private:
  static_assert(std::is_trivially_copyable_v<T>,
                "ArenaBuf elements must be trivially copyable");
  Arena* arena_ = nullptr;
  std::vector<T> fallback_;
  T* base_ = nullptr;
  std::size_t cap_ = 0;
  std::size_t size_ = 0;
};

}  // namespace ecms::util
