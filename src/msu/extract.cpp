#include "msu/extract.hpp"

#include <algorithm>
#include <cmath>

#include "msu/batch_extract.hpp"

#include "circuit/mosfet.hpp"
#include "circuit/sources.hpp"
#include "edram/netlister.hpp"
#include "msu/fastmodel.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace ecms::msu {

namespace {

// Accepted steps recorded in `trace` up to and including time `t` (the
// t = 0 sample is not a step). Valid because the solver records exactly one
// sample per accepted step.
std::size_t steps_until(const circuit::Trace& trace, double t) {
  const auto& ts = trace.times();
  const auto n = static_cast<std::size_t>(
      std::upper_bound(ts.begin(), ts.end(), t + 1e-15) - ts.begin());
  return n > 0 ? n - 1 : 0;
}

// Runs the adaptive scheduler for one cell: charge/share prefix once with a
// checkpoint at the ramp start, then binary-search "has OUT flipped by the
// end of ramp level k" over checkpoint restarts that lazily extend the
// simulated staircase, stopping at the flip. Returns true with `res` fully
// decided, or false with `why` set — in which case the caller runs the
// exhaustive ramp and `res` is left untouched except for the accumulated
// adaptive probe count.
bool try_adaptive(circuit::Circuit& ckt, const edram::MacroCell& mc,
                  const StructureNet& msu_net, const StructureParams& params,
                  const MeasurementTiming& timing,
                  const ExtractOptions& options, ExtractionResult& res,
                  std::string& why) {
  obs::ScopedSpan span("adaptive_extract");
  const Schedule& s = res.schedule;
  const double vdd = mc.tech().vdd;

  // Steps 1-4 once, snapshotting the solver where the ramp would begin.
  circuit::TranParams tp;
  tp.t_stop = s.t_ramp_start;
  tp.dt = options.dt;
  tp.newton = options.newton;
  tp.uic = true;
  tp.checkpoint_at = s.t_ramp_start;
  circuit::ProbeSet probes;
  probes.nodes = {"plate", "msu_vgs", "msu_sense", "msu_out"};
  probes.device_currents = {msu_net.irefp_source};

  circuit::TranResult pre;
  try {
    pre = circuit::transient(ckt, tp, probes);
  } catch (const SolverError&) {
    why = "prefix transient did not converge (recovery ladder takes over)";
    return false;
  }

  const double vdd_half = vdd / 2.0;
  if (pre.trace.final_value("msu_out") > vdd_half) {
    why = "OUT already high before the ramp (monotone threshold violated)";
    return false;
  }

  res.prefix_steps = pre.stats.accepted_steps;
  res.stats = pre.stats;
  res.v_plate_charged = pre.trace.value_at("plate", s.t_charge_end);
  res.vgs_shared = pre.trace.value_at("msu_vgs", s.t_ramp_start - 0.2e-9);

  // Model-guided first guess: the reference transistor sinks
  // mos_ids(vgs_shared) — the flip boundary sits where k * delta_i crosses
  // it. The guess only seeds the search; correctness never depends on it.
  const circuit::MosParams ref_params =
      mc.tech().nmos(params.ref_w, params.ref_l);
  const double i_sink =
      circuit::mos_ids(ref_params, std::max(res.vgs_shared, 0.0), vdd_half);
  const int guess = std::clamp(
      static_cast<int>(std::floor(i_sink / res.delta_i)), 0, s.ramp_steps);
  res.adaptive.guess = guess;

  const double step_duration = timing.step / static_cast<double>(s.ramp_steps);
  circuit::ProbeSet out_probe;
  out_probe.nodes = {"msu_out"};

  // The staircase is never reprogrammed: each restart resumes it from the
  // last snapshot, so the chained trajectory is bit-identical to the
  // uninterrupted exhaustive run (the checkpoint contract) and the flip
  // time feeds the exact same decode. The code is path-dependent — the
  // sense node integrates charge while ramping through sub-threshold
  // levels — which is why a held-level probe cannot stand in for the ramp.
  circuit::SolverCheckpoint at = std::move(pre.checkpoint);
  std::optional<double> t_flip;
  int level_done = 0;

  auto extend_to = [&](double target) {
    circuit::TranParams pp = tp;
    pp.t_stop = target;
    pp.checkpoint_at = target;
    circuit::TranResult tr = circuit::transient_resume(ckt, at, pp, out_probe);
    res.stats.accepted_steps += tr.stats.accepted_steps;
    res.stats.rejected_steps += tr.stats.rejected_steps;
    res.stats.newton_iterations += tr.stats.newton_iterations;
    if (!t_flip) {
      t_flip = circuit::first_crossing(tr.trace, "msu_out", vdd_half,
                                       circuit::Edge::kRising);
    }
    at = std::move(tr.checkpoint);
  };

  // probe(k): has OUT flipped by the end of ramp level k's dwell? Extends
  // the simulated staircase one level-restart at a time and stops the
  // moment the flip appears; levels at or below the deepest one already
  // simulated are answered from the recorded trajectory for free.
  auto probe = [&](int k) {
    obs::ScopedSpan probe_span("adaptive_probe");
    probe_span.arg("level", static_cast<double>(k));
    ++res.adaptive.probes;
    while (!t_flip && level_done < k) {
      ++level_done;
      extend_to(s.t_ramp_start +
                static_cast<double>(level_done) * step_duration);
    }
    return t_flip.has_value() &&
           *t_flip <= s.t_ramp_start +
                          static_cast<double>(k) * step_duration + 1e-15;
  };

  int bracket = -1;
  try {
    bracket = schedule_ramp_search(s.ramp_steps, guess,
                                   options.adaptive.max_probes, probe);
    if (bracket >= 0 && !t_flip) {
      // No flip during the staircase proper: run the tail so a late flip
      // (or full-scale code) decodes exactly as the exhaustive run would.
      extend_to(s.t_end);
    }
  } catch (const SolverError&) {
    why = "probe transient did not converge";
    return false;
  }
  if (bracket < 0) {
    why = "probe budget exhausted before the bracket closed";
    return false;
  }

  res.code = t_flip.has_value() ? s.code_of_flip_time(*t_flip)
                                : s.code_no_flip();
  res.t_out_rise = t_flip;
  res.status = CellStatus::kOk;
  res.adaptive.used = true;
  ECMS_METRIC_COUNT("msu.adaptive.cells", 1);
  ECMS_METRIC_COUNT("msu.adaptive.probes", res.adaptive.probes);
  ECMS_METRIC_OBSERVE("msu.adaptive.probes_per_cell",
                      static_cast<double>(res.adaptive.probes));
  if (options.record_trace) res.trace = std::move(pre.trace);
  return true;
}

}  // namespace

ExtractionResult extract_cell(const edram::MacroCell& mc, std::size_t row,
                              std::size_t col, const StructureParams& params,
                              const MeasurementTiming& timing,
                              const ExtractOptions& options) {
  ECMS_REQUIRE(row < mc.rows() && col < mc.cols(), "target cell out of range");
  obs::ScopedSpan span("extract_cell");
  span.arg("row", static_cast<double>(row));
  span.arg("col", static_cast<double>(col));

  circuit::Circuit ckt;
  const edram::ArrayNet array = edram::build_array(ckt, mc);
  const StructureNet msu =
      build_structure(ckt, array.plate, mc.tech(), params);

  double delta_i = options.delta_i;
  if (delta_i <= 0.0) {
    const FastModel design(mc, params);
    delta_i = design.delta_i();
  }
  ExtractionResult res;
  res.delta_i = delta_i;
  res.schedule = program_measurement(ckt, array, msu, mc, row, col, delta_i,
                                     params, timing);

  if (options.adaptive.enabled) {
    res.adaptive.attempted = true;
    std::string why;
    if (options.newton.hooks != nullptr) {
      why = "fault injection armed for this cell";
    } else if (try_adaptive(ckt, mc, msu, params, timing, options, res, why)) {
      ECMS_LOG(LogLevel::kDebug)
          << "extract (" << row << "," << col << "): code=" << res.code
          << " adaptive probes=" << res.adaptive.probes
          << " steps=" << res.stats.accepted_steps;
      ECMS_METRIC_COUNT("msu.cells.ok", 1);
      return res;
    }
    res.adaptive.used = false;
    res.adaptive.fell_back = true;
    res.adaptive.fallback_reason = why;
    ECMS_METRIC_COUNT("msu.adaptive.fallbacks", 1);
    ECMS_LOG(LogLevel::kDebug) << "extract (" << row << "," << col
                               << "): adaptive fallback: " << why;
    // The exhaustive path below re-runs the whole flow from scratch, so a
    // fallback result is bit-identical to a never-adaptive run.
    res.stats = {};
    res.prefix_steps = 0;
  }

  circuit::TranParams tp;
  tp.t_stop = res.schedule.t_end;
  tp.dt = options.dt;
  tp.newton = options.newton;
  tp.uic = true;  // the flow's own step 1 establishes the real initial state

  circuit::ProbeSet probes;
  probes.nodes = {"plate", "msu_vgs", "msu_sense", "msu_out"};
  probes.device_currents = {msu.irefp_source};

  circuit::TranResult tr = circuit::transient_with_recovery(
      ckt, tp, probes, options.recovery, &res.recovery);
  res.status = res.recovery.recovered() ? CellStatus::kRecovered
                                        : CellStatus::kOk;
  res.stats = tr.stats;
  res.prefix_steps = steps_until(tr.trace, res.schedule.t_ramp_start);
  if (res.status == CellStatus::kRecovered) {
    ECMS_METRIC_COUNT("msu.cells.recovered", 1);
  } else {
    ECMS_METRIC_COUNT("msu.cells.ok", 1);
  }

  res.v_plate_charged =
      tr.trace.value_at("plate", res.schedule.t_charge_end);
  // V_GS settles by the end of step 4; sample just before the ramp starts.
  res.vgs_shared =
      tr.trace.value_at("msu_vgs", res.schedule.t_ramp_start - 0.2e-9);

  const double vdd_half = mc.tech().vdd / 2.0;
  const auto flip =
      circuit::first_crossing(tr.trace, "msu_out", vdd_half,
                              circuit::Edge::kRising,
                              res.schedule.t_ramp_start - 0.1e-9);
  res.t_out_rise = flip;
  res.code = flip.has_value() ? res.schedule.code_of_flip_time(*flip)
                              : res.schedule.code_no_flip();

  ECMS_LOG(LogLevel::kDebug)
      << "extract (" << row << "," << col << "): code=" << res.code
      << " vgs=" << res.vgs_shared << " steps=" << res.stats.accepted_steps;

  if (options.record_trace) res.trace = std::move(tr.trace);
  return res;
}

RobustExtraction extract_array(const edram::MacroCell& mc,
                               const StructureParams& params,
                               const ExtractPlan& plan) {
  obs::ScopedSpan span("extract_array");
  span.arg("rows", static_cast<double>(mc.rows()));
  span.arg("cols", static_cast<double>(mc.cols()));
  // Design the ramp once so every cell is converted against the same LSB
  // (as the shared silicon would).
  ExtractOptions opts = plan.options;
  if (opts.delta_i <= 0.0) {
    const FastModel design(mc, params);
    opts.delta_i = design.delta_i();
  }
  // Lockstep batching measures chunks of cells through one shared compiled
  // program; lanes that cannot keep lockstep fall back to the scalar path
  // below per cell, so results are identical either way.
  if (plan.batch_width != 1 && batch_engageable(plan)) {
    const std::size_t w = resolved_batch_width(plan.batch_width);
    if (w >= 2) return extract_array_batched(mc, params, plan, opts, w);
  }
  // With no containment, no retries and no hook there is nothing between
  // the caller and the per-cell solve: let the original exception escape.
  const bool plain = !plan.contain && plan.retry.max_attempts <= 1 &&
                     plan.cell_hook == nullptr;

  RobustExtraction out;
  out.results.reserve(mc.cell_count());
  out.status.reserve(mc.cell_count());
  out.report.cells_total = mc.cell_count();
  for (std::size_t r = 0; r < mc.rows(); ++r) {
    for (std::size_t c = 0; c < mc.cols(); ++c) {
      ExtractionResult res;
      if (plain) {
        res = extract_cell(mc, r, c, params, plan.timing, opts);
      } else {
        const util::RetryResult rr =
            util::run_with_retry(plan.retry, [&](int attempt) {
              if (plan.cell_hook) plan.cell_hook(r, c, attempt);
              res = extract_cell(mc, r, c, params, plan.timing, opts);
            });
        if (!rr.ok) {
          if (!plan.contain) {
            throw MeasureError("cell (" + std::to_string(r) + "," +
                               std::to_string(c) +
                               ") unmeasurable: " + rr.last_error);
          }
          ECMS_METRIC_COUNT("msu.cells.unmeasurable", 1);
          ECMS_LOG(LogLevel::kInfo) << "cell (" << r << "," << c
                                    << ") unmeasurable: " << rr.last_error;
          ExtractionResult placeholder;
          placeholder.delta_i = opts.delta_i;
          placeholder.code =
              std::clamp(plan.unmeasurable_code, 0, params.ramp_steps);
          placeholder.status = CellStatus::kUnmeasurable;
          out.results.push_back(std::move(placeholder));
          out.status.push_back(CellStatus::kUnmeasurable);
          out.report.failures.push_back({r, c, rr.last_error});
          continue;
        }
        // A later attempt succeeding counts as a recovery even when the
        // winning solve itself never climbed the ladder.
        if (rr.recovered() && res.status == CellStatus::kOk)
          res.status = CellStatus::kRecovered;
      }
      if (res.status == CellStatus::kRecovered) ++out.report.recovered;
      out.status.push_back(res.status);
      out.results.push_back(std::move(res));
    }
  }
  return out;
}

std::vector<ExtractionResult> extract_all_cells(
    const edram::MacroCell& mc, const StructureParams& params,
    const MeasurementTiming& timing, const ExtractOptions& options) {
  ExtractPlan plan;
  plan.timing = timing;
  plan.options = options;
  plan.contain = false;
  plan.retry.max_attempts = 1;
  return std::move(extract_array(mc, params, plan).results);
}

RobustExtraction extract_all_cells_robust(const edram::MacroCell& mc,
                                          const StructureParams& params,
                                          const MeasurementTiming& timing,
                                          const ExtractOptions& options) {
  obs::ScopedSpan span("extract_all_cells_robust");
  span.arg("rows", static_cast<double>(mc.rows()));
  span.arg("cols", static_cast<double>(mc.cols()));
  ExtractPlan plan;
  plan.timing = timing;
  plan.options = options;
  plan.contain = true;
  plan.retry.max_attempts = 1;
  return extract_array(mc, params, plan);
}

}  // namespace ecms::msu
