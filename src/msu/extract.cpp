#include "msu/extract.hpp"

#include "edram/netlister.hpp"
#include "msu/fastmodel.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace ecms::msu {

ExtractionResult extract_cell(const edram::MacroCell& mc, std::size_t row,
                              std::size_t col, const StructureParams& params,
                              const MeasurementTiming& timing,
                              const ExtractOptions& options) {
  ECMS_REQUIRE(row < mc.rows() && col < mc.cols(), "target cell out of range");
  obs::ScopedSpan span("extract_cell");
  span.arg("row", static_cast<double>(row));
  span.arg("col", static_cast<double>(col));

  circuit::Circuit ckt;
  const edram::ArrayNet array = edram::build_array(ckt, mc);
  const StructureNet msu =
      build_structure(ckt, array.plate, mc.tech(), params);

  double delta_i = options.delta_i;
  if (delta_i <= 0.0) {
    const FastModel design(mc, params);
    delta_i = design.delta_i();
  }
  ExtractionResult res;
  res.delta_i = delta_i;
  res.schedule = program_measurement(ckt, array, msu, mc, row, col, delta_i,
                                     params, timing);

  circuit::TranParams tp;
  tp.t_stop = res.schedule.t_end;
  tp.dt = options.dt;
  tp.newton = options.newton;
  tp.uic = true;  // the flow's own step 1 establishes the real initial state

  circuit::ProbeSet probes;
  probes.nodes = {"plate", "msu_vgs", "msu_sense", "msu_out"};
  probes.device_currents = {msu.irefp_source};

  circuit::TranResult tr = circuit::transient_with_recovery(
      ckt, tp, probes, options.recovery, &res.recovery);
  res.status = res.recovery.recovered() ? CellStatus::kRecovered
                                        : CellStatus::kOk;
  res.stats = tr.stats;
  if (res.status == CellStatus::kRecovered) {
    ECMS_METRIC_COUNT("msu.cells.recovered", 1);
  } else {
    ECMS_METRIC_COUNT("msu.cells.ok", 1);
  }

  res.v_plate_charged =
      tr.trace.value_at("plate", res.schedule.t_charge_end);
  // V_GS settles by the end of step 4; sample just before the ramp starts.
  res.vgs_shared =
      tr.trace.value_at("msu_vgs", res.schedule.t_ramp_start - 0.2e-9);

  const double vdd_half = mc.tech().vdd / 2.0;
  const auto flip =
      circuit::first_crossing(tr.trace, "msu_out", vdd_half,
                              circuit::Edge::kRising,
                              res.schedule.t_ramp_start - 0.1e-9);
  res.t_out_rise = flip;
  res.code = flip.has_value() ? res.schedule.code_of_flip_time(*flip)
                              : res.schedule.code_no_flip();

  ECMS_LOG(LogLevel::kDebug)
      << "extract (" << row << "," << col << "): code=" << res.code
      << " vgs=" << res.vgs_shared << " steps=" << res.stats.accepted_steps;

  if (options.record_trace) res.trace = std::move(tr.trace);
  return res;
}

std::vector<ExtractionResult> extract_all_cells(
    const edram::MacroCell& mc, const StructureParams& params,
    const MeasurementTiming& timing, const ExtractOptions& options) {
  // Design the ramp once so every cell is converted against the same LSB
  // (as the shared silicon would).
  ExtractOptions opts = options;
  if (opts.delta_i <= 0.0) {
    const FastModel design(mc, params);
    opts.delta_i = design.delta_i();
  }
  std::vector<ExtractionResult> out;
  out.reserve(mc.cell_count());
  for (std::size_t r = 0; r < mc.rows(); ++r)
    for (std::size_t c = 0; c < mc.cols(); ++c)
      out.push_back(extract_cell(mc, r, c, params, timing, opts));
  return out;
}

RobustExtraction extract_all_cells_robust(const edram::MacroCell& mc,
                                          const StructureParams& params,
                                          const MeasurementTiming& timing,
                                          const ExtractOptions& options) {
  obs::ScopedSpan span("extract_all_cells_robust");
  span.arg("rows", static_cast<double>(mc.rows()));
  span.arg("cols", static_cast<double>(mc.cols()));
  ExtractOptions opts = options;
  if (opts.delta_i <= 0.0) {
    const FastModel design(mc, params);
    opts.delta_i = design.delta_i();
  }
  RobustExtraction out;
  out.results.reserve(mc.cell_count());
  out.status.reserve(mc.cell_count());
  out.report.cells_total = mc.cell_count();
  for (std::size_t r = 0; r < mc.rows(); ++r) {
    for (std::size_t c = 0; c < mc.cols(); ++c) {
      try {
        ExtractionResult res = extract_cell(mc, r, c, params, timing, opts);
        if (res.status == CellStatus::kRecovered) ++out.report.recovered;
        out.status.push_back(res.status);
        out.results.push_back(std::move(res));
      } catch (const std::exception& e) {
        ECMS_METRIC_COUNT("msu.cells.unmeasurable", 1);
        ECMS_LOG(LogLevel::kInfo) << "cell (" << r << "," << c
                                  << ") unmeasurable: " << e.what();
        ExtractionResult placeholder;
        placeholder.delta_i = opts.delta_i;
        placeholder.status = CellStatus::kUnmeasurable;
        out.results.push_back(std::move(placeholder));
        out.status.push_back(CellStatus::kUnmeasurable);
        out.report.failures.push_back({r, c, e.what()});
      }
    }
  }
  return out;
}

}  // namespace ecms::msu
