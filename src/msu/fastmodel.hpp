// Closed-form (behavioral) model of the measurement flow.
//
// The circuit-level path (sequencer + transient solver) is the reference;
// this model reproduces its code decisions from the charge-sharing equations
// so that array-scale analog bitmaps are cheap. It shares the exact same
// device equations (circuit::mos_eval) and derives every parasitic from the
// same geometry the netlister uses, and is cross-validated against the
// circuit path in the integration tests (agreement within one code step).
//
// Physics. Step 2 charges Cm *and* everything else hanging on the plate to
// VDD; step 4 shares that charge with C_REF (the REF gate):
//     V_GS = VDD * (Cm + Coffset) / (Cm + Coffset + Cref_side).
// Coffset ("plate offset") has three parts:
//   * fixed plate routing capacitance and the structure's own junctions;
//   * every cell on an UNSELECTED row: its capacitor in series with the
//     floating storage node's parasitics (~0.3 fF each);
//   * every OTHER cell on the TARGET row: its word line is necessarily on
//     (it is the target's word line), so its capacitor couples to its
//     floating bit line — series(Cs, C_bl_float), several fF each. This is
//     a real second-order effect of the paper's flow (the plate is never
//     loaded by "Cm only"); the abacus calibrates the constant part away,
//     and the variable part (neighbour-capacitance dependence) is attenuated
//     by (C_bl/(Cs+C_bl))^2.
// Step 5 compares REF's sink current I(V_GS) at VDS = VDD/2 against a
// staircase k * delta_i:
//     code = min(floor(I(V_GS) / delta_i), ramp_steps).
// delta_i is pinned so the spec-window top maps to the final code; code 0
// therefore means "below measurable range" exactly as in the paper.
#pragma once

#include "edram/macrocell.hpp"
#include "msu/structure.hpp"
#include "util/rng.hpp"

namespace ecms::msu {

/// Optional measurement non-idealities for Monte-Carlo studies.
struct MeasureNoise {
  bool enabled = false;
  double comparator_sigma_i = 0.0;  ///< rms current-comparison error (A)
  double vgs_sigma = 0.0;           ///< rms charge-sharing voltage noise (V)
};

/// Immutable after construction (set_vgs_correction aside): every code_*
/// query is const with no hidden caches, so one FastModel may be read from
/// many ThreadPool workers concurrently — the contract the parallel tiled
/// extraction relies on. Noise draws go through the caller-supplied Rng,
/// which must not be shared across threads (use Rng::fork per task).
class FastModel {
 public:
  FastModel(const edram::MacroCell& mc, const StructureParams& p);

  // --- derived design quantities ---
  /// Plate offset capacitance for the reference target cell (0,0) — what the
  /// calibration sweep carries along with Cm.
  double reference_offset() const { return ref_offset_; }
  /// Plate offset for an arbitrary target cell.
  double plate_offset(std::size_t r, std::size_t c) const;
  /// Capacitance on the receiving (REF gate) side of the share (F).
  double cref_side() const { return cref_side_; }
  /// Ramp LSB (A).
  double delta_i() const { return delta_i_; }
  /// Full-scale ramp current (A).
  double i_max() const { return delta_i_ * steps_; }
  int ramp_steps() const { return steps_; }
  /// Floating bit-line capacitance of a column (used by the row coupling).
  double floating_bitline_cap() const { return cbl_float_; }

  // --- model equations ---
  /// V_GS after sharing, for an effective capacitance at the reference cell.
  double vgs_of_cap(double cm_eff) const;
  /// REF sink current at the comparison point (VDS = VDD/2).
  double ref_current(double vgs) const;
  /// Digital code for an effective capacitance at the reference cell.
  int code_of_cap(double cm_eff) const;
  /// Code with optional noise injection.
  int code_of_cap(double cm_eff, const MeasureNoise& noise, Rng& rng) const;

  /// Code for a specific cell, applying its defect electrically
  /// (short -> 0, open -> residual fringe, partial -> scaled,
  /// bridge -> the bridged pair is measured together) and its own
  /// target-row plate offset.
  int code_of_cell(std::size_t r, std::size_t c) const;
  int code_of_cell(std::size_t r, std::size_t c, const MeasureNoise& noise,
                   Rng& rng) const;

  /// Effective plate-visible capacitance of a cell (defect-aware; what the
  /// structure actually measures, excluding the plate offset).
  double measured_cap_of_cell(std::size_t r, std::size_t c) const;

  /// Capacitance (at the reference cell) where the code transitions from
  /// k-1 to k (numeric inverse; k in [1, ramp_steps]). Negative if the
  /// boundary lies below zero capacitance.
  double cap_at_code_boundary(int k) const;

  const edram::MacroCell& macro_cell() const { return mc_; }
  const StructureParams& params() const { return params_; }

  /// Additive V_GS correction (V) fitted against circuit-level extractions
  /// (switch feedthrough and injection losses the closed form does not
  /// carry). Setting it re-derives the auto-designed ramp LSB so full scale
  /// stays pinned to the spec-window top. See msu::calibrate_fast_model().
  void set_vgs_correction(double volts);
  double vgs_correction() const { return vgs_correction_; }

 private:
  double vgs_of_total(double total_charged_cap) const;
  /// Gate-drain overlap coupling of the rising sense node into V_GS at the
  /// decision point (sense = VDD/2).
  double miller_boost(double total_charged_cap) const;
  /// REF current at the flip decision, including the Miller correction.
  double decision_current(double total_charged_cap) const;
  int code_of_vgs_current(double i) const;
  /// Series load a floating-row cell presents at the plate.
  double floating_cell_load(std::size_t r, std::size_t c) const;
  /// Coupling of the target row's other cells through floating bit lines.
  double row_coupling(std::size_t r, std::size_t exclude_col) const;
  /// Offset excluding the target row (structure + unselected rows).
  double base_offset(std::size_t target_row) const;

  edram::MacroCell mc_;  // held by value: the model must outlive any
                         // temporary the caller constructed it from
  StructureParams params_;
  circuit::MosParams ref_params_;
  double cref_side_ = 0.0;
  double cbl_float_ = 0.0;
  double c_stor_par_ = 0.0;
  double struct_junctions_ = 0.0;
  double ref_offset_ = 0.0;
  double delta_i_ = 0.0;
  double vgs_correction_ = 0.0;
  bool auto_ramp_ = false;
  int steps_ = 0;
};

/// Auto-designed full-scale ramp current: the REF current at the V_GS
/// produced by the spec-window top at the reference cell.
double design_ramp_imax(const edram::MacroCell& mc, const StructureParams& p);

}  // namespace ecms::msu
