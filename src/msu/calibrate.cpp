#include "msu/calibrate.hpp"

#include "util/error.hpp"
#include "util/log.hpp"

namespace ecms::msu {

CalibrationResult calibrate_fast_model(FastModel& model,
                                       const std::vector<double>& probe_caps,
                                       const MeasurementTiming& timing,
                                       const ExtractOptions& options) {
  ECMS_REQUIRE(!probe_caps.empty(), "calibration needs probe capacitances");
  CalibrationResult res;
  double sum = 0.0;
  for (double cm : probe_caps) {
    ECMS_REQUIRE(cm > 0.0, "probe capacitance must be positive");
    edram::MacroCell probe = model.macro_cell();
    probe.set_true_cap(0, 0, cm);
    const ExtractionResult ext =
        extract_cell(probe, 0, 0, model.params(), timing, options);
    CalibrationPoint pt;
    pt.cm = cm;
    pt.vgs_fast = model.vgs_of_cap(cm);
    pt.vgs_circuit = ext.vgs_shared;
    sum += pt.vgs_circuit - pt.vgs_fast;
    res.points.push_back(pt);
  }
  res.vgs_correction = sum / static_cast<double>(probe_caps.size());
  model.set_vgs_correction(res.vgs_correction);
  ECMS_LOG(LogLevel::kInfo) << "calibrated fast model: vgs correction = "
                            << res.vgs_correction * 1e3 << " mV";
  return res;
}

}  // namespace ecms::msu
