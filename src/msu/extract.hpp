// Circuit-level extraction: build macro-cell + structure, program the
// five-step flow, run the transient, and interpret OUT into a digital code.
// This is the reproduction of the paper's validation methodology (SPICE
// simulation of the full mixed-signal schematic).
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "circuit/recovery.hpp"
#include "circuit/transient.hpp"
#include "edram/macrocell.hpp"
#include "msu/adaptive.hpp"
#include "msu/sequencer.hpp"
#include "msu/structure.hpp"
#include "util/retry.hpp"
#include "util/status.hpp"

namespace ecms::msu {

struct ExtractOptions {
  double dt = 20e-12;  ///< transient base step
  /// Record full waveforms (plate, V_GS, sense, OUT, I_REFP) in the result.
  bool record_trace = true;
  /// Ramp LSB to program (A). 0 = derive from the (uncalibrated) FastModel
  /// design for this macro-cell. Pass a calibrated model's delta_i() to
  /// close the design loop (see msu::calibrate_fast_model).
  double delta_i = 0.0;
  /// Newton configuration for the measurement transient; `newton.hooks` is
  /// the fault-injection point of the circuit-level path.
  circuit::NewtonOptions newton = {};
  /// Self-recovery on non-convergence (see circuit/recovery.hpp). Enabled
  /// by default: rung 0 is the unmodified solve, so results of healthy
  /// cells are unchanged and concessions are paid only on failure.
  circuit::RecoveryOptions recovery = {};
  /// Adaptive ramp scheduling (see msu/adaptive.hpp): simulate the flow's
  /// charge/share prefix once, then binary-search the flip code with cheap
  /// checkpoint restarts. Off by default; codes are bit-identical either
  /// way (the scheduler falls back to the exhaustive ramp whenever its
  /// monotonicity assumptions cannot be trusted).
  AdaptiveOptions adaptive = {};
};

struct ExtractionResult {
  int code = 0;  ///< 0..ramp_steps: digital image of the capacitance
  std::optional<double> t_out_rise;  ///< OUT rising-edge time, if it flipped
  double v_plate_charged = 0.0;      ///< plate voltage at the end of step 2
  double vgs_shared = 0.0;           ///< V_GS at the end of step 4
  double delta_i = 0.0;              ///< ramp LSB used
  Schedule schedule;
  circuit::Trace trace;  ///< channels: plate, msu_vgs, msu_sense, msu_out,
                         ///< I(I_REFP) — empty if record_trace is false
  circuit::TranStats stats;
  /// kOk, or kRecovered when the transient needed the recovery ladder.
  CellStatus status = CellStatus::kOk;
  circuit::RecoveryReport recovery;  ///< what the ladder did, if anything
  AdaptiveReport adaptive;           ///< what the ramp scheduler did
  /// Accepted transient steps spent in flow steps 1-4 (discharge through
  /// charge sharing), i.e. before the ramp; the remainder is the cost of
  /// the conversion step, which adaptive scheduling attacks.
  std::size_t prefix_steps = 0;
  std::size_t conversion_steps() const {
    return stats.accepted_steps > prefix_steps
               ? stats.accepted_steps - prefix_steps
               : 0;
  }
};

/// Whole-array circuit-level extraction with per-cell containment: cells
/// whose solve fails even after the recovery ladder come back as
/// kUnmeasurable placeholders instead of aborting the run.
struct RobustExtraction {
  std::vector<ExtractionResult> results;  ///< row-major, one per cell
  std::vector<CellStatus> status;         ///< row-major
  FailureReport report;
};

/// How an array-level circuit extraction should run: one struct carrying
/// the timing, per-cell solver options (dt / newton / recovery / adaptive),
/// retry budget and containment policy. This is the single engine behind
/// extract_all_cells{,_robust} and the unified ecms::extraction API.
struct ExtractPlan {
  MeasurementTiming timing = {};
  ExtractOptions options = {.dt = 20e-12, .record_trace = false};
  /// Per-cell attempt budget before the cell is declared unmeasurable.
  util::RetryPolicy retry = {.max_attempts = 1};
  /// When false, the first unmeasurable cell aborts the run instead of
  /// degrading to a kUnmeasurable placeholder.
  bool contain = true;
  /// Code recorded for unmeasurable placeholders (clamped to the ramp).
  int unmeasurable_code = 0;
  /// Optional per-attempt hook called as hook(row, col, attempt) right
  /// before each cell's measurement; throwing marks the attempt failed
  /// (the fault-injection point, see ecms::fault::CellFaultPlan).
  std::function<void(std::size_t, std::size_t, int)> cell_hook;
  /// Lockstep batch width (DESIGN.md §14): 1 = scalar per-cell measurement
  /// (default), 0 = auto (lane count picked by the host's vector ISA),
  /// N >= 2 = exactly N lanes. Only engages when the plan is batchable (no
  /// solve hooks, a shared program cache, non-dense solver); otherwise the
  /// scalar path runs regardless. Batched results are bit-identical to the
  /// scalar path by construction.
  int batch_width = 1;
};

/// Measures every cell of the macro-cell at transistor level under `plan`.
/// Results are row-major; the ramp LSB is designed once for the whole array
/// unless plan.options.delta_i is set.
RobustExtraction extract_array(const edram::MacroCell& mc,
                               const StructureParams& params,
                               const ExtractPlan& plan);

/// Measures cell (row, col) of `mc` at transistor level. The ramp LSB is
/// taken from the FastModel design for this macro-cell and `params`.
ExtractionResult extract_cell(const edram::MacroCell& mc, std::size_t row,
                              std::size_t col, const StructureParams& params,
                              const MeasurementTiming& timing = {},
                              const ExtractOptions& options = {});

/// Measures every cell of the macro-cell at transistor level (one transient
/// per cell — the hardware would do exactly this, 50 ns per cell). Returns
/// results in row-major order. Practical for macro-cell sizes (~0.1 s/cell
/// on a 4x4); use the calibrated fast model for array scale.
/// Thin wrapper over extract_array (contain = false, single attempt); new
/// code should prefer ExtractPlan / extract_array or the unified
/// ecms::extraction::extract API.
std::vector<ExtractionResult> extract_all_cells(
    const edram::MacroCell& mc, const StructureParams& params,
    const MeasurementTiming& timing = {},
    const ExtractOptions& options = {.dt = 20e-12, .record_trace = false});

/// Like extract_all_cells, but never throws on a per-cell solve failure:
/// the failed cell is recorded as kUnmeasurable (code 0 placeholder) in the
/// failure report and extraction continues, so a complete array always
/// comes back. Cells the recovery ladder rescued are kRecovered.
/// Thin wrapper over extract_array (contain = true, single attempt).
RobustExtraction extract_all_cells_robust(
    const edram::MacroCell& mc, const StructureParams& params,
    const MeasurementTiming& timing = {},
    const ExtractOptions& options = {.dt = 20e-12, .record_trace = false});

}  // namespace ecms::msu
