// Circuit-level extraction: build macro-cell + structure, program the
// five-step flow, run the transient, and interpret OUT into a digital code.
// This is the reproduction of the paper's validation methodology (SPICE
// simulation of the full mixed-signal schematic).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "circuit/recovery.hpp"
#include "circuit/transient.hpp"
#include "edram/macrocell.hpp"
#include "msu/sequencer.hpp"
#include "msu/structure.hpp"
#include "util/status.hpp"

namespace ecms::msu {

struct ExtractOptions {
  double dt = 20e-12;  ///< transient base step
  /// Record full waveforms (plate, V_GS, sense, OUT, I_REFP) in the result.
  bool record_trace = true;
  /// Ramp LSB to program (A). 0 = derive from the (uncalibrated) FastModel
  /// design for this macro-cell. Pass a calibrated model's delta_i() to
  /// close the design loop (see msu::calibrate_fast_model).
  double delta_i = 0.0;
  /// Newton configuration for the measurement transient; `newton.hooks` is
  /// the fault-injection point of the circuit-level path.
  circuit::NewtonOptions newton = {};
  /// Self-recovery on non-convergence (see circuit/recovery.hpp). Enabled
  /// by default: rung 0 is the unmodified solve, so results of healthy
  /// cells are unchanged and concessions are paid only on failure.
  circuit::RecoveryOptions recovery = {};
};

struct ExtractionResult {
  int code = 0;  ///< 0..ramp_steps: digital image of the capacitance
  std::optional<double> t_out_rise;  ///< OUT rising-edge time, if it flipped
  double v_plate_charged = 0.0;      ///< plate voltage at the end of step 2
  double vgs_shared = 0.0;           ///< V_GS at the end of step 4
  double delta_i = 0.0;              ///< ramp LSB used
  Schedule schedule;
  circuit::Trace trace;  ///< channels: plate, msu_vgs, msu_sense, msu_out,
                         ///< I(I_REFP) — empty if record_trace is false
  circuit::TranStats stats;
  /// kOk, or kRecovered when the transient needed the recovery ladder.
  CellStatus status = CellStatus::kOk;
  circuit::RecoveryReport recovery;  ///< what the ladder did, if anything
};

/// Whole-array circuit-level extraction with per-cell containment: cells
/// whose solve fails even after the recovery ladder come back as
/// kUnmeasurable placeholders instead of aborting the run.
struct RobustExtraction {
  std::vector<ExtractionResult> results;  ///< row-major, one per cell
  std::vector<CellStatus> status;         ///< row-major
  FailureReport report;
};

/// Measures cell (row, col) of `mc` at transistor level. The ramp LSB is
/// taken from the FastModel design for this macro-cell and `params`.
ExtractionResult extract_cell(const edram::MacroCell& mc, std::size_t row,
                              std::size_t col, const StructureParams& params,
                              const MeasurementTiming& timing = {},
                              const ExtractOptions& options = {});

/// Measures every cell of the macro-cell at transistor level (one transient
/// per cell — the hardware would do exactly this, 50 ns per cell). Returns
/// results in row-major order. Practical for macro-cell sizes (~0.1 s/cell
/// on a 4x4); use the calibrated fast model for array scale.
std::vector<ExtractionResult> extract_all_cells(
    const edram::MacroCell& mc, const StructureParams& params,
    const MeasurementTiming& timing = {},
    const ExtractOptions& options = {.dt = 20e-12, .record_trace = false});

/// Like extract_all_cells, but never throws on a per-cell solve failure:
/// the failed cell is recorded as kUnmeasurable (code 0 placeholder) in the
/// failure report and extraction continues, so a complete array always
/// comes back. Cells the recovery ladder rescued are kRecovered.
RobustExtraction extract_all_cells_robust(
    const edram::MacroCell& mc, const StructureParams& params,
    const MeasurementTiming& timing = {},
    const ExtractOptions& options = {.dt = 20e-12, .record_trace = false});

}  // namespace ecms::msu
