#include "msu/abacus.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "util/error.hpp"
#include "util/log.hpp"

namespace ecms::msu {

Abacus Abacus::build(const ExtractFn& fn, int ramp_steps, double cm_lo,
                     double cm_hi, std::size_t points) {
  ECMS_REQUIRE(ramp_steps > 0, "abacus needs a positive step count");
  ECMS_REQUIRE(cm_hi > cm_lo && cm_lo >= 0.0, "abacus sweep range invalid");
  ECMS_REQUIRE(points >= 2, "abacus needs at least two sweep points");
  Abacus a;
  a.steps_ = ramp_steps;
  a.cm_lo_ = cm_lo;
  a.cm_hi_ = cm_hi;
  a.samples_.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double cm =
        cm_lo + (cm_hi - cm_lo) * static_cast<double>(i) /
                    static_cast<double>(points - 1);
    const int code = fn(cm);
    ECMS_REQUIRE(code >= 0 && code <= ramp_steps,
                 "extractor returned out-of-range code");
    if (!a.samples_.empty() && code < a.samples_.back().code)
      a.monotonic_ = false;
    a.samples_.push_back({cm, code});
  }
  a.rebuild_bins();
  const auto skipped = a.skipped_codes();
  if (!skipped.empty()) {
    std::string list;
    for (int c : skipped) list += " " + std::to_string(c);
    ECMS_LOG(LogLevel::kWarn)
        << "abacus sweep skipped code(s)" << list
        << " (non-monotone extractor or too-coarse grid); their bins are "
           "empty";
  }
  return a;
}

Abacus Abacus::build(const ProbedExtractFn& fn, int ramp_steps, double cm_lo,
                     double cm_hi, std::size_t points) {
  std::size_t probes = 0;
  std::size_t falls = 0;
  Abacus a = build(
      [&](double cm) {
        const ProbedCode pc = fn(cm);
        probes += static_cast<std::size_t>(std::max(pc.probes, 0));
        if (pc.fell_back) ++falls;
        return pc.code;
      },
      ramp_steps, cm_lo, cm_hi, points);
  a.total_probes_ = probes;
  a.fallbacks_ = falls;
  return a;
}

std::vector<int> Abacus::skipped_codes() const {
  int lo = steps_ + 1;
  int hi = -1;
  for (int c = 0; c <= steps_; ++c) {
    if (bins_[static_cast<std::size_t>(c)]) {
      lo = std::min(lo, c);
      hi = std::max(hi, c);
    }
  }
  std::vector<int> out;
  for (int c = lo + 1; c < hi; ++c)
    if (!bins_[static_cast<std::size_t>(c)]) out.push_back(c);
  return out;
}

void Abacus::rebuild_bins() {
  bins_.assign(static_cast<std::size_t>(steps_) + 1, std::nullopt);
  for (std::size_t i = 0; i < samples_.size(); ++i) {
    const int code = samples_[i].code;
    // Interval edges land halfway between adjacent sweep samples.
    const double lo = i == 0 ? samples_[i].cm
                             : 0.5 * (samples_[i - 1].cm + samples_[i].cm);
    const double hi = i + 1 == samples_.size()
                          ? samples_[i].cm
                          : 0.5 * (samples_[i].cm + samples_[i + 1].cm);
    auto& bin = bins_[static_cast<std::size_t>(code)];
    if (!bin.has_value()) {
      bin = Bin{code, lo, hi};
    } else {
      bin->lo = std::min(bin->lo, lo);
      bin->hi = std::max(bin->hi, hi);
    }
  }
}

void Abacus::refine(const ExtractFn& fn, double tol) {
  ECMS_REQUIRE(tol > 0.0, "refine tolerance must be positive");
  if (!monotonic_) return;  // boundaries are ill-defined
  // For each pair of adjacent distinct codes, bisect the true boundary.
  for (int code = 0; code < steps_; ++code) {
    auto& cur = bins_[static_cast<std::size_t>(code)];
    // Find the next observed code above this one.
    int next = code + 1;
    while (next <= steps_ && !bins_[static_cast<std::size_t>(next)]) ++next;
    if (!cur || next > steps_) continue;
    auto& nxt = bins_[static_cast<std::size_t>(next)];
    double lo = cur->lo, hi = nxt->hi;
    // Bisection invariant: fn(lo) <= code, fn(hi) >= next.
    lo = cur->mid();
    hi = nxt->mid();
    while (hi - lo > tol) {
      const double mid = 0.5 * (lo + hi);
      if (fn(mid) <= code) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    const double boundary = 0.5 * (lo + hi);
    cur->hi = boundary;
    nxt->lo = boundary;
  }
}

std::optional<Abacus::Bin> Abacus::bin(int code) const {
  if (code < 0 || code > steps_) return std::nullopt;
  return bins_[static_cast<std::size_t>(code)];
}

double Abacus::estimate_cap(int code) const {
  if (code <= 0 || code >= steps_)
    throw MeasureError("code " + std::to_string(code) +
                       " is out of the measurable window (half-open bin)");
  const auto b = bin(code);
  if (!b) {
    const auto skipped = skipped_codes();
    const bool hole =
        std::find(skipped.begin(), skipped.end(), code) != skipped.end();
    throw MeasureError(
        "code " + std::to_string(code) +
        (hole ? " was skipped by the calibration sweep (non-monotone "
                "extractor or too-coarse grid; see Abacus::skipped_codes())"
              : " was not observed in the calibration sweep"));
  }
  return b->mid();
}

double Abacus::range_lo() const {
  for (const auto& s : samples_)
    if (s.code >= 1) return s.cm;
  throw MeasureError("no in-range code observed in the sweep");
}

double Abacus::range_hi() const {
  for (const auto& s : samples_)
    if (s.code >= steps_) return s.cm;
  throw MeasureError("full-scale code never observed in the sweep");
}

double Abacus::worst_accuracy(int from_code, int to_code) const {
  double worst = 0.0;
  bool any = false;
  for (int c = from_code; c <= to_code; ++c) {
    const auto b = bin(c);
    if (!b) continue;
    worst = std::max(worst, b->relative_halfwidth());
    any = true;
  }
  ECMS_REQUIRE(any, "no observed codes in the requested range");
  return worst;
}

double Abacus::mean_accuracy(int from_code, int to_code) const {
  double sum = 0.0;
  std::size_t n = 0;
  for (int c = from_code; c <= to_code; ++c) {
    const auto b = bin(c);
    if (!b) continue;
    sum += b->relative_halfwidth();
    ++n;
  }
  ECMS_REQUIRE(n > 0, "no observed codes in the requested range");
  return sum / static_cast<double>(n);
}

std::size_t Abacus::codes_used() const {
  std::size_t n = 0;
  for (const auto& b : bins_)
    if (b) ++n;
  return n;
}

}  // namespace ecms::msu
