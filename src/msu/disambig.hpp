// Code-0 disambiguation.
//
// The paper: "If the number of current step is 0, three diagnoses are
// possible: the capacitor value is under 10fF; the capacitor is shorted; the
// capacitor behaves like an open." This module implements the follow-up
// procedure that separates the three cases — an extension the paper leaves
// open:
//   1. static-current test: with IN held at VDD through PRG (step-2
//      conditions), a shorted capacitor draws a large DC current through the
//      short into the grounded bit line; intact cells draw none;
//   2. fine-ramp re-measurement: re-running the flow with the ramp LSB
//      divided by `fine_ratio` resolves capacitances far below the normal
//      window. An open cell shows only its fringe residual (~0.5 fF); an
//      under-range cell shows its true few-fF value.
#pragma once

#include "msu/fastmodel.hpp"

namespace ecms::msu {

enum class ZeroCodeCause {
  kNotZero,     ///< the cell does not read code 0 at all
  kShort,       ///< static current detected: shorted capacitor
  kOpen,        ///< fine-ramp estimate at fringe level: open capacitor
  kUnderRange,  ///< real capacitance below the measurable window
};

std::string zero_code_cause_name(ZeroCodeCause c);

struct DisambiguationParams {
  double short_current_threshold = 10e-6;  ///< IN current above this = short
  int fine_ratio = 16;        ///< ramp LSB division for the re-measurement
  double open_cap_threshold = 2e-15;  ///< estimates below this = open
};

struct DisambiguationResult {
  ZeroCodeCause cause = ZeroCodeCause::kNotZero;
  double in_current = 0.0;    ///< static-current test reading (A)
  int fine_code = 0;          ///< code from the fine-ramp re-measurement
  double est_cap = 0.0;       ///< capacitance estimate from the fine ramp (F)
};

/// Disambiguates a cell using the fast model's physics. The same procedure
/// can be driven at circuit level (see measure_in_current in the tests).
class Disambiguator {
 public:
  Disambiguator(const FastModel& model, DisambiguationParams params = {});

  DisambiguationResult classify(std::size_t r, std::size_t c) const;

  /// Static IN current the step-2 conditions would draw for this cell
  /// (analytic: VDD across PRG on-resistance + short + access device).
  double static_in_current(std::size_t r, std::size_t c) const;

 private:
  FastModel model_;  // by value: safe against temporaries
  DisambiguationParams params_;
};

}  // namespace ecms::msu
