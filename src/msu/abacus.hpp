// The abacus (Figure 3 of the paper): the calibration curve between the
// digital current-step code and the capacitor value, "obtained from a set of
// simulations".
//
// Built by sweeping any extractor function (fast model or circuit-level)
// over a capacitance range, it answers the questions the paper answers:
// which capacitance interval maps to each code (the inverse lookup used to
// read analog bitmaps), the measurable range, and the measurement accuracy
// (relative half-width of each code's interval; the paper quotes 6 %).
#pragma once

#include <functional>
#include <optional>
#include <vector>

namespace ecms::msu {

class Abacus {
 public:
  /// Extractor: capacitance (F) -> code.
  using ExtractFn = std::function<int(double)>;

  /// Sweeps `fn` over [cm_lo, cm_hi] with `points` uniform samples.
  /// The extractor must be monotone (non-decreasing) for the inverse lookup
  /// to be meaningful; build() records whether it was.
  static Abacus build(const ExtractFn& fn, int ramp_steps, double cm_lo,
                      double cm_hi, std::size_t points);

  /// One sample from an adaptive extractor: the code plus what the search
  /// spent deciding it (see msu::AdaptiveReport).
  struct ProbedCode {
    int code = 0;
    int probes = 0;         ///< adaptive probe-search queries (0: exhaustive)
    bool fell_back = false; ///< the exhaustive ramp decided this sample
  };
  /// Adaptive extractor: capacitance (F) -> probed code.
  using ProbedExtractFn = std::function<ProbedCode(double)>;

  /// Same sweep driven by an adaptive extractor; additionally accumulates
  /// the search cost, exposed via total_probes() / fallbacks().
  static Abacus build(const ProbedExtractFn& fn, int ramp_steps, double cm_lo,
                      double cm_hi, std::size_t points);

  /// Refines every code boundary by bisection to `tol` farads (extra calls
  /// to `fn`; worthwhile when fn is the cheap fast model).
  void refine(const ExtractFn& fn, double tol);

  int ramp_steps() const { return steps_; }
  double sweep_lo() const { return cm_lo_; }
  double sweep_hi() const { return cm_hi_; }
  bool monotonic() const { return monotonic_; }

  /// Adaptive search cost accumulated over the calibration sweep; both are
  /// zero when the abacus was built from a plain ExtractFn.
  std::size_t total_probes() const { return total_probes_; }
  std::size_t fallbacks() const { return fallbacks_; }

  /// Codes inside the observed span that no sweep sample produced — the
  /// holes a non-monotone extractor or a too-coarse grid leaves in the
  /// calibration curve (also warned about at build time). Empty when the
  /// curve is gap-free.
  std::vector<int> skipped_codes() const;

  /// A code's capacitance interval [lo, hi). Codes never observed in the
  /// sweep return nullopt.
  struct Bin {
    int code = 0;
    double lo = 0.0;
    double hi = 0.0;
    double mid() const { return 0.5 * (lo + hi); }
    /// Quantization accuracy: half-width relative to the midpoint.
    double relative_halfwidth() const {
      return mid() > 0.0 ? 0.5 * (hi - lo) / mid() : 0.0;
    }
  };
  std::optional<Bin> bin(int code) const;

  /// Capacitance estimate for a code (bin midpoint). Throws MeasureError for
  /// code 0 / full-scale (they are half-open: "below range" / "above range")
  /// and for unobserved codes.
  double estimate_cap(int code) const;

  /// Smallest capacitance measured as in-range (code >= 1): the bottom of
  /// the measurable window (paper: ~10 fF).
  double range_lo() const;
  /// Smallest capacitance measured at full scale: the top of the measurable
  /// window (paper: ~55 fF).
  double range_hi() const;

  /// Worst / mean relative half-width over in-range codes [from, to].
  double worst_accuracy(int from_code, int to_code) const;
  double mean_accuracy(int from_code, int to_code) const;

  /// Number of distinct codes observed in the sweep.
  std::size_t codes_used() const;

  /// Raw sweep samples (capacitance, code) for plotting Figure 3.
  struct Sample {
    double cm;
    int code;
  };
  const std::vector<Sample>& samples() const { return samples_; }

 private:
  Abacus() = default;
  void rebuild_bins();

  int steps_ = 0;
  double cm_lo_ = 0.0, cm_hi_ = 0.0;
  bool monotonic_ = true;
  std::size_t total_probes_ = 0;
  std::size_t fallbacks_ = 0;
  std::vector<Sample> samples_;
  std::vector<std::optional<Bin>> bins_;  // index = code
};

}  // namespace ecms::msu
