#include "msu/designer.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace ecms::msu {

DesignPoint evaluate_design(const edram::MacroCell& mc,
                            const StructureParams& params,
                            std::size_t sweep_points) {
  const FastModel model(mc, params);
  DesignPoint d;
  d.params = params;
  d.cref = params.cref_total(mc.tech());

  // Sweep beyond the spec window on both sides so the range endpoints are
  // observable.
  const double lo = 1e-15;
  const double hi = params.spec_hi_f * 1.4;
  Abacus ab = Abacus::build([&](double cm) { return model.code_of_cap(cm); },
                            params.ramp_steps, lo, hi, sweep_points);
  ab.refine([&](double cm) { return model.code_of_cap(cm); }, 1e-18);

  d.monotonic = ab.monotonic();
  d.codes_used = ab.codes_used();
  d.range_lo = ab.range_lo();
  d.range_hi = ab.range_hi();
  const int steps = params.ramp_steps;
  d.worst_acc = ab.worst_accuracy(1, steps - 1);
  d.mean_acc = ab.mean_accuracy(1, steps - 1);

  // Figure of merit: fraction of the target window covered, penalized by the
  // mean quantization error. A window that misses the target badly scores
  // near zero regardless of accuracy.
  const double target_lo = params.spec_lo_f, target_hi = params.spec_hi_f;
  const double overlap = std::max(
      0.0, std::min(d.range_hi, target_hi) - std::max(d.range_lo, target_lo));
  const double coverage = overlap / (target_hi - target_lo);
  d.score = coverage - 2.0 * d.mean_acc;
  if (!d.monotonic) d.score -= 1.0;
  // Gentle area penalty: among electrically equivalent designs prefer the
  // smaller REF (the score plateau is wide once the window is covered).
  d.score -= params.ref_w * 300.0;
  return d;
}

std::vector<DesignPoint> explore_designs(const edram::MacroCell& mc,
                                         const StructureParams& base,
                                         const std::vector<double>& ref_widths,
                                         const std::vector<double>& trim_caps) {
  ECMS_REQUIRE(!ref_widths.empty(), "need at least one REF width");
  std::vector<DesignPoint> out;
  for (double w : ref_widths) {
    for (double trim : trim_caps) {
      StructureParams p = base;
      p.ref_w = w;
      p.cref_trim = trim;
      p.ramp_i_max = 0.0;  // re-derive the ramp for each candidate
      out.push_back(evaluate_design(mc, p));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const DesignPoint& a, const DesignPoint& b) {
              return a.score > b.score;
            });
  return out;
}

StructureParams auto_size_structure(const edram::MacroCell& mc,
                                    const StructureParams& base) {
  // Coarse geometric sweep of REF widths.
  std::vector<double> coarse;
  for (double w = 10e-6; w <= 320e-6; w *= 1.5) coarse.push_back(w);
  const DesignPoint best_coarse = explore_designs(mc, base, coarse).front();

  // Fine linear sweep around the coarse winner.
  std::vector<double> fine;
  const double w0 = best_coarse.params.ref_w;
  for (double f = 0.70; f <= 1.42; f += 0.06) fine.push_back(w0 * f);
  const DesignPoint best = explore_designs(mc, base, fine).front();
  return best.params;
}

}  // namespace ecms::msu
