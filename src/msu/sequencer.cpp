#include "msu/sequencer.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace ecms::msu {

int Schedule::code_of_flip_time(double t) const {
  const int step_at_flip = ramp.ramp_step_at(t - decision_latency);
  return std::clamp(step_at_flip - 1, 0, ramp_steps);
}

Schedule program_measurement(circuit::Circuit& ckt,
                             const edram::ArrayNet& net,
                             const StructureNet& msu,
                             const edram::MacroCell& mc, std::size_t row,
                             std::size_t col, double delta_i,
                             const StructureParams& params,
                             const MeasurementTiming& timing) {
  using circuit::SourceWave;
  using circuit::VSource;
  using circuit::ISource;
  ECMS_REQUIRE(row < mc.rows() && col < mc.cols(), "target cell out of range");
  ECMS_REQUIRE(delta_i > 0.0, "ramp LSB must be positive");
  ECMS_REQUIRE(timing.step > 4.0 * timing.edge, "steps too short for edges");

  const double vdd = mc.tech().vdd;
  const double vpp = mc.tech().vpp;
  const double T = timing.step;
  const double e = timing.edge;

  // Edge staggering within a step boundary. Two hazards are avoided:
  //  * LEC must be fully off before IN (and the bit lines) rise, or charge
  //    leaks into C_REF through the closing switch;
  //  * the bit-line selects are switched off while PRG still drives the
  //    plate, so their gate feedthrough is replenished instead of being
  //    subtracted from the floating measurement charge. (The paper's text
  //    orders PRG first; with that order the select feedthrough costs a
  //    constant few percent of plate charge, which the abacus would simply
  //    calibrate away — we keep the cleaner order.)
  const double t_drive = T + 2 * e;   // IN / other bit lines rise
  const double t_sbl_off = 2 * T;     // other selects open (plate driven)
  const double t_prg_off = 2 * T + 2 * e;  // plate released

  // Word lines: all on for step 1; only the target row stays on afterwards
  // (it keeps the target storage node clamped to its grounded bit line).
  for (std::size_t r = 0; r < mc.rows(); ++r) {
    auto& src = ckt.get<VSource>(net.wl_sources[r]);
    if (r == row) {
      src.set_wave(SourceWave::pwl({{0.0, 0.0}, {e, vpp}}));
    } else {
      src.set_wave(SourceWave::pwl({{0.0, 0.0}, {e, vpp}, {T, vpp}, {T + e, 0.0}}));
    }
  }

  // Bit-line selects: all on for steps 1-2; only the target's stays on for
  // steps 3-5.
  for (std::size_t c = 0; c < mc.cols(); ++c) {
    auto& src = ckt.get<VSource>(net.sbl_sources[c]);
    if (c == col) {
      src.set_wave(SourceWave::pwl({{0.0, 0.0}, {e, vpp}}));
    } else {
      src.set_wave(SourceWave::pwl(
          {{0.0, 0.0}, {e, vpp}, {t_sbl_off, vpp}, {t_sbl_off + e, 0.0}}));
    }
  }

  // Bit-line inputs: all grounded in step 1; in step 2 every bit line except
  // the target's rises to VDD (so only Cm sees a voltage across it).
  for (std::size_t c = 0; c < mc.cols(); ++c) {
    auto& src = ckt.get<VSource>(net.inbl_sources[c]);
    if (c == col) {
      src.set_wave(SourceWave::dc(0.0));
    } else {
      src.set_wave(
          SourceWave::pwl({{0.0, 0.0}, {t_drive, 0.0}, {t_drive + e, vdd}}));
    }
  }

  // IN: grounded in step 1 (discharge path), VDD from step 2 (charge path).
  ckt.get<VSource>(msu.in_source)
      .set_wave(
          SourceWave::pwl({{0.0, 0.0}, {t_drive, 0.0}, {t_drive + e, vdd}}));

  // PRG: on during steps 1-2, off shortly after the selects open.
  ckt.get<VSource>(msu.prg_source)
      .set_wave(SourceWave::pwl(
          {{0.0, 0.0}, {e, vpp}, {t_prg_off, vpp}, {t_prg_off + e, 0.0}}));

  // LEC: on in step 1 (discharge C_REF), fully off before anything rises in
  // step 2 (unselect C_REF while charging), on again from step 4 (sharing).
  ckt.get<VSource>(msu.lec_source)
      .set_wave(SourceWave::pwl({{0.0, 0.0},
                                 {e, vpp},
                                 {T, vpp},
                                 {T + e, 0.0},
                                 {3 * T, 0.0},
                                 {3 * T + e, vpp}}));

  // STD: off for the whole test mode.
  ckt.get<VSource>(msu.std_source).set_wave(SourceWave::dc(0.0));

  // I_REFP: staircase across step 5.
  Schedule s;
  s.ramp_steps = params.ramp_steps;
  s.delta_i = delta_i;
  s.t_charge_end = 2 * T;
  s.t_share = 3 * T;
  s.t_ramp_start = 4 * T;
  s.t_end = timing.t_end();
  const double step_duration = T / static_cast<double>(params.ramp_steps);
  ECMS_REQUIRE(timing.ramp_rise < step_duration,
               "ramp riser longer than a staircase step");
  s.ramp = SourceWave::step_ramp(s.t_ramp_start, step_duration, delta_i,
                                 params.ramp_steps, timing.ramp_rise);
  ckt.get<ISource>(msu.irefp_source).set_wave(s.ramp);
  return s;
}

}  // namespace ecms::msu
