#include "msu/disambig.hpp"

#include <cmath>

#include "util/error.hpp"

namespace ecms::msu {

std::string zero_code_cause_name(ZeroCodeCause c) {
  switch (c) {
    case ZeroCodeCause::kNotZero:
      return "not-zero";
    case ZeroCodeCause::kShort:
      return "short";
    case ZeroCodeCause::kOpen:
      return "open";
    case ZeroCodeCause::kUnderRange:
      return "under-range";
  }
  return "?";
}

Disambiguator::Disambiguator(const FastModel& model,
                             DisambiguationParams params)
    : model_(model), params_(params) {
  ECMS_REQUIRE(params.fine_ratio > 1, "fine ratio must exceed 1");
}

namespace {
// Triode on-resistance of an NMOS pass device with a boosted gate and a
// near-ground channel: 1 / (beta * (VPP - Vth)).
double pass_on_resistance(const circuit::MosParams& p, double vpp) {
  const double beta = p.kp * p.w / p.l;
  const double vov = vpp - p.vth0;
  ECMS_REQUIRE(vov > 0, "pass device does not turn on at VPP");
  return 1.0 / (beta * vov);
}
}  // namespace

double Disambiguator::static_in_current(std::size_t r, std::size_t c) const {
  const auto& mc = model_.macro_cell();
  const auto& t = mc.tech();
  const double r_prg =
      pass_on_resistance(t.nmos(model_.params().pass_w, t.l_min), t.vpp);
  const double r_acc =
      pass_on_resistance(t.nmos(mc.spec().access_w, mc.spec().access_l),
                         t.vpp);
  double i = 0.0;
  const tech::DefectElectrical e = tech::electrical_of(mc.defect(r, c));
  if (e.shunt_r > 0.0) {
    // IN --PRG--> plate --short--> storage --access--> grounded bit line.
    i += t.vdd / (r_prg + e.shunt_r + r_acc);
  }
  // A bridge also draws static current in step 2: partner bit line (VDD)
  // --access--> partner storage --bridge--> target storage --access-->
  // grounded target bit line. Both ends of the pair see it.
  if (const auto partner = mc.bridge_partner_col(r, c)) {
    const tech::DefectElectrical own = tech::electrical_of(mc.defect(r, c));
    const tech::DefectElectrical other =
        tech::electrical_of(mc.defect(r, *partner));
    const double bridge_r =
        own.bridge_r > 0.0 ? own.bridge_r : other.bridge_r;
    i += t.vdd / (2.0 * r_acc + bridge_r);
  }
  return i;
}

DisambiguationResult Disambiguator::classify(std::size_t r,
                                             std::size_t c) const {
  DisambiguationResult res;
  if (model_.code_of_cell(r, c) != 0) {
    res.cause = ZeroCodeCause::kNotZero;
    return res;
  }

  // Test 1: static current through the charging path.
  res.in_current = static_in_current(r, c);
  if (res.in_current > params_.short_current_threshold) {
    res.cause = ZeroCodeCause::kShort;
    return res;
  }

  // Test 2: fine-ramp re-measurement.
  StructureParams fine = model_.params();
  fine.ramp_i_max =
      model_.i_max() / static_cast<double>(params_.fine_ratio);
  const FastModel fine_model(model_.macro_cell(), fine);
  res.fine_code = fine_model.code_of_cell(r, c);
  if (res.fine_code <= 0) {
    res.est_cap = 0.0;
  } else if (res.fine_code >= fine_model.ramp_steps()) {
    res.est_cap = fine_model.cap_at_code_boundary(fine_model.ramp_steps());
  } else {
    const double lo = fine_model.cap_at_code_boundary(res.fine_code);
    const double hi = fine_model.cap_at_code_boundary(res.fine_code + 1);
    res.est_cap = 0.5 * (std::max(lo, 0.0) + hi);
  }
  res.cause = res.est_cap < params_.open_cap_threshold
                  ? ZeroCodeCause::kOpen
                  : ZeroCodeCause::kUnderRange;
  return res;
}

}  // namespace ecms::msu
