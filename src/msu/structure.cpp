#include "msu/structure.hpp"

#include "util/error.hpp"

namespace ecms::msu {

double StructureParams::cref_total(const tech::Technology& t) const {
  const circuit::MosParams ref = t.nmos(ref_w, ref_l);
  return ref.c_gate_input() + cref_trim;
}

StructureNet build_structure(circuit::Circuit& ckt, circuit::NodeId plate,
                             const tech::Technology& t,
                             const StructureParams& p,
                             const std::string& prefix) {
  using circuit::kGround;
  using circuit::NodeId;
  using circuit::SourceWave;
  ECMS_REQUIRE(p.ramp_steps > 0, "ramp needs at least one step");
  ECMS_REQUIRE(p.ref_w > 0 && p.ref_l > 0, "REF geometry must be positive");

  StructureNet net;
  const std::string& px = prefix;

  // Supply rails (shared across instances if already present).
  const NodeId vdd = ckt.node("vdd");
  if (ckt.find("V_VDD") == nullptr) {
    ckt.add_vsource("V_VDD", vdd, kGround, SourceWave::dc(t.vdd));
  }
  const NodeId vdd_half = ckt.node("vdd_half");
  if (ckt.find("V_VDDH") == nullptr) {
    ckt.add_vsource("V_VDDH", vdd_half, kGround, SourceWave::dc(t.vdd / 2.0));
  }

  // Control pins.
  net.in = ckt.node(px + "msu_in");
  const NodeId prg_g = ckt.node(px + "msu_prg_g");
  const NodeId lec_g = ckt.node(px + "msu_lec_g");
  const NodeId std_g = ckt.node(px + "msu_std_g");
  net.in_source = px + "V_IN";
  net.prg_source = px + "V_PRG";
  net.lec_source = px + "V_LEC";
  net.std_source = px + "V_STD";
  ckt.add_vsource(net.in_source, net.in, kGround, SourceWave::dc(0.0));
  ckt.add_vsource(net.prg_source, prg_g, kGround, SourceWave::dc(0.0));
  ckt.add_vsource(net.lec_source, lec_g, kGround, SourceWave::dc(0.0));
  // STD defaults to on (standard mode) until a sequencer reprograms it.
  ckt.add_vsource(net.std_source, std_g, kGround, SourceWave::dc(t.vpp));

  // Plate-bias device: plate <- VDD/2 when STD on.
  ckt.add_mosfet(px + "MSTD", vdd_half, std_g, plate, kGround,
                 t.nmos(p.std_w, t.l_min));

  // Charging select: IN <-> plate.
  ckt.add_mosfet(px + "MPRG", net.in, prg_g, plate, kGround,
                 t.nmos(p.pass_w, t.l_min));

  // Sharing select: plate <-> REF gate.
  net.vgs = ckt.node(px + "msu_vgs");
  ckt.add_mosfet(px + "MLEC", plate, lec_g, net.vgs, kGround,
                 t.nmos(p.pass_w, t.l_min));

  // REF transistor: C_REF is its gate capacitance; drain is the comparison
  // node fed by I_REFP.
  net.sense = ckt.node(px + "msu_sense");
  ckt.add_mosfet(px + "MREF", net.sense, net.vgs, kGround, kGround,
                 t.nmos(p.ref_w, p.ref_l));
  if (p.cref_trim > 0.0) {
    ckt.add_capacitor(px + "CREF_TRIM", net.vgs, kGround, p.cref_trim);
  }

  // Programmable current reference (waveform programmed by the sequencer).
  // The clamp diode models the mirror's compliance: a real PMOS current
  // source cannot push its output above the rail, so the sense node is
  // limited to ~VDD + Vf once REF stops sinking the injected current.
  net.irefp_source = px + "I_REFP";
  ckt.add_isource(net.irefp_source, vdd, net.sense, SourceWave::dc(0.0));
  ckt.add_diode(px + "DCLAMP", net.sense, vdd, {});

  // Two-inverter sense chain: sense -> inv1 -> out.
  const NodeId inv1 = ckt.node(px + "msu_inv1");
  net.out = ckt.node(px + "msu_out");
  ckt.add_mosfet(px + "MP1", inv1, net.sense, vdd, vdd,
                 t.pmos(p.inv_wp, t.l_min));
  ckt.add_mosfet(px + "MN1", inv1, net.sense, kGround, kGround,
                 t.nmos(p.inv_wn, t.l_min));
  ckt.add_mosfet(px + "MP2", net.out, inv1, vdd, vdd,
                 t.pmos(p.inv_wp, t.l_min));
  ckt.add_mosfet(px + "MN2", net.out, inv1, kGround, kGround,
                 t.nmos(p.inv_wn, t.l_min));
  return net;
}

}  // namespace ecms::msu
