#include "msu/batch_extract.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "circuit/batch.hpp"
#include "circuit/kernels.hpp"
#include "circuit/mosfet.hpp"
#include "edram/netlister.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace ecms::msu {

namespace {

// Replica of extract.cpp's helper: accepted steps recorded in `trace` up to
// and including time `t` (the t = 0 sample is not a step).
std::size_t steps_until(const circuit::Trace& trace, double t) {
  const auto& ts = trace.times();
  const auto n = static_cast<std::size_t>(
      std::upper_bound(ts.begin(), ts.end(), t + 1e-15) - ts.begin());
  return n > 0 ? n - 1 : 0;
}

// One cell riding a lockstep chunk: its private circuit (every cell owns a
// full array + MSU netlist, as on the scalar path), probe bindings, the
// trace being accumulated, and the decode state.
struct Slot {
  std::size_t row = 0, col = 0;
  std::unique_ptr<circuit::Circuit> ckt;
  edram::ArrayNet array;
  StructureNet msu;
  ExtractionResult res;
  circuit::NodeId n_plate{}, n_vgs{}, n_sense{}, n_out{};
  const circuit::Device* irefp = nullptr;
  circuit::Trace trace;    ///< 5-channel prefix / exhaustive trace
  circuit::Trace seg;      ///< OUT-only trace of the current ramp segment
  std::optional<double> t_flip;
  std::size_t lane = static_cast<std::size_t>(-1);  ///< engine lane index
  bool hook_failed = false;  ///< attempt-0 cell_hook threw before simulation
  std::string hook_error;
  bool completed = false;  ///< res fully decoded on the batch path
};

// The per-step trace row, exactly as run_transient's `record` computes it:
// probed node voltages first, then the device current.
std::vector<double> probe_row(const Slot& s, double t,
                              std::span<const double> x) {
  circuit::StampContext ctx;
  ctx.x = x;
  ctx.time = t;
  return {ctx.v(s.n_plate), ctx.v(s.n_vgs), ctx.v(s.n_sense), ctx.v(s.n_out),
          s.irefp->probe_current(ctx)};
}

}  // namespace

bool batch_engageable(const ExtractPlan& plan) {
  const circuit::NewtonOptions& no = plan.options.newton;
  return no.hooks == nullptr && no.solver.program_cache != nullptr &&
         no.solver.kind != circuit::SolverKind::kDense;
}

std::size_t resolved_batch_width(int batch_width) {
  if (batch_width <= 0) return circuit::kernels::preferred_width();
  return static_cast<std::size_t>(batch_width);
}

RobustExtraction extract_array_batched(const edram::MacroCell& mc,
                                       const StructureParams& params,
                                       const ExtractPlan& plan,
                                       const ExtractOptions& opts,
                                       std::size_t width) {
  obs::ScopedSpan span("extract_array_batch");
  span.arg("rows", static_cast<double>(mc.rows()));
  span.arg("cols", static_cast<double>(mc.cols()));
  span.arg("width", static_cast<double>(width));
  ECMS_REQUIRE(width >= 2, "batched extraction needs at least two lanes");

  const bool plain = !plan.contain && plan.retry.max_attempts <= 1 &&
                     plan.cell_hook == nullptr;
  const double vdd_half = mc.tech().vdd / 2.0;
  const std::vector<std::string> channels = {"plate", "msu_vgs", "msu_sense",
                                             "msu_out", ""};

  RobustExtraction out;
  out.results.reserve(mc.cell_count());
  out.status.reserve(mc.cell_count());
  out.report.cells_total = mc.cell_count();

  std::vector<std::pair<std::size_t, std::size_t>> cells;
  cells.reserve(mc.cell_count());
  for (std::size_t r = 0; r < mc.rows(); ++r) {
    for (std::size_t c = 0; c < mc.cols(); ++c) cells.emplace_back(r, c);
  }

  for (std::size_t base = 0; base < cells.size(); base += width) {
    const std::size_t chunk =
        std::min(width, cells.size() - base);
    std::vector<Slot> slots(chunk);

    // Attempt-0 fault hooks run before the chunk simulates, in cell order —
    // valid because the hook is a pure function of (row, col, attempt). A
    // throwing hook marks its cell failed without joining the batch.
    for (std::size_t i = 0; i < chunk; ++i) {
      Slot& s = slots[i];
      s.row = cells[base + i].first;
      s.col = cells[base + i].second;
      if (plan.cell_hook != nullptr) {
        try {
          plan.cell_hook(s.row, s.col, 0);
        } catch (const std::exception& e) {
          s.hook_failed = true;
          s.hook_error = e.what();
        }
      }
    }

    // Build one full netlist per surviving cell, exactly as extract_cell
    // does, and bind its probes.
    std::vector<circuit::Circuit*> lane_ckts;
    std::vector<std::size_t> lane_slot;
    for (std::size_t i = 0; i < chunk; ++i) {
      Slot& s = slots[i];
      if (s.hook_failed) continue;
      s.ckt = std::make_unique<circuit::Circuit>();
      s.array = edram::build_array(*s.ckt, mc);
      s.msu = build_structure(*s.ckt, s.array.plate, mc.tech(), params);
      s.res.delta_i = opts.delta_i;
      s.res.schedule = program_measurement(*s.ckt, s.array, s.msu, mc, s.row,
                                           s.col, opts.delta_i, params,
                                           plan.timing);
      s.n_plate = s.ckt->find_node("plate");
      s.n_vgs = s.ckt->find_node("msu_vgs");
      s.n_sense = s.ckt->find_node("msu_sense");
      s.n_out = s.ckt->find_node("msu_out");
      s.irefp = s.ckt->find(s.msu.irefp_source);
      std::vector<std::string> ch = channels;
      ch.back() = "I(" + s.msu.irefp_source + ")";
      s.trace = circuit::Trace(ch);
      s.lane = lane_ckts.size();
      lane_ckts.push_back(s.ckt.get());
      lane_slot.push_back(i);
    }

    if (!lane_ckts.empty()) {
      circuit::BatchEngine::Options bo;
      bo.dt = opts.dt;
      bo.newton = opts.newton;  // method / be_after_breakpoint: TranParams
                                // defaults, as the scalar flow uses
      circuit::BatchEngine eng(
          std::span<circuit::Circuit* const>(lane_ckts.data(),
                                             lane_ckts.size()),
          bo);

      // The measurement schedule is a pure function of (timing, delta_i,
      // params); every cell of the chunk shares it.
      const Schedule& sch = slots[lane_slot[0]].res.schedule;

      auto sample5 = [&](std::size_t lane, double t,
                         std::span<const double> x) {
        Slot& s = slots[lane_slot[lane]];
        s.trace.append(t, probe_row(s, t, x));
      };

      if (opts.adaptive.enabled) {
        // Lockstep equivalent of try_adaptive: the charge/share prefix for
        // every lane at once, then the ramp staircase level by level; each
        // lane stops at the level where its OUT crossing appears, and the
        // scheduler's probe sequence is replayed afterwards against the
        // known flip time — probe-by-probe identical to the lazy search.
        eng.advance(sch.t_ramp_start, sample5);

        const double step_duration =
            plan.timing.step / static_cast<double>(sch.ramp_steps);

        for (std::size_t li = 0; li < lane_ckts.size(); ++li) {
          Slot& s = slots[lane_slot[li]];
          if (eng.state(li) != circuit::BatchEngine::LaneState::kActive)
            continue;
          s.res.adaptive.attempted = true;
          if (s.trace.final_value("msu_out") > vdd_half) {
            eng.retire(li, "adaptive fallback: OUT already high before the "
                           "ramp");
            continue;
          }
          s.res.prefix_steps = eng.stats(li).accepted_steps;
          s.res.v_plate_charged =
              s.trace.value_at("plate", sch.t_charge_end);
          s.res.vgs_shared =
              s.trace.value_at("msu_vgs", sch.t_ramp_start - 0.2e-9);
          const circuit::MosParams ref_params =
              mc.tech().nmos(params.ref_w, params.ref_l);
          const double i_sink = circuit::mos_ids(
              ref_params, std::max(s.res.vgs_shared, 0.0), vdd_half);
          s.res.adaptive.guess =
              std::clamp(static_cast<int>(std::floor(i_sink / s.res.delta_i)),
                         0, sch.ramp_steps);
        }

        auto sample_out = [&](std::size_t lane, double t,
                              std::span<const double> x) {
          Slot& s = slots[lane_slot[lane]];
          circuit::StampContext ctx;
          ctx.x = x;
          ctx.time = t;
          s.seg.append(t, {ctx.v(s.n_out)});
        };

        // Replays the scheduler against the decided flip time and finishes
        // or retires the lane accordingly.
        auto conclude = [&](std::size_t li) {
          Slot& s = slots[lane_slot[li]];
          auto replay_probe = [&](int k) {
            obs::ScopedSpan probe_span("adaptive_probe");
            probe_span.arg("level", static_cast<double>(k));
            ++s.res.adaptive.probes;
            return s.t_flip.has_value() &&
                   *s.t_flip <=
                       sch.t_ramp_start +
                           static_cast<double>(k) * step_duration + 1e-15;
          };
          const int bracket =
              schedule_ramp_search(sch.ramp_steps, s.res.adaptive.guess,
                                   opts.adaptive.max_probes, replay_probe);
          if (bracket < 0) {
            eng.retire(li, "adaptive fallback: probe budget exhausted "
                           "before the bracket closed");
            return;
          }
          s.res.code = s.t_flip.has_value()
                           ? sch.code_of_flip_time(*s.t_flip)
                           : sch.code_no_flip();
          s.res.t_out_rise = s.t_flip;
          s.res.status = CellStatus::kOk;
          s.res.adaptive.used = true;
          s.res.stats.accepted_steps = eng.stats(li).accepted_steps;
          s.res.stats.newton_iterations = eng.stats(li).newton_iterations;
          ECMS_METRIC_COUNT("msu.adaptive.cells", 1);
          ECMS_METRIC_COUNT("msu.adaptive.probes", s.res.adaptive.probes);
          ECMS_METRIC_OBSERVE("msu.adaptive.probes_per_cell",
                              static_cast<double>(s.res.adaptive.probes));
          ECMS_METRIC_COUNT("msu.cells.ok", 1);
          if (opts.record_trace) s.res.trace = std::move(s.trace);
          eng.finish(li);
          s.completed = true;
        };

        for (int level = 1;
             level <= sch.ramp_steps && eng.active_lanes() > 0; ++level) {
          for (std::size_t li = 0; li < lane_ckts.size(); ++li) {
            Slot& s = slots[lane_slot[li]];
            if (eng.state(li) == circuit::BatchEngine::LaneState::kActive) {
              s.seg = circuit::Trace({"msu_out"});
            }
          }
          eng.advance(sch.t_ramp_start +
                          static_cast<double>(level) * step_duration,
                      sample_out);
          for (std::size_t li = 0; li < lane_ckts.size(); ++li) {
            Slot& s = slots[lane_slot[li]];
            if (eng.state(li) != circuit::BatchEngine::LaneState::kActive)
              continue;
            if (!s.t_flip) {
              s.t_flip = circuit::first_crossing(s.seg, "msu_out", vdd_half,
                                                 circuit::Edge::kRising);
            }
            if (s.t_flip) conclude(li);
          }
        }

        // No flip during the staircase proper: run the tail so a late flip
        // (or full-scale code) decodes exactly as the exhaustive run would.
        if (eng.active_lanes() > 0) {
          for (std::size_t li = 0; li < lane_ckts.size(); ++li) {
            Slot& s = slots[lane_slot[li]];
            if (eng.state(li) == circuit::BatchEngine::LaneState::kActive) {
              s.seg = circuit::Trace({"msu_out"});
            }
          }
          eng.advance(sch.t_end, sample_out);
          for (std::size_t li = 0; li < lane_ckts.size(); ++li) {
            Slot& s = slots[lane_slot[li]];
            if (eng.state(li) != circuit::BatchEngine::LaneState::kActive)
              continue;
            if (!s.t_flip) {
              s.t_flip = circuit::first_crossing(s.seg, "msu_out", vdd_half,
                                                 circuit::Edge::kRising);
            }
            conclude(li);
          }
        }
      } else {
        // Exhaustive flow: one lockstep pass over the whole schedule.
        eng.advance(sch.t_end, sample5);
        for (std::size_t li = 0; li < lane_ckts.size(); ++li) {
          Slot& s = slots[lane_slot[li]];
          if (eng.state(li) != circuit::BatchEngine::LaneState::kActive)
            continue;
          s.res.stats.accepted_steps = eng.stats(li).accepted_steps;
          s.res.stats.newton_iterations = eng.stats(li).newton_iterations;
          s.res.prefix_steps = steps_until(s.trace, sch.t_ramp_start);
          s.res.v_plate_charged =
              s.trace.value_at("plate", sch.t_charge_end);
          s.res.vgs_shared =
              s.trace.value_at("msu_vgs", sch.t_ramp_start - 0.2e-9);
          const auto flip = circuit::first_crossing(
              s.trace, "msu_out", vdd_half, circuit::Edge::kRising,
              sch.t_ramp_start - 0.1e-9);
          s.res.t_out_rise = flip;
          s.res.code = flip.has_value() ? sch.code_of_flip_time(*flip)
                                        : sch.code_no_flip();
          s.res.status = CellStatus::kOk;
          ECMS_METRIC_COUNT("msu.cells.ok", 1);
          if (opts.record_trace) s.res.trace = std::move(s.trace);
          eng.finish(li);
          s.completed = true;
        }
      }

      for (std::size_t li = 0; li < lane_ckts.size(); ++li) {
        const Slot& s = slots[lane_slot[li]];
        if (!s.completed &&
            eng.state(li) == circuit::BatchEngine::LaneState::kRetired) {
          ECMS_LOG(LogLevel::kDebug)
              << "batch: cell (" << s.row << "," << s.col
              << ") retired to the scalar path: " << eng.retire_reason(li);
        }
      }
    }

    // Per-cell finalization mirrors extract_array's loop: cells the batch
    // completed consume their result as attempt 0; retired or hook-failed
    // cells re-measure on the scalar path under the same retry/containment
    // policy (the attempt-0 hook already ran above and is not re-run).
    for (Slot& s : slots) {
      if (plain) {
        ExtractionResult res =
            s.completed ? std::move(s.res)
                        : extract_cell(mc, s.row, s.col, params, plan.timing,
                                       opts);
        if (res.status == CellStatus::kRecovered) ++out.report.recovered;
        out.status.push_back(res.status);
        out.results.push_back(std::move(res));
        continue;
      }
      ExtractionResult res;
      const util::RetryResult rr =
          util::run_with_retry(plan.retry, [&](int attempt) {
            if (attempt == 0) {
              if (s.hook_failed) throw std::runtime_error(s.hook_error);
              if (s.completed) {
                res = std::move(s.res);
                return;
              }
              res = extract_cell(mc, s.row, s.col, params, plan.timing, opts);
              return;
            }
            if (plan.cell_hook) plan.cell_hook(s.row, s.col, attempt);
            res = extract_cell(mc, s.row, s.col, params, plan.timing, opts);
          });
      if (!rr.ok) {
        if (!plan.contain) {
          throw MeasureError("cell (" + std::to_string(s.row) + "," +
                             std::to_string(s.col) +
                             ") unmeasurable: " + rr.last_error);
        }
        ECMS_METRIC_COUNT("msu.cells.unmeasurable", 1);
        ECMS_LOG(LogLevel::kInfo) << "cell (" << s.row << "," << s.col
                                  << ") unmeasurable: " << rr.last_error;
        ExtractionResult placeholder;
        placeholder.delta_i = opts.delta_i;
        placeholder.code =
            std::clamp(plan.unmeasurable_code, 0, params.ramp_steps);
        placeholder.status = CellStatus::kUnmeasurable;
        out.results.push_back(std::move(placeholder));
        out.status.push_back(CellStatus::kUnmeasurable);
        out.report.failures.push_back({s.row, s.col, rr.last_error});
        continue;
      }
      if (rr.recovered() && res.status == CellStatus::kOk)
        res.status = CellStatus::kRecovered;
      if (res.status == CellStatus::kRecovered) ++out.report.recovered;
      out.status.push_back(res.status);
      out.results.push_back(std::move(res));
    }
  }
  return out;
}

}  // namespace ecms::msu
