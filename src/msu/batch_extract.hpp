// Batched array extraction: row-major chunks of cells advanced in lockstep
// through one shared NetlistProgram by circuit::BatchEngine, with per-cell
// results bit-identical to the scalar extract_array path (DESIGN.md §14).
//
// This header is the internal seam between msu::extract_array (which owns
// the engagement decision) and the lockstep driver; callers configure
// batching through ExtractPlan::batch_width / extraction::ExtractRequest,
// not by calling these directly.
#pragma once

#include <cstddef>

#include "msu/extract.hpp"

namespace ecms::msu {

/// Whether `plan` can run on the lockstep batch path at all: no solve hooks
/// (fault injection runs scalar), a shared program cache (segment-stable
/// pivot order is what makes the lockstep run bit-identical to resumed
/// scalar segments), and not the dense backend (the batch kernels are the
/// sparse path; kAuto engages and relies on the dense==sparse code identity
/// the EXT-A9 gate enforces).
bool batch_engageable(const ExtractPlan& plan);

/// Lane count for a requested ExtractPlan::batch_width (0 = auto by host
/// ISA, otherwise the request, floored at 2).
std::size_t resolved_batch_width(int batch_width);

/// extract_array's batched engine: measures every cell of `mc` in lockstep
/// chunks of `width`, re-measuring retired lanes through the scalar
/// extract_cell path. `opts` is plan.options with delta_i already resolved.
/// Preconditions: batch_engageable(plan) and width >= 2.
RobustExtraction extract_array_batched(const edram::MacroCell& mc,
                                       const StructureParams& params,
                                       const ExtractPlan& plan,
                                       const ExtractOptions& opts,
                                       std::size_t width);

}  // namespace ecms::msu
