// Design-space exploration for the measurement structure.
//
// The paper states the structure was "scaled in a range of eDRAM capacitor
// of 10fF-55fF with an accuracy of 6%", i.e. the authors sized C_REF and the
// current ramp for that window. This module makes the sizing trade-off
// explicit and reproducible: for candidate REF geometries / trim capacitors
// it evaluates the achievable range and accuracy with the fast model, which
// is what the C_REF and ramp-step ablation benches sweep.
#pragma once

#include <vector>

#include "msu/abacus.hpp"
#include "msu/fastmodel.hpp"

namespace ecms::msu {

/// One evaluated candidate design.
struct DesignPoint {
  StructureParams params;
  double cref = 0.0;        ///< total reference capacitance (F)
  double range_lo = 0.0;    ///< measured window bottom (F)
  double range_hi = 0.0;    ///< measured window top (F)
  double worst_acc = 0.0;   ///< worst in-window relative half-width
  double mean_acc = 0.0;    ///< mean in-window relative half-width
  std::size_t codes_used = 0;
  bool monotonic = true;
  /// Scalar figure of merit: window coverage of the target [spec_lo,
  /// spec_hi] minus an accuracy penalty. Higher is better.
  double score = 0.0;
};

/// Evaluates one candidate against a macro-cell context.
DesignPoint evaluate_design(const edram::MacroCell& mc,
                            const StructureParams& params,
                            std::size_t sweep_points = 361);

/// Grid search over REF widths (and optional trim capacitors). Returns all
/// evaluated points sorted best-first.
std::vector<DesignPoint> explore_designs(
    const edram::MacroCell& mc, const StructureParams& base,
    const std::vector<double>& ref_widths,
    const std::vector<double>& trim_caps = {0.0});

/// Sizes the structure for a given macro-cell ("the test structure is
/// scaled" — paper). The plate offset grows with array size, so C_REF must
/// grow with it to keep the 10-55 fF window on the REF transistor's usable
/// transfer range; this runs a coarse-then-fine REF-width search and returns
/// the best design. The shipped StructureParams default is this procedure's
/// result for the 4x4 reference macro-cell.
StructureParams auto_size_structure(const edram::MacroCell& mc,
                                    const StructureParams& base = {});

}  // namespace ecms::msu
