#include "msu/fastmodel.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace ecms::msu {

namespace {
double series_cap(double a, double b) {
  if (a <= 0.0 || b <= 0.0) return 0.0;
  return a * b / (a + b);
}

// Fraction of a bridged neighbour's capacitance that survives into the
// measurement. Transistor-level simulation of the default 5 kOhm bridge in a
// 4x4 macro-cell shows most of the neighbour's charge is lost before the
// share: during step 2 the neighbour's storage node sits in a resistive
// divider between its VDD bit line and the grounded target bit line, and in
// step 3 recharging it to ground is paid for by the already-floating plate.
// The surviving contribution is a slightly elevated code; the *reliable*
// bridge signature is the static supply current (see msu::Disambiguator).
constexpr double kBridgeChargeEfficiency = 0.15;
}  // namespace

double design_ramp_imax(const edram::MacroCell& mc, const StructureParams& p) {
  StructureParams q = p;
  q.ramp_i_max = 0.0;  // the constructor derives it below
  const FastModel m(mc, q);
  return m.i_max();
}

FastModel::FastModel(const edram::MacroCell& mc, const StructureParams& p)
    : mc_(mc), params_(p), steps_(p.ramp_steps) {
  ECMS_REQUIRE(p.ramp_steps > 0, "ramp needs at least one step");
  const auto& t = mc.tech();
  ref_params_ = t.nmos(p.ref_w, p.ref_l);

  // Receiving side: REF gate input capacitance, the trim capacitor, and the
  // LEC pass device's source-side junction/overlap.
  const circuit::MosParams pass = t.nmos(p.pass_w, t.l_min);
  cref_side_ = p.cref_total(t) + pass.c_junction() + pass.c_overlap();

  // Storage-node parasitic of a cell whose access device is off.
  const circuit::MosParams acc =
      t.nmos(mc.spec().access_w, mc.spec().access_l);
  c_stor_par_ = acc.c_junction() + 2.0 * acc.c_overlap();

  // Floating bit line: routing plus the select and access device loads
  // (shared definition with the sense path).
  cbl_float_ = mc.bitline_total_cap();

  // Structure devices on the plate: STD source, PRG source, LEC drain.
  const circuit::MosParams stdm = t.nmos(p.std_w, t.l_min);
  struct_junctions_ = 2.0 * (pass.c_junction() + pass.c_overlap()) +
                      stdm.c_junction() + stdm.c_overlap();

  ref_offset_ = plate_offset(0, 0);
  auto_ramp_ = p.ramp_i_max <= 0.0;
  const double imax = auto_ramp_
                          ? decision_current(p.spec_hi_f + ref_offset_)
                          : p.ramp_i_max;
  delta_i_ = imax / static_cast<double>(steps_);
}

void FastModel::set_vgs_correction(double volts) {
  vgs_correction_ = volts;
  if (auto_ramp_) {
    delta_i_ = decision_current(params_.spec_hi_f + ref_offset_) /
               static_cast<double>(steps_);
  }
}

double FastModel::floating_cell_load(std::size_t r, std::size_t c) const {
  const tech::DefectElectrical e = tech::electrical_of(mc_.defect(r, c));
  const double cs =
      e.disconnected ? e.residual_cap : mc_.true_cap(r, c) * e.cap_scale;
  return series_cap(cs, c_stor_par_);
}

double FastModel::row_coupling(std::size_t r, std::size_t exclude_col) const {
  double sum = 0.0;
  for (std::size_t c = 0; c < mc_.cols(); ++c) {
    if (c == exclude_col) continue;
    const tech::DefectElectrical e = tech::electrical_of(mc_.defect(r, c));
    if (e.shunt_r > 0.0) {
      // A shorted cell on the target row ties its floating bit line
      // resistively to the plate: the full bit-line capacitance rides along.
      sum += cbl_float_;
      continue;
    }
    const double cs =
        e.disconnected ? e.residual_cap : mc_.true_cap(r, c) * e.cap_scale;
    sum += series_cap(cs, cbl_float_);
  }
  return sum;
}

double FastModel::base_offset(std::size_t target_row) const {
  double sum = mc_.plate_parasitic() + struct_junctions_;
  for (std::size_t r = 0; r < mc_.rows(); ++r) {
    if (r == target_row) continue;
    for (std::size_t c = 0; c < mc_.cols(); ++c)
      sum += floating_cell_load(r, c);
  }
  return sum;
}

double FastModel::plate_offset(std::size_t r, std::size_t c) const {
  ECMS_REQUIRE(r < mc_.rows() && c < mc_.cols(), "cell index out of range");
  return base_offset(r) + row_coupling(r, c);
}

double FastModel::vgs_of_total(double total) const {
  const double vdd = mc_.tech().vdd;
  return vdd * total / (total + cref_side_);
}

double FastModel::miller_boost(double total) const {
  // During the conversion the sense node creeps up toward VDD/2 as the
  // injected current approaches REF's capability; that rise couples back
  // into the V_GS island through REF's gate-drain overlap and defers the
  // flip. Modeled at the decision point (sense = VDD/2).
  const double c_ov = ref_params_.c_overlap();
  return c_ov * (mc_.tech().vdd / 2.0) / (total + cref_side_);
}

double FastModel::decision_current(double total) const {
  return ref_current(vgs_of_total(total) + miller_boost(total) +
                     vgs_correction_);
}

double FastModel::vgs_of_cap(double cm_eff) const {
  ECMS_REQUIRE(cm_eff >= 0.0, "capacitance must be non-negative");
  return vgs_of_total(cm_eff + ref_offset_);
}

double FastModel::ref_current(double vgs) const {
  const double vdd = mc_.tech().vdd;
  return circuit::mos_ids(ref_params_, vgs, vdd / 2.0);
}

int FastModel::code_of_vgs_current(double i) const {
  const int k = static_cast<int>(std::floor(std::max(i, 0.0) / delta_i_));
  return std::clamp(k, 0, steps_);
}

int FastModel::code_of_cap(double cm_eff) const {
  ECMS_REQUIRE(cm_eff >= 0.0, "capacitance must be non-negative");
  return code_of_vgs_current(decision_current(cm_eff + ref_offset_));
}

int FastModel::code_of_cap(double cm_eff, const MeasureNoise& noise,
                           Rng& rng) const {
  if (!noise.enabled) return code_of_cap(cm_eff);
  const double total = cm_eff + ref_offset_;
  double vgs = vgs_of_total(total) + miller_boost(total) + vgs_correction_;
  if (noise.vgs_sigma > 0.0) vgs += rng.normal(0.0, noise.vgs_sigma);
  double i = ref_current(std::max(vgs, 0.0));
  if (noise.comparator_sigma_i > 0.0)
    i += rng.normal(0.0, noise.comparator_sigma_i);
  return code_of_vgs_current(i);
}

double FastModel::measured_cap_of_cell(std::size_t r, std::size_t c) const {
  const tech::DefectElectrical e = tech::electrical_of(mc_.defect(r, c));
  if (e.shunt_r > 0.0) return 0.0;  // charge drains before the comparison
  double cm =
      e.disconnected ? e.residual_cap : mc_.true_cap(r, c) * e.cap_scale;
  // A bridge grounds the partner's storage node through the target's bit
  // line, so part of the partner's capacitor is measured along (most of its
  // charge is lost to the step-2 divider; see kBridgeChargeEfficiency).
  if (const auto partner = mc_.bridge_partner_col(r, c)) {
    cm += kBridgeChargeEfficiency * mc_.effective_cap(r, *partner);
  }
  return cm;
}

int FastModel::code_of_cell(std::size_t r, std::size_t c) const {
  const tech::DefectElectrical e = tech::electrical_of(mc_.defect(r, c));
  if (e.shunt_r > 0.0) return 0;
  const double total = measured_cap_of_cell(r, c) + plate_offset(r, c);
  return code_of_vgs_current(decision_current(total));
}

int FastModel::code_of_cell(std::size_t r, std::size_t c,
                            const MeasureNoise& noise, Rng& rng) const {
  if (!noise.enabled) return code_of_cell(r, c);
  const tech::DefectElectrical e = tech::electrical_of(mc_.defect(r, c));
  if (e.shunt_r > 0.0) return 0;
  const double total = measured_cap_of_cell(r, c) + plate_offset(r, c);
  double vgs = vgs_of_total(total) + miller_boost(total) + vgs_correction_;
  if (noise.vgs_sigma > 0.0) vgs += rng.normal(0.0, noise.vgs_sigma);
  double i = ref_current(std::max(vgs, 0.0));
  if (noise.comparator_sigma_i > 0.0)
    i += rng.normal(0.0, noise.comparator_sigma_i);
  return code_of_vgs_current(i);
}

double FastModel::cap_at_code_boundary(int k) const {
  ECMS_REQUIRE(k >= 1 && k <= steps_, "code boundary index out of range");
  const double i_target = static_cast<double>(k) * delta_i_;
  // The decision current is monotone in capacitance; bisect.
  const auto i_of = [&](double cm) { return decision_current(cm + ref_offset_); };
  double lo = 0.0, hi = 1e-12;  // 1 pF upper bracket
  if (i_of(lo) >= i_target) return -1.0;
  if (i_of(hi) < i_target) return hi;
  for (int it = 0; it < 200; ++it) {
    const double mid = 0.5 * (lo + hi);
    if (i_of(mid) < i_target) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace ecms::msu
