// The paper's embedded capacitor-measurement structure (Figure 1, right).
//
// Connected to the macro-cell plate node:
//   * STD   — NMOS holding the plate at VDD/2 in standard operation,
//             switched off in test mode;
//   * PRG   — NMOS select from the IN pin to the plate (charging path);
//   * LEC   — NMOS select from the plate to the gate of REF (sharing path);
//   * REF   — NMOS whose gate input capacitance *is* C_REF and which performs
//             the analog-to-digital conversion: a programmable current source
//             I_REFP injects a 20-step linear staircase into its drain, and
//             the drain flips a two-inverter sense chain once the injected
//             current exceeds what REF can sink at V_GS;
//   * OUT   — digital output of the second inverter.
//
// All control gates are driven at the boosted level VPP so the NMOS switches
// pass full rails (standard DRAM word-line practice; without it PRG would
// charge the plate only to VDD - Vth).
#pragma once

#include <string>

#include "circuit/netlist.hpp"
#include "tech/tech.hpp"

namespace ecms::msu {

/// Design parameters of the measurement structure.
struct StructureParams {
  // REF transistor geometry: its gate input capacitance is the reference
  // capacitor C_REF of the charge-sharing step. The default (C_REF ~ 90 fF)
  // is sized so that, with the ~19 fF plate offset of a 4x4 macro-cell, the
  // spec window 10-55 fF spans subthreshold-to-strong-inversion on REF and
  // therefore the full 0..20 code range: the measured window of this design
  // is [10.4, 55.0] fF (see msu::explore_designs / auto_size_structure and
  // the C_REF ablation bench for the sizing trade-off).
  double ref_w = 25.0e-6;
  double ref_l = 0.35e-6;
  /// Optional explicit trim capacitor at the REF gate (F); 0 = none.
  double cref_trim = 0.0;

  // Switch transistor widths (minimum length).
  double pass_w = 1.0e-6;  ///< PRG and LEC
  double std_w = 1.0e-6;   ///< STD plate-bias device

  // Sense inverters.
  double inv_wn = 0.5e-6;
  double inv_wp = 1.0e-6;

  // Programmable current reference I_REFP.
  int ramp_steps = 20;
  /// Full-scale ramp current (A). 0 = auto-design: pinned so that the
  /// specification-window top spec_hi_f maps to the last code (see
  /// design_ramp_imax()).
  double ramp_i_max = 0.0;

  // Specification window the structure is scaled for (the paper: 10-55 fF).
  double spec_lo_f = 10e-15;
  double spec_hi_f = 55e-15;

  /// C_REF estimate: REF gate input capacitance plus the trim capacitor.
  double cref_total(const tech::Technology& t) const;
};

/// Handles to the structure's nets and control sources.
struct StructureNet {
  circuit::NodeId vgs = 0;    ///< REF gate (charge-sharing node)
  circuit::NodeId sense = 0;  ///< REF drain (current comparison node)
  circuit::NodeId out = 0;    ///< digital output
  circuit::NodeId in = 0;     ///< IN pin (charging input)
  std::string in_source;      ///< "V_IN"
  std::string prg_source;     ///< "V_PRG" (gate)
  std::string lec_source;     ///< "V_LEC" (gate)
  std::string std_source;     ///< "V_STD" (gate)
  std::string irefp_source;   ///< "I_REFP" (current staircase)
};

/// Builds the measurement structure into `ckt`, attached to `plate`.
/// Creates rails "vdd" and "vdd_half" (driven) if not present.
StructureNet build_structure(circuit::Circuit& ckt, circuit::NodeId plate,
                             const tech::Technology& t,
                             const StructureParams& p,
                             const std::string& prefix = "");

}  // namespace ecms::msu
