// Adaptive ramp scheduling: decide the flip code without simulating the
// full I_REFP staircase.
//
// The conversion step of the flow is a monotone threshold search: OUT flips
// at the first ramp level whose reference current exceeds what the sense
// transistor (biased by the charge-shared V_GS) can sink. The scheduler
// snapshots the solver after step 4 (charge sharing done, ramp not yet
// started) and then binary-searches the predicate "has OUT flipped by the
// end of ramp level k" over cheap checkpoint restarts. Because the staircase
// code is path-dependent — the sense node integrates charge during
// sub-threshold dwells, so a cell's flip depends on the levels it ramped
// through — a probe cannot hold a level in isolation; instead the simulated
// staircase is extended lazily, one level-restart at a time, stopping the
// moment OUT crosses. Probes at or below the deepest simulated level are
// answered from the recorded trajectory for free, so the total transient
// cost is the ramp prefix up to the flip (plus at most one level of
// overshoot) instead of the whole staircase, and the flip time feeds the
// same decode as the exhaustive path — codes are bit-identical by
// construction.
//
// Whenever the scheme cannot be trusted (the cell needed the recovery
// ladder, fault injection is armed, OUT is already high before the ramp, a
// restart fails to converge, or the probe budget runs out), extraction
// falls back to the exhaustive linear ramp — the legacy path, bit-for-bit —
// so adaptive scheduling never changes a code.
#pragma once

#include <functional>
#include <string>

namespace ecms::msu {

struct AdaptiveOptions {
  bool enabled = false;
  /// Probe budget of the code search before giving up and falling back to
  /// the full ramp. Probes answered from the already-simulated trajectory
  /// are free but still count toward this budget.
  int max_probes = 12;
};

/// What the scheduler did for one cell.
struct AdaptiveReport {
  bool attempted = false;  ///< adaptive scheduling was enabled for this cell
  bool used = false;       ///< the code came from the probe search
  bool fell_back = false;  ///< the exhaustive ramp decided the code instead
  std::string fallback_reason;
  int probes = 0;  ///< probe-search queries (checkpoint restarts are fewer)
  int guess = -1;  ///< model-predicted code seeding the search (-1: none)
};

/// Binary-searches the smallest ramp level k in [1, steps] for which
/// `probe(k)` is true, seeded by `guess` (a predicted code, i.e. predicted
/// threshold level guess+1; pass -1 for no prediction). Returns the level
/// minus one (so `steps` when no level satisfies the predicate), or -1 if
/// `max_probes` probes were spent before the bracket closed. `probe` must
/// be monotone: false below the threshold level, true at and above it. Each
/// level is probed at most once. With an exact or off-by-one guess the
/// search closes in two to three probes; an unseeded search costs
/// ceil(log2(steps + 1)).
int schedule_ramp_search(int steps, int guess, int max_probes,
                         const std::function<bool(int)>& probe,
                         int* probes_used = nullptr);

}  // namespace ecms::msu
