// The five-step measurement flow (Section 2 of the paper), as waveform
// programming of the array/structure control sources.
//
//   step 1 [0,T):   discharge — all word lines on, all bit lines selected and
//                   grounded, LEC on, PRG on with IN = 0; every capacitor
//                   ends grounded on both nodes.
//   step 2 [T,2T):  charge Cm — only the target word line stays on; all bit
//                   lines except the target's are raised to VDD; LEC off;
//                   IN = VDD charges the plate through PRG. PRG turns off at
//                   the end of the step.
//   step 3 [2T,3T): isolate — every bit-line select except the target's
//                   turns off; Cm is the only capacitor still active on the
//                   plate.
//   step 4 [3T,4T): share — LEC turns on; Cm charge-shares with C_REF,
//                   establishing V_GS = f(Cm).
//   step 5 [4T,5T): convert — I_REFP steps through `ramp_steps` equal
//                   current increments; OUT flips when the injected current
//                   exceeds what REF can sink; the step index at the flip is
//                   the digital image of Cm.
//
// T = 10 ns by default, exactly the paper's timing.
#pragma once

#include "circuit/wave.hpp"
#include "edram/netlister.hpp"
#include "msu/structure.hpp"

namespace ecms::msu {

struct MeasurementTiming {
  double step = 10e-9;       ///< duration of each flow step (s)
  double edge = 0.2e-9;      ///< control-signal edge time (s)
  double ramp_rise = 0.05e-9;  ///< current-staircase riser time (s)
  double tail = 1e-9;        ///< settle margin after step 5 (s)

  double t_step(int i) const { return step * static_cast<double>(i); }
  double t_end() const { return 5.0 * step + tail; }
};

/// Everything the interpretation of a run needs to know about the schedule.
struct Schedule {
  double t_charge_end = 0.0;  ///< end of step 2 (plate fully charged)
  double t_share = 0.0;       ///< start of step 4
  double t_ramp_start = 0.0;  ///< start of step 5
  double t_end = 0.0;
  double delta_i = 0.0;       ///< ramp LSB (A)
  int ramp_steps = 0;
  /// Comparator decision latency compensated when decoding the flip time:
  /// the sense node slews and the inverters add delay, so OUT rises ~0.3 ns
  /// after the step that actually tripped it (at 0.5 ns/step that is most of
  /// a step). The silicon equivalent is strobing the shift register late.
  double decision_latency = 0.3e-9;
  circuit::SourceWave ramp = circuit::SourceWave::dc(0.0);  ///< programmed I_REFP waveform

  /// Code implied by an OUT rising edge at time t: the staircase step active
  /// at the (latency-compensated) flip minus one — the structure withstood
  /// `code` steps; no flip within the conversion window means full scale.
  int code_of_flip_time(double t) const;
  int code_no_flip() const { return ramp_steps; }
};

/// Programs all array and structure sources for measuring cell (row, col).
/// `delta_i` is the ramp LSB (use FastModel::delta_i() for the designed
/// value). The circuit must contain the sources named in `net` and `msu`.
Schedule program_measurement(circuit::Circuit& ckt,
                             const edram::ArrayNet& net,
                             const StructureNet& msu,
                             const edram::MacroCell& mc, std::size_t row,
                             std::size_t col, double delta_i,
                             const StructureParams& params,
                             const MeasurementTiming& timing = {});

}  // namespace ecms::msu
