#include "msu/adaptive.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace ecms::msu {

int schedule_ramp_search(int steps, int guess, int max_probes,
                         const std::function<bool(int)>& probe,
                         int* probes_used) {
  ECMS_REQUIRE(steps >= 1, "ramp search needs at least one level");
  // Bracket invariant: level lo never flips, level hi always flips.
  // lo = 0 and hi = steps + 1 hold virtually: level 0 means "no reference
  // current" (cannot flip) and steps + 1 stands for "beyond full scale"
  // (the no-flip outcome decodes as code == steps).
  int lo = 0;
  int hi = steps + 1;
  int used = 0;
  auto do_probe = [&](int k) {
    ++used;
    return probe(k);
  };

  // Seed phase: bracket the predicted boundary directly. An exact guess g
  // closes with probes at g+1 (flip) and g (no flip); an off-by-one guess
  // needs one more.
  if (guess >= 0 && hi - lo > 1 && used < max_probes) {
    const int g = std::clamp(guess, 0, steps);
    const int k1 = std::clamp(g + 1, lo + 1, hi - 1);
    if (do_probe(k1)) hi = k1; else lo = k1;
    if (hi - lo > 1 && used < max_probes) {
      const int k2 = std::clamp(hi == k1 ? g : g + 2, lo + 1, hi - 1);
      if (do_probe(k2)) hi = k2; else lo = k2;
    }
    if (hi - lo > 1 && used < max_probes && hi == g && g - 1 > lo) {
      // Guess proved at least one too high; test one below before bisecting.
      if (do_probe(g - 1)) hi = g - 1; else lo = g - 1;
    }
  }

  while (hi - lo > 1) {
    if (used >= max_probes) {
      if (probes_used != nullptr) *probes_used = used;
      return -1;
    }
    const int k = lo + (hi - lo) / 2;
    if (do_probe(k)) hi = k; else lo = k;
  }

  if (probes_used != nullptr) *probes_used = used;
  return hi - 1;
}

}  // namespace ecms::msu
