// Calibration of the fast model against the circuit-level reference.
//
// The paper derives its abacus "from a set of simulation"; the equivalent
// here is fitting the fast model's single free parameter — an additive V_GS
// correction that lumps the switch-feedthrough and injection losses the
// closed form does not carry — from a handful of transistor-level
// extractions. After calibration the fast model tracks the circuit within
// one code step across the window (asserted by the integration tests), so
// array-scale analog bitmaps inherit circuit-level fidelity.
#pragma once

#include <vector>

#include "msu/extract.hpp"
#include "msu/fastmodel.hpp"

namespace ecms::msu {

struct CalibrationPoint {
  double cm = 0.0;        ///< probed capacitance (F)
  double vgs_fast = 0.0;  ///< closed-form shared V_GS
  double vgs_circuit = 0.0;  ///< transistor-level shared V_GS
};

struct CalibrationResult {
  double vgs_correction = 0.0;  ///< mean(vgs_circuit - vgs_fast)
  std::vector<CalibrationPoint> points;
};

/// Runs circuit-level extractions at `probe_caps` (target cell (0,0) of the
/// model's macro-cell, other cells untouched), fits the mean V_GS deviation
/// and installs it into `model`. Each probe costs one transient simulation
/// (~0.1 s for a 4x4 macro-cell).
CalibrationResult calibrate_fast_model(
    FastModel& model, const std::vector<double>& probe_caps = {20e-15,
                                                               45e-15},
    const MeasurementTiming& timing = {}, const ExtractOptions& options = {
                                             .dt = 20e-12,
                                             .record_trace = false});

}  // namespace ecms::msu
