#include "bisr/yield.hpp"

#include <vector>

#include "edram/behavioral.hpp"
#include "march/runner.hpp"
#include "msu/fastmodel.hpp"
#include "tech/tech.hpp"
#include "util/error.hpp"

namespace ecms::bisr {

namespace {

// The analog repair list: functional failures plus everything the analog
// bitmap flags as at-risk (under-range, over-range, marginal-low).
bitmap::DigitalBitmap analog_repair_targets(
    const bitmap::DigitalBitmap& functional_fails,
    const bitmap::AnalogBitmap& analog,
    const bitmap::SignatureParams& sig_params) {
  bitmap::DigitalBitmap targets = functional_fails;
  const bitmap::SignatureMap sig =
      bitmap::SignatureMap::categorize(analog, sig_params);
  for (std::size_t r = 0; r < analog.rows(); ++r) {
    for (std::size_t c = 0; c < analog.cols(); ++c) {
      const bitmap::CellSignature s = sig.at(r, c);
      if (s == bitmap::CellSignature::kUnderRange ||
          s == bitmap::CellSignature::kMarginalLow ||
          s == bitmap::CellSignature::kOverRange) {
        targets.set_fail(r, c);
      }
    }
  }
  return targets;
}

}  // namespace

namespace {

/// One Monte-Carlo trial's pass/fail outcomes (reduced after the loop so
/// the counters are identical whatever order the trials finish in).
struct TrialOutcome {
  bool repaired_digital = false;
  bool repaired_analog = false;
  bool survive_digital = false;
  bool survive_analog = false;
};

}  // namespace

YieldReport estimate_repair_yield(const YieldExperiment& exp,
                                  util::ThreadPool* pool) {
  ECMS_REQUIRE(exp.trials > 0, "yield experiment needs trials");
  const Rng rng(exp.seed);
  const tech::Technology t = tech::tech018();
  YieldReport rep;
  rep.trials = exp.trials;

  std::vector<TrialOutcome> outcomes(exp.trials);
  util::ThreadPool::run(pool, exp.trials, 1, [&](std::size_t trial) {
    // Fabricate one array; every draw of this trial comes from a stream
    // keyed by the trial index, independent of scheduling.
    Rng trial_rng = rng.fork(trial);
    edram::MacroCellSpec spec;
    spec.rows = exp.rows;
    spec.cols = exp.cols;
    tech::CapField caps(exp.cap_process, exp.rows, exp.cols,
                        trial_rng.next_u64());
    tech::DefectMap defects = tech::DefectMap::random(
        exp.rows, exp.cols, exp.defect_rates, trial_rng);
    const edram::MacroCell mc(spec, t, std::move(caps), std::move(defects));

    // Time-zero digital bitmap (March C-).
    edram::BehavioralArray array(mc);
    march::EdramMemory mem(array);
    const auto march_res = march::run_march(mem, march::march_c_minus());
    const bitmap::DigitalBitmap& digital = march_res.fail_bitmap;

    // Analog bitmap (plate-segmented: one structure per 4x4 tile).
    const msu::StructureParams sp;
    const bitmap::AnalogBitmap analog =
        bitmap::AnalogBitmap::extract_tiled(mc, sp);

    // Allocate both repairs.
    const RepairSolution rep_digital =
        allocate_greedy(digital, exp.redundancy);
    const bitmap::DigitalBitmap analog_targets =
        analog_repair_targets(digital, analog, exp.signature);
    const RepairSolution rep_analog =
        allocate_greedy(analog_targets, exp.redundancy);

    outcomes[trial].repaired_digital = rep_digital.success;
    outcomes[trial].repaired_analog = rep_analog.success;

    // Burn-in: decide which cells degrade into failures (same draw for both
    // policies so the comparison is paired).
    std::vector<char> burnin_fail(exp.rows * exp.cols, 0);
    for (std::size_t r = 0; r < exp.rows; ++r) {
      for (std::size_t c = 0; c < exp.cols; ++c) {
        const double cap = mc.effective_cap(r, c);
        const bool marginal =
            cap >= exp.marginal.lo_f && cap < exp.marginal.hi_f;
        const double p = marginal ? exp.burn_in.marginal_fail_prob
                                  : exp.burn_in.nominal_fail_prob;
        burnin_fail[r * exp.cols + c] = trial_rng.bernoulli(p) ? 1 : 0;
      }
    }

    const auto survives = [&](const RepairSolution& sol,
                              const bitmap::DigitalBitmap& t0_fails) {
      if (!sol.success) return false;
      for (std::size_t r = 0; r < exp.rows; ++r) {
        for (std::size_t c = 0; c < exp.cols; ++c) {
          const bool fails_eventually =
              t0_fails.fails(r, c) || burnin_fail[r * exp.cols + c] != 0;
          if (!fails_eventually) continue;
          const bool covered =
              std::find(sol.rows.begin(), sol.rows.end(), r) !=
                  sol.rows.end() ||
              std::find(sol.cols.begin(), sol.cols.end(), c) !=
                  sol.cols.end();
          if (!covered) return false;
        }
      }
      return true;
    };

    outcomes[trial].survive_digital = survives(rep_digital, digital);
    outcomes[trial].survive_analog = survives(rep_analog, digital);
  });

  for (const TrialOutcome& o : outcomes) {
    if (o.repaired_digital) ++rep.repaired_time_zero_digital;
    if (o.repaired_analog) ++rep.repaired_time_zero_analog;
    if (o.survive_digital) ++rep.survive_burn_in_digital;
    if (o.survive_analog) ++rep.survive_burn_in_analog;
  }
  return rep;
}

}  // namespace ecms::bisr
