#include "bisr/allocator.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace ecms::bisr {

namespace {
struct Fail {
  std::size_t r, c;
};

std::vector<Fail> collect_fails(const bitmap::DigitalBitmap& bm) {
  std::vector<Fail> fails;
  for (std::size_t r = 0; r < bm.rows(); ++r)
    for (std::size_t c = 0; c < bm.cols(); ++c)
      if (bm.fails(r, c)) fails.push_back({r, c});
  return fails;
}

bool is_covered(const Fail& f, const RepairSolution& s) {
  return std::find(s.rows.begin(), s.rows.end(), f.r) != s.rows.end() ||
         std::find(s.cols.begin(), s.cols.end(), f.c) != s.cols.end();
}
}  // namespace

bool covers(const bitmap::DigitalBitmap& fails, const RepairSolution& s) {
  for (const Fail& f : collect_fails(fails))
    if (!is_covered(f, s)) return false;
  return true;
}

RepairSolution allocate_greedy(const bitmap::DigitalBitmap& fails,
                               const RedundancyConfig& cfg) {
  RepairSolution sol;
  std::vector<Fail> remaining = collect_fails(fails);

  auto remove_covered = [&]() {
    std::erase_if(remaining, [&](const Fail& f) { return is_covered(f, sol); });
  };

  // Must-repair fixpoint: a row with more fails than the remaining column
  // spares can only be fixed by a row spare (and symmetrically).
  bool changed = true;
  while (changed) {
    changed = false;
    std::vector<std::size_t> row_fails(fails.rows(), 0);
    std::vector<std::size_t> col_fails(fails.cols(), 0);
    for (const Fail& f : remaining) {
      ++row_fails[f.r];
      ++col_fails[f.c];
    }
    const std::size_t cols_left = cfg.spare_cols - sol.cols.size();
    const std::size_t rows_left = cfg.spare_rows - sol.rows.size();
    for (std::size_t r = 0; r < fails.rows(); ++r) {
      if (row_fails[r] > cols_left && sol.rows.size() < cfg.spare_rows) {
        sol.rows.push_back(r);
        changed = true;
      }
    }
    remove_covered();
    for (std::size_t c = 0; c < fails.cols(); ++c) {
      if (col_fails[c] > rows_left && sol.cols.size() < cfg.spare_cols) {
        if (std::find(sol.cols.begin(), sol.cols.end(), c) == sol.cols.end()) {
          sol.cols.push_back(c);
          changed = true;
        }
      }
    }
    remove_covered();
    if (sol.rows.size() > cfg.spare_rows || sol.cols.size() > cfg.spare_cols) {
      sol.success = false;
      return sol;
    }
  }

  // Greedy: repair whichever remaining line has the most failures.
  while (!remaining.empty()) {
    std::vector<std::size_t> row_fails(fails.rows(), 0);
    std::vector<std::size_t> col_fails(fails.cols(), 0);
    for (const Fail& f : remaining) {
      ++row_fails[f.r];
      ++col_fails[f.c];
    }
    std::size_t best_row = 0, best_col = 0;
    for (std::size_t r = 0; r < fails.rows(); ++r)
      if (row_fails[r] > row_fails[best_row]) best_row = r;
    for (std::size_t c = 0; c < fails.cols(); ++c)
      if (col_fails[c] > col_fails[best_col]) best_col = c;

    const bool can_row = sol.rows.size() < cfg.spare_rows;
    const bool can_col = sol.cols.size() < cfg.spare_cols;
    if (!can_row && !can_col) {
      sol.success = false;
      return sol;
    }
    const bool pick_row =
        can_row &&
        (!can_col || row_fails[best_row] >= col_fails[best_col]);
    if (pick_row) {
      sol.rows.push_back(best_row);
    } else {
      sol.cols.push_back(best_col);
    }
    remove_covered();
  }
  sol.success = true;
  return sol;
}

namespace {
bool branch(const std::vector<Fail>& fails, const RedundancyConfig& cfg,
            RepairSolution& sol) {
  // Find the first uncovered fail.
  const Fail* uncovered = nullptr;
  for (const Fail& f : fails) {
    if (!is_covered(f, sol)) {
      uncovered = &f;
      break;
    }
  }
  if (uncovered == nullptr) return true;  // everything covered

  if (sol.rows.size() < cfg.spare_rows) {
    sol.rows.push_back(uncovered->r);
    if (branch(fails, cfg, sol)) return true;
    sol.rows.pop_back();
  }
  if (sol.cols.size() < cfg.spare_cols) {
    sol.cols.push_back(uncovered->c);
    if (branch(fails, cfg, sol)) return true;
    sol.cols.pop_back();
  }
  return false;
}
}  // namespace

RepairSolution allocate_exact(const bitmap::DigitalBitmap& fails,
                              const RedundancyConfig& cfg) {
  RepairSolution sol;
  const std::vector<Fail> all = collect_fails(fails);
  sol.success = branch(all, cfg, sol);
  if (!sol.success) {
    sol.rows.clear();
    sol.cols.clear();
  }
  return sol;
}

}  // namespace ecms::bisr
