// Spare-row/column redundancy allocation (the BISR context the paper's
// introduction places the structure in).
//
// Given a fail bitmap and a spare budget, find row/column replacements
// covering every failing cell. Exact allocation is NP-complete (Kuo & Fuchs
// 1987); this module implements the standard pipeline: must-repair analysis,
// a greedy most-failures-first heuristic, and an exact branch-and-bound for
// the spare budgets BISR hardware actually has (a handful of spares).
#pragma once

#include <cstddef>
#include <vector>

#include "bitmap/analog_bitmap.hpp"

namespace ecms::bisr {

struct RedundancyConfig {
  std::size_t spare_rows = 2;
  std::size_t spare_cols = 2;
};

struct RepairSolution {
  bool success = false;
  std::vector<std::size_t> rows;  ///< rows replaced by spares
  std::vector<std::size_t> cols;  ///< columns replaced by spares

  std::size_t spares_used() const { return rows.size() + cols.size(); }
};

/// True if the solution covers every failing cell of the bitmap.
bool covers(const bitmap::DigitalBitmap& fails, const RepairSolution& s);

/// Must-repair analysis + greedy allocation. Fast; may fail on instances an
/// exact search could still repair.
RepairSolution allocate_greedy(const bitmap::DigitalBitmap& fails,
                               const RedundancyConfig& cfg);

/// Exact branch-and-bound allocation (exponential in the spare budget only:
/// each uncovered fail branches row-vs-column).
RepairSolution allocate_exact(const bitmap::DigitalBitmap& fails,
                              const RedundancyConfig& cfg);

}  // namespace ecms::bisr
