// Repair-yield estimation: does the analog bitmap's extra information
// (marginal-cell visibility) buy real yield after burn-in?
//
// Scenario: at time-zero test, hard defects fail functionally; marginal
// cells (small-but-working capacitors) pass. During burn-in / early life a
// fraction of marginal cells degrade into failures. A repair allocated from
// the digital bitmap only covers time-zero failures; a repair allocated from
// the analog bitmap can also cover marginal cells preventively. This module
// Monte-Carlos both policies over defect-injected arrays.
#pragma once

#include <cstddef>

#include "bisr/allocator.hpp"
#include "bitmap/compare.hpp"
#include "bitmap/signature.hpp"
#include "tech/capmodel.hpp"
#include "tech/defects.hpp"
#include "util/threadpool.hpp"

namespace ecms::bisr {

struct BurnInModel {
  /// Probability that a marginal cell (per bitmap::MarginalWindow) becomes a
  /// hard failure during early life.
  double marginal_fail_prob = 0.5;
  /// Background early-life failure probability of nominal cells.
  double nominal_fail_prob = 0.0005;
};

struct YieldExperiment {
  std::size_t rows = 32, cols = 32;
  std::size_t trials = 200;
  RedundancyConfig redundancy;
  tech::DefectRates defect_rates{.short_rate = 0.002,
                                 .open_rate = 0.002,
                                 .partial_rate = 0.01,
                                 .bridge_rate = 0.0};
  tech::CapProcessParams cap_process;
  BurnInModel burn_in;
  bitmap::SignatureParams signature;
  bitmap::MarginalWindow marginal;
  std::uint64_t seed = 42;
};

struct YieldReport {
  std::size_t trials = 0;
  std::size_t repaired_time_zero_digital = 0;  ///< repairable at t0 (digital)
  std::size_t repaired_time_zero_analog = 0;
  std::size_t survive_burn_in_digital = 0;  ///< still fail-free after burn-in
  std::size_t survive_burn_in_analog = 0;

  double yield_digital() const {
    return trials == 0 ? 0.0
                       : static_cast<double>(survive_burn_in_digital) /
                             static_cast<double>(trials);
  }
  double yield_analog() const {
    return trials == 0 ? 0.0
                       : static_cast<double>(survive_burn_in_analog) /
                             static_cast<double>(trials);
  }
};

/// Runs the Monte-Carlo comparison. Deterministic for a given experiment
/// seed: each trial samples from Rng::fork(trial), so a non-null `pool`
/// distributes trials across workers without changing any count.
YieldReport estimate_repair_yield(const YieldExperiment& exp,
                                  util::ThreadPool* pool = nullptr);

}  // namespace ecms::bisr
