#include "edram/addressing.hpp"

#include "util/error.hpp"

namespace ecms::edram {

std::string scramble_name(Scramble s) {
  switch (s) {
    case Scramble::kLinear:
      return "linear";
    case Scramble::kRowInterleave:
      return "row-interleave";
    case Scramble::kBitReversalRow:
      return "bit-reversal-row";
  }
  return "?";
}

AddressMap::AddressMap(std::size_t rows, std::size_t cols, Scramble scheme)
    : rows_(rows), cols_(cols), scheme_(scheme) {
  ECMS_REQUIRE(rows > 0 && cols > 0, "address map needs a non-empty array");
  if (scheme == Scramble::kBitReversalRow) {
    // Requires a power-of-two row count.
    std::size_t n = rows;
    while (n > 1) {
      ECMS_REQUIRE(n % 2 == 0,
                   "bit-reversal scrambling needs power-of-two rows");
      n /= 2;
      ++row_bits_;
    }
  }
}

std::size_t AddressMap::map_row(std::size_t lr) const {
  switch (scheme_) {
    case Scramble::kLinear:
      return lr;
    case Scramble::kRowInterleave:
      // Even logical rows fill the top half in order, odd rows the bottom.
      return lr % 2 == 0 ? lr / 2 : (rows_ + 1) / 2 + lr / 2;
    case Scramble::kBitReversalRow: {
      std::size_t rev = 0;
      std::size_t x = lr;
      for (std::size_t b = 0; b < row_bits_; ++b) {
        rev = (rev << 1) | (x & 1);
        x >>= 1;
      }
      return rev;
    }
  }
  return lr;
}

std::size_t AddressMap::unmap_row(std::size_t pr) const {
  switch (scheme_) {
    case Scramble::kLinear:
      return pr;
    case Scramble::kRowInterleave: {
      const std::size_t half = (rows_ + 1) / 2;
      return pr < half ? 2 * pr : 2 * (pr - half) + 1;
    }
    case Scramble::kBitReversalRow:
      return map_row(pr);  // bit reversal is an involution
  }
  return pr;
}

CellAddr AddressMap::physical_of(std::size_t logical) const {
  ECMS_REQUIRE(logical < cell_count(), "logical address out of range");
  const std::size_t lr = logical / cols_;
  const std::size_t lc = logical % cols_;
  return {map_row(lr), lc};
}

std::size_t AddressMap::logical_of(CellAddr phys) const {
  ECMS_REQUIRE(phys.row < rows_ && phys.col < cols_,
               "physical address out of range");
  return unmap_row(phys.row) * cols_ + phys.col;
}

}  // namespace ecms::edram
