// Fast functional (behavioral) model of the eDRAM array.
//
// Used where transistor-level simulation is pointless: march tests over
// thousands of cells, retention studies, digital-bitmap baselines. The model
// tracks each cell's storage-node voltage and resolves reads through the
// standard 1T1C charge-sharing sense equation
//     dV_bl = (V_cell - V_pre) * Cm / (Cm + C_bl),
// compared against a sense-amplifier offset. Defects change the electrical
// story exactly as the netlister does (same tech::DefectElectrical source of
// truth): shorts tie the cell to the plate bias, opens leave only fringe
// capacitance, partials scale Cm, bridges equalize neighbouring cells.
#pragma once

#include <cstddef>
#include <vector>

#include "edram/macrocell.hpp"

namespace ecms::edram {

/// Sense-path parameters for functional reads.
struct SenseParams {
  /// Minimum |dV_bl| for a reliable sense decision (V). Offset + noise +
  /// timing margin of a production sense path, not the raw comparator
  /// offset — this is what makes small-capacitor cells marginal.
  double sense_offset = 0.08;
  /// What an unresolvable (sub-offset) read returns. Real sense amps have a
  /// preferred metastable exit; modeling it as a constant keeps tests
  /// deterministic.
  bool ambiguous_reads_as = false;
};

/// Leakage model for retention behaviour.
struct LeakParams {
  double junction_g = 1e-15;  ///< storage-node leakage to substrate (S)
};

class BehavioralArray {
 public:
  explicit BehavioralArray(const MacroCell& mc, SenseParams sense = {},
                           LeakParams leak = {});

  std::size_t rows() const { return mc_.rows(); }
  std::size_t cols() const { return mc_.cols(); }

  /// Writes a full level for `bit` into the cell (boosted word line: no
  /// threshold degradation), then applies defect physics.
  void write(std::size_t r, std::size_t c, bool bit);

  /// Destructive read with write-back of the sensed value.
  bool read(std::size_t r, std::size_t c);

  /// Non-destructive peek at whether a read would return 1 (used by fault
  /// analysis; does not disturb state).
  bool peek(std::size_t r, std::size_t c) const;

  /// Lets the array sit unpowered-access for `seconds` (retention decay).
  void idle(double seconds);

  /// Storage-node voltage ground truth.
  double storage_voltage(std::size_t r, std::size_t c) const;

  /// Bit-line swing a read of this cell would produce right now (V).
  double read_swing(std::size_t r, std::size_t c) const;

  const MacroCell& macro_cell() const { return mc_; }
  const SenseParams& sense() const { return sense_; }

 private:
  void apply_defect_settling(std::size_t r, std::size_t c);
  void equalize_bridge(std::size_t r, std::size_t c);
  double& v(std::size_t r, std::size_t c) {
    return v_[r * mc_.cols() + c];
  }
  double v(std::size_t r, std::size_t c) const {
    return v_[r * mc_.cols() + c];
  }

  MacroCell mc_;  // by value: safe against temporaries
  SenseParams sense_;
  LeakParams leak_;
  std::vector<double> v_;  // storage-node voltages
};

}  // namespace ecms::edram
