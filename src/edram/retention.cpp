#include "edram/retention.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace ecms::edram {

double retention_time(double cap_f, double leak_g, double vdd,
                      double bitline_cap_f, double sense_offset) {
  ECMS_REQUIRE(leak_g > 0.0, "leakage must be positive");
  ECMS_REQUIRE(sense_offset > 0.0, "sense offset must be positive");
  if (cap_f <= 0.0) return 0.0;
  // Stored '1' decays as v(t) = vdd * exp(-t/tau), tau = C/G. The read
  // swing is (v - vdd/2) * C/(C + Cbl); it crosses the sense margin when
  // v = v_crit:
  const double v_crit =
      vdd / 2.0 + sense_offset * (cap_f + bitline_cap_f) / cap_f;
  if (v_crit >= vdd) return 0.0;  // can't even read back at t = 0
  const double tau = cap_f / leak_g;
  return tau * std::log(vdd / v_crit);
}

RetentionField::RetentionField(const MacroCell& mc, const LeakPopulation& pop,
                               double sense_offset, std::uint64_t seed)
    : rows_(mc.rows()), cols_(mc.cols()) {
  ECMS_REQUIRE(pop.median_g > 0.0 && pop.sigma_log >= 0.0,
               "leak population invalid");
  ECMS_REQUIRE(pop.tail_fraction >= 0.0 && pop.tail_fraction < 1.0,
               "tail fraction out of range");
  Rng rng(seed);
  const double vdd = mc.tech().vdd;
  const double cbl = mc.bitline_total_cap();
  t_ret_.reserve(rows_ * cols_);
  g_leak_.reserve(rows_ * cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      double g = pop.median_g * std::exp(rng.normal(0.0, pop.sigma_log));
      if (rng.bernoulli(pop.tail_fraction)) g *= pop.tail_multiplier;
      // A shorted capacitor leaks through its shunt: retention zero.
      const tech::DefectElectrical e = tech::electrical_of(mc.defect(r, c));
      if (e.shunt_r > 0.0) g = 1.0 / e.shunt_r;
      g_leak_.push_back(g);
      t_ret_.push_back(retention_time(mc.effective_cap(r, c), g, vdd, cbl,
                                      sense_offset));
    }
  }
}

double RetentionField::retention(std::size_t r, std::size_t c) const {
  ECMS_REQUIRE(r < rows_ && c < cols_, "cell index out of range");
  return t_ret_[r * cols_ + c];
}

double RetentionField::leakage(std::size_t r, std::size_t c) const {
  ECMS_REQUIRE(r < rows_ && c < cols_, "cell index out of range");
  return g_leak_[r * cols_ + c];
}

double RetentionField::percentile_time(double fraction) const {
  ECMS_REQUIRE(fraction > 0.0 && fraction <= 1.0,
               "fraction must be in (0, 1]");
  std::vector<double> sorted = t_ret_;
  std::sort(sorted.begin(), sorted.end());
  const auto idx = static_cast<std::size_t>(
      fraction * static_cast<double>(sorted.size() - 1));
  return sorted[idx];
}

double predict_retention(double measured_cap_f, const LeakPopulation& pop,
                         double vdd, double bitline_cap_f,
                         double sense_offset) {
  return retention_time(measured_cap_f, pop.median_g, vdd, bitline_cap_f,
                        sense_offset);
}

}  // namespace ecms::edram
