#include "edram/macrocell.hpp"

#include "util/error.hpp"

namespace ecms::edram {

MacroCell::MacroCell(const MacroCellSpec& spec, const tech::Technology& tech,
                     tech::CapField cap_field, tech::DefectMap defects)
    : spec_(spec),
      tech_(tech),
      caps_(std::move(cap_field)),
      defects_(std::move(defects)) {
  ECMS_REQUIRE(spec.rows > 0 && spec.cols > 0, "macro-cell must be non-empty");
  ECMS_REQUIRE(caps_.rows() == spec.rows && caps_.cols() == spec.cols,
               "capacitance field does not match macro-cell geometry");
  ECMS_REQUIRE(defects_.rows() == spec.rows && defects_.cols() == spec.cols,
               "defect map does not match macro-cell geometry");
}

MacroCell MacroCell::uniform(const MacroCellSpec& spec,
                             const tech::Technology& tech, double cell_cap) {
  tech::CapProcessParams cp;
  cp.nominal = cell_cap;
  cp.local_sigma_rel = 0.0;
  return MacroCell(spec, tech, tech::CapField(cp, spec.rows, spec.cols, 1),
                   tech::DefectMap(spec.rows, spec.cols));
}

MacroCell MacroCell::probe(const MacroCellSpec& spec,
                           const tech::Technology& tech, std::size_t r,
                           std::size_t c, double target_cap,
                           double background_cap) {
  MacroCell mc = uniform(spec, tech, background_cap);
  mc.set_true_cap(r, c, target_cap);
  return mc;
}

double MacroCell::effective_cap(std::size_t r, std::size_t c) const {
  const tech::DefectElectrical e = tech::electrical_of(defect(r, c));
  if (e.disconnected) return e.residual_cap;
  return true_cap(r, c) * e.cap_scale;
}

double MacroCell::bitline_total_cap() const {
  const circuit::MosParams sbl =
      tech_.nmos(kSelectTransistorWidth, tech_.l_min);
  const circuit::MosParams acc = tech_.nmos(spec_.access_w, spec_.access_l);
  return bitline_cap() + sbl.c_junction() + sbl.c_overlap() +
         static_cast<double>(spec_.rows) *
             (acc.c_junction() + acc.c_overlap());
}

MacroCell MacroCell::tile(std::size_t r0, std::size_t c0, std::size_t rows,
                          std::size_t cols) const {
  ECMS_REQUIRE(r0 + rows <= spec_.rows && c0 + cols <= spec_.cols,
               "tile out of range");
  MacroCellSpec spec = spec_;
  spec.rows = rows;
  spec.cols = cols;
  return MacroCell(spec, tech_, caps_.sub(r0, c0, rows, cols),
                   defects_.sub(r0, c0, rows, cols));
}

std::optional<std::size_t> MacroCell::bridge_partner_col(std::size_t r,
                                                         std::size_t c) const {
  if (cols() < 2) return std::nullopt;
  const auto target_of = [this](std::size_t col) {
    return col + 1 < cols() ? col + 1 : col - 1;
  };
  if (tech::electrical_of(defect(r, c)).bridge_r > 0.0) return target_of(c);
  // An adjacent cell may bridge back to us.
  for (const std::size_t adj : {c == 0 ? c : c - 1, c + 1}) {
    if (adj == c || adj >= cols()) continue;
    if (tech::electrical_of(defect(r, adj)).bridge_r > 0.0 &&
        target_of(adj) == c) {
      return adj;
    }
  }
  return std::nullopt;
}

}  // namespace ecms::edram
