// Retention-time analysis.
//
// The eDRAM context the paper lives in: a cell's retention time is set by
// its storage capacitance and its leakage, t_ret = (C/G) * ln(V0 / V_crit),
// where V_crit is the stored level at which the read swing falls below the
// sense margin. Capacitance is exactly what the measurement structure
// grades, so the analog bitmap doubles as a *retention predictor*: cells
// with low codes are the retention tail. This module provides the ground-
// truth retention model (with a heavy-tailed leakage population, as real
// junction leakage is) and the predictor driven by measured codes.
#pragma once

#include <cstddef>
#include <vector>

#include "edram/macrocell.hpp"
#include "util/rng.hpp"

namespace ecms::edram {

/// Leakage population: log-normal body with a defect tail, the standard
/// shape of junction-leakage distributions.
struct LeakPopulation {
  double median_g = 1e-15;      ///< median leakage conductance (S)
  double sigma_log = 0.4;       ///< lognormal sigma (natural log)
  double tail_fraction = 0.01;  ///< fraction of cells with elevated leakage
  double tail_multiplier = 20.0;  ///< leakage multiplier in the tail
};

/// Per-cell ground-truth retention times for one array.
class RetentionField {
 public:
  /// Samples leakage per cell (deterministic per seed) and computes
  /// retention from the macro-cell's effective capacitances.
  RetentionField(const MacroCell& mc, const LeakPopulation& pop,
                 double sense_offset, std::uint64_t seed);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  /// Ground-truth retention time of a cell (s); 0 for cells that cannot
  /// hold data at all (shorts, opens).
  double retention(std::size_t r, std::size_t c) const;
  const std::vector<double>& values() const { return t_ret_; }
  /// Leakage conductance drawn for a cell (S).
  double leakage(std::size_t r, std::size_t c) const;

  /// The retention time below which `fraction` of cells fall (the refresh
  /// period must be shorter than this for that yield).
  double percentile_time(double fraction) const;

 private:
  std::size_t rows_, cols_;
  std::vector<double> t_ret_;
  std::vector<double> g_leak_;
};

/// Closed-form retention time for one cell.
/// Returns 0 if the cell cannot produce a valid read at t = 0.
double retention_time(double cap_f, double leak_g, double vdd,
                      double bitline_cap_f, double sense_offset);

/// Predicted retention from a *measured* capacitance (e.g. an abacus bin
/// midpoint), assuming the population-median leakage. The predictor cannot
/// see leakage, so its errors are exactly the leakage spread — quantified in
/// bench_retention.
double predict_retention(double measured_cap_f, const LeakPopulation& pop,
                         double vdd, double bitline_cap_f,
                         double sense_offset);

}  // namespace ecms::edram
