// SPICE-level netlist generation for a macro-cell (Figure 1 of the paper,
// generalized to R x C).
//
// Topology per cell (r,c): an NMOS access transistor from bit line c to the
// storage node, gated by word line r; the storage capacitor from the storage
// node to the common plate. Each bit line is reachable from its input pin
// IN_BLc through a select transistor S_BLc. Word lines, select gates and
// bit-line inputs are driven by named voltage sources whose waveforms the
// measurement sequencer programs later (they are created as DC 0).
//
// Defects are inserted electrically: shorts as shunt resistors across the
// capacitor, opens as the residual fringe capacitance only, partials as
// scaled capacitance, bridges as resistors to the next storage node.
#pragma once

#include <string>
#include <vector>

#include "circuit/netlist.hpp"
#include "edram/macrocell.hpp"

namespace ecms::edram {

/// Handles to the array's externally driven nets and key internal nodes.
struct ArrayNet {
  circuit::NodeId plate = 0;
  std::vector<std::string> wl_sources;    ///< "V_WL<r>": word-line drivers
  std::vector<std::string> sbl_sources;   ///< "V_SBL<c>": select-gate drivers
  std::vector<std::string> inbl_sources;  ///< "V_INBL<c>": bit-line inputs
  std::vector<circuit::NodeId> bitlines;  ///< internal bit-line nodes
  std::vector<circuit::NodeId> storage;   ///< storage nodes, row-major

  circuit::NodeId storage_node(std::size_t r, std::size_t c,
                               std::size_t cols) const {
    return storage[r * cols + c];
  }
};

struct NetlistOptions {
  bool include_wordline_resistance = false;
  std::string prefix;  ///< node/device name prefix (for multi-array circuits)
};

/// Builds the macro-cell into `ckt` and returns the net handles.
ArrayNet build_array(circuit::Circuit& ckt, const MacroCell& mc,
                     const NetlistOptions& opts = {});

}  // namespace ecms::edram
