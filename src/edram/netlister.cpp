#include "edram/netlister.hpp"

#include "util/error.hpp"

namespace ecms::edram {

namespace {
std::string idx(const std::string& base, std::size_t i) {
  return base + std::to_string(i);
}
}  // namespace

ArrayNet build_array(circuit::Circuit& ckt, const MacroCell& mc,
                     const NetlistOptions& opts) {
  using circuit::kGround;
  using circuit::NodeId;
  using circuit::SourceWave;

  const auto& t = mc.tech();
  const std::string& px = opts.prefix;
  ArrayNet net;
  net.plate = ckt.node(px + "plate");

  // Plate routing parasitic.
  if (mc.plate_parasitic() > 0.0) {
    ckt.add_capacitor(px + "Cplate_par", net.plate, kGround,
                      mc.plate_parasitic());
  }

  // Word lines: a driver source per row, optionally behind the distributed
  // word-line resistance (lumped).
  std::vector<NodeId> wl_nodes;
  for (std::size_t r = 0; r < mc.rows(); ++r) {
    const NodeId drv = ckt.node(px + idx("wl_drv", r));
    NodeId wl = drv;
    if (opts.include_wordline_resistance) {
      wl = ckt.node(px + idx("wl", r));
      ckt.add_resistor(px + idx("Rwl", r), drv, wl,
                       t.wl_r_per_cell * static_cast<double>(mc.cols()));
    }
    const std::string src = px + idx("V_WL", r);
    ckt.add_vsource(src, drv, kGround, SourceWave::dc(0.0));
    net.wl_sources.push_back(src);
    wl_nodes.push_back(wl);
  }

  // Bit lines with select transistors and input drivers.
  for (std::size_t c = 0; c < mc.cols(); ++c) {
    const NodeId bl = ckt.node(px + idx("bl", c));
    const NodeId in = ckt.node(px + idx("inbl", c));
    const NodeId sg = ckt.node(px + idx("sbl_g", c));
    net.bitlines.push_back(bl);

    const std::string in_src = px + idx("V_INBL", c);
    ckt.add_vsource(in_src, in, kGround, SourceWave::dc(0.0));
    net.inbl_sources.push_back(in_src);

    const std::string sg_src = px + idx("V_SBL", c);
    ckt.add_vsource(sg_src, sg, kGround, SourceWave::dc(0.0));
    net.sbl_sources.push_back(sg_src);

    // Select transistor: wide, to drive the whole bit line.
    ckt.add_mosfet(px + idx("MSBL", c), in, sg, bl, kGround,
                   t.nmos(MacroCell::kSelectTransistorWidth, t.l_min));

    // Lumped bit-line parasitic.
    if (mc.bitline_cap() > 0.0) {
      ckt.add_capacitor(px + idx("Cbl_par", c), bl, kGround, mc.bitline_cap());
    }
  }

  // Cells.
  net.storage.reserve(mc.cell_count());
  for (std::size_t r = 0; r < mc.rows(); ++r) {
    for (std::size_t c = 0; c < mc.cols(); ++c) {
      const std::string suffix =
          std::to_string(r) + "_" + std::to_string(c);
      const NodeId stor = ckt.node(px + "stor" + suffix);
      net.storage.push_back(stor);

      // Access transistor: bit line <-> storage node, gated by the word line.
      ckt.add_mosfet(px + "MACC" + suffix, net.bitlines[c], wl_nodes[r], stor,
                     kGround, t.nmos(mc.spec().access_w, mc.spec().access_l));

      // Storage capacitor (with defect interpretation).
      const tech::DefectElectrical e = tech::electrical_of(mc.defect(r, c));
      const double cap = e.disconnected ? e.residual_cap
                                        : mc.true_cap(r, c) * e.cap_scale;
      if (cap > 0.0) {
        ckt.add_capacitor(px + "CS" + suffix, stor, net.plate, cap);
      }
      if (e.shunt_r > 0.0) {
        ckt.add_resistor(px + "Rshort" + suffix, stor, net.plate, e.shunt_r);
      }
      if (e.bridge_r > 0.0 && mc.cols() > 1) {
        // Bridge to the horizontally adjacent storage node (previous column
        // for the last column so the neighbour always exists).
        const std::size_t cn = c + 1 < mc.cols() ? c + 1 : c - 1;
        const NodeId nb = ckt.node(px + "stor" + std::to_string(r) + "_" +
                                   std::to_string(cn));
        ckt.add_resistor(px + "Rbridge" + suffix, stor, nb, e.bridge_r);
      }
    }
  }
  return net;
}

}  // namespace ecms::edram
