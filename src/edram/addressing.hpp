// Logical-to-physical address mapping (descrambling).
//
// Bitmap-based diagnosis only works if failures are plotted at their
// *physical* location; real memories scramble addresses (row interleaving,
// folded layouts). This module provides the mapping layer the bitmap tools
// use, plus the address orders march tests iterate in.
#pragma once

#include <cstddef>
#include <string>
#include <utility>

namespace ecms::edram {

/// Physical cell coordinate.
struct CellAddr {
  std::size_t row = 0;
  std::size_t col = 0;
  friend bool operator==(const CellAddr&, const CellAddr&) = default;
};

/// Supported scrambling schemes.
enum class Scramble {
  kLinear,          ///< logical row/col == physical row/col
  kRowInterleave,   ///< even logical rows map to the top half, odd to bottom
  kBitReversalRow,  ///< physical row = bit-reversed logical row
};

std::string scramble_name(Scramble s);

/// Bidirectional logical<->physical mapping for an R x C array.
class AddressMap {
 public:
  AddressMap(std::size_t rows, std::size_t cols, Scramble scheme);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t cell_count() const { return rows_ * cols_; }

  /// Physical location of logical address `a` (row-major logical order).
  CellAddr physical_of(std::size_t logical) const;
  /// Logical address of a physical location.
  std::size_t logical_of(CellAddr phys) const;

 private:
  std::size_t map_row(std::size_t logical_row) const;
  std::size_t unmap_row(std::size_t physical_row) const;

  std::size_t rows_, cols_;
  Scramble scheme_;
  std::size_t row_bits_ = 0;  // for bit reversal
};

}  // namespace ecms::edram
