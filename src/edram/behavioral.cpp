#include "edram/behavioral.hpp"

#include <cmath>

#include "util/error.hpp"

namespace ecms::edram {

BehavioralArray::BehavioralArray(const MacroCell& mc, SenseParams sense,
                                 LeakParams leak)
    : mc_(mc), sense_(sense), leak_(leak), v_(mc.cell_count(), 0.0) {
  // Shorted cells sit at the plate bias from power-up.
  for (std::size_t r = 0; r < mc.rows(); ++r)
    for (std::size_t c = 0; c < mc.cols(); ++c) apply_defect_settling(r, c);
}

void BehavioralArray::apply_defect_settling(std::size_t r, std::size_t c) {
  const tech::DefectElectrical e = tech::electrical_of(mc_.defect(r, c));
  if (e.shunt_r > 0.0) {
    // Time constant Cm * Rshunt is nanoseconds: instant at op timescale.
    v(r, c) = mc_.tech().vdd / 2.0;  // plate bias in standard mode
  }
}

void BehavioralArray::equalize_bridge(std::size_t r, std::size_t c) {
  const tech::DefectElectrical e = tech::electrical_of(mc_.defect(r, c));
  if (e.bridge_r <= 0.0 || mc_.cols() < 2) return;
  const std::size_t cn = c + 1 < mc_.cols() ? c + 1 : c - 1;
  const double c1 = mc_.effective_cap(r, c);
  const double c2 = mc_.effective_cap(r, cn);
  if (c1 + c2 <= 0.0) return;
  const double veq = (v(r, c) * c1 + v(r, cn) * c2) / (c1 + c2);
  v(r, c) = veq;
  v(r, cn) = veq;
}

void BehavioralArray::write(std::size_t r, std::size_t c, bool bit) {
  ECMS_REQUIRE(r < rows() && c < cols(), "cell index out of range");
  v(r, c) = bit ? mc_.tech().vdd : 0.0;
  apply_defect_settling(r, c);
  equalize_bridge(r, c);
}

double BehavioralArray::read_swing(std::size_t r, std::size_t c) const {
  ECMS_REQUIRE(r < rows() && c < cols(), "cell index out of range");
  const double pre = mc_.tech().vdd / 2.0;
  const double cm = mc_.effective_cap(r, c);
  const double cbl = mc_.bitline_total_cap();
  if (cm + cbl <= 0.0) return 0.0;
  return (v(r, c) - pre) * cm / (cm + cbl);
}

bool BehavioralArray::peek(std::size_t r, std::size_t c) const {
  const double dv = read_swing(r, c);
  if (dv > sense_.sense_offset) return true;
  if (dv < -sense_.sense_offset) return false;
  return sense_.ambiguous_reads_as;
}

bool BehavioralArray::read(std::size_t r, std::size_t c) {
  const bool bit = peek(r, c);
  // Destructive read with full write-back of the sensed value.
  v(r, c) = bit ? mc_.tech().vdd : 0.0;
  apply_defect_settling(r, c);
  equalize_bridge(r, c);
  return bit;
}

void BehavioralArray::idle(double seconds) {
  ECMS_REQUIRE(seconds >= 0.0, "idle time must be non-negative");
  for (std::size_t r = 0; r < rows(); ++r) {
    for (std::size_t c = 0; c < cols(); ++c) {
      const tech::DefectElectrical e = tech::electrical_of(mc_.defect(r, c));
      const double cm = mc_.effective_cap(r, c);
      if (cm <= 0.0) {
        v(r, c) = 0.0;
        continue;
      }
      // Junction leakage discharges the storage node toward ground.
      const double tau = cm / leak_.junction_g;
      v(r, c) *= std::exp(-seconds / tau);
      if (e.shunt_r > 0.0) apply_defect_settling(r, c);
    }
  }
}

double BehavioralArray::storage_voltage(std::size_t r, std::size_t c) const {
  ECMS_REQUIRE(r < rows() && c < cols(), "cell index out of range");
  return v(r, c);
}

}  // namespace ecms::edram
