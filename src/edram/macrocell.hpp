// Macro-cell description: geometry, per-cell ground truth (capacitance field
// + defects), and parasitics. This is the object shared by the netlister
// (circuit-level), the behavioral array (functional tests) and the
// measurement models — all three read the same ground truth.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>

#include "tech/capmodel.hpp"
#include "tech/defects.hpp"
#include "tech/tech.hpp"

namespace ecms::edram {

/// Geometry and device sizing of a macro-cell.
struct MacroCellSpec {
  std::size_t rows = 4;  ///< word lines
  std::size_t cols = 4;  ///< bit lines
  double access_w = 0.4e-6;  ///< access transistor width (m)
  double access_l = 0.2e-6;  ///< access transistor length (m)
};

/// A macro-cell instance: spec + technology + sampled ground truth.
class MacroCell {
 public:
  MacroCell(const MacroCellSpec& spec, const tech::Technology& tech,
            tech::CapField cap_field, tech::DefectMap defects);

  /// Convenience: nominal (defect-free, uniform) macro-cell.
  static MacroCell uniform(const MacroCellSpec& spec,
                           const tech::Technology& tech, double cell_cap);

  /// Calibration-probe macro-cell: every cell at `background_cap` except the
  /// target cell, which is set to `target_cap`. Abacus sweeps use this so
  /// only the measured capacitor varies.
  static MacroCell probe(const MacroCellSpec& spec,
                         const tech::Technology& tech, std::size_t r,
                         std::size_t c, double target_cap,
                         double background_cap);

  /// Overrides one cell's true capacitance.
  void set_true_cap(std::size_t r, std::size_t c, double farads) {
    caps_.set(r, c, farads);
  }

  /// Sub-array (tile) starting at (r0, c0): the macro-cell a segmented-plate
  /// measurement structure actually sees. Bridges crossing the tile edge are
  /// re-anchored inside the tile (a one-column approximation).
  MacroCell tile(std::size_t r0, std::size_t c0, std::size_t rows,
                 std::size_t cols) const;

  const MacroCellSpec& spec() const { return spec_; }
  const tech::Technology& tech() const { return tech_; }
  std::size_t rows() const { return spec_.rows; }
  std::size_t cols() const { return spec_.cols; }
  std::size_t cell_count() const { return spec_.rows * spec_.cols; }

  /// True (as-fabricated) capacitance of a cell, before defects.
  double true_cap(std::size_t r, std::size_t c) const {
    return caps_.at(r, c);
  }
  const tech::CapField& cap_field() const { return caps_; }

  const tech::Defect& defect(std::size_t r, std::size_t c) const {
    return defects_.at(r, c);
  }
  const tech::DefectMap& defects() const { return defects_; }
  void set_defect(std::size_t r, std::size_t c, tech::Defect d) {
    defects_.set(r, c, d);
  }

  /// Capacitance a measurement would ideally see at the plate for this cell:
  /// true_cap scaled by partial defects, the residual fringe for opens.
  double effective_cap(std::size_t r, std::size_t c) const;

  /// Column of the cell bridged with (r, c), if any: either this cell's own
  /// bridge target (next column, previous for the last column), or an
  /// adjacent cell whose bridge points back at this cell. Bridges are a
  /// pair phenomenon — both ends must report the partner.
  std::optional<std::size_t> bridge_partner_col(std::size_t r,
                                                std::size_t c) const;

  /// Width of the bit-line select transistor (S_BLi) the netlister builds.
  static constexpr double kSelectTransistorWidth = 2.0e-6;

  /// Bit-line routing parasitic for one column (metal only).
  double bitline_cap() const {
    return tech_.bitline_cap_per_cell * static_cast<double>(spec_.rows);
  }
  /// Total capacitance of one floating bit line: routing plus the select
  /// device's junction/overlap plus every attached access device's drain
  /// junction and overlap. This is what both the sense path and the
  /// measurement's row coupling actually see.
  double bitline_total_cap() const;
  /// Fixed plate-node routing parasitic.
  double plate_parasitic() const { return tech_.plate_cap_fixed; }

 private:
  MacroCellSpec spec_;
  tech::Technology tech_;
  tech::CapField caps_;
  tech::DefectMap defects_;
};

}  // namespace ecms::edram
