#include "obs/trace.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>

#include "obs/json.hpp"
#include "util/error.hpp"
#include "util/fileio.hpp"

namespace ecms::obs {

namespace {

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Per-thread event buffer. Owned jointly by the thread (thread_local
// shared_ptr) and the collector (so events survive thread exit, e.g. a
// destroyed ThreadPool). The mutex is only contended when the exporter or
// a restart touches the buffer.
struct ThreadBuffer {
  std::mutex mutex;
  std::vector<TraceEvent> events;
  std::uint32_t tid = 0;
};

struct Collector {
  std::mutex mutex;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  std::uint32_t next_tid = 1;
};

Collector& collector() {
  static Collector* c = new Collector();  // leaked: outlives static teardown
  return *c;
}

std::atomic<bool> g_tracing_on{false};
std::atomic<std::uint64_t> g_generation{0};  // bumped by every start_tracing
std::atomic<std::uint64_t> g_next_span_id{1};
std::atomic<std::int64_t> g_trace_t0_ns{0};

struct ThreadTraceState {
  std::shared_ptr<ThreadBuffer> buffer;
  std::vector<std::uint64_t> span_stack;  // touched only by the owner thread

  ThreadTraceState() : buffer(std::make_shared<ThreadBuffer>()) {
    Collector& c = collector();
    const std::lock_guard<std::mutex> lock(c.mutex);
    buffer->tid = c.next_tid++;
    c.buffers.push_back(buffer);
  }
};

ThreadTraceState& thread_state() {
  thread_local ThreadTraceState state;
  return state;
}

}  // namespace

bool tracing_enabled() {
  return g_tracing_on.load(std::memory_order_relaxed);
}

void start_tracing() {
  Collector& c = collector();
  const std::lock_guard<std::mutex> lock(c.mutex);
  g_tracing_on.store(false, std::memory_order_relaxed);
  // Bump the generation before clearing: a span closing concurrently checks
  // the generation under its buffer's mutex, so it either lands before the
  // clear (and is discarded with it) or sees the new generation and drops
  // itself. Stale events can never leak into the new trace.
  g_generation.fetch_add(1, std::memory_order_relaxed);
  for (const auto& buf : c.buffers) {
    const std::lock_guard<std::mutex> blk(buf->mutex);
    buf->events.clear();
  }
  g_trace_t0_ns.store(now_ns(), std::memory_order_relaxed);
  g_tracing_on.store(true, std::memory_order_relaxed);
}

void stop_tracing() {
  g_tracing_on.store(false, std::memory_order_relaxed);
}

std::uint64_t current_span_id() {
  if (!tracing_enabled()) return 0;
  const auto& stack = thread_state().span_stack;
  return stack.empty() ? 0 : stack.back();
}

ScopedSpan::ScopedSpan(const char* name) {
  if (!tracing_enabled()) return;
  ThreadTraceState& state = thread_state();
  active_ = true;
  name_ = name;
  generation_ = g_generation.load(std::memory_order_relaxed);
  id_ = g_next_span_id.fetch_add(1, std::memory_order_relaxed);
  parent_ = state.span_stack.empty() ? 0 : state.span_stack.back();
  state.span_stack.push_back(id_);
  start_ns_ = now_ns() - g_trace_t0_ns.load(std::memory_order_relaxed);
}

ScopedSpan::~ScopedSpan() {
  if (!active_) return;
  ThreadTraceState& state = thread_state();
  // The stack is strictly LIFO per thread (spans are scoped), so this span
  // is necessarily on top.
  if (!state.span_stack.empty() && state.span_stack.back() == id_) {
    state.span_stack.pop_back();
  }
  const std::int64_t end_ns =
      now_ns() - g_trace_t0_ns.load(std::memory_order_relaxed);
  TraceEvent ev;
  ev.name = name_;
  ev.span_id = id_;
  ev.parent_id = parent_;
  ev.tid = state.buffer->tid;
  ev.start_ns = start_ns_;
  ev.dur_ns = end_ns - start_ns_;
  ev.args.reserve(args_.size());
  for (const auto& [k, v] : args_) ev.args.emplace_back(k, v);
  const std::lock_guard<std::mutex> lock(state.buffer->mutex);
  // A trace restarted mid-span would misattribute this event; the check
  // runs under the buffer mutex so it is ordered against start_tracing()'s
  // bump-then-clear (see there).
  if (generation_ != g_generation.load(std::memory_order_relaxed)) return;
  state.buffer->events.push_back(std::move(ev));
}

void ScopedSpan::arg(const char* key, double value) {
  if (!active_) return;
  args_.emplace_back(key, value);
}

std::vector<TraceEvent> collected_trace_events() {
  Collector& c = collector();
  std::vector<TraceEvent> all;
  const std::lock_guard<std::mutex> lock(c.mutex);
  for (const auto& buf : c.buffers) {
    const std::lock_guard<std::mutex> blk(buf->mutex);
    all.insert(all.end(), buf->events.begin(), buf->events.end());
  }
  std::sort(all.begin(), all.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.start_ns != b.start_ns ? a.start_ns < b.start_ns
                                              : a.span_id < b.span_id;
            });
  return all;
}

std::string trace_to_json() {
  const std::vector<TraceEvent> events = collected_trace_events();
  std::string j = "{\"traceEvents\": [";
  bool first = true;
  for (const TraceEvent& ev : events) {
    j += first ? "\n" : ",\n";
    first = false;
    j += "  {\"name\": \"" + json_escape(ev.name) +
         "\", \"cat\": \"ecms\", \"ph\": \"X\", \"pid\": 1, \"tid\": " +
         std::to_string(ev.tid) +
         ", \"ts\": " + json_number(static_cast<double>(ev.start_ns) / 1e3) +
         ", \"dur\": " + json_number(static_cast<double>(ev.dur_ns) / 1e3) +
         ", \"args\": {\"span\": " + std::to_string(ev.span_id) +
         ", \"parent\": " + std::to_string(ev.parent_id);
    for (const auto& [k, v] : ev.args) {
      j += ", \"" + json_escape(k) + "\": " + json_number(v);
    }
    j += "}}";
  }
  j += first ? "], " : "\n], ";
  j += "\"displayTimeUnit\": \"ms\"}\n";
  return j;
}

void write_trace_json(const std::string& path) {
  util::atomic_write_file(path, trace_to_json());
}

}  // namespace ecms::obs
