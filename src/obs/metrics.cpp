#include "obs/metrics.hpp"

#include <cmath>
#include <limits>

#include "obs/json.hpp"
#include "util/error.hpp"
#include "util/fileio.hpp"

namespace ecms::obs {

namespace {
std::atomic<bool> g_metrics_on{false};

constexpr double kInf = std::numeric_limits<double>::infinity();

// Lock-free add for atomic<double> (fetch_add on double is C++20 but not
// universally lowered well; a relaxed CAS loop is portable and the slot is
// effectively single-writer, so the loop almost never retries).
void atomic_add(std::atomic<double>& a, double d) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + d, std::memory_order_relaxed)) {
  }
}

void atomic_min(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v < cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v > cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}
}  // namespace

bool metrics_enabled() {
  return g_metrics_on.load(std::memory_order_relaxed);
}

void set_metrics_enabled(bool on) {
  g_metrics_on.store(on, std::memory_order_relaxed);
}

std::size_t metric_shard_index() {
  static std::atomic<std::size_t> next{0};
  // Round-robin assignment spreads threads evenly over the slots; the pool's
  // long-lived workers each keep their own cache line.
  thread_local const std::size_t idx =
      next.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
  return idx;
}

double HistogramSnapshot::bucket_upper(std::size_t i) const {
  if (i == 0) return min_bound;
  if (i + 1 >= buckets.size()) return kInf;
  return min_bound * std::pow(growth, static_cast<double>(i));
}

Histogram::Histogram() : Histogram(Options{}) {}

Histogram::Histogram(const Options& opts) : opts_(opts) {
  ECMS_REQUIRE(opts_.min_bound > 0.0, "histogram min_bound must be positive");
  ECMS_REQUIRE(opts_.growth > 1.0, "histogram growth must exceed 1");
  ECMS_REQUIRE(opts_.buckets > 0, "histogram needs at least one log bucket");
  inv_log_growth_ = 1.0 / std::log(opts_.growth);
  const auto total = static_cast<std::size_t>(opts_.buckets) + 2;
  shards_ = std::vector<Shard>(kMetricShards);
  for (auto& s : shards_) {
    s.buckets = std::vector<std::atomic<std::uint64_t>>(total);
    s.min.store(kInf, std::memory_order_relaxed);
    s.max.store(-kInf, std::memory_order_relaxed);
  }
}

std::size_t Histogram::bucket_of(double v) const {
  if (v < opts_.min_bound) return 0;  // underflow, includes 0
  const double steps = std::log(v / opts_.min_bound) * inv_log_growth_;
  // Compare before casting: for huge values (or +inf) `steps` exceeds any
  // bucket index and converting it to an integer would be UB.
  if (steps >= static_cast<double>(opts_.buckets)) {
    return static_cast<std::size_t>(opts_.buckets) + 1;  // overflow bucket
  }
  // +1 skips the underflow bucket; values exactly on a boundary belong to
  // the bucket whose lower edge they are.
  return static_cast<std::size_t>(std::floor(steps)) + 1;
}

bool Histogram::record(double v) {
  Shard& s = shards_[metric_shard_index()];
  if (std::isnan(v) || v < 0.0) {
    s.rejected.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  s.count.fetch_add(1, std::memory_order_relaxed);
  atomic_add(s.sum, v);
  atomic_min(s.min, v);
  atomic_max(s.max, v);
  s.buckets[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
  return true;
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot out;
  out.min_bound = opts_.min_bound;
  out.growth = opts_.growth;
  out.buckets.assign(static_cast<std::size_t>(opts_.buckets) + 2, 0);
  double lo = kInf, hi = -kInf;
  for (const auto& s : shards_) {
    out.count += s.count.load(std::memory_order_relaxed);
    out.rejected += s.rejected.load(std::memory_order_relaxed);
    out.sum += s.sum.load(std::memory_order_relaxed);
    lo = std::min(lo, s.min.load(std::memory_order_relaxed));
    hi = std::max(hi, s.max.load(std::memory_order_relaxed));
    for (std::size_t i = 0; i < out.buckets.size(); ++i) {
      out.buckets[i] += s.buckets[i].load(std::memory_order_relaxed);
    }
  }
  if (out.count > 0) {
    out.min = lo;
    out.max = hi;
  }
  return out;
}

void Histogram::reset() {
  for (auto& s : shards_) {
    s.count.store(0, std::memory_order_relaxed);
    s.rejected.store(0, std::memory_order_relaxed);
    s.sum.store(0.0, std::memory_order_relaxed);
    s.min.store(kInf, std::memory_order_relaxed);
    s.max.store(-kInf, std::memory_order_relaxed);
    for (auto& b : s.buckets) b.store(0, std::memory_order_relaxed);
  }
}

Registry& Registry::global() {
  static Registry* r = new Registry();  // leaked: outlives static teardown
  return *r;
}

Counter& Registry::counter(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name,
                               const Histogram::Options& opts) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(opts);
  return *slot;
}

MetricsSnapshot Registry::snapshot() const {
  MetricsSnapshot out;
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, c] : counters_) out.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) {
    out.gauges[name] = {g->value(), g->max()};
  }
  for (const auto& [name, h] : histograms_) {
    out.histograms[name] = h->snapshot();
  }
  return out;
}

void Registry::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

std::string MetricsSnapshot::to_json() const {
  std::string j = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, v] : counters) {
    j += first ? "\n" : ",\n";
    first = false;
    j += "    \"" + json_escape(name) + "\": " + json_number(v);
  }
  j += first ? "},\n" : "\n  },\n";
  j += "  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges) {
    j += first ? "\n" : ",\n";
    first = false;
    j += "    \"" + json_escape(name) + "\": {\"value\": " +
         json_number(static_cast<std::int64_t>(g.value)) +
         ", \"max\": " + json_number(static_cast<std::int64_t>(g.max)) + "}";
  }
  j += first ? "},\n" : "\n  },\n";
  j += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms) {
    j += first ? "\n" : ",\n";
    first = false;
    j += "    \"" + json_escape(name) + "\": {\"count\": " +
         json_number(h.count) + ", \"rejected\": " + json_number(h.rejected) +
         ", \"sum\": " + json_number(h.sum) + ", \"min\": " +
         json_number(h.min) + ", \"max\": " + json_number(h.max) +
         ", \"mean\": " + json_number(h.mean()) + ", \"buckets\": [";
    // Sparse bucket emission keeps the file one screen: only non-empty
    // buckets, each with its upper bound ("le", -1 for overflow).
    bool bfirst = true;
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      if (h.buckets[i] == 0) continue;
      if (!bfirst) j += ", ";
      bfirst = false;
      const double upper = h.bucket_upper(i);
      j += "{\"le\": " + (upper == kInf ? std::string("-1")
                                        : json_number(upper)) +
           ", \"count\": " + json_number(h.buckets[i]) + "}";
    }
    j += "]}";
  }
  j += first ? "}\n}\n" : "\n  }\n}\n";
  return j;
}

void write_metrics_json(const std::string& path) {
  // Atomic (tmp + rename): a crash mid-write never leaves a torn JSON
  // artifact where a previous good one stood.
  util::atomic_write_file(path, Registry::global().snapshot().to_json());
}

}  // namespace ecms::obs
