// Lock-cheap metrics registry: Counter, Gauge, Histogram + JSON export.
//
// Design constraints (the overhead contract, see DESIGN.md §8):
//   * Disabled is free. Every instrumentation site is guarded by a single
//     relaxed atomic load (`metrics_enabled()`): no locks, no allocation,
//     no clock reads on the disabled path. `bench_array_scale` measures the
//     enabled-vs-disabled difference and holds it under 2%.
//   * Enabled hot paths are wait-free. Counters and histograms are sharded
//     (kShards cache-line-padded slots, threads hash to a slot), so an
//     increment is one relaxed fetch_add with essentially no cross-thread
//     contention under `--jobs N`. Shards are merged only on snapshot().
//   * Handles are stable. Registry::counter()/gauge()/histogram() return
//     references that stay valid for the registry's lifetime; reset()
//     zeroes values but never invalidates a handle, so instrumentation
//     sites may cache them in function-local statics (the ECMS_* macros do).
//
// Naming convention: dotted lowercase paths, `<layer>.<object>.<what>`
// (e.g. "circuit.newton.iterations", "util.pool.queue_depth").
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace ecms::obs {

/// Global metrics switch. Relaxed-atomic read: the only cost paid by
/// instrumentation sites when metrics are off.
bool metrics_enabled();
void set_metrics_enabled(bool on);

/// Number of shard slots per instrument; threads hash onto slots, so hot
/// increments never contend on a single cache line.
inline constexpr std::size_t kMetricShards = 16;

/// Stable per-thread shard slot in [0, kMetricShards).
std::size_t metric_shard_index();

namespace detail {
struct alignas(64) CounterSlot {
  std::atomic<std::uint64_t> v{0};
};
}  // namespace detail

/// Monotonic counter. add() is wait-free; value() merges the shards.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    slots_[metric_shard_index()].v.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    std::uint64_t sum = 0;
    for (const auto& s : slots_) sum += s.v.load(std::memory_order_relaxed);
    return sum;
  }
  void reset() {
    for (auto& s : slots_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  detail::CounterSlot slots_[kMetricShards];
};

/// Point-in-time integer value (queue depth, worker count). set()/add() are
/// lock-free; the high-watermark is tracked so saturation is visible even
/// when the snapshot is taken after the burst.
class Gauge {
 public:
  void set(std::int64_t v) {
    v_.store(v, std::memory_order_relaxed);
    raise_max(v);
  }
  void add(std::int64_t d) {
    const std::int64_t now = v_.fetch_add(d, std::memory_order_relaxed) + d;
    raise_max(now);
  }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }
  std::int64_t max() const { return max_.load(std::memory_order_relaxed); }
  void reset() {
    v_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
  }

 private:
  void raise_max(std::int64_t v) {
    std::int64_t cur = max_.load(std::memory_order_relaxed);
    while (v > cur &&
           !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  std::atomic<std::int64_t> v_{0};
  std::atomic<std::int64_t> max_{0};
};

/// Read-only merged view of one histogram (see Histogram for the layout).
struct HistogramSnapshot {
  std::uint64_t count = 0;     ///< accepted observations
  std::uint64_t rejected = 0;  ///< negative / NaN observations refused
  double sum = 0.0;
  double min = 0.0;  ///< 0 when count == 0
  double max = 0.0;  ///< 0 when count == 0
  double min_bound = 0.0;
  double growth = 0.0;
  /// buckets[0] is the underflow bucket [0, min_bound); buckets[i] for
  /// i in [1, n] covers [min_bound*growth^(i-1), min_bound*growth^i); the
  /// last bucket is the overflow bucket.
  std::vector<std::uint64_t> buckets;

  double mean() const { return count == 0 ? 0.0 : sum / count; }
  /// Upper bound of bucket `i` (+inf for the overflow bucket).
  double bucket_upper(std::size_t i) const;
};

/// Fixed log-scale-bucket histogram for durations and iteration counts.
/// record() is wait-free (sharded); negative or NaN values are rejected
/// (counted separately) because a negative duration is always a caller bug.
class Histogram {
 public:
  struct Options {
    double min_bound = 1e-9;  ///< lower edge of the first log bucket
    double growth = 2.0;      ///< bucket width ratio (> 1)
    int buckets = 40;         ///< log buckets between underflow and overflow
  };

  Histogram();  // default Options
  explicit Histogram(const Options& opts);

  /// Records one observation. Returns false (and counts it as rejected)
  /// for negative or NaN values; 0 lands in the underflow bucket.
  bool record(double v);

  HistogramSnapshot snapshot() const;
  void reset();

  const Options& options() const { return opts_; }

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> rejected{0};
    std::atomic<double> sum{0.0};
    std::atomic<double> min{0.0};  ///< valid only when count > 0
    std::atomic<double> max{0.0};
    std::vector<std::atomic<std::uint64_t>> buckets;
  };

  std::size_t bucket_of(double v) const;

  Options opts_;
  double inv_log_growth_ = 0.0;
  std::vector<Shard> shards_;
};

/// Merged view of the whole registry at one instant.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  struct GaugeValue {
    std::int64_t value = 0;
    std::int64_t max = 0;
  };
  std::map<std::string, GaugeValue> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  /// Whole snapshot as a JSON object ({"counters":{...},"gauges":{...},
  /// "histograms":{...}}).
  std::string to_json() const;
};

/// Named instrument registry. Lookup takes a mutex (cold path: sites cache
/// the returned reference); the instruments themselves are wait-free.
class Registry {
 public:
  /// The process-wide registry used by all ECMS_* instrumentation macros.
  static Registry& global();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// `opts` applies only on first creation of `name`.
  Histogram& histogram(const std::string& name,
                       const Histogram::Options& opts = {});

  /// Merges every instrument's shards into one consistent-enough view.
  /// Safe to call while other threads are incrementing (each slot is read
  /// atomically; the snapshot is a point-in-time-ish sum, as with any
  /// sharded metrics system).
  MetricsSnapshot snapshot() const;

  /// Zeroes every instrument's value. Handles stay valid.
  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Writes Registry::global().snapshot().to_json() to `path`; throws
/// ecms::Error on I/O failure.
void write_metrics_json(const std::string& path);

}  // namespace ecms::obs

/// Counter increment with a cached handle; free when metrics are disabled.
/// `name` must be a string literal (the handle is cached in a static).
#define ECMS_METRIC_COUNT(name, n)                                         \
  do {                                                                     \
    if (::ecms::obs::metrics_enabled()) {                                  \
      static ::ecms::obs::Counter& ecms_metric_counter_ =                  \
          ::ecms::obs::Registry::global().counter(name);                   \
      ecms_metric_counter_.add(static_cast<std::uint64_t>(n));             \
    }                                                                      \
  } while (false)

/// Histogram observation with a cached handle; free when disabled.
#define ECMS_METRIC_OBSERVE(name, v)                                       \
  do {                                                                     \
    if (::ecms::obs::metrics_enabled()) {                                  \
      static ::ecms::obs::Histogram& ecms_metric_hist_ =                   \
          ::ecms::obs::Registry::global().histogram(name);                 \
      ecms_metric_hist_.record(static_cast<double>(v));                    \
    }                                                                      \
  } while (false)

/// Gauge delta (e.g. +1/-1 around a queue); free when disabled.
#define ECMS_METRIC_GAUGE_ADD(name, d)                                     \
  do {                                                                     \
    if (::ecms::obs::metrics_enabled()) {                                  \
      static ::ecms::obs::Gauge& ecms_metric_gauge_ =                      \
          ::ecms::obs::Registry::global().gauge(name);                     \
      ecms_metric_gauge_.add(static_cast<std::int64_t>(d));                \
    }                                                                      \
  } while (false)

/// Gauge absolute set; free when disabled.
#define ECMS_METRIC_GAUGE_SET(name, v)                                     \
  do {                                                                     \
    if (::ecms::obs::metrics_enabled()) {                                  \
      static ::ecms::obs::Gauge& ecms_metric_gauge_ =                      \
          ::ecms::obs::Registry::global().gauge(name);                     \
      ecms_metric_gauge_.set(static_cast<std::int64_t>(v));                \
    }                                                                      \
  } while (false)
