// Tiny JSON emission helpers shared by the metrics and trace exporters.
//
// The obs subsystem writes two machine-readable artifacts (a metrics
// snapshot and a Chrome trace_event file); both need correct string
// escaping and locale-independent number formatting, and nothing heavier.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>

namespace ecms::obs {

/// Escapes `s` for use inside a JSON string literal (quotes not included).
inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(ch)));
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

/// Formats a double as a JSON number (never NaN/Inf, which JSON forbids).
inline std::string json_number(double v) {
  if (!(v == v)) return "0";                       // NaN
  if (v > 1.7e308) return "1.7e308";               // +Inf clamp
  if (v < -1.7e308) return "-1.7e308";             // -Inf clamp
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

inline std::string json_number(std::uint64_t v) { return std::to_string(v); }
inline std::string json_number(std::int64_t v) { return std::to_string(v); }

}  // namespace ecms::obs
