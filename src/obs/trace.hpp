// Tracing layer: nested ScopedSpans exported as Chrome trace_event JSON.
//
// The exported file loads directly in chrome://tracing or Perfetto
// (https://ui.perfetto.dev) and shows, per thread, the nesting of
// extraction work: extract_tile / extract_cell spans containing transient
// solves containing recovery-rung attempts.
//
// Overhead contract (same as the metrics side): when tracing is not
// started, constructing a ScopedSpan costs one relaxed atomic load — no
// clock read, no allocation, no lock. When tracing is on, each span costs
// two steady_clock reads plus one append into a per-thread buffer (the
// buffer's mutex is only ever contended by the exporter).
//
// Span names must be string literals (or otherwise outlive the span); arg
// keys likewise. Span ids are process-unique and nesting is tracked per
// thread, so log lines can be correlated via obs::current_span_id().
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace ecms::obs {

/// True between start_tracing() and stop_tracing().
bool tracing_enabled();

/// Discards any previously collected events and starts a new trace.
void start_tracing();

/// Stops collecting. Already-open spans still record their event on close;
/// collected events stay available until the next start_tracing().
void stop_tracing();

/// One completed span, in trace order within its thread.
struct TraceEvent {
  std::string name;
  std::uint64_t span_id = 0;
  std::uint64_t parent_id = 0;  ///< 0 for top-level spans
  std::uint32_t tid = 0;        ///< small per-thread index (1-based)
  std::int64_t start_ns = 0;    ///< relative to start_tracing()
  std::int64_t dur_ns = 0;
  std::vector<std::pair<std::string, double>> args;
};

/// Copies out everything collected so far (sorted by start time).
std::vector<TraceEvent> collected_trace_events();

/// Collected events in Chrome trace_event JSON ("X" complete events; ts and
/// dur in microseconds). Loadable in chrome://tracing / Perfetto.
std::string trace_to_json();

/// Writes trace_to_json() to `path`; throws ecms::Error on I/O failure.
void write_trace_json(const std::string& path);

/// Innermost open span id on this thread (0 when none / tracing off). Used
/// by the log sink to stamp lines with their span.
std::uint64_t current_span_id();

/// RAII span. Records a complete ("X") trace event from construction to
/// destruction when tracing is on; near-free otherwise.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Attaches a numeric argument (shown in the trace viewer); no-op when
  /// the span is inactive. `key` must be a string literal.
  void arg(const char* key, double value);

  bool active() const { return active_; }
  std::uint64_t id() const { return id_; }

 private:
  bool active_ = false;
  const char* name_ = nullptr;
  std::uint64_t id_ = 0;
  std::uint64_t parent_ = 0;
  std::uint64_t generation_ = 0;
  std::int64_t start_ns_ = 0;
  std::vector<std::pair<const char*, double>> args_;
};

}  // namespace ecms::obs
