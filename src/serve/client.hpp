// Blocking client of the extraction service (DESIGN.md §13).
//
// One Client is one session: connect() performs the handshake, then
// submit()/await_result() drive requests. The client demultiplexes by
// request id, so several submissions can be in flight on one session and
// results arriving out of order are buffered until their await. Not
// thread-safe — one thread per Client (tests and the CLI both follow
// this; concurrency comes from many clients, which is the serving model).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "serve/protocol.hpp"

namespace ecms::serve {

class Client {
 public:
  Client() = default;
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects and handshakes. False (with *error set) on connect failure,
  /// a server kReject, or a protocol violation. `hello_override` lets
  /// tests present a mismatched version/config hash.
  bool connect(const std::string& socket_path, std::string* error,
               const Hello* hello_override = nullptr);
  void close();
  bool connected() const { return fd_ >= 0; }

  /// Admission verdict of one submitted request.
  struct Submission {
    bool accepted = false;
    std::uint32_t queue_depth = 0;   ///< at admission, when accepted
    std::uint32_t retry_after_ms = 0;
    std::string reason;              ///< rejection reason / protocol error
  };
  Submission submit(const ExtractSpec& spec);

  /// One finished request, success or failure.
  struct Result {
    bool ok = false;
    std::string error;  ///< server-side failure / expiry / transport error
    ResultInfo info;
    std::vector<std::int32_t> codes;   ///< row-major, rows*cols
    std::vector<std::uint8_t> status;  ///< CellStatus per cell
  };
  /// Blocks until `request_id` finishes. `on_progress` (optional) sees
  /// each streamed Progress frame for this request.
  Result await_result(std::uint64_t request_id,
                      const std::function<void(const Progress&)>& on_progress =
                          nullptr);

  /// Fetches the server's metrics / trace JSON export. Empty optional-style:
  /// false with *error set on transport failure.
  bool metrics(std::string* json, std::string* error);
  bool trace(std::string* json, std::string* error);

  /// Runs a calibration request through the server's warm cache.
  bool calibrate(const CalibrateSpec& spec, CalibrateInfo* out,
                 std::string* error);

 private:
  /// Reads until one frame decodes; false on EOF/transport/protocol error.
  bool next_frame(Frame& out, std::string* error);
  bool send_raw(const std::string& bytes, std::string* error);

  int fd_ = -1;
  Decoder decoder_;
  /// Results that arrived while awaiting a different request id.
  std::map<std::uint64_t, Result> pending_;
};

}  // namespace ecms::serve
