#include "serve/queue.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace ecms::serve {

AdmissionQueue::AdmissionQueue(std::size_t capacity)
    : capacity_(std::max<std::size_t>(1, capacity)) {}

Admission AdmissionQueue::offer(Job job) {
  Admission a;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_ || draining_) {
      a.reason = stopped_ ? "stopped" : "draining";
      a.retry_after_ms = 0;
    } else if (jobs_.size() >= capacity_) {
      a.reason = "queue full (capacity " + std::to_string(capacity_) + ")";
      // Scale the hint with the backlog: deeper queue, longer backoff.
      a.retry_after_ms = static_cast<std::uint32_t>(
          std::min<std::size_t>(25 * (jobs_.size() + 1), 5000));
    } else {
      jobs_.push_back(std::move(job));
      a.accepted = true;
      a.queue_depth = static_cast<std::uint32_t>(jobs_.size());
      ECMS_METRIC_GAUGE_SET("serve.queue.depth", static_cast<std::int64_t>(jobs_.size()));
    }
  }
  if (a.accepted) {
    ECMS_METRIC_COUNT("serve.requests.accepted", 1);
    cv_.notify_one();
  } else {
    ECMS_METRIC_COUNT("serve.requests.rejected", 1);
  }
  return a;
}

bool AdmissionQueue::take(Job& out) {
  std::vector<std::pair<Job, const char*>> dropped;  // job, reason
  bool got = false;
  {
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      if (paused_ && !stopped_) {
        cv_.wait(lock);
        continue;
      }
      // Expire dead-deadline jobs before handing anything out, so a stale
      // request never occupies a dispatcher slot.
      const auto now = std::chrono::steady_clock::now();
      while (!jobs_.empty() && jobs_.front().deadline <= now) {
        dropped.emplace_back(std::move(jobs_.front()), "deadline expired in queue");
        jobs_.pop_front();
      }
      if (stopped_) {
        // Hard stop abandons the backlog; surface it through expire so no
        // accepted job vanishes without a word.
        while (!jobs_.empty()) {
          dropped.emplace_back(std::move(jobs_.front()), "stopped");
          jobs_.pop_front();
        }
        break;
      }
      if (!jobs_.empty()) {
        out = std::move(jobs_.front());
        jobs_.pop_front();
        got = true;
        break;
      }
      if (draining_) break;  // empty + draining: dispatcher is done
      if (!dropped.empty()) break;  // deliver expirations before sleeping
      cv_.wait(lock);
    }
    ECMS_METRIC_GAUGE_SET("serve.queue.depth", static_cast<std::int64_t>(jobs_.size()));
  }
  for (auto& [job, reason] : dropped) {
    ECMS_METRIC_COUNT("serve.requests.expired", 1);
    if (job.expire) job.expire(reason);
  }
  if (!got && !dropped.empty()) return take(out);
  return got;
}

void AdmissionQueue::pause(bool on) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    paused_ = on;
  }
  cv_.notify_all();
}

void AdmissionQueue::begin_drain() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    draining_ = true;
  }
  cv_.notify_all();
}

void AdmissionQueue::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    draining_ = true;
    stopped_ = true;
  }
  cv_.notify_all();
}

std::size_t AdmissionQueue::depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return jobs_.size();
}

bool AdmissionQueue::draining() const {
  std::lock_guard<std::mutex> lock(mu_);
  return draining_;
}

}  // namespace ecms::serve
