#include "serve/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <map>
#include <utility>

#include "bitmap/extraction.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/protocol.hpp"
#include "serve/workload.hpp"
#include "util/crc32.hpp"
#include "util/error.hpp"

namespace ecms::serve {
namespace {

/// EINTR-retrying full write; false on any other error (including EPIPE —
/// SIGPIPE is ignored process-wide, so a dead peer surfaces here).
bool send_all(int fd, const char* data, std::size_t n) {
  while (n > 0) {
    const ssize_t w = ::write(fd, data, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

/// Structural sanity of an extraction request; returns a refusal reason or
/// empty. Supervision-side bound: a wild spec must not allocate wild.
std::string validate(const ExtractSpec& s) {
  constexpr std::uint64_t kMaxCells = 1u << 20;
  if (s.rows == 0 || s.cols == 0) return "array dimensions must be positive";
  if (std::uint64_t(s.rows) * s.cols > kMaxCells)
    return "array too large (limit " + std::to_string(kMaxCells) + " cells)";
  if (s.tile_rows != 0 && s.rows % s.tile_rows != 0)
    return "rows not divisible by tile_rows";
  if (s.tile_cols != 0 && s.cols % s.tile_cols != 0)
    return "cols not divisible by tile_cols";
  if (s.engine > 1) return "unknown engine";
  if (s.solver > 2) return "unknown solver kind";
  if (s.batch > 64) return "batch width too large (limit 64 lanes)";
  return {};
}

}  // namespace

/// One client connection. All frame writes go through send() so session
/// and dispatcher threads interleave whole frames; a failed write marks
/// the peer dead and later sends become no-ops.
struct Server::Connection {
  int fd = -1;
  std::mutex write_mu;
  std::atomic<bool> alive{true};

  void send(const std::string& frame) {
    std::lock_guard<std::mutex> lock(write_mu);
    if (!alive.load()) return;
    if (!send_all(fd, frame.data(), frame.size())) {
      alive.store(false);
      ECMS_METRIC_COUNT("serve.sessions.write_errors", 1);
    }
  }

  /// The last holder closes the fd — dispatcher jobs may outlive the
  /// session thread, and an fd must never be recycled under a send().
  ~Connection() {
    if (fd >= 0) ::close(fd);
  }
};

Server::Server(ServerConfig cfg)
    : cfg_(std::move(cfg)), queue_(cfg_.queue_capacity) {}

Server::~Server() { stop(); }

void Server::start() {
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw Error(std::string("serve: socket: ") + std::strerror(errno));
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (cfg_.socket_path.size() >= sizeof addr.sun_path) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw Error("serve: socket path too long: " + cfg_.socket_path);
  }
  std::strncpy(addr.sun_path, cfg_.socket_path.c_str(),
               sizeof addr.sun_path - 1);
  ::unlink(cfg_.socket_path.c_str());  // stale socket from a dead server
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0 ||
      ::listen(listen_fd_, 64) < 0) {
    const std::string why = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw Error("serve: bind/listen " + cfg_.socket_path + ": " + why);
  }

  accept_thread_ = std::thread([this] { accept_loop(); });
  const std::size_t n = std::max<std::size_t>(1, cfg_.dispatchers);
  dispatchers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    dispatchers_.emplace_back([this, i] { dispatch_loop(i); });
  }
}

void Server::begin_drain() { queue_.begin_drain(); }

void Server::wait_drained() {
  const auto drained = [this] {
    return queue_.depth() == 0 &&
           accepted_.load() ==
               completed_.load() + failed_.load() + expired_.load();
  };
  std::unique_lock<std::mutex> lock(flight_mu_);
  // Timed wait: dispatcher notifications race the predicate check (they
  // notify without the lock), so poll instead of trusting every wakeup.
  while (!drained()) {
    flight_cv_.wait_for(lock, std::chrono::milliseconds(20));
  }
}

void Server::stop() {
  if (shutdown_.exchange(true)) return;
  queue_.stop();
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    for (auto& c : sessions_) {
      if (c->fd >= 0) ::shutdown(c->fd, SHUT_RDWR);
    }
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  for (auto& t : dispatchers_) {
    if (t.joinable()) t.join();
  }
  std::map<std::uint64_t, std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    threads.swap(session_threads_);
    finished_sessions_.clear();
  }
  for (auto& [id, t] : threads) {
    if (t.joinable()) t.join();
  }
  {
    // Dropping the last references closes any remaining fds
    // (~Connection); dispatcher jobs are all drained by now.
    std::lock_guard<std::mutex> lock(sessions_mu_);
    sessions_.clear();
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
  listen_fd_ = -1;
  ::unlink(cfg_.socket_path.c_str());
  flight_cv_.notify_all();
}

void Server::pause_dispatch() { queue_.pause(true); }
void Server::resume_dispatch() { queue_.pause(false); }

void Server::accept_loop() {
  while (!shutdown_.load()) {
    reap_sessions();
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int r = ::poll(&pfd, 1, 200);
    if (r <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    ECMS_METRIC_COUNT("serve.sessions.opened", 1);
    std::lock_guard<std::mutex> lock(sessions_mu_);
    const std::uint64_t id = next_session_id_++;
    sessions_.push_back(conn);
    session_threads_.emplace(
        id, std::thread([this, id, conn = std::move(conn)] {
          session_loop(id, conn);
        }));
  }
}

void Server::reap_sessions() {
  std::vector<std::thread> done;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    for (const std::uint64_t id : finished_sessions_) {
      const auto it = session_threads_.find(id);
      if (it != session_threads_.end()) {
        done.push_back(std::move(it->second));
        session_threads_.erase(it);
      }
    }
    finished_sessions_.clear();
  }
  for (auto& t : done) t.join();  // instant: these threads have exited
}

void Server::session_loop(std::uint64_t session_id,
                          std::shared_ptr<Connection> conn) {
  obs::ScopedSpan span("serve.session");
  Decoder decoder;
  bool handshaken = false;
  char buf[4096];
  while (!shutdown_.load() && conn->alive.load()) {
    pollfd pfd{conn->fd, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, 200);
    if (pr < 0 && errno != EINTR) break;
    if (pr <= 0) continue;
    const ssize_t n = ::read(conn->fd, buf, sizeof buf);
    if (n == 0) break;  // peer closed
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    decoder.feed(buf, static_cast<std::size_t>(n));

    Frame frame;
    Decoder::Status st;
    while ((st = decoder.next(frame)) == Decoder::Status::kFrame) {
      if (!handshaken) {
        // First frame must be a compatible kHello; anything else is
        // refused before a single request is admitted (the campaign
        // meta-mismatch rule, applied to the wire).
        Hello hello;
        if (frame.type != FrameType::kHello || !read_struct(frame, hello)) {
          conn->send(encode_text_frame(FrameType::kReject, 0, 0,
                                       "handshake required"));
          conn->alive.store(false);
          break;
        }
        if (hello.version != kProtocolVersion ||
            hello.config_hash != wire_format_hash()) {
          ECMS_METRIC_COUNT("serve.sessions.version_mismatch", 1);
          conn->send(encode_text_frame(
              FrameType::kReject, 0, 0,
              "protocol mismatch: server version " +
                  std::to_string(kProtocolVersion)));
          conn->alive.store(false);
          break;
        }
        Hello ok;
        ok.config_hash = wire_format_hash();
        conn->send(encode_struct(FrameType::kHelloOk, ok));
        handshaken = true;
        continue;
      }
      handle_frame(conn, frame);
    }
    if (st == Decoder::Status::kBad) {
      // Poisoned stream: one best-effort diagnostic, then drop this
      // session. Every other session keeps serving.
      ECMS_METRIC_COUNT("serve.protocol.errors", 1);
      conn->send(
          encode_text_frame(FrameType::kError, 0, 0, decoder.error()));
      conn->alive.store(false);
    }
  }
  conn->alive.store(false);
  // Peer sees EOF now, not at server stop; the fd itself stays open until
  // the last dispatcher job holding this connection drops it.
  ::shutdown(conn->fd, SHUT_RDWR);
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    sessions_.erase(std::remove(sessions_.begin(), sessions_.end(), conn),
                    sessions_.end());
    finished_sessions_.push_back(session_id);
  }
  ECMS_METRIC_COUNT("serve.sessions.closed", 1);
}

void Server::handle_frame(const std::shared_ptr<Connection>& conn,
                          const Frame& frame) {
  switch (frame.type) {
    case FrameType::kExtract: {
      ExtractSpec spec;
      if (!read_struct(frame, spec)) {
        conn->send(encode_text_frame(FrameType::kError, 0, 0,
                                     "short ExtractSpec payload"));
        return;
      }
      if (const std::string why = validate(spec); !why.empty()) {
        conn->send(
            encode_text_frame(FrameType::kError, spec.request_id, 0, why));
        return;
      }

      Job job;
      job.id = spec.request_id;
      if (spec.deadline_ms > 0) {
        job.deadline = std::chrono::steady_clock::now() +
                       std::chrono::milliseconds(spec.deadline_ms);
      }
      job.run = [this, conn, spec](util::ThreadPool* pool) {
        run_extract(conn, spec, pool);
      };
      job.expire = [this, conn, spec](const std::string& why) {
        expired_.fetch_add(1);
        conn->send(
            encode_text_frame(FrameType::kError, spec.request_id, 0, why));
      };

      const Admission verdict = queue_.offer(std::move(job));
      if (verdict.accepted) {
        accepted_.fetch_add(1);
        Ack ack;
        ack.request_id = spec.request_id;
        ack.queue_depth = verdict.queue_depth;
        conn->send(encode_struct(FrameType::kAccepted, ack));
      } else {
        conn->send(encode_text_frame(FrameType::kReject, spec.request_id,
                                     verdict.retry_after_ms, verdict.reason));
      }
      return;
    }
    case FrameType::kMetrics: {
      conn->send(encode_frame(FrameType::kMetricsReply,
                              obs::Registry::global().snapshot().to_json()));
      return;
    }
    case FrameType::kTrace: {
      conn->send(encode_frame(FrameType::kTraceReply, obs::trace_to_json()));
      return;
    }
    case FrameType::kCalibrate: {
      CalibrateSpec spec;
      if (!read_struct(frame, spec)) {
        conn->send(encode_text_frame(FrameType::kError, 0, 0,
                                     "short CalibrateSpec payload"));
        return;
      }
      if (spec.rows == 0 || spec.cols == 0 || spec.rows > 64 ||
          spec.cols > 64 || spec.ramp_steps < 2 || spec.ramp_steps > 4096 ||
          spec.points < 2 || spec.points > 100000 ||
          !(spec.cm_lo > 0 && spec.cm_hi > spec.cm_lo)) {
        conn->send(encode_text_frame(FrameType::kError, spec.request_id, 0,
                                     "calibration spec out of range"));
        return;
      }
      try {
        bool hit = false;
        CalibrationCache::Key key;
        key.rows = spec.rows;
        key.cols = spec.cols;
        key.ramp_steps = spec.ramp_steps;
        key.points = spec.points;
        key.cm_lo = spec.cm_lo;
        key.cm_hi = spec.cm_hi;
        const auto ab = calibrations_.get_or_build(key, &hit);
        CalibrateInfo info;
        info.request_id = spec.request_id;
        info.cache_hit = hit ? 1 : 0;
        info.codes_used = static_cast<std::uint32_t>(ab->codes_used());
        info.range_lo = ab->range_lo();
        info.range_hi = ab->range_hi();
        info.mean_accuracy = ab->mean_accuracy(
            1, static_cast<int>(spec.ramp_steps) - 1);
        conn->send(encode_struct(FrameType::kCalibrateReply, info));
      } catch (const std::exception& e) {
        conn->send(encode_text_frame(FrameType::kError, spec.request_id, 0,
                                     e.what()));
      }
      return;
    }
    default:
      conn->send(encode_text_frame(
          FrameType::kError, 0, 0,
          "unexpected frame type " +
              std::to_string(static_cast<std::uint32_t>(frame.type))));
      return;
  }
}

void Server::run_extract(const std::shared_ptr<Connection>& conn,
                         const ExtractSpec& spec, util::ThreadPool* pool) {
  obs::ScopedSpan span("serve.request");
  try {
    const edram::MacroCell mc = build_array(array_spec_of(spec));
    extraction::ExtractRequest req = request_of(spec);
    req.pool = pool;
    if (spec.want_progress != 0) {
      req.tile_hook = [&conn, &spec](std::size_t done, std::size_t total) {
        Progress p;
        p.request_id = spec.request_id;
        p.tiles_done = static_cast<std::uint32_t>(done);
        p.tiles_total = static_cast<std::uint32_t>(total);
        conn->send(encode_struct(FrameType::kProgress, p));
      };
    }
    const extraction::ExtractReport rep = extraction::extract(mc, req);

    ResultInfo info;
    info.request_id = spec.request_id;
    info.rows = static_cast<std::uint32_t>(rep.bitmap.rows());
    info.cols = static_cast<std::uint32_t>(rep.bitmap.cols());
    for (const CellStatus s : rep.status) {
      if (s == CellStatus::kOk) ++info.ok;
      else if (s == CellStatus::kRecovered) ++info.recovered;
      else ++info.unmeasurable;
    }
    info.transient_steps = rep.telemetry.transient_steps;
    info.conversion_steps = rep.telemetry.conversion_steps();

    const std::vector<int>& codes = rep.bitmap.codes();
    static_assert(sizeof(int) == 4, "codes are framed as int32");
    info.code_hash =
        util::fnv1a64(codes.data(), codes.size() * sizeof(int));

    std::string payload(reinterpret_cast<const char*>(&info), sizeof info);
    payload.append(reinterpret_cast<const char*>(codes.data()),
                   codes.size() * sizeof(int));
    for (const CellStatus s : rep.status) {
      payload.push_back(static_cast<char>(s));
    }
    conn->send(encode_frame(FrameType::kResult, payload.data(), payload.size()));
    completed_.fetch_add(1);
    ECMS_METRIC_COUNT("serve.requests.completed", 1);
  } catch (const std::exception& e) {
    failed_.fetch_add(1);
    ECMS_METRIC_COUNT("serve.requests.failed", 1);
    conn->send(
        encode_text_frame(FrameType::kError, spec.request_id, 0, e.what()));
  }
}

void Server::dispatch_loop(std::size_t) {
  // Each dispatcher owns its tile-worker pool: pools are never shared, so
  // concurrent requests can't nest parallel_for on one pool.
  std::unique_ptr<util::ThreadPool> pool;
  if (cfg_.jobs > 1) pool = std::make_unique<util::ThreadPool>(cfg_.jobs);

  Job job;
  while (queue_.take(job)) {
    if (job.run) job.run(pool.get());
    job = Job{};  // release captured state before sleeping
    flight_cv_.notify_all();
  }
  flight_cv_.notify_all();
}

}  // namespace ecms::serve
