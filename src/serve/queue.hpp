// Bounded admission queue of the extraction service (DESIGN.md §13).
//
// Admission control is decided at offer() time, synchronously, so a caller
// always learns its fate immediately: accepted (with the depth it joined
// at), or rejected with a retry-after hint sized to the backlog. A full
// queue NEVER blocks the offering session thread and an admitted job is
// NEVER silently dropped — once accepted, a job either runs or (past its
// deadline) has its expire callback invoked, even across drain.
//
// Drain (SIGINT/SIGTERM) follows the campaign-supervisor taxonomy: new
// offers are rejected with retry_after_ms = 0 ("draining" is not a
// transient condition worth retrying against this process), already-queued
// jobs still run to completion, and take() returns false only once the
// queue is empty — so a graceful shutdown loses zero accepted requests.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>

namespace ecms::util {
class ThreadPool;
}

namespace ecms::serve {

/// One admitted unit of work. `run` executes on a dispatcher thread and
/// receives that dispatcher's private tile-worker pool (null = serial);
/// `expire` is called instead (also on a dispatcher thread) when the
/// deadline passes while the job is still queued.
struct Job {
  std::uint64_t id = 0;
  /// time_point::max() = no deadline.
  std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::time_point::max();
  std::function<void(util::ThreadPool*)> run;
  std::function<void(const std::string&)> expire;
};

/// offer() verdict.
struct Admission {
  bool accepted = false;
  /// Depth at admission (this job included) when accepted.
  std::uint32_t queue_depth = 0;
  /// Backpressure hint when rejected; 0 = do not retry (draining/stopped).
  std::uint32_t retry_after_ms = 0;
  std::string reason;
};

class AdmissionQueue {
 public:
  explicit AdmissionQueue(std::size_t capacity);

  /// Admit or reject `job` without blocking. Counts
  /// serve.requests.{accepted,rejected} and tracks serve.queue.depth.
  Admission offer(Job job);

  /// Blocks until a job is available; pops it into `out` and returns true.
  /// Jobs whose deadline has passed are expired here (their expire callback
  /// runs on the calling thread, counted as serve.requests.expired) rather
  /// than handed out. Returns false when the queue is stopped, or draining
  /// and empty — the dispatcher's signal to exit.
  bool take(Job& out);

  /// Freeze/unfreeze take(): while paused, dispatchers block without
  /// popping, but offer() admission is unchanged — the test hook that makes
  /// a deterministically full queue possible.
  void pause(bool on);

  /// Reject new offers; queued jobs still drain through take().
  void begin_drain();
  /// Reject new offers and unblock take() immediately, abandoning queued
  /// jobs (their expire callbacks run with reason "stopped"). Hard-stop
  /// path only; graceful shutdown uses begin_drain().
  void stop();

  std::size_t depth() const;
  std::size_t capacity() const { return capacity_; }
  bool draining() const;

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Job> jobs_;
  bool draining_ = false;
  bool stopped_ = false;
  bool paused_ = false;
};

}  // namespace ecms::serve
