#include "serve/protocol.hpp"

#include "util/crc32.hpp"

namespace ecms::serve {

std::uint64_t wire_format_hash() {
  const std::uint32_t shape[] = {
      kProtocolVersion,
      static_cast<std::uint32_t>(sizeof(FrameHeader)),
      static_cast<std::uint32_t>(sizeof(Hello)),
      static_cast<std::uint32_t>(sizeof(TextInfo)),
      static_cast<std::uint32_t>(sizeof(ExtractSpec)),
      static_cast<std::uint32_t>(sizeof(Ack)),
      static_cast<std::uint32_t>(sizeof(Progress)),
      static_cast<std::uint32_t>(sizeof(ResultInfo)),
      static_cast<std::uint32_t>(sizeof(CalibrateSpec)),
      static_cast<std::uint32_t>(sizeof(CalibrateInfo)),
  };
  return util::fnv1a64(shape, sizeof shape);
}

std::string encode_frame(FrameType type, const void* payload, std::size_t n) {
  FrameHeader h;
  h.type = static_cast<std::uint32_t>(type);
  h.payload_len = static_cast<std::uint32_t>(n);
  h.crc = n ? util::crc32(payload, n) : 0;
  std::string out;
  out.reserve(sizeof h + n);
  out.append(reinterpret_cast<const char*>(&h), sizeof h);
  if (n) out.append(static_cast<const char*>(payload), n);
  return out;
}

std::string encode_text_frame(FrameType type, std::uint64_t request_id,
                              std::uint32_t retry_after_ms,
                              std::string_view text) {
  TextInfo info;
  info.request_id = request_id;
  info.retry_after_ms = retry_after_ms;
  info.text_len = static_cast<std::uint32_t>(text.size());
  std::string payload(reinterpret_cast<const char*>(&info), sizeof info);
  payload.append(text);
  return encode_frame(type, payload.data(), payload.size());
}

bool read_text_frame(const Frame& f, TextInfo& info, std::string& text) {
  if (!read_struct(f, info)) return false;
  if (f.payload.size() < sizeof info + info.text_len) return false;
  text.assign(f.payload.data() + sizeof info, info.text_len);
  return true;
}

Decoder::Status Decoder::next(Frame& out) {
  if (bad_) return Status::kBad;
  if (buf_.size() < sizeof(FrameHeader)) return Status::kNeedMore;

  FrameHeader h;
  std::memcpy(&h, buf_.data(), sizeof h);
  if (h.magic != kFrameMagic) {
    bad_ = true;
    error_ = "bad frame magic";
    return Status::kBad;
  }
  if (h.type < static_cast<std::uint32_t>(FrameType::kHello) ||
      h.type > static_cast<std::uint32_t>(FrameType::kError)) {
    bad_ = true;
    error_ = "unknown frame type " + std::to_string(h.type);
    return Status::kBad;
  }
  if (h.payload_len > kMaxPayload) {
    bad_ = true;
    error_ = "oversize payload length " + std::to_string(h.payload_len);
    return Status::kBad;
  }
  if (buf_.size() < sizeof h + h.payload_len) return Status::kNeedMore;

  const char* payload = buf_.data() + sizeof h;
  const std::uint32_t crc = h.payload_len ? util::crc32(payload, h.payload_len) : 0;
  if (crc != h.crc) {
    bad_ = true;
    error_ = "payload CRC mismatch";
    return Status::kBad;
  }

  out.type = static_cast<FrameType>(h.type);
  out.payload.assign(payload, payload + h.payload_len);
  buf_.erase(0, sizeof h + h.payload_len);
  return Status::kFrame;
}

}  // namespace ecms::serve
