#include "serve/client.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace ecms::serve {
namespace {

bool write_fd(int fd, const char* data, std::size_t n) {
  while (n > 0) {
    const ssize_t w = ::write(fd, data, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

/// Decodes a kResult frame's payload tail into `out`; false when the frame
/// is shorter than its own header promises.
bool parse_result(const Frame& f, Client::Result& out) {
  if (!read_struct(f, out.info)) return false;
  const std::size_t cells =
      static_cast<std::size_t>(out.info.rows) * out.info.cols;
  const std::size_t need = sizeof(ResultInfo) + cells * (sizeof(std::int32_t) + 1);
  if (f.payload.size() < need) return false;
  const char* p = f.payload.data() + sizeof(ResultInfo);
  out.codes.resize(cells);
  std::memcpy(out.codes.data(), p, cells * sizeof(std::int32_t));
  p += cells * sizeof(std::int32_t);
  out.status.assign(reinterpret_cast<const std::uint8_t*>(p),
                    reinterpret_cast<const std::uint8_t*>(p) + cells);
  out.ok = true;
  return true;
}

}  // namespace

Client::~Client() { close(); }

void Client::close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

bool Client::connect(const std::string& socket_path, std::string* error,
                     const Hello* hello_override) {
  close();
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) {
    if (error) *error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof addr.sun_path) {
    if (error) *error = "socket path too long: " + socket_path;
    close();
    return false;
  }
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof addr.sun_path - 1);
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    if (error)
      *error = "connect " + socket_path + ": " + std::strerror(errno);
    close();
    return false;
  }

  Hello hello;
  hello.config_hash = wire_format_hash();
  if (hello_override) hello = *hello_override;
  if (!send_raw(encode_struct(FrameType::kHello, hello), error)) return false;

  Frame frame;
  if (!next_frame(frame, error)) return false;
  if (frame.type == FrameType::kReject) {
    TextInfo info;
    std::string why;
    read_text_frame(frame, info, why);
    if (error) *error = why.empty() ? "handshake rejected" : why;
    close();
    return false;
  }
  if (frame.type != FrameType::kHelloOk) {
    if (error) *error = "unexpected handshake reply";
    close();
    return false;
  }
  return true;
}

bool Client::send_raw(const std::string& bytes, std::string* error) {
  if (fd_ < 0) {
    if (error) *error = "not connected";
    return false;
  }
  if (!write_fd(fd_, bytes.data(), bytes.size())) {
    if (error) *error = std::string("write: ") + std::strerror(errno);
    close();
    return false;
  }
  return true;
}

bool Client::next_frame(Frame& out, std::string* error) {
  char buf[4096];
  for (;;) {
    switch (decoder_.next(out)) {
      case Decoder::Status::kFrame:
        return true;
      case Decoder::Status::kBad:
        if (error) *error = "protocol error: " + decoder_.error();
        close();
        return false;
      case Decoder::Status::kNeedMore:
        break;
    }
    const ssize_t n = ::read(fd_, buf, sizeof buf);
    if (n == 0) {
      if (error) *error = "server closed the connection";
      close();
      return false;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if (error) *error = std::string("read: ") + std::strerror(errno);
      close();
      return false;
    }
    decoder_.feed(buf, static_cast<std::size_t>(n));
  }
}

Client::Submission Client::submit(const ExtractSpec& spec) {
  Submission sub;
  std::string error;
  if (!send_raw(encode_struct(FrameType::kExtract, spec), &error)) {
    sub.reason = error;
    return sub;
  }
  // The admission verdict is synchronous, but frames for OTHER in-flight
  // requests may arrive first — buffer them.
  Frame frame;
  for (;;) {
    if (!next_frame(frame, &error)) {
      sub.reason = error;
      return sub;
    }
    switch (frame.type) {
      case FrameType::kAccepted: {
        Ack ack;
        if (read_struct(frame, ack) && ack.request_id == spec.request_id) {
          sub.accepted = true;
          sub.queue_depth = ack.queue_depth;
          return sub;
        }
        break;  // ack for someone else: drop (submissions are sequential)
      }
      case FrameType::kReject: {
        TextInfo info;
        std::string why;
        if (read_text_frame(frame, info, why) &&
            (info.request_id == spec.request_id || info.request_id == 0)) {
          sub.retry_after_ms = info.retry_after_ms;
          sub.reason = why;
          return sub;
        }
        break;
      }
      case FrameType::kError: {
        TextInfo info;
        std::string why;
        if (read_text_frame(frame, info, why)) {
          if (info.request_id == spec.request_id || info.request_id == 0) {
            sub.reason = why;
            return sub;
          }
          Result r;
          r.error = why;
          pending_[info.request_id] = std::move(r);
        }
        break;
      }
      case FrameType::kResult: {
        Result r;
        if (parse_result(frame, r)) pending_[r.info.request_id] = std::move(r);
        break;
      }
      case FrameType::kProgress:
        break;  // progress for an earlier request; drop
      default:
        break;
    }
  }
}

Client::Result Client::await_result(
    std::uint64_t request_id,
    const std::function<void(const Progress&)>& on_progress) {
  if (auto it = pending_.find(request_id); it != pending_.end()) {
    Result r = std::move(it->second);
    pending_.erase(it);
    return r;
  }
  Frame frame;
  std::string error;
  for (;;) {
    if (!next_frame(frame, &error)) {
      Result r;
      r.error = error;
      return r;
    }
    switch (frame.type) {
      case FrameType::kResult: {
        Result r;
        if (!parse_result(frame, r)) {
          r.error = "malformed result frame";
          return r;
        }
        if (r.info.request_id == request_id) return r;
        pending_[r.info.request_id] = std::move(r);
        break;
      }
      case FrameType::kError: {
        TextInfo info;
        std::string why;
        if (read_text_frame(frame, info, why)) {
          Result r;
          r.error = why.empty() ? "request failed" : why;
          if (info.request_id == request_id) return r;
          pending_[info.request_id] = std::move(r);
        }
        break;
      }
      case FrameType::kProgress: {
        Progress p;
        if (read_struct(frame, p) && p.request_id == request_id &&
            on_progress) {
          on_progress(p);
        }
        break;
      }
      default:
        break;
    }
  }
}

bool Client::metrics(std::string* json, std::string* error) {
  if (!send_raw(encode_frame(FrameType::kMetrics, nullptr, 0), error)) {
    return false;
  }
  Frame frame;
  for (;;) {
    if (!next_frame(frame, error)) return false;
    if (frame.type == FrameType::kMetricsReply) {
      if (json) json->assign(frame.payload.data(), frame.payload.size());
      return true;
    }
    if (frame.type == FrameType::kResult) {
      Result r;
      if (parse_result(frame, r)) pending_[r.info.request_id] = std::move(r);
    }
  }
}

bool Client::trace(std::string* json, std::string* error) {
  if (!send_raw(encode_frame(FrameType::kTrace, nullptr, 0), error)) {
    return false;
  }
  Frame frame;
  for (;;) {
    if (!next_frame(frame, error)) return false;
    if (frame.type == FrameType::kTraceReply) {
      if (json) json->assign(frame.payload.data(), frame.payload.size());
      return true;
    }
    if (frame.type == FrameType::kResult) {
      Result r;
      if (parse_result(frame, r)) pending_[r.info.request_id] = std::move(r);
    }
  }
}

bool Client::calibrate(const CalibrateSpec& spec, CalibrateInfo* out,
                       std::string* error) {
  if (!send_raw(encode_struct(FrameType::kCalibrate, spec), error)) {
    return false;
  }
  Frame frame;
  for (;;) {
    if (!next_frame(frame, error)) return false;
    if (frame.type == FrameType::kCalibrateReply) {
      CalibrateInfo info;
      if (!read_struct(frame, info)) {
        if (error) *error = "malformed calibrate reply";
        return false;
      }
      if (out) *out = info;
      return true;
    }
    if (frame.type == FrameType::kError) {
      TextInfo info;
      std::string why;
      if (read_text_frame(frame, info, why) &&
          info.request_id == spec.request_id) {
        if (error) *error = why;
        return false;
      }
    }
    if (frame.type == FrameType::kResult) {
      Result r;
      if (parse_result(frame, r)) pending_[r.info.request_id] = std::move(r);
    }
  }
}

}  // namespace ecms::serve
