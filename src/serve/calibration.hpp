// Keyed abacus-calibration warm cache (DESIGN.md §13).
//
// An abacus (the paper's Figure-3 calibration curve) depends only on the
// structure geometry and the sweep parameters, so a long-lived server can
// build each distinct calibration once and serve every later Calibrate
// request from memory. Entries are immutable shared_ptr<const Abacus>:
// built under the cache mutex, then shared read-only across sessions with
// no further synchronization — the same ownership rule as the program
// cache (DESIGN.md §11).
//
// Deliberately NOT wired into the extraction path: extraction designs its
// reference currents per tile from the actual cell capacitances, so a
// cached geometry-keyed calibration there would change codes. This cache
// serves only the explicit Calibrate request type.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>

#include "msu/abacus.hpp"

namespace ecms::serve {

class CalibrationCache {
 public:
  /// Calibration identity: uniform-array geometry plus sweep shape.
  struct Key {
    std::uint32_t rows = 4, cols = 4;
    std::uint32_t ramp_steps = 20;
    std::uint32_t points = 741;
    double cm_lo = 1e-15, cm_hi = 75e-15;

    std::uint64_t hash() const;
    bool operator==(const Key&) const = default;
    /// Total order for the cache map — full-field compare, so distinct
    /// calibrations can never alias (no hash-collision trap to guard).
    bool operator<(const Key& o) const;
  };

  /// Returns the calibration for `key`, building it on first use (uniform
  /// 30 fF macro-cell, fast model, bisection-refined boundaries — the
  /// `ecms_tool abacus` recipe). Sets *hit when the entry was already warm.
  /// Counts serve.calibration.{hits,misses}.
  std::shared_ptr<const msu::Abacus> get_or_build(const Key& key,
                                                  bool* hit = nullptr);

  std::size_t entries() const;
  void clear();

 private:
  mutable std::mutex mu_;
  std::map<Key, std::shared_ptr<const msu::Abacus>> cache_;
};

}  // namespace ecms::serve
