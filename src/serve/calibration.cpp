#include "serve/calibration.hpp"

#include <tuple>

#include "edram/macrocell.hpp"
#include "msu/fastmodel.hpp"
#include "obs/metrics.hpp"
#include "tech/tech.hpp"
#include "util/crc32.hpp"
#include "util/units.hpp"

namespace ecms::serve {

std::uint64_t CalibrationCache::Key::hash() const {
  std::uint64_t h = util::fnv1a64(&rows, sizeof rows);
  h = util::fnv1a64(&cols, sizeof cols, h);
  h = util::fnv1a64(&ramp_steps, sizeof ramp_steps, h);
  h = util::fnv1a64(&points, sizeof points, h);
  h = util::fnv1a64(&cm_lo, sizeof cm_lo, h);
  h = util::fnv1a64(&cm_hi, sizeof cm_hi, h);
  return h;
}

bool CalibrationCache::Key::operator<(const Key& o) const {
  return std::tie(rows, cols, ramp_steps, points, cm_lo, cm_hi) <
         std::tie(o.rows, o.cols, o.ramp_steps, o.points, o.cm_lo, o.cm_hi);
}

std::shared_ptr<const msu::Abacus> CalibrationCache::get_or_build(
    const Key& key, bool* hit) {
  // Builds run under the mutex: a thundering herd on one cold key would
  // otherwise burn N identical sweeps; serialized, the first builder pays
  // and the rest hit. Calibrations are milliseconds (fast model), so the
  // stall is acceptable for a warm-state cache.
  std::lock_guard<std::mutex> lock(mu_);
  if (auto it = cache_.find(key); it != cache_.end()) {
    if (hit) *hit = true;
    ECMS_METRIC_COUNT("serve.calibration.hits", 1);
    return it->second;
  }
  if (hit) *hit = false;
  ECMS_METRIC_COUNT("serve.calibration.misses", 1);

  msu::StructureParams p;
  p.ramp_steps = static_cast<int>(key.ramp_steps);
  const auto mc = edram::MacroCell::uniform(
      {.rows = key.rows, .cols = key.cols}, tech::tech018(), 30_fF);
  const msu::FastModel model(mc, p);
  auto ab = std::make_shared<msu::Abacus>(msu::Abacus::build(
      [&](double cm) { return model.code_of_cap(cm); }, p.ramp_steps,
      key.cm_lo, key.cm_hi, key.points));
  ab->refine([&](double cm) { return model.code_of_cap(cm); }, 1e-19);
  cache_.emplace(key, ab);
  return ab;
}

std::size_t CalibrationCache::entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cache_.size();
}

void CalibrationCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  cache_.clear();
}

}  // namespace ecms::serve
