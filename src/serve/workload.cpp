#include "serve/workload.hpp"

#include <algorithm>
#include <utility>

#include "tech/tech.hpp"
#include "util/rng.hpp"

namespace ecms::serve {

edram::MacroCell build_array(const ArraySpec& spec) {
  tech::CapProcessParams cp;
  cp.local_sigma_rel = 0.02;
  cp.gradient_x_rel = spec.gradient;
  cp.lot_offset_rel = spec.drift;
  tech::CapField field(cp, spec.rows, spec.cols, spec.seed);
  Rng rng(spec.seed);
  tech::DefectRates rates;
  rates.short_rate = spec.shorts;
  rates.open_rate = spec.opens;
  rates.partial_rate = spec.partials;
  tech::DefectMap defects =
      tech::DefectMap::random(spec.rows, spec.cols, rates, rng);
  return edram::MacroCell({.rows = spec.rows, .cols = spec.cols},
                          tech::tech018(), std::move(field),
                          std::move(defects));
}

ArraySpec array_spec_of(const ExtractSpec& spec) {
  ArraySpec a;
  a.rows = spec.rows;
  a.cols = spec.cols;
  a.seed = spec.seed;
  a.gradient = spec.gradient;
  a.drift = spec.drift;
  a.shorts = spec.shorts;
  a.opens = spec.opens;
  a.partials = spec.partials;
  return a;
}

extraction::ExtractRequest request_of(const ExtractSpec& spec) {
  extraction::ExtractRequest req;
  req.engine = spec.engine == 1 ? extraction::Engine::kCircuit
                                : extraction::Engine::kFastModel;
  req.tile_rows = spec.tile_rows;
  req.tile_cols = spec.tile_cols;
  req.robust = true;
  req.contain = true;
  req.retry.max_attempts = static_cast<int>(std::max<std::uint32_t>(1, spec.retries));
  req.options.adaptive.enabled = spec.adaptive != 0;
  req.options.newton.solver.kind = static_cast<circuit::SolverKind>(
      std::min<std::uint32_t>(spec.solver, 2));
  req.share_programs = spec.share_programs != 0;
  req.batch_width = static_cast<int>(spec.batch);
  return req;
}

}  // namespace ecms::serve
