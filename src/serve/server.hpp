// The extraction service daemon (DESIGN.md §13).
//
// One Server owns: a Unix-domain listener, one session thread per
// connection (frame decode, handshake, admission), an AdmissionQueue, and
// N dispatcher threads that pop admitted jobs and run them through the
// unified extraction::extract(). Warm state — ProgramCache::global() and
// the CalibrationCache — is shared read-only across every request, so a
// repeated topology pays zero symbolic factorizations after its first
// appearance (the EXT-A12 gate).
//
// Threading rules:
//   * each dispatcher owns a private util::ThreadPool (jobs > 1); pools
//     are never shared between dispatchers, so tile fan-outs from
//     concurrent requests cannot interleave on one pool (ThreadPool
//     forbids nested/concurrent parallel_for);
//   * all writes to one connection go through its write mutex — session
//     thread (acks, rejections, metrics) and dispatcher (progress,
//     results) interleave whole frames, never bytes;
//   * a dead client (EPIPE — SIGPIPE must be ignored process-wide, see
//     tools/ecms_tool.cpp) marks the connection dead; its queued/running
//     jobs still run to completion and drop their frames on the floor.
//
// Shutdown taxonomy (mirrors the campaign supervisor):
//   begin_drain(): queue rejects new work ("draining"), accepted jobs
//   finish, wait_drained() returns once queue and in-flight are empty —
//   zero accepted requests lost. stop(): tear down listener, sessions and
//   dispatchers (queued jobs are expired with "stopped", never silent).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/calibration.hpp"
#include "serve/queue.hpp"
#include "util/threadpool.hpp"

namespace ecms::serve {

struct ServerConfig {
  std::string socket_path;
  std::size_t queue_capacity = 64;
  std::size_t dispatchers = 1;  ///< concurrent requests in flight
  std::size_t jobs = 1;         ///< tile workers per dispatcher
};

class Server {
 public:
  explicit Server(ServerConfig cfg);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the socket and starts accept/dispatcher threads. Throws
  /// ecms::Error when the socket can't be bound.
  void start();

  /// Queue rejects new offers; accepted work keeps running.
  void begin_drain();
  /// Blocks until the queue is empty and no job is in flight.
  void wait_drained();
  /// Full teardown: listener, sessions, dispatchers; unlinks the socket.
  /// Graceful shutdown is begin_drain(); wait_drained(); stop().
  void stop();

  /// Test hooks: freeze/unfreeze dispatchers so admission behaviour
  /// (capacity rejections, drain) can be probed with a deterministically
  /// full queue.
  void pause_dispatch();
  void resume_dispatch();

  std::size_t queue_depth() const { return queue_.depth(); }
  const ServerConfig& config() const { return cfg_; }
  /// Requests accepted / completed / failed since start.
  std::uint64_t accepted() const { return accepted_.load(); }
  std::uint64_t completed() const { return completed_.load(); }
  std::uint64_t failed() const { return failed_.load(); }

 private:
  struct Connection;

  void accept_loop();
  void session_loop(std::uint64_t session_id,
                    std::shared_ptr<Connection> conn);
  void dispatch_loop(std::size_t dispatcher_index);
  /// Joins session threads that have announced their exit — called from the
  /// accept loop so a long-lived daemon never accumulates dead thread
  /// stacks (a joinable-but-exited pthread keeps its stack mapped).
  void reap_sessions();
  /// Session-thread frame handling after a completed handshake.
  void handle_frame(const std::shared_ptr<Connection>& conn,
                    const struct Frame& frame);
  /// Dispatcher-thread body of one accepted extraction request.
  void run_extract(const std::shared_ptr<Connection>& conn,
                   const struct ExtractSpec& spec, util::ThreadPool* pool);

  ServerConfig cfg_;
  int listen_fd_ = -1;
  AdmissionQueue queue_;
  CalibrationCache calibrations_;

  std::thread accept_thread_;
  std::vector<std::thread> dispatchers_;
  std::mutex sessions_mu_;
  std::vector<std::shared_ptr<Connection>> sessions_;
  std::uint64_t next_session_id_ = 0;
  std::map<std::uint64_t, std::thread> session_threads_;
  std::vector<std::uint64_t> finished_sessions_;

  std::atomic<bool> shutdown_{false};
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> failed_{0};
  std::atomic<std::uint64_t> expired_{0};

  // wait_drained() sleeps here; dispatchers notify after every job.
  mutable std::mutex flight_mu_;
  std::condition_variable flight_cv_;
};

}  // namespace ecms::serve
