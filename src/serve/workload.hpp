// Shared request-to-workload translation (DESIGN.md §13).
//
// The bit-identity contract of the service — a served request's codes are
// byte-for-byte what a one-shot `ecms_tool` run of the same parameters
// produces — only holds if both paths build the synthetic array and the
// extraction request from the SAME code. This header is that code: the CLI
// (array_of) and the server both call build_array()/request_of(), so the
// array identity and measurement shape can never drift apart.
#pragma once

#include <cstdint>

#include "bitmap/extraction.hpp"
#include "edram/macrocell.hpp"
#include "serve/protocol.hpp"

namespace ecms::serve {

/// The result-determining identity of a synthetic test array: dimensions,
/// the process-variation field and the seeded defect population. Two equal
/// ArraySpecs always build bit-identical arrays.
struct ArraySpec {
  std::size_t rows = 8, cols = 8;
  std::uint64_t seed = 1;
  double gradient = 0.0;  ///< systematic across-array capacitance gradient
  double drift = 0.0;     ///< lot-level offset
  double shorts = 0.002, opens = 0.002, partials = 0.005;
};

/// Builds the synthetic macro-cell array for `spec` (local sigma 2%,
/// tech018, seeded defect map) — the body formerly private to ecms_tool.
edram::MacroCell build_array(const ArraySpec& spec);

/// The array identity carried by a wire-level extraction request.
ArraySpec array_spec_of(const ExtractSpec& spec);

/// Translates a wire-level request into a unified extraction request:
/// robust, containing, with the spec's engine/tiling/solver/retry shape.
/// The dispatcher still owns `jobs`/`pool` (worker count is supervision,
/// not identity — codes are bit-identical at any jobs).
extraction::ExtractRequest request_of(const ExtractSpec& spec);

}  // namespace ecms::serve
