// Wire protocol of the extraction service (DESIGN.md §13).
//
// ecms_serve speaks a CRC-framed, length-prefixed binary protocol over a
// Unix-domain stream socket, reusing the framing discipline of the campaign
// journal (campaign/store.cpp): every frame is a 16-byte header
// {magic, type, payload_len, crc32} followed by its payload, the CRC covers
// the payload only, and a length prefix above kMaxPayload is treated as
// corruption instead of a wild allocation. A stream that fails any of these
// checks is poisoned — the Decoder reports kBad once and refuses further
// frames, the server answers with one best-effort kError frame and closes
// that connection while every other session keeps serving (the serve-side
// analogue of the store's torn-tail / quarantine taxonomy).
//
// Sessions open with a handshake: the client's kHello carries the protocol
// version and a config hash of the wire format; a mismatch is refused with
// kReject before any request is admitted — mirroring the campaign store's
// meta-mismatch refusal, so a stale client can never feed requests to a
// server that would misread them.
//
// Payload structs are fixed-width and trivially copyable (the UnitRecord
// rule): a frame is a memcpy plus a CRC, never a parse. Variable-length
// content (reject reasons, error messages, metrics/trace JSON, result code
// arrays) rides as a byte tail after the fixed struct, with the fixed part
// carrying the tail length.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace ecms::serve {

// v2: ExtractSpec grew the `batch` field (lockstep batch width). The
// handshake hash covers struct sizes, so a v1 peer is refused at kHello
// rather than silently misreading the wider spec.
inline constexpr std::uint32_t kProtocolVersion = 2;
inline constexpr std::uint32_t kFrameMagic = 0x45565253;  // "SRVE"
/// A metrics/trace export or a result frame larger than this is
/// structurally impossible at supported array sizes; treat it as corruption
/// instead of allocating wild (same guard as the campaign journal).
inline constexpr std::uint32_t kMaxPayload = 16u << 20;

enum class FrameType : std::uint32_t {
  kHello = 1,           ///< client -> server: Hello
  kHelloOk = 2,         ///< server -> client: Hello (the server's identity)
  kReject = 3,          ///< server -> client: TextInfo + reason bytes
  kExtract = 4,         ///< client -> server: ExtractSpec
  kAccepted = 5,        ///< server -> client: Ack
  kProgress = 6,        ///< server -> client: Progress (streamed per tile)
  kResult = 7,          ///< server -> client: ResultInfo + codes + status
  kMetrics = 8,         ///< client -> server: empty
  kMetricsReply = 9,    ///< server -> client: metrics JSON bytes
  kTrace = 10,          ///< client -> server: empty
  kTraceReply = 11,     ///< server -> client: Chrome trace JSON bytes
  kCalibrate = 12,      ///< client -> server: CalibrateSpec
  kCalibrateReply = 13, ///< server -> client: CalibrateInfo
  kError = 14,          ///< server -> client: TextInfo + message bytes
};

/// 16-byte frame header; `crc` covers the payload only.
struct FrameHeader {
  std::uint32_t magic = kFrameMagic;
  std::uint32_t type = 0;
  std::uint32_t payload_len = 0;
  std::uint32_t crc = 0;
};
static_assert(sizeof(FrameHeader) == 16);

/// Handshake payload, both directions. The config hash pins the wire
/// format (version + payload struct layouts): client and server must agree
/// byte for byte before any request is admitted.
struct Hello {
  std::uint32_t version = kProtocolVersion;
  std::uint32_t pad = 0;
  std::uint64_t config_hash = 0;
};

/// Fixed part of kReject and kError; `text_len` bytes of reason/message
/// follow. `retry_after_ms` is meaningful for admission rejections only
/// (0 = do not retry, the request is refused outright).
struct TextInfo {
  std::uint64_t request_id = 0;
  std::uint32_t retry_after_ms = 0;
  std::uint32_t text_len = 0;
};

/// One extraction request: the synthetic-array identity (exactly the CLI's
/// bitmap/array parameterization, so served results can be compared
/// bit-for-bit against one-shot runs) plus the measurement shape.
struct ExtractSpec {
  std::uint64_t request_id = 0;
  // Array identity (result-determining; serve::ArraySpec mirror).
  std::uint32_t rows = 8, cols = 8;
  std::uint64_t seed = 1;
  double gradient = 0.0, drift = 0.0;
  double shorts = 0.002, opens = 0.002, partials = 0.005;
  // Measurement shape.
  std::uint32_t engine = 0;  ///< 0 = fast model, 1 = circuit
  std::uint32_t tile_rows = 4, tile_cols = 4;
  std::uint32_t adaptive = 1;       ///< circuit engine: adaptive scheduling
  std::uint32_t solver = 2;         ///< circuit::SolverKind (0/1/2 = dense/sparse/auto)
  std::uint32_t retries = 2;        ///< per-cell attempt budget
  std::uint32_t share_programs = 1; ///< adopt the process-wide ProgramCache
  std::uint32_t batch = 0;          ///< lockstep width: 0 = auto, 1 = off, n = lanes
  std::uint32_t want_progress = 0;  ///< stream per-tile Progress frames
  std::uint32_t deadline_ms = 0;    ///< queue deadline from admission; 0 = none
};

/// Admission acknowledgement for an accepted request.
struct Ack {
  std::uint64_t request_id = 0;
  std::uint32_t queue_depth = 0;  ///< depth at admission, this request included
  std::uint32_t pad = 0;
};

/// Per-tile progress, streamed while the request runs.
struct Progress {
  std::uint64_t request_id = 0;
  std::uint32_t tiles_done = 0;
  std::uint32_t tiles_total = 0;
};

/// Fixed part of kResult; followed by rows*cols int32 codes (row-major)
/// and rows*cols uint8 cell statuses. `code_hash` is the FNV-1a digest of
/// the code bytes — the bit-identity witness EXT-A12 compares against
/// one-shot runs.
struct ResultInfo {
  std::uint64_t request_id = 0;
  std::uint32_t rows = 0, cols = 0;
  std::uint32_t ok = 0, recovered = 0, unmeasurable = 0;
  std::uint32_t pad = 0;
  std::uint64_t code_hash = 0;
  std::uint64_t transient_steps = 0;
  std::uint64_t conversion_steps = 0;
};

/// Abacus-calibration request (the keyed warm cache): which uniform
/// macro-cell geometry and sweep to calibrate.
struct CalibrateSpec {
  std::uint64_t request_id = 0;
  std::uint32_t rows = 4, cols = 4;
  std::uint32_t ramp_steps = 20;
  std::uint32_t points = 741;
  double cm_lo = 1e-15, cm_hi = 75e-15;
};

struct CalibrateInfo {
  std::uint64_t request_id = 0;
  std::uint32_t cache_hit = 0;   ///< 1 when served from the warm cache
  std::uint32_t codes_used = 0;
  double range_lo = 0.0, range_hi = 0.0;
  double mean_accuracy = 0.0;
};

static_assert(std::is_trivially_copyable_v<Hello> &&
              std::is_trivially_copyable_v<TextInfo> &&
              std::is_trivially_copyable_v<ExtractSpec> &&
              std::is_trivially_copyable_v<Ack> &&
              std::is_trivially_copyable_v<Progress> &&
              std::is_trivially_copyable_v<ResultInfo> &&
              std::is_trivially_copyable_v<CalibrateSpec> &&
              std::is_trivially_copyable_v<CalibrateInfo>,
              "payloads are framed raw");

/// The handshake config hash: FNV-1a over the protocol version and every
/// payload struct's size. Two builds agree exactly when their wire formats
/// are byte-compatible; anything else is refused at kHello.
std::uint64_t wire_format_hash();

/// One decoded frame.
struct Frame {
  FrameType type = FrameType::kHello;
  std::vector<char> payload;
};

/// Frames `payload` into header + bytes, ready to write to the socket.
std::string encode_frame(FrameType type, const void* payload, std::size_t n);
inline std::string encode_frame(FrameType type, std::string_view payload) {
  return encode_frame(type, payload.data(), payload.size());
}
template <typename T>
std::string encode_struct(FrameType type, const T& t) {
  static_assert(std::is_trivially_copyable_v<T>);
  return encode_frame(type, &t, sizeof t);
}
/// kReject / kError: TextInfo + the reason/message tail in one frame.
std::string encode_text_frame(FrameType type, std::uint64_t request_id,
                              std::uint32_t retry_after_ms,
                              std::string_view text);

/// Copies the frame's fixed payload prefix into `out`; false when the
/// payload is shorter than the struct.
template <typename T>
bool read_struct(const Frame& f, T& out) {
  static_assert(std::is_trivially_copyable_v<T>);
  if (f.payload.size() < sizeof out) return false;
  std::memcpy(&out, f.payload.data(), sizeof out);
  return true;
}
/// Decodes a kReject/kError frame; false on a malformed payload.
bool read_text_frame(const Frame& f, TextInfo& info, std::string& text);

/// Incremental frame decoder: feed() raw socket bytes, pull frames with
/// next(). A framing violation (bad magic, unknown type, oversize length
/// prefix, payload CRC mismatch) poisons the stream: next() returns kBad
/// with error() set, now and forever — the caller must drop the connection,
/// exactly as the journal replay stops at its first garbled frame.
class Decoder {
 public:
  enum class Status { kFrame, kNeedMore, kBad };

  void feed(const void* data, std::size_t n) {
    buf_.append(static_cast<const char*>(data), n);
  }
  Status next(Frame& out);
  const std::string& error() const { return error_; }
  std::size_t buffered() const { return buf_.size(); }

 private:
  std::string buf_;
  std::string error_;
  bool bad_ = false;
};

}  // namespace ecms::serve
