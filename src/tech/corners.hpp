// Process corners and Pelgrom-style local mismatch.
//
// Corners shift the global device parameters (fast/slow NMOS and PMOS);
// mismatch adds per-instance Vth/beta deviations scaled by 1/sqrt(W*L).
// Both act on a Technology, so any netlist built afterwards inherits them.
#pragma once

#include <string>

#include "tech/tech.hpp"
#include "util/rng.hpp"

namespace ecms::tech {

enum class Corner { kTT, kFF, kSS, kFS, kSF };

/// Human-readable corner name ("TT", "FF", ...).
std::string corner_name(Corner c);

/// All five corners (for sweeps).
inline constexpr Corner kAllCorners[] = {Corner::kTT, Corner::kFF, Corner::kSS,
                                         Corner::kFS, Corner::kSF};

/// Corner strength knobs. Defaults are typical 3-sigma digital-process
/// spreads at 0.18 um.
struct CornerSpread {
  double vth_shift = 0.06;  ///< +- threshold shift at a fast/slow corner (V)
  double kp_ratio = 0.12;   ///< +- relative kp change at a fast/slow corner
};

/// Returns `base` adjusted to the given corner. Fast = lower Vth, higher kp.
/// First letter is NMOS, second is PMOS (kFS = fast NMOS, slow PMOS).
Technology apply_corner(const Technology& base, Corner corner,
                        const CornerSpread& spread = {});

/// Pelgrom matching coefficients.
struct MatchingCoeffs {
  double a_vth = 3.5e-9;   ///< V*m: sigma(Vth) = a_vth / sqrt(W*L)
  double a_beta = 0.01e-6; ///< m: sigma(dbeta/beta) = a_beta / sqrt(W*L)
};

/// Samples per-instance Vth/beta deviations for a device of the given
/// geometry and applies them to `p`. Deterministic given the rng state.
void apply_mismatch(circuit::MosParams& p, const MatchingCoeffs& coeffs,
                    Rng& rng);

/// Sigma of Vth mismatch for a geometry (exposed for tests/analyses).
double vth_mismatch_sigma(const MatchingCoeffs& coeffs, double w, double l);

}  // namespace ecms::tech
