#include "tech/defects.hpp"

#include <cmath>

#include "util/error.hpp"

namespace ecms::tech {

std::string defect_name(DefectType t) {
  switch (t) {
    case DefectType::kNone:
      return "none";
    case DefectType::kShort:
      return "short";
    case DefectType::kOpen:
      return "open";
    case DefectType::kPartial:
      return "partial";
    case DefectType::kBridge:
      return "bridge";
  }
  return "?";
}

char defect_letter(DefectType t) {
  switch (t) {
    case DefectType::kNone:
      return '.';
    case DefectType::kShort:
      return 'S';
    case DefectType::kOpen:
      return 'O';
    case DefectType::kPartial:
      return 'P';
    case DefectType::kBridge:
      return 'B';
  }
  return '?';
}

DefectElectrical electrical_of(const Defect& d) {
  DefectElectrical e;
  switch (d.type) {
    case DefectType::kNone:
      break;
    case DefectType::kShort:
      e.shunt_r = d.severity > 0 ? d.severity : 1e3;
      break;
    case DefectType::kOpen:
      e.disconnected = true;
      e.residual_cap = 0.5e-15;  // fringe coupling left at the plate contact
      break;
    case DefectType::kPartial:
      e.cap_scale = d.severity;
      break;
    case DefectType::kBridge:
      e.bridge_r = d.severity > 0 ? d.severity : 5e3;
      break;
  }
  return e;
}

DefectMap::DefectMap(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), cells_(rows * cols) {
  ECMS_REQUIRE(rows > 0 && cols > 0, "defect map needs a non-empty array");
}

const Defect& DefectMap::at(std::size_t r, std::size_t c) const {
  ECMS_REQUIRE(r < rows_ && c < cols_, "cell index out of range");
  return cells_[r * cols_ + c];
}

void DefectMap::set(std::size_t r, std::size_t c, Defect d) {
  ECMS_REQUIRE(r < rows_ && c < cols_, "cell index out of range");
  if (d.type == DefectType::kPartial)
    ECMS_REQUIRE(d.severity > 0.0 && d.severity < 1.0,
                 "partial defect severity must be in (0,1)");
  cells_[r * cols_ + c] = d;
}

std::size_t DefectMap::count(DefectType t) const {
  std::size_t n = 0;
  for (const auto& d : cells_)
    if (d.type == t) ++n;
  return n;
}

std::size_t DefectMap::total_defective() const {
  return cells_.size() - count(DefectType::kNone);
}

DefectMap DefectMap::random(std::size_t rows, std::size_t cols,
                            const DefectRates& rates, Rng& rng) {
  DefectMap m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (rng.bernoulli(rates.short_rate)) {
        m.set(r, c, make_short());
      } else if (rng.bernoulli(rates.open_rate)) {
        m.set(r, c, make_open());
      } else if (rng.bernoulli(rates.partial_rate)) {
        m.set(r, c, make_partial(rng.uniform(0.2, 0.8)));
      } else if (rng.bernoulli(rates.bridge_rate)) {
        m.set(r, c, make_bridge());
      }
    }
  }
  return m;
}

void DefectMap::inject_cluster(std::size_t r0, std::size_t c0, double radius,
                               Defect d) {
  ECMS_REQUIRE(radius >= 0.0, "cluster radius must be non-negative");
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      const double dr = static_cast<double>(r) - static_cast<double>(r0);
      const double dc = static_cast<double>(c) - static_cast<double>(c0);
      if (dr * dr + dc * dc <= radius * radius) set(r, c, d);
    }
  }
}

void DefectMap::inject_row(std::size_t r, Defect d) {
  ECMS_REQUIRE(r < rows_, "row out of range");
  for (std::size_t c = 0; c < cols_; ++c) set(r, c, d);
}

void DefectMap::inject_column(std::size_t c, Defect d) {
  ECMS_REQUIRE(c < cols_, "column out of range");
  for (std::size_t r = 0; r < rows_; ++r) set(r, c, d);
}

std::vector<char> DefectMap::letters() const {
  std::vector<char> out;
  out.reserve(cells_.size());
  for (const auto& d : cells_) out.push_back(defect_letter(d.type));
  return out;
}

DefectMap DefectMap::sub(std::size_t r0, std::size_t c0, std::size_t rows,
                         std::size_t cols) const {
  ECMS_REQUIRE(r0 + rows <= rows_ && c0 + cols <= cols_,
               "sub-map out of range");
  DefectMap out(rows, cols);
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c)
      out.set(r, c, at(r0 + r, c0 + c));
  return out;
}

Defect make_short(double shunt_ohm) {
  return {DefectType::kShort, shunt_ohm};
}
Defect make_open() { return {DefectType::kOpen, 0.0}; }
Defect make_partial(double cap_scale) {
  return {DefectType::kPartial, cap_scale};
}
Defect make_bridge(double bridge_ohm) {
  return {DefectType::kBridge, bridge_ohm};
}

}  // namespace ecms::tech
