#include "tech/tech.hpp"

#include "util/error.hpp"

namespace ecms::tech {

circuit::MosParams Technology::nmos(double w, double l) const {
  ECMS_REQUIRE(w > 0 && l > 0, "device geometry must be positive");
  circuit::MosParams p;
  p.type = circuit::MosType::kNmos;
  p.model = circuit::MosModel::kEkv;
  p.w = w;
  p.l = l;
  p.kp = n_kp;
  p.vth0 = n_vth0;
  p.lambda = n_lambda;
  p.n_slope = n_slope;
  p.temp_k = temp_k;
  p.cox_per_area = cox_per_area;
  p.cov_per_w = cov_per_w;
  p.cj_per_area = cj_per_area;
  p.diff_len = diff_len;
  return p;
}

circuit::MosParams Technology::pmos(double w, double l) const {
  ECMS_REQUIRE(w > 0 && l > 0, "device geometry must be positive");
  circuit::MosParams p;
  p.type = circuit::MosType::kPmos;
  p.model = circuit::MosModel::kEkv;
  p.w = w;
  p.l = l;
  p.kp = p_kp;
  p.vth0 = p_vth0;
  p.lambda = p_lambda;
  p.n_slope = p_slope;
  p.temp_k = temp_k;
  p.cox_per_area = cox_per_area;
  p.cov_per_w = cov_per_w;
  p.cj_per_area = cj_per_area;
  p.diff_len = diff_len;
  return p;
}

Technology tech018() { return Technology{}; }

}  // namespace ecms::tech
