#include "tech/capmodel.hpp"

#include <cmath>

#include "util/error.hpp"

namespace ecms::tech {

CapField::CapField(const CapProcessParams& params, std::size_t rows,
                   std::size_t cols, std::uint64_t seed)
    : params_(params), rows_(rows), cols_(cols) {
  ECMS_REQUIRE(rows > 0 && cols > 0, "capacitance field needs a non-empty array");
  ECMS_REQUIRE(params.nominal > 0, "nominal capacitance must be positive");
  Rng rng(seed);
  values_.reserve(rows * cols);
  const double cx = (static_cast<double>(cols) - 1.0) / 2.0;
  const double cy = (static_cast<double>(rows) - 1.0) / 2.0;
  const double r_max = std::sqrt(cx * cx + cy * cy);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      const double fx =
          cols > 1 ? static_cast<double>(c) / (static_cast<double>(cols) - 1.0)
                   : 0.5;
      const double fy =
          rows > 1 ? static_cast<double>(r) / (static_cast<double>(rows) - 1.0)
                   : 0.5;
      double scale = 1.0 + params.lot_offset_rel;
      scale += params.gradient_x_rel * (fx - 0.5);
      scale += params.gradient_y_rel * (fy - 0.5);
      if (r_max > 0.0 && params.radial_rel != 0.0) {
        const double dx = static_cast<double>(c) - cx;
        const double dy = static_cast<double>(r) - cy;
        const double rad = std::sqrt(dx * dx + dy * dy) / r_max;
        scale += params.radial_rel * rad * rad;
      }
      scale *= 1.0 + rng.normal(0.0, params.local_sigma_rel);
      values_.push_back(params.nominal * std::max(scale, 0.01));
    }
  }
}

double CapField::at(std::size_t r, std::size_t c) const {
  ECMS_REQUIRE(r < rows_ && c < cols_, "cell index out of range");
  return values_[r * cols_ + c];
}

void CapField::set(std::size_t r, std::size_t c, double farads) {
  ECMS_REQUIRE(r < rows_ && c < cols_, "cell index out of range");
  ECMS_REQUIRE(farads >= 0.0, "capacitance must be non-negative");
  values_[r * cols_ + c] = farads;
}

CapField CapField::sub(std::size_t r0, std::size_t c0, std::size_t rows,
                       std::size_t cols) const {
  ECMS_REQUIRE(r0 + rows <= rows_ && c0 + cols <= cols_,
               "sub-field out of range");
  CapField out(params_, rows, cols, 0);
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c)
      out.set(r, c, at(r0 + r, c0 + c));
  return out;
}

double CapField::mean() const {
  double s = 0.0;
  for (double v : values_) s += v;
  return s / static_cast<double>(values_.size());
}

}  // namespace ecms::tech
