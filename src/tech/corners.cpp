#include "tech/corners.hpp"

#include <cmath>

#include "util/error.hpp"

namespace ecms::tech {

std::string corner_name(Corner c) {
  switch (c) {
    case Corner::kTT:
      return "TT";
    case Corner::kFF:
      return "FF";
    case Corner::kSS:
      return "SS";
    case Corner::kFS:
      return "FS";
    case Corner::kSF:
      return "SF";
  }
  return "?";
}

namespace {
// +1 = fast, -1 = slow, 0 = typical.
struct Speed {
  int n;
  int p;
};
Speed speed_of(Corner c) {
  switch (c) {
    case Corner::kTT:
      return {0, 0};
    case Corner::kFF:
      return {+1, +1};
    case Corner::kSS:
      return {-1, -1};
    case Corner::kFS:
      return {+1, -1};
    case Corner::kSF:
      return {-1, +1};
  }
  return {0, 0};
}
}  // namespace

Technology apply_corner(const Technology& base, Corner corner,
                        const CornerSpread& spread) {
  const Speed s = speed_of(corner);
  Technology t = base;
  t.name = base.name + "-" + corner_name(corner);
  t.n_vth0 -= s.n * spread.vth_shift;
  t.n_kp *= 1.0 + s.n * spread.kp_ratio;
  t.p_vth0 -= s.p * spread.vth_shift;
  t.p_kp *= 1.0 + s.p * spread.kp_ratio;
  return t;
}

double vth_mismatch_sigma(const MatchingCoeffs& coeffs, double w, double l) {
  ECMS_REQUIRE(w > 0 && l > 0, "geometry must be positive");
  return coeffs.a_vth / std::sqrt(w * l);
}

void apply_mismatch(circuit::MosParams& p, const MatchingCoeffs& coeffs,
                    Rng& rng) {
  const double sigma_vth = vth_mismatch_sigma(coeffs, p.w, p.l);
  const double sigma_beta = coeffs.a_beta / std::sqrt(p.w * p.l);
  p.vth0 += rng.normal(0.0, sigma_vth);
  p.kp *= 1.0 + rng.normal(0.0, sigma_beta);
}

}  // namespace ecms::tech
