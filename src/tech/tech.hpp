// Technology description: a representative 0.18 um, 1.8 V eDRAM process.
//
// The paper validates its structure on the ST-Microelectronics 0.18 um eDRAM
// design kit, which is proprietary. This module provides a public-parameter
// stand-in of the same class: VDD = 1.8 V, Vth ~ 0.45 V, tox ~ 4 nm, boosted
// word-line level VPP, and a ~30 fF storage capacitor. Every circuit in the
// library sizes its devices through this table, so corner/mismatch/defect
// models can perturb one place.
#pragma once

#include "circuit/mosfet.hpp"

namespace ecms::tech {

/// Full set of process/supply parameters used to build netlists.
struct Technology {
  std::string name = "generic018";
  double vdd = 1.8;   ///< core supply (V)
  double vpp = 3.3;   ///< boosted word-line / control-gate level (V); must
                      ///< exceed VDD + body-effected Vth so NMOS pass gates
                      ///< transfer the full rail (thick-oxide driver level)
  double temp_k = 300.0;

  // NMOS electrical parameters.
  double n_kp = 170e-6;
  double n_vth0 = 0.45;
  double n_lambda = 0.06;
  double n_slope = 1.35;

  // PMOS electrical parameters.
  double p_kp = 60e-6;
  double p_vth0 = 0.45;
  double p_lambda = 0.08;
  double p_slope = 1.35;

  // Shared geometry-derived parameters.
  double l_min = 0.18e-6;          ///< minimum channel length (m)
  double cox_per_area = 8.6e-3;    ///< F/m^2 (tox ~ 4 nm)
  double cov_per_w = 3.0e-10;      ///< overlap capacitance (F/m)
  double cj_per_area = 1.0e-3;     ///< junction capacitance (F/m^2)
  double diff_len = 0.48e-6;       ///< diffusion length (m)

  // eDRAM cell defaults.
  double cell_cap_nominal = 30e-15;  ///< storage capacitor (F)
  /// Bit-line routing parasitic per attached cell (F), excluding the access
  /// devices' junction/overlap loads (counted from geometry elsewhere).
  double bitline_cap_per_cell = 0.5e-15;
  double plate_cap_fixed = 1.5e-15;    ///< plate-node routing parasitic (F)
  double wl_r_per_cell = 20.0;         ///< word-line resistance per cell (ohm)

  /// NMOS instance parameters for a given W/L (meters).
  circuit::MosParams nmos(double w, double l) const;
  /// NMOS with minimum length.
  circuit::MosParams nmos_min(double w) const { return nmos(w, l_min); }
  /// PMOS instance parameters for a given W/L (meters).
  circuit::MosParams pmos(double w, double l) const;
  circuit::MosParams pmos_min(double w) const { return pmos(w, l_min); }
};

/// The default technology used across examples, tests and benches.
Technology tech018();

}  // namespace ecms::tech
