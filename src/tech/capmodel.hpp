// Storage-capacitor process model.
//
// Generates the per-cell "true" capacitance field of a macro-cell, combining
// the variation sources a fab actually sees:
//  * lot/wafer offset   — e.g. dielectric-thickness drift (uniform scale),
//  * die gradients      — linear across the array (litho/etch tilt),
//  * radial bowl/dome   — center-to-edge deposition non-uniformity,
//  * local randomness   — per-cell mismatch.
// The measurement structure's job (the paper's "analog bitmap") is to make
// exactly these signatures visible, so the model is the ground truth every
// experiment compares against.
#pragma once

#include <cstddef>
#include <vector>

#include "util/rng.hpp"

namespace ecms::tech {

struct CapProcessParams {
  double nominal = 30e-15;      ///< target capacitance (F)
  double local_sigma_rel = 0.02;  ///< per-cell random sigma (fraction)
  double gradient_x_rel = 0.0;  ///< relative change from col 0 to last col
  double gradient_y_rel = 0.0;  ///< relative change from row 0 to last row
  double radial_rel = 0.0;      ///< center-to-corner relative change
  double lot_offset_rel = 0.0;  ///< uniform lot-level offset (fraction)
};

/// The sampled capacitance field of one array (row-major, immutable after
/// construction; deterministic for a given seed).
class CapField {
 public:
  CapField(const CapProcessParams& params, std::size_t rows, std::size_t cols,
           std::uint64_t seed);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  double at(std::size_t r, std::size_t c) const;
  /// Overrides one cell's value (used to build probe arrays where a single
  /// target capacitance is swept against a fixed background).
  void set(std::size_t r, std::size_t c, double farads);

  /// Sub-rectangle view (copy) starting at (r0, c0).
  CapField sub(std::size_t r0, std::size_t c0, std::size_t rows,
               std::size_t cols) const;
  const std::vector<double>& values() const { return values_; }
  const CapProcessParams& params() const { return params_; }

  /// Mean of the field (F).
  double mean() const;

 private:
  CapProcessParams params_;
  std::size_t rows_, cols_;
  std::vector<double> values_;
};

}  // namespace ecms::tech
