// Capacitor defect taxonomy and spatial defect maps.
//
// The paper's code-0 discussion distinguishes three electrically different
// failures that a digital bitmap cannot tell apart: capacitance below range,
// shorted capacitor, open capacitor. This module is the ground-truth side of
// that story: it injects defects into arrays so the diagnosis experiments can
// measure what each bitmap recovers.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace ecms::tech {

enum class DefectType {
  kNone,
  kShort,    ///< dielectric breakdown: resistive shunt across the capacitor
  kOpen,     ///< broken contact/strap: capacitor disconnected from the plate
  kPartial,  ///< under-built capacitor: value scaled down (severity factor)
  kBridge,   ///< storage node bridged to a neighbouring storage node
};

std::string defect_name(DefectType t);
/// One-letter code used in rendered maps ('.', 'S', 'O', 'P', 'B').
char defect_letter(DefectType t);

struct Defect {
  DefectType type = DefectType::kNone;
  /// Meaning by type: kPartial -> capacitance scale in (0,1);
  /// kShort -> shunt resistance (ohm); kBridge -> bridge resistance (ohm).
  double severity = 0.0;
};

/// Electrical interpretation of a defect, used by both the netlister and the
/// behavioral array model.
struct DefectElectrical {
  double cap_scale = 1.0;   ///< multiplies the cell capacitance
  double shunt_r = 0.0;     ///< parallel resistance across the cap (0 = none)
  bool disconnected = false;  ///< open: cap not reachable from the plate
  double residual_cap = 0.0;  ///< fringe capacitance still seen when open (F)
  double bridge_r = 0.0;      ///< resistance to the neighbour (0 = none)
};

DefectElectrical electrical_of(const Defect& d);

/// Per-defect-type injection rates (probabilities per cell).
struct DefectRates {
  double short_rate = 0.0;
  double open_rate = 0.0;
  double partial_rate = 0.0;
  double bridge_rate = 0.0;
};

/// Row-major map of defects over an array.
class DefectMap {
 public:
  DefectMap(std::size_t rows, std::size_t cols);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  const Defect& at(std::size_t r, std::size_t c) const;
  void set(std::size_t r, std::size_t c, Defect d);

  /// Number of cells carrying the given defect type.
  std::size_t count(DefectType t) const;
  /// Number of defective cells of any type.
  std::size_t total_defective() const;

  /// i.i.d. random injection at the given per-cell rates.
  static DefectMap random(std::size_t rows, std::size_t cols,
                          const DefectRates& rates, Rng& rng);

  /// Marks a filled disk of cells (classic particle-defect cluster).
  void inject_cluster(std::size_t r0, std::size_t c0, double radius, Defect d);
  /// Marks an entire row / column (e.g. plate-strap or bit-line process
  /// fault signatures).
  void inject_row(std::size_t r, Defect d);
  void inject_column(std::size_t c, Defect d);

  /// One letter per cell, row-major (for rendering).
  std::vector<char> letters() const;

  /// Sub-rectangle copy starting at (r0, c0).
  DefectMap sub(std::size_t r0, std::size_t c0, std::size_t rows,
                std::size_t cols) const;

 private:
  std::size_t rows_, cols_;
  std::vector<Defect> cells_;
};

/// Canonical severities used across experiments.
Defect make_short(double shunt_ohm = 1e3);
Defect make_open();
Defect make_partial(double cap_scale);
Defect make_bridge(double bridge_ohm = 5e3);

}  // namespace ecms::tech
