// Seeded, deterministic fault-injection harness.
//
// Chaos tests need failures that are (a) reproducible bit-for-bit — the
// whole repo's determinism contract — and (b) targeted at the exact
// concession that is supposed to clear them, so each rung of the recovery
// ladder can be regression-tested in isolation. Two injectors:
//
//   * SolverFaultInjector — plugs into circuit::SolveHooks. Declarative
//     convergence faults are active inside a time window and "clear" once
//     the solve configuration makes a chosen concession (small enough step,
//     big enough Newton budget, high enough gmin, backward Euler); a fault
//     that clears at nothing (kNever) forces ladder exhaustion. A seeded
//     random stall mode keys the stall decision purely off (seed, solve
//     time), so it is a pure function of the attempt — identical at any
//     thread count and across retries of the same time point.
//
//   * CellFaultPlan — a pure function (seed, row, col) -> fails? used to
//     knock out a deterministic ~rate fraction of array cells in the robust
//     extraction paths, independent of tile shape, visit order and job
//     count.
//
// Everything here is test/diagnosis infrastructure: nothing in the library
// proper depends on it.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "circuit/newton.hpp"

namespace ecms::fault {

/// Which solve-configuration concession clears an injected stall.
enum class ClearedBy {
  kNever,           ///< nothing clears it: the ladder must exhaust
  kSmallStep,       ///< clears once ctx.dt <= dt_threshold (rung 1)
  kManyIterations,  ///< clears once max_iterations >= iter_threshold (rung 2)
  kHighGmin,        ///< clears once gmin >= gmin_threshold (rung 3)
  kBackwardEuler,   ///< clears under BE integration (rung 4)
};

/// One declarative convergence fault.
struct ConvergenceFault {
  double t_lo = 0.0;     ///< active window start (s); DC solves run at t = 0
  double t_hi = 1e300;   ///< active window end (s)
  ClearedBy cleared_by = ClearedBy::kNever;
  double dt_threshold = 0.0;
  int iter_threshold = 0;
  double gmin_threshold = 0.0;
  bool singular = false;  ///< inject a singular stamp instead of a stall
};

/// Deterministic implementation of circuit::SolveHooks. Thread-safe; the
/// injector must outlive every solve that sees its hooks.
class SolverFaultInjector {
 public:
  explicit SolverFaultInjector(std::uint64_t seed = 0);

  void add(const ConvergenceFault& f);
  /// Random stalls: each solve attempt stalls with probability ~`p`, decided
  /// purely by hashing (seed, solve time). 0 disables.
  void set_stall_rate(double p);

  /// True if any active fault (or the random stall draw) hits this attempt.
  bool stalls(const circuit::StampContext& ctx,
              const circuit::NewtonOptions& opts) const;
  bool makes_singular(const circuit::StampContext& ctx,
                      const circuit::NewtonOptions& opts) const;

  /// Hooks object wired to this injector; keep the injector alive while the
  /// returned hooks (or copies of them) are in use.
  circuit::SolveHooks hooks() const;

  /// Total faults actually delivered (stalls + singular stamps).
  std::size_t injected() const { return injected_.load(); }

 private:
  bool cleared(const ConvergenceFault& f, const circuit::StampContext& ctx,
               const circuit::NewtonOptions& opts) const;

  std::vector<ConvergenceFault> faults_;
  double stall_rate_ = 0.0;
  std::uint64_t seed_;
  mutable std::atomic<std::size_t> injected_{0};
};

/// Pure-function per-cell fault plan: fails(r, c) is a splitmix-style hash
/// of (seed, r, c) compared against the rate — the same plan always knocks
/// out the same cells, at any tiling and any job count.
class CellFaultPlan {
 public:
  CellFaultPlan() = default;
  CellFaultPlan(double rate, std::uint64_t seed);

  double rate() const { return rate_; }
  bool fails(std::size_t r, std::size_t c) const;
  /// Planned failures inside a rows x cols array.
  std::size_t count(std::size_t rows, std::size_t cols) const;

  /// Cell hook for the robust extraction paths: throws ecms::MeasureError on
  /// every planned cell, on every attempt (the cell stays unmeasurable).
  std::function<void(std::size_t, std::size_t, int)> hook() const;
  /// Flaky variant: planned cells throw only while attempt < fail_attempts,
  /// so a retry budget > fail_attempts recovers them deterministically.
  std::function<void(std::size_t, std::size_t, int)> flaky_hook(
      int fail_attempts) const;

 private:
  double rate_ = 0.0;
  std::uint64_t seed_ = 0;
};

}  // namespace ecms::fault
