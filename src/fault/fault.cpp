#include "fault/fault.hpp"

#include <bit>

#include "util/error.hpp"

namespace ecms::fault {

namespace {

// splitmix64 finalizer: the repo-standard way to turn a key into a
// decorrelated 64-bit value (same construction as Rng seeding / fork).
std::uint64_t mix64(std::uint64_t z) {
  z += 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

// Uniform in [0, 1) from a key, as a pure function.
double hash01(std::uint64_t key) {
  return static_cast<double>(mix64(key) >> 11) * 0x1.0p-53;
}

}  // namespace

SolverFaultInjector::SolverFaultInjector(std::uint64_t seed) : seed_(seed) {}

void SolverFaultInjector::add(const ConvergenceFault& f) {
  faults_.push_back(f);
}

void SolverFaultInjector::set_stall_rate(double p) { stall_rate_ = p; }

bool SolverFaultInjector::cleared(const ConvergenceFault& f,
                                  const circuit::StampContext& ctx,
                                  const circuit::NewtonOptions& opts) const {
  switch (f.cleared_by) {
    case ClearedBy::kNever:
      return false;
    case ClearedBy::kSmallStep:
      return ctx.dt > 0.0 && ctx.dt <= f.dt_threshold;
    case ClearedBy::kManyIterations:
      return opts.max_iterations >= f.iter_threshold;
    case ClearedBy::kHighGmin:
      return ctx.gmin >= f.gmin_threshold ||
             opts.gmin_ground >= f.gmin_threshold;
    case ClearedBy::kBackwardEuler:
      return ctx.method == circuit::Integrator::kBackwardEuler;
  }
  return false;
}

bool SolverFaultInjector::stalls(const circuit::StampContext& ctx,
                                 const circuit::NewtonOptions& opts) const {
  for (const auto& f : faults_) {
    if (f.singular) continue;
    if (ctx.time >= f.t_lo && ctx.time <= f.t_hi && !cleared(f, ctx, opts)) {
      ++injected_;
      return true;
    }
  }
  if (stall_rate_ > 0.0) {
    const auto bits = std::bit_cast<std::uint64_t>(ctx.time);
    if (hash01(mix64(seed_) ^ bits) < stall_rate_) {
      ++injected_;
      return true;
    }
  }
  return false;
}

bool SolverFaultInjector::makes_singular(
    const circuit::StampContext& ctx,
    const circuit::NewtonOptions& opts) const {
  for (const auto& f : faults_) {
    if (!f.singular) continue;
    if (ctx.time >= f.t_lo && ctx.time <= f.t_hi && !cleared(f, ctx, opts)) {
      ++injected_;
      return true;
    }
  }
  return false;
}

circuit::SolveHooks SolverFaultInjector::hooks() const {
  circuit::SolveHooks h;
  h.force_stall = [this](const circuit::StampContext& ctx,
                         const circuit::NewtonOptions& opts) {
    return stalls(ctx, opts);
  };
  h.make_singular = [this](const circuit::StampContext& ctx,
                           const circuit::NewtonOptions& opts) {
    return makes_singular(ctx, opts);
  };
  return h;
}

CellFaultPlan::CellFaultPlan(double rate, std::uint64_t seed)
    : rate_(rate), seed_(seed) {
  ECMS_REQUIRE(rate >= 0.0 && rate <= 1.0, "fault rate must be in [0, 1]");
}

bool CellFaultPlan::fails(std::size_t r, std::size_t c) const {
  if (rate_ <= 0.0) return false;
  const std::uint64_t key =
      mix64(seed_) ^ mix64((static_cast<std::uint64_t>(r) << 32) |
                           static_cast<std::uint64_t>(c));
  return hash01(key) < rate_;
}

std::size_t CellFaultPlan::count(std::size_t rows, std::size_t cols) const {
  std::size_t n = 0;
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c)
      if (fails(r, c)) ++n;
  return n;
}

std::function<void(std::size_t, std::size_t, int)> CellFaultPlan::hook()
    const {
  return [plan = *this](std::size_t r, std::size_t c, int /*attempt*/) {
    if (plan.fails(r, c)) {
      throw MeasureError("injected cell fault at (" + std::to_string(r) +
                         "," + std::to_string(c) + ")");
    }
  };
}

std::function<void(std::size_t, std::size_t, int)> CellFaultPlan::flaky_hook(
    int fail_attempts) const {
  return [plan = *this, fail_attempts](std::size_t r, std::size_t c,
                                       int attempt) {
    if (attempt < fail_attempts && plan.fails(r, c)) {
      throw MeasureError("injected flaky cell fault at (" + std::to_string(r) +
                         "," + std::to_string(c) + "), attempt " +
                         std::to_string(attempt));
    }
  };
}

}  // namespace ecms::fault
