// Analog bitmap: the per-cell capacitance codes of an array, plus the
// digital (pass/fail) bitmap it is compared against.
//
// "The main idea, when extracting the capacitor value, is to build an Analog
// Bitmap of the capacitor values of the cells in the memory array. This
// analog bitmap can be treated in the same way than the digital one, with
// signatures categorization depending on the capacitor values." (paper,
// Section 2)
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <vector>

#include "edram/macrocell.hpp"
#include "msu/abacus.hpp"
#include "msu/fastmodel.hpp"
#include "util/retry.hpp"
#include "util/status.hpp"
#include "util/threadpool.hpp"

namespace ecms::bitmap {

/// Containment policy of the robust tiled extraction.
struct ExtractPolicy {
  /// Optional per-attempt hook called as hook(row, col, attempt) right
  /// before each cell's measurement; throwing marks the attempt failed.
  /// This is the fault-injection point (see ecms::fault::CellFaultPlan) and
  /// doubles as a progress/audit tap. Called from worker threads — must be
  /// thread-safe.
  std::function<void(std::size_t, std::size_t, int)> cell_hook;
  /// Per-cell attempt budget before the cell is declared unmeasurable. The
  /// noisy path redraws its noise from a fresh per-attempt stream, so
  /// retries are not doomed to repeat a transient failure.
  util::RetryPolicy retry;
  /// When false, the first cell failure propagates out of the extraction
  /// (fail-fast) instead of degrading to a CellStatus (keep-going).
  bool contain = true;
  /// Code recorded for unmeasurable cells (0 keeps them in the code-0
  /// diagnosis funnel, where CellStatus distinguishes them structurally).
  int unmeasurable_code = 0;
};

struct TiledExtraction;

/// Grid of measurement codes (0..ramp_steps), row-major.
class AnalogBitmap {
 public:
  AnalogBitmap(std::size_t rows, std::size_t cols, int ramp_steps);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  int ramp_steps() const { return steps_; }

  int at(std::size_t r, std::size_t c) const;
  void set(std::size_t r, std::size_t c, int code);
  const std::vector<int>& codes() const { return codes_; }

  /// Extracts the whole array with the fast model (optionally with noise).
  static AnalogBitmap extract(const msu::FastModel& model);
  static AnalogBitmap extract(const msu::FastModel& model,
                              const msu::MeasureNoise& noise, Rng& rng);

  /// Array-scale extraction with plate segmentation: the array is split into
  /// tile_rows x tile_cols macro-cells, each measured by its own structure
  /// (the structure's dynamic range only covers macro-cell-sized plate
  /// loads — the reason the paper scopes it to a macro-cell). Array
  /// dimensions must be divisible by the tile dimensions.
  ///
  /// Tiles are independent by construction, so a non-null `pool` fans them
  /// out across its workers. The noisy overload draws each tile's noise
  /// from `rng.fork(tile_index)` (the caller's generator is not advanced),
  /// which makes the result a pure function of (array, params, noise, rng
  /// state) — bit-identical for any worker count, including serial.
  static AnalogBitmap extract_tiled(const edram::MacroCell& mc,
                                    const msu::StructureParams& params,
                                    std::size_t tile_rows = 4,
                                    std::size_t tile_cols = 4,
                                    util::ThreadPool* pool = nullptr);
  static AnalogBitmap extract_tiled(const edram::MacroCell& mc,
                                    const msu::StructureParams& params,
                                    const msu::MeasureNoise& noise, Rng& rng,
                                    std::size_t tile_rows = 4,
                                    std::size_t tile_cols = 4,
                                    util::ThreadPool* pool = nullptr);

  /// Self-recovering variants: per-cell exceptions (from the policy's
  /// cell_hook or the measurement itself) are retried per `policy.retry`
  /// and then contained as CellStatus::kUnmeasurable instead of aborting
  /// the run, so the result is always a complete array plus a failure
  /// report. Healthy cells carry exactly the codes a zero-fault run
  /// produces, at any worker count. The noisy overload draws each cell's
  /// noise from `rng.fork(tile).fork(cell).fork(attempt)` — per-cell
  /// streams, so a failed neighbour never shifts another cell's draws
  /// (this is a different, equally deterministic stream assignment than
  /// the plain noisy extract_tiled).
  static TiledExtraction extract_tiled_robust(
      const edram::MacroCell& mc, const msu::StructureParams& params,
      const ExtractPolicy& policy = {}, std::size_t tile_rows = 4,
      std::size_t tile_cols = 4, util::ThreadPool* pool = nullptr);
  static TiledExtraction extract_tiled_robust(
      const edram::MacroCell& mc, const msu::StructureParams& params,
      const msu::MeasureNoise& noise, Rng& rng,
      const ExtractPolicy& policy = {}, std::size_t tile_rows = 4,
      std::size_t tile_cols = 4, util::ThreadPool* pool = nullptr);

  /// Mean / stddev of in-range codes (code 0 and full-scale excluded).
  double mean_in_range_code() const;
  double stddev_in_range_code() const;
  std::size_t count_code(int code) const;
  /// Cells at 0 or full scale.
  std::size_t count_out_of_range() const;

  /// Per-cell capacitance estimates through an abacus; out-of-window codes
  /// yield NaN (used by heatmap rendering).
  std::vector<double> capacitance_map(const msu::Abacus& abacus) const;

 private:
  std::size_t rows_, cols_;
  int steps_;
  std::vector<int> codes_;
};

/// A complete, possibly degraded extraction: the bitmap always has a code
/// for every cell; `status` says which codes are real measurements.
struct TiledExtraction {
  AnalogBitmap bitmap;
  std::vector<CellStatus> status;  ///< row-major, same shape as the bitmap
  FailureReport report;

  CellStatus status_at(std::size_t r, std::size_t c) const {
    return status[r * bitmap.cols() + c];
  }
};

/// Grid of pass/fail bits from functional test (true = fail), row-major.
class DigitalBitmap {
 public:
  DigitalBitmap(std::size_t rows, std::size_t cols);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool fails(std::size_t r, std::size_t c) const;
  void set_fail(std::size_t r, std::size_t c, bool fail = true);
  std::size_t fail_count() const;
  /// Merges (ORs) another bitmap of the same shape into this one.
  void merge(const DigitalBitmap& other);

 private:
  std::size_t rows_, cols_;
  std::vector<char> fails_;
};

}  // namespace ecms::bitmap
