#include "bitmap/signature.hpp"

#include "util/error.hpp"

namespace ecms::bitmap {

std::string signature_name(CellSignature s) {
  switch (s) {
    case CellSignature::kUnderRange:
      return "under-range";
    case CellSignature::kMarginalLow:
      return "marginal-low";
    case CellSignature::kNominal:
      return "nominal";
    case CellSignature::kMarginalHigh:
      return "marginal-high";
    case CellSignature::kOverRange:
      return "over-range";
  }
  return "?";
}

char signature_letter(CellSignature s) {
  switch (s) {
    case CellSignature::kUnderRange:
      return '0';
    case CellSignature::kMarginalLow:
      return 'l';
    case CellSignature::kNominal:
      return '.';
    case CellSignature::kMarginalHigh:
      return 'h';
    case CellSignature::kOverRange:
      return 'F';
  }
  return '?';
}

SignatureMap::SignatureMap(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), cells_(rows * cols, CellSignature::kNominal) {}

SignatureMap SignatureMap::categorize(const AnalogBitmap& bm,
                                      const SignatureParams& params) {
  ECMS_REQUIRE(
      params.marginal_low_codes >= 0 && params.marginal_high_codes >= 0,
      "marginal band sizes must be non-negative");
  SignatureMap m(bm.rows(), bm.cols());
  const int steps = bm.ramp_steps();
  for (std::size_t r = 0; r < bm.rows(); ++r) {
    for (std::size_t c = 0; c < bm.cols(); ++c) {
      const int code = bm.at(r, c);
      CellSignature s;
      if (code == 0) {
        s = CellSignature::kUnderRange;
      } else if (code == steps) {
        s = CellSignature::kOverRange;
      } else if (code <= params.marginal_low_codes) {
        s = CellSignature::kMarginalLow;
      } else if (code >= steps - params.marginal_high_codes) {
        s = CellSignature::kMarginalHigh;
      } else {
        s = CellSignature::kNominal;
      }
      m.cells_[r * bm.cols() + c] = s;
    }
  }
  return m;
}

CellSignature SignatureMap::at(std::size_t r, std::size_t c) const {
  ECMS_REQUIRE(r < rows_ && c < cols_, "cell index out of range");
  return cells_[r * cols_ + c];
}

std::size_t SignatureMap::count(CellSignature s) const {
  std::size_t n = 0;
  for (CellSignature cs : cells_)
    if (cs == s) ++n;
  return n;
}

std::size_t SignatureMap::anomalous_count() const {
  return cells_.size() - count(CellSignature::kNominal);
}

std::vector<char> SignatureMap::anomaly_mask() const {
  std::vector<char> mask;
  mask.reserve(cells_.size());
  for (CellSignature cs : cells_)
    mask.push_back(cs == CellSignature::kNominal ? 0 : 1);
  return mask;
}

std::vector<char> SignatureMap::letters() const {
  std::vector<char> out;
  out.reserve(cells_.size());
  for (CellSignature cs : cells_) out.push_back(signature_letter(cs));
  return out;
}

}  // namespace ecms::bitmap
