// Diagnosis engine: maps analog-bitmap signatures to failure hypotheses.
//
// This is the "diagnosis methodology improvement" the paper motivates: once
// every cell carries a capacitance code instead of a pass/fail bit, defect
// and process signatures can be told apart —
//   * isolated code-0 cells   -> cell defect, disambiguated into short /
//                                open / under-range (the paper's three
//                                possible code-0 diagnoses),
//   * clusters                -> particle / local process defect,
//   * full rows / columns     -> word-line, plate-strap or bit-line faults,
//   * code-field gradients    -> deposition/etch non-uniformity,
//   * global mean shift       -> lot-level drift (e.g. dielectric thickness).
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "bitmap/signature.hpp"
#include "bitmap/spatial.hpp"
#include "msu/disambig.hpp"

namespace ecms::bitmap {

enum class DiagnosisKind {
  kIsolatedCellDefect,
  kClusterDefect,
  kRowFault,
  kColumnFault,
  kProcessGradient,
  kLotDrift,
};

std::string diagnosis_name(DiagnosisKind k);

struct Finding {
  DiagnosisKind kind;
  std::string detail;           ///< human-readable explanation
  std::vector<Cell> cells;      ///< affected cells (empty for global findings)
  double magnitude = 0.0;       ///< kind-specific severity metric
  /// For isolated code-0 cells: the disambiguated cause.
  std::optional<msu::ZeroCodeCause> zero_cause;
};

struct DiagnosisParams {
  SignatureParams signature;
  SpatialParams spatial;
  /// |gradient| (codes per cell pitch) above which a plane fit is reported.
  double gradient_threshold = 0.05;
  /// |mean shift| in codes vs the expected mean above which drift is flagged.
  double drift_threshold = 1.0;
};

/// Follow-up measurement hook for code-0 cells, at bitmap coordinates.
/// Needed because disambiguation re-measures the cell in its own macro-cell
/// (tile) context.
using DisambiguateFn =
    std::function<msu::DisambiguationResult(std::size_t, std::size_t)>;

/// Analyzes one analog bitmap. `expected_mean_code` is the mean in-range
/// code of a known-good reference (from calibration); pass nullopt to skip
/// drift detection. `disambiguate` enables code-0 cause resolution; pass an
/// empty function to report undifferentiated cell defects.
std::vector<Finding> diagnose(const AnalogBitmap& bm,
                              const DisambiguateFn& disambiguate,
                              std::optional<double> expected_mean_code,
                              const DiagnosisParams& params = {});

/// Convenience for a bitmap of a single macro-cell: disambiguates through
/// one fast model.
std::vector<Finding> diagnose(const AnalogBitmap& bm,
                              const msu::FastModel* model,
                              std::optional<double> expected_mean_code,
                              const DiagnosisParams& params = {});

/// Disambiguator for tiled (plate-segmented) arrays: each cell is resolved
/// in its own tile's measurement context.
DisambiguateFn make_tiled_disambiguator(const edram::MacroCell& mc,
                                        const msu::StructureParams& params,
                                        std::size_t tile_rows = 4,
                                        std::size_t tile_cols = 4);

}  // namespace ecms::bitmap
