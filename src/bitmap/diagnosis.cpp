#include "bitmap/diagnosis.hpp"

#include <cmath>
#include <memory>
#include <sstream>

#include "util/error.hpp"

namespace ecms::bitmap {

std::string diagnosis_name(DiagnosisKind k) {
  switch (k) {
    case DiagnosisKind::kIsolatedCellDefect:
      return "isolated-cell-defect";
    case DiagnosisKind::kClusterDefect:
      return "cluster-defect";
    case DiagnosisKind::kRowFault:
      return "row-fault";
    case DiagnosisKind::kColumnFault:
      return "column-fault";
    case DiagnosisKind::kProcessGradient:
      return "process-gradient";
    case DiagnosisKind::kLotDrift:
      return "lot-drift";
  }
  return "?";
}

std::vector<Finding> diagnose(const AnalogBitmap& bm,
                              const DisambiguateFn& disambiguate,
                              std::optional<double> expected_mean_code,
                              const DiagnosisParams& params) {
  std::vector<Finding> findings;
  const SignatureMap sig = SignatureMap::categorize(bm, params.signature);

  // Component-level findings.
  const auto comps = find_components(sig.anomaly_mask(), bm.rows(), bm.cols(),
                                     params.spatial);
  for (const auto& comp : comps) {
    Finding f;
    f.cells = comp.cells;
    f.magnitude = static_cast<double>(comp.size());
    std::ostringstream detail;
    switch (comp.kind) {
      case PatternKind::kSingle: {
        f.kind = DiagnosisKind::kIsolatedCellDefect;
        const Cell cell = comp.cells.front();
        detail << "cell (" << cell.row << "," << cell.col << ") "
               << signature_name(sig.at(cell.row, cell.col));
        if (disambiguate && bm.at(cell.row, cell.col) == 0) {
          const auto res = disambiguate(cell.row, cell.col);
          f.zero_cause = res.cause;
          detail << ", code-0 disambiguated as "
                 << msu::zero_code_cause_name(res.cause);
        }
        break;
      }
      case PatternKind::kRowLine:
        f.kind = DiagnosisKind::kRowFault;
        detail << "row " << comp.row_lo << ": " << comp.size()
               << " anomalous cells (word-line / plate-strap suspect)";
        break;
      case PatternKind::kColumnLine:
        f.kind = DiagnosisKind::kColumnFault;
        detail << "column " << comp.col_lo << ": " << comp.size()
               << " anomalous cells (bit-line path suspect)";
        break;
      case PatternKind::kCluster:
        f.kind = DiagnosisKind::kClusterDefect;
        detail << comp.size() << "-cell cluster in rows [" << comp.row_lo
               << "," << comp.row_hi << "] cols [" << comp.col_lo << ","
               << comp.col_hi << "] (particle / local process suspect)";
        break;
    }
    f.detail = detail.str();
    findings.push_back(std::move(f));
  }

  // Field-level findings on the code values.
  std::vector<double> field;
  field.reserve(bm.codes().size());
  for (int code : bm.codes()) field.push_back(static_cast<double>(code));
  if (field.size() >= 3) {
    const PlaneFit plane = fit_plane(field, bm.rows(), bm.cols());
    const double grad =
        std::sqrt(plane.grad_x * plane.grad_x + plane.grad_y * plane.grad_y);
    if (grad > params.gradient_threshold) {
      Finding f;
      f.kind = DiagnosisKind::kProcessGradient;
      f.magnitude = grad;
      std::ostringstream detail;
      detail << "code gradient (" << plane.grad_x << " per col, "
             << plane.grad_y << " per row), r2=" << plane.r2;
      f.detail = detail.str();
      findings.push_back(std::move(f));
    }

    if (expected_mean_code.has_value()) {
      const double shift = plane.mean - *expected_mean_code;
      if (std::abs(shift) > params.drift_threshold) {
        Finding f;
        f.kind = DiagnosisKind::kLotDrift;
        f.magnitude = shift;
        std::ostringstream detail;
        detail << "mean code " << plane.mean << " vs expected "
               << *expected_mean_code << " ("
               << (shift > 0 ? "thicker/larger" : "thinner/smaller")
               << " capacitors)";
        f.detail = detail.str();
        findings.push_back(std::move(f));
      }
    }
  }
  return findings;
}

std::vector<Finding> diagnose(const AnalogBitmap& bm,
                              const msu::FastModel* model,
                              std::optional<double> expected_mean_code,
                              const DiagnosisParams& params) {
  DisambiguateFn fn;
  if (model != nullptr) {
    const msu::Disambiguator dis(*model);
    fn = [dis](std::size_t r, std::size_t c) { return dis.classify(r, c); };
  }
  return diagnose(bm, fn, expected_mean_code, params);
}

DisambiguateFn make_tiled_disambiguator(const edram::MacroCell& mc,
                                        const msu::StructureParams& params,
                                        std::size_t tile_rows,
                                        std::size_t tile_cols) {
  ECMS_REQUIRE(tile_rows > 0 && tile_cols > 0, "tile must be non-empty");
  ECMS_REQUIRE(mc.rows() % tile_rows == 0 && mc.cols() % tile_cols == 0,
               "array dimensions must be divisible by the tile dimensions");
  // Tiles are built lazily and cached (most cells never need follow-up).
  struct Cache {
    const edram::MacroCell mc;
    const msu::StructureParams params;
    std::size_t tile_rows, tile_cols;
    std::vector<std::unique_ptr<msu::Disambiguator>> tiles;
  };
  auto cache = std::make_shared<Cache>(
      Cache{mc, params, tile_rows, tile_cols,
            std::vector<std::unique_ptr<msu::Disambiguator>>(
                (mc.rows() / tile_rows) * (mc.cols() / tile_cols))});
  return [cache](std::size_t r, std::size_t c) {
    const std::size_t tr = r / cache->tile_rows;
    const std::size_t tc = c / cache->tile_cols;
    const std::size_t tiles_per_row = cache->mc.cols() / cache->tile_cols;
    auto& slot = cache->tiles[tr * tiles_per_row + tc];
    if (!slot) {
      const edram::MacroCell tile =
          cache->mc.tile(tr * cache->tile_rows, tc * cache->tile_cols,
                         cache->tile_rows, cache->tile_cols);
      slot = std::make_unique<msu::Disambiguator>(
          msu::FastModel(tile, cache->params));
    }
    return slot->classify(r % cache->tile_rows, c % cache->tile_cols);
  };
}

}  // namespace ecms::bitmap
