// The unified array-extraction API.
//
// Historically the repo grew four entry points — msu::extract_all_cells,
// msu::extract_all_cells_robust, AnalogBitmap::extract_tiled and
// AnalogBitmap::extract_tiled_robust — each with its own option plumbing.
// ExtractRequest → extract() → ExtractReport subsumes all of them: one
// struct carries the engine choice (fast model vs. transistor level), the
// solver knobs (dt / newton / recovery / adaptive), the tiling and worker
// count, the retry/containment policy and the measurement noise. The old
// signatures remain as thin wrappers over this function; the msu-level pair
// shares the same per-tile engine (msu::extract_array) underneath.
//
// Semantics are inherited unchanged from the paths this replaces:
//   * tiles are independent structures, fanned out across workers; results
//     are bit-identical at any worker count (per-tile / per-cell forked
//     noise streams, deterministic row-major merge);
//   * the non-robust path lets the first cell failure escape (fail-fast),
//     the robust path retries then contains failures as kUnmeasurable;
//   * the circuit engine honours adaptive ramp scheduling and reports the
//     aggregate transient-step telemetry the benches assert on.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "bitmap/analog_bitmap.hpp"
#include "msu/extract.hpp"

namespace ecms::extraction {

/// Which backend measures each cell.
enum class Engine {
  kFastModel,  ///< calibrated analytic model (array scale, microseconds)
  kCircuit,    ///< transistor-level transient per cell (the paper's SPICE)
};

/// Everything an array extraction needs, in one struct.
struct ExtractRequest {
  Engine engine = Engine::kFastModel;
  msu::StructureParams params = {};
  msu::MeasurementTiming timing = {};
  /// Solver + adaptive knobs; the fast-model engine ignores them (except
  /// delta_i, which both engines design per tile when left at 0).
  msu::ExtractOptions options = {.dt = 20e-12, .record_trace = false};

  /// Circuit engine only: share compiled NetlistPrograms (sparsity pattern,
  /// stamp tapes, pivot order) through `options.newton.solver.program_cache`
  /// across tiles and workers. When false, the cache pointer is cleared so
  /// every worker compiles privately — the A/B switch the cache-accounting
  /// bench and tests use. Codes are bit-identical either way.
  bool share_programs = true;

  /// Circuit engine only: lockstep batch width per tile (DESIGN.md §14).
  /// 0 = auto (lane count picked by the host's vector ISA), 1 = scalar
  /// per-cell measurement, N >= 2 = exactly N lanes. Batching needs shared
  /// programs (`share_programs`, non-dense solver, no solve hooks) and
  /// silently runs scalar when those preconditions fail; codes are
  /// bit-identical either way, at any width and worker count.
  int batch_width = 0;

  /// The array is measured tile-by-tile, each tile by its own structure
  /// (the structure's dynamic range only covers macro-cell-sized plate
  /// loads). 0 means "whole array in one tile" for that dimension; array
  /// dimensions must be divisible by the tile dimensions.
  std::size_t tile_rows = 4;
  std::size_t tile_cols = 4;

  /// Worker threads for the tile fan-out: 1 = serial, 0 = one per hardware
  /// thread, n = that many. Ignored when `pool` is given.
  std::size_t jobs = 1;
  util::ThreadPool* pool = nullptr;  ///< borrowed pool; overrides `jobs`

  /// Robustness: when false, the first cell failure escapes (fail-fast).
  /// When true, each cell gets `retry` attempts and terminal failures are
  /// contained per `contain` as kUnmeasurable placeholders.
  bool robust = false;
  util::RetryPolicy retry = {};
  bool contain = true;
  int unmeasurable_code = 0;
  /// Optional per-attempt hook, hook(row, col, attempt) in array
  /// coordinates, called right before each cell's measurement; throwing
  /// marks the attempt failed (the fault-injection point). Called from
  /// worker threads — must be thread-safe.
  std::function<void(std::size_t, std::size_t, int)> cell_hook;

  /// Measurement noise (fast-model engine only); both or neither.
  const msu::MeasureNoise* noise = nullptr;
  Rng* rng = nullptr;

  /// Optional completion tap, hook(tiles_done, tiles_total), called once
  /// per finished tile (any engine). `tiles_done` counts completions, not
  /// tile indices — tiles finish in any order under a pool. Called from
  /// worker threads with no lock held — must be thread-safe; the serve
  /// layer streams its per-tile progress frames from here.
  std::function<void(std::size_t, std::size_t)> tile_hook;
};

/// A complete, possibly degraded extraction plus aggregate telemetry.
struct ExtractReport {
  bitmap::AnalogBitmap bitmap;
  std::vector<CellStatus> status;  ///< row-major, same shape as the bitmap
  FailureReport report;

  /// Aggregate measurement cost (circuit engine; zero for the fast model).
  struct Telemetry {
    std::size_t cells = 0;
    std::size_t transient_steps = 0;  ///< accepted solver steps, all cells
    std::size_t prefix_steps = 0;     ///< spent in flow steps 1-4
    std::size_t adaptive_used = 0;    ///< cells decided by the probe search
    std::size_t adaptive_fallbacks = 0;
    std::size_t adaptive_probes = 0;
    /// Steps spent converting (ramping) rather than charging/sharing — the
    /// cost adaptive scheduling attacks.
    std::size_t conversion_steps() const {
      return transient_steps > prefix_steps ? transient_steps - prefix_steps
                                            : 0;
    }
  } telemetry;

  CellStatus status_at(std::size_t r, std::size_t c) const {
    return status[r * bitmap.cols() + c];
  }
  bool complete() const { return report.complete(); }
};

/// Measures every cell of `mc` per the request. See ExtractRequest for the
/// failure, determinism and telemetry contracts.
ExtractReport extract(const edram::MacroCell& mc, const ExtractRequest& req);

}  // namespace ecms::extraction
