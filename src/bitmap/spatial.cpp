#include "bitmap/spatial.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/stats.hpp"

namespace ecms::bitmap {

std::string pattern_name(PatternKind k) {
  switch (k) {
    case PatternKind::kSingle:
      return "single";
    case PatternKind::kRowLine:
      return "row-line";
    case PatternKind::kColumnLine:
      return "column-line";
    case PatternKind::kCluster:
      return "cluster";
  }
  return "?";
}

namespace {
PatternKind classify(const Component& comp, std::size_t rows,
                     std::size_t cols, const SpatialParams& p) {
  if (comp.size() == 1) return PatternKind::kSingle;
  if (comp.height() == 1 &&
      static_cast<double>(comp.size()) >=
          p.line_fill_fraction * static_cast<double>(cols)) {
    return PatternKind::kRowLine;
  }
  if (comp.width() == 1 &&
      static_cast<double>(comp.size()) >=
          p.line_fill_fraction * static_cast<double>(rows)) {
    return PatternKind::kColumnLine;
  }
  return PatternKind::kCluster;
}
}  // namespace

std::vector<Component> find_components(const std::vector<char>& mask,
                                       std::size_t rows, std::size_t cols,
                                       const SpatialParams& params) {
  ECMS_REQUIRE(mask.size() == rows * cols, "mask size mismatch");
  ECMS_REQUIRE(params.line_fill_fraction > 0.0 &&
                   params.line_fill_fraction <= 1.0,
               "line fill fraction must be in (0,1]");
  std::vector<char> seen(mask.size(), 0);
  std::vector<Component> out;
  std::vector<std::size_t> stack;

  for (std::size_t start = 0; start < mask.size(); ++start) {
    if (!mask[start] || seen[start]) continue;
    Component comp;
    comp.row_lo = comp.row_hi = start / cols;
    comp.col_lo = comp.col_hi = start % cols;
    stack.push_back(start);
    seen[start] = 1;
    while (!stack.empty()) {
      const std::size_t idx = stack.back();
      stack.pop_back();
      const std::size_t r = idx / cols, c = idx % cols;
      comp.cells.push_back({r, c});
      comp.row_lo = std::min(comp.row_lo, r);
      comp.row_hi = std::max(comp.row_hi, r);
      comp.col_lo = std::min(comp.col_lo, c);
      comp.col_hi = std::max(comp.col_hi, c);
      const auto visit = [&](std::size_t nr, std::size_t nc) {
        const std::size_t nidx = nr * cols + nc;
        if (mask[nidx] && !seen[nidx]) {
          seen[nidx] = 1;
          stack.push_back(nidx);
        }
      };
      if (r > 0) visit(r - 1, c);
      if (r + 1 < rows) visit(r + 1, c);
      if (c > 0) visit(r, c - 1);
      if (c + 1 < cols) visit(r, c + 1);
    }
    comp.kind = classify(comp, rows, cols, params);
    out.push_back(std::move(comp));
  }
  // Largest first: diagnosis reads the dominant signature first.
  std::sort(out.begin(), out.end(),
            [](const Component& a, const Component& b) {
              return a.size() > b.size();
            });
  return out;
}

PlaneFit fit_plane(const std::vector<double>& values, std::size_t rows,
                   std::size_t cols) {
  ECMS_REQUIRE(values.size() == rows * cols, "field size mismatch");
  ECMS_REQUIRE(rows * cols >= 3, "plane fit needs at least three cells");
  // Centered coordinates make the normal equations diagonal.
  const double cx = (static_cast<double>(cols) - 1.0) / 2.0;
  const double cy = (static_cast<double>(rows) - 1.0) / 2.0;
  double sum = 0.0, sxx = 0.0, syy = 0.0, sxz = 0.0, syz = 0.0;
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      const double z = values[r * cols + c];
      const double x = static_cast<double>(c) - cx;
      const double y = static_cast<double>(r) - cy;
      sum += z;
      sxx += x * x;
      syy += y * y;
      sxz += x * z;
      syz += y * z;
    }
  }
  const auto n = static_cast<double>(rows * cols);
  PlaneFit f;
  f.mean = sum / n;
  f.grad_x = sxx > 0.0 ? sxz / sxx : 0.0;
  f.grad_y = syy > 0.0 ? syz / syy : 0.0;
  double ss_res = 0.0, ss_tot = 0.0;
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      const double z = values[r * cols + c];
      const double x = static_cast<double>(c) - cx;
      const double y = static_cast<double>(r) - cy;
      const double pred = f.mean + f.grad_x * x + f.grad_y * y;
      ss_res += (z - pred) * (z - pred);
      ss_tot += (z - f.mean) * (z - f.mean);
    }
  }
  f.r2 = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 1.0;
  return f;
}

std::vector<double> robust_zscores(const std::vector<double>& values) {
  ECMS_REQUIRE(!values.empty(), "empty field");
  const double med = percentile(values, 50.0);
  const double sigma = mad_sigma(values);
  std::vector<double> z(values.size(), 0.0);
  if (sigma <= 0.0) return z;
  for (std::size_t i = 0; i < values.size(); ++i)
    z[i] = (values[i] - med) / sigma;
  return z;
}

}  // namespace ecms::bitmap
