// Spatial pattern analysis of bitmap anomalies.
//
// Failure-analysis practice recognizes defect signatures by their shape:
// isolated cells (point defects), full/partial rows and columns (word-line,
// bit-line or plate-strap process faults), 2-D clusters (particles), and
// smooth gradients (deposition/etch non-uniformity). This module provides
// connected-component extraction with shape classification and least-squares
// plane fitting over the code field.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace ecms::bitmap {

enum class PatternKind {
  kSingle,      ///< isolated anomalous cell
  kRowLine,     ///< component spanning most of one row
  kColumnLine,  ///< component spanning most of one column
  kCluster,     ///< compact 2-D blob
};

std::string pattern_name(PatternKind k);

/// Cell coordinate within a bitmap.
struct Cell {
  std::size_t row = 0;
  std::size_t col = 0;
  friend bool operator==(const Cell&, const Cell&) = default;
};

/// One 4-connected component of anomalous cells.
struct Component {
  std::vector<Cell> cells;
  std::size_t row_lo = 0, row_hi = 0;  ///< inclusive bounding box
  std::size_t col_lo = 0, col_hi = 0;
  PatternKind kind = PatternKind::kSingle;

  std::size_t size() const { return cells.size(); }
  std::size_t height() const { return row_hi - row_lo + 1; }
  std::size_t width() const { return col_hi - col_lo + 1; }
};

struct SpatialParams {
  /// A 1-cell-thick component is classified as a line when it fills at
  /// least this fraction of the array dimension it spans.
  double line_fill_fraction = 0.6;
};

/// Finds 4-connected components of the anomaly mask (row-major, nonzero =
/// anomalous) and classifies each.
std::vector<Component> find_components(const std::vector<char>& mask,
                                       std::size_t rows, std::size_t cols,
                                       const SpatialParams& params = {});

/// Least-squares plane z = mean + gx*(x-cx) + gy*(y-cy) over a row-major
/// field. Used to detect process gradients in the code field; slopes are per
/// cell pitch.
struct PlaneFit {
  double mean = 0.0;
  double grad_x = 0.0;  ///< code change per column step
  double grad_y = 0.0;  ///< code change per row step
  double r2 = 0.0;
};

PlaneFit fit_plane(const std::vector<double>& values, std::size_t rows,
                   std::size_t cols);

/// Robust per-cell outlier z-scores (value - median) / mad_sigma over the
/// field. A mad of zero yields all-zero scores.
std::vector<double> robust_zscores(const std::vector<double>& values);

}  // namespace ecms::bitmap
