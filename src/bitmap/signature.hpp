// Per-cell signature categorization of an analog bitmap.
//
// The paper: "signatures categorization depending on the capacitor values
// ... might be very useful to characterize process and defect impact on the
// array". Codes are bucketed into under-range (0), marginal-low, nominal,
// marginal-high and over-range (full scale); spatial analysis and diagnosis
// then operate on these categories.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "bitmap/analog_bitmap.hpp"

namespace ecms::bitmap {

enum class CellSignature {
  kUnderRange,    ///< code 0: below window / short / open
  kMarginalLow,   ///< in window but near the bottom
  kNominal,       ///< mid-window
  kMarginalHigh,  ///< in window but near the top
  kOverRange,     ///< full-scale code: capacitance above the window
};

std::string signature_name(CellSignature s);
/// One-letter rendering: '0' under, 'l' marg-low, '.' nominal, 'h' marg-high,
/// 'F' over.
char signature_letter(CellSignature s);

struct SignatureParams {
  int marginal_low_codes = 3;   ///< codes 1..N categorize as marginal-low
  int marginal_high_codes = 3;  ///< codes steps-N..steps-1 as marginal-high
};

/// Categorized view of an analog bitmap.
class SignatureMap {
 public:
  static SignatureMap categorize(const AnalogBitmap& bm,
                                 const SignatureParams& params = {});

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  CellSignature at(std::size_t r, std::size_t c) const;
  std::size_t count(CellSignature s) const;
  /// Cells that are not kNominal.
  std::size_t anomalous_count() const;
  /// Boolean mask (true = anomalous) for spatial analysis, row-major.
  std::vector<char> anomaly_mask() const;
  /// One letter per cell for rendering.
  std::vector<char> letters() const;

 private:
  SignatureMap(std::size_t rows, std::size_t cols);
  std::size_t rows_, cols_;
  std::vector<CellSignature> cells_;
};

}  // namespace ecms::bitmap
