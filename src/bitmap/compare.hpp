// Analog-vs-digital bitmap comparison against ground truth.
//
// Quantifies the paper's central claim: the analog bitmap sees what the
// digital bitmap cannot — marginal-but-functional cells and the distinction
// between defect mechanisms — and therefore improves diagnosis.
#pragma once

#include <cstddef>

#include "bitmap/analog_bitmap.hpp"
#include "bitmap/signature.hpp"

namespace ecms::bitmap {

/// What counts as "marginal" ground truth for the comparison: a cell whose
/// *effective* capacitance (after partial defects) lands in this window is
/// functional-but-degraded — whether it got there through an under-built
/// capacitor (partial defect) or process variation.
struct MarginalWindow {
  double lo_f = 12e-15;  ///< effective capacitance at/above this...
  double hi_f = 24e-15;  ///< ...and below this = marginal cell
};

struct ComparisonReport {
  // Hard defects: defective cells whose effective capacitance is outside
  // the marginal window (shorts, opens, bridges, severe partials).
  std::size_t truth_defects = 0;
  std::size_t defects_seen_digital = 0;  ///< defect cells failing functionally
  std::size_t defects_seen_analog = 0;   ///< defect cells with anomalous codes

  // Marginal cells (effective capacitance in the marginal window).
  std::size_t truth_marginal = 0;
  std::size_t marginal_seen_digital = 0;
  std::size_t marginal_seen_analog = 0;

  // False flags: healthy nominal cells marked anomalous.
  std::size_t analog_false_flags = 0;
  std::size_t digital_false_flags = 0;

  double defect_coverage_digital() const {
    return truth_defects == 0
               ? 1.0
               : static_cast<double>(defects_seen_digital) /
                     static_cast<double>(truth_defects);
  }
  double defect_coverage_analog() const {
    return truth_defects == 0
               ? 1.0
               : static_cast<double>(defects_seen_analog) /
                     static_cast<double>(truth_defects);
  }
  double marginal_coverage_digital() const {
    return truth_marginal == 0
               ? 1.0
               : static_cast<double>(marginal_seen_digital) /
                     static_cast<double>(truth_marginal);
  }
  double marginal_coverage_analog() const {
    return truth_marginal == 0
               ? 1.0
               : static_cast<double>(marginal_seen_analog) /
                     static_cast<double>(truth_marginal);
  }
};

/// Scores both bitmaps against the macro-cell's ground truth. Shapes must
/// match the macro-cell.
ComparisonReport compare_bitmaps(const edram::MacroCell& truth,
                                 const AnalogBitmap& analog,
                                 const DigitalBitmap& digital,
                                 const SignatureParams& sig_params = {},
                                 const MarginalWindow& window = {});

}  // namespace ecms::bitmap
