#include "bitmap/analog_bitmap.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "bitmap/extraction.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"

namespace ecms::bitmap {

AnalogBitmap::AnalogBitmap(std::size_t rows, std::size_t cols, int ramp_steps)
    : rows_(rows), cols_(cols), steps_(ramp_steps),
      codes_(rows * cols, 0) {
  ECMS_REQUIRE(rows > 0 && cols > 0, "bitmap must be non-empty");
  ECMS_REQUIRE(ramp_steps > 0, "ramp steps must be positive");
}

int AnalogBitmap::at(std::size_t r, std::size_t c) const {
  ECMS_REQUIRE(r < rows_ && c < cols_, "cell index out of range");
  return codes_[r * cols_ + c];
}

void AnalogBitmap::set(std::size_t r, std::size_t c, int code) {
  ECMS_REQUIRE(r < rows_ && c < cols_, "cell index out of range");
  ECMS_REQUIRE(code >= 0 && code <= steps_, "code out of range");
  codes_[r * cols_ + c] = code;
}

AnalogBitmap AnalogBitmap::extract(const msu::FastModel& model) {
  const auto& mc = model.macro_cell();
  AnalogBitmap bm(mc.rows(), mc.cols(), model.ramp_steps());
  for (std::size_t r = 0; r < mc.rows(); ++r)
    for (std::size_t c = 0; c < mc.cols(); ++c)
      bm.set(r, c, model.code_of_cell(r, c));
  return bm;
}

AnalogBitmap AnalogBitmap::extract(const msu::FastModel& model,
                                   const msu::MeasureNoise& noise, Rng& rng) {
  const auto& mc = model.macro_cell();
  AnalogBitmap bm(mc.rows(), mc.cols(), model.ramp_steps());
  for (std::size_t r = 0; r < mc.rows(); ++r)
    for (std::size_t c = 0; c < mc.cols(); ++c)
      bm.set(r, c, model.code_of_cell(r, c, noise, rng));
  return bm;
}

namespace {

// All four tiled entry points are thin wrappers over the unified
// ecms::extraction API; the per-tile fan-out, noise-stream assignment and
// containment semantics live in bitmap/extraction.cpp.
extraction::ExtractRequest base_request(const msu::StructureParams& params,
                                        std::size_t tile_rows,
                                        std::size_t tile_cols,
                                        util::ThreadPool* pool) {
  extraction::ExtractRequest req;
  req.engine = extraction::Engine::kFastModel;
  req.params = params;
  req.tile_rows = tile_rows;
  req.tile_cols = tile_cols;
  req.pool = pool;
  return req;
}

void apply_policy(extraction::ExtractRequest& req,
                  const ExtractPolicy& policy) {
  req.robust = true;
  req.retry = policy.retry;
  req.contain = policy.contain;
  req.unmeasurable_code = policy.unmeasurable_code;
  req.cell_hook = policy.cell_hook;
}

}  // namespace

AnalogBitmap AnalogBitmap::extract_tiled(const edram::MacroCell& mc,
                                         const msu::StructureParams& params,
                                         std::size_t tile_rows,
                                         std::size_t tile_cols,
                                         util::ThreadPool* pool) {
  return std::move(
      extraction::extract(mc, base_request(params, tile_rows, tile_cols, pool))
          .bitmap);
}

AnalogBitmap AnalogBitmap::extract_tiled(const edram::MacroCell& mc,
                                         const msu::StructureParams& params,
                                         const msu::MeasureNoise& noise,
                                         Rng& rng, std::size_t tile_rows,
                                         std::size_t tile_cols,
                                         util::ThreadPool* pool) {
  extraction::ExtractRequest req =
      base_request(params, tile_rows, tile_cols, pool);
  req.noise = &noise;
  req.rng = &rng;
  return std::move(extraction::extract(mc, req).bitmap);
}

TiledExtraction AnalogBitmap::extract_tiled_robust(
    const edram::MacroCell& mc, const msu::StructureParams& params,
    const ExtractPolicy& policy, std::size_t tile_rows, std::size_t tile_cols,
    util::ThreadPool* pool) {
  extraction::ExtractRequest req =
      base_request(params, tile_rows, tile_cols, pool);
  apply_policy(req, policy);
  extraction::ExtractReport rep = extraction::extract(mc, req);
  return {std::move(rep.bitmap), std::move(rep.status),
          std::move(rep.report)};
}

TiledExtraction AnalogBitmap::extract_tiled_robust(
    const edram::MacroCell& mc, const msu::StructureParams& params,
    const msu::MeasureNoise& noise, Rng& rng, const ExtractPolicy& policy,
    std::size_t tile_rows, std::size_t tile_cols, util::ThreadPool* pool) {
  extraction::ExtractRequest req =
      base_request(params, tile_rows, tile_cols, pool);
  apply_policy(req, policy);
  req.noise = &noise;
  req.rng = &rng;
  extraction::ExtractReport rep = extraction::extract(mc, req);
  return {std::move(rep.bitmap), std::move(rep.status),
          std::move(rep.report)};
}

double AnalogBitmap::mean_in_range_code() const {
  RunningStats s;
  for (int code : codes_)
    if (code > 0 && code < steps_) s.add(code);
  ECMS_REQUIRE(s.count() > 0, "no in-range codes in the bitmap");
  return s.mean();
}

double AnalogBitmap::stddev_in_range_code() const {
  RunningStats s;
  for (int code : codes_)
    if (code > 0 && code < steps_) s.add(code);
  ECMS_REQUIRE(s.count() > 0, "no in-range codes in the bitmap");
  return s.stddev();
}

std::size_t AnalogBitmap::count_code(int code) const {
  std::size_t n = 0;
  for (int cd : codes_)
    if (cd == code) ++n;
  return n;
}

std::size_t AnalogBitmap::count_out_of_range() const {
  return count_code(0) + count_code(steps_);
}

std::vector<double> AnalogBitmap::capacitance_map(
    const msu::Abacus& abacus) const {
  std::vector<double> out;
  out.reserve(codes_.size());
  for (int code : codes_) {
    if (code <= 0 || code >= steps_ || !abacus.bin(code).has_value()) {
      out.push_back(std::numeric_limits<double>::quiet_NaN());
    } else {
      out.push_back(abacus.bin(code)->mid());
    }
  }
  return out;
}

DigitalBitmap::DigitalBitmap(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), fails_(rows * cols, 0) {
  ECMS_REQUIRE(rows > 0 && cols > 0, "bitmap must be non-empty");
}

bool DigitalBitmap::fails(std::size_t r, std::size_t c) const {
  ECMS_REQUIRE(r < rows_ && c < cols_, "cell index out of range");
  return fails_[r * cols_ + c] != 0;
}

void DigitalBitmap::set_fail(std::size_t r, std::size_t c, bool fail) {
  ECMS_REQUIRE(r < rows_ && c < cols_, "cell index out of range");
  fails_[r * cols_ + c] = fail ? 1 : 0;
}

std::size_t DigitalBitmap::fail_count() const {
  std::size_t n = 0;
  for (char f : fails_) n += f != 0 ? 1 : 0;
  return n;
}

void DigitalBitmap::merge(const DigitalBitmap& other) {
  ECMS_REQUIRE(rows_ == other.rows_ && cols_ == other.cols_,
               "bitmap shapes differ");
  for (std::size_t i = 0; i < fails_.size(); ++i)
    fails_[i] = fails_[i] || other.fails_[i];
}

}  // namespace ecms::bitmap
