#include "bitmap/analog_bitmap.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <mutex>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"

namespace ecms::bitmap {

AnalogBitmap::AnalogBitmap(std::size_t rows, std::size_t cols, int ramp_steps)
    : rows_(rows), cols_(cols), steps_(ramp_steps),
      codes_(rows * cols, 0) {
  ECMS_REQUIRE(rows > 0 && cols > 0, "bitmap must be non-empty");
  ECMS_REQUIRE(ramp_steps > 0, "ramp steps must be positive");
}

int AnalogBitmap::at(std::size_t r, std::size_t c) const {
  ECMS_REQUIRE(r < rows_ && c < cols_, "cell index out of range");
  return codes_[r * cols_ + c];
}

void AnalogBitmap::set(std::size_t r, std::size_t c, int code) {
  ECMS_REQUIRE(r < rows_ && c < cols_, "cell index out of range");
  ECMS_REQUIRE(code >= 0 && code <= steps_, "code out of range");
  codes_[r * cols_ + c] = code;
}

AnalogBitmap AnalogBitmap::extract(const msu::FastModel& model) {
  const auto& mc = model.macro_cell();
  AnalogBitmap bm(mc.rows(), mc.cols(), model.ramp_steps());
  for (std::size_t r = 0; r < mc.rows(); ++r)
    for (std::size_t c = 0; c < mc.cols(); ++c)
      bm.set(r, c, model.code_of_cell(r, c));
  return bm;
}

AnalogBitmap AnalogBitmap::extract(const msu::FastModel& model,
                                   const msu::MeasureNoise& noise, Rng& rng) {
  const auto& mc = model.macro_cell();
  AnalogBitmap bm(mc.rows(), mc.cols(), model.ramp_steps());
  for (std::size_t r = 0; r < mc.rows(); ++r)
    for (std::size_t c = 0; c < mc.cols(); ++c)
      bm.set(r, c, model.code_of_cell(r, c, noise, rng));
  return bm;
}

namespace {

// RAII per-tile instrumentation: a trace span (tile index + origin) plus a
// wall-time observation into bitmap.tile_seconds. The clock is read only
// when metrics are on; with obs fully off this is one relaxed load and two
// dead branches per tile.
class TileProbe {
 public:
  TileProbe(std::size_t tile, std::size_t row0, std::size_t col0)
      : span_("extract_tile"), timed_(obs::metrics_enabled()) {
    span_.arg("tile", static_cast<double>(tile));
    span_.arg("row0", static_cast<double>(row0));
    span_.arg("col0", static_cast<double>(col0));
    if (timed_) t0_ = std::chrono::steady_clock::now();
  }
  ~TileProbe() {
    if (!timed_) return;
    const double s = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - t0_)
                         .count();
    ECMS_METRIC_OBSERVE("bitmap.tile_seconds", s);
    ECMS_METRIC_COUNT("bitmap.tiles", 1);
  }
  TileProbe(const TileProbe&) = delete;
  TileProbe& operator=(const TileProbe&) = delete;

 private:
  obs::ScopedSpan span_;
  bool timed_;
  std::chrono::steady_clock::time_point t0_;
};

// Runs one independent MSU flow per tile, fanning the tiles out on `pool`
// when given one. `coder_for_tile(model, tile_index)` returns the per-cell
// code function for that tile; any tile-local state (e.g. a forked noise
// Rng) lives inside the returned callable, so tiles never share mutable
// state and the extraction is race-free and order-independent.
template <typename CoderForTile>
AnalogBitmap tiled_impl(const edram::MacroCell& mc,
                        const msu::StructureParams& params,
                        std::size_t tile_rows, std::size_t tile_cols,
                        util::ThreadPool* pool, CoderForTile&& coder_for_tile) {
  ECMS_REQUIRE(tile_rows > 0 && tile_cols > 0, "tile must be non-empty");
  ECMS_REQUIRE(mc.rows() % tile_rows == 0 && mc.cols() % tile_cols == 0,
               "array dimensions must be divisible by the tile dimensions");
  obs::ScopedSpan span("extract_tiled");
  span.arg("rows", static_cast<double>(mc.rows()));
  span.arg("cols", static_cast<double>(mc.cols()));
  AnalogBitmap bm(mc.rows(), mc.cols(), params.ramp_steps);
  const std::size_t tiles_per_row = mc.cols() / tile_cols;
  const std::size_t n_tiles = (mc.rows() / tile_rows) * tiles_per_row;
  util::ThreadPool::run(pool, n_tiles, 1, [&](std::size_t t) {
    const std::size_t tr = (t / tiles_per_row) * tile_rows;
    const std::size_t tc = (t % tiles_per_row) * tile_cols;
    const TileProbe probe(t, tr, tc);
    const edram::MacroCell tile = mc.tile(tr, tc, tile_rows, tile_cols);
    const msu::FastModel model(tile, params);
    auto code_of = coder_for_tile(model, t);
    for (std::size_t r = 0; r < tile_rows; ++r)
      for (std::size_t c = 0; c < tile_cols; ++c)
        bm.set(tr + r, tc + c, code_of(r, c));
    ECMS_METRIC_COUNT("bitmap.cells.measured", tile_rows * tile_cols);
  });
  return bm;
}
// Robust counterpart of tiled_impl: `coder_for_tile(model, t)` returns a
// callable code_of(r, c, attempt) so each attempt can decorrelate its noise.
// Per-cell failures are retried and then contained (policy.contain) as
// kUnmeasurable; the shared failure list is the only cross-tile state and
// is mutex-guarded, then sorted row-major so the report is deterministic
// regardless of tile completion order.
template <typename CoderForTile>
TiledExtraction robust_tiled_impl(const edram::MacroCell& mc,
                                  const msu::StructureParams& params,
                                  const ExtractPolicy& policy,
                                  std::size_t tile_rows, std::size_t tile_cols,
                                  util::ThreadPool* pool,
                                  CoderForTile&& coder_for_tile) {
  ECMS_REQUIRE(tile_rows > 0 && tile_cols > 0, "tile must be non-empty");
  ECMS_REQUIRE(mc.rows() % tile_rows == 0 && mc.cols() % tile_cols == 0,
               "array dimensions must be divisible by the tile dimensions");
  obs::ScopedSpan span("extract_tiled_robust");
  span.arg("rows", static_cast<double>(mc.rows()));
  span.arg("cols", static_cast<double>(mc.cols()));
  TiledExtraction out{AnalogBitmap(mc.rows(), mc.cols(), params.ramp_steps),
                      std::vector<CellStatus>(mc.cell_count(), CellStatus::kOk),
                      {}};
  out.report.cells_total = mc.cell_count();
  const int filler =
      std::clamp(policy.unmeasurable_code, 0, params.ramp_steps);

  std::mutex report_mutex;
  std::size_t recovered = 0;
  std::vector<CellFailure> failures;

  const std::size_t tiles_per_row = mc.cols() / tile_cols;
  const std::size_t n_tiles = (mc.rows() / tile_rows) * tiles_per_row;
  util::ThreadPool::run(pool, n_tiles, 1, [&](std::size_t t) {
    const std::size_t tr = (t / tiles_per_row) * tile_rows;
    const std::size_t tc = (t % tiles_per_row) * tile_cols;
    const TileProbe probe(t, tr, tc);
    const edram::MacroCell tile = mc.tile(tr, tc, tile_rows, tile_cols);
    const msu::FastModel model(tile, params);
    auto code_of = coder_for_tile(model, t);
    // Status tallies are accumulated tile-locally and flushed once per tile,
    // so the per-cell loop adds no metric traffic.
    std::size_t n_ok = 0, n_recovered = 0, n_unmeasurable = 0;
    for (std::size_t r = 0; r < tile_rows; ++r) {
      for (std::size_t c = 0; c < tile_cols; ++c) {
        const std::size_t ar = tr + r;
        const std::size_t ac = tc + c;
        int code = filler;
        const util::RetryResult rr =
            util::run_with_retry(policy.retry, [&](int attempt) {
              if (policy.cell_hook) policy.cell_hook(ar, ac, attempt);
              code = code_of(r, c, attempt);
            });
        if (rr.ok) {
          out.bitmap.set(ar, ac, code);
          if (rr.recovered()) {
            ++n_recovered;
            out.status[ar * mc.cols() + ac] = CellStatus::kRecovered;
            const std::lock_guard<std::mutex> lock(report_mutex);
            ++recovered;
          } else {
            ++n_ok;
          }
        } else {
          if (!policy.contain) {
            throw MeasureError("cell (" + std::to_string(ar) + "," +
                               std::to_string(ac) +
                               ") unmeasurable: " + rr.last_error);
          }
          ++n_unmeasurable;
          out.bitmap.set(ar, ac, filler);
          out.status[ar * mc.cols() + ac] = CellStatus::kUnmeasurable;
          const std::lock_guard<std::mutex> lock(report_mutex);
          failures.push_back({ar, ac, rr.last_error});
        }
      }
    }
    ECMS_METRIC_COUNT("bitmap.cells.ok", n_ok);
    ECMS_METRIC_COUNT("bitmap.cells.recovered", n_recovered);
    ECMS_METRIC_COUNT("bitmap.cells.unmeasurable", n_unmeasurable);
  });

  std::sort(failures.begin(), failures.end(),
            [](const CellFailure& a, const CellFailure& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });
  out.report.recovered = recovered;
  out.report.failures = std::move(failures);
  return out;
}

}  // namespace

AnalogBitmap AnalogBitmap::extract_tiled(const edram::MacroCell& mc,
                                         const msu::StructureParams& params,
                                         std::size_t tile_rows,
                                         std::size_t tile_cols,
                                         util::ThreadPool* pool) {
  return tiled_impl(mc, params, tile_rows, tile_cols, pool,
                    [](const msu::FastModel& m, std::size_t) {
                      return [&m](std::size_t r, std::size_t c) {
                        return m.code_of_cell(r, c);
                      };
                    });
}

AnalogBitmap AnalogBitmap::extract_tiled(const edram::MacroCell& mc,
                                         const msu::StructureParams& params,
                                         const msu::MeasureNoise& noise,
                                         Rng& rng, std::size_t tile_rows,
                                         std::size_t tile_cols,
                                         util::ThreadPool* pool) {
  // Each tile draws from its own forked stream, keyed by tile index, so the
  // noise a tile sees does not depend on tile visit order or thread count.
  return tiled_impl(
      mc, params, tile_rows, tile_cols, pool,
      [&](const msu::FastModel& m, std::size_t t) {
        return [&m, &noise, tile_rng = rng.fork(t)](std::size_t r,
                                                    std::size_t c) mutable {
          return m.code_of_cell(r, c, noise, tile_rng);
        };
      });
}

TiledExtraction AnalogBitmap::extract_tiled_robust(
    const edram::MacroCell& mc, const msu::StructureParams& params,
    const ExtractPolicy& policy, std::size_t tile_rows, std::size_t tile_cols,
    util::ThreadPool* pool) {
  return robust_tiled_impl(mc, params, policy, tile_rows, tile_cols, pool,
                           [](const msu::FastModel& m, std::size_t) {
                             return [&m](std::size_t r, std::size_t c,
                                         int /*attempt*/) {
                               return m.code_of_cell(r, c);
                             };
                           });
}

TiledExtraction AnalogBitmap::extract_tiled_robust(
    const edram::MacroCell& mc, const msu::StructureParams& params,
    const msu::MeasureNoise& noise, Rng& rng, const ExtractPolicy& policy,
    std::size_t tile_rows, std::size_t tile_cols, util::ThreadPool* pool) {
  // Per-cell (not per-tile-sequential) streams: a cell's draws depend only
  // on (rng state, tile, cell, attempt), so containment of one cell's
  // failure cannot shift any other cell's noise.
  return robust_tiled_impl(
      mc, params, policy, tile_rows, tile_cols, pool,
      [&, tile_cols](const msu::FastModel& m, std::size_t t) {
        return [&m, &noise, tile_rng = rng.fork(t), tile_cols](
                   std::size_t r, std::size_t c, int attempt) {
          Rng cell_rng = tile_rng.fork(r * tile_cols + c)
                             .fork(static_cast<std::uint64_t>(attempt));
          return m.code_of_cell(r, c, noise, cell_rng);
        };
      });
}

double AnalogBitmap::mean_in_range_code() const {
  RunningStats s;
  for (int code : codes_)
    if (code > 0 && code < steps_) s.add(code);
  ECMS_REQUIRE(s.count() > 0, "no in-range codes in the bitmap");
  return s.mean();
}

double AnalogBitmap::stddev_in_range_code() const {
  RunningStats s;
  for (int code : codes_)
    if (code > 0 && code < steps_) s.add(code);
  ECMS_REQUIRE(s.count() > 0, "no in-range codes in the bitmap");
  return s.stddev();
}

std::size_t AnalogBitmap::count_code(int code) const {
  std::size_t n = 0;
  for (int cd : codes_)
    if (cd == code) ++n;
  return n;
}

std::size_t AnalogBitmap::count_out_of_range() const {
  return count_code(0) + count_code(steps_);
}

std::vector<double> AnalogBitmap::capacitance_map(
    const msu::Abacus& abacus) const {
  std::vector<double> out;
  out.reserve(codes_.size());
  for (int code : codes_) {
    if (code <= 0 || code >= steps_ || !abacus.bin(code).has_value()) {
      out.push_back(std::numeric_limits<double>::quiet_NaN());
    } else {
      out.push_back(abacus.bin(code)->mid());
    }
  }
  return out;
}

DigitalBitmap::DigitalBitmap(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), fails_(rows * cols, 0) {
  ECMS_REQUIRE(rows > 0 && cols > 0, "bitmap must be non-empty");
}

bool DigitalBitmap::fails(std::size_t r, std::size_t c) const {
  ECMS_REQUIRE(r < rows_ && c < cols_, "cell index out of range");
  return fails_[r * cols_ + c] != 0;
}

void DigitalBitmap::set_fail(std::size_t r, std::size_t c, bool fail) {
  ECMS_REQUIRE(r < rows_ && c < cols_, "cell index out of range");
  fails_[r * cols_ + c] = fail ? 1 : 0;
}

std::size_t DigitalBitmap::fail_count() const {
  std::size_t n = 0;
  for (char f : fails_) n += f != 0 ? 1 : 0;
  return n;
}

void DigitalBitmap::merge(const DigitalBitmap& other) {
  ECMS_REQUIRE(rows_ == other.rows_ && cols_ == other.cols_,
               "bitmap shapes differ");
  for (std::size_t i = 0; i < fails_.size(); ++i)
    fails_[i] = fails_[i] || other.fails_[i];
}

}  // namespace ecms::bitmap
