#include "bitmap/compare.hpp"

#include "util/error.hpp"

namespace ecms::bitmap {

ComparisonReport compare_bitmaps(const edram::MacroCell& truth,
                                 const AnalogBitmap& analog,
                                 const DigitalBitmap& digital,
                                 const SignatureParams& sig_params,
                                 const MarginalWindow& window) {
  ECMS_REQUIRE(analog.rows() == truth.rows() && analog.cols() == truth.cols(),
               "analog bitmap shape mismatch");
  ECMS_REQUIRE(digital.rows() == truth.rows() &&
                   digital.cols() == truth.cols(),
               "digital bitmap shape mismatch");
  ECMS_REQUIRE(window.hi_f > window.lo_f, "marginal window inverted");

  const SignatureMap sig = SignatureMap::categorize(analog, sig_params);
  ComparisonReport rep;
  for (std::size_t r = 0; r < truth.rows(); ++r) {
    for (std::size_t c = 0; c < truth.cols(); ++c) {
      const bool has_defect =
          truth.defect(r, c).type != tech::DefectType::kNone;
      const bool analog_flags = sig.at(r, c) != CellSignature::kNominal;
      const bool digital_flags = digital.fails(r, c);
      const double eff = truth.effective_cap(r, c);
      const bool marginal = eff >= window.lo_f && eff < window.hi_f;

      if (has_defect && !marginal) {
        ++rep.truth_defects;
        if (digital_flags) ++rep.defects_seen_digital;
        if (analog_flags) ++rep.defects_seen_analog;
      } else if (marginal) {
        ++rep.truth_marginal;
        if (digital_flags) ++rep.marginal_seen_digital;
        if (analog_flags) ++rep.marginal_seen_analog;
      } else {
        if (analog_flags) ++rep.analog_false_flags;
        if (digital_flags) ++rep.digital_false_flags;
      }
    }
  }
  return rep;
}

}  // namespace ecms::bitmap
