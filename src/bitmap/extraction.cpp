#include "bitmap/extraction.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"

namespace ecms::extraction {

namespace {

// RAII per-tile instrumentation: a trace span (tile index + origin) plus a
// wall-time observation into bitmap.tile_seconds. The clock is read only
// when metrics are on; with obs fully off this is one relaxed load and two
// dead branches per tile.
class TileProbe {
 public:
  TileProbe(std::size_t tile, std::size_t row0, std::size_t col0)
      : span_("extract_tile"), timed_(obs::metrics_enabled()) {
    span_.arg("tile", static_cast<double>(tile));
    span_.arg("row0", static_cast<double>(row0));
    span_.arg("col0", static_cast<double>(col0));
    if (timed_) t0_ = std::chrono::steady_clock::now();
  }
  ~TileProbe() {
    if (!timed_) return;
    const double s = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - t0_)
                         .count();
    ECMS_METRIC_OBSERVE("bitmap.tile_seconds", s);
    ECMS_METRIC_COUNT("bitmap.tiles", 1);
  }
  TileProbe(const TileProbe&) = delete;
  TileProbe& operator=(const TileProbe&) = delete;

 private:
  obs::ScopedSpan span_;
  bool timed_;
  std::chrono::steady_clock::time_point t0_;
};

}  // namespace

ExtractReport extract(const edram::MacroCell& mc, const ExtractRequest& req) {
  const std::size_t tile_rows = req.tile_rows == 0 ? mc.rows() : req.tile_rows;
  const std::size_t tile_cols = req.tile_cols == 0 ? mc.cols() : req.tile_cols;
  ECMS_REQUIRE(tile_rows > 0 && tile_cols > 0, "tile must be non-empty");
  ECMS_REQUIRE(mc.rows() % tile_rows == 0 && mc.cols() % tile_cols == 0,
               "array dimensions must be divisible by the tile dimensions");
  ECMS_REQUIRE((req.noise == nullptr) == (req.rng == nullptr),
               "measurement noise and its rng must be provided together");
  ECMS_REQUIRE(req.noise == nullptr || req.engine == Engine::kFastModel,
               "measurement noise applies to the fast-model engine only");

  obs::ScopedSpan span(req.robust ? "extract_tiled_robust" : "extract_tiled");
  span.arg("rows", static_cast<double>(mc.rows()));
  span.arg("cols", static_cast<double>(mc.cols()));

  ExtractReport out{
      bitmap::AnalogBitmap(mc.rows(), mc.cols(), req.params.ramp_steps),
      std::vector<CellStatus>(mc.cell_count(), CellStatus::kOk),
      {},
      {}};
  out.report.cells_total = mc.cell_count();
  out.telemetry.cells = mc.cell_count();
  const int filler = std::clamp(req.unmeasurable_code, 0, req.params.ramp_steps);

  util::ThreadPool* pool = req.pool;
  std::unique_ptr<util::ThreadPool> owned;
  if (pool == nullptr && req.jobs != 1) {
    owned = std::make_unique<util::ThreadPool>(req.jobs);
    pool = owned.get();
  }

  // The only cross-tile state; guarded and merged deterministically below.
  std::mutex merge_mutex;
  std::size_t recovered = 0;
  std::vector<CellFailure> failures;
  ExtractReport::Telemetry tally;

  const std::size_t tiles_per_row = mc.cols() / tile_cols;
  const std::size_t n_tiles = (mc.rows() / tile_rows) * tiles_per_row;

  const auto tile_body = [&](std::size_t t) {
    const std::size_t tr = (t / tiles_per_row) * tile_rows;
    const std::size_t tc = (t % tiles_per_row) * tile_cols;
    const TileProbe probe(t, tr, tc);
    const edram::MacroCell tile = mc.tile(tr, tc, tile_rows, tile_cols);

    if (req.engine == Engine::kCircuit) {
      msu::ExtractPlan plan;
      plan.timing = req.timing;
      plan.options = req.options;
      if (!req.share_programs) {
        plan.options.newton.solver.program_cache = nullptr;
      }
      // batch_engageable() re-checks the preconditions (cache, solver kind,
      // hooks), so a cache-less or dense request degrades to scalar here.
      plan.batch_width = req.batch_width;
      plan.retry = req.robust ? req.retry : util::RetryPolicy{.max_attempts = 1};
      plan.contain = req.robust && req.contain;
      plan.unmeasurable_code = filler;
      if (req.cell_hook) {
        plan.cell_hook = [&req, tr, tc](std::size_t r, std::size_t c,
                                        int attempt) {
          req.cell_hook(tr + r, tc + c, attempt);
        };
      }
      const msu::RobustExtraction rx =
          msu::extract_array(tile, req.params, plan);

      ExtractReport::Telemetry local;
      std::size_t n_ok = 0, n_recovered = 0, n_unmeasurable = 0;
      for (std::size_t r = 0; r < tile_rows; ++r) {
        for (std::size_t c = 0; c < tile_cols; ++c) {
          const std::size_t i = r * tile_cols + c;
          const msu::ExtractionResult& cell = rx.results[i];
          out.bitmap.set(tr + r, tc + c, cell.code);
          out.status[(tr + r) * mc.cols() + (tc + c)] = rx.status[i];
          switch (rx.status[i]) {
            case CellStatus::kOk: ++n_ok; break;
            case CellStatus::kRecovered: ++n_recovered; break;
            case CellStatus::kUnmeasurable: ++n_unmeasurable; break;
          }
          local.transient_steps += cell.stats.accepted_steps;
          local.prefix_steps += cell.prefix_steps;
          if (cell.adaptive.used) ++local.adaptive_used;
          if (cell.adaptive.fell_back) ++local.adaptive_fallbacks;
          local.adaptive_probes +=
              static_cast<std::size_t>(std::max(cell.adaptive.probes, 0));
        }
      }
      ECMS_METRIC_COUNT("bitmap.cells.ok", n_ok);
      ECMS_METRIC_COUNT("bitmap.cells.recovered", n_recovered);
      ECMS_METRIC_COUNT("bitmap.cells.unmeasurable", n_unmeasurable);

      const std::lock_guard<std::mutex> lock(merge_mutex);
      recovered += n_recovered;
      for (const CellFailure& f : rx.report.failures)
        failures.push_back({tr + f.row, tc + f.col, f.reason});
      tally.transient_steps += local.transient_steps;
      tally.prefix_steps += local.prefix_steps;
      tally.adaptive_used += local.adaptive_used;
      tally.adaptive_fallbacks += local.adaptive_fallbacks;
      tally.adaptive_probes += local.adaptive_probes;
      return;
    }

    // Fast-model engine.
    const msu::FastModel model(tile, req.params);
    if (!req.robust) {
      if (req.noise != nullptr) {
        // Each tile draws from its own forked stream, keyed by tile index,
        // so the noise a tile sees does not depend on tile visit order or
        // thread count.
        Rng tile_rng = req.rng->fork(t);
        for (std::size_t r = 0; r < tile_rows; ++r)
          for (std::size_t c = 0; c < tile_cols; ++c)
            out.bitmap.set(tr + r, tc + c,
                           model.code_of_cell(r, c, *req.noise, tile_rng));
      } else {
        for (std::size_t r = 0; r < tile_rows; ++r)
          for (std::size_t c = 0; c < tile_cols; ++c)
            out.bitmap.set(tr + r, tc + c, model.code_of_cell(r, c));
      }
      ECMS_METRIC_COUNT("bitmap.cells.measured", tile_rows * tile_cols);
      return;
    }

    // Robust fast model. Per-cell (not per-tile-sequential) noise streams:
    // a cell's draws depend only on (rng state, tile, cell, attempt), so
    // containment of one cell's failure cannot shift another cell's noise.
    std::optional<Rng> tile_rng;
    if (req.noise != nullptr) tile_rng.emplace(req.rng->fork(t));
    std::size_t n_ok = 0, n_recovered = 0, n_unmeasurable = 0;
    for (std::size_t r = 0; r < tile_rows; ++r) {
      for (std::size_t c = 0; c < tile_cols; ++c) {
        const std::size_t ar = tr + r;
        const std::size_t ac = tc + c;
        int code = filler;
        const util::RetryResult rr =
            util::run_with_retry(req.retry, [&](int attempt) {
              if (req.cell_hook) req.cell_hook(ar, ac, attempt);
              if (req.noise != nullptr) {
                Rng cell_rng = tile_rng->fork(r * tile_cols + c)
                                   .fork(static_cast<std::uint64_t>(attempt));
                code = model.code_of_cell(r, c, *req.noise, cell_rng);
              } else {
                code = model.code_of_cell(r, c);
              }
            });
        if (rr.ok) {
          out.bitmap.set(ar, ac, code);
          if (rr.recovered()) {
            ++n_recovered;
            out.status[ar * mc.cols() + ac] = CellStatus::kRecovered;
          } else {
            ++n_ok;
          }
        } else {
          if (!req.contain) {
            throw MeasureError("cell (" + std::to_string(ar) + "," +
                               std::to_string(ac) +
                               ") unmeasurable: " + rr.last_error);
          }
          ++n_unmeasurable;
          out.bitmap.set(ar, ac, filler);
          out.status[ar * mc.cols() + ac] = CellStatus::kUnmeasurable;
          const std::lock_guard<std::mutex> lock(merge_mutex);
          failures.push_back({ar, ac, rr.last_error});
        }
      }
    }
    ECMS_METRIC_COUNT("bitmap.cells.ok", n_ok);
    ECMS_METRIC_COUNT("bitmap.cells.recovered", n_recovered);
    ECMS_METRIC_COUNT("bitmap.cells.unmeasurable", n_unmeasurable);
    if (n_recovered > 0) {
      const std::lock_guard<std::mutex> lock(merge_mutex);
      recovered += n_recovered;
    }
  };

  std::atomic<std::size_t> tiles_done{0};
  util::ThreadPool::run(pool, n_tiles, 1, [&](std::size_t t) {
    tile_body(t);
    if (req.tile_hook) req.tile_hook(tiles_done.fetch_add(1) + 1, n_tiles);
  });

  // Sorted row-major so the report is deterministic regardless of tile
  // completion order.
  std::sort(failures.begin(), failures.end(),
            [](const CellFailure& a, const CellFailure& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });
  out.report.recovered = recovered;
  out.report.failures = std::move(failures);
  tally.cells = out.telemetry.cells;
  out.telemetry = tally;
  return out;
}

}  // namespace ecms::extraction
