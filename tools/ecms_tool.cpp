// ecms_tool — command-line driver for the library.
//
//   ecms_tool abacus  [--ref-w <um>] [--steps <n>] [--rows <n>] [--cols <n>]
//   ecms_tool extract --row <r> --col <c> [--cap <fF>] [--defect short|open]
//   ecms_tool bitmap  [--rows <n>] [--cols <n>] [--seed <s>]
//                     [--shorts <p>] [--opens <p>] [--partials <p>]
//                     [--gradient <rel>] [--drift <rel>] [--jobs <n>]
//                     [--fault-rate <p>] [--fault-seed <s>] [--retries <n>]
//                     [--keep-going | --fail-fast]
//   ecms_tool design  [--rows <n>] [--cols <n>]
//   ecms_tool spice   [--rows <n>] [--cols <n>]
//
// Everything prints to stdout. Exit codes:
//   0  success, every cell measured
//   1  usage error (bad command line)
//   2  runtime failure (extraction aborted, fail-fast hit, bad netlist, ...)
//   3  degraded success: the run completed but some cells are unmeasurable
//      (--keep-going, the default; the per-cell failure report lists them)
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <map>
#include <string>

#include "bitmap/compare.hpp"
#include "bitmap/diagnosis.hpp"
#include "circuit/spice_io.hpp"
#include "edram/behavioral.hpp"
#include "edram/netlister.hpp"
#include "fault/fault.hpp"
#include "march/runner.hpp"
#include "msu/abacus.hpp"
#include "msu/designer.hpp"
#include "msu/extract.hpp"
#include "report/heatmap.hpp"
#include "tech/tech.hpp"
#include "util/error.hpp"
#include "util/table.hpp"
#include "util/threadpool.hpp"
#include "util/units.hpp"

namespace {
using namespace ecms;

constexpr int kExitOk = 0;
constexpr int kExitUsage = 1;
constexpr int kExitFailure = 2;
constexpr int kExitDegraded = 3;

/// Bad command line (vs a runtime failure, which exits differently).
class UsageError : public ecms::Error {
 public:
  explicit UsageError(const std::string& what) : Error(what) {}
};

class Args {
 public:
  Args(int argc, char** argv, int from) {
    for (int i = from; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) {
        throw UsageError("expected --option, got '" + key + "'");
      }
      key = key.substr(2);
      // A token not starting with "--" is this option's value; otherwise the
      // option is a boolean flag (e.g. --keep-going).
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        kv_[key] = argv[++i];
      } else {
        kv_[key] = "1";
      }
    }
  }

  double num(const std::string& key, double fallback) const {
    const auto it = kv_.find(key);
    return it == kv_.end() ? fallback : std::stod(it->second);
  }
  std::string str(const std::string& key, const std::string& fallback) const {
    const auto it = kv_.find(key);
    return it == kv_.end() ? fallback : it->second;
  }
  bool flag(const std::string& key) const { return kv_.count(key) > 0; }

 private:
  std::map<std::string, std::string> kv_;
};

edram::MacroCellSpec spec_of(const Args& args) {
  edram::MacroCellSpec spec;
  spec.rows = static_cast<std::size_t>(args.num("rows", 4));
  spec.cols = static_cast<std::size_t>(args.num("cols", 4));
  return spec;
}

int cmd_abacus(const Args& args) {
  msu::StructureParams p;
  if (args.num("ref-w", 0) > 0) p.ref_w = args.num("ref-w", 0) * 1e-6;
  p.ramp_steps = static_cast<int>(args.num("steps", 20));
  const auto mc =
      edram::MacroCell::uniform(spec_of(args), tech::tech018(), 30_fF);
  const msu::FastModel model(mc, p);
  msu::Abacus ab = msu::Abacus::build(
      [&](double cm) { return model.code_of_cap(cm); }, p.ramp_steps, 1e-15,
      75e-15, 741);
  ab.refine([&](double cm) { return model.code_of_cap(cm); }, 1e-19);

  Table t({"code", "Cm low (fF)", "Cm high (fF)", "accuracy (%)"});
  for (int code = 1; code < p.ramp_steps; ++code) {
    const auto bin = ab.bin(code);
    if (!bin) continue;
    t.add_row({Table::num(static_cast<long long>(code)),
               Table::num(to_unit::fF(bin->lo), 2),
               Table::num(to_unit::fF(bin->hi), 2),
               Table::num(100 * bin->relative_halfwidth(), 1)});
  }
  std::cout << t;
  std::printf("\nwindow %.1f - %.1f fF, mean accuracy %.1f%%\n",
              to_unit::fF(ab.range_lo()), to_unit::fF(ab.range_hi()),
              100 * ab.mean_accuracy(1, p.ramp_steps - 1));
  return 0;
}

int cmd_extract(const Args& args) {
  const auto r = static_cast<std::size_t>(args.num("row", 0));
  const auto c = static_cast<std::size_t>(args.num("col", 0));
  auto mc = edram::MacroCell::uniform(spec_of(args), tech::tech018(), 30_fF);
  mc.set_true_cap(r, c, args.num("cap", 30.0) * 1e-15);
  const std::string defect = args.str("defect", "");
  if (defect == "short") mc.set_defect(r, c, tech::make_short());
  if (defect == "open") mc.set_defect(r, c, tech::make_open());

  const auto res = msu::extract_cell(mc, r, c, {});
  std::printf("cell (%zu,%zu): code %d / %d\n", r, c, res.code,
              res.schedule.ramp_steps);
  if (res.status == CellStatus::kRecovered) {
    std::printf("  solver recovery    : succeeded at rung '%s' (%d attempts)\n",
                circuit::recovery_rung_name(res.recovery.succeeded_at).c_str(),
                res.recovery.attempts);
  }
  std::printf("  plate after charge : %.3f V\n", res.v_plate_charged);
  std::printf("  V_GS after share   : %.3f V\n", res.vgs_shared);
  if (res.t_out_rise) {
    std::printf("  OUT flip           : %.2f ns\n",
                to_unit::ns(*res.t_out_rise));
  } else {
    std::printf("  OUT did not flip (full-scale)\n");
  }
  std::printf("  transient steps    : %zu\n", res.stats.accepted_steps);
  return 0;
}

int cmd_bitmap(const Args& args) {
  const auto rows = static_cast<std::size_t>(args.num("rows", 32));
  const auto cols = static_cast<std::size_t>(args.num("cols", 32));
  const auto seed = static_cast<std::uint64_t>(args.num("seed", 1));

  tech::CapProcessParams cp;
  cp.local_sigma_rel = 0.02;
  cp.gradient_x_rel = args.num("gradient", 0.0);
  cp.lot_offset_rel = args.num("drift", 0.0);
  tech::CapField field(cp, rows, cols, seed);
  Rng rng(seed);
  tech::DefectRates rates;
  rates.short_rate = args.num("shorts", 0.002);
  rates.open_rate = args.num("opens", 0.002);
  rates.partial_rate = args.num("partials", 0.005);
  tech::DefectMap defects = tech::DefectMap::random(rows, cols, rates, rng);
  const edram::MacroCell mc({.rows = rows, .cols = cols}, tech::tech018(),
                            std::move(field), std::move(defects));

  // Codes are bit-identical whatever --jobs says (per-tile RNG streams);
  // the pool only changes wall time.
  const double jobs_arg = args.num("jobs", 1);
  const auto jobs =
      jobs_arg < 1 ? 1 : static_cast<std::size_t>(std::min(jobs_arg, 512.0));
  util::ThreadPool pool(jobs);
  util::ThreadPool* pool_ptr = pool.worker_count() > 1 ? &pool : nullptr;

  if (args.flag("keep-going") && args.flag("fail-fast")) {
    throw UsageError("--keep-going and --fail-fast are mutually exclusive");
  }
  const double fault_rate = args.num("fault-rate", 0.0);
  const auto fault_seed = static_cast<std::uint64_t>(args.num("fault-seed", 1));
  const fault::CellFaultPlan plan(fault_rate, fault_seed);
  bitmap::ExtractPolicy policy;
  if (fault_rate > 0.0) policy.cell_hook = plan.hook();
  policy.retry.max_attempts = static_cast<int>(args.num("retries", 2));
  policy.contain = !args.flag("fail-fast");

  const auto extraction =
      bitmap::AnalogBitmap::extract_tiled_robust(mc, {}, policy, 4, 4,
                                                 pool_ptr);
  const auto& analog = extraction.bitmap;
  std::printf("analog bitmap (codes 0..20):\n%s\n",
              report::render_code_heatmap(analog).c_str());
  const auto sig = bitmap::SignatureMap::categorize(analog);
  std::printf("signatures:\n%s\n", report::render_signature_map(sig).c_str());

  const auto findings = bitmap::diagnose(
      analog, bitmap::make_tiled_disambiguator(mc, {}), std::nullopt);
  std::printf("findings (%zu):\n", findings.size());
  for (const auto& f : findings)
    std::printf("  [%s] %s\n", bitmap::diagnosis_name(f.kind).c_str(),
                f.detail.c_str());

  const auto& rep = extraction.report;
  std::printf("\nextraction health: %s\n", rep.summary().c_str());
  constexpr std::size_t kMaxListed = 16;
  for (std::size_t i = 0; i < rep.failures.size() && i < kMaxListed; ++i) {
    const auto& f = rep.failures[i];
    std::printf("  unmeasurable (%zu,%zu): %s\n", f.row, f.col,
                f.reason.c_str());
  }
  if (rep.failures.size() > kMaxListed) {
    std::printf("  ... and %zu more\n", rep.failures.size() - kMaxListed);
  }
  return rep.complete() ? kExitOk : kExitDegraded;
}

int cmd_design(const Args& args) {
  const auto mc =
      edram::MacroCell::uniform(spec_of(args), tech::tech018(), 30_fF);
  const msu::StructureParams best = msu::auto_size_structure(mc);
  const msu::DesignPoint d = msu::evaluate_design(mc, best);
  std::printf("auto-sized structure for %zux%zu macro-cell:\n", mc.rows(),
              mc.cols());
  std::printf("  REF            : W = %.1f um, L = %.2f um\n",
              to_unit::um(best.ref_w), to_unit::um(best.ref_l));
  std::printf("  C_REF          : %.1f fF\n", to_unit::fF(d.cref));
  std::printf("  window         : %.1f - %.1f fF\n", to_unit::fF(d.range_lo),
              to_unit::fF(d.range_hi));
  std::printf("  codes used     : %zu\n", d.codes_used);
  std::printf("  mean accuracy  : %.1f %%\n", 100 * d.mean_acc);
  std::printf("  score          : %.3f\n", d.score);
  return 0;
}

int cmd_spice(const Args& args) {
  const auto mc =
      edram::MacroCell::uniform(spec_of(args), tech::tech018(), 30_fF);
  circuit::Circuit ckt;
  const auto arr = edram::build_array(ckt, mc);
  msu::build_structure(ckt, arr.plate, mc.tech(), {});
  circuit::write_spice(ckt, std::cout,
                       "eDRAM macro-cell + measurement structure");
  return 0;
}

int usage() {
  std::fprintf(stderr,
               "usage: ecms_tool <abacus|extract|bitmap|design|spice> "
               "[--option value ...] [--keep-going|--fail-fast]\n");
  return kExitUsage;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    const Args args(argc, argv, 2);
    if (cmd == "abacus") return cmd_abacus(args);
    if (cmd == "extract") return cmd_extract(args);
    if (cmd == "bitmap") return cmd_bitmap(args);
    if (cmd == "design") return cmd_design(args);
    if (cmd == "spice") return cmd_spice(args);
    return usage();
  } catch (const UsageError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return kExitUsage;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return kExitFailure;
  }
}
