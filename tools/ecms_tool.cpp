// ecms_tool — command-line driver for the library. Run with no arguments
// for the full usage text (commands, per-command flags, observability
// flags, exit-code taxonomy).
//
// Exit codes:
//   0  success, every cell measured
//   1  usage error (bad command line)
//   2  runtime failure (extraction aborted, fail-fast hit, bad netlist, ...)
//   3  degraded success: the run completed but some cells are unmeasurable
//      (--keep-going, the default; the per-cell failure report lists them)
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <iostream>
#include <map>
#include <string>
#include <thread>

#include "bitmap/compare.hpp"
#include "campaign/campaign.hpp"
#include "campaign/compact.hpp"
#include "campaign/supervisor.hpp"
#include "campaign/worker.hpp"
#include "bitmap/diagnosis.hpp"
#include "bitmap/extraction.hpp"
#include "circuit/kernels.hpp"
#include "circuit/solver.hpp"
#include "circuit/spice_io.hpp"
#include "edram/behavioral.hpp"
#include "edram/netlister.hpp"
#include "fault/fault.hpp"
#include "march/runner.hpp"
#include "msu/abacus.hpp"
#include "msu/designer.hpp"
#include "msu/extract.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "report/heatmap.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "serve/workload.hpp"
#include "tech/tech.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "util/table.hpp"
#include "util/threadpool.hpp"
#include "util/units.hpp"

namespace {
using namespace ecms;

constexpr int kExitOk = 0;
constexpr int kExitUsage = 1;
constexpr int kExitFailure = 2;
constexpr int kExitDegraded = 3;

/// Bad command line (vs a runtime failure, which exits differently).
class UsageError : public ecms::Error {
 public:
  explicit UsageError(const std::string& what) : Error(what) {}
};

class Args {
 public:
  Args(int argc, char** argv, int from) {
    for (int i = from; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) {
        throw UsageError("expected --option, got '" + key + "'");
      }
      key = key.substr(2);
      // A token not starting with "--" is this option's value; otherwise the
      // option is a boolean flag (e.g. --keep-going).
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        kv_[key] = argv[++i];
      } else {
        kv_[key] = "1";
      }
    }
  }

  double num(const std::string& key, double fallback) const {
    const auto it = kv_.find(key);
    return it == kv_.end() ? fallback : std::stod(it->second);
  }
  /// Strict integer parse: trailing garbage ("--jobs 4x") is a usage error
  /// instead of being silently truncated.
  long long integer(const std::string& key, long long fallback) const {
    const auto it = kv_.find(key);
    if (it == kv_.end()) return fallback;
    try {
      std::size_t pos = 0;
      const long long v = std::stoll(it->second, &pos);
      if (pos != it->second.size()) throw std::invalid_argument(it->second);
      return v;
    } catch (const std::exception&) {
      throw UsageError("--" + key + " expects an integer, got '" +
                       it->second + "'");
    }
  }
  std::string str(const std::string& key, const std::string& fallback) const {
    const auto it = kv_.find(key);
    return it == kv_.end() ? fallback : it->second;
  }
  bool flag(const std::string& key) const { return kv_.count(key) > 0; }

 private:
  std::map<std::string, std::string> kv_;
};

/// Resolves --jobs: default 1 (serial); 0 means one worker per hardware
/// thread; negatives and non-integers are usage errors. The result is
/// clamped to 512 workers — far beyond any host this runs on, but it bounds
/// an accidental "--jobs 100000" thread bomb.
std::size_t jobs_of(const Args& args) {
  constexpr long long kMaxJobs = 512;
  long long jobs = args.integer("jobs", 1);
  if (jobs < 0) throw UsageError("--jobs must be >= 0 (0 = all hardware threads)");
  if (jobs == 0) {
    jobs = static_cast<long long>(
        std::max(1u, std::thread::hardware_concurrency()));
  }
  return static_cast<std::size_t>(std::min(jobs, kMaxJobs));
}

/// One-screen metrics summary (non-zero counters, gauges, histograms) via
/// util::Table, printed after bitmap/extract runs.
void print_metrics_summary() {
  const obs::MetricsSnapshot snap = obs::Registry::global().snapshot();
  std::printf("\n-- metrics summary --\n");
  Table counters({"counter", "value"});
  for (const auto& [name, v] : snap.counters) {
    if (v == 0) continue;
    counters.add_row({name, Table::num(static_cast<long long>(v))});
  }
  if (counters.rows() > 0) std::printf("%s\n", counters.to_text().c_str());
  Table gauges({"gauge", "value", "max"});
  for (const auto& [name, g] : snap.gauges) {
    if (g.value == 0 && g.max == 0) continue;
    gauges.add_row({name, Table::num(static_cast<long long>(g.value)),
                    Table::num(static_cast<long long>(g.max))});
  }
  if (gauges.rows() > 0) std::printf("%s\n", gauges.to_text().c_str());
  Table hists({"histogram", "count", "mean", "max"});
  for (const auto& [name, h] : snap.histograms) {
    if (h.count == 0 && h.rejected == 0) continue;
    hists.add_row({name, Table::num(static_cast<long long>(h.count)),
                   Table::num(h.mean(), 6), Table::num(h.max, 6)});
  }
  if (hists.rows() > 0) std::printf("%s\n", hists.to_text().c_str());
}

/// Run-shape options shared by every measuring command (extract, bitmap,
/// array): worker count, per-cell retry budget, containment, fault
/// injection and adaptive ramp scheduling. Parsed in exactly one place so
/// the flags are spelled (and validated) the same way everywhere — a new
/// shared flag like --adaptive/--no-adaptive is defined once, not once per
/// subcommand.
struct CliRunConfig {
  std::size_t jobs = 1;
  int retries = 2;
  bool fail_fast = false;  ///< --fail-fast; default is --keep-going
  double fault_rate = 0.0;
  std::uint64_t fault_seed = 1;
  bool adaptive = false;  ///< --adaptive / --no-adaptive
  /// --solver dense|sparse|auto: linear-solver backend for every circuit
  /// solve of the run. auto picks by system size (dense below the
  /// crossover, sparse at transistor-array scale).
  circuit::SolverConfig solver;
  /// --no-program-cache: compile every netlist program privately instead
  /// of sharing through the process-wide topology cache (the A/B switch
  /// for cache-accounting runs; codes are bit-identical either way).
  bool program_cache = true;
  /// --batch / --batch-width N / --no-batch: lockstep batch width for the
  /// circuit engine (DESIGN.md §14). 0 = auto (lane count picked by the
  /// host's vector ISA), 1 = scalar per-cell measurement, N >= 2 = exactly
  /// N lanes. Codes are bit-identical either way.
  int batch_width = 0;
};

/// `adaptive_default` is per-command: the single-cell `extract` keeps the
/// exhaustive ramp (its printed trace narrates the full staircase) while
/// the transistor-level `array` command defaults the scheduler on.
CliRunConfig run_config_of(const Args& args, bool adaptive_default) {
  CliRunConfig cfg;
  cfg.jobs = jobs_of(args);
  cfg.retries = static_cast<int>(args.integer("retries", 2));
  if (args.flag("keep-going") && args.flag("fail-fast")) {
    throw UsageError("--keep-going and --fail-fast are mutually exclusive");
  }
  cfg.fail_fast = args.flag("fail-fast");
  cfg.fault_rate = args.num("fault-rate", 0.0);
  // A probability: reject anything outside [0,1] (NaN fails both compares).
  if (!(cfg.fault_rate >= 0.0 && cfg.fault_rate <= 1.0)) {
    throw UsageError("--fault-rate must be a probability in [0, 1], got '" +
                     args.str("fault-rate", "") + "'");
  }
  cfg.fault_seed = static_cast<std::uint64_t>(args.num("fault-seed", 1));
  if (args.flag("adaptive") && args.flag("no-adaptive")) {
    throw UsageError("--adaptive and --no-adaptive are mutually exclusive");
  }
  cfg.adaptive = adaptive_default;
  if (args.flag("adaptive")) cfg.adaptive = true;
  if (args.flag("no-adaptive")) cfg.adaptive = false;
  const std::string solver = args.str("solver", "auto");
  if (!circuit::parse_solver_kind(solver, cfg.solver.kind)) {
    throw UsageError("--solver must be dense, sparse or auto (got '" +
                     solver + "')");
  }
  cfg.program_cache = !args.flag("no-program-cache");
  if (args.flag("no-batch") &&
      (args.flag("batch") || args.flag("batch-width"))) {
    throw UsageError("--no-batch and --batch/--batch-width are mutually "
                     "exclusive");
  }
  if (args.flag("no-batch")) {
    cfg.batch_width = 1;
  } else if (args.flag("batch-width")) {
    const long long w = args.integer("batch-width", 0);
    if (w < 2 || w > 64) {
      throw UsageError("--batch-width expects a lane count in [2, 64], got '" +
                       args.str("batch-width", "") + "'");
    }
    cfg.batch_width = static_cast<int>(w);
  }
  // Bare --batch selects the default (auto width); accepted so scripted A/B
  // runs can spell both arms explicitly.
  return cfg;
}

/// Applies the shared run shape to a unified extraction request. `plan`
/// must outlive the extraction (the cell hook borrows it).
void apply_run_config(extraction::ExtractRequest& req, const CliRunConfig& cfg,
                      const fault::CellFaultPlan& plan) {
  req.jobs = cfg.jobs;
  req.robust = true;
  req.retry.max_attempts = cfg.retries;
  req.contain = !cfg.fail_fast;
  req.options.adaptive.enabled = cfg.adaptive;
  req.options.newton.solver = cfg.solver;
  req.share_programs = cfg.program_cache;
  req.batch_width = cfg.batch_width;
  if (cfg.fault_rate > 0.0) req.cell_hook = plan.hook();
}

/// Observability wrapper for the measuring commands (bitmap, extract).
/// Collection is armed only when --metrics-out or --trace-out asks for it,
/// so the default output stays byte-identical run to run and across --jobs
/// (the determinism flows in the verify recipe cmp full stdout; a summary
/// with wall-clock histograms would break them). finish() prints the
/// one-screen summary and writes the requested artifacts.
class ObsSession {
 public:
  explicit ObsSession(const Args& args)
      : metrics_path_(args.str("metrics-out", "")),
        trace_path_(args.str("trace-out", "")) {
    if (!enabled()) return;
    obs::Registry::global().reset();
    obs::set_metrics_enabled(true);
    if (!trace_path_.empty()) obs::start_tracing();
  }

  void finish() {
    if (!enabled()) return;
    if (!trace_path_.empty()) {
      obs::stop_tracing();
      obs::write_trace_json(trace_path_);
      std::printf("\ntrace written to %s (open in chrome://tracing or "
                  "https://ui.perfetto.dev)\n",
                  trace_path_.c_str());
    }
    print_metrics_summary();
    if (!metrics_path_.empty()) {
      obs::write_metrics_json(metrics_path_);
      std::printf("metrics written to %s\n", metrics_path_.c_str());
    }
  }

 private:
  bool enabled() const {
    return !metrics_path_.empty() || !trace_path_.empty();
  }

 private:
  std::string metrics_path_;
  std::string trace_path_;
};

edram::MacroCellSpec spec_of(const Args& args) {
  edram::MacroCellSpec spec;
  spec.rows = static_cast<std::size_t>(args.num("rows", 4));
  spec.cols = static_cast<std::size_t>(args.num("cols", 4));
  return spec;
}

int cmd_abacus(const Args& args) {
  msu::StructureParams p;
  if (args.num("ref-w", 0) > 0) p.ref_w = args.num("ref-w", 0) * 1e-6;
  p.ramp_steps = static_cast<int>(args.num("steps", 20));
  const auto mc =
      edram::MacroCell::uniform(spec_of(args), tech::tech018(), 30_fF);
  const msu::FastModel model(mc, p);
  msu::Abacus ab = msu::Abacus::build(
      [&](double cm) { return model.code_of_cap(cm); }, p.ramp_steps, 1e-15,
      75e-15, 741);
  ab.refine([&](double cm) { return model.code_of_cap(cm); }, 1e-19);

  Table t({"code", "Cm low (fF)", "Cm high (fF)", "accuracy (%)"});
  for (int code = 1; code < p.ramp_steps; ++code) {
    const auto bin = ab.bin(code);
    if (!bin) continue;
    t.add_row({Table::num(static_cast<long long>(code)),
               Table::num(to_unit::fF(bin->lo), 2),
               Table::num(to_unit::fF(bin->hi), 2),
               Table::num(100 * bin->relative_halfwidth(), 1)});
  }
  std::cout << t;
  std::printf("\nwindow %.1f - %.1f fF, mean accuracy %.1f%%\n",
              to_unit::fF(ab.range_lo()), to_unit::fF(ab.range_hi()),
              100 * ab.mean_accuracy(1, p.ramp_steps - 1));
  return 0;
}

int cmd_extract(const Args& args) {
  ObsSession obs_session(args);
  const CliRunConfig cfg = run_config_of(args, /*adaptive_default=*/false);
  const auto r = static_cast<std::size_t>(args.num("row", 0));
  const auto c = static_cast<std::size_t>(args.num("col", 0));
  auto mc = edram::MacroCell::uniform(spec_of(args), tech::tech018(), 30_fF);
  mc.set_true_cap(r, c, args.num("cap", 30.0) * 1e-15);
  const std::string defect = args.str("defect", "");
  if (defect == "short") mc.set_defect(r, c, tech::make_short());
  if (defect == "open") mc.set_defect(r, c, tech::make_open());

  msu::ExtractOptions options;
  options.adaptive.enabled = cfg.adaptive;
  options.newton.solver = cfg.solver;
  if (!cfg.program_cache) options.newton.solver.program_cache = nullptr;
  const auto res = msu::extract_cell(mc, r, c, {}, {}, options);
  std::printf("cell (%zu,%zu): code %d / %d\n", r, c, res.code,
              res.schedule.ramp_steps);
  if (res.status == CellStatus::kRecovered) {
    std::printf("  solver recovery    : succeeded at rung '%s' (%d attempts)\n",
                circuit::recovery_rung_name(res.recovery.succeeded_at).c_str(),
                res.recovery.attempts);
  }
  if (res.adaptive.attempted) {
    if (res.adaptive.used) {
      std::printf("  adaptive search    : %d probe(s), model guess %d\n",
                  res.adaptive.probes, res.adaptive.guess);
    } else {
      std::printf("  adaptive search    : fell back to exhaustive ramp (%s)\n",
                  res.adaptive.fallback_reason.c_str());
    }
  }
  std::printf("  plate after charge : %.3f V\n", res.v_plate_charged);
  std::printf("  V_GS after share   : %.3f V\n", res.vgs_shared);
  if (res.t_out_rise) {
    std::printf("  OUT flip           : %.2f ns\n",
                to_unit::ns(*res.t_out_rise));
  } else {
    std::printf("  OUT did not flip (full-scale)\n");
  }
  std::printf("  transient steps    : %zu\n", res.stats.accepted_steps);
  obs_session.finish();
  return 0;
}

/// Builds the synthetic array the bitmap/array commands measure: process
/// variation (local sigma + optional gradient/drift) plus random defects,
/// all keyed off --seed.
/// The CLI's array flags, as the serve-layer spec both the one-shot
/// commands and the service build arrays from (one body = the served
/// bit-identity contract; see serve/workload.hpp).
serve::ArraySpec array_spec_of(const Args& args, std::size_t default_n) {
  serve::ArraySpec spec;
  spec.rows = static_cast<std::size_t>(
      args.num("rows", static_cast<double>(default_n)));
  spec.cols = static_cast<std::size_t>(
      args.num("cols", static_cast<double>(default_n)));
  spec.seed = static_cast<std::uint64_t>(args.num("seed", 1));
  spec.gradient = args.num("gradient", 0.0);
  spec.drift = args.num("drift", 0.0);
  spec.shorts = args.num("shorts", 0.002);
  spec.opens = args.num("opens", 0.002);
  spec.partials = args.num("partials", 0.005);
  return spec;
}

edram::MacroCell array_of(const Args& args, std::size_t default_n) {
  return serve::build_array(array_spec_of(args, default_n));
}

/// Extraction-health footer shared by bitmap/array: the ok/recovered/
/// unmeasurable summary plus (a bounded list of) per-cell failures.
void print_health(const FailureReport& rep) {
  std::printf("\nextraction health: %s\n", rep.summary().c_str());
  constexpr std::size_t kMaxListed = 16;
  for (std::size_t i = 0; i < rep.failures.size() && i < kMaxListed; ++i) {
    const auto& f = rep.failures[i];
    std::printf("  unmeasurable (%zu,%zu): %s\n", f.row, f.col,
                f.reason.c_str());
  }
  if (rep.failures.size() > kMaxListed) {
    std::printf("  ... and %zu more\n", rep.failures.size() - kMaxListed);
  }
}

int cmd_bitmap(const Args& args) {
  ObsSession obs_session(args);
  const CliRunConfig cfg = run_config_of(args, /*adaptive_default=*/false);
  const edram::MacroCell mc = array_of(args, 32);

  // Codes are bit-identical whatever --jobs says (per-tile RNG streams);
  // the workers only change wall time.
  const fault::CellFaultPlan plan(cfg.fault_rate, cfg.fault_seed);
  extraction::ExtractRequest req;  // fast-model engine, 4x4 tiles
  apply_run_config(req, cfg, plan);
  const extraction::ExtractReport result = extraction::extract(mc, req);
  const auto& analog = result.bitmap;
  std::printf("analog bitmap (codes 0..20):\n%s\n",
              report::render_code_heatmap(analog).c_str());
  const auto sig = bitmap::SignatureMap::categorize(analog);
  std::printf("signatures:\n%s\n", report::render_signature_map(sig).c_str());

  const auto findings = bitmap::diagnose(
      analog, bitmap::make_tiled_disambiguator(mc, {}), std::nullopt);
  std::printf("findings (%zu):\n", findings.size());
  for (const auto& f : findings)
    std::printf("  [%s] %s\n", bitmap::diagnosis_name(f.kind).c_str(),
                f.detail.c_str());

  print_health(result.report);
  obs_session.finish();
  return result.complete() ? kExitOk : kExitDegraded;
}

/// array — transistor-level extraction of every cell, tile by tile, through
/// the unified API's circuit engine. This is the paper's validation flow at
/// array scale; adaptive ramp scheduling defaults on here (codes are
/// bit-identical either way, only the transient-step cost changes).
int cmd_array(const Args& args) {
  ObsSession obs_session(args);
  const CliRunConfig cfg = run_config_of(args, /*adaptive_default=*/true);
  const edram::MacroCell mc = array_of(args, 8);

  const fault::CellFaultPlan plan(cfg.fault_rate, cfg.fault_seed);
  extraction::ExtractRequest req;
  req.engine = extraction::Engine::kCircuit;
  apply_run_config(req, cfg, plan);
  const extraction::ExtractReport result = extraction::extract(mc, req);

  std::printf("analog bitmap (codes 0..20, transistor level):\n%s\n",
              report::render_code_heatmap(result.bitmap).c_str());

  const auto& t = result.telemetry;
  std::printf("measurement cost:\n");
  std::printf("  cells              : %zu\n", t.cells);
  std::printf("  transient steps    : %zu (prefix %zu + conversion %zu)\n",
              t.transient_steps, t.prefix_steps, t.conversion_steps());
  if (cfg.adaptive) {
    std::printf("  adaptive scheduling: %zu cell(s) via probe search "
                "(%zu probes), %zu fallback(s)\n",
                t.adaptive_used, t.adaptive_probes, t.adaptive_fallbacks);
  } else {
    std::printf("  adaptive scheduling: off (exhaustive ramp per cell)\n");
  }

  print_health(result.report);
  obs_session.finish();
  return result.complete() ? kExitOk : kExitDegraded;
}

int cmd_design(const Args& args) {
  const auto mc =
      edram::MacroCell::uniform(spec_of(args), tech::tech018(), 30_fF);
  const msu::StructureParams best = msu::auto_size_structure(mc);
  const msu::DesignPoint d = msu::evaluate_design(mc, best);
  std::printf("auto-sized structure for %zux%zu macro-cell:\n", mc.rows(),
              mc.cols());
  std::printf("  REF            : W = %.1f um, L = %.2f um\n",
              to_unit::um(best.ref_w), to_unit::um(best.ref_l));
  std::printf("  C_REF          : %.1f fF\n", to_unit::fF(d.cref));
  std::printf("  window         : %.1f - %.1f fF\n", to_unit::fF(d.range_lo),
              to_unit::fF(d.range_hi));
  std::printf("  codes used     : %zu\n", d.codes_used);
  std::printf("  mean accuracy  : %.1f %%\n", 100 * d.mean_acc);
  std::printf("  score          : %.3f\n", d.score);
  return 0;
}

int cmd_spice(const Args& args) {
  const auto mc =
      edram::MacroCell::uniform(spec_of(args), tech::tech018(), 30_fF);
  circuit::Circuit ckt;
  const auto arr = edram::build_array(ckt, mc);
  msu::build_structure(ckt, arr.plate, mc.tech(), {});
  circuit::write_spice(ckt, std::cout,
                       "eDRAM macro-cell + measurement structure");
  return 0;
}

/// Strict positive-integer flag for the campaign subcommand: --workers 0,
/// --retries 0 or "--dies -3" exit 1 with a one-line reason instead of
/// being clamped into something runnable.
long long positive_of(const Args& args, const std::string& key,
                      long long fallback) {
  const long long v = args.integer(key, fallback);
  if (v < 1) {
    throw UsageError("--" + key + " must be >= 1 (got " + std::to_string(v) +
                     ")");
  }
  return v;
}

/// Parses the campaign flags shared by `campaign` and the hidden
/// `campaign-worker` (the supervisor serializes them with
/// campaign::worker_args, so both sides must use this one parser).
campaign::CampaignConfig campaign_config_of(const Args& args) {
  campaign::CampaignConfig cfg;
  cfg.space.dies = static_cast<std::uint32_t>(positive_of(args, "dies", 16));
  cfg.space.corners =
      static_cast<std::uint32_t>(positive_of(args, "corners", 5));
  if (cfg.space.corners > 5) {
    throw UsageError("--corners must be in [1, 5] (tech has 5 corners)");
  }
  cfg.space.seeds = static_cast<std::uint32_t>(positive_of(args, "seeds", 2));
  cfg.seed = static_cast<std::uint64_t>(args.integer("seed", 1));
  cfg.rows = static_cast<std::size_t>(positive_of(args, "rows", 8));
  cfg.cols = static_cast<std::size_t>(positive_of(args, "cols", 8));
  if (cfg.rows % 4 != 0 || cfg.cols % 4 != 0) {
    throw UsageError("--rows/--cols must be multiples of the 4x4 tile");
  }
  cfg.noise_sigma_rel = args.num("noise", 0.02);
  cfg.local_sigma_rel = args.num("sigma", 0.02);
  cfg.gradient = args.num("gradient", 0.0);
  cfg.drift = args.num("drift", 0.0);
  cfg.defect_rates.short_rate = args.num("shorts", 0.002);
  cfg.defect_rates.open_rate = args.num("opens", 0.002);
  cfg.defect_rates.partial_rate = args.num("partials", 0.005);
  cfg.defect_rates.bridge_rate = args.num("bridges", 0.0);

  // --workers (alias --jobs for symmetry with the other commands): strict,
  // >= 1; a campaign worker is a subprocess, so 0 has no "hardware
  // threads" meaning here.
  const std::string wkey = args.flag("workers") ? "workers" : "jobs";
  cfg.workers = static_cast<int>(
      std::min<long long>(positive_of(args, wkey, 1), 512));
  cfg.retries = static_cast<int>(positive_of(args, "retries", 2));
  cfg.unit_timeout_ms =
      static_cast<int>(positive_of(args, "unit-timeout-ms", 30000));
  cfg.unit_delay_ms =
      static_cast<int>(args.integer("unit-delay-ms", 0));
  if (cfg.unit_delay_ms < 0) {
    throw UsageError("--unit-delay-ms must be >= 0");
  }
  cfg.hang_unit = static_cast<std::uint64_t>(
      args.integer("hang-unit", static_cast<long long>(-1)));
  cfg.crash_rate = args.num("fault-rate", 0.0);
  if (!(cfg.crash_rate >= 0.0 && cfg.crash_rate <= 1.0)) {
    throw UsageError("--fault-rate must be a probability in [0, 1], got '" +
                     args.str("fault-rate", "") + "'");
  }
  cfg.crash_seed = static_cast<std::uint64_t>(args.integer("fault-seed", 1));
  cfg.dir = args.str("dir", "");
  cfg.resume = args.flag("resume");
  return cfg;
}

/// campaign — run (or --resume) a wafer-scale measurement campaign:
/// journaled result store, sharded worker subprocesses, kill-resume
/// recovery (DESIGN.md §12).
int cmd_campaign(const Args& args) {
  ObsSession obs_session(args);
  campaign::CampaignConfig cfg = campaign_config_of(args);
  if (cfg.dir.empty()) {
    throw UsageError("campaign needs --dir DIR (store, manifest, worker "
                     "logs live there)");
  }
  // Workers run as fork+exec of this binary so a worker crash — including
  // an OOM-kill or sanitizer abort — can never take the supervisor's
  // address space with it. Fall back to plain fork when /proc/self/exe is
  // unreadable (exotic mounts); isolation is the same, only exec hygiene
  // differs.
  char self[4096];
  const ssize_t n = ::readlink("/proc/self/exe", self, sizeof self - 1);
  if (n > 0 && !args.flag("fork-workers")) {
    self[n] = '\0';
    cfg.exec_self = true;
    cfg.self_path = self;
  }

  const campaign::CampaignResult res = campaign::run_campaign(cfg);
  const campaign::CampaignSummary& s = res.summary;

  std::printf("campaign %s: %llu/%llu units done\n",
              s.complete() ? (s.degraded() ? "complete (degraded)"
                                           : "complete")
                           : "interrupted (resumable)",
              static_cast<unsigned long long>(s.units_done),
              static_cast<unsigned long long>(s.units_total));
  std::printf(
      "  this run: %llu ok, %llu retried, %llu failed; workers: %llu "
      "spawned, %llu crashed, %llu timed out\n",
      static_cast<unsigned long long>(s.units_ok),
      static_cast<unsigned long long>(s.units_retried),
      static_cast<unsigned long long>(s.units_failed),
      static_cast<unsigned long long>(s.workers_spawned),
      static_cast<unsigned long long>(s.worker_crashes),
      static_cast<unsigned long long>(s.worker_timeouts));
  if (cfg.resume) {
    std::printf(
        "  resume replay: %llu records recovered, %llu uncommitted "
        "dropped, %llu torn bytes, %llu quarantined frames\n",
        static_cast<unsigned long long>(s.replay.committed_records),
        static_cast<unsigned long long>(s.replay.dropped_records),
        static_cast<unsigned long long>(s.replay.dropped_tail_bytes),
        static_cast<unsigned long long>(s.replay.quarantined_frames));
  }
  for (const auto& f : s.failures) {
    std::printf("  failed unit %llu after %d attempts: %s (log: %s)\n",
                static_cast<unsigned long long>(f.unit), f.attempts,
                f.reason.c_str(), f.worker_log.c_str());
  }
  std::printf("  store: %s\n  manifest: %s\n", res.store_path.c_str(),
              res.manifest_path.c_str());
  if (!res.compact_path.empty()) {
    std::printf("  compact: %s\n", res.compact_path.c_str());
  }

  if (!res.records.empty()) {
    std::printf("\ncorner drift / code-histogram stability:\n");
    // Prefer the compacted columnar image (mmap'd, CRC-verified end to
    // end) — the out-of-core aggregate path. The in-memory records are
    // the fallback when no compact was written (interrupted campaign) or
    // the file fails verification.
    bool reported = false;
    if (!res.compact_path.empty()) {
      try {
        const auto reader = campaign::CompactReader::open(res.compact_path);
        campaign::print_campaign_report(reader.records(), reader.space());
        reported = true;
      } catch (const std::exception& e) {
        std::fprintf(stderr, "warning: compact unreadable (%s); reporting "
                     "from the journal instead\n", e.what());
      }
    }
    if (!reported) campaign::print_campaign_report(res.records, cfg.space);
  }
  obs_session.finish();
  return s.degraded() ? kExitDegraded : kExitOk;
}

/// campaign-worker — hidden: the supervisor's fork+exec target. Speaks the
/// stdin/--result-fd protocol; never run it by hand.
int cmd_campaign_worker(const Args& args) {
  const campaign::CampaignConfig cfg = campaign_config_of(args);
  const int result_fd = static_cast<int>(args.integer("result-fd", -1));
  if (result_fd < 0) {
    throw UsageError("campaign-worker needs --result-fd (spawned by "
                     "`campaign`, not run directly)");
  }
  return campaign::run_worker_loop(cfg, STDIN_FILENO, result_fd);
}

/// SIGINT/SIGTERM → graceful drain (finish accepted work, refuse new).
volatile std::sig_atomic_t g_serve_drain = 0;

void serve_signal_handler(int) { g_serve_drain = 1; }

serve::ExtractSpec extract_spec_of(const Args& args) {
  serve::ExtractSpec spec;
  const serve::ArraySpec arr = array_spec_of(args, 8);
  spec.rows = static_cast<std::uint32_t>(arr.rows);
  spec.cols = static_cast<std::uint32_t>(arr.cols);
  spec.seed = arr.seed;
  spec.gradient = arr.gradient;
  spec.drift = arr.drift;
  spec.shorts = arr.shorts;
  spec.opens = arr.opens;
  spec.partials = arr.partials;

  const std::string engine = args.str("engine", "fast");
  if (engine == "fast") {
    spec.engine = 0;
  } else if (engine == "circuit") {
    spec.engine = 1;
  } else {
    throw UsageError("unknown --engine '" + engine + "' (want fast|circuit)");
  }
  spec.tile_rows = static_cast<std::uint32_t>(args.num("tile-rows", 0));
  spec.tile_cols = static_cast<std::uint32_t>(args.num("tile-cols", 0));
  spec.adaptive = args.flag("no-adaptive") ? 0 : 1;
  circuit::SolverKind kind = circuit::SolverKind::kAuto;
  const std::string solver = args.str("solver", "auto");
  if (!circuit::parse_solver_kind(solver, kind)) {
    throw UsageError("unknown --solver '" + solver +
                     "' (want dense|sparse|auto)");
  }
  spec.solver = static_cast<std::uint32_t>(kind);
  spec.retries = static_cast<std::uint32_t>(args.integer("retries", 2));
  // Same spelling as the one-shot run shape: --no-batch pins scalar,
  // --batch-width pins a lane count, the default lets the server pick by
  // its own vector ISA (the server's, not this client's).
  if (args.flag("no-batch") &&
      (args.flag("batch") || args.flag("batch-width"))) {
    throw UsageError("--no-batch and --batch/--batch-width are mutually "
                     "exclusive");
  }
  if (args.flag("no-batch")) {
    spec.batch = 1;
  } else if (args.flag("batch-width")) {
    const long long w = args.integer("batch-width", 0);
    if (w < 2 || w > 64) {
      throw UsageError("--batch-width expects a lane count in [2, 64], got '" +
                       args.str("batch-width", "") + "'");
    }
    spec.batch = static_cast<std::uint32_t>(w);
  }
  spec.want_progress = args.flag("progress") ? 1 : 0;
  spec.deadline_ms = static_cast<std::uint32_t>(args.num("deadline-ms", 0));
  return spec;
}

/// serve — run the long-lived extraction service on a Unix-domain socket.
int cmd_serve(const Args& args) {
  const std::string socket_path = args.str("socket", "");
  if (socket_path.empty()) {
    throw UsageError("serve needs --socket PATH (Unix-domain socket to "
                     "listen on)");
  }
  serve::ServerConfig cfg;
  cfg.socket_path = socket_path;
  cfg.queue_capacity = static_cast<std::size_t>(args.num("queue-cap", 64));
  cfg.dispatchers = static_cast<std::size_t>(args.num("dispatchers", 1));
  cfg.jobs = jobs_of(args);

  // A service always exports /metrics; tracing is opt-in (ring buffer
  // memory) and drained through the /trace request, not a file.
  obs::Registry::global().reset();
  obs::set_metrics_enabled(true);
  if (args.flag("trace")) obs::start_tracing();

  serve::Server server(cfg);
  server.start();
  std::printf("ecms_tool serve: listening on %s (queue %zu, dispatchers "
              "%zu, jobs %zu)\n",
              socket_path.c_str(), cfg.queue_capacity, cfg.dispatchers,
              cfg.jobs);
  std::fflush(stdout);

  struct sigaction sa{};
  sa.sa_handler = serve_signal_handler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // no SA_RESTART: let blocking calls wake for the drain
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);

  while (g_serve_drain == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  std::printf("ecms_tool serve: draining (accepted work finishes, new "
              "requests are refused)\n");
  std::fflush(stdout);
  server.begin_drain();
  server.wait_drained();
  server.stop();
  std::printf("ecms_tool serve: drained; %llu accepted, %llu completed, "
              "%llu failed\n",
              static_cast<unsigned long long>(server.accepted()),
              static_cast<unsigned long long>(server.completed()),
              static_cast<unsigned long long>(server.failed()));
  return kExitOk;
}

/// client — submit requests to a running `serve` daemon.
int cmd_client(const Args& args) {
  const std::string socket_path = args.str("socket", "");
  if (socket_path.empty()) {
    throw UsageError("client needs --socket PATH (the daemon's socket)");
  }
  serve::Client client;
  std::string error;
  if (!client.connect(socket_path, &error)) {
    std::fprintf(stderr, "error: connect %s: %s\n", socket_path.c_str(),
                 error.c_str());
    return kExitFailure;
  }

  if (args.flag("metrics") || args.flag("trace")) {
    std::string json;
    const bool ok = args.flag("metrics") ? client.metrics(&json, &error)
                                         : client.trace(&json, &error);
    if (!ok) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return kExitFailure;
    }
    std::printf("%s\n", json.c_str());
    return kExitOk;
  }

  if (args.flag("calibrate")) {
    serve::CalibrateSpec spec;
    spec.request_id = 1;
    spec.rows = static_cast<std::uint32_t>(args.num("rows", 4));
    spec.cols = static_cast<std::uint32_t>(args.num("cols", 4));
    spec.ramp_steps = static_cast<std::uint32_t>(args.num("steps", 20));
    spec.points = static_cast<std::uint32_t>(args.num("points", 741));
    serve::CalibrateInfo info{};
    if (!client.calibrate(spec, &info, &error)) {
      std::fprintf(stderr, "error: calibrate: %s\n", error.c_str());
      return kExitFailure;
    }
    std::printf("calibration %s: window [%.3g, %.3g] F, %u codes used, "
                "mean accuracy %.4g F/code\n",
                info.cache_hit != 0 ? "(warm cache hit)" : "(built)",
                info.range_lo, info.range_hi, info.codes_used,
                info.mean_accuracy);
    return kExitOk;
  }

  // Extraction mode: submit --count requests, then await each. The ids
  // are local to this session, so concurrent clients never collide.
  const auto count =
      static_cast<std::uint64_t>(std::max<long long>(1, args.integer("count", 1)));
  serve::ExtractSpec spec = extract_spec_of(args);
  bool any_failed = false;
  std::vector<std::uint64_t> accepted;
  accepted.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t id = 1; id <= count; ++id) {
    spec.request_id = id;
    const serve::Client::Submission sub = client.submit(spec);
    if (!sub.accepted) {
      // Rejected ids never get a result frame — don't await them.
      any_failed = true;
      std::fprintf(stderr,
                   "request %llu rejected: %s (retry after %u ms)\n",
                   static_cast<unsigned long long>(id), sub.reason.c_str(),
                   sub.retry_after_ms);
      continue;
    }
    accepted.push_back(id);
  }

  bool any_unmeasurable = false;
  std::function<void(const serve::Progress&)> on_progress;
  if (spec.want_progress != 0) {
    on_progress = [](const serve::Progress& p) {
      std::printf("  tile %u/%u\n", p.tiles_done, p.tiles_total);
    };
  }
  for (const std::uint64_t id : accepted) {
    const serve::Client::Result res = client.await_result(id, on_progress);
    if (!res.ok) {
      std::fprintf(stderr, "request %llu failed: %s\n",
                   static_cast<unsigned long long>(id), res.error.c_str());
      any_failed = true;
      continue;
    }
    std::printf("request %llu: %ux%u, %u ok, %u recovered, %u "
                "unmeasurable, code hash %016llx\n",
                static_cast<unsigned long long>(id), res.info.rows,
                res.info.cols, res.info.ok, res.info.recovered,
                res.info.unmeasurable,
                static_cast<unsigned long long>(res.info.code_hash));
    if (res.info.unmeasurable > 0) any_unmeasurable = true;
  }
  if (any_failed) return kExitFailure;
  return any_unmeasurable ? kExitDegraded : kExitOk;
}

/// Build/runtime capability report: which batched-kernel ISA backend the
/// dispatcher resolved on this host, what batch_width = auto means here,
/// and whether a forced-scalar override is in effect. The serve protocol
/// version rides along so client/daemon pairings can be checked by eye.
int cmd_version(const Args&) {
  std::printf("ecms_tool — eDRAM capacitor measurement structure\n");
  std::printf("  simd kernels     %s\n", circuit::kernels::isa_summary());
  std::printf("  vector backend   %s\n",
              circuit::kernels::vector_available() ? "available" : "absent");
  std::printf("  batch auto width %zu lanes\n",
              circuit::kernels::preferred_width());
  std::printf("  scalar override  %s\n",
              circuit::kernels::force_scalar()
                  ? "on (ECMS_FORCE_SCALAR_KERNELS)"
                  : "off");
  std::printf("  serve protocol   v%u\n",
              static_cast<unsigned>(serve::kProtocolVersion));
  return kExitOk;
}

int usage() {
  std::fprintf(stderr, "%s",
      "usage: ecms_tool <command> [--option value ...]\n"
      "\n"
      "commands:\n"
      "  abacus   print the code -> capacitance conversion table\n"
      "           --rows N --cols N --ref-w UM --steps N\n"
      "  extract  measure one cell through the full transient flow\n"
      "           --rows N --cols N --row R --col C --cap FF\n"
      "           --defect short|open\n"
      "  bitmap   extract every cell (fast model), render heatmap +\n"
      "           diagnosis\n"
      "           --rows N --cols N --seed S --gradient G --drift D\n"
      "           --shorts R --opens R --partials R\n"
      "  array    extract every cell at transistor level (circuit engine,\n"
      "           one transient per cell; adaptive scheduling on by\n"
      "           default), render heatmap + measurement cost\n"
      "           same array flags as bitmap (default 8x8)\n"
      "  design   auto-size the measurement structure for the array\n"
      "           --rows N --cols N\n"
      "  spice    dump the array + structure netlist as SPICE\n"
      "           --rows N --cols N\n"
      "  campaign run a wafer-scale (die x corner x seed) measurement\n"
      "           campaign: journaled crash-safe result store, worker\n"
      "           subprocesses, kill-resume recovery; prints the\n"
      "           corner-drift / histogram-stability report\n"
      "           --dir DIR (required) --resume\n"
      "           --dies N --corners N --seeds N --seed S\n"
      "           --rows N --cols N --noise S --sigma S\n"
      "           --gradient G --drift D --shorts R --opens R\n"
      "           --partials R --bridges R\n"
      "           --workers N (strict, >= 1) --retries N (strict, >= 1)\n"
      "           --unit-timeout-ms MS --unit-delay-ms MS\n"
      "           --fault-rate P --fault-seed S (inject worker crashes)\n"
      "  serve    run the long-lived extraction service: Unix-socket\n"
      "           daemon, admission-controlled request queue, shared\n"
      "           program/calibration warm caches; SIGINT/SIGTERM drain\n"
      "           gracefully (accepted work finishes, zero loss)\n"
      "           --socket PATH (required) --queue-cap N (default 64)\n"
      "           --dispatchers N (concurrent requests, default 1)\n"
      "           --jobs N (tile workers per dispatcher) --trace\n"
      "  client   talk to a running serve daemon\n"
      "           --socket PATH (required)\n"
      "           extract mode (default): array flags as bitmap, plus\n"
      "           --engine fast|circuit --tile-rows N --tile-cols N\n"
      "           --count N (submit N pipelined requests) --progress\n"
      "           --deadline-ms MS --retries N --no-adaptive --solver K\n"
      "           --batch | --batch-width N | --no-batch\n"
      "           --metrics | --trace   print the server's JSON export\n"
      "           --calibrate [--rows N --cols N --steps N --points N]\n"
      "  version  report the batched-kernel ISA dispatch on this host\n"
      "           (active backend, auto lane width, scalar override) and\n"
      "           the serve protocol version\n"
      "\n"
      "run shape (extract, bitmap, array — parsed once, same everywhere):\n"
      "  --jobs N        worker threads (default 1; 0 = one per hardware\n"
      "                  thread; clamped to 512)\n"
      "  --retries N     per-cell solve attempts (default 2)\n"
      "  --keep-going    contain per-cell failures, finish the array\n"
      "                  (default; excludes --fail-fast)\n"
      "  --fail-fast     abort on the first unmeasurable cell\n"
      "  --fault-rate P  inject transient solver faults with\n"
      "                  probability P per cell (testing aid)\n"
      "  --fault-seed S  RNG seed for --fault-rate (default 1)\n"
      "  --adaptive      adaptive ramp scheduling: checkpoint after the\n"
      "                  charge/share prefix, probe-search the flip code\n"
      "                  (circuit engine; codes identical, fewer steps;\n"
      "                  default on for array, off for extract)\n"
      "  --no-adaptive   force the exhaustive linear ramp\n"
      "  --solver K      linear-solver backend: dense|sparse|auto\n"
      "                  (default auto: dense for small systems, sparse\n"
      "                  Markowitz LU with pattern reuse at array scale;\n"
      "                  extraction codes are identical across backends)\n"
      "  --no-program-cache  compile sparse netlist programs privately\n"
      "                  instead of sharing the process-wide topology\n"
      "                  cache (A/B switch for cache accounting; codes\n"
      "                  are bit-identical either way)\n"
      "  --batch         lockstep batched cell simulation, auto lane\n"
      "                  width from the host's vector ISA (the default\n"
      "                  for the circuit engine; spelled out for A/B\n"
      "                  runs against --no-batch)\n"
      "  --batch-width N exactly N lockstep lanes (2..64)\n"
      "  --no-batch      scalar per-cell measurement; codes are\n"
      "                  bit-identical to every batched shape\n"
      "\n"
      "observability (extract, bitmap, array; either flag also prints a\n"
      "summary table; default runs stay uninstrumented and deterministic):\n"
      "  --metrics-out FILE  write counters/gauges/histograms as JSON\n"
      "  --trace-out FILE    collect spans, write Chrome trace_event JSON\n"
      "                      (open in chrome://tracing or ui.perfetto.dev)\n"
      "\n"
      "global:\n"
      "  --log-level L       debug|info|warn|error|off (default warn)\n"
      "\n"
      "exit codes:\n"
      "  0  success, every cell measured\n"
      "  1  usage error (bad command line)\n"
      "  2  runtime failure (extraction aborted, --fail-fast hit, ...)\n"
      "  3  degraded success: run completed, some cells unmeasurable\n"
      "     (the per-cell failure report lists them); for campaign:\n"
      "     finished or drained with failed units / crashes / timeouts /\n"
      "     retries — resumable, never aborted\n");
  return kExitUsage;
}

}  // namespace

int main(int argc, char** argv) {
  // A dead peer must surface as EPIPE from write(), never as a
  // process-killing SIGPIPE — the serve daemon outlives any one client,
  // and one-shot commands piped to `head` shouldn't die mid-report either.
  ::signal(SIGPIPE, SIG_IGN);
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    const Args args(argc, argv, 2);
    const std::string level = args.str("log-level", "");
    if (!level.empty()) {
      LogLevel parsed;
      if (!parse_log_level(level, parsed)) {
        throw UsageError("unknown --log-level '" + level +
                         "' (want debug|info|warn|error|off)");
      }
      set_log_level(parsed);
    }
    if (cmd == "abacus") return cmd_abacus(args);
    if (cmd == "extract") return cmd_extract(args);
    if (cmd == "bitmap") return cmd_bitmap(args);
    if (cmd == "array") return cmd_array(args);
    if (cmd == "design") return cmd_design(args);
    if (cmd == "spice") return cmd_spice(args);
    if (cmd == "campaign") return cmd_campaign(args);
    if (cmd == "campaign-worker") return cmd_campaign_worker(args);
    if (cmd == "serve") return cmd_serve(args);
    if (cmd == "client") return cmd_client(args);
    if (cmd == "version" || cmd == "--version") return cmd_version(args);
    return usage();
  } catch (const UsageError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return kExitUsage;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return kExitFailure;
  }
}
