file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_cref.dir/bench_ablation_cref.cpp.o"
  "CMakeFiles/bench_ablation_cref.dir/bench_ablation_cref.cpp.o.d"
  "bench_ablation_cref"
  "bench_ablation_cref.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_cref.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
