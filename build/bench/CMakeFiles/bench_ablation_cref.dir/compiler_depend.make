# Empty compiler generated dependencies file for bench_ablation_cref.
# This may be replaced when dependencies are built.
