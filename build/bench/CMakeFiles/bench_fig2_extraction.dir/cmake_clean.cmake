file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_extraction.dir/bench_fig2_extraction.cpp.o"
  "CMakeFiles/bench_fig2_extraction.dir/bench_fig2_extraction.cpp.o.d"
  "bench_fig2_extraction"
  "bench_fig2_extraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_extraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
