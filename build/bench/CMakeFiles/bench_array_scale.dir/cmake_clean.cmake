file(REMOVE_RECURSE
  "CMakeFiles/bench_array_scale.dir/bench_array_scale.cpp.o"
  "CMakeFiles/bench_array_scale.dir/bench_array_scale.cpp.o.d"
  "bench_array_scale"
  "bench_array_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_array_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
