# Empty dependencies file for bench_array_scale.
# This may be replaced when dependencies are built.
