file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_ramp.dir/bench_ablation_ramp.cpp.o"
  "CMakeFiles/bench_ablation_ramp.dir/bench_ablation_ramp.cpp.o.d"
  "bench_ablation_ramp"
  "bench_ablation_ramp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_ramp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
