file(REMOVE_RECURSE
  "CMakeFiles/bench_bisr.dir/bench_bisr.cpp.o"
  "CMakeFiles/bench_bisr.dir/bench_bisr.cpp.o.d"
  "bench_bisr"
  "bench_bisr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bisr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
