# Empty compiler generated dependencies file for bench_bisr.
# This may be replaced when dependencies are built.
