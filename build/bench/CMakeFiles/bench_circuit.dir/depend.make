# Empty dependencies file for bench_circuit.
# This may be replaced when dependencies are built.
