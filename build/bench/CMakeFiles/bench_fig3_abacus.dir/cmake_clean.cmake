file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_abacus.dir/bench_fig3_abacus.cpp.o"
  "CMakeFiles/bench_fig3_abacus.dir/bench_fig3_abacus.cpp.o.d"
  "bench_fig3_abacus"
  "bench_fig3_abacus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_abacus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
