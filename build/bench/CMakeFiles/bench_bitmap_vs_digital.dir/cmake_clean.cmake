file(REMOVE_RECURSE
  "CMakeFiles/bench_bitmap_vs_digital.dir/bench_bitmap_vs_digital.cpp.o"
  "CMakeFiles/bench_bitmap_vs_digital.dir/bench_bitmap_vs_digital.cpp.o.d"
  "bench_bitmap_vs_digital"
  "bench_bitmap_vs_digital.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bitmap_vs_digital.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
