# Empty dependencies file for bench_bitmap_vs_digital.
# This may be replaced when dependencies are built.
