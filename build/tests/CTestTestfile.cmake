# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_tests[1]_include.cmake")
include("/root/repo/build/tests/circuit_tests[1]_include.cmake")
include("/root/repo/build/tests/tech_tests[1]_include.cmake")
include("/root/repo/build/tests/edram_tests[1]_include.cmake")
include("/root/repo/build/tests/msu_tests[1]_include.cmake")
include("/root/repo/build/tests/bitmap_tests[1]_include.cmake")
include("/root/repo/build/tests/march_tests[1]_include.cmake")
include("/root/repo/build/tests/bisr_tests[1]_include.cmake")
include("/root/repo/build/tests/report_tests[1]_include.cmake")
include("/root/repo/build/tests/integration_tests[1]_include.cmake")
