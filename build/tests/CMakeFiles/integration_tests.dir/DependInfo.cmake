
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration/test_ac_offset.cpp" "tests/CMakeFiles/integration_tests.dir/integration/test_ac_offset.cpp.o" "gcc" "tests/CMakeFiles/integration_tests.dir/integration/test_ac_offset.cpp.o.d"
  "/root/repo/tests/integration/test_crossvalidation.cpp" "tests/CMakeFiles/integration_tests.dir/integration/test_crossvalidation.cpp.o" "gcc" "tests/CMakeFiles/integration_tests.dir/integration/test_crossvalidation.cpp.o.d"
  "/root/repo/tests/integration/test_extract_all.cpp" "tests/CMakeFiles/integration_tests.dir/integration/test_extract_all.cpp.o" "gcc" "tests/CMakeFiles/integration_tests.dir/integration/test_extract_all.cpp.o.d"
  "/root/repo/tests/integration/test_extraction.cpp" "tests/CMakeFiles/integration_tests.dir/integration/test_extraction.cpp.o" "gcc" "tests/CMakeFiles/integration_tests.dir/integration/test_extraction.cpp.o.d"
  "/root/repo/tests/integration/test_pipeline.cpp" "tests/CMakeFiles/integration_tests.dir/integration/test_pipeline.cpp.o" "gcc" "tests/CMakeFiles/integration_tests.dir/integration/test_pipeline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/msu/CMakeFiles/ecms_msu.dir/DependInfo.cmake"
  "/root/repo/build/src/bitmap/CMakeFiles/ecms_bitmap.dir/DependInfo.cmake"
  "/root/repo/build/src/march/CMakeFiles/ecms_march.dir/DependInfo.cmake"
  "/root/repo/build/src/bisr/CMakeFiles/ecms_bisr.dir/DependInfo.cmake"
  "/root/repo/build/src/report/CMakeFiles/ecms_report.dir/DependInfo.cmake"
  "/root/repo/build/src/edram/CMakeFiles/ecms_edram.dir/DependInfo.cmake"
  "/root/repo/build/src/tech/CMakeFiles/ecms_tech.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/ecms_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ecms_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
