file(REMOVE_RECURSE
  "CMakeFiles/march_tests.dir/march/test_element.cpp.o"
  "CMakeFiles/march_tests.dir/march/test_element.cpp.o.d"
  "CMakeFiles/march_tests.dir/march/test_faults.cpp.o"
  "CMakeFiles/march_tests.dir/march/test_faults.cpp.o.d"
  "CMakeFiles/march_tests.dir/march/test_runner_edram.cpp.o"
  "CMakeFiles/march_tests.dir/march/test_runner_edram.cpp.o.d"
  "march_tests"
  "march_tests.pdb"
  "march_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/march_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
