# Empty compiler generated dependencies file for march_tests.
# This may be replaced when dependencies are built.
