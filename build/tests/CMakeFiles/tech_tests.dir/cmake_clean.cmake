file(REMOVE_RECURSE
  "CMakeFiles/tech_tests.dir/tech/test_capmodel.cpp.o"
  "CMakeFiles/tech_tests.dir/tech/test_capmodel.cpp.o.d"
  "CMakeFiles/tech_tests.dir/tech/test_corners.cpp.o"
  "CMakeFiles/tech_tests.dir/tech/test_corners.cpp.o.d"
  "CMakeFiles/tech_tests.dir/tech/test_defects.cpp.o"
  "CMakeFiles/tech_tests.dir/tech/test_defects.cpp.o.d"
  "CMakeFiles/tech_tests.dir/tech/test_tech.cpp.o"
  "CMakeFiles/tech_tests.dir/tech/test_tech.cpp.o.d"
  "tech_tests"
  "tech_tests.pdb"
  "tech_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tech_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
