
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/tech/test_capmodel.cpp" "tests/CMakeFiles/tech_tests.dir/tech/test_capmodel.cpp.o" "gcc" "tests/CMakeFiles/tech_tests.dir/tech/test_capmodel.cpp.o.d"
  "/root/repo/tests/tech/test_corners.cpp" "tests/CMakeFiles/tech_tests.dir/tech/test_corners.cpp.o" "gcc" "tests/CMakeFiles/tech_tests.dir/tech/test_corners.cpp.o.d"
  "/root/repo/tests/tech/test_defects.cpp" "tests/CMakeFiles/tech_tests.dir/tech/test_defects.cpp.o" "gcc" "tests/CMakeFiles/tech_tests.dir/tech/test_defects.cpp.o.d"
  "/root/repo/tests/tech/test_tech.cpp" "tests/CMakeFiles/tech_tests.dir/tech/test_tech.cpp.o" "gcc" "tests/CMakeFiles/tech_tests.dir/tech/test_tech.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tech/CMakeFiles/ecms_tech.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/ecms_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ecms_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
