# Empty dependencies file for tech_tests.
# This may be replaced when dependencies are built.
