file(REMOVE_RECURSE
  "CMakeFiles/bisr_tests.dir/bisr/test_allocator.cpp.o"
  "CMakeFiles/bisr_tests.dir/bisr/test_allocator.cpp.o.d"
  "CMakeFiles/bisr_tests.dir/bisr/test_yield.cpp.o"
  "CMakeFiles/bisr_tests.dir/bisr/test_yield.cpp.o.d"
  "bisr_tests"
  "bisr_tests.pdb"
  "bisr_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bisr_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
