# Empty compiler generated dependencies file for bisr_tests.
# This may be replaced when dependencies are built.
