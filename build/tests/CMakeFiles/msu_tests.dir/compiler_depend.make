# Empty compiler generated dependencies file for msu_tests.
# This may be replaced when dependencies are built.
