file(REMOVE_RECURSE
  "CMakeFiles/msu_tests.dir/msu/test_abacus.cpp.o"
  "CMakeFiles/msu_tests.dir/msu/test_abacus.cpp.o.d"
  "CMakeFiles/msu_tests.dir/msu/test_designer.cpp.o"
  "CMakeFiles/msu_tests.dir/msu/test_designer.cpp.o.d"
  "CMakeFiles/msu_tests.dir/msu/test_disambig.cpp.o"
  "CMakeFiles/msu_tests.dir/msu/test_disambig.cpp.o.d"
  "CMakeFiles/msu_tests.dir/msu/test_fastmodel.cpp.o"
  "CMakeFiles/msu_tests.dir/msu/test_fastmodel.cpp.o.d"
  "CMakeFiles/msu_tests.dir/msu/test_sequencer.cpp.o"
  "CMakeFiles/msu_tests.dir/msu/test_sequencer.cpp.o.d"
  "CMakeFiles/msu_tests.dir/msu/test_structure.cpp.o"
  "CMakeFiles/msu_tests.dir/msu/test_structure.cpp.o.d"
  "msu_tests"
  "msu_tests.pdb"
  "msu_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msu_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
