
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/msu/test_abacus.cpp" "tests/CMakeFiles/msu_tests.dir/msu/test_abacus.cpp.o" "gcc" "tests/CMakeFiles/msu_tests.dir/msu/test_abacus.cpp.o.d"
  "/root/repo/tests/msu/test_designer.cpp" "tests/CMakeFiles/msu_tests.dir/msu/test_designer.cpp.o" "gcc" "tests/CMakeFiles/msu_tests.dir/msu/test_designer.cpp.o.d"
  "/root/repo/tests/msu/test_disambig.cpp" "tests/CMakeFiles/msu_tests.dir/msu/test_disambig.cpp.o" "gcc" "tests/CMakeFiles/msu_tests.dir/msu/test_disambig.cpp.o.d"
  "/root/repo/tests/msu/test_fastmodel.cpp" "tests/CMakeFiles/msu_tests.dir/msu/test_fastmodel.cpp.o" "gcc" "tests/CMakeFiles/msu_tests.dir/msu/test_fastmodel.cpp.o.d"
  "/root/repo/tests/msu/test_sequencer.cpp" "tests/CMakeFiles/msu_tests.dir/msu/test_sequencer.cpp.o" "gcc" "tests/CMakeFiles/msu_tests.dir/msu/test_sequencer.cpp.o.d"
  "/root/repo/tests/msu/test_structure.cpp" "tests/CMakeFiles/msu_tests.dir/msu/test_structure.cpp.o" "gcc" "tests/CMakeFiles/msu_tests.dir/msu/test_structure.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/msu/CMakeFiles/ecms_msu.dir/DependInfo.cmake"
  "/root/repo/build/src/edram/CMakeFiles/ecms_edram.dir/DependInfo.cmake"
  "/root/repo/build/src/tech/CMakeFiles/ecms_tech.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/ecms_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ecms_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
