file(REMOVE_RECURSE
  "CMakeFiles/util_tests.dir/util/test_plot.cpp.o"
  "CMakeFiles/util_tests.dir/util/test_plot.cpp.o.d"
  "CMakeFiles/util_tests.dir/util/test_rng.cpp.o"
  "CMakeFiles/util_tests.dir/util/test_rng.cpp.o.d"
  "CMakeFiles/util_tests.dir/util/test_stats.cpp.o"
  "CMakeFiles/util_tests.dir/util/test_stats.cpp.o.d"
  "CMakeFiles/util_tests.dir/util/test_table.cpp.o"
  "CMakeFiles/util_tests.dir/util/test_table.cpp.o.d"
  "CMakeFiles/util_tests.dir/util/test_units.cpp.o"
  "CMakeFiles/util_tests.dir/util/test_units.cpp.o.d"
  "util_tests"
  "util_tests.pdb"
  "util_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
