
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/edram/test_addressing.cpp" "tests/CMakeFiles/edram_tests.dir/edram/test_addressing.cpp.o" "gcc" "tests/CMakeFiles/edram_tests.dir/edram/test_addressing.cpp.o.d"
  "/root/repo/tests/edram/test_behavioral.cpp" "tests/CMakeFiles/edram_tests.dir/edram/test_behavioral.cpp.o" "gcc" "tests/CMakeFiles/edram_tests.dir/edram/test_behavioral.cpp.o.d"
  "/root/repo/tests/edram/test_macrocell.cpp" "tests/CMakeFiles/edram_tests.dir/edram/test_macrocell.cpp.o" "gcc" "tests/CMakeFiles/edram_tests.dir/edram/test_macrocell.cpp.o.d"
  "/root/repo/tests/edram/test_netlister.cpp" "tests/CMakeFiles/edram_tests.dir/edram/test_netlister.cpp.o" "gcc" "tests/CMakeFiles/edram_tests.dir/edram/test_netlister.cpp.o.d"
  "/root/repo/tests/edram/test_retention.cpp" "tests/CMakeFiles/edram_tests.dir/edram/test_retention.cpp.o" "gcc" "tests/CMakeFiles/edram_tests.dir/edram/test_retention.cpp.o.d"
  "/root/repo/tests/edram/test_tiling.cpp" "tests/CMakeFiles/edram_tests.dir/edram/test_tiling.cpp.o" "gcc" "tests/CMakeFiles/edram_tests.dir/edram/test_tiling.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/edram/CMakeFiles/ecms_edram.dir/DependInfo.cmake"
  "/root/repo/build/src/tech/CMakeFiles/ecms_tech.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/ecms_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ecms_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
