file(REMOVE_RECURSE
  "CMakeFiles/edram_tests.dir/edram/test_addressing.cpp.o"
  "CMakeFiles/edram_tests.dir/edram/test_addressing.cpp.o.d"
  "CMakeFiles/edram_tests.dir/edram/test_behavioral.cpp.o"
  "CMakeFiles/edram_tests.dir/edram/test_behavioral.cpp.o.d"
  "CMakeFiles/edram_tests.dir/edram/test_macrocell.cpp.o"
  "CMakeFiles/edram_tests.dir/edram/test_macrocell.cpp.o.d"
  "CMakeFiles/edram_tests.dir/edram/test_netlister.cpp.o"
  "CMakeFiles/edram_tests.dir/edram/test_netlister.cpp.o.d"
  "CMakeFiles/edram_tests.dir/edram/test_retention.cpp.o"
  "CMakeFiles/edram_tests.dir/edram/test_retention.cpp.o.d"
  "CMakeFiles/edram_tests.dir/edram/test_tiling.cpp.o"
  "CMakeFiles/edram_tests.dir/edram/test_tiling.cpp.o.d"
  "edram_tests"
  "edram_tests.pdb"
  "edram_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edram_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
