# Empty compiler generated dependencies file for edram_tests.
# This may be replaced when dependencies are built.
