file(REMOVE_RECURSE
  "CMakeFiles/circuit_tests.dir/circuit/test_ac.cpp.o"
  "CMakeFiles/circuit_tests.dir/circuit/test_ac.cpp.o.d"
  "CMakeFiles/circuit_tests.dir/circuit/test_charge_sharing.cpp.o"
  "CMakeFiles/circuit_tests.dir/circuit/test_charge_sharing.cpp.o.d"
  "CMakeFiles/circuit_tests.dir/circuit/test_dc.cpp.o"
  "CMakeFiles/circuit_tests.dir/circuit/test_dc.cpp.o.d"
  "CMakeFiles/circuit_tests.dir/circuit/test_linear.cpp.o"
  "CMakeFiles/circuit_tests.dir/circuit/test_linear.cpp.o.d"
  "CMakeFiles/circuit_tests.dir/circuit/test_matrix.cpp.o"
  "CMakeFiles/circuit_tests.dir/circuit/test_matrix.cpp.o.d"
  "CMakeFiles/circuit_tests.dir/circuit/test_mosfet.cpp.o"
  "CMakeFiles/circuit_tests.dir/circuit/test_mosfet.cpp.o.d"
  "CMakeFiles/circuit_tests.dir/circuit/test_solver_paths.cpp.o"
  "CMakeFiles/circuit_tests.dir/circuit/test_solver_paths.cpp.o.d"
  "CMakeFiles/circuit_tests.dir/circuit/test_spice_io.cpp.o"
  "CMakeFiles/circuit_tests.dir/circuit/test_spice_io.cpp.o.d"
  "CMakeFiles/circuit_tests.dir/circuit/test_transient.cpp.o"
  "CMakeFiles/circuit_tests.dir/circuit/test_transient.cpp.o.d"
  "CMakeFiles/circuit_tests.dir/circuit/test_wave.cpp.o"
  "CMakeFiles/circuit_tests.dir/circuit/test_wave.cpp.o.d"
  "circuit_tests"
  "circuit_tests.pdb"
  "circuit_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/circuit_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
