
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/circuit/test_ac.cpp" "tests/CMakeFiles/circuit_tests.dir/circuit/test_ac.cpp.o" "gcc" "tests/CMakeFiles/circuit_tests.dir/circuit/test_ac.cpp.o.d"
  "/root/repo/tests/circuit/test_charge_sharing.cpp" "tests/CMakeFiles/circuit_tests.dir/circuit/test_charge_sharing.cpp.o" "gcc" "tests/CMakeFiles/circuit_tests.dir/circuit/test_charge_sharing.cpp.o.d"
  "/root/repo/tests/circuit/test_dc.cpp" "tests/CMakeFiles/circuit_tests.dir/circuit/test_dc.cpp.o" "gcc" "tests/CMakeFiles/circuit_tests.dir/circuit/test_dc.cpp.o.d"
  "/root/repo/tests/circuit/test_linear.cpp" "tests/CMakeFiles/circuit_tests.dir/circuit/test_linear.cpp.o" "gcc" "tests/CMakeFiles/circuit_tests.dir/circuit/test_linear.cpp.o.d"
  "/root/repo/tests/circuit/test_matrix.cpp" "tests/CMakeFiles/circuit_tests.dir/circuit/test_matrix.cpp.o" "gcc" "tests/CMakeFiles/circuit_tests.dir/circuit/test_matrix.cpp.o.d"
  "/root/repo/tests/circuit/test_mosfet.cpp" "tests/CMakeFiles/circuit_tests.dir/circuit/test_mosfet.cpp.o" "gcc" "tests/CMakeFiles/circuit_tests.dir/circuit/test_mosfet.cpp.o.d"
  "/root/repo/tests/circuit/test_solver_paths.cpp" "tests/CMakeFiles/circuit_tests.dir/circuit/test_solver_paths.cpp.o" "gcc" "tests/CMakeFiles/circuit_tests.dir/circuit/test_solver_paths.cpp.o.d"
  "/root/repo/tests/circuit/test_spice_io.cpp" "tests/CMakeFiles/circuit_tests.dir/circuit/test_spice_io.cpp.o" "gcc" "tests/CMakeFiles/circuit_tests.dir/circuit/test_spice_io.cpp.o.d"
  "/root/repo/tests/circuit/test_transient.cpp" "tests/CMakeFiles/circuit_tests.dir/circuit/test_transient.cpp.o" "gcc" "tests/CMakeFiles/circuit_tests.dir/circuit/test_transient.cpp.o.d"
  "/root/repo/tests/circuit/test_wave.cpp" "tests/CMakeFiles/circuit_tests.dir/circuit/test_wave.cpp.o" "gcc" "tests/CMakeFiles/circuit_tests.dir/circuit/test_wave.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/circuit/CMakeFiles/ecms_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/tech/CMakeFiles/ecms_tech.dir/DependInfo.cmake"
  "/root/repo/build/src/edram/CMakeFiles/ecms_edram.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ecms_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
