
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/bitmap/test_analog_bitmap.cpp" "tests/CMakeFiles/bitmap_tests.dir/bitmap/test_analog_bitmap.cpp.o" "gcc" "tests/CMakeFiles/bitmap_tests.dir/bitmap/test_analog_bitmap.cpp.o.d"
  "/root/repo/tests/bitmap/test_compare.cpp" "tests/CMakeFiles/bitmap_tests.dir/bitmap/test_compare.cpp.o" "gcc" "tests/CMakeFiles/bitmap_tests.dir/bitmap/test_compare.cpp.o.d"
  "/root/repo/tests/bitmap/test_diagnosis.cpp" "tests/CMakeFiles/bitmap_tests.dir/bitmap/test_diagnosis.cpp.o" "gcc" "tests/CMakeFiles/bitmap_tests.dir/bitmap/test_diagnosis.cpp.o.d"
  "/root/repo/tests/bitmap/test_signature.cpp" "tests/CMakeFiles/bitmap_tests.dir/bitmap/test_signature.cpp.o" "gcc" "tests/CMakeFiles/bitmap_tests.dir/bitmap/test_signature.cpp.o.d"
  "/root/repo/tests/bitmap/test_spatial.cpp" "tests/CMakeFiles/bitmap_tests.dir/bitmap/test_spatial.cpp.o" "gcc" "tests/CMakeFiles/bitmap_tests.dir/bitmap/test_spatial.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bitmap/CMakeFiles/ecms_bitmap.dir/DependInfo.cmake"
  "/root/repo/build/src/march/CMakeFiles/ecms_march.dir/DependInfo.cmake"
  "/root/repo/build/src/msu/CMakeFiles/ecms_msu.dir/DependInfo.cmake"
  "/root/repo/build/src/edram/CMakeFiles/ecms_edram.dir/DependInfo.cmake"
  "/root/repo/build/src/tech/CMakeFiles/ecms_tech.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/ecms_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ecms_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
