# Empty dependencies file for bitmap_tests.
# This may be replaced when dependencies are built.
