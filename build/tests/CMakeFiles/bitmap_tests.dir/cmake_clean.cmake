file(REMOVE_RECURSE
  "CMakeFiles/bitmap_tests.dir/bitmap/test_analog_bitmap.cpp.o"
  "CMakeFiles/bitmap_tests.dir/bitmap/test_analog_bitmap.cpp.o.d"
  "CMakeFiles/bitmap_tests.dir/bitmap/test_compare.cpp.o"
  "CMakeFiles/bitmap_tests.dir/bitmap/test_compare.cpp.o.d"
  "CMakeFiles/bitmap_tests.dir/bitmap/test_diagnosis.cpp.o"
  "CMakeFiles/bitmap_tests.dir/bitmap/test_diagnosis.cpp.o.d"
  "CMakeFiles/bitmap_tests.dir/bitmap/test_signature.cpp.o"
  "CMakeFiles/bitmap_tests.dir/bitmap/test_signature.cpp.o.d"
  "CMakeFiles/bitmap_tests.dir/bitmap/test_spatial.cpp.o"
  "CMakeFiles/bitmap_tests.dir/bitmap/test_spatial.cpp.o.d"
  "bitmap_tests"
  "bitmap_tests.pdb"
  "bitmap_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bitmap_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
