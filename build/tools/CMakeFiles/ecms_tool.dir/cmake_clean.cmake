file(REMOVE_RECURSE
  "CMakeFiles/ecms_tool.dir/ecms_tool.cpp.o"
  "CMakeFiles/ecms_tool.dir/ecms_tool.cpp.o.d"
  "ecms_tool"
  "ecms_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecms_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
