# Empty dependencies file for ecms_tool.
# This may be replaced when dependencies are built.
