file(REMOVE_RECURSE
  "libecms_bitmap.a"
)
