file(REMOVE_RECURSE
  "CMakeFiles/ecms_bitmap.dir/analog_bitmap.cpp.o"
  "CMakeFiles/ecms_bitmap.dir/analog_bitmap.cpp.o.d"
  "CMakeFiles/ecms_bitmap.dir/compare.cpp.o"
  "CMakeFiles/ecms_bitmap.dir/compare.cpp.o.d"
  "CMakeFiles/ecms_bitmap.dir/diagnosis.cpp.o"
  "CMakeFiles/ecms_bitmap.dir/diagnosis.cpp.o.d"
  "CMakeFiles/ecms_bitmap.dir/signature.cpp.o"
  "CMakeFiles/ecms_bitmap.dir/signature.cpp.o.d"
  "CMakeFiles/ecms_bitmap.dir/spatial.cpp.o"
  "CMakeFiles/ecms_bitmap.dir/spatial.cpp.o.d"
  "libecms_bitmap.a"
  "libecms_bitmap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecms_bitmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
