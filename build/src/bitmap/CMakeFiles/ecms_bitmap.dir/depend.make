# Empty dependencies file for ecms_bitmap.
# This may be replaced when dependencies are built.
