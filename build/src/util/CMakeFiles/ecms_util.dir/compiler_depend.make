# Empty compiler generated dependencies file for ecms_util.
# This may be replaced when dependencies are built.
