file(REMOVE_RECURSE
  "libecms_util.a"
)
