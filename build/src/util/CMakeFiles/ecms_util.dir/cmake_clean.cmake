file(REMOVE_RECURSE
  "CMakeFiles/ecms_util.dir/ascii_plot.cpp.o"
  "CMakeFiles/ecms_util.dir/ascii_plot.cpp.o.d"
  "CMakeFiles/ecms_util.dir/log.cpp.o"
  "CMakeFiles/ecms_util.dir/log.cpp.o.d"
  "CMakeFiles/ecms_util.dir/rng.cpp.o"
  "CMakeFiles/ecms_util.dir/rng.cpp.o.d"
  "CMakeFiles/ecms_util.dir/stats.cpp.o"
  "CMakeFiles/ecms_util.dir/stats.cpp.o.d"
  "CMakeFiles/ecms_util.dir/table.cpp.o"
  "CMakeFiles/ecms_util.dir/table.cpp.o.d"
  "libecms_util.a"
  "libecms_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecms_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
