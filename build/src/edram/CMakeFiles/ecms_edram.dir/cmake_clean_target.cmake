file(REMOVE_RECURSE
  "libecms_edram.a"
)
