file(REMOVE_RECURSE
  "CMakeFiles/ecms_edram.dir/addressing.cpp.o"
  "CMakeFiles/ecms_edram.dir/addressing.cpp.o.d"
  "CMakeFiles/ecms_edram.dir/behavioral.cpp.o"
  "CMakeFiles/ecms_edram.dir/behavioral.cpp.o.d"
  "CMakeFiles/ecms_edram.dir/macrocell.cpp.o"
  "CMakeFiles/ecms_edram.dir/macrocell.cpp.o.d"
  "CMakeFiles/ecms_edram.dir/netlister.cpp.o"
  "CMakeFiles/ecms_edram.dir/netlister.cpp.o.d"
  "CMakeFiles/ecms_edram.dir/retention.cpp.o"
  "CMakeFiles/ecms_edram.dir/retention.cpp.o.d"
  "libecms_edram.a"
  "libecms_edram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecms_edram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
