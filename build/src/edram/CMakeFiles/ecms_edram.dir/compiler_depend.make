# Empty compiler generated dependencies file for ecms_edram.
# This may be replaced when dependencies are built.
