
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/edram/addressing.cpp" "src/edram/CMakeFiles/ecms_edram.dir/addressing.cpp.o" "gcc" "src/edram/CMakeFiles/ecms_edram.dir/addressing.cpp.o.d"
  "/root/repo/src/edram/behavioral.cpp" "src/edram/CMakeFiles/ecms_edram.dir/behavioral.cpp.o" "gcc" "src/edram/CMakeFiles/ecms_edram.dir/behavioral.cpp.o.d"
  "/root/repo/src/edram/macrocell.cpp" "src/edram/CMakeFiles/ecms_edram.dir/macrocell.cpp.o" "gcc" "src/edram/CMakeFiles/ecms_edram.dir/macrocell.cpp.o.d"
  "/root/repo/src/edram/netlister.cpp" "src/edram/CMakeFiles/ecms_edram.dir/netlister.cpp.o" "gcc" "src/edram/CMakeFiles/ecms_edram.dir/netlister.cpp.o.d"
  "/root/repo/src/edram/retention.cpp" "src/edram/CMakeFiles/ecms_edram.dir/retention.cpp.o" "gcc" "src/edram/CMakeFiles/ecms_edram.dir/retention.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tech/CMakeFiles/ecms_tech.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/ecms_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ecms_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
