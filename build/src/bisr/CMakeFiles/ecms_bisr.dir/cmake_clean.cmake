file(REMOVE_RECURSE
  "CMakeFiles/ecms_bisr.dir/allocator.cpp.o"
  "CMakeFiles/ecms_bisr.dir/allocator.cpp.o.d"
  "CMakeFiles/ecms_bisr.dir/yield.cpp.o"
  "CMakeFiles/ecms_bisr.dir/yield.cpp.o.d"
  "libecms_bisr.a"
  "libecms_bisr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecms_bisr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
