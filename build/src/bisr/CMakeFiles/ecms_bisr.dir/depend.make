# Empty dependencies file for ecms_bisr.
# This may be replaced when dependencies are built.
