file(REMOVE_RECURSE
  "libecms_bisr.a"
)
