file(REMOVE_RECURSE
  "CMakeFiles/ecms_tech.dir/capmodel.cpp.o"
  "CMakeFiles/ecms_tech.dir/capmodel.cpp.o.d"
  "CMakeFiles/ecms_tech.dir/corners.cpp.o"
  "CMakeFiles/ecms_tech.dir/corners.cpp.o.d"
  "CMakeFiles/ecms_tech.dir/defects.cpp.o"
  "CMakeFiles/ecms_tech.dir/defects.cpp.o.d"
  "CMakeFiles/ecms_tech.dir/tech.cpp.o"
  "CMakeFiles/ecms_tech.dir/tech.cpp.o.d"
  "libecms_tech.a"
  "libecms_tech.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecms_tech.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
