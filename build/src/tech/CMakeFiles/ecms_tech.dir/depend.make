# Empty dependencies file for ecms_tech.
# This may be replaced when dependencies are built.
