file(REMOVE_RECURSE
  "libecms_tech.a"
)
