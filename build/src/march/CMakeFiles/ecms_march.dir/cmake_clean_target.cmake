file(REMOVE_RECURSE
  "libecms_march.a"
)
