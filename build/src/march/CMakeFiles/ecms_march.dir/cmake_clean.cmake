file(REMOVE_RECURSE
  "CMakeFiles/ecms_march.dir/element.cpp.o"
  "CMakeFiles/ecms_march.dir/element.cpp.o.d"
  "CMakeFiles/ecms_march.dir/memory.cpp.o"
  "CMakeFiles/ecms_march.dir/memory.cpp.o.d"
  "CMakeFiles/ecms_march.dir/runner.cpp.o"
  "CMakeFiles/ecms_march.dir/runner.cpp.o.d"
  "libecms_march.a"
  "libecms_march.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecms_march.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
