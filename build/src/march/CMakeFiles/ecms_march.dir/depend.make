# Empty dependencies file for ecms_march.
# This may be replaced when dependencies are built.
