
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/msu/abacus.cpp" "src/msu/CMakeFiles/ecms_msu.dir/abacus.cpp.o" "gcc" "src/msu/CMakeFiles/ecms_msu.dir/abacus.cpp.o.d"
  "/root/repo/src/msu/calibrate.cpp" "src/msu/CMakeFiles/ecms_msu.dir/calibrate.cpp.o" "gcc" "src/msu/CMakeFiles/ecms_msu.dir/calibrate.cpp.o.d"
  "/root/repo/src/msu/designer.cpp" "src/msu/CMakeFiles/ecms_msu.dir/designer.cpp.o" "gcc" "src/msu/CMakeFiles/ecms_msu.dir/designer.cpp.o.d"
  "/root/repo/src/msu/disambig.cpp" "src/msu/CMakeFiles/ecms_msu.dir/disambig.cpp.o" "gcc" "src/msu/CMakeFiles/ecms_msu.dir/disambig.cpp.o.d"
  "/root/repo/src/msu/extract.cpp" "src/msu/CMakeFiles/ecms_msu.dir/extract.cpp.o" "gcc" "src/msu/CMakeFiles/ecms_msu.dir/extract.cpp.o.d"
  "/root/repo/src/msu/fastmodel.cpp" "src/msu/CMakeFiles/ecms_msu.dir/fastmodel.cpp.o" "gcc" "src/msu/CMakeFiles/ecms_msu.dir/fastmodel.cpp.o.d"
  "/root/repo/src/msu/sequencer.cpp" "src/msu/CMakeFiles/ecms_msu.dir/sequencer.cpp.o" "gcc" "src/msu/CMakeFiles/ecms_msu.dir/sequencer.cpp.o.d"
  "/root/repo/src/msu/structure.cpp" "src/msu/CMakeFiles/ecms_msu.dir/structure.cpp.o" "gcc" "src/msu/CMakeFiles/ecms_msu.dir/structure.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/edram/CMakeFiles/ecms_edram.dir/DependInfo.cmake"
  "/root/repo/build/src/tech/CMakeFiles/ecms_tech.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/ecms_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ecms_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
