file(REMOVE_RECURSE
  "CMakeFiles/ecms_msu.dir/abacus.cpp.o"
  "CMakeFiles/ecms_msu.dir/abacus.cpp.o.d"
  "CMakeFiles/ecms_msu.dir/calibrate.cpp.o"
  "CMakeFiles/ecms_msu.dir/calibrate.cpp.o.d"
  "CMakeFiles/ecms_msu.dir/designer.cpp.o"
  "CMakeFiles/ecms_msu.dir/designer.cpp.o.d"
  "CMakeFiles/ecms_msu.dir/disambig.cpp.o"
  "CMakeFiles/ecms_msu.dir/disambig.cpp.o.d"
  "CMakeFiles/ecms_msu.dir/extract.cpp.o"
  "CMakeFiles/ecms_msu.dir/extract.cpp.o.d"
  "CMakeFiles/ecms_msu.dir/fastmodel.cpp.o"
  "CMakeFiles/ecms_msu.dir/fastmodel.cpp.o.d"
  "CMakeFiles/ecms_msu.dir/sequencer.cpp.o"
  "CMakeFiles/ecms_msu.dir/sequencer.cpp.o.d"
  "CMakeFiles/ecms_msu.dir/structure.cpp.o"
  "CMakeFiles/ecms_msu.dir/structure.cpp.o.d"
  "libecms_msu.a"
  "libecms_msu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecms_msu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
