file(REMOVE_RECURSE
  "libecms_msu.a"
)
