# Empty dependencies file for ecms_msu.
# This may be replaced when dependencies are built.
