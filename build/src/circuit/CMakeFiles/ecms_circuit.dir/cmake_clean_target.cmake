file(REMOVE_RECURSE
  "libecms_circuit.a"
)
