
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/circuit/ac.cpp" "src/circuit/CMakeFiles/ecms_circuit.dir/ac.cpp.o" "gcc" "src/circuit/CMakeFiles/ecms_circuit.dir/ac.cpp.o.d"
  "/root/repo/src/circuit/dc.cpp" "src/circuit/CMakeFiles/ecms_circuit.dir/dc.cpp.o" "gcc" "src/circuit/CMakeFiles/ecms_circuit.dir/dc.cpp.o.d"
  "/root/repo/src/circuit/device.cpp" "src/circuit/CMakeFiles/ecms_circuit.dir/device.cpp.o" "gcc" "src/circuit/CMakeFiles/ecms_circuit.dir/device.cpp.o.d"
  "/root/repo/src/circuit/diode.cpp" "src/circuit/CMakeFiles/ecms_circuit.dir/diode.cpp.o" "gcc" "src/circuit/CMakeFiles/ecms_circuit.dir/diode.cpp.o.d"
  "/root/repo/src/circuit/matrix.cpp" "src/circuit/CMakeFiles/ecms_circuit.dir/matrix.cpp.o" "gcc" "src/circuit/CMakeFiles/ecms_circuit.dir/matrix.cpp.o.d"
  "/root/repo/src/circuit/mosfet.cpp" "src/circuit/CMakeFiles/ecms_circuit.dir/mosfet.cpp.o" "gcc" "src/circuit/CMakeFiles/ecms_circuit.dir/mosfet.cpp.o.d"
  "/root/repo/src/circuit/netlist.cpp" "src/circuit/CMakeFiles/ecms_circuit.dir/netlist.cpp.o" "gcc" "src/circuit/CMakeFiles/ecms_circuit.dir/netlist.cpp.o.d"
  "/root/repo/src/circuit/newton.cpp" "src/circuit/CMakeFiles/ecms_circuit.dir/newton.cpp.o" "gcc" "src/circuit/CMakeFiles/ecms_circuit.dir/newton.cpp.o.d"
  "/root/repo/src/circuit/passive.cpp" "src/circuit/CMakeFiles/ecms_circuit.dir/passive.cpp.o" "gcc" "src/circuit/CMakeFiles/ecms_circuit.dir/passive.cpp.o.d"
  "/root/repo/src/circuit/sources.cpp" "src/circuit/CMakeFiles/ecms_circuit.dir/sources.cpp.o" "gcc" "src/circuit/CMakeFiles/ecms_circuit.dir/sources.cpp.o.d"
  "/root/repo/src/circuit/spice_io.cpp" "src/circuit/CMakeFiles/ecms_circuit.dir/spice_io.cpp.o" "gcc" "src/circuit/CMakeFiles/ecms_circuit.dir/spice_io.cpp.o.d"
  "/root/repo/src/circuit/transient.cpp" "src/circuit/CMakeFiles/ecms_circuit.dir/transient.cpp.o" "gcc" "src/circuit/CMakeFiles/ecms_circuit.dir/transient.cpp.o.d"
  "/root/repo/src/circuit/wave.cpp" "src/circuit/CMakeFiles/ecms_circuit.dir/wave.cpp.o" "gcc" "src/circuit/CMakeFiles/ecms_circuit.dir/wave.cpp.o.d"
  "/root/repo/src/circuit/waveform.cpp" "src/circuit/CMakeFiles/ecms_circuit.dir/waveform.cpp.o" "gcc" "src/circuit/CMakeFiles/ecms_circuit.dir/waveform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ecms_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
