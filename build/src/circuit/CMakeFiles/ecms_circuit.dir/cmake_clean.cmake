file(REMOVE_RECURSE
  "CMakeFiles/ecms_circuit.dir/ac.cpp.o"
  "CMakeFiles/ecms_circuit.dir/ac.cpp.o.d"
  "CMakeFiles/ecms_circuit.dir/dc.cpp.o"
  "CMakeFiles/ecms_circuit.dir/dc.cpp.o.d"
  "CMakeFiles/ecms_circuit.dir/device.cpp.o"
  "CMakeFiles/ecms_circuit.dir/device.cpp.o.d"
  "CMakeFiles/ecms_circuit.dir/diode.cpp.o"
  "CMakeFiles/ecms_circuit.dir/diode.cpp.o.d"
  "CMakeFiles/ecms_circuit.dir/matrix.cpp.o"
  "CMakeFiles/ecms_circuit.dir/matrix.cpp.o.d"
  "CMakeFiles/ecms_circuit.dir/mosfet.cpp.o"
  "CMakeFiles/ecms_circuit.dir/mosfet.cpp.o.d"
  "CMakeFiles/ecms_circuit.dir/netlist.cpp.o"
  "CMakeFiles/ecms_circuit.dir/netlist.cpp.o.d"
  "CMakeFiles/ecms_circuit.dir/newton.cpp.o"
  "CMakeFiles/ecms_circuit.dir/newton.cpp.o.d"
  "CMakeFiles/ecms_circuit.dir/passive.cpp.o"
  "CMakeFiles/ecms_circuit.dir/passive.cpp.o.d"
  "CMakeFiles/ecms_circuit.dir/sources.cpp.o"
  "CMakeFiles/ecms_circuit.dir/sources.cpp.o.d"
  "CMakeFiles/ecms_circuit.dir/spice_io.cpp.o"
  "CMakeFiles/ecms_circuit.dir/spice_io.cpp.o.d"
  "CMakeFiles/ecms_circuit.dir/transient.cpp.o"
  "CMakeFiles/ecms_circuit.dir/transient.cpp.o.d"
  "CMakeFiles/ecms_circuit.dir/wave.cpp.o"
  "CMakeFiles/ecms_circuit.dir/wave.cpp.o.d"
  "CMakeFiles/ecms_circuit.dir/waveform.cpp.o"
  "CMakeFiles/ecms_circuit.dir/waveform.cpp.o.d"
  "libecms_circuit.a"
  "libecms_circuit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecms_circuit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
