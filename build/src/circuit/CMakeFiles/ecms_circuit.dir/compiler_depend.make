# Empty compiler generated dependencies file for ecms_circuit.
# This may be replaced when dependencies are built.
