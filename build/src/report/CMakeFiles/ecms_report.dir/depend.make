# Empty dependencies file for ecms_report.
# This may be replaced when dependencies are built.
