file(REMOVE_RECURSE
  "libecms_report.a"
)
