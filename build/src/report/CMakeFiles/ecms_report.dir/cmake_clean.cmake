file(REMOVE_RECURSE
  "CMakeFiles/ecms_report.dir/experiment.cpp.o"
  "CMakeFiles/ecms_report.dir/experiment.cpp.o.d"
  "CMakeFiles/ecms_report.dir/heatmap.cpp.o"
  "CMakeFiles/ecms_report.dir/heatmap.cpp.o.d"
  "libecms_report.a"
  "libecms_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecms_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
