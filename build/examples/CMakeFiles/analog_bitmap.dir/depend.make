# Empty dependencies file for analog_bitmap.
# This may be replaced when dependencies are built.
