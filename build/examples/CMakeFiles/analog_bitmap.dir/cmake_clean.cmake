file(REMOVE_RECURSE
  "CMakeFiles/analog_bitmap.dir/analog_bitmap.cpp.o"
  "CMakeFiles/analog_bitmap.dir/analog_bitmap.cpp.o.d"
  "analog_bitmap"
  "analog_bitmap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analog_bitmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
