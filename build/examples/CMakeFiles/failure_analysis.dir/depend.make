# Empty dependencies file for failure_analysis.
# This may be replaced when dependencies are built.
