file(REMOVE_RECURSE
  "CMakeFiles/failure_analysis.dir/failure_analysis.cpp.o"
  "CMakeFiles/failure_analysis.dir/failure_analysis.cpp.o.d"
  "failure_analysis"
  "failure_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/failure_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
