# Empty compiler generated dependencies file for process_monitor.
# This may be replaced when dependencies are built.
