file(REMOVE_RECURSE
  "CMakeFiles/process_monitor.dir/process_monitor.cpp.o"
  "CMakeFiles/process_monitor.dir/process_monitor.cpp.o.d"
  "process_monitor"
  "process_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/process_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
