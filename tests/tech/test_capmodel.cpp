#include "tech/capmodel.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/stats.hpp"

namespace ecms::tech {
namespace {

TEST(CapField, UniformWhenNoVariation) {
  CapProcessParams p;
  p.local_sigma_rel = 0.0;
  const CapField f(p, 4, 4, 1);
  for (std::size_t r = 0; r < 4; ++r)
    for (std::size_t c = 0; c < 4; ++c)
      EXPECT_DOUBLE_EQ(f.at(r, c), p.nominal);
}

TEST(CapField, DeterministicForSeed) {
  CapProcessParams p;
  const CapField a(p, 8, 8, 99), b(p, 8, 8, 99);
  EXPECT_EQ(a.values(), b.values());
  const CapField c(p, 8, 8, 100);
  EXPECT_NE(a.values(), c.values());
}

TEST(CapField, LocalSigmaMatches) {
  CapProcessParams p;
  p.local_sigma_rel = 0.05;
  const CapField f(p, 64, 64, 7);
  RunningStats s;
  for (double v : f.values()) s.add(v / p.nominal);
  EXPECT_NEAR(s.mean(), 1.0, 0.01);
  EXPECT_NEAR(s.stddev(), 0.05, 0.01);
}

TEST(CapField, GradientSpansRequestedRange) {
  CapProcessParams p;
  p.local_sigma_rel = 0.0;
  p.gradient_x_rel = 0.2;  // 20% from left to right
  const CapField f(p, 4, 8, 1);
  EXPECT_NEAR(f.at(0, 7) - f.at(0, 0), 0.2 * p.nominal, 1e-18);
  // Monotone along a row.
  for (std::size_t c = 1; c < 8; ++c) EXPECT_GT(f.at(2, c), f.at(2, c - 1));
}

TEST(CapField, GradientYActsOnRows) {
  CapProcessParams p;
  p.local_sigma_rel = 0.0;
  p.gradient_y_rel = -0.1;
  const CapField f(p, 8, 4, 1);
  EXPECT_LT(f.at(7, 0), f.at(0, 0));
  EXPECT_NEAR(f.at(7, 1) - f.at(0, 1), -0.1 * p.nominal, 1e-18);
}

TEST(CapField, LotOffsetShiftsEverything) {
  CapProcessParams p;
  p.local_sigma_rel = 0.0;
  p.lot_offset_rel = 0.08;
  const CapField f(p, 4, 4, 1);
  EXPECT_NEAR(f.mean(), 1.08 * p.nominal, 1e-18);
}

TEST(CapField, RadialBowlRaisesCorners) {
  CapProcessParams p;
  p.local_sigma_rel = 0.0;
  p.radial_rel = 0.1;
  const CapField f(p, 9, 9, 1);
  EXPECT_NEAR(f.at(4, 4), p.nominal, 1e-18);           // center untouched
  EXPECT_NEAR(f.at(0, 0), 1.1 * p.nominal, 1e-17);     // corner +10%
  EXPECT_GT(f.at(0, 4), f.at(4, 4));                   // edges in between
  EXPECT_LT(f.at(0, 4), f.at(0, 0));
}

TEST(CapField, SetOverridesOneCell) {
  CapProcessParams p;
  p.local_sigma_rel = 0.0;
  CapField f(p, 4, 4, 1);
  f.set(2, 3, 12e-15);
  EXPECT_DOUBLE_EQ(f.at(2, 3), 12e-15);
  EXPECT_DOUBLE_EQ(f.at(2, 2), p.nominal);
}

TEST(CapField, NeverNegative) {
  CapProcessParams p;
  p.local_sigma_rel = 1.5;  // absurd spread
  const CapField f(p, 32, 32, 3);
  for (double v : f.values()) EXPECT_GT(v, 0.0);
}

TEST(CapField, Validation) {
  CapProcessParams p;
  EXPECT_THROW(CapField(p, 0, 4, 1), Error);
  p.nominal = -1.0;
  EXPECT_THROW(CapField(p, 4, 4, 1), Error);
  const CapField ok(CapProcessParams{}, 2, 2, 1);
  EXPECT_THROW(ok.at(2, 0), Error);
}

}  // namespace
}  // namespace ecms::tech
