#include "tech/defects.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace ecms::tech {
namespace {

TEST(Defects, NamesAndLetters) {
  EXPECT_EQ(defect_name(DefectType::kShort), "short");
  EXPECT_EQ(defect_letter(DefectType::kNone), '.');
  EXPECT_EQ(defect_letter(DefectType::kOpen), 'O');
}

TEST(Defects, ElectricalInterpretation) {
  const auto none = electrical_of({});
  EXPECT_DOUBLE_EQ(none.cap_scale, 1.0);
  EXPECT_FALSE(none.disconnected);
  EXPECT_DOUBLE_EQ(none.shunt_r, 0.0);

  const auto sh = electrical_of(make_short(2e3));
  EXPECT_DOUBLE_EQ(sh.shunt_r, 2e3);

  const auto op = electrical_of(make_open());
  EXPECT_TRUE(op.disconnected);
  EXPECT_GT(op.residual_cap, 0.0);
  EXPECT_LT(op.residual_cap, 2e-15);

  const auto pa = electrical_of(make_partial(0.4));
  EXPECT_DOUBLE_EQ(pa.cap_scale, 0.4);

  const auto br = electrical_of(make_bridge(7e3));
  EXPECT_DOUBLE_EQ(br.bridge_r, 7e3);
}

TEST(DefectMapT, StartsClean) {
  const DefectMap m(4, 4);
  EXPECT_EQ(m.total_defective(), 0u);
  EXPECT_EQ(m.count(DefectType::kNone), 16u);
}

TEST(DefectMapT, SetAndCount) {
  DefectMap m(4, 4);
  m.set(1, 2, make_short());
  m.set(3, 3, make_open());
  EXPECT_EQ(m.count(DefectType::kShort), 1u);
  EXPECT_EQ(m.count(DefectType::kOpen), 1u);
  EXPECT_EQ(m.total_defective(), 2u);
  EXPECT_EQ(m.at(1, 2).type, DefectType::kShort);
}

TEST(DefectMapT, PartialSeverityValidated) {
  DefectMap m(2, 2);
  EXPECT_THROW(m.set(0, 0, {DefectType::kPartial, 0.0}), Error);
  EXPECT_THROW(m.set(0, 0, {DefectType::kPartial, 1.0}), Error);
  EXPECT_NO_THROW(m.set(0, 0, make_partial(0.5)));
}

TEST(DefectMapT, RandomRatesApproximatelyHold) {
  Rng rng(11);
  DefectRates rates;
  rates.short_rate = 0.01;
  rates.open_rate = 0.02;
  const DefectMap m = DefectMap::random(100, 100, rates, rng);
  EXPECT_NEAR(static_cast<double>(m.count(DefectType::kShort)) / 1e4, 0.01,
              0.005);
  EXPECT_NEAR(static_cast<double>(m.count(DefectType::kOpen)) / 1e4, 0.02,
              0.006);
  EXPECT_EQ(m.count(DefectType::kPartial), 0u);
}

TEST(DefectMapT, ClusterIsADisk) {
  DefectMap m(9, 9);
  m.inject_cluster(4, 4, 1.5, make_open());
  // Center plus the 4-neighborhood (and diagonals within 1.5).
  EXPECT_EQ(m.at(4, 4).type, DefectType::kOpen);
  EXPECT_EQ(m.at(3, 4).type, DefectType::kOpen);
  EXPECT_EQ(m.at(3, 3).type, DefectType::kOpen);  // sqrt(2) < 1.5
  EXPECT_EQ(m.at(2, 4).type, DefectType::kNone);  // distance 2 > 1.5
  EXPECT_GE(m.total_defective(), 9u);
}

TEST(DefectMapT, ClusterClippedAtEdges) {
  DefectMap m(4, 4);
  m.inject_cluster(0, 0, 1.0, make_short());
  EXPECT_EQ(m.at(0, 0).type, DefectType::kShort);
  EXPECT_EQ(m.total_defective(), 3u);  // (0,0),(0,1),(1,0)
}

TEST(DefectMapT, RowAndColumnInjection) {
  DefectMap m(4, 6);
  m.inject_row(2, make_partial(0.5));
  EXPECT_EQ(m.count(DefectType::kPartial), 6u);
  m.inject_column(1, make_open());
  EXPECT_EQ(m.count(DefectType::kOpen), 4u);
  // The intersection cell was overwritten by the column.
  EXPECT_EQ(m.at(2, 1).type, DefectType::kOpen);
}

TEST(DefectMapT, LettersRowMajor) {
  DefectMap m(2, 2);
  m.set(0, 1, make_short());
  const auto letters = m.letters();
  EXPECT_EQ(letters.size(), 4u);
  EXPECT_EQ(letters[0], '.');
  EXPECT_EQ(letters[1], 'S');
}

}  // namespace
}  // namespace ecms::tech
