#include "tech/tech.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/units.hpp"

namespace ecms::tech {
namespace {

TEST(TechT, DefaultsAreA018Node) {
  const Technology t = tech018();
  EXPECT_DOUBLE_EQ(t.vdd, 1.8);
  EXPECT_GT(t.vpp, t.vdd + t.n_vth0 + 0.5);  // full-rail pass guaranteed
  EXPECT_DOUBLE_EQ(t.l_min, 0.18e-6);
  EXPECT_NEAR(to_unit::fF(t.cell_cap_nominal), 30.0, 1e-9);
}

TEST(TechT, NmosFactoryFillsGeometry) {
  const Technology t = tech018();
  const auto p = t.nmos(2e-6, 0.3e-6);
  EXPECT_EQ(p.type, circuit::MosType::kNmos);
  EXPECT_DOUBLE_EQ(p.w, 2e-6);
  EXPECT_DOUBLE_EQ(p.l, 0.3e-6);
  EXPECT_DOUBLE_EQ(p.kp, t.n_kp);
  EXPECT_DOUBLE_EQ(p.vth0, t.n_vth0);
}

TEST(TechT, PmosFactoryUsesPmosParams) {
  const Technology t = tech018();
  const auto p = t.pmos_min(1e-6);
  EXPECT_EQ(p.type, circuit::MosType::kPmos);
  EXPECT_DOUBLE_EQ(p.kp, t.p_kp);
  EXPECT_DOUBLE_EQ(p.l, t.l_min);
  EXPECT_LT(p.kp, t.n_kp);  // holes slower than electrons
}

TEST(TechT, InvalidGeometryThrows) {
  const Technology t = tech018();
  EXPECT_THROW(t.nmos(0.0, 1e-6), Error);
  EXPECT_THROW(t.pmos(1e-6, -1e-6), Error);
}

TEST(TechT, GateCapDensityMatchesTox) {
  // 4 nm SiO2: Cox = eps0*3.9/4nm = 8.63e-3 F/m^2.
  const Technology t = tech018();
  const double cox = phys::kEps0 * phys::kEpsSiO2 / 4e-9;
  EXPECT_NEAR(t.cox_per_area, cox, 0.1e-3);
}

}  // namespace
}  // namespace ecms::tech
