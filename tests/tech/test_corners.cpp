#include "tech/corners.hpp"

#include <gtest/gtest.h>

#include "circuit/mosfet.hpp"
#include "util/stats.hpp"

namespace ecms::tech {
namespace {

TEST(Corners, NamesRoundTrip) {
  EXPECT_EQ(corner_name(Corner::kTT), "TT");
  EXPECT_EQ(corner_name(Corner::kFS), "FS");
  EXPECT_EQ(std::size(kAllCorners), 5u);
}

TEST(Corners, TtIsIdentity) {
  const Technology base = tech018();
  const Technology tt = apply_corner(base, Corner::kTT);
  EXPECT_DOUBLE_EQ(tt.n_vth0, base.n_vth0);
  EXPECT_DOUBLE_EQ(tt.n_kp, base.n_kp);
  EXPECT_DOUBLE_EQ(tt.p_kp, base.p_kp);
}

TEST(Corners, FfLowersVthRaisesKp) {
  const Technology base = tech018();
  const Technology ff = apply_corner(base, Corner::kFF);
  EXPECT_LT(ff.n_vth0, base.n_vth0);
  EXPECT_GT(ff.n_kp, base.n_kp);
  EXPECT_LT(ff.p_vth0, base.p_vth0);
  EXPECT_GT(ff.p_kp, base.p_kp);
}

TEST(Corners, SsIsMirrorOfFf) {
  const Technology base = tech018();
  const Technology ff = apply_corner(base, Corner::kFF);
  const Technology ss = apply_corner(base, Corner::kSS);
  EXPECT_NEAR(ff.n_vth0 + ss.n_vth0, 2 * base.n_vth0, 1e-12);
  EXPECT_NEAR(ff.n_kp + ss.n_kp, 2 * base.n_kp, 1e-9);
}

TEST(Corners, SkewedCornersSplitNAndP) {
  const Technology base = tech018();
  const Technology fs = apply_corner(base, Corner::kFS);
  EXPECT_LT(fs.n_vth0, base.n_vth0);  // fast NMOS
  EXPECT_GT(fs.p_vth0, base.p_vth0);  // slow PMOS
  const Technology sf = apply_corner(base, Corner::kSF);
  EXPECT_GT(sf.n_vth0, base.n_vth0);
  EXPECT_LT(sf.p_vth0, base.p_vth0);
}

TEST(Corners, FastCornerReallyFaster) {
  // On-current of the same device must rank SS < TT < FF.
  const Technology base = tech018();
  auto ion = [&](Corner c) {
    const Technology t = apply_corner(base, c);
    return circuit::mos_ids(t.nmos_min(1e-6), 1.8, 1.8);
  };
  EXPECT_LT(ion(Corner::kSS), ion(Corner::kTT));
  EXPECT_LT(ion(Corner::kTT), ion(Corner::kFF));
}

TEST(Mismatch, SigmaFollowsPelgrom) {
  const MatchingCoeffs mc;
  const double s1 = vth_mismatch_sigma(mc, 1e-6, 1e-6);
  const double s4 = vth_mismatch_sigma(mc, 2e-6, 2e-6);
  EXPECT_NEAR(s1 / s4, 2.0, 1e-9);  // 4x area -> half sigma
}

TEST(Mismatch, AppliedStatisticsMatchSigma) {
  const Technology t = tech018();
  const MatchingCoeffs mc;
  Rng rng(3);
  RunningStats vth;
  for (int i = 0; i < 4000; ++i) {
    auto p = t.nmos(1e-6, 0.18e-6);
    apply_mismatch(p, mc, rng);
    vth.add(p.vth0);
  }
  EXPECT_NEAR(vth.mean(), t.n_vth0, 0.001);
  EXPECT_NEAR(vth.stddev(), vth_mismatch_sigma(mc, 1e-6, 0.18e-6), 0.001);
}

TEST(Mismatch, BetaMismatchIsRelative) {
  const Technology t = tech018();
  const MatchingCoeffs mc;
  Rng rng(5);
  RunningStats kp;
  for (int i = 0; i < 4000; ++i) {
    auto p = t.nmos(1e-6, 0.18e-6);
    apply_mismatch(p, mc, rng);
    kp.add(p.kp / t.n_kp);
  }
  EXPECT_NEAR(kp.mean(), 1.0, 0.002);
  EXPECT_GT(kp.stddev(), 0.0);
}

}  // namespace
}  // namespace ecms::tech
