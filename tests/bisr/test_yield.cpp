#include "bisr/yield.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace ecms::bisr {
namespace {

YieldExperiment small_exp() {
  YieldExperiment e;
  e.rows = 16;
  e.cols = 16;
  e.trials = 40;
  e.redundancy = {.spare_rows = 3, .spare_cols = 3};
  e.defect_rates = {.short_rate = 0.002,
                    .open_rate = 0.002,
                    .partial_rate = 0.004,
                    .bridge_rate = 0.0};
  return e;
}

TEST(YieldT, Deterministic) {
  const auto a = estimate_repair_yield(small_exp());
  const auto b = estimate_repair_yield(small_exp());
  EXPECT_EQ(a.survive_burn_in_digital, b.survive_burn_in_digital);
  EXPECT_EQ(a.survive_burn_in_analog, b.survive_burn_in_analog);
}

TEST(YieldT, ParallelTrialsMatchSerialExactly) {
  // Trials sample from per-trial forked streams, so running them on a pool
  // must not change a single counter.
  const auto serial = estimate_repair_yield(small_exp());
  for (std::size_t jobs : {2u, 8u}) {
    util::ThreadPool pool(jobs);
    const auto par = estimate_repair_yield(small_exp(), &pool);
    EXPECT_EQ(serial.repaired_time_zero_digital,
              par.repaired_time_zero_digital) << "jobs = " << jobs;
    EXPECT_EQ(serial.repaired_time_zero_analog,
              par.repaired_time_zero_analog) << "jobs = " << jobs;
    EXPECT_EQ(serial.survive_burn_in_digital, par.survive_burn_in_digital)
        << "jobs = " << jobs;
    EXPECT_EQ(serial.survive_burn_in_analog, par.survive_burn_in_analog)
        << "jobs = " << jobs;
  }
}

TEST(YieldT, AnalogPolicyNeverWorseOnAverage) {
  // The analog bitmap's preventive repair must not lose to digital-only
  // repair under a burn-in model where marginal cells degrade.
  auto e = small_exp();
  e.trials = 80;
  const auto rep = estimate_repair_yield(e);
  EXPECT_EQ(rep.trials, 80u);
  EXPECT_GE(rep.survive_burn_in_analog, rep.survive_burn_in_digital);
}

TEST(YieldT, AnalogWinsWhenMarginalsDegrade) {
  auto e = small_exp();
  e.trials = 120;
  e.burn_in.marginal_fail_prob = 0.9;  // marginal cells almost surely die
  const auto rep = estimate_repair_yield(e);
  EXPECT_GT(rep.yield_analog(), rep.yield_digital());
}

TEST(YieldT, PoliciesTieWithoutBurnIn) {
  auto e = small_exp();
  e.trials = 60;
  e.burn_in.marginal_fail_prob = 0.0;
  e.burn_in.nominal_fail_prob = 0.0;
  const auto rep = estimate_repair_yield(e);
  // With no degradation, preventive repair buys nothing but may cost spares;
  // yields must be within a few trials of each other and digital can only
  // be >= analog here.
  EXPECT_GE(rep.survive_burn_in_digital, rep.survive_burn_in_analog);
  EXPECT_NEAR(rep.yield_digital(), rep.yield_analog(), 0.15);
}

TEST(YieldT, CleanProcessIsHighYield) {
  auto e = small_exp();
  e.trials = 40;
  e.defect_rates = {};  // no defects at all
  e.burn_in.nominal_fail_prob = 0.0;
  const auto rep = estimate_repair_yield(e);
  EXPECT_DOUBLE_EQ(rep.yield_digital(), 1.0);
  EXPECT_DOUBLE_EQ(rep.yield_analog(), 1.0);
}

TEST(YieldT, ZeroTrialsRejected) {
  auto e = small_exp();
  e.trials = 0;
  EXPECT_THROW(estimate_repair_yield(e), Error);
}

}  // namespace
}  // namespace ecms::bisr
