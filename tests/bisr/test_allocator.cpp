#include "bisr/allocator.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace ecms::bisr {
namespace {

bitmap::DigitalBitmap bm(std::size_t n,
                         std::initializer_list<std::pair<int, int>> fails) {
  bitmap::DigitalBitmap b(n, n);
  for (auto [r, c] : fails)
    b.set_fail(static_cast<std::size_t>(r), static_cast<std::size_t>(c));
  return b;
}

TEST(AllocatorT, NoFailsTrivialSuccess) {
  const auto fails = bm(8, {});
  const auto sol = allocate_greedy(fails, {});
  EXPECT_TRUE(sol.success);
  EXPECT_EQ(sol.spares_used(), 0u);
  EXPECT_TRUE(covers(fails, sol));
}

TEST(AllocatorT, SingleFailOneSpare) {
  const auto fails = bm(8, {{3, 4}});
  const auto sol = allocate_greedy(fails, {.spare_rows = 1, .spare_cols = 0});
  EXPECT_TRUE(sol.success);
  EXPECT_TRUE(covers(fails, sol));
  EXPECT_EQ(sol.rows.size(), 1u);
  EXPECT_EQ(sol.rows[0], 3u);
}

TEST(AllocatorT, MustRepairRowDetected) {
  // Three fails in one row with only 2 spare columns: the row MUST be
  // repaired by a row spare.
  const auto fails = bm(8, {{2, 1}, {2, 4}, {2, 6}});
  const auto sol = allocate_greedy(fails, {.spare_rows = 1, .spare_cols = 2});
  EXPECT_TRUE(sol.success);
  ASSERT_EQ(sol.rows.size(), 1u);
  EXPECT_EQ(sol.rows[0], 2u);
  EXPECT_TRUE(sol.cols.empty());
}

TEST(AllocatorT, GreedyPicksDenseLines) {
  const auto fails = bm(8, {{1, 1}, {1, 3}, {1, 5}, {4, 2}});
  const auto sol = allocate_greedy(fails, {.spare_rows = 1, .spare_cols = 1});
  EXPECT_TRUE(sol.success);
  EXPECT_TRUE(covers(fails, sol));
}

TEST(AllocatorT, InfeasibleReported) {
  // Five scattered fails, 2+2 spares: not coverable.
  const auto fails = bm(8, {{0, 0}, {1, 1}, {2, 2}, {3, 3}, {4, 4}});
  EXPECT_FALSE(allocate_greedy(fails, {.spare_rows = 2, .spare_cols = 2})
                   .success);
  EXPECT_FALSE(allocate_exact(fails, {.spare_rows = 2, .spare_cols = 2})
                   .success);
}

TEST(AllocatorT, ExactSolvesDiagonalWithEnoughSpares) {
  const auto fails = bm(8, {{0, 0}, {1, 1}, {2, 2}, {3, 3}});
  const auto sol = allocate_exact(fails, {.spare_rows = 2, .spare_cols = 2});
  EXPECT_TRUE(sol.success);
  EXPECT_TRUE(covers(fails, sol));
  EXPECT_EQ(sol.spares_used(), 4u);
}

TEST(AllocatorT, ExactBeatsGreedyOnAdversarialCase) {
  // A pattern where the greedy most-fails-first choice wastes a spare:
  // row 0 has two fails, but they can only be covered together with the
  // other fails by choosing columns.
  const auto fails = bm(8, {{0, 1}, {0, 2}, {3, 1}, {5, 2}});
  const RedundancyConfig cfg{.spare_rows = 0, .spare_cols = 2};
  const auto exact = allocate_exact(fails, cfg);
  EXPECT_TRUE(exact.success);
  EXPECT_TRUE(covers(fails, exact));
}

TEST(AllocatorT, GreedyNeverLiesAboutCoverage) {
  Rng rng(17);
  for (int trial = 0; trial < 50; ++trial) {
    bitmap::DigitalBitmap fails(16, 16);
    const int n = static_cast<int>(rng.uniform_index(8));
    for (int i = 0; i < n; ++i)
      fails.set_fail(rng.uniform_index(16), rng.uniform_index(16));
    const auto sol = allocate_greedy(fails, {.spare_rows = 2, .spare_cols = 2});
    if (sol.success) {
      EXPECT_TRUE(covers(fails, sol));
      EXPECT_LE(sol.rows.size(), 2u);
      EXPECT_LE(sol.cols.size(), 2u);
    }
  }
}

TEST(AllocatorT, ExactNeverWorseThanGreedy) {
  Rng rng(23);
  for (int trial = 0; trial < 50; ++trial) {
    bitmap::DigitalBitmap fails(12, 12);
    const int n = static_cast<int>(rng.uniform_index(6));
    for (int i = 0; i < n; ++i)
      fails.set_fail(rng.uniform_index(12), rng.uniform_index(12));
    const RedundancyConfig cfg{.spare_rows = 2, .spare_cols = 2};
    const bool greedy_ok = allocate_greedy(fails, cfg).success;
    const bool exact_ok = allocate_exact(fails, cfg).success;
    if (greedy_ok) {
      EXPECT_TRUE(exact_ok);
    }
  }
}

}  // namespace
}  // namespace ecms::bisr
