// Unit tests for the seeded fault-injection harness itself: the injectors
// must be pure functions of (seed, coordinates / solve state) — the same
// plan always fires at the same places, at any tiling, any job count, and
// across retries.
#include <gtest/gtest.h>

#include <set>
#include <utility>

#include "fault/fault.hpp"
#include "util/error.hpp"

namespace ecms::fault {
namespace {

TEST(FaultT, CellPlanIsPureAndSeeded) {
  const CellFaultPlan a(0.05, 42);
  const CellFaultPlan b(0.05, 42);
  const CellFaultPlan other(0.05, 43);
  std::size_t differs = 0;
  for (std::size_t r = 0; r < 64; ++r) {
    for (std::size_t c = 0; c < 64; ++c) {
      EXPECT_EQ(a.fails(r, c), b.fails(r, c));
      if (a.fails(r, c) != other.fails(r, c)) ++differs;
    }
  }
  EXPECT_GT(differs, 0u);  // a different seed is a different plan
}

TEST(FaultT, CellPlanHitsRoughlyTheRequestedRate) {
  const CellFaultPlan plan(0.05, 7);
  const std::size_t hits = plan.count(64, 64);
  // 4096 draws at 5%: expect ~205; accept a generous +-4 sigma band.
  EXPECT_GT(hits, 140u);
  EXPECT_LT(hits, 270u);
}

TEST(FaultT, CellPlanEdgeRates) {
  const CellFaultPlan none(0.0, 3);
  const CellFaultPlan all(1.0, 3);
  EXPECT_EQ(none.count(16, 16), 0u);
  EXPECT_EQ(all.count(16, 16), 256u);
  EXPECT_THROW(CellFaultPlan(-0.1, 0), ecms::Error);
  EXPECT_THROW(CellFaultPlan(1.5, 0), ecms::Error);
}

TEST(FaultT, CellHookThrowsOnlyOnPlannedCells) {
  const CellFaultPlan plan(0.2, 11);
  const auto hook = plan.hook();
  for (std::size_t r = 0; r < 16; ++r) {
    for (std::size_t c = 0; c < 16; ++c) {
      if (plan.fails(r, c)) {
        EXPECT_THROW(hook(r, c, 0), ecms::MeasureError);
        EXPECT_THROW(hook(r, c, 1), ecms::MeasureError);  // every attempt
      } else {
        EXPECT_NO_THROW(hook(r, c, 0));
      }
    }
  }
}

TEST(FaultT, FlakyHookClearsAfterTheConfiguredAttempts) {
  const CellFaultPlan plan(1.0, 5);  // every cell planned
  const auto flaky = plan.flaky_hook(2);
  EXPECT_THROW(flaky(0, 0, 0), ecms::MeasureError);  // attempts are 0-based
  EXPECT_THROW(flaky(0, 0, 1), ecms::MeasureError);
  EXPECT_NO_THROW(flaky(0, 0, 2));  // third attempt succeeds
}

circuit::StampContext ctx_at(double t, double dt = 10e-12) {
  circuit::StampContext ctx;
  ctx.time = t;
  ctx.dt = dt;
  return ctx;
}

TEST(FaultT, SolverFaultRespectsTimeWindow) {
  SolverFaultInjector inj;
  inj.add({.t_lo = 1e-9, .t_hi = 2e-9, .cleared_by = ClearedBy::kNever});
  const circuit::NewtonOptions opts;
  EXPECT_FALSE(inj.stalls(ctx_at(0.5e-9), opts));
  EXPECT_TRUE(inj.stalls(ctx_at(1.5e-9), opts));
  EXPECT_FALSE(inj.stalls(ctx_at(2.5e-9), opts));
  EXPECT_EQ(inj.injected(), 1u);  // only delivered faults are counted
}

TEST(FaultT, SolverFaultClearingPredicates) {
  const circuit::NewtonOptions base;

  SolverFaultInjector step;
  step.add({.cleared_by = ClearedBy::kSmallStep, .dt_threshold = 1e-12});
  EXPECT_TRUE(step.stalls(ctx_at(0.0, 10e-12), base));
  EXPECT_FALSE(step.stalls(ctx_at(0.0, 0.5e-12), base));

  SolverFaultInjector iters;
  iters.add({.cleared_by = ClearedBy::kManyIterations, .iter_threshold = 200});
  circuit::NewtonOptions many = base;
  many.max_iterations = 400;
  EXPECT_TRUE(iters.stalls(ctx_at(0.0), base));
  EXPECT_FALSE(iters.stalls(ctx_at(0.0), many));

  SolverFaultInjector gmin;
  gmin.add({.cleared_by = ClearedBy::kHighGmin, .gmin_threshold = 1e-10});
  circuit::StampContext relaxed = ctx_at(0.0);
  relaxed.gmin = 1e-9;
  EXPECT_TRUE(gmin.stalls(ctx_at(0.0), base));
  EXPECT_FALSE(gmin.stalls(relaxed, base));

  SolverFaultInjector be;
  be.add({.cleared_by = ClearedBy::kBackwardEuler});
  circuit::StampContext bectx = ctx_at(0.0);
  bectx.method = circuit::Integrator::kBackwardEuler;
  EXPECT_TRUE(be.stalls(ctx_at(0.0), base));
  EXPECT_FALSE(be.stalls(bectx, base));
}

TEST(FaultT, SingularFaultIsSeparateFromStall) {
  SolverFaultInjector inj;
  inj.add({.t_lo = 0.0, .t_hi = 1.0, .cleared_by = ClearedBy::kNever,
           .singular = true});
  const circuit::NewtonOptions opts;
  EXPECT_FALSE(inj.stalls(ctx_at(0.5), opts));
  EXPECT_TRUE(inj.makes_singular(ctx_at(0.5), opts));
}

TEST(FaultT, RandomStallIsAPureFunctionOfSeedAndTime) {
  SolverFaultInjector a(99);
  SolverFaultInjector b(99);
  SolverFaultInjector other(100);
  a.set_stall_rate(0.3);
  b.set_stall_rate(0.3);
  other.set_stall_rate(0.3);
  const circuit::NewtonOptions opts;
  std::size_t hits = 0, differs = 0;
  for (int i = 0; i < 1000; ++i) {
    const auto ctx = ctx_at(static_cast<double>(i) * 1e-12);
    const bool sa = a.stalls(ctx, opts);
    EXPECT_EQ(sa, b.stalls(ctx, opts));
    if (sa) ++hits;
    if (sa != other.stalls(ctx, opts)) ++differs;
  }
  EXPECT_GT(hits, 200u);  // ~300 expected
  EXPECT_LT(hits, 400u);
  EXPECT_GT(differs, 0u);
}

}  // namespace
}  // namespace ecms::fault
