// Observability wired through the real extraction stack:
//   * instrumentation must not perturb results — robust tiled extraction
//     returns bit-identical codes with obs fully on vs fully off, serial
//     and on an 8-worker pool;
//   * the counters and spans promised by DESIGN.md §8 actually populate
//     (Newton solves, recovery rungs, retries, per-tile spans);
//   * the default log sink stamps lines with the open span id.
#include <gtest/gtest.h>

#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bitmap/analog_bitmap.hpp"
#include "fault/fault.hpp"
#include "msu/extract.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "tech/tech.hpp"
#include "util/log.hpp"
#include "util/threadpool.hpp"
#include "util/units.hpp"

namespace ecms {
namespace {

class ObsIntegrationT : public ::testing::Test {
 protected:
  void TearDown() override {
    obs::set_metrics_enabled(false);
    obs::stop_tracing();
    set_log_sink({});
  }

  static edram::MacroCell mc8x8() {
    return edram::MacroCell::uniform({.rows = 8, .cols = 8}, tech::tech018(),
                                     30_fF);
  }

  static std::uint64_t counter_value(const std::string& name) {
    const auto snap = obs::Registry::global().snapshot();
    const auto it = snap.counters.find(name);
    return it == snap.counters.end() ? 0 : it->second;
  }
};

TEST_F(ObsIntegrationT, InstrumentedCodesBitIdenticalToUninstrumented) {
  const auto mc = mc8x8();
  // A flaky plan exercises the retry path on both sides of the comparison.
  const fault::CellFaultPlan plan(0.05, 42);
  bitmap::ExtractPolicy policy;
  policy.cell_hook = plan.flaky_hook(1);
  policy.retry.max_attempts = 3;

  obs::set_metrics_enabled(false);
  const auto baseline =
      bitmap::AnalogBitmap::extract_tiled_robust(mc, {}, policy);

  obs::set_metrics_enabled(true);
  obs::start_tracing();
  const auto instr_serial =
      bitmap::AnalogBitmap::extract_tiled_robust(mc, {}, policy);
  util::ThreadPool pool(8);
  const auto instr_par =
      bitmap::AnalogBitmap::extract_tiled_robust(mc, {}, policy, 4, 4, &pool);
  obs::stop_tracing();

  EXPECT_EQ(instr_serial.bitmap.codes(), baseline.bitmap.codes());
  EXPECT_EQ(instr_par.bitmap.codes(), baseline.bitmap.codes());
  EXPECT_EQ(instr_serial.report.summary(), baseline.report.summary());
  EXPECT_EQ(instr_par.report.summary(), baseline.report.summary());
}

TEST_F(ObsIntegrationT, TileSpansAndRetryCountersPopulate) {
  const auto mc = mc8x8();
  const fault::CellFaultPlan plan(0.08, 7);
  bitmap::ExtractPolicy policy;
  policy.cell_hook = plan.flaky_hook(1);
  policy.retry.max_attempts = 3;

  obs::Registry::global().reset();
  obs::set_metrics_enabled(true);
  obs::start_tracing();
  const auto out = bitmap::AnalogBitmap::extract_tiled_robust(mc, {}, policy);
  obs::stop_tracing();
  ASSERT_TRUE(out.report.complete());

  // 8x8 with 4x4 tiles: four tile spans under one extract span.
  std::size_t tiles = 0;
  std::uint64_t root = 0;
  for (const auto& e : obs::collected_trace_events()) {
    if (e.name == "extract_tiled_robust") root = e.span_id;
    if (e.name == "extract_tile") ++tiles;
  }
  EXPECT_EQ(tiles, 4u);
  EXPECT_NE(root, 0u);
  EXPECT_EQ(counter_value("bitmap.tiles"), 4u);
  EXPECT_EQ(counter_value("bitmap.cells.ok") +
                counter_value("bitmap.cells.recovered"),
            64u);
  // The planned flaky cells each fail once, then recover on a retry.
  const std::uint64_t planned = plan.count(8, 8);
  ASSERT_GT(planned, 0u);
  EXPECT_EQ(counter_value("util.retry.retries"), planned);
  EXPECT_EQ(counter_value("util.retry.recovered"), planned);
  EXPECT_EQ(counter_value("util.retry.attempts"), 64u + planned);
}

TEST_F(ObsIntegrationT, NewtonCountersAndCircuitSpansPopulate) {
  const auto mc = edram::MacroCell::uniform({.rows = 2, .cols = 2},
                                            tech::tech018(), 30_fF);
  obs::Registry::global().reset();
  obs::set_metrics_enabled(true);
  obs::start_tracing();
  const auto res = msu::extract_cell(mc, 0, 0, {});
  obs::stop_tracing();
  ASSERT_EQ(res.status, CellStatus::kOk);

  const std::uint64_t solves = counter_value("circuit.newton.solves");
  EXPECT_GT(solves, 0u);
  EXPECT_GE(counter_value("circuit.newton.iterations"), solves);
  // Factorizations are the real symbolic + numeric work. With symbolic
  // reuse on the sparse backend this can be below the iteration count;
  // it can never exceed it (at most one factorization per iteration).
  EXPECT_EQ(counter_value("circuit.newton.factorizations"),
            counter_value("circuit.lu.symbolic") +
                counter_value("circuit.lu.numeric"));
  EXPECT_LE(counter_value("circuit.newton.factorizations"),
            counter_value("circuit.newton.iterations"));
  EXPECT_GT(counter_value("circuit.lu.numeric"), 0u);
  EXPECT_GE(counter_value("circuit.transient.accepted_steps"), 1u);
  EXPECT_EQ(counter_value("circuit.transient.solves"), 1u);
  EXPECT_EQ(counter_value("msu.cells.ok"), 1u);

  const auto snap = obs::Registry::global().snapshot();
  const auto it = snap.histograms.find("circuit.newton.iterations_per_solve");
  ASSERT_NE(it, snap.histograms.end());
  EXPECT_EQ(it->second.count, solves);

  // transient runs nested inside the extract_cell span.
  std::uint64_t cell_span = 0;
  const auto evs = obs::collected_trace_events();
  for (const auto& e : evs) {
    if (e.name == "extract_cell") cell_span = e.span_id;
  }
  ASSERT_NE(cell_span, 0u);
  bool transient_nested = false;
  for (const auto& e : evs) {
    if (e.name == "transient" && e.parent_id != 0) transient_nested = true;
  }
  EXPECT_TRUE(transient_nested);
}

TEST_F(ObsIntegrationT, RecoveryRungCountersTrackTheLadder) {
  const auto mc = edram::MacroCell::uniform({.rows = 2, .cols = 2},
                                            tech::tech018(), 30_fF);
  fault::SolverFaultInjector inj;
  inj.add({.cleared_by = fault::ClearedBy::kManyIterations,
           .iter_threshold = 150});
  const circuit::SolveHooks hooks = inj.hooks();
  msu::ExtractOptions opts;
  opts.newton.hooks = &hooks;

  obs::Registry::global().reset();
  obs::set_metrics_enabled(true);
  const auto res = msu::extract_cell(mc, 0, 0, {}, {}, opts);
  ASSERT_EQ(res.status, CellStatus::kRecovered);
  ASSERT_EQ(res.recovery.succeeded_at, circuit::RecoveryRung::kHardenNewton);

  // Ladder walk: baseline and shrink-step entered and lost, harden-newton
  // entered and won.
  EXPECT_EQ(counter_value("circuit.recovery.entered.baseline"), 1u);
  EXPECT_EQ(counter_value("circuit.recovery.entered.shrink-step"), 1u);
  EXPECT_EQ(counter_value("circuit.recovery.entered.harden-newton"), 1u);
  EXPECT_EQ(counter_value("circuit.recovery.won.baseline"), 0u);
  EXPECT_EQ(counter_value("circuit.recovery.won.harden-newton"), 1u);
  EXPECT_EQ(counter_value("circuit.recovery.recovered"), 1u);
  EXPECT_EQ(counter_value("circuit.recovery.exhausted"), 0u);
  EXPECT_EQ(counter_value("msu.cells.recovered"), 1u);
}

TEST_F(ObsIntegrationT, DefaultLogSinkStampsOpenSpanId) {
  std::ostringstream captured;
  std::streambuf* old = std::clog.rdbuf(captured.rdbuf());
  obs::start_tracing();
  {
    obs::ScopedSpan span("test_obs_log");
    ECMS_LOG(LogLevel::kError) << "inside the span";
    const std::string expect = "span=" + std::to_string(span.id());
    EXPECT_NE(captured.str().find(expect), std::string::npos)
        << captured.str();
  }
  obs::stop_tracing();
  captured.str("");
  ECMS_LOG(LogLevel::kError) << "outside any span";
  std::clog.rdbuf(old);
  EXPECT_EQ(captured.str().find("span="), std::string::npos) << captured.str();
  EXPECT_NE(captured.str().find("outside any span"), std::string::npos);
}

TEST_F(ObsIntegrationT, CustomLogSinkReceivesRawLines) {
  std::vector<std::string> lines;
  set_log_sink([&lines](LogLevel, const std::string& msg) {
    lines.push_back(msg);
  });
  ECMS_LOG(LogLevel::kError) << "routed to the custom sink";
  set_log_sink({});
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], "routed to the custom sink");
}

}  // namespace
}  // namespace ecms
