// Tracing layer: span recording and nesting, per-thread ids, the
// disabled-path contract, restart semantics, and Chrome trace JSON
// well-formedness. The concurrent cases run under TSan in CI.
#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "json_check.hpp"
#include "obs/trace.hpp"

namespace ecms::obs {
namespace {

const TraceEvent* find_event(const std::vector<TraceEvent>& evs,
                             const std::string& name) {
  const auto it = std::find_if(evs.begin(), evs.end(),
                               [&](const TraceEvent& e) { return e.name == name; });
  return it == evs.end() ? nullptr : &*it;
}

class ObsTraceT : public ::testing::Test {
 protected:
  void TearDown() override { stop_tracing(); }
};

TEST_F(ObsTraceT, DisabledSpansRecordNothing) {
  ASSERT_FALSE(tracing_enabled());
  {
    ScopedSpan s("test_trace_disabled");
    EXPECT_FALSE(s.active());
    EXPECT_EQ(current_span_id(), 0u);
  }
  start_tracing();
  stop_tracing();
  EXPECT_EQ(find_event(collected_trace_events(), "test_trace_disabled"),
            nullptr);
}

TEST_F(ObsTraceT, NestedSpansRecordParentAndTiming) {
  start_tracing();
  std::uint64_t outer_id = 0, inner_id = 0;
  {
    ScopedSpan outer("test_trace_outer");
    outer.arg("depth", 1.0);
    outer_id = outer.id();
    EXPECT_EQ(current_span_id(), outer_id);
    {
      ScopedSpan inner("test_trace_inner");
      inner_id = inner.id();
      EXPECT_EQ(current_span_id(), inner_id);
    }
    EXPECT_EQ(current_span_id(), outer_id);
  }
  stop_tracing();
  EXPECT_EQ(current_span_id(), 0u);

  const auto evs = collected_trace_events();
  const TraceEvent* outer = find_event(evs, "test_trace_outer");
  const TraceEvent* inner = find_event(evs, "test_trace_inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->span_id, outer_id);
  EXPECT_EQ(outer->parent_id, 0u);
  EXPECT_EQ(inner->parent_id, outer_id);
  EXPECT_NE(inner->span_id, outer_id);
  EXPECT_EQ(outer->tid, inner->tid);
  // The inner span starts no earlier and ends no later than the outer one.
  EXPECT_GE(inner->start_ns, outer->start_ns);
  EXPECT_LE(inner->start_ns + inner->dur_ns,
            outer->start_ns + outer->dur_ns);
  ASSERT_EQ(outer->args.size(), 1u);
  EXPECT_EQ(outer->args[0].first, "depth");
  EXPECT_EQ(outer->args[0].second, 1.0);
}

TEST_F(ObsTraceT, ThreadsGetDistinctTids) {
  start_tracing();
  constexpr int kThreads = 4;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([] { ScopedSpan s("test_trace_mt"); });
  }
  for (auto& t : ts) t.join();
  stop_tracing();

  std::vector<std::uint32_t> tids;
  for (const auto& e : collected_trace_events()) {
    if (e.name == "test_trace_mt") tids.push_back(e.tid);
  }
  ASSERT_EQ(tids.size(), static_cast<std::size_t>(kThreads));
  std::sort(tids.begin(), tids.end());
  EXPECT_EQ(std::unique(tids.begin(), tids.end()), tids.end());
  for (const auto tid : tids) EXPECT_GE(tid, 1u);
}

TEST_F(ObsTraceT, RestartDiscardsEarlierEvents) {
  start_tracing();
  { ScopedSpan s("test_trace_old"); }
  start_tracing();  // second start: the old event must not survive
  { ScopedSpan s("test_trace_new"); }
  stop_tracing();
  const auto evs = collected_trace_events();
  EXPECT_EQ(find_event(evs, "test_trace_old"), nullptr);
  EXPECT_NE(find_event(evs, "test_trace_new"), nullptr);
}

TEST_F(ObsTraceT, ConcurrentSpansAndExportAreSafe) {
  // Writers emit spans while the main thread repeatedly exports: the
  // per-thread buffers must never race (TSan verifies) and every completed
  // span must be present in the final export.
  start_tracing();
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 200;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        ScopedSpan s("test_trace_burst");
        s.arg("i", static_cast<double>(i));
      }
    });
  }
  for (int i = 0; i < 50; ++i) (void)collected_trace_events();
  for (auto& t : ts) t.join();
  stop_tracing();

  std::size_t n = 0;
  for (const auto& e : collected_trace_events()) {
    if (e.name == "test_trace_burst") ++n;
  }
  EXPECT_EQ(n, static_cast<std::size_t>(kThreads) * kSpansPerThread);
}

TEST_F(ObsTraceT, ExportedJsonIsWellFormed) {
  start_tracing();
  {
    ScopedSpan outer("test_trace_json \"outer\"");
    outer.arg("value", 0.125);
    ScopedSpan inner("test_trace_json_inner");
  }
  stop_tracing();
  const std::string j = trace_to_json();
  EXPECT_TRUE(testing::json_valid(j)) << j;
  EXPECT_NE(j.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(j.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(j.find("test_trace_json_inner"), std::string::npos);
}

}  // namespace
}  // namespace ecms::obs
