// Minimal recursive-descent JSON validator for the obs export tests. Not a
// parser — it only answers "is this text one well-formed JSON value?", which
// is what the metrics/trace writers must guarantee (the CI smoke step
// additionally round-trips the files through python3 -m json.tool).
#pragma once

#include <cctype>
#include <cstddef>
#include <string>

namespace ecms::obs::testing {

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '"') { ++pos_; return true; }
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        const char e = s_[pos_];
        if (e == 'u') {
          for (int i = 1; i <= 4; ++i) {
            if (pos_ + i >= s_.size() ||
                !std::isxdigit(static_cast<unsigned char>(s_[pos_ + i]))) {
              return false;
            }
          }
          pos_ += 4;
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' &&
                   e != 'f' && e != 'n' && e != 'r' && e != 't') {
          return false;
        }
      }
      ++pos_;
    }
    return false;  // unterminated
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (!digits()) return false;
    if (peek() == '.') {
      ++pos_;
      if (!digits()) return false;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!digits()) return false;
    }
    return pos_ > start;
  }

  bool digits() {
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool literal(const char* word) {
    for (const char* p = word; *p; ++p, ++pos_) {
      if (pos_ >= s_.size() || s_[pos_] != *p) return false;
    }
    return true;
  }

  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

inline bool json_valid(const std::string& text) {
  return JsonChecker(text).valid();
}

}  // namespace ecms::obs::testing
