// Metrics registry: wait-free counter exactness under threads, histogram
// bucket-edge behaviour, snapshot consistency while writers are running
// (this file is part of the TSan job), and JSON export well-formedness.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <limits>
#include <thread>
#include <vector>

#include "json_check.hpp"
#include "obs/metrics.hpp"

namespace ecms::obs {
namespace {

// Tests share the process-global registry, so every test uses its own
// metric names ("test.metrics.<case>...") and restores the enabled flag.
class ObsMetricsT : public ::testing::Test {
 protected:
  void SetUp() override { set_metrics_enabled(true); }
  void TearDown() override { set_metrics_enabled(false); }
};

TEST_F(ObsMetricsT, CounterSumsExactlyAcrossThreads) {
  Counter& c = Registry::global().counter("test.metrics.exact");
  c.reset();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.add(1);
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST_F(ObsMetricsT, SnapshotWhileWritersRun) {
  // The snapshot never tears or races (TSan checks the latter); monotonic
  // reads are the most a sharded counter promises.
  Counter& c = Registry::global().counter("test.metrics.live");
  c.reset();
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) c.add(1);
    });
  }
  std::uint64_t last = 0;
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t now =
        Registry::global().snapshot().counters.at("test.metrics.live");
    EXPECT_GE(now, last);
    last = now;
  }
  stop.store(true);
  for (auto& t : writers) t.join();
  EXPECT_GE(c.value(), last);
}

TEST_F(ObsMetricsT, GaugeTracksValueAndHighWatermark) {
  Gauge& g = Registry::global().gauge("test.metrics.gauge");
  g.reset();
  g.set(5);
  g.add(3);
  EXPECT_EQ(g.value(), 8);
  g.add(-6);
  EXPECT_EQ(g.value(), 2);
  EXPECT_EQ(g.max(), 8);  // watermark survives the drop
  g.set(1);
  EXPECT_EQ(g.max(), 8);
}

TEST_F(ObsMetricsT, HistogramZeroLandsInUnderflowBucket) {
  Histogram& h = Registry::global().histogram("test.metrics.h_zero");
  h.reset();
  EXPECT_TRUE(h.record(0.0));
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 1u);
  EXPECT_EQ(s.buckets.front(), 1u);
  EXPECT_EQ(s.min, 0.0);
}

TEST_F(ObsMetricsT, HistogramRejectsNegativeAndNan) {
  Histogram& h = Registry::global().histogram("test.metrics.h_reject");
  h.reset();
  EXPECT_FALSE(h.record(-1e-9));
  EXPECT_FALSE(h.record(std::numeric_limits<double>::quiet_NaN()));
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.rejected, 2u);
  for (const auto b : s.buckets) EXPECT_EQ(b, 0u);
}

TEST_F(ObsMetricsT, HistogramHugeValueLandsInOverflowBucket) {
  Histogram& h = Registry::global().histogram("test.metrics.h_over");
  h.reset();
  EXPECT_TRUE(h.record(1e30));
  EXPECT_TRUE(h.record(std::numeric_limits<double>::infinity()));
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.buckets.back(), 2u);
  EXPECT_EQ(s.count, 2u);
  EXPECT_TRUE(std::isinf(s.bucket_upper(s.buckets.size() - 1)));
}

TEST_F(ObsMetricsT, HistogramBoundaryValuesBelongToUpperBucket) {
  // min_bound = 1, growth = 2: buckets are [0,1), [1,2), [2,4), [4,8)...
  Histogram::Options opts;
  opts.min_bound = 1.0;
  opts.growth = 2.0;
  opts.buckets = 8;
  Histogram& h =
      Registry::global().histogram("test.metrics.h_bounds", opts);
  h.reset();
  h.record(0.5);  // underflow
  h.record(1.0);  // first log bucket's lower edge
  h.record(2.0);  // second log bucket's lower edge
  h.record(3.9);
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.buckets[0], 1u);
  EXPECT_EQ(s.buckets[1], 1u);
  EXPECT_EQ(s.buckets[2], 2u);
  EXPECT_DOUBLE_EQ(s.bucket_upper(1), 2.0);
  EXPECT_DOUBLE_EQ(s.min, 0.5);
  EXPECT_DOUBLE_EQ(s.max, 3.9);
  EXPECT_NEAR(s.mean(), (0.5 + 1.0 + 2.0 + 3.9) / 4.0, 1e-12);
}

TEST_F(ObsMetricsT, ResetZeroesValuesButKeepsHandles) {
  Counter& c = Registry::global().counter("test.metrics.reset");
  c.add(7);
  Registry::global().reset();
  EXPECT_EQ(c.value(), 0u);  // same handle, still live
  c.add(2);
  EXPECT_EQ(c.value(), 2u);
}

TEST_F(ObsMetricsT, DisabledMacroCreatesNothing) {
  set_metrics_enabled(false);
  ECMS_METRIC_COUNT("test.metrics.never", 1);
  ECMS_METRIC_OBSERVE("test.metrics.never_h", 1.0);
  const MetricsSnapshot s = Registry::global().snapshot();
  EXPECT_EQ(s.counters.count("test.metrics.never"), 0u);
  EXPECT_EQ(s.histograms.count("test.metrics.never_h"), 0u);
}

TEST_F(ObsMetricsT, MacroCountsWhenEnabled) {
  Registry::global().counter("test.metrics.macro").reset();
  for (int i = 0; i < 3; ++i) ECMS_METRIC_COUNT("test.metrics.macro", 2);
  EXPECT_EQ(Registry::global().counter("test.metrics.macro").value(), 6u);
}

TEST_F(ObsMetricsT, SnapshotJsonIsWellFormed) {
  Registry::global().counter("test.metrics.json\"quoted").add(1);
  Registry::global().gauge("test.metrics.json_g").set(-3);
  Histogram& h = Registry::global().histogram("test.metrics.json_h");
  h.record(1e-6);
  h.record(0.25);
  const std::string j = Registry::global().snapshot().to_json();
  EXPECT_TRUE(testing::json_valid(j)) << j;
  EXPECT_NE(j.find("\"counters\""), std::string::npos);
  EXPECT_NE(j.find("\"gauges\""), std::string::npos);
  EXPECT_NE(j.find("\"histograms\""), std::string::npos);
}

}  // namespace
}  // namespace ecms::obs
