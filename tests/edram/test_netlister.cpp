// Netlister structural tests plus a couple of electrical sanity transients
// on the generated array.
#include "edram/netlister.hpp"

#include <gtest/gtest.h>

#include "circuit/transient.hpp"
#include "tech/tech.hpp"
#include "util/units.hpp"

namespace ecms::edram {
namespace {

MacroCell small() {
  return MacroCell::uniform({.rows = 2, .cols = 2}, tech::tech018(), 30_fF);
}

TEST(Netlister, CreatesExpectedNets) {
  circuit::Circuit ckt;
  const auto mc = small();
  const ArrayNet net = build_array(ckt, mc);
  EXPECT_EQ(net.wl_sources.size(), 2u);
  EXPECT_EQ(net.sbl_sources.size(), 2u);
  EXPECT_EQ(net.inbl_sources.size(), 2u);
  EXPECT_EQ(net.storage.size(), 4u);
  EXPECT_TRUE(ckt.has_node("plate"));
  EXPECT_TRUE(ckt.has_node("stor1_1"));
  EXPECT_NE(ckt.find("MACC0_0"), nullptr);
  EXPECT_NE(ckt.find("CS1_1"), nullptr);
  EXPECT_NE(ckt.find("V_WL0"), nullptr);
}

TEST(Netlister, StorageCapMatchesGroundTruth) {
  circuit::Circuit ckt;
  auto mc = small();
  mc.set_true_cap(0, 1, 17_fF);
  build_array(ckt, mc);
  EXPECT_DOUBLE_EQ(ckt.get<circuit::Capacitor>("CS0_1").capacitance(), 17_fF);
}

TEST(Netlister, ShortBecomesShuntResistor) {
  circuit::Circuit ckt;
  auto mc = small();
  mc.set_defect(0, 0, tech::make_short(1234.0));
  build_array(ckt, mc);
  EXPECT_DOUBLE_EQ(ckt.get<circuit::Resistor>("Rshort0_0").resistance(),
                   1234.0);
}

TEST(Netlister, OpenLeavesOnlyResidual) {
  circuit::Circuit ckt;
  auto mc = small();
  mc.set_defect(0, 0, tech::make_open());
  build_array(ckt, mc);
  EXPECT_LT(ckt.get<circuit::Capacitor>("CS0_0").capacitance(), 1_fF);
}

TEST(Netlister, BridgeConnectsNeighbours) {
  circuit::Circuit ckt;
  auto mc = small();
  mc.set_defect(0, 1, tech::make_bridge(5000.0));  // last column bridges back
  build_array(ckt, mc);
  auto& r = ckt.get<circuit::Resistor>("Rbridge0_1");
  EXPECT_DOUBLE_EQ(r.resistance(), 5000.0);
}

TEST(Netlister, PrefixIsolatesInstances) {
  circuit::Circuit ckt;
  const auto mc = small();
  build_array(ckt, mc, {.prefix = "a_"});
  build_array(ckt, mc, {.prefix = "b_"});
  EXPECT_TRUE(ckt.has_node("a_plate"));
  EXPECT_TRUE(ckt.has_node("b_plate"));
  EXPECT_NE(ckt.find("a_MACC0_0"), nullptr);
  EXPECT_NE(ckt.find("b_MACC0_0"), nullptr);
}

TEST(Netlister, WordlineResistanceOptional) {
  circuit::Circuit ckt;
  const auto mc = small();
  NetlistOptions opts;
  opts.include_wordline_resistance = true;
  build_array(ckt, mc, opts);
  EXPECT_NE(ckt.find("Rwl0"), nullptr);
  EXPECT_TRUE(ckt.has_node("wl0"));
}

// Electrical sanity: select a cell and write VDD onto its bit line; the
// storage node must follow (word line boosted), then hold after deselect.
TEST(Netlister, CellWritesAndHoldsCharge) {
  circuit::Circuit ckt;
  const auto mc = small();
  const auto t = mc.tech();
  const ArrayNet net = build_array(ckt, mc);
  using circuit::SourceWave;
  // WL0 and SBL0 on; drive INBL0 to VDD then isolate everything at 20 ns.
  ckt.get<circuit::VSource>("V_WL0").set_wave(SourceWave::pwl(
      {{0.0, 0.0}, {0.2_ns, t.vpp}, {20_ns, t.vpp}, {20.2_ns, 0.0}}));
  ckt.get<circuit::VSource>("V_SBL0").set_wave(SourceWave::pwl(
      {{0.0, 0.0}, {0.2_ns, t.vpp}, {20_ns, t.vpp}, {20.2_ns, 0.0}}));
  ckt.get<circuit::VSource>("V_INBL0").set_wave(
      SourceWave::pwl({{0.0, 0.0}, {1_ns, 0.0}, {1.2_ns, t.vdd}}));
  circuit::TranParams tp;
  tp.t_stop = 40_ns;
  tp.dt = 20_ps;
  tp.uic = true;
  const auto res = circuit::transient(
      ckt, tp, {.nodes = {"stor0_0", "plate"}, .device_currents = {}});
  // Written to full VDD while selected...
  EXPECT_NEAR(res.trace.value_at("stor0_0", 19_ns), t.vdd, 0.05);
  // ...and held after isolation (small feedthrough dip allowed).
  EXPECT_GT(res.trace.final_value("stor0_0"), t.vdd - 0.3);
}

}  // namespace
}  // namespace ecms::edram
