#include "edram/retention.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "tech/tech.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"
#include "util/units.hpp"

namespace ecms::edram {
namespace {

MacroCell mc8() {
  return MacroCell::uniform({.rows = 8, .cols = 8}, tech::tech018(), 30_fF);
}

TEST(RetentionTime, ClosedFormSanity) {
  // 30 fF, 1 fS: tau = 30 s; with vdd = 1.8 and a modest margin the cell
  // retains for a good fraction of tau.
  const double t = retention_time(30_fF, 1e-15, 1.8, 8_fF, 0.08);
  EXPECT_GT(t, 5.0);
  EXPECT_LT(t, 30.0);
}

TEST(RetentionTime, ScalesWithCapAndLeak) {
  const double base = retention_time(30_fF, 1e-15, 1.8, 8_fF, 0.08);
  EXPECT_GT(retention_time(60_fF, 1e-15, 1.8, 8_fF, 0.08), 1.8 * base);
  EXPECT_NEAR(retention_time(30_fF, 2e-15, 1.8, 8_fF, 0.08), base / 2.0,
              1e-9);
}

TEST(RetentionTime, TinyCapCannotRead) {
  // Swing below margin even fully charged: retention is zero.
  EXPECT_DOUBLE_EQ(retention_time(0.5_fF, 1e-15, 1.8, 8_fF, 0.08), 0.0);
  EXPECT_DOUBLE_EQ(retention_time(0.0, 1e-15, 1.8, 8_fF, 0.08), 0.0);
}

TEST(RetentionField, DeterministicAndPositive) {
  const auto mc = mc8();
  const RetentionField a(mc, {}, 0.08, 7);
  const RetentionField b(mc, {}, 0.08, 7);
  EXPECT_EQ(a.values(), b.values());
  for (double t : a.values()) EXPECT_GT(t, 0.0);
}

TEST(RetentionField, ShortHasZeroRetention) {
  auto mc = mc8();
  mc.set_defect(2, 2, tech::make_short());
  const RetentionField f(mc, {}, 0.08, 7);
  // The shunt discharges the cell in picoseconds: retention is effectively
  // zero (any refresh period is far too long).
  EXPECT_LT(f.retention(2, 2), 1e-9);
  EXPECT_GT(f.retention(0, 0), 1.0);
}

TEST(RetentionField, SmallCapsRetainLess) {
  auto mc = mc8();
  mc.set_true_cap(1, 1, 12_fF);
  LeakPopulation pop;
  pop.sigma_log = 0.0;  // isolate the capacitance effect
  pop.tail_fraction = 0.0;
  const RetentionField f(mc, pop, 0.08, 7);
  EXPECT_LT(f.retention(1, 1), 0.5 * f.retention(0, 0));
}

TEST(RetentionField, TailCellsExist) {
  LeakPopulation pop;
  pop.tail_fraction = 0.05;
  const auto mc = MacroCell::uniform({.rows = 32, .cols = 32},
                                     tech::tech018(), 30_fF);
  const RetentionField f(mc, pop, 0.08, 11);
  // The 1st percentile must sit far below the median: a real tail.
  EXPECT_LT(f.percentile_time(0.01), 0.3 * f.percentile_time(0.5));
}

TEST(RetentionField, PercentileMonotone) {
  const auto mc = mc8();
  const RetentionField f(mc, {}, 0.08, 3);
  EXPECT_LE(f.percentile_time(0.01), f.percentile_time(0.5));
  EXPECT_LE(f.percentile_time(0.5), f.percentile_time(1.0));
  EXPECT_THROW(f.percentile_time(0.0), Error);
}

TEST(RetentionPredict, MedianLeakMatchesTruth) {
  // With no leakage spread the predictor is exact.
  LeakPopulation pop;
  pop.sigma_log = 0.0;
  pop.tail_fraction = 0.0;
  const auto mc = mc8();
  const RetentionField f(mc, pop, 0.08, 5);
  const double pred = predict_retention(30_fF, pop, 1.8,
                                        mc.bitline_total_cap(), 0.08);
  EXPECT_NEAR(pred, f.retention(3, 3), 1e-9);
}

TEST(RetentionPredict, CapacitanceRankingSurvivesLeakSpread) {
  // The predictor only sees capacitance; with realistic leakage spread the
  // *ranking* from capacitance must still correlate with true retention.
  auto mc = MacroCell::uniform({.rows = 16, .cols = 16}, tech::tech018(),
                               30_fF);
  Rng rng(9);
  std::vector<double> caps, t_true;
  for (std::size_t r = 0; r < 16; ++r)
    for (std::size_t c = 0; c < 16; ++c)
      mc.set_true_cap(r, c, rng.uniform(12e-15, 50e-15));
  const RetentionField f(mc, {}, 0.08, 13);
  for (std::size_t r = 0; r < 16; ++r) {
    for (std::size_t c = 0; c < 16; ++c) {
      caps.push_back(mc.true_cap(r, c));
      t_true.push_back(f.retention(r, c));
    }
  }
  EXPECT_GT(pearson(caps, t_true), 0.5);
}

}  // namespace
}  // namespace ecms::edram
