// Tiling (plate segmentation) and the shared bridge-partner logic.
#include <gtest/gtest.h>

#include "edram/macrocell.hpp"
#include "tech/tech.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

namespace ecms::edram {
namespace {

MacroCell big() {
  tech::CapProcessParams cp;
  cp.local_sigma_rel = 0.05;
  tech::CapField field(cp, 8, 8, 42);
  tech::DefectMap defects(8, 8);
  defects.set(5, 6, tech::make_short());
  return MacroCell({.rows = 8, .cols = 8}, tech::tech018(), std::move(field),
                   std::move(defects));
}

TEST(Tiling, TileCopiesGroundTruth) {
  const MacroCell mc = big();
  const MacroCell t = mc.tile(4, 4, 4, 4);
  EXPECT_EQ(t.rows(), 4u);
  EXPECT_EQ(t.cols(), 4u);
  for (std::size_t r = 0; r < 4; ++r)
    for (std::size_t c = 0; c < 4; ++c)
      EXPECT_DOUBLE_EQ(t.true_cap(r, c), mc.true_cap(4 + r, 4 + c));
  // The short at (5,6) lands at tile coordinates (1,2).
  EXPECT_EQ(t.defect(1, 2).type, tech::DefectType::kShort);
}

TEST(Tiling, TileInheritsSpecAndTech) {
  const MacroCell mc = big();
  const MacroCell t = mc.tile(0, 0, 2, 2);
  EXPECT_DOUBLE_EQ(t.spec().access_w, mc.spec().access_w);
  EXPECT_DOUBLE_EQ(t.tech().vdd, mc.tech().vdd);
  // Bit-line capacitance follows the tile's (shorter) column height.
  EXPECT_LT(t.bitline_cap(), mc.bitline_cap());
}

TEST(Tiling, OutOfRangeThrows) {
  const MacroCell mc = big();
  EXPECT_THROW(mc.tile(6, 0, 4, 4), Error);
  EXPECT_THROW(mc.tile(0, 5, 2, 4), Error);
}

TEST(Tiling, SubFieldAndSubMapValidate) {
  tech::CapProcessParams cp;
  const tech::CapField f(cp, 4, 4, 1);
  EXPECT_THROW(f.sub(2, 2, 4, 4), Error);
  const tech::DefectMap m(4, 4);
  EXPECT_THROW(m.sub(0, 0, 5, 1), Error);
  EXPECT_EQ(m.sub(1, 1, 2, 2).rows(), 2u);
}

TEST(BridgePartner, OwnBridgePointsRight) {
  auto mc = MacroCell::uniform({}, tech::tech018(), 30_fF);
  mc.set_defect(1, 1, tech::make_bridge());
  const auto p = mc.bridge_partner_col(1, 1);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(*p, 2u);
}

TEST(BridgePartner, LastColumnBridgesLeft) {
  auto mc = MacroCell::uniform({}, tech::tech018(), 30_fF);
  mc.set_defect(2, 3, tech::make_bridge());  // last column of a 4-wide array
  const auto p = mc.bridge_partner_col(2, 3);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(*p, 2u);
}

TEST(BridgePartner, PartnerSeesItToo) {
  auto mc = MacroCell::uniform({}, tech::tech018(), 30_fF);
  mc.set_defect(1, 1, tech::make_bridge());  // pairs (1,1) <-> (1,2)
  const auto p = mc.bridge_partner_col(1, 2);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(*p, 1u);
}

TEST(BridgePartner, UnrelatedCellsHaveNone) {
  auto mc = MacroCell::uniform({}, tech::tech018(), 30_fF);
  mc.set_defect(1, 1, tech::make_bridge());
  EXPECT_FALSE(mc.bridge_partner_col(1, 0).has_value());
  EXPECT_FALSE(mc.bridge_partner_col(0, 1).has_value());
  EXPECT_FALSE(mc.bridge_partner_col(1, 3).has_value());
}

TEST(BridgePartner, SingleColumnArrayHasNone) {
  auto mc = MacroCell::uniform({.rows = 4, .cols = 1}, tech::tech018(),
                               30_fF);
  mc.set_defect(0, 0, tech::make_bridge());
  EXPECT_FALSE(mc.bridge_partner_col(0, 0).has_value());
}

}  // namespace
}  // namespace ecms::edram
