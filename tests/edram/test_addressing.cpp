#include "edram/addressing.hpp"

#include <gtest/gtest.h>

#include <set>

#include "util/error.hpp"

namespace ecms::edram {
namespace {

TEST(Addressing, LinearIsIdentity) {
  const AddressMap m(4, 8, Scramble::kLinear);
  EXPECT_EQ(m.physical_of(0), (CellAddr{0, 0}));
  EXPECT_EQ(m.physical_of(9), (CellAddr{1, 1}));
  EXPECT_EQ(m.logical_of({3, 7}), 31u);
}

TEST(Addressing, InterleaveSplitsParity) {
  const AddressMap m(8, 1, Scramble::kRowInterleave);
  // Even logical rows occupy the top half.
  EXPECT_EQ(m.physical_of(0).row, 0u);
  EXPECT_EQ(m.physical_of(2 * 1).row, 1u);
  // Odd logical rows start at the middle.
  EXPECT_EQ(m.physical_of(1).row, 4u);
  EXPECT_EQ(m.physical_of(3).row, 5u);
}

TEST(Addressing, BitReversalInvolution) {
  const AddressMap m(8, 2, Scramble::kBitReversalRow);
  EXPECT_EQ(m.physical_of(0 * 2).row, 0u);
  EXPECT_EQ(m.physical_of(1 * 2).row, 4u);  // 001 -> 100
  EXPECT_EQ(m.physical_of(3 * 2).row, 6u);  // 011 -> 110
}

TEST(Addressing, BitReversalNeedsPowerOfTwo) {
  EXPECT_THROW(AddressMap(6, 2, Scramble::kBitReversalRow), Error);
  EXPECT_NO_THROW(AddressMap(16, 2, Scramble::kBitReversalRow));
}

// Every scheme must be a bijection with a consistent inverse.
class AddressBijectionTest : public ::testing::TestWithParam<Scramble> {};

TEST_P(AddressBijectionTest, RoundTripsAndCovers) {
  const AddressMap m(8, 4, GetParam());
  std::set<std::pair<std::size_t, std::size_t>> seen;
  for (std::size_t a = 0; a < m.cell_count(); ++a) {
    const CellAddr p = m.physical_of(a);
    ASSERT_LT(p.row, 8u);
    ASSERT_LT(p.col, 4u);
    seen.insert({p.row, p.col});
    EXPECT_EQ(m.logical_of(p), a);
  }
  EXPECT_EQ(seen.size(), m.cell_count());
}

INSTANTIATE_TEST_SUITE_P(Schemes, AddressBijectionTest,
                         ::testing::Values(Scramble::kLinear,
                                           Scramble::kRowInterleave,
                                           Scramble::kBitReversalRow),
                         [](const auto& info) {
                           return scramble_name(info.param) == "linear"
                                      ? std::string("linear")
                                  : scramble_name(info.param) ==
                                          "row-interleave"
                                      ? std::string("interleave")
                                      : std::string("bitrev");
                         });

TEST(Addressing, OutOfRangeThrows) {
  const AddressMap m(2, 2, Scramble::kLinear);
  EXPECT_THROW(m.physical_of(4), Error);
  EXPECT_THROW(m.logical_of({2, 0}), Error);
}

TEST(Addressing, OddRowsInterleaveStillBijective) {
  const AddressMap m(7, 3, Scramble::kRowInterleave);
  std::set<std::size_t> rows;
  for (std::size_t lr = 0; lr < 7; ++lr)
    rows.insert(m.physical_of(lr * 3).row);
  EXPECT_EQ(rows.size(), 7u);
}

}  // namespace
}  // namespace ecms::edram
