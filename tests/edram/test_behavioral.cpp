#include "edram/behavioral.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "tech/tech.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

namespace ecms::edram {
namespace {

MacroCell healthy(std::size_t rows = 8, std::size_t cols = 8) {
  return MacroCell::uniform({.rows = rows, .cols = cols}, tech::tech018(),
                            30_fF);
}

TEST(Behavioral, WriteReadRoundTrip) {
  const auto mc = healthy();
  BehavioralArray a(mc);
  a.write(3, 4, true);
  a.write(3, 5, false);
  EXPECT_TRUE(a.read(3, 4));
  EXPECT_FALSE(a.read(3, 5));
}

TEST(Behavioral, WriteSetsFullLevels) {
  const auto mc = healthy();
  BehavioralArray a(mc);
  a.write(0, 0, true);
  EXPECT_DOUBLE_EQ(a.storage_voltage(0, 0), 1.8);
  a.write(0, 0, false);
  EXPECT_DOUBLE_EQ(a.storage_voltage(0, 0), 0.0);
}

TEST(Behavioral, ReadSwingFollowsChargeSharing) {
  const auto mc = healthy();
  BehavioralArray a(mc);
  a.write(1, 1, true);
  const double cm = 30_fF, cbl = mc.bitline_total_cap();
  const double expected = (1.8 - 0.9) * cm / (cm + cbl);
  EXPECT_NEAR(a.read_swing(1, 1), expected, 1e-6);
  a.write(1, 1, false);
  EXPECT_NEAR(a.read_swing(1, 1), -expected, 1e-6);
}

TEST(Behavioral, ShortedCellSitsAtPlateBias) {
  auto mc = healthy();
  mc.set_defect(2, 2, tech::make_short());
  BehavioralArray a(mc);
  EXPECT_NEAR(a.storage_voltage(2, 2), 0.9, 1e-9);
  a.write(2, 2, true);
  // The short drags it right back.
  EXPECT_NEAR(a.storage_voltage(2, 2), 0.9, 1e-9);
  // Sense swing ~0: the ambiguous read resolves to the bias value (0).
  EXPECT_FALSE(a.read(2, 2));
}

TEST(Behavioral, OpenCellCannotBeRead) {
  auto mc = healthy();
  mc.set_defect(1, 0, tech::make_open());
  BehavioralArray a(mc);
  a.write(1, 0, true);
  // The fringe residual gives a sub-offset swing.
  EXPECT_LT(std::abs(a.read_swing(1, 0)), a.sense().sense_offset);
  EXPECT_FALSE(a.read(1, 0));
}

TEST(Behavioral, MarginalPartialCellStillPasses) {
  // The paper's key diagnostic gap: a 40% capacitor still reads correctly,
  // so the digital bitmap cannot see it.
  auto mc = healthy();
  mc.set_defect(4, 4, tech::make_partial(0.4));
  BehavioralArray a(mc);
  a.write(4, 4, true);
  EXPECT_TRUE(a.read(4, 4));
  a.write(4, 4, false);
  EXPECT_FALSE(a.read(4, 4));
}

TEST(Behavioral, SeverePartialFailsOnTallArray) {
  // Same defect, larger bit-line capacitance: the swing drops below the
  // sense margin and the cell fails functionally.
  auto mc = healthy(64, 4);
  mc.set_defect(10, 1, tech::make_partial(0.1));  // 3 fF
  BehavioralArray a(mc);
  a.write(10, 1, true);
  EXPECT_FALSE(a.read(10, 1));  // swing ~0.9*3/131 = 20 mV < 80 mV margin
}

TEST(Behavioral, ReadIsDestructiveWithWriteBack) {
  const auto mc = healthy();
  BehavioralArray a(mc);
  a.write(0, 1, true);
  (void)a.read(0, 1);
  EXPECT_DOUBLE_EQ(a.storage_voltage(0, 1), 1.8);  // restored full level
}

TEST(Behavioral, BridgedPairEqualizes) {
  auto mc = healthy();
  mc.set_defect(3, 3, tech::make_bridge());
  BehavioralArray a(mc);
  a.write(3, 4, true);   // neighbour high
  a.write(3, 3, false);  // writing the bridged cell equalizes the pair
  EXPECT_NEAR(a.storage_voltage(3, 3), 0.9, 0.01);
  EXPECT_NEAR(a.storage_voltage(3, 4), 0.9, 0.01);
}

TEST(Behavioral, RetentionDecay) {
  const auto mc = healthy();
  BehavioralArray a(mc);
  a.write(0, 0, true);
  // tau = 30 fF / 1 fS = 30 s; after 30 s the level is 1/e.
  a.idle(30.0);
  EXPECT_NEAR(a.storage_voltage(0, 0), 1.8 * std::exp(-1.0), 0.01);
  // Long enough idle and the cell reads 0.
  a.write(0, 0, true);
  a.idle(300.0);
  EXPECT_FALSE(a.read(0, 0));
}

TEST(Behavioral, SmallerCapDecaysFaster) {
  auto mc = healthy();
  mc.set_defect(0, 1, tech::make_partial(0.3));
  BehavioralArray a(mc);
  a.write(0, 0, true);
  a.write(0, 1, true);
  a.idle(20.0);
  EXPECT_LT(a.storage_voltage(0, 1), a.storage_voltage(0, 0));
}

TEST(Behavioral, OutOfRangeThrows) {
  const auto mc = healthy(2, 2);
  BehavioralArray a(mc);
  EXPECT_THROW(a.write(2, 0, true), Error);
  EXPECT_THROW(a.read(0, 2), Error);
  EXPECT_THROW(a.idle(-1.0), Error);
}

}  // namespace
}  // namespace ecms::edram
