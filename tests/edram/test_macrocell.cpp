#include "edram/macrocell.hpp"

#include <gtest/gtest.h>

#include "tech/tech.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

namespace ecms::edram {
namespace {

TEST(MacroCellT, UniformConstruction) {
  const auto mc = MacroCell::uniform({.rows = 4, .cols = 8},
                                     tech::tech018(), 30_fF);
  EXPECT_EQ(mc.rows(), 4u);
  EXPECT_EQ(mc.cols(), 8u);
  EXPECT_EQ(mc.cell_count(), 32u);
  EXPECT_DOUBLE_EQ(mc.true_cap(3, 7), 30_fF);
  EXPECT_EQ(mc.defect(0, 0).type, tech::DefectType::kNone);
}

TEST(MacroCellT, ProbeSetsOnlyTarget) {
  const auto mc = MacroCell::probe({}, tech::tech018(), 1, 2, 12_fF, 30_fF);
  EXPECT_DOUBLE_EQ(mc.true_cap(1, 2), 12_fF);
  EXPECT_DOUBLE_EQ(mc.true_cap(0, 0), 30_fF);
  EXPECT_DOUBLE_EQ(mc.true_cap(1, 1), 30_fF);
}

TEST(MacroCellT, EffectiveCapAppliesDefects) {
  auto mc = MacroCell::uniform({}, tech::tech018(), 30_fF);
  mc.set_defect(0, 0, tech::make_partial(0.5));
  mc.set_defect(0, 1, tech::make_open());
  EXPECT_DOUBLE_EQ(mc.effective_cap(0, 0), 15_fF);
  EXPECT_LT(mc.effective_cap(0, 1), 1_fF);  // only the fringe residual
  EXPECT_DOUBLE_EQ(mc.effective_cap(1, 1), 30_fF);
}

TEST(MacroCellT, BitlineCapScalesWithRows) {
  const auto t = tech::tech018();
  const auto small = MacroCell::uniform({.rows = 4, .cols = 4}, t, 30_fF);
  const auto tall = MacroCell::uniform({.rows = 16, .cols = 4}, t, 30_fF);
  EXPECT_NEAR(tall.bitline_cap(), 4.0 * small.bitline_cap(), 1e-20);
}

TEST(MacroCellT, MismatchedFieldShapeThrows) {
  const auto t = tech::tech018();
  tech::CapProcessParams cp;
  tech::CapField field(cp, 2, 2, 1);
  tech::DefectMap defects(4, 4);
  EXPECT_THROW(
      MacroCell({.rows = 4, .cols = 4}, t, std::move(field), std::move(defects)),
      Error);
}

}  // namespace
}  // namespace ecms::edram
