#include "bitmap/analog_bitmap.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "tech/tech.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

namespace ecms::bitmap {
namespace {

edram::MacroCell mc8() {
  return edram::MacroCell::uniform({.rows = 8, .cols = 8}, tech::tech018(),
                                   30_fF);
}

TEST(AnalogBitmapT, ShapeAndAccess) {
  AnalogBitmap bm(4, 6, 20);
  EXPECT_EQ(bm.rows(), 4u);
  EXPECT_EQ(bm.cols(), 6u);
  bm.set(1, 2, 7);
  EXPECT_EQ(bm.at(1, 2), 7);
  EXPECT_THROW(bm.set(0, 0, 21), Error);
  EXPECT_THROW(bm.at(4, 0), Error);
}

TEST(AnalogBitmapT, ExtractUniformArrayIsFlat) {
  const auto mc = mc8();
  const AnalogBitmap bm = AnalogBitmap::extract_tiled(mc, {});
  // Every healthy 30 fF cell gets (nearly) the same code; allow corner-cell
  // offset differences of one step.
  const int ref = bm.at(4, 4);
  for (std::size_t r = 0; r < 8; ++r)
    for (std::size_t c = 0; c < 8; ++c)
      EXPECT_NEAR(bm.at(r, c), ref, 1) << r << "," << c;
  EXPECT_GT(ref, 2);
  EXPECT_LT(ref, 18);
}

TEST(AnalogBitmapT, DefectsShowAsCodeZero) {
  auto mc = mc8();
  mc.set_defect(2, 3, tech::make_short());
  mc.set_defect(5, 6, tech::make_open());
  const AnalogBitmap bm = AnalogBitmap::extract_tiled(mc, {});
  EXPECT_EQ(bm.at(2, 3), 0);
  EXPECT_EQ(bm.at(5, 6), 0);
  EXPECT_EQ(bm.count_code(0), 2u);
  EXPECT_EQ(bm.count_out_of_range(), 2u);
}

TEST(AnalogBitmapT, StatisticsExcludeOutOfRange) {
  AnalogBitmap bm(2, 2, 20);
  bm.set(0, 0, 0);    // excluded
  bm.set(0, 1, 20);   // excluded
  bm.set(1, 0, 10);
  bm.set(1, 1, 12);
  EXPECT_DOUBLE_EQ(bm.mean_in_range_code(), 11.0);
  EXPECT_NEAR(bm.stddev_in_range_code(), std::sqrt(2.0), 1e-12);
}

TEST(AnalogBitmapT, AllOutOfRangeThrowsOnMean) {
  AnalogBitmap bm(1, 2, 20);
  bm.set(0, 0, 0);
  bm.set(0, 1, 20);
  EXPECT_THROW(bm.mean_in_range_code(), Error);
}

TEST(AnalogBitmapT, NoiseChangesSomeCodes) {
  const auto mc = mc8();
  const AnalogBitmap clean = AnalogBitmap::extract_tiled(mc, {});
  const msu::FastModel tile_model(mc.tile(0, 0, 4, 4), {});
  msu::MeasureNoise noise;
  noise.enabled = true;
  noise.comparator_sigma_i = 2.0 * tile_model.delta_i();
  Rng rng(3);
  const AnalogBitmap noisy =
      AnalogBitmap::extract_tiled(mc, {}, noise, rng);
  std::size_t diffs = 0;
  for (std::size_t r = 0; r < 8; ++r)
    for (std::size_t c = 0; c < 8; ++c)
      if (clean.at(r, c) != noisy.at(r, c)) ++diffs;
  EXPECT_GT(diffs, 0u);
}

TEST(AnalogBitmapT, CapacitanceMapThroughAbacus) {
  const auto mc = mc8();
  // The abacus belongs to the tile-sized measurement context.
  const msu::FastModel m(mc.tile(0, 0, 4, 4), {});
  const msu::Abacus ab = msu::Abacus::build(
      [&](double cm) { return m.code_of_cap(cm); }, 20, 1e-15, 70e-15, 300);
  const AnalogBitmap bm = AnalogBitmap::extract_tiled(mc, {});
  const auto caps = bm.capacitance_map(ab);
  ASSERT_EQ(caps.size(), 64u);
  // Healthy cells decode to within the abacus bin of 30 fF.
  EXPECT_NEAR(to_unit::fF(caps[9 * 1]), 30.0, 4.0);
}

TEST(AnalogBitmapT, CapacitanceMapNanForOutOfRange) {
  auto mc = mc8();
  mc.set_defect(0, 0, tech::make_short());
  const msu::FastModel m(mc.tile(0, 0, 4, 4), {});
  const msu::Abacus ab = msu::Abacus::build(
      [&](double cm) { return m.code_of_cap(cm); }, 20, 1e-15, 70e-15, 300);
  const auto caps =
      AnalogBitmap::extract_tiled(mc, {}).capacitance_map(ab);
  EXPECT_TRUE(std::isnan(caps[0]));
}

TEST(DigitalBitmapT, Basics) {
  DigitalBitmap bm(3, 3);
  EXPECT_EQ(bm.fail_count(), 0u);
  bm.set_fail(1, 1);
  bm.set_fail(2, 0);
  EXPECT_TRUE(bm.fails(1, 1));
  EXPECT_FALSE(bm.fails(0, 0));
  EXPECT_EQ(bm.fail_count(), 2u);
  bm.set_fail(1, 1, false);
  EXPECT_EQ(bm.fail_count(), 1u);
}

TEST(DigitalBitmapT, MergeOrs) {
  DigitalBitmap a(2, 2), b(2, 2);
  a.set_fail(0, 0);
  b.set_fail(1, 1);
  a.merge(b);
  EXPECT_EQ(a.fail_count(), 2u);
  DigitalBitmap wrong(3, 2);
  EXPECT_THROW(a.merge(wrong), Error);
}

}  // namespace
}  // namespace ecms::bitmap
