#include "bitmap/signature.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace ecms::bitmap {
namespace {

AnalogBitmap make_bm(std::initializer_list<int> codes, std::size_t rows,
                     std::size_t cols, int steps = 20) {
  AnalogBitmap bm(rows, cols, steps);
  std::size_t i = 0;
  for (int code : codes) {
    bm.set(i / cols, i % cols, code);
    ++i;
  }
  return bm;
}

TEST(SignatureT, CategoryBoundaries) {
  const AnalogBitmap bm =
      make_bm({0, 1, 3, 4, 10, 16, 17, 19, 20}, 3, 3);
  const SignatureMap sig = SignatureMap::categorize(bm);
  EXPECT_EQ(sig.at(0, 0), CellSignature::kUnderRange);    // 0
  EXPECT_EQ(sig.at(0, 1), CellSignature::kMarginalLow);   // 1
  EXPECT_EQ(sig.at(0, 2), CellSignature::kMarginalLow);   // 3
  EXPECT_EQ(sig.at(1, 0), CellSignature::kNominal);       // 4
  EXPECT_EQ(sig.at(1, 1), CellSignature::kNominal);       // 10
  EXPECT_EQ(sig.at(1, 2), CellSignature::kNominal);       // 16
  EXPECT_EQ(sig.at(2, 0), CellSignature::kMarginalHigh);  // 17
  EXPECT_EQ(sig.at(2, 1), CellSignature::kMarginalHigh);  // 19
  EXPECT_EQ(sig.at(2, 2), CellSignature::kOverRange);     // 20
}

TEST(SignatureT, CustomBands) {
  const AnalogBitmap bm = make_bm({1, 5, 15, 19}, 2, 2);
  SignatureParams p;
  p.marginal_low_codes = 5;
  p.marginal_high_codes = 1;
  const SignatureMap sig = SignatureMap::categorize(bm, p);
  EXPECT_EQ(sig.at(0, 0), CellSignature::kMarginalLow);
  EXPECT_EQ(sig.at(0, 1), CellSignature::kMarginalLow);
  EXPECT_EQ(sig.at(1, 0), CellSignature::kNominal);
  EXPECT_EQ(sig.at(1, 1), CellSignature::kMarginalHigh);
}

TEST(SignatureT, CountsAndMask) {
  const AnalogBitmap bm = make_bm({0, 10, 10, 20}, 2, 2);
  const SignatureMap sig = SignatureMap::categorize(bm);
  EXPECT_EQ(sig.count(CellSignature::kNominal), 2u);
  EXPECT_EQ(sig.anomalous_count(), 2u);
  const auto mask = sig.anomaly_mask();
  EXPECT_EQ(mask[0], 1);
  EXPECT_EQ(mask[1], 0);
  EXPECT_EQ(mask[3], 1);
}

TEST(SignatureT, Letters) {
  const AnalogBitmap bm = make_bm({0, 2, 10, 18, 20, 10}, 2, 3);
  const auto letters = SignatureMap::categorize(bm).letters();
  EXPECT_EQ(letters[0], '0');
  EXPECT_EQ(letters[1], 'l');
  EXPECT_EQ(letters[2], '.');
  EXPECT_EQ(letters[3], 'h');
  EXPECT_EQ(letters[4], 'F');
}

TEST(SignatureT, NamesUnique) {
  EXPECT_EQ(signature_name(CellSignature::kUnderRange), "under-range");
  EXPECT_EQ(signature_name(CellSignature::kOverRange), "over-range");
  EXPECT_NE(signature_letter(CellSignature::kMarginalLow),
            signature_letter(CellSignature::kMarginalHigh));
}

}  // namespace
}  // namespace ecms::bitmap
