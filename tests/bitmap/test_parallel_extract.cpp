// Determinism contract of the parallel tiled extraction: for any worker
// count, the thread-pool path must produce codes bit-identical to the
// serial path — including the noisy overload, whose per-tile randomness is
// derived via Rng::fork(tile_index) rather than a shared sequential stream.
#include <gtest/gtest.h>

#include "bitmap/analog_bitmap.hpp"
#include "tech/tech.hpp"
#include "util/threadpool.hpp"
#include "util/units.hpp"

namespace ecms::bitmap {
namespace {

// 16x16 array with process variation and a few defects, so codes actually
// vary from cell to cell.
edram::MacroCell varied16() {
  tech::CapProcessParams cp;
  cp.local_sigma_rel = 0.04;
  tech::CapField field(cp, 16, 16, 99);
  Rng rng(99);
  tech::DefectRates rates;
  rates.short_rate = 0.01;
  rates.open_rate = 0.01;
  rates.partial_rate = 0.02;
  tech::DefectMap defects = tech::DefectMap::random(16, 16, rates, rng);
  return edram::MacroCell({.rows = 16, .cols = 16}, tech::tech018(),
                          std::move(field), std::move(defects));
}

TEST(ParallelExtractT, CleanCodesIdenticalAtAnyJobCount) {
  const auto mc = varied16();
  const AnalogBitmap serial = AnalogBitmap::extract_tiled(mc, {});
  for (std::size_t jobs : {1u, 2u, 8u}) {
    util::ThreadPool pool(jobs);
    const AnalogBitmap par = AnalogBitmap::extract_tiled(mc, {}, 4, 4, &pool);
    EXPECT_EQ(serial.codes(), par.codes()) << "jobs = " << jobs;
  }
}

TEST(ParallelExtractT, NoisyCodesIdenticalAtAnyJobCount) {
  const auto mc = varied16();
  msu::MeasureNoise noise;
  noise.enabled = true;
  noise.vgs_sigma = 3e-3;
  Rng serial_rng(7);
  const AnalogBitmap serial =
      AnalogBitmap::extract_tiled(mc, {}, noise, serial_rng);
  for (std::size_t jobs : {1u, 2u, 8u}) {
    util::ThreadPool pool(jobs);
    Rng rng(7);
    const AnalogBitmap par =
        AnalogBitmap::extract_tiled(mc, {}, noise, rng, 4, 4, &pool);
    EXPECT_EQ(serial.codes(), par.codes()) << "jobs = " << jobs;
  }
}

TEST(ParallelExtractT, NoisyExtractionIsAPureFunctionOfRngState) {
  // fork() does not consume the caller's stream, so repeating the call with
  // an equally seeded Rng reproduces the exact bitmap.
  const auto mc = varied16();
  msu::MeasureNoise noise;
  noise.enabled = true;
  noise.vgs_sigma = 3e-3;
  Rng r1(21), r2(21);
  const AnalogBitmap a = AnalogBitmap::extract_tiled(mc, {}, noise, r1);
  const AnalogBitmap b = AnalogBitmap::extract_tiled(mc, {}, noise, r2);
  EXPECT_EQ(a.codes(), b.codes());
}

TEST(ParallelExtractT, NoiseStillPerturbsCodes) {
  const auto mc = varied16();
  const AnalogBitmap clean = AnalogBitmap::extract_tiled(mc, {});
  msu::MeasureNoise noise;
  noise.enabled = true;
  noise.vgs_sigma = 5e-3;
  util::ThreadPool pool(4);
  Rng rng(3);
  const AnalogBitmap noisy =
      AnalogBitmap::extract_tiled(mc, {}, noise, rng, 4, 4, &pool);
  std::size_t diffs = 0;
  for (std::size_t i = 0; i < clean.codes().size(); ++i)
    if (clean.codes()[i] != noisy.codes()[i]) ++diffs;
  EXPECT_GT(diffs, 0u);
}

TEST(ParallelExtractT, NonSquareTilingWorksInParallel) {
  const auto mc = varied16();
  util::ThreadPool pool(3);
  const AnalogBitmap serial = AnalogBitmap::extract_tiled(mc, {}, 2, 8);
  const AnalogBitmap par =
      AnalogBitmap::extract_tiled(mc, {}, 2, 8, &pool);
  EXPECT_EQ(serial.codes(), par.codes());
}

}  // namespace
}  // namespace ecms::bitmap
