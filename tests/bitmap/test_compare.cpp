// The paper's central comparative claim, quantified: the analog bitmap sees
// marginal cells the digital bitmap cannot.
#include "bitmap/compare.hpp"

#include <gtest/gtest.h>

#include "edram/behavioral.hpp"
#include "march/runner.hpp"
#include "tech/tech.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

namespace ecms::bitmap {
namespace {

struct Scenario {
  edram::MacroCell mc;
  AnalogBitmap analog;
  DigitalBitmap digital;

  explicit Scenario(edram::MacroCell cell)
      : mc(std::move(cell)),
        analog(AnalogBitmap::extract_tiled(mc, {})),
        digital(1, 1) {
    edram::BehavioralArray array(mc);
    march::EdramMemory mem(array);
    digital = march::run_march(mem, march::march_c_minus()).fail_bitmap;
  }
};

edram::MacroCell base(std::size_t n = 16) {
  return edram::MacroCell::uniform({.rows = n, .cols = n}, tech::tech018(),
                                   30_fF);
}

TEST(CompareT, CleanArrayScoresPerfect) {
  const Scenario s{base()};
  const auto rep = compare_bitmaps(s.mc, s.analog, s.digital);
  EXPECT_EQ(rep.truth_defects, 0u);
  EXPECT_EQ(rep.truth_marginal, 0u);
  EXPECT_EQ(rep.analog_false_flags, 0u);
  EXPECT_EQ(rep.digital_false_flags, 0u);
}

TEST(CompareT, HardDefectsSeenByBoth) {
  auto mc = base();
  mc.set_defect(1, 1, tech::make_short());
  mc.set_defect(3, 3, tech::make_open());
  const Scenario s{std::move(mc)};
  const auto rep = compare_bitmaps(s.mc, s.analog, s.digital);
  EXPECT_EQ(rep.truth_defects, 2u);
  EXPECT_EQ(rep.defects_seen_analog, 2u);
  EXPECT_EQ(rep.defects_seen_digital, 2u);
  EXPECT_DOUBLE_EQ(rep.defect_coverage_analog(), 1.0);
  EXPECT_DOUBLE_EQ(rep.defect_coverage_digital(), 1.0);
}

TEST(CompareT, MarginalCellsOnlyAnalogSees) {
  // Cells at 15-18 fF: functionally fine on a 16-row array, but deep in the
  // analog bitmap's marginal-low band.
  auto mc = base();
  mc.set_true_cap(2, 2, 15_fF);
  mc.set_true_cap(9, 12, 18_fF);
  const Scenario s{std::move(mc)};
  const auto rep = compare_bitmaps(s.mc, s.analog, s.digital);
  EXPECT_EQ(rep.truth_marginal, 2u);
  EXPECT_EQ(rep.marginal_seen_analog, 2u);
  EXPECT_EQ(rep.marginal_seen_digital, 0u);  // the paper's diagnostic gap
  EXPECT_GT(rep.marginal_coverage_analog(),
            rep.marginal_coverage_digital());
}

TEST(CompareT, MildPartialCountsAsMarginal) {
  // A 0.5 partial leaves 15 fF effective: functional-but-degraded, so it is
  // ground-truth *marginal* (the mechanism behind most marginal cells).
  auto mc = base();
  mc.set_defect(5, 5, tech::make_partial(0.5));
  const Scenario s{std::move(mc)};
  const auto rep = compare_bitmaps(s.mc, s.analog, s.digital);
  EXPECT_EQ(rep.truth_defects, 0u);
  EXPECT_EQ(rep.truth_marginal, 1u);
  EXPECT_EQ(rep.marginal_seen_digital, 0u);
  EXPECT_EQ(rep.marginal_seen_analog, 1u);
}

TEST(CompareT, SeverePartialCountsAsDefect) {
  auto mc = base();
  mc.set_defect(5, 5, tech::make_partial(0.2));  // 6 fF: below the window
  const Scenario s{std::move(mc)};
  const auto rep = compare_bitmaps(s.mc, s.analog, s.digital);
  EXPECT_EQ(rep.truth_defects, 1u);
  EXPECT_EQ(rep.defects_seen_analog, 1u);
}

TEST(CompareT, ShapeMismatchThrows) {
  const Scenario s{base()};
  const AnalogBitmap wrong(4, 4, 20);
  EXPECT_THROW(compare_bitmaps(s.mc, wrong, s.digital), Error);
}

TEST(CompareT, EmptyWindowInvalid) {
  const Scenario s{base()};
  MarginalWindow w;
  w.lo_f = 30e-15;
  w.hi_f = 10e-15;
  EXPECT_THROW(compare_bitmaps(s.mc, s.analog, s.digital, {}, w), Error);
}

}  // namespace
}  // namespace ecms::bitmap
