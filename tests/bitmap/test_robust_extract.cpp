// Graceful degradation contract of the robust tiled extraction: per-cell
// failures are contained (or, with contain=false, fail the whole run), the
// returned array is always complete, and healthy cells carry codes
// bit-identical to a zero-fault run at any worker count.
#include <gtest/gtest.h>

#include "bitmap/analog_bitmap.hpp"
#include "fault/fault.hpp"
#include "tech/tech.hpp"
#include "util/error.hpp"
#include "util/threadpool.hpp"
#include "util/units.hpp"

namespace ecms::bitmap {
namespace {

// Array with process variation and a few defects, so codes actually vary
// from cell to cell (same recipe as the parallel-extract tests).
edram::MacroCell varied(std::size_t n, std::uint64_t seed) {
  tech::CapProcessParams cp;
  cp.local_sigma_rel = 0.04;
  tech::CapField field(cp, n, n, seed);
  Rng rng(seed);
  tech::DefectRates rates;
  rates.short_rate = 0.01;
  rates.open_rate = 0.01;
  rates.partial_rate = 0.02;
  tech::DefectMap defects = tech::DefectMap::random(n, n, rates, rng);
  return edram::MacroCell({.rows = n, .cols = n}, tech::tech018(),
                          std::move(field), std::move(defects));
}

TEST(RobustExtractT, ZeroFaultRobustMatchesPlainExtraction) {
  const auto mc = varied(16, 99);
  const AnalogBitmap plain = AnalogBitmap::extract_tiled(mc, {});
  const auto robust = AnalogBitmap::extract_tiled_robust(mc, {});
  EXPECT_EQ(plain.codes(), robust.bitmap.codes());
  EXPECT_TRUE(robust.report.complete());
  EXPECT_EQ(robust.report.cells_total, 256u);
  for (const CellStatus s : robust.status) EXPECT_EQ(s, CellStatus::kOk);
}

TEST(RobustExtractT, ThrowingCellContainedAtAnyJobCount) {
  // Satellite: a throwing cell inside a pool worker must poison only its
  // own cell — every other tile's codes stay bit-identical to serial.
  const auto mc = varied(16, 99);
  const AnalogBitmap clean = AnalogBitmap::extract_tiled(mc, {});
  ExtractPolicy policy;
  policy.cell_hook = [](std::size_t r, std::size_t c, int) {
    if (r == 3 && c == 5) throw MeasureError("poison cell");
  };
  for (std::size_t jobs : {1u, 2u, 8u}) {
    util::ThreadPool pool(jobs);
    const auto res = AnalogBitmap::extract_tiled_robust(
        mc, {}, policy, 4, 4, jobs > 1 ? &pool : nullptr);
    ASSERT_EQ(res.report.failures.size(), 1u) << "jobs = " << jobs;
    EXPECT_EQ(res.report.failures[0].row, 3u);
    EXPECT_EQ(res.report.failures[0].col, 5u);
    EXPECT_EQ(res.status_at(3, 5), CellStatus::kUnmeasurable);
    for (std::size_t r = 0; r < 16; ++r) {
      for (std::size_t c = 0; c < 16; ++c) {
        if (r == 3 && c == 5) continue;
        EXPECT_EQ(res.bitmap.at(r, c), clean.at(r, c))
            << "jobs = " << jobs << " cell (" << r << "," << c << ")";
        EXPECT_EQ(res.status_at(r, c), CellStatus::kOk);
      }
    }
  }
}

TEST(RobustExtractT, AcceptanceChaosSweep64x64) {
  // The PR's acceptance criterion: 5% injected cell faults on a 64x64
  // array; extraction must not throw, must mark exactly the planned cells
  // non-ok, and healthy codes must be bit-identical to the zero-fault run
  // at any job count.
  const auto mc = varied(64, 12);
  const AnalogBitmap clean = AnalogBitmap::extract_tiled(mc, {});
  const fault::CellFaultPlan plan(0.05, 42);
  const std::size_t planned = plan.count(64, 64);
  ASSERT_GT(planned, 0u);
  ExtractPolicy policy;
  policy.cell_hook = plan.hook();
  for (std::size_t jobs : {1u, 4u}) {
    util::ThreadPool pool(jobs);
    const auto res = AnalogBitmap::extract_tiled_robust(
        mc, {}, policy, 4, 4, jobs > 1 ? &pool : nullptr);
    EXPECT_EQ(res.report.failures.size(), planned) << "jobs = " << jobs;
    EXPECT_EQ(res.report.unmeasurable(), planned);
    EXPECT_FALSE(res.report.complete());
    for (std::size_t r = 0; r < 64; ++r) {
      for (std::size_t c = 0; c < 64; ++c) {
        if (plan.fails(r, c)) {
          EXPECT_EQ(res.status_at(r, c), CellStatus::kUnmeasurable);
          EXPECT_EQ(res.bitmap.at(r, c), 0);  // unmeasurable_code default
        } else {
          EXPECT_EQ(res.status_at(r, c), CellStatus::kOk);
          EXPECT_EQ(res.bitmap.at(r, c), clean.at(r, c))
              << "jobs = " << jobs << " cell (" << r << "," << c << ")";
        }
      }
    }
  }
}

TEST(RobustExtractT, FailureReportIsSortedRowMajor) {
  const auto mc = varied(16, 99);
  const fault::CellFaultPlan plan(0.2, 8);
  ExtractPolicy policy;
  policy.cell_hook = plan.hook();
  util::ThreadPool pool(8);
  const auto res =
      AnalogBitmap::extract_tiled_robust(mc, {}, policy, 4, 4, &pool);
  ASSERT_GT(res.report.failures.size(), 1u);
  for (std::size_t i = 1; i < res.report.failures.size(); ++i) {
    const auto& a = res.report.failures[i - 1];
    const auto& b = res.report.failures[i];
    EXPECT_TRUE(a.row < b.row || (a.row == b.row && a.col < b.col));
  }
}

TEST(RobustExtractT, FlakyCellsRecoverWithinTheRetryBudget) {
  const auto mc = varied(16, 99);
  const AnalogBitmap clean = AnalogBitmap::extract_tiled(mc, {});
  const fault::CellFaultPlan plan(0.1, 17);
  ExtractPolicy policy;
  policy.cell_hook = plan.flaky_hook(1);  // fails once, then works
  policy.retry.max_attempts = 2;
  const auto res = AnalogBitmap::extract_tiled_robust(mc, {}, policy);
  EXPECT_TRUE(res.report.complete());
  EXPECT_EQ(res.report.recovered, plan.count(16, 16));
  EXPECT_EQ(res.bitmap.codes(), clean.codes());  // recovery is lossless
  for (std::size_t r = 0; r < 16; ++r) {
    for (std::size_t c = 0; c < 16; ++c) {
      EXPECT_EQ(res.status_at(r, c), plan.fails(r, c)
                                         ? CellStatus::kRecovered
                                         : CellStatus::kOk);
    }
  }
}

TEST(RobustExtractT, RetryBudgetOfOneLeavesFlakyCellsUnmeasurable) {
  const auto mc = varied(16, 99);
  const fault::CellFaultPlan plan(0.1, 17);
  ExtractPolicy policy;
  policy.cell_hook = plan.flaky_hook(1);
  policy.retry.max_attempts = 1;  // no second chance
  const auto res = AnalogBitmap::extract_tiled_robust(mc, {}, policy);
  EXPECT_EQ(res.report.unmeasurable(), plan.count(16, 16));
  EXPECT_EQ(res.report.recovered, 0u);
}

TEST(RobustExtractT, FailFastPropagatesThroughThePool) {
  // contain=false is the fail-fast mode: the exception must escape the
  // extraction whether the tile ran inline or on a pool worker.
  const auto mc = varied(16, 99);
  ExtractPolicy policy;
  policy.cell_hook = [](std::size_t r, std::size_t c, int) {
    if (r == 9 && c == 9) throw MeasureError("poison cell");
  };
  policy.contain = false;
  EXPECT_THROW(AnalogBitmap::extract_tiled_robust(mc, {}, policy),
               MeasureError);
  util::ThreadPool pool(4);
  EXPECT_THROW(
      AnalogBitmap::extract_tiled_robust(mc, {}, policy, 4, 4, &pool),
      MeasureError);
}

TEST(RobustExtractT, NoisyRobustIsDeterministicAcrossJobCounts) {
  const auto mc = varied(16, 99);
  msu::MeasureNoise noise;
  noise.enabled = true;
  noise.vgs_sigma = 3e-3;
  const fault::CellFaultPlan plan(0.05, 23);
  ExtractPolicy policy;
  policy.cell_hook = plan.hook();
  Rng serial_rng(7);
  const auto serial = AnalogBitmap::extract_tiled_robust(
      mc, {}, noise, serial_rng, policy);
  for (std::size_t jobs : {2u, 8u}) {
    util::ThreadPool pool(jobs);
    Rng rng(7);
    const auto par = AnalogBitmap::extract_tiled_robust(
        mc, {}, noise, rng, policy, 4, 4, &pool);
    EXPECT_EQ(serial.bitmap.codes(), par.bitmap.codes()) << "jobs = " << jobs;
    EXPECT_EQ(serial.status, par.status) << "jobs = " << jobs;
  }
}

TEST(RobustExtractT, NoisyHealthyCellsUnaffectedByNeighbourFailures) {
  // Per-cell noise streams: knocking out cells must not shift any healthy
  // cell's noise draw, so codes match the zero-fault noisy robust run.
  const auto mc = varied(16, 99);
  msu::MeasureNoise noise;
  noise.enabled = true;
  noise.vgs_sigma = 3e-3;
  Rng clean_rng(31);
  const auto clean =
      AnalogBitmap::extract_tiled_robust(mc, {}, noise, clean_rng, {});
  const fault::CellFaultPlan plan(0.1, 5);
  ExtractPolicy policy;
  policy.cell_hook = plan.hook();
  Rng rng(31);
  const auto faulty =
      AnalogBitmap::extract_tiled_robust(mc, {}, noise, rng, policy);
  for (std::size_t r = 0; r < 16; ++r) {
    for (std::size_t c = 0; c < 16; ++c) {
      if (plan.fails(r, c)) continue;
      EXPECT_EQ(faulty.bitmap.at(r, c), clean.bitmap.at(r, c))
          << "cell (" << r << "," << c << ")";
    }
  }
}

TEST(RobustExtractT, UnmeasurableCodePolicyIsHonoured) {
  const auto mc = varied(16, 99);
  const fault::CellFaultPlan plan(0.1, 3);
  ExtractPolicy policy;
  policy.cell_hook = plan.hook();
  policy.unmeasurable_code = 20;  // park failures at full scale instead of 0
  const auto res = AnalogBitmap::extract_tiled_robust(mc, {}, policy);
  for (std::size_t r = 0; r < 16; ++r) {
    for (std::size_t c = 0; c < 16; ++c) {
      if (plan.fails(r, c)) {
        EXPECT_EQ(res.bitmap.at(r, c), 20);
      }
    }
  }
}

}  // namespace
}  // namespace ecms::bitmap
