#include "bitmap/spatial.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace ecms::bitmap {
namespace {

std::vector<char> empty_mask(std::size_t n) { return std::vector<char>(n, 0); }

TEST(SpatialT, NoAnomaliesNoComponents) {
  EXPECT_TRUE(find_components(empty_mask(64), 8, 8).empty());
}

TEST(SpatialT, SingleCell) {
  auto mask = empty_mask(64);
  mask[3 * 8 + 5] = 1;
  const auto comps = find_components(mask, 8, 8);
  ASSERT_EQ(comps.size(), 1u);
  EXPECT_EQ(comps[0].kind, PatternKind::kSingle);
  EXPECT_EQ(comps[0].cells[0], (Cell{3, 5}));
}

TEST(SpatialT, FullRowIsRowLine) {
  auto mask = empty_mask(64);
  for (std::size_t c = 0; c < 8; ++c) mask[2 * 8 + c] = 1;
  const auto comps = find_components(mask, 8, 8);
  ASSERT_EQ(comps.size(), 1u);
  EXPECT_EQ(comps[0].kind, PatternKind::kRowLine);
  EXPECT_EQ(comps[0].size(), 8u);
}

TEST(SpatialT, PartialRowBelowFillIsCluster) {
  auto mask = empty_mask(64);
  for (std::size_t c = 0; c < 3; ++c) mask[2 * 8 + c] = 1;  // 3/8 < 0.6
  const auto comps = find_components(mask, 8, 8);
  ASSERT_EQ(comps.size(), 1u);
  EXPECT_EQ(comps[0].kind, PatternKind::kCluster);
}

TEST(SpatialT, FullColumnIsColumnLine) {
  auto mask = empty_mask(64);
  for (std::size_t r = 0; r < 8; ++r) mask[r * 8 + 6] = 1;
  const auto comps = find_components(mask, 8, 8);
  ASSERT_EQ(comps.size(), 1u);
  EXPECT_EQ(comps[0].kind, PatternKind::kColumnLine);
}

TEST(SpatialT, BlobIsCluster) {
  auto mask = empty_mask(64);
  for (std::size_t r = 2; r <= 4; ++r)
    for (std::size_t c = 3; c <= 5; ++c) mask[r * 8 + c] = 1;
  const auto comps = find_components(mask, 8, 8);
  ASSERT_EQ(comps.size(), 1u);
  EXPECT_EQ(comps[0].kind, PatternKind::kCluster);
  EXPECT_EQ(comps[0].size(), 9u);
  EXPECT_EQ(comps[0].height(), 3u);
  EXPECT_EQ(comps[0].width(), 3u);
}

TEST(SpatialT, DiagonalCellsAreSeparate) {
  // 4-connectivity: diagonal neighbours are distinct components.
  auto mask = empty_mask(16);
  mask[0] = 1;           // (0,0)
  mask[1 * 4 + 1] = 1;   // (1,1)
  const auto comps = find_components(mask, 4, 4);
  EXPECT_EQ(comps.size(), 2u);
}

TEST(SpatialT, ComponentsSortedBySize) {
  auto mask = empty_mask(64);
  mask[0] = 1;  // single
  for (std::size_t c = 0; c < 8; ++c) mask[4 * 8 + c] = 1;  // row of 8
  const auto comps = find_components(mask, 8, 8);
  ASSERT_EQ(comps.size(), 2u);
  EXPECT_GT(comps[0].size(), comps[1].size());
}

TEST(SpatialT, MaskSizeValidated) {
  EXPECT_THROW(find_components(empty_mask(10), 8, 8), Error);
}

TEST(PlaneFitT, FlatField) {
  const std::vector<double> field(12, 5.0);
  const PlaneFit f = fit_plane(field, 3, 4);
  EXPECT_NEAR(f.mean, 5.0, 1e-12);
  EXPECT_NEAR(f.grad_x, 0.0, 1e-12);
  EXPECT_NEAR(f.grad_y, 0.0, 1e-12);
}

TEST(PlaneFitT, RecoversLinearGradient) {
  std::vector<double> field;
  for (std::size_t r = 0; r < 6; ++r)
    for (std::size_t c = 0; c < 6; ++c)
      field.push_back(2.0 + 0.5 * static_cast<double>(c) -
                      0.25 * static_cast<double>(r));
  const PlaneFit f = fit_plane(field, 6, 6);
  EXPECT_NEAR(f.grad_x, 0.5, 1e-12);
  EXPECT_NEAR(f.grad_y, -0.25, 1e-12);
  EXPECT_NEAR(f.r2, 1.0, 1e-12);
}

TEST(PlaneFitT, NoisyGradientStillDetected) {
  Rng rng(5);
  std::vector<double> field;
  for (std::size_t r = 0; r < 16; ++r)
    for (std::size_t c = 0; c < 16; ++c)
      field.push_back(0.3 * static_cast<double>(c) + rng.normal(0.0, 0.5));
  const PlaneFit f = fit_plane(field, 16, 16);
  EXPECT_NEAR(f.grad_x, 0.3, 0.05);
  EXPECT_NEAR(f.grad_y, 0.0, 0.05);
  EXPECT_GT(f.r2, 0.5);
}

TEST(ZScoresT, OutlierStandsOut) {
  std::vector<double> field(100, 10.0);
  Rng rng(7);
  for (auto& v : field) v += rng.normal(0.0, 0.1);
  field[42] = 20.0;
  const auto z = robust_zscores(field);
  EXPECT_GT(z[42], 10.0);
  EXPECT_LT(std::abs(z[10]), 4.0);
}

TEST(ZScoresT, ConstantFieldAllZero) {
  const std::vector<double> field(10, 3.0);
  for (double z : robust_zscores(field)) EXPECT_DOUBLE_EQ(z, 0.0);
}

}  // namespace
}  // namespace ecms::bitmap
