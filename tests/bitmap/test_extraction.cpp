// Contracts of the unified ExtractRequest -> ExtractReport API: it subsumes
// the legacy wrappers bit-for-bit, the circuit engine's tile fan-out is
// job-count-invariant, and adaptive ramp scheduling changes cost — never
// codes — including when fault injection forces the fallback path.
#include <gtest/gtest.h>

#include "bitmap/extraction.hpp"
#include "fault/fault.hpp"
#include "tech/tech.hpp"
#include "util/threadpool.hpp"
#include "util/units.hpp"

namespace ecms::extraction {
namespace {

edram::MacroCell varied(std::size_t n, std::uint64_t seed) {
  tech::CapProcessParams cp;
  cp.local_sigma_rel = 0.04;
  tech::CapField field(cp, n, n, seed);
  Rng rng(seed);
  tech::DefectRates rates;
  rates.short_rate = 0.01;
  rates.open_rate = 0.01;
  rates.partial_rate = 0.02;
  tech::DefectMap defects = tech::DefectMap::random(n, n, rates, rng);
  return edram::MacroCell({.rows = n, .cols = n}, tech::tech018(),
                          std::move(field), std::move(defects));
}

TEST(UnifiedExtractT, FastModelPathsMatchLegacyWrappers) {
  const auto mc = varied(8, 7);

  ExtractRequest plain;
  const ExtractReport direct = extract(mc, plain);
  const bitmap::AnalogBitmap legacy =
      bitmap::AnalogBitmap::extract_tiled(mc, {});
  EXPECT_EQ(direct.bitmap.codes(), legacy.codes());
  EXPECT_TRUE(direct.complete());
  EXPECT_EQ(direct.telemetry.transient_steps, 0u);

  msu::MeasureNoise noise;
  noise.vgs_sigma = 2e-3;
  Rng rng_a(42);
  Rng rng_b(42);
  ExtractRequest noisy;
  noisy.noise = &noise;
  noisy.rng = &rng_a;
  const ExtractReport nd = extract(mc, noisy);
  const bitmap::AnalogBitmap nl =
      bitmap::AnalogBitmap::extract_tiled(mc, {}, noise, rng_b);
  EXPECT_EQ(nd.bitmap.codes(), nl.codes());

  ExtractRequest robust;
  robust.robust = true;
  const ExtractReport rd = extract(mc, robust);
  const auto rl = bitmap::AnalogBitmap::extract_tiled_robust(mc, {});
  EXPECT_EQ(rd.bitmap.codes(), rl.bitmap.codes());
  EXPECT_EQ(rd.status, rl.status);
}

TEST(UnifiedExtractT, CircuitEngineJobCountInvariantAndAdaptiveIdentity) {
  const auto mc = varied(4, 11);

  ExtractRequest base;
  base.engine = Engine::kCircuit;
  base.tile_rows = 2;
  base.tile_cols = 2;

  ExtractRequest adaptive = base;
  adaptive.options.adaptive.enabled = true;

  const ExtractReport serial = extract(mc, adaptive);
  ExtractRequest parallel = adaptive;
  parallel.jobs = 4;
  const ExtractReport threaded = extract(mc, parallel);
  EXPECT_EQ(serial.bitmap.codes(), threaded.bitmap.codes());
  EXPECT_EQ(serial.status, threaded.status);
  EXPECT_EQ(serial.telemetry.transient_steps,
            threaded.telemetry.transient_steps);

  const ExtractReport exhaustive = extract(mc, base);
  EXPECT_EQ(serial.bitmap.codes(), exhaustive.bitmap.codes());
  EXPECT_EQ(serial.telemetry.prefix_steps, exhaustive.telemetry.prefix_steps);
  EXPECT_LT(serial.telemetry.conversion_steps(),
            exhaustive.telemetry.conversion_steps());
  EXPECT_GE(serial.telemetry.adaptive_used, 12u);
  EXPECT_EQ(exhaustive.telemetry.adaptive_used, 0u);
}

TEST(UnifiedExtractT, AdaptiveFallsBackUnderFaultInjectionAtAnyJobs) {
  const auto mc = varied(4, 23);

  ExtractRequest clean;
  clean.engine = Engine::kCircuit;
  clean.tile_rows = 2;
  clean.tile_cols = 2;
  const ExtractReport ref = extract(mc, clean);

  for (std::size_t jobs : {1u, 4u}) {
    fault::SolverFaultInjector inj(5);
    inj.set_stall_rate(0.0);  // armed but quiet: hooks are non-null
    const circuit::SolveHooks hooks = inj.hooks();
    ExtractRequest req = clean;
    req.options.adaptive.enabled = true;
    req.options.newton.hooks = &hooks;
    req.robust = true;
    req.jobs = jobs;
    const ExtractReport res = extract(mc, req);
    EXPECT_EQ(res.bitmap.codes(), ref.bitmap.codes()) << "jobs " << jobs;
    EXPECT_EQ(res.telemetry.adaptive_used, 0u);
    EXPECT_EQ(res.telemetry.adaptive_fallbacks, mc.cell_count());
    EXPECT_TRUE(res.complete());
  }
}

TEST(UnifiedExtractT, FlakyCellsRecoverWithoutDisturbingNeighbours) {
  const auto mc = varied(4, 31);
  ExtractRequest clean;
  clean.engine = Engine::kCircuit;
  clean.tile_rows = 2;
  clean.tile_cols = 2;
  const ExtractReport ref = extract(mc, clean);

  const fault::CellFaultPlan plan(0.2, 77);
  ExtractRequest req = clean;
  req.options.adaptive.enabled = true;
  req.robust = true;
  req.retry.max_attempts = 2;
  req.cell_hook = plan.flaky_hook(1);
  const ExtractReport res = extract(mc, req);
  EXPECT_TRUE(res.complete());
  EXPECT_EQ(res.bitmap.codes(), ref.bitmap.codes());
  const std::size_t planned = plan.count(4, 4);
  EXPECT_EQ(res.report.recovered, planned);
  for (std::size_t r = 0; r < 4; ++r)
    for (std::size_t c = 0; c < 4; ++c)
      EXPECT_EQ(res.status_at(r, c), plan.fails(r, c)
                                         ? CellStatus::kRecovered
                                         : CellStatus::kOk);
}

}  // namespace
}  // namespace ecms::extraction
