#include "bitmap/diagnosis.hpp"

#include <gtest/gtest.h>

#include "tech/tech.hpp"
#include "util/units.hpp"

namespace ecms::bitmap {
namespace {

// Diagnosis runs on bitmaps extracted from ground-truth macro-cells, so the
// engine is tested end-to-end: inject -> extract -> diagnose.
edram::MacroCell base_mc(std::size_t n = 16) {
  return edram::MacroCell::uniform({.rows = n, .cols = n}, tech::tech018(),
                                   30_fF);
}

std::vector<Finding> run(const edram::MacroCell& mc,
                         std::optional<double> expected_mean = std::nullopt) {
  const AnalogBitmap bm = AnalogBitmap::extract_tiled(mc, {});
  return diagnose(bm, make_tiled_disambiguator(mc, {}), expected_mean);
}

bool has_kind(const std::vector<Finding>& fs, DiagnosisKind k) {
  for (const auto& f : fs)
    if (f.kind == k) return true;
  return false;
}

TEST(DiagnosisT, HealthyArrayIsQuiet) {
  const auto findings = run(base_mc());
  EXPECT_TRUE(findings.empty());
}

TEST(DiagnosisT, IsolatedShortDisambiguated) {
  auto mc = base_mc();
  mc.set_defect(5, 5, tech::make_short());
  const auto findings = run(mc);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].kind, DiagnosisKind::kIsolatedCellDefect);
  ASSERT_TRUE(findings[0].zero_cause.has_value());
  EXPECT_EQ(*findings[0].zero_cause, msu::ZeroCodeCause::kShort);
  EXPECT_EQ(findings[0].cells[0], (Cell{5, 5}));
}

TEST(DiagnosisT, IsolatedOpenDisambiguated) {
  auto mc = base_mc();
  mc.set_defect(2, 9, tech::make_open());
  const auto findings = run(mc);
  ASSERT_EQ(findings.size(), 1u);
  ASSERT_TRUE(findings[0].zero_cause.has_value());
  EXPECT_EQ(*findings[0].zero_cause, msu::ZeroCodeCause::kOpen);
}

TEST(DiagnosisT, ClusterReported) {
  auto mc = base_mc();
  tech::DefectMap defects = mc.defects();
  defects.inject_cluster(8, 8, 1.6, tech::make_open());
  for (std::size_t r = 0; r < 16; ++r)
    for (std::size_t c = 0; c < 16; ++c) mc.set_defect(r, c, defects.at(r, c));
  const auto findings = run(mc);
  ASSERT_FALSE(findings.empty());
  EXPECT_EQ(findings[0].kind, DiagnosisKind::kClusterDefect);
  EXPECT_GT(findings[0].magnitude, 4.0);
}

TEST(DiagnosisT, RowFaultReported) {
  auto mc = base_mc();
  for (std::size_t c = 0; c < 16; ++c)
    mc.set_defect(7, c, tech::make_partial(0.3));  // whole row under-range
  const auto findings = run(mc);
  EXPECT_TRUE(has_kind(findings, DiagnosisKind::kRowFault));
}

TEST(DiagnosisT, ColumnFaultReported) {
  auto mc = base_mc();
  for (std::size_t r = 0; r < 16; ++r)
    mc.set_defect(r, 3, tech::make_open());
  const auto findings = run(mc);
  EXPECT_TRUE(has_kind(findings, DiagnosisKind::kColumnFault));
}

TEST(DiagnosisT, GradientDetected) {
  tech::CapProcessParams cp;
  cp.local_sigma_rel = 0.0;
  cp.gradient_x_rel = 0.5;  // 50% tilt left-to-right
  tech::CapField field(cp, 16, 16, 1);
  const edram::MacroCell mc({.rows = 16, .cols = 16}, tech::tech018(),
                            std::move(field), tech::DefectMap(16, 16));
  const auto findings = run(mc);
  EXPECT_TRUE(has_kind(findings, DiagnosisKind::kProcessGradient));
  for (const auto& f : findings) {
    if (f.kind == DiagnosisKind::kProcessGradient) {
      EXPECT_GT(f.magnitude, 0.05);
    }
  }
}

TEST(DiagnosisT, LotDriftDetected) {
  tech::CapProcessParams cp;
  cp.local_sigma_rel = 0.0;
  cp.lot_offset_rel = -0.25;  // thin-dielectric lot: caps 25% small
  tech::CapField field(cp, 16, 16, 1);
  const edram::MacroCell drifted({.rows = 16, .cols = 16}, tech::tech018(),
                                 std::move(field), tech::DefectMap(16, 16));
  // Expected mean from a healthy reference.
  const double expected =
      AnalogBitmap::extract_tiled(base_mc(), {}).mean_in_range_code();
  const auto findings = run(drifted, expected);
  ASSERT_TRUE(has_kind(findings, DiagnosisKind::kLotDrift));
  for (const auto& f : findings) {
    if (f.kind == DiagnosisKind::kLotDrift) {
      EXPECT_LT(f.magnitude, 0.0);  // shift toward smaller codes
    }
  }
}

TEST(DiagnosisT, NoDriftWhenMeanMatches) {
  const auto mc = base_mc();
  const double expected =
      AnalogBitmap::extract_tiled(mc, {}).mean_in_range_code();
  const auto findings = run(mc, expected);
  EXPECT_FALSE(has_kind(findings, DiagnosisKind::kLotDrift));
}

TEST(DiagnosisT, WithoutModelNoDisambiguation) {
  auto mc = base_mc();
  mc.set_defect(5, 5, tech::make_short());
  const AnalogBitmap bm = AnalogBitmap::extract_tiled(mc, {});
  const auto findings = diagnose(bm, DisambiguateFn{}, std::nullopt);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_FALSE(findings[0].zero_cause.has_value());
}

TEST(DiagnosisT, KindNames) {
  EXPECT_EQ(diagnosis_name(DiagnosisKind::kRowFault), "row-fault");
  EXPECT_EQ(diagnosis_name(DiagnosisKind::kLotDrift), "lot-drift");
}

}  // namespace
}  // namespace ecms::bitmap
