// March tests over the behavioral eDRAM array: the digital-bitmap baseline
// the paper's analog bitmap is compared against.
#include <gtest/gtest.h>

#include "march/runner.hpp"
#include "tech/tech.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

namespace ecms::march {
namespace {

edram::MacroCell base(std::size_t n = 8) {
  return edram::MacroCell::uniform({.rows = n, .cols = n}, tech::tech018(),
                                   30_fF);
}

TEST(EdramMarch, HealthyArrayPasses) {
  for (const auto& test : standard_tests()) {
    auto mc = base();
    edram::BehavioralArray array(mc);
    EdramMemory mem(array);
    const auto res = run_march(mem, test);
    EXPECT_EQ(res.fail_bitmap.fail_count(), 0u) << test.name;
  }
}

TEST(EdramMarch, ShortCaughtByMarchCMinus) {
  auto mc = base();
  mc.set_defect(2, 2, tech::make_short());
  edram::BehavioralArray array(mc);
  EdramMemory mem(array);
  const auto res = run_march(mem, march_c_minus());
  EXPECT_TRUE(res.fail_bitmap.fails(2, 2));
}

TEST(EdramMarch, OpenCaughtByMarchCMinus) {
  auto mc = base();
  mc.set_defect(4, 7, tech::make_open());
  edram::BehavioralArray array(mc);
  EdramMemory mem(array);
  const auto res = run_march(mem, march_c_minus());
  EXPECT_TRUE(res.fail_bitmap.fails(4, 7));
}

TEST(EdramMarch, MarginalPartialEscapesDigitalTest) {
  // The motivating gap: a half-capacitor cell passes every march test on a
  // short bit line.
  auto mc = base();
  mc.set_defect(3, 3, tech::make_partial(0.5));
  edram::BehavioralArray array(mc);
  EdramMemory mem(array);
  for (const auto& test : standard_tests()) {
    const auto res = run_march(mem, test);
    EXPECT_FALSE(res.fail_bitmap.fails(3, 3)) << test.name;
  }
}

TEST(EdramMarch, BridgeCaughtAsCouplingFail) {
  auto mc = base();
  mc.set_defect(5, 2, tech::make_bridge());
  edram::BehavioralArray array(mc);
  EdramMemory mem(array);
  const auto res = run_march(mem, march_c_minus());
  // Equalized pair: at least one of the two bridged cells mis-reads.
  EXPECT_TRUE(res.fail_bitmap.fails(5, 2) || res.fail_bitmap.fails(5, 3));
}

TEST(EdramMarch, RetentionTestCatchesShorts) {
  auto mc = base();
  mc.set_defect(1, 6, tech::make_short());
  edram::BehavioralArray array(mc);
  const edram::AddressMap map(8, 8, edram::Scramble::kLinear);
  const auto res = run_retention_test(array, true, 1e-3, map);
  EXPECT_TRUE(res.fail_bitmap.fails(1, 6));
  EXPECT_EQ(res.fail_bitmap.fail_count(), 1u);
}

TEST(EdramMarch, LongPauseFailsLeakyCells) {
  // With a 100 s pause even healthy cells decay below the margin: the test
  // itself must report that, proving the pause path works.
  auto mc = base();
  edram::BehavioralArray array(mc);
  const edram::AddressMap map(8, 8, edram::Scramble::kLinear);
  const auto res = run_retention_test(array, true, 300.0, map);
  EXPECT_EQ(res.fail_bitmap.fail_count(), 64u);
}

TEST(EdramMarch, MismatchedMapThrows) {
  auto mc = base();
  edram::BehavioralArray array(mc);
  EdramMemory mem(array);
  const edram::AddressMap wrong(4, 4, edram::Scramble::kLinear);
  EXPECT_THROW(run_march(mem, march_c_minus(), wrong), Error);
}

}  // namespace
}  // namespace ecms::march
