// Textbook detection properties: March C- detects SAFs, TFs and inversion
// coupling faults; MATS+ detects SAFs. These validate the march engine
// itself against known theory before it is trusted as the digital baseline.
#include <gtest/gtest.h>

#include "march/runner.hpp"
#include "util/error.hpp"

namespace ecms::march {
namespace {

TEST(FaultMemT, CleanMemoryBehaves) {
  FaultInjectedMemory m(4, 4);
  m.write(1, 1, true);
  EXPECT_TRUE(m.read(1, 1));
  m.write(1, 1, false);
  EXPECT_FALSE(m.read(1, 1));
  EXPECT_FALSE(m.read(0, 0));  // initial state 0
}

TEST(FaultMemT, StuckAt) {
  FaultInjectedMemory m(4, 4);
  m.inject({FaultModel::kStuckAt1, 2, 2});
  m.write(2, 2, false);
  EXPECT_TRUE(m.read(2, 2));
  m.inject({FaultModel::kStuckAt0, 0, 0});
  m.write(0, 0, true);
  EXPECT_FALSE(m.read(0, 0));
}

TEST(FaultMemT, TransitionFaults) {
  FaultInjectedMemory m(4, 4);
  m.inject({FaultModel::kTransitionUp, 1, 0});
  m.write(1, 0, false);
  m.write(1, 0, true);  // up-transition fails
  EXPECT_FALSE(m.read(1, 0));

  m.inject({FaultModel::kTransitionDown, 1, 1});
  m.write(1, 1, true);  // 0 -> 1 works
  m.write(1, 1, false);  // 1 -> 0 fails
  EXPECT_TRUE(m.read(1, 1));
}

TEST(FaultMemT, CouplingInversion) {
  FaultInjectedMemory m(4, 4);
  m.inject({FaultModel::kCouplingInv, /*victim*/ 0, 1, /*aggressor*/ 0, 0});
  m.write(0, 1, false);
  m.write(0, 0, true);  // aggressor transition inverts the victim
  EXPECT_TRUE(m.read(0, 1));
}

TEST(FaultMemT, InjectionValidation) {
  FaultInjectedMemory m(2, 2);
  EXPECT_THROW(m.inject({FaultModel::kStuckAt0, 5, 0}), Error);
  EXPECT_THROW(m.inject({FaultModel::kCouplingInv, 0, 0, 0, 0}), Error);
}

// Detection-property sweeps: each named test must catch each fault class it
// is known to cover, at several fault locations.
struct DetectCase {
  FaultModel model;
  std::size_t r, c;
};

class MarchCMinusDetects : public ::testing::TestWithParam<DetectCase> {};

TEST_P(MarchCMinusDetects, FaultCaught) {
  const DetectCase dc = GetParam();
  FaultInjectedMemory m(8, 8);
  InjectedFault f{dc.model, dc.r, dc.c};
  if (dc.model == FaultModel::kCouplingInv) {
    // Aggressor at a higher address than the victim.
    f.agg_row = dc.r + 1;
    f.agg_col = dc.c;
  }
  m.inject(f);
  const auto res = run_march(m, march_c_minus());
  EXPECT_GT(res.total_read_mismatches, 0u)
      << "fault at (" << dc.r << "," << dc.c << ") escaped March C-";
  EXPECT_TRUE(res.fail_bitmap.fails(dc.r, dc.c));
}

INSTANTIATE_TEST_SUITE_P(
    Coverage, MarchCMinusDetects,
    ::testing::Values(DetectCase{FaultModel::kStuckAt0, 0, 0},
                      DetectCase{FaultModel::kStuckAt0, 3, 5},
                      DetectCase{FaultModel::kStuckAt1, 0, 7},
                      DetectCase{FaultModel::kStuckAt1, 6, 2},
                      DetectCase{FaultModel::kTransitionUp, 2, 2},
                      DetectCase{FaultModel::kTransitionUp, 6, 6},
                      DetectCase{FaultModel::kTransitionDown, 1, 4},
                      DetectCase{FaultModel::kTransitionDown, 5, 0},
                      DetectCase{FaultModel::kCouplingInv, 2, 3},
                      DetectCase{FaultModel::kCouplingInv, 4, 6}));

TEST(MatsPlusT, DetectsAllStuckAts) {
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      for (const FaultModel fm :
           {FaultModel::kStuckAt0, FaultModel::kStuckAt1}) {
        FaultInjectedMemory m(4, 4);
        m.inject({fm, r, c});
        const auto res = run_march(m, mats_plus());
        EXPECT_TRUE(res.fail_bitmap.fails(r, c))
            << "SAF at (" << r << "," << c << ") escaped MATS+";
      }
    }
  }
}

TEST(MarchRunnerT, CleanMemoryPassesAllTests) {
  for (const auto& test : standard_tests()) {
    FaultInjectedMemory m(8, 8);
    const auto res = run_march(m, test);
    EXPECT_EQ(res.total_read_mismatches, 0u) << test.name;
    EXPECT_EQ(res.fail_bitmap.fail_count(), 0u) << test.name;
  }
}

TEST(MarchRunnerT, OperationCountMatchesTheory) {
  FaultInjectedMemory m(8, 8);
  const auto res = run_march(m, march_c_minus());
  EXPECT_EQ(res.total_operations, 64u * march_c_minus().ops_per_cell());
}

TEST(MarchRunnerT, ScrambledAddressingStillDetects) {
  FaultInjectedMemory m(8, 8);
  m.inject({FaultModel::kStuckAt1, 3, 3});
  const edram::AddressMap map(8, 8, edram::Scramble::kBitReversalRow);
  const auto res = run_march(m, march_c_minus(), map);
  // The fail must land at the *physical* location in the bitmap.
  EXPECT_TRUE(res.fail_bitmap.fails(3, 3));
}

}  // namespace
}  // namespace ecms::march
