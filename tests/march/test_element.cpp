#include "march/element.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace ecms::march {
namespace {

TEST(MarchElementT, OpProperties) {
  EXPECT_TRUE(op_is_read(OpKind::kRead0));
  EXPECT_TRUE(op_is_read(OpKind::kRead1));
  EXPECT_FALSE(op_is_read(OpKind::kWrite0));
  EXPECT_TRUE(op_value(OpKind::kWrite1));
  EXPECT_FALSE(op_value(OpKind::kRead0));
  EXPECT_EQ(op_name(OpKind::kWrite0), "w0");
}

TEST(MarchElementT, ParseRoundTrip) {
  const MarchTest t =
      parse_march("X", "{any(w0); up(r0,w1); down(r1,w0)}");
  EXPECT_EQ(t.elements.size(), 3u);
  EXPECT_EQ(t.elements[0].order, AddressOrder::kAny);
  EXPECT_EQ(t.elements[1].order, AddressOrder::kUp);
  EXPECT_EQ(t.elements[2].order, AddressOrder::kDown);
  EXPECT_EQ(t.elements[1].ops.size(), 2u);
  EXPECT_EQ(t.elements[1].ops[0], OpKind::kRead0);
  EXPECT_EQ(t.notation(), "{any(w0); up(r0,w1); down(r1,w0)}");
}

TEST(MarchElementT, ParseToleratesWhitespace) {
  const MarchTest t = parse_march("W", "  up ( r0 , w1 ) ;  down(r1,w0) ");
  EXPECT_EQ(t.elements.size(), 2u);
  EXPECT_EQ(t.elements[0].ops.size(), 2u);
}

TEST(MarchElementT, ParseErrors) {
  EXPECT_THROW(parse_march("bad", ""), Error);
  EXPECT_THROW(parse_march("bad", "{sideways(w0)}"), Error);
  EXPECT_THROW(parse_march("bad", "{up(w2)}"), Error);
  EXPECT_THROW(parse_march("bad", "{up}"), Error);
  EXPECT_THROW(parse_march("bad", "{up()}"), Error);
}

TEST(MarchElementT, OpsPerCell) {
  EXPECT_EQ(mats_plus().ops_per_cell(), 5u);
  EXPECT_EQ(march_x().ops_per_cell(), 6u);
  EXPECT_EQ(march_y().ops_per_cell(), 8u);
  EXPECT_EQ(march_c_minus().ops_per_cell(), 10u);
}

TEST(MarchElementT, StandardTestsWellFormed) {
  for (const auto& t : standard_tests()) {
    EXPECT_FALSE(t.name.empty());
    EXPECT_FALSE(t.elements.empty());
    // Every element alternates between sane ops.
    for (const auto& e : t.elements) EXPECT_FALSE(e.ops.empty());
  }
}

TEST(MarchElementT, MarchCMinusStructure) {
  const MarchTest t = march_c_minus();
  EXPECT_EQ(t.name, "March C-");
  EXPECT_EQ(t.elements.size(), 6u);
  EXPECT_EQ(t.elements[0].order, AddressOrder::kAny);
  EXPECT_EQ(t.elements[3].order, AddressOrder::kDown);
}

}  // namespace
}  // namespace ecms::march
