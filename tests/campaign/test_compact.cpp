// CompactReader — the mmap'd columnar view of a compacted campaign:
// records round-trip against the journal (sorted by unit, attempts
// deliberately zeroed), and any corruption — a flipped byte anywhere, a
// truncated tail, a wrong magic — fails loudly at open(), never as a
// silently wrong aggregate.
#include "campaign/compact.hpp"

#include <gtest/gtest.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "campaign/store.hpp"
#include "util/error.hpp"

namespace {
using namespace ecms;
using campaign::CompactReader;
using campaign::ResultStore;
using campaign::UnitRecord;
using campaign::UnitSpace;

struct TempDir {
  std::string path;
  TempDir() {
    char tmpl[] = "/tmp/ecms-compact-XXXXXX";
    path = ::mkdtemp(tmpl);
    EXPECT_FALSE(path.empty());
  }
  ~TempDir() {
    std::system(("rm -rf '" + path + "'").c_str());
  }
  std::string file(const std::string& name) const { return path + "/" + name; }
};

ResultStore::Meta meta_of() {
  ResultStore::Meta m;
  m.space = UnitSpace{3, 2, 2};
  m.config_hash = 0xfeedfacecafebeefull;
  m.campaign_seed = 7;
  return m;
}

UnitRecord record_of(const UnitSpace& space, std::uint64_t unit) {
  UnitRecord r;
  r.die = space.die_of(unit);
  r.corner = static_cast<std::uint16_t>(space.corner_of(unit));
  r.seed = static_cast<std::uint16_t>(space.seed_of(unit));
  r.attempts = 3;  // scheduling history: the compact format drops this
  r.cells = 64;
  r.recovered = static_cast<std::uint32_t>(unit % 3);
  r.unmeasurable = static_cast<std::uint32_t>(unit % 2);
  r.code_hash = 0x1000 + unit;
  r.mean_code = 7.0 + static_cast<double>(unit) / 8.0;
  r.code_stddev = 0.25 * static_cast<double>(unit);
  for (std::size_t b = 0; b < campaign::kCodeBins; ++b) {
    r.code_hist[b] = static_cast<std::uint32_t>(unit * 100 + b);
  }
  return r;
}

/// Writes a store with `n` records (shuffled append order) and compacts it.
std::string make_compact(const TempDir& dir, std::uint64_t n) {
  const auto meta = meta_of();
  ResultStore s = ResultStore::create(dir.file("s.store"), meta);
  std::vector<std::uint64_t> units(n);
  for (std::uint64_t u = 0; u < n; ++u) units[u] = u;
  std::rotate(units.begin(), units.begin() + static_cast<long>(n / 2),
              units.end());  // journal order != unit order
  for (const std::uint64_t u : units) s.append(record_of(meta.space, u));
  s.commit();
  const std::string path = dir.file("s.compact");
  s.write_compact(path);
  return path;
}

TEST(CampaignCompactT, RoundTripsSortedRecordsWithoutAttempts) {
  TempDir dir;
  const std::string path = make_compact(dir, 8);
  const CompactReader reader = CompactReader::open(path);
  EXPECT_EQ(reader.count(), 8u);
  EXPECT_EQ(reader.space().dies, 3u);
  EXPECT_EQ(reader.config_hash(), 0xfeedfacecafebeefull);
  EXPECT_EQ(reader.campaign_seed(), 7u);

  const auto meta = meta_of();
  const std::vector<UnitRecord> records = reader.records();
  ASSERT_EQ(records.size(), 8u);
  for (std::uint64_t u = 0; u < 8; ++u) {
    // write_compact sorts by unit, so record u IS unit u regardless of the
    // journal's append order.
    UnitRecord want = record_of(meta.space, u);
    want.attempts = 0;  // the one field the columnar image omits
    const UnitRecord& got = records[u];
    EXPECT_EQ(got.die, want.die);
    EXPECT_EQ(got.corner, want.corner);
    EXPECT_EQ(got.seed, want.seed);
    EXPECT_EQ(got.attempts, 0);
    EXPECT_EQ(got.cells, want.cells);
    EXPECT_EQ(got.recovered, want.recovered);
    EXPECT_EQ(got.unmeasurable, want.unmeasurable);
    EXPECT_EQ(got.code_hash, want.code_hash);
    EXPECT_EQ(got.mean_code, want.mean_code);
    EXPECT_EQ(got.code_stddev, want.code_stddev);
    for (std::size_t b = 0; b < campaign::kCodeBins; ++b) {
      EXPECT_EQ(got.code_hist[b], want.code_hist[b]) << "bin " << b;
    }
  }
  EXPECT_THROW(reader.record(8), Error);  // out of range, loudly
}

TEST(CampaignCompactT, AnyFlippedByteFailsAtOpen) {
  TempDir dir;
  const std::string path = make_compact(dir, 4);
  struct stat st{};
  ASSERT_EQ(::stat(path.c_str(), &st), 0);
  // Flip one byte at a spread of offsets covering prologue, columns, and
  // the CRC trailer itself; every single one must refuse to open.
  const auto len = static_cast<std::size_t>(st.st_size);
  for (const std::size_t at :
       {std::size_t{0}, std::size_t{9}, std::size_t{20}, len / 2, len - 1}) {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(static_cast<long>(at));
    char c = 0;
    f.read(&c, 1);
    c = static_cast<char>(c ^ 0x01);
    f.seekp(static_cast<long>(at));
    f.write(&c, 1);
    f.close();
    EXPECT_THROW(CompactReader::open(path), Error) << "offset " << at;
    // Undo for the next round.
    std::fstream g(path, std::ios::in | std::ios::out | std::ios::binary);
    c = static_cast<char>(c ^ 0x01);
    g.seekp(static_cast<long>(at));
    g.write(&c, 1);
  }
  // Pristine again: opens.
  EXPECT_NO_THROW(CompactReader::open(path));
}

TEST(CampaignCompactT, TruncationFailsAtOpen) {
  TempDir dir;
  const std::string path = make_compact(dir, 4);
  struct stat st{};
  ASSERT_EQ(::stat(path.c_str(), &st), 0);
  ASSERT_EQ(::truncate(path.c_str(), st.st_size - 5), 0);
  EXPECT_THROW(CompactReader::open(path), Error);
  ASSERT_EQ(::truncate(path.c_str(), 3), 0);  // shorter than any prologue
  EXPECT_THROW(CompactReader::open(path), Error);
}

TEST(CampaignCompactT, MissingFileAndEmptyCampaign) {
  TempDir dir;
  EXPECT_THROW(CompactReader::open(dir.file("absent.compact")), Error);

  // Zero records is a valid (if sad) campaign; the reader serves it.
  const auto meta = meta_of();
  ResultStore s = ResultStore::create(dir.file("e.store"), meta);
  const std::string path = dir.file("e.compact");
  s.write_compact(path);
  const CompactReader reader = CompactReader::open(path);
  EXPECT_EQ(reader.count(), 0u);
  EXPECT_TRUE(reader.records().empty());
}

}  // namespace
