// CampaignStoreT — journal durability semantics: torn-tail truncation,
// CRC-corrupted page quarantine, commit-watermark replay idempotence
// (DESIGN.md §12).
#include <gtest/gtest.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "campaign/store.hpp"
#include "util/error.hpp"

namespace {
using namespace ecms;
using campaign::ReplayReport;
using campaign::ResultStore;
using campaign::UnitRecord;
using campaign::UnitSpace;

/// Fresh per-test scratch directory under TMPDIR, removed on destruction.
struct TempDir {
  std::string path;
  TempDir() {
    char tmpl[] = "/tmp/ecms-store-XXXXXX";
    path = ::mkdtemp(tmpl);
    EXPECT_FALSE(path.empty());
  }
  ~TempDir() {
    // Tests only create files directly inside `path`.
    std::system(("rm -rf '" + path + "'").c_str());
  }
  std::string file(const std::string& name) const { return path + "/" + name; }
};

ResultStore::Meta meta_of(std::uint32_t dies = 4, std::uint32_t corners = 2,
                          std::uint32_t seeds = 2) {
  ResultStore::Meta m;
  m.space = UnitSpace{dies, corners, seeds};
  m.config_hash = 0xfeedfacecafebeefull;
  m.campaign_seed = 7;
  return m;
}

/// A distinguishable record for `unit` (synthetic; the store does not care
/// whether it came from a real measurement).
UnitRecord record_of(const UnitSpace& space, std::uint64_t unit) {
  UnitRecord r;
  r.die = space.die_of(unit);
  r.corner = static_cast<std::uint16_t>(space.corner_of(unit));
  r.seed = static_cast<std::uint16_t>(space.seed_of(unit));
  r.cells = 64;
  r.code_hash = 0x1000 + unit;
  r.mean_code = 7.0 + static_cast<double>(unit) / 8.0;
  return r;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

long long size_of(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0 ? st.st_size : -1;
}

TEST(CampaignStoreT, RoundTrip) {
  TempDir dir;
  const auto meta = meta_of();
  const std::string path = dir.file("s.store");
  {
    ResultStore s = ResultStore::create(path, meta);
    for (std::uint64_t u = 0; u < 5; ++u) {
      s.append(record_of(meta.space, u));
      s.commit();
    }
  }
  ReplayReport rep;
  ResultStore s = ResultStore::open_for_resume(path, meta, &rep);
  EXPECT_EQ(rep.committed_records, 5u);
  EXPECT_EQ(rep.dropped_records, 0u);
  EXPECT_EQ(rep.dropped_tail_bytes, 0u);
  EXPECT_EQ(rep.quarantined_frames, 0u);
  ASSERT_EQ(s.records().size(), 5u);
  for (std::uint64_t u = 0; u < 5; ++u) {
    EXPECT_TRUE(s.contains(u));
    EXPECT_EQ(s.records()[u].code_hash, 0x1000 + u);
  }
  EXPECT_FALSE(s.contains(5));
}

TEST(CampaignStoreT, TornTailDropped) {
  TempDir dir;
  const auto meta = meta_of();
  const std::string path = dir.file("s.store");
  {
    ResultStore s = ResultStore::create(path, meta);
    for (std::uint64_t u = 0; u < 3; ++u) s.append(record_of(meta.space, u));
    s.commit();
  }
  const long long committed_size = size_of(path);
  // A crash mid-write leaves a partial frame: append garbage shorter than
  // a frame header plus half a payload.
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    const char junk[25] = "torn-frame-partial-bytes";
    out.write(junk, sizeof junk);
  }
  ReplayReport rep;
  ResultStore s = ResultStore::open_for_resume(path, meta, &rep);
  EXPECT_EQ(rep.committed_records, 3u);
  EXPECT_GT(rep.dropped_tail_bytes, 0u);
  EXPECT_EQ(s.records().size(), 3u);
  // The torn bytes are truncated away, so the file is back at the
  // watermark and appends continue cleanly.
  EXPECT_EQ(size_of(path), committed_size);
  s.append(record_of(meta.space, 3));
  s.commit();
  ReplayReport rep2;
  ResultStore s2 = ResultStore::open_for_resume(path, meta, &rep2);
  EXPECT_EQ(rep2.committed_records, 4u);
  EXPECT_EQ(rep2.dropped_tail_bytes, 0u);
}

TEST(CampaignStoreT, UncommittedPageDropped) {
  TempDir dir;
  const auto meta = meta_of();
  const std::string path = dir.file("s.store");
  std::string with_commit;
  {
    ResultStore s = ResultStore::create(path, meta);
    s.append(record_of(meta.space, 0));
    s.commit();
    with_commit = slurp(path);
    s.append(record_of(meta.space, 1));
    s.commit();
  }
  // Reconstruct "crashed after the page write, before its commit frame":
  // the second commit's bytes are page frame + commit frame; chop the
  // commit frame (16-byte header + 8-byte count payload).
  const std::string full = slurp(path);
  std::ofstream(path, std::ios::binary | std::ios::trunc)
      .write(full.data(), static_cast<std::streamsize>(full.size() - 24));
  ReplayReport rep;
  ResultStore s = ResultStore::open_for_resume(path, meta, &rep);
  EXPECT_EQ(rep.committed_records, 1u);
  EXPECT_EQ(rep.dropped_records, 1u);  // valid page, never promised durable
  EXPECT_TRUE(s.contains(0));
  EXPECT_FALSE(s.contains(1));
  EXPECT_EQ(slurp(path), with_commit);  // truncated exactly to watermark
}

TEST(CampaignStoreT, CrcQuarantine) {
  TempDir dir;
  const auto meta = meta_of();
  const std::string path = dir.file("s.store");
  long long first_commit_end = 0;
  {
    ResultStore s = ResultStore::create(path, meta);
    s.append(record_of(meta.space, 0));
    s.commit();
    first_commit_end = size_of(path);
    s.append(record_of(meta.space, 1));
    s.append(record_of(meta.space, 2));
    s.commit();
    s.append(record_of(meta.space, 3));
    s.commit();
  }
  // Flip one payload byte inside the second page frame: its CRC fails, so
  // replay stops there and conservatively drops it and everything after —
  // units 1..3 are simply re-measured.
  {
    std::string bytes = slurp(path);
    bytes[static_cast<std::size_t>(first_commit_end) + 16 + 40] ^= 0x01;
    std::ofstream(path, std::ios::binary | std::ios::trunc)
        .write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  ReplayReport rep;
  ResultStore s = ResultStore::open_for_resume(path, meta, &rep);
  EXPECT_EQ(rep.committed_records, 1u);
  EXPECT_EQ(rep.quarantined_frames, 1u);
  EXPECT_GT(rep.dropped_tail_bytes, 0u);
  EXPECT_TRUE(s.contains(0));
  EXPECT_FALSE(s.contains(1));
  EXPECT_FALSE(s.contains(2));
  EXPECT_FALSE(s.contains(3));
  EXPECT_EQ(size_of(path), first_commit_end);
}

TEST(CampaignStoreT, WatermarkReplayIdempotence) {
  TempDir dir;
  const auto meta = meta_of();
  const std::string path = dir.file("s.store");
  {
    ResultStore s = ResultStore::create(path, meta);
    for (std::uint64_t u = 0; u < 6; ++u) {
      s.append(record_of(meta.space, u));
      if (u % 2 == 1) s.commit();
    }
  }
  // Replaying the same journal any number of times adopts the same record
  // set and leaves the file bytes untouched.
  const std::string bytes = slurp(path);
  for (int i = 0; i < 3; ++i) {
    ReplayReport rep;
    ResultStore s = ResultStore::open_for_resume(path, meta, &rep);
    EXPECT_EQ(rep.committed_records, 6u);
    EXPECT_EQ(rep.dropped_records, 0u);
    EXPECT_EQ(rep.dropped_tail_bytes, 0u);
    EXPECT_EQ(s.records().size(), 6u);
  }
  EXPECT_EQ(slurp(path), bytes);
}

TEST(CampaignStoreT, MetaMismatchRefused) {
  TempDir dir;
  const auto meta = meta_of();
  const std::string path = dir.file("s.store");
  { ResultStore s = ResultStore::create(path, meta); }
  auto other = meta;
  other.config_hash ^= 1;  // different physics: refuse to resume
  EXPECT_THROW(ResultStore::open_for_resume(path, other), Error);
  auto wider = meta;
  wider.space.dies += 1;
  EXPECT_THROW(ResultStore::open_for_resume(path, wider), Error);
  EXPECT_NO_THROW(ResultStore::open_for_resume(path, meta));
}

TEST(CampaignStoreT, DuplicateAppendRejected) {
  TempDir dir;
  const auto meta = meta_of();
  ResultStore s = ResultStore::create(dir.file("s.store"), meta);
  s.append(record_of(meta.space, 2));
  s.commit();
  EXPECT_THROW(s.append(record_of(meta.space, 2)), Error);
  UnitRecord out_of_range = record_of(meta.space, 0);
  out_of_range.die = meta.space.dies;  // unit index past space.total()
  EXPECT_THROW(s.append(out_of_range), Error);
}

TEST(CampaignStoreT, CompactIsSchedulingIndependent) {
  TempDir dir;
  const auto meta = meta_of();
  // Same record set, adverse order and different commit batching: the
  // compacted images must be byte-identical (this is what the EXT-A11
  // kill-resume gate diffs).
  ResultStore a = ResultStore::create(dir.file("a.store"), meta);
  for (std::uint64_t u = 0; u < meta.space.total(); ++u) {
    a.append(record_of(meta.space, u));
    a.commit();
  }
  ResultStore b = ResultStore::create(dir.file("b.store"), meta);
  for (std::uint64_t u = meta.space.total(); u-- > 0;) {
    b.append(record_of(meta.space, u));
  }
  b.commit();
  a.write_compact(dir.file("a.compact"));
  b.write_compact(dir.file("b.compact"));
  const std::string ca = slurp(dir.file("a.compact"));
  EXPECT_EQ(ca, slurp(dir.file("b.compact")));
  EXPECT_GT(ca.size(), 0u);
}

}  // namespace
